
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/sit_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_combine_algebra.cc" "tests/CMakeFiles/sit_tests.dir/test_combine_algebra.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_combine_algebra.cc.o.d"
  "/root/repo/tests/test_fft.cc" "tests/CMakeFiles/sit_tests.dir/test_fft.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_fft.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/sit_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/sit_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_linear.cc" "tests/CMakeFiles/sit_tests.dir/test_linear.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_linear.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/sit_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/sit_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_sched.cc" "tests/CMakeFiles/sit_tests.dir/test_sched.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_sched.cc.o.d"
  "/root/repo/tests/test_sdep_msg.cc" "tests/CMakeFiles/sit_tests.dir/test_sdep_msg.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_sdep_msg.cc.o.d"
  "/root/repo/tests/test_syntax_msg2.cc" "tests/CMakeFiles/sit_tests.dir/test_syntax_msg2.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_syntax_msg2.cc.o.d"
  "/root/repo/tests/test_transfer.cc" "tests/CMakeFiles/sit_tests.dir/test_transfer.cc.o" "gcc" "tests/CMakeFiles/sit_tests.dir/test_transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msg/CMakeFiles/sit_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/sit_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/sit_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/linear/CMakeFiles/sit_linear.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sit_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sit_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/sdep/CMakeFiles/sit_sdep.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sit_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sit_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/sit_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
