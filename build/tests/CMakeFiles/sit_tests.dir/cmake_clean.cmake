file(REMOVE_RECURSE
  "CMakeFiles/sit_tests.dir/test_apps.cc.o"
  "CMakeFiles/sit_tests.dir/test_apps.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_combine_algebra.cc.o"
  "CMakeFiles/sit_tests.dir/test_combine_algebra.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_fft.cc.o"
  "CMakeFiles/sit_tests.dir/test_fft.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_integration.cc.o"
  "CMakeFiles/sit_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_ir.cc.o"
  "CMakeFiles/sit_tests.dir/test_ir.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_linear.cc.o"
  "CMakeFiles/sit_tests.dir/test_linear.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_parallel.cc.o"
  "CMakeFiles/sit_tests.dir/test_parallel.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_runtime.cc.o"
  "CMakeFiles/sit_tests.dir/test_runtime.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_sched.cc.o"
  "CMakeFiles/sit_tests.dir/test_sched.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_sdep_msg.cc.o"
  "CMakeFiles/sit_tests.dir/test_sdep_msg.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_syntax_msg2.cc.o"
  "CMakeFiles/sit_tests.dir/test_syntax_msg2.cc.o.d"
  "CMakeFiles/sit_tests.dir/test_transfer.cc.o"
  "CMakeFiles/sit_tests.dir/test_transfer.cc.o.d"
  "sit_tests"
  "sit_tests.pdb"
  "sit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
