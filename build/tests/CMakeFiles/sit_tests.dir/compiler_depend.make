# Empty compiler generated dependencies file for sit_tests.
# This may be replaced when dependencies are built.
