file(REMOVE_RECURSE
  "CMakeFiles/sit_sched.dir/exec.cc.o"
  "CMakeFiles/sit_sched.dir/exec.cc.o.d"
  "CMakeFiles/sit_sched.dir/schedule.cc.o"
  "CMakeFiles/sit_sched.dir/schedule.cc.o.d"
  "libsit_sched.a"
  "libsit_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
