file(REMOVE_RECURSE
  "libsit_sched.a"
)
