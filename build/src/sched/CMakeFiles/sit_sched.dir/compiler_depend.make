# Empty compiler generated dependencies file for sit_sched.
# This may be replaced when dependencies are built.
