
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apps.cc" "src/apps/CMakeFiles/sit_apps.dir/apps.cc.o" "gcc" "src/apps/CMakeFiles/sit_apps.dir/apps.cc.o.d"
  "/root/repo/src/apps/common.cc" "src/apps/CMakeFiles/sit_apps.dir/common.cc.o" "gcc" "src/apps/CMakeFiles/sit_apps.dir/common.cc.o.d"
  "/root/repo/src/apps/linear_suite.cc" "src/apps/CMakeFiles/sit_apps.dir/linear_suite.cc.o" "gcc" "src/apps/CMakeFiles/sit_apps.dir/linear_suite.cc.o.d"
  "/root/repo/src/apps/parallel_suite.cc" "src/apps/CMakeFiles/sit_apps.dir/parallel_suite.cc.o" "gcc" "src/apps/CMakeFiles/sit_apps.dir/parallel_suite.cc.o.d"
  "/root/repo/src/apps/radio.cc" "src/apps/CMakeFiles/sit_apps.dir/radio.cc.o" "gcc" "src/apps/CMakeFiles/sit_apps.dir/radio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sit_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
