# Empty dependencies file for sit_apps.
# This may be replaced when dependencies are built.
