file(REMOVE_RECURSE
  "libsit_apps.a"
)
