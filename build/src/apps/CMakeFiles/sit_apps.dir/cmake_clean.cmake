file(REMOVE_RECURSE
  "CMakeFiles/sit_apps.dir/apps.cc.o"
  "CMakeFiles/sit_apps.dir/apps.cc.o.d"
  "CMakeFiles/sit_apps.dir/common.cc.o"
  "CMakeFiles/sit_apps.dir/common.cc.o.d"
  "CMakeFiles/sit_apps.dir/linear_suite.cc.o"
  "CMakeFiles/sit_apps.dir/linear_suite.cc.o.d"
  "CMakeFiles/sit_apps.dir/parallel_suite.cc.o"
  "CMakeFiles/sit_apps.dir/parallel_suite.cc.o.d"
  "CMakeFiles/sit_apps.dir/radio.cc.o"
  "CMakeFiles/sit_apps.dir/radio.cc.o.d"
  "libsit_apps.a"
  "libsit_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
