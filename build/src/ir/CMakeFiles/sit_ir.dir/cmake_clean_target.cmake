file(REMOVE_RECURSE
  "libsit_ir.a"
)
