# Empty dependencies file for sit_ir.
# This may be replaced when dependencies are built.
