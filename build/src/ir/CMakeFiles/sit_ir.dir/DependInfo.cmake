
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ast.cc" "src/ir/CMakeFiles/sit_ir.dir/ast.cc.o" "gcc" "src/ir/CMakeFiles/sit_ir.dir/ast.cc.o.d"
  "/root/repo/src/ir/dsl.cc" "src/ir/CMakeFiles/sit_ir.dir/dsl.cc.o" "gcc" "src/ir/CMakeFiles/sit_ir.dir/dsl.cc.o.d"
  "/root/repo/src/ir/graph.cc" "src/ir/CMakeFiles/sit_ir.dir/graph.cc.o" "gcc" "src/ir/CMakeFiles/sit_ir.dir/graph.cc.o.d"
  "/root/repo/src/ir/streamit_syntax.cc" "src/ir/CMakeFiles/sit_ir.dir/streamit_syntax.cc.o" "gcc" "src/ir/CMakeFiles/sit_ir.dir/streamit_syntax.cc.o.d"
  "/root/repo/src/ir/validate.cc" "src/ir/CMakeFiles/sit_ir.dir/validate.cc.o" "gcc" "src/ir/CMakeFiles/sit_ir.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
