file(REMOVE_RECURSE
  "CMakeFiles/sit_ir.dir/ast.cc.o"
  "CMakeFiles/sit_ir.dir/ast.cc.o.d"
  "CMakeFiles/sit_ir.dir/dsl.cc.o"
  "CMakeFiles/sit_ir.dir/dsl.cc.o.d"
  "CMakeFiles/sit_ir.dir/graph.cc.o"
  "CMakeFiles/sit_ir.dir/graph.cc.o.d"
  "CMakeFiles/sit_ir.dir/streamit_syntax.cc.o"
  "CMakeFiles/sit_ir.dir/streamit_syntax.cc.o.d"
  "CMakeFiles/sit_ir.dir/validate.cc.o"
  "CMakeFiles/sit_ir.dir/validate.cc.o.d"
  "libsit_ir.a"
  "libsit_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
