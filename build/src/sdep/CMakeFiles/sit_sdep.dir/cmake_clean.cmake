file(REMOVE_RECURSE
  "CMakeFiles/sit_sdep.dir/sdep.cc.o"
  "CMakeFiles/sit_sdep.dir/sdep.cc.o.d"
  "CMakeFiles/sit_sdep.dir/transfer.cc.o"
  "CMakeFiles/sit_sdep.dir/transfer.cc.o.d"
  "libsit_sdep.a"
  "libsit_sdep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_sdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
