
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdep/sdep.cc" "src/sdep/CMakeFiles/sit_sdep.dir/sdep.cc.o" "gcc" "src/sdep/CMakeFiles/sit_sdep.dir/sdep.cc.o.d"
  "/root/repo/src/sdep/transfer.cc" "src/sdep/CMakeFiles/sit_sdep.dir/transfer.cc.o" "gcc" "src/sdep/CMakeFiles/sit_sdep.dir/transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/sit_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sit_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sit_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
