# Empty dependencies file for sit_sdep.
# This may be replaced when dependencies are built.
