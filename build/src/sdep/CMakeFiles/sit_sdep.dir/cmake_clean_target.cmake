file(REMOVE_RECURSE
  "libsit_sdep.a"
)
