file(REMOVE_RECURSE
  "CMakeFiles/sit_fft.dir/fft.cc.o"
  "CMakeFiles/sit_fft.dir/fft.cc.o.d"
  "libsit_fft.a"
  "libsit_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
