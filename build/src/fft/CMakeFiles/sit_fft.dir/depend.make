# Empty dependencies file for sit_fft.
# This may be replaced when dependencies are built.
