file(REMOVE_RECURSE
  "libsit_fft.a"
)
