# Empty dependencies file for sit_linear.
# This may be replaced when dependencies are built.
