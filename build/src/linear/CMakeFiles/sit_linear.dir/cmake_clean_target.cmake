file(REMOVE_RECURSE
  "libsit_linear.a"
)
