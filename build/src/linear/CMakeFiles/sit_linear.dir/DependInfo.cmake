
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linear/combine.cc" "src/linear/CMakeFiles/sit_linear.dir/combine.cc.o" "gcc" "src/linear/CMakeFiles/sit_linear.dir/combine.cc.o.d"
  "/root/repo/src/linear/cost.cc" "src/linear/CMakeFiles/sit_linear.dir/cost.cc.o" "gcc" "src/linear/CMakeFiles/sit_linear.dir/cost.cc.o.d"
  "/root/repo/src/linear/extract.cc" "src/linear/CMakeFiles/sit_linear.dir/extract.cc.o" "gcc" "src/linear/CMakeFiles/sit_linear.dir/extract.cc.o.d"
  "/root/repo/src/linear/frequency.cc" "src/linear/CMakeFiles/sit_linear.dir/frequency.cc.o" "gcc" "src/linear/CMakeFiles/sit_linear.dir/frequency.cc.o.d"
  "/root/repo/src/linear/linear_rep.cc" "src/linear/CMakeFiles/sit_linear.dir/linear_rep.cc.o" "gcc" "src/linear/CMakeFiles/sit_linear.dir/linear_rep.cc.o.d"
  "/root/repo/src/linear/optimize.cc" "src/linear/CMakeFiles/sit_linear.dir/optimize.cc.o" "gcc" "src/linear/CMakeFiles/sit_linear.dir/optimize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/sit_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sit_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sit_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sit_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
