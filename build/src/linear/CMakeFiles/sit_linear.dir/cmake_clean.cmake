file(REMOVE_RECURSE
  "CMakeFiles/sit_linear.dir/combine.cc.o"
  "CMakeFiles/sit_linear.dir/combine.cc.o.d"
  "CMakeFiles/sit_linear.dir/cost.cc.o"
  "CMakeFiles/sit_linear.dir/cost.cc.o.d"
  "CMakeFiles/sit_linear.dir/extract.cc.o"
  "CMakeFiles/sit_linear.dir/extract.cc.o.d"
  "CMakeFiles/sit_linear.dir/frequency.cc.o"
  "CMakeFiles/sit_linear.dir/frequency.cc.o.d"
  "CMakeFiles/sit_linear.dir/linear_rep.cc.o"
  "CMakeFiles/sit_linear.dir/linear_rep.cc.o.d"
  "CMakeFiles/sit_linear.dir/optimize.cc.o"
  "CMakeFiles/sit_linear.dir/optimize.cc.o.d"
  "libsit_linear.a"
  "libsit_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
