file(REMOVE_RECURSE
  "libsit_parallel.a"
)
