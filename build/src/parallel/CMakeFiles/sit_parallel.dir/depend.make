# Empty dependencies file for sit_parallel.
# This may be replaced when dependencies are built.
