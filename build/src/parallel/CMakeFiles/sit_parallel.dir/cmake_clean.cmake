file(REMOVE_RECURSE
  "CMakeFiles/sit_parallel.dir/strategies.cc.o"
  "CMakeFiles/sit_parallel.dir/strategies.cc.o.d"
  "CMakeFiles/sit_parallel.dir/transforms.cc.o"
  "CMakeFiles/sit_parallel.dir/transforms.cc.o.d"
  "libsit_parallel.a"
  "libsit_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
