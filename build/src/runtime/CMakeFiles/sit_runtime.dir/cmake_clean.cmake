file(REMOVE_RECURSE
  "CMakeFiles/sit_runtime.dir/flatten.cc.o"
  "CMakeFiles/sit_runtime.dir/flatten.cc.o.d"
  "CMakeFiles/sit_runtime.dir/interp.cc.o"
  "CMakeFiles/sit_runtime.dir/interp.cc.o.d"
  "libsit_runtime.a"
  "libsit_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
