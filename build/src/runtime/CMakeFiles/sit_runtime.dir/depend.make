# Empty dependencies file for sit_runtime.
# This may be replaced when dependencies are built.
