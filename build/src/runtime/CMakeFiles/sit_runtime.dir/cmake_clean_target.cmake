file(REMOVE_RECURSE
  "libsit_runtime.a"
)
