file(REMOVE_RECURSE
  "libsit_machine.a"
)
