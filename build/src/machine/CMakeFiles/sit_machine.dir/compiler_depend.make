# Empty compiler generated dependencies file for sit_machine.
# This may be replaced when dependencies are built.
