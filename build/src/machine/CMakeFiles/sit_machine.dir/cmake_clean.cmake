file(REMOVE_RECURSE
  "CMakeFiles/sit_machine.dir/machine.cc.o"
  "CMakeFiles/sit_machine.dir/machine.cc.o.d"
  "libsit_machine.a"
  "libsit_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
