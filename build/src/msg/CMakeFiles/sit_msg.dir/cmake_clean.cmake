file(REMOVE_RECURSE
  "CMakeFiles/sit_msg.dir/messaging.cc.o"
  "CMakeFiles/sit_msg.dir/messaging.cc.o.d"
  "libsit_msg.a"
  "libsit_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sit_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
