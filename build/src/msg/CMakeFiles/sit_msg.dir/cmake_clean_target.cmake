file(REMOVE_RECURSE
  "libsit_msg.a"
)
