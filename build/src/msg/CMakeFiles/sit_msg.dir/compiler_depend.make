# Empty compiler generated dependencies file for sit_msg.
# This may be replaced when dependencies are built.
