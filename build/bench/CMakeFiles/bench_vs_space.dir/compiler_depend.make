# Empty compiler generated dependencies file for bench_vs_space.
# This may be replaced when dependencies are built.
