file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_space.dir/bench_vs_space.cc.o"
  "CMakeFiles/bench_vs_space.dir/bench_vs_space.cc.o.d"
  "bench_vs_space"
  "bench_vs_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
