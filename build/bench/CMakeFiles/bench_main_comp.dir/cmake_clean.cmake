file(REMOVE_RECURSE
  "CMakeFiles/bench_main_comp.dir/bench_main_comp.cc.o"
  "CMakeFiles/bench_main_comp.dir/bench_main_comp.cc.o.d"
  "bench_main_comp"
  "bench_main_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_main_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
