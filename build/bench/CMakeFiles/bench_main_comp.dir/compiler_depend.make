# Empty compiler generated dependencies file for bench_main_comp.
# This may be replaced when dependencies are built.
