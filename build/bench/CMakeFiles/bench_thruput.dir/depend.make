# Empty dependencies file for bench_thruput.
# This may be replaced when dependencies are built.
