file(REMOVE_RECURSE
  "CMakeFiles/bench_thruput.dir/bench_thruput.cc.o"
  "CMakeFiles/bench_thruput.dir/bench_thruput.cc.o.d"
  "bench_thruput"
  "bench_thruput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thruput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
