# Empty compiler generated dependencies file for bench_softpipe.
# This may be replaced when dependencies are built.
