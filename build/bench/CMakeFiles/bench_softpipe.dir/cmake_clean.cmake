file(REMOVE_RECURSE
  "CMakeFiles/bench_softpipe.dir/bench_softpipe.cc.o"
  "CMakeFiles/bench_softpipe.dir/bench_softpipe.cc.o.d"
  "bench_softpipe"
  "bench_softpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_softpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
