file(REMOVE_RECURSE
  "CMakeFiles/bench_teleport.dir/bench_teleport.cc.o"
  "CMakeFiles/bench_teleport.dir/bench_teleport.cc.o.d"
  "bench_teleport"
  "bench_teleport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_teleport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
