# Empty compiler generated dependencies file for bench_teleport.
# This may be replaced when dependencies are built.
