
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scaling.cc" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cc.o" "gcc" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sit_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/sit_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/sit_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/linear/CMakeFiles/sit_linear.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/sit_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/sit_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sdep/CMakeFiles/sit_sdep.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sit_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sit_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sit_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
