file(REMOVE_RECURSE
  "CMakeFiles/bench_benchchar.dir/bench_benchchar.cc.o"
  "CMakeFiles/bench_benchchar.dir/bench_benchchar.cc.o.d"
  "bench_benchchar"
  "bench_benchchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_benchchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
