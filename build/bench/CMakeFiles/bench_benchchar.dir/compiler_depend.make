# Empty compiler generated dependencies file for bench_benchchar.
# This may be replaced when dependencies are built.
