file(REMOVE_RECURSE
  "CMakeFiles/bench_fine_grained.dir/bench_fine_grained.cc.o"
  "CMakeFiles/bench_fine_grained.dir/bench_fine_grained.cc.o.d"
  "bench_fine_grained"
  "bench_fine_grained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fine_grained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
