# Empty dependencies file for bench_fine_grained.
# This may be replaced when dependencies are built.
