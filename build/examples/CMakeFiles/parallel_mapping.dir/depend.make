# Empty dependencies file for parallel_mapping.
# This may be replaced when dependencies are built.
