file(REMOVE_RECURSE
  "CMakeFiles/parallel_mapping.dir/parallel_mapping.cpp.o"
  "CMakeFiles/parallel_mapping.dir/parallel_mapping.cpp.o.d"
  "parallel_mapping"
  "parallel_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
