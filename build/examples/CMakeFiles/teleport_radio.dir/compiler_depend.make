# Empty compiler generated dependencies file for teleport_radio.
# This may be replaced when dependencies are built.
