file(REMOVE_RECURSE
  "CMakeFiles/teleport_radio.dir/teleport_radio.cpp.o"
  "CMakeFiles/teleport_radio.dir/teleport_radio.cpp.o.d"
  "teleport_radio"
  "teleport_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teleport_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
