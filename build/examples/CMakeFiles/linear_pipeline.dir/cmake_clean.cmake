file(REMOVE_RECURSE
  "CMakeFiles/linear_pipeline.dir/linear_pipeline.cpp.o"
  "CMakeFiles/linear_pipeline.dir/linear_pipeline.cpp.o.d"
  "linear_pipeline"
  "linear_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
