# Empty dependencies file for linear_pipeline.
# This may be replaced when dependencies are built.
