// Tests for balance equations, initialization schedules, and the executor.

#include <gtest/gtest.h>

#include <cmath>

#include "ir/dsl.h"
#include "sched/exec.h"
#include "sched/rational.h"
#include "sched/schedule.h"

namespace sit::sched {
namespace {

using namespace sit::ir::dsl;
using namespace sit::ir;

TEST(Rational, NormalizationAndArithmetic) {
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_EQ(Rat(-2, -4), Rat(1, 2));
  EXPECT_EQ(Rat(1, -2).num(), -1);
  EXPECT_EQ((Rat(1, 2) * Rat(2, 3)), Rat(1, 3));
  EXPECT_EQ((Rat(1, 2) + Rat(1, 3)), Rat(5, 6));
  EXPECT_EQ((Rat(1, 2) / Rat(1, 4)), Rat(2));
  EXPECT_THROW(Rat(1, 0), std::invalid_argument);
  EXPECT_THROW(Rat(1) / Rat(0), std::domain_error);
}

NodeP pass(const std::string& name, int pp, int ps) {
  // Pops pp, pushes ps copies of the first item (rates only matter here).
  std::vector<StmtP> body;
  for (int i = 0; i < ps; ++i) body.push_back(push_(peek_(0)));
  body.push_back(discard(pp));
  return filter(name).rates(pp, pp, ps).work(seq(body)).node();
}

NodeP source(const std::string& name, double val, int ps) {
  std::vector<StmtP> body;
  for (int i = 0; i < ps; ++i) body.push_back(push_(c(val)));
  return filter(name).rates(0, 0, ps).work(seq(body)).node();
}

NodeP sink(const std::string& name, int pp) {
  return filter(name).rates(pp, pp, 0).work(seq({discard(pp)})).node();
}

TEST(Schedule, BalancedPipelineRepetitions) {
  // a: 1->2, b: 3->1  => reps a=3, b=2 (lcm of rates).
  auto p = make_pipeline("p", {pass("a", 1, 2), pass("b", 3, 1)});
  Executor ex(p);
  const auto& g = ex.graph();
  const auto& s = ex.schedule();
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].name == "a") EXPECT_EQ(s.reps[i], 3);
    if (g.actors[i].name == "b") EXPECT_EQ(s.reps[i], 2);
  }
  EXPECT_EQ(s.input_per_steady, 3);
  EXPECT_EQ(s.output_per_steady, 2);
}

TEST(Schedule, InconsistentSplitJoinThrows) {
  // Duplicate splitter, both branches 1->1, but joiner weights (1,2):
  // balance around the joiner is unsatisfiable.
  auto sj = make_splitjoin("sj", duplicate_split(), roundrobin_join({1, 2}),
                           {pass("x", 1, 1), pass("y", 1, 1)});
  EXPECT_THROW(Executor ex(sj), std::runtime_error);
}

TEST(Schedule, PeekingFilterGetsInitBuffer) {
  auto f = filter("win3")
               .rates(3, 1, 1)
               .work(seq({push_(peek_(0) + peek_(1) + peek_(2)), discard(1)}))
               .node();
  auto p = make_pipeline("p", {source("src", 1.0, 1), f, sink("snk", 1)});
  Executor ex(p);
  const auto& g = ex.graph();
  const auto& s = ex.schedule();
  // The source must fire twice during init to buffer the peek window.
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].name == "src") EXPECT_EQ(s.init_fires[i], 2);
    if (g.actors[i].name == "win3") EXPECT_EQ(s.init_fires[i], 0);
  }
}

TEST(Exec, PipelineComputesCorrectStream) {
  // src pushes 1,2,3,...; doubler multiplies by 2.
  auto src = filter("src")
                 .iscalar("n", 0)
                 .rates(0, 0, 1)
                 .work(seq({let("n", v("n") + 1), push_(to_float(v("n")))}))
                 .node();
  auto dbl = filter("dbl").rates(1, 1, 1).work(seq({push_(pop_() * c(2.0))})).node();
  auto p = make_pipeline("p", {src, dbl});
  Executor ex(p);
  const auto out = ex.run_steady(5);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], 2.0 * (i + 1));
}

TEST(Exec, ExternalInputViaGenerator) {
  auto dbl = filter("dbl").rates(1, 1, 1).work(seq({push_(pop_() * c(2.0))})).node();
  Executor ex(make_pipeline("p", {dbl}));
  ex.set_input_generator([](std::int64_t i) { return static_cast<double>(i); });
  const auto out = ex.run_steady(4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[3], 6.0);
}

TEST(Exec, SplitJoinRoundRobinRouting) {
  // RR(1,1) split; left adds 100, right adds 200; RR(1,1) join.
  auto l = filter("l").rates(1, 1, 1).work(seq({push_(pop_() + c(100.0))})).node();
  auto r = filter("r").rates(1, 1, 1).work(seq({push_(pop_() + c(200.0))})).node();
  auto sj = make_splitjoin("sj", roundrobin_split({1, 1}), roundrobin_join({1, 1}),
                           {l, r});
  Executor ex(sj);
  ex.set_input_generator([](std::int64_t i) { return static_cast<double>(i); });
  const auto out = ex.run_steady(3);
  ASSERT_EQ(out.size(), 6u);
  // items 0,1,2,... alternate: 0->l, 1->r, joined back in order.
  EXPECT_DOUBLE_EQ(out[0], 100.0);
  EXPECT_DOUBLE_EQ(out[1], 201.0);
  EXPECT_DOUBLE_EQ(out[2], 102.0);
  EXPECT_DOUBLE_EQ(out[3], 203.0);
}

TEST(Exec, DuplicateSplitterCopies) {
  auto l = filter("l").rates(1, 1, 1).work(seq({push_(pop_())})).node();
  auto r = filter("r").rates(1, 1, 1).work(seq({push_(-pop_())})).node();
  auto sj = make_splitjoin("sj", duplicate_split(), roundrobin_join({1, 1}), {l, r});
  Executor ex(sj);
  ex.set_input_generator([](std::int64_t i) { return static_cast<double>(i + 1); });
  const auto out = ex.run_steady(2);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
  EXPECT_DOUBLE_EQ(out[2], 2.0);
  EXPECT_DOUBLE_EQ(out[3], -2.0);
}

TEST(Exec, FeedbackLoopEcho) {
  // Echo: out[i] = in[i] + 0.5 * out[i - 2].  Joiner rr(1,1) merges input
  // with delayed feedback; body adds pairs; splitter rr(1,1) sends to output
  // and back through a gain filter.
  auto body = filter("add")
                  .rates(2, 2, 2)
                  .work(seq({let("s", pop_() + pop_()), push_(v("s")), push_(v("s"))}))
                  .node();
  auto gain = filter("gain").rates(1, 1, 1).work(seq({push_(pop_() * c(0.5))})).node();
  auto fb = make_feedback("echo", roundrobin_join({1, 1}), body,
                          roundrobin_split({1, 1}), gain, 1, {0.0});
  Executor ex(fb);
  ex.set_input_generator([](std::int64_t) { return 1.0; });
  const auto out = ex.run_steady(6);
  ASSERT_GE(out.size(), 4u);
  // y0 = 1 + 0 = 1; y1 = 1 + 0.5*y0 = 1.5; y2 = 1 + 0.5*y1 = 1.75 ...
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 1.5);
  EXPECT_DOUBLE_EQ(out[2], 1.75);
}

TEST(Exec, PeekingFilterSlidingWindow) {
  auto avg = filter("avg")
                 .rates(3, 1, 1)
                 .work(seq({push_((peek_(0) + peek_(1) + peek_(2)) / c(3.0)),
                            discard(1)}))
                 .node();
  Executor ex(make_pipeline("p", {avg}));
  ex.set_input_generator([](std::int64_t i) { return static_cast<double>(i); });
  const auto out = ex.run_steady(4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);  // (0+1+2)/3
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[3], 4.0);
}

TEST(Exec, OpCountsAccumulatePerActor) {
  auto dbl = filter("dbl").rates(1, 1, 1).work(seq({push_(pop_() * c(2.0))})).node();
  Executor ex(make_pipeline("p", {dbl}));
  ex.set_input_generator([](std::int64_t) { return 1.0; });
  ex.run_steady(10);
  const auto total = ex.total_ops();
  EXPECT_EQ(total.flops, 10);      // one multiply per firing
  EXPECT_EQ(total.channel, 20);    // pop + push per firing
}

TEST(Exec, BufferBoundsAreReported) {
  auto up = pass("up", 1, 7);
  auto down = pass("down", 5, 1);
  auto p = make_pipeline("p", {source("s", 1.0, 1), up, down, sink("k", 1)});
  Executor ex(p);
  const auto& s = ex.schedule();
  bool found = false;
  for (std::size_t e = 0; e < ex.graph().edges.size(); ++e) {
    if (s.buffer_bound[e] >= 7) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sit::sched
