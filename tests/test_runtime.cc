// Tests for channels, the work-function interpreter, and graph flattening.

#include <gtest/gtest.h>

#include "ir/dsl.h"
#include "runtime/channel.h"
#include "runtime/flatgraph.h"
#include "runtime/interp.h"

namespace sit::runtime {
namespace {

using namespace sit::ir::dsl;
using ir::FilterSpec;

TEST(Channel, FifoOrderAndCounters) {
  Channel ch;
  ch.push_item(1.0);
  ch.push_item(2.0);
  ch.push_item(3.0);
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_DOUBLE_EQ(ch.peek_item(0), 1.0);
  EXPECT_DOUBLE_EQ(ch.peek_item(2), 3.0);
  EXPECT_DOUBLE_EQ(ch.pop_item(), 1.0);
  EXPECT_DOUBLE_EQ(ch.pop_item(), 2.0);
  EXPECT_EQ(ch.total_pushed(), 3);
  EXPECT_EQ(ch.total_popped(), 2);
}

TEST(Channel, PeekBeyondContentsThrows) {
  Channel ch;
  ch.push_item(1.0);
  EXPECT_THROW(ch.peek_item(1), std::runtime_error);
  EXPECT_THROW(ch.peek_item(-1), std::runtime_error);
  ch.pop_item();
  EXPECT_THROW(ch.pop_item(), std::runtime_error);
}

FilterSpec moving_avg3() {
  return filter("avg3")
      .rates(3, 1, 1)
      .work(seq({push_((peek_(0) + peek_(1) + peek_(2)) / c(3.0)), discard(1)}))
      .build();
}

TEST(Interp, MovingAverageComputesCorrectly) {
  const FilterSpec f = moving_avg3();
  FilterState st = Interp::init_state(f);
  Channel in, out;
  for (int i = 1; i <= 5; ++i) in.push_item(i);
  Interp::run_work(f, st, in, out, nullptr);
  Interp::run_work(f, st, in, out, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.pop_item(), 2.0);
  EXPECT_DOUBLE_EQ(out.pop_item(), 3.0);
  EXPECT_EQ(in.size(), 3u);
}

TEST(Interp, StatePersistsAcrossInvocations) {
  // A running-sum accumulator: out = sum of all inputs so far.
  const FilterSpec f = filter("acc")
                           .rates(1, 1, 1)
                           .scalar("sum", ir::Value(0.0))
                           .work(seq({let("sum", v("sum") + pop_()), push_(v("sum"))}))
                           .build();
  FilterState st = Interp::init_state(f);
  Channel in, out;
  in.push_many({1.0, 2.0, 3.0});
  for (int i = 0; i < 3; ++i) Interp::run_work(f, st, in, out, nullptr);
  EXPECT_DOUBLE_EQ(out.pop_item(), 1.0);
  EXPECT_DOUBLE_EQ(out.pop_item(), 3.0);
  EXPECT_DOUBLE_EQ(out.pop_item(), 6.0);
}

TEST(Interp, InitFillsArrays) {
  // coeff[i] = i * 0.5 computed in init, used in work.
  const FilterSpec f =
      filter("w")
          .rates(1, 1, 1)
          .array("coeff", 4)
          .iscalar("idx", 0)
          .init(seq({for_("i", 0, 4, set_at("coeff", v("i"), v("i") * c(0.5)))}))
          .work(seq({push_(pop_() * at("coeff", v("idx"))),
                     let("idx", (v("idx") + 1) % 4)}))
          .build();
  FilterState st = Interp::init_state(f);
  ASSERT_EQ(st.arrays.at("coeff").size(), 4u);
  EXPECT_DOUBLE_EQ(st.arrays.at("coeff")[3].as_double(), 1.5);
  Channel in, out;
  in.push_many({1.0, 1.0, 1.0, 1.0, 1.0});
  for (int i = 0; i < 5; ++i) Interp::run_work(f, st, in, out, nullptr);
  EXPECT_DOUBLE_EQ(out.pop_item(), 0.0);
  EXPECT_DOUBLE_EQ(out.pop_item(), 0.5);
  EXPECT_DOUBLE_EQ(out.pop_item(), 1.0);
  EXPECT_DOUBLE_EQ(out.pop_item(), 1.5);
  EXPECT_DOUBLE_EQ(out.pop_item(), 0.0);  // wrapped around
}

TEST(Interp, IntegerSemanticsAreJavaLike) {
  const FilterSpec f =
      filter("ints")
          .rates(0, 0, 3)
          .work(seq({push_(E(7) / E(2)),            // int division -> 3
                     push_(E(7) % E(3)),            // 1
                     push_((E(1) << 4) ^ E(0xFF))}))  // 16 ^ 255 = 239
          .build();
  FilterState st = Interp::init_state(f);
  Channel in, out;
  Interp::run_work(f, st, in, out, nullptr);
  EXPECT_DOUBLE_EQ(out.pop_item(), 3.0);
  EXPECT_DOUBLE_EQ(out.pop_item(), 1.0);
  EXPECT_DOUBLE_EQ(out.pop_item(), 239.0);
}

TEST(Interp, OpCountingTalliesCategories) {
  const FilterSpec f = moving_avg3();
  FilterState st = Interp::init_state(f);
  Channel in, out;
  in.push_many({1, 2, 3});
  OpCounts ops;
  Interp::run_work(f, st, in, out, &ops);
  EXPECT_EQ(ops.flops, 2);     // two adds
  EXPECT_EQ(ops.divs, 1);      // one division
  EXPECT_EQ(ops.channel, 5);   // 3 peeks + 1 pop + 1 push
  EXPECT_GT(ops.weighted(), 0.0);
}

TEST(Interp, HandlersMutateState) {
  const FilterSpec f = filter("gain")
                           .rates(1, 1, 1)
                           .scalar("g", ir::Value(1.0))
                           .work(seq({push_(pop_() * v("g"))}))
                           .handler("setGain", {"x"}, seq({let("g", v("x"))}))
                           .build();
  FilterState st = Interp::init_state(f);
  Interp::run_handler(f, st, "setGain", {ir::Value(2.5)});
  Channel in, out;
  in.push_item(4.0);
  Interp::run_work(f, st, in, out, nullptr);
  EXPECT_DOUBLE_EQ(out.pop_item(), 10.0);
  EXPECT_THROW(Interp::run_handler(f, st, "nope", {}), std::runtime_error);
}

TEST(Interp, SendEmitsMessage) {
  const FilterSpec f =
      filter("sender")
          .rates(1, 1, 1)
          .work(seq({let("x", pop_()),
                     ir::send("portalA", "setf", {v("x").e}, 2, 5), push_(v("x"))}))
          .build();
  FilterState st = Interp::init_state(f);
  Channel in, out;
  in.push_item(7.0);
  std::vector<SentMessage> got;
  MessageSink sink = [&](const SentMessage& m) { got.push_back(m); };
  Interp::run_work(f, st, in, out, nullptr, &sink);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].portal, "portalA");
  EXPECT_EQ(got[0].method, "setf");
  EXPECT_EQ(got[0].lat_min, 2);
  EXPECT_EQ(got[0].lat_max, 5);
  EXPECT_DOUBLE_EQ(got[0].args[0].as_double(), 7.0);
}

// ---- flattening -------------------------------------------------------------

using namespace sit::ir;

NodeP rate_filter(const std::string& name, int peek, int pp, int ps) {
  std::vector<ir::StmtP> body;
  for (int i = 0; i < ps; ++i) body.push_back(push_(peek_(0)));
  body.push_back(discard(pp));
  return dsl::filter(name).rates(std::max(peek, pp), pp, ps).work(seq(body)).node();
}

TEST(Flatten, PipelineMakesChainOfEdges) {
  auto p = make_pipeline("p", {rate_filter("a", 1, 1, 2), rate_filter("b", 1, 1, 1),
                               rate_filter("c", 1, 1, 1)});
  const FlatGraph g = flatten(p);
  EXPECT_EQ(g.actors.size(), 3u);
  // two internal edges + external input + external output
  EXPECT_EQ(g.edges.size(), 4u);
  EXPECT_GE(g.input_edge, 0);
  EXPECT_GE(g.output_edge, 0);
}

TEST(Flatten, SplitJoinCreatesSplitterAndJoinerActors) {
  auto sj = make_splitjoin("sj", duplicate_split(), roundrobin_join({1, 2}),
                           {rate_filter("a", 1, 1, 1), rate_filter("b", 1, 1, 2)});
  const FlatGraph g = flatten(sj);
  EXPECT_EQ(g.actors.size(), 4u);
  int splitters = 0, joiners = 0;
  for (const auto& a : g.actors) {
    if (a.kind == FlatActor::Kind::Splitter) ++splitters;
    if (a.kind == FlatActor::Kind::Joiner) ++joiners;
  }
  EXPECT_EQ(splitters, 1);
  EXPECT_EQ(joiners, 1);
}

TEST(Flatten, FeedbackBackEdgeCarriesInitialItems) {
  // Fibonacci-style loop: joiner rr(0 from outside is illegal, so we use a
  // closed loop: body passes through, loop adds).  Use weights (1,1) with an
  // external source.
  auto body = rate_filter("body", 1, 1, 1);
  auto loop = rate_filter("loop", 1, 1, 1);
  auto fb = make_feedback("fb", roundrobin_join({1, 1}), body,
                          roundrobin_split({1, 1}), loop, 2, {1.0, 2.0});
  const FlatGraph g = flatten(fb);
  int back = 0;
  for (const auto& e : g.edges) {
    if (e.back_edge) {
      ++back;
      EXPECT_EQ(e.initial_items.size(), 2u);
    }
  }
  EXPECT_EQ(back, 1);
  EXPECT_NO_THROW(g.topo_order());
}

TEST(Flatten, TopoOrderRespectsDataFlow) {
  auto p = make_pipeline("p", {rate_filter("a", 1, 1, 1), rate_filter("b", 1, 1, 1)});
  const FlatGraph g = flatten(p);
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(g.actors[static_cast<std::size_t>(order[0])].name, "a");
  EXPECT_EQ(g.actors[static_cast<std::size_t>(order[1])].name, "b");
}

TEST(Flatten, MismatchedPipelineStagesThrow) {
  // A sink followed by more stages: producer/consumer mismatch.
  auto sink = dsl::filter("snk").rates(1, 1, 0).work(seq({discard(1)})).node();
  auto p = make_pipeline("p", {sink, rate_filter("b", 1, 1, 1)});
  EXPECT_THROW(flatten(p), std::runtime_error);
}

}  // namespace
}  // namespace sit::runtime
