// Tests for the information-wavefront analysis (sdep, transfer functions,
// deadlock/overflow detection) and teleport messaging semantics.

#include <gtest/gtest.h>

#include "apps/radio.h"
#include "ir/dsl.h"
#include "msg/messaging.h"
#include "runtime/flatgraph.h"
#include "sdep/sdep.h"

namespace sit::sdep {
namespace {

using namespace sit::ir;
using namespace sit::ir::dsl;

NodeP pass(const std::string& name, int pp, int ps, int extra_peek = 0) {
  std::vector<StmtP> body;
  for (int i = 0; i < ps; ++i) body.push_back(push_(peek_(0)));
  body.push_back(discard(pp));
  return filter(name).rates(pp + extra_peek, pp, ps).work(seq(body)).node();
}

NodeP src(const std::string& name, int ps) {
  std::vector<StmtP> body;
  for (int i = 0; i < ps; ++i) body.push_back(push_(c(1.0)));
  return filter(name).rates(0, 0, ps).work(seq(body)).node();
}

NodeP snk(const std::string& name, int pp) {
  return filter(name).rates(pp, pp, 0).work(seq({discard(pp)})).node();
}

int actor_id(const runtime::FlatGraph& g, const std::string& name) {
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

TEST(TransferFns, FilterClosedFormsMatchPaper) {
  // peek 3, pop 1, push 2: after n firings, consumed window n+2, pushed 2n.
  EXPECT_EQ(filter_max_transfer(3, 1, 2, 2), 0);   // below peek window
  EXPECT_EQ(filter_max_transfer(3, 1, 2, 3), 2);   // one firing
  EXPECT_EQ(filter_max_transfer(3, 1, 2, 7), 10);  // five firings
  EXPECT_EQ(filter_min_transfer(3, 1, 2, 1), 3);   // one firing needs 3
  EXPECT_EQ(filter_min_transfer(3, 1, 2, 4), 4);   // two firings need 4
}

TEST(TransferFns, MaxAndMinAreAdjoint) {
  // min(max(x)) <= x and max(min(y)) >= y for a range of rates.
  for (int peek : {1, 2, 5}) {
    for (int pop : {1, 2}) {
      if (peek < pop) continue;
      for (int push : {1, 3}) {
        for (std::int64_t x = peek; x < 40; ++x) {
          const auto y = filter_max_transfer(peek, pop, push, x);
          if (y > 0) {
            EXPECT_LE(filter_min_transfer(peek, pop, push, y), x);
          }
        }
      }
    }
  }
}

TEST(Sdep, PipelineChainCounts) {
  // a: 1->2, b: 3->1.  For snk (pop 1) to fire once, b fires once, needing
  // 3 items => a fires twice (ceil(3/2)), needing 2 source items... check
  // the relation directly.
  auto p = make_pipeline("p", {src("s", 1), pass("a", 1, 2), pass("b", 3, 1),
                               snk("k", 1)});
  const auto g = runtime::flatten(p);
  SdepAnalysis an(g);
  const int s = actor_id(g, "s"), a = actor_id(g, "a"), b = actor_id(g, "b"),
            k = actor_id(g, "k");
  EXPECT_TRUE(an.is_upstream_of(s, k));
  EXPECT_FALSE(an.is_upstream_of(k, s));
  EXPECT_EQ(an.sdep(a, b, 1), 2);  // b's 1st firing needs 2 firings of a
  EXPECT_EQ(an.sdep(a, b, 2), 3);  // 6 items: 3 firings of a
  EXPECT_EQ(an.sdep(s, k, 1), 2);  // 2 firings of a consume 2 source items
  EXPECT_EQ(an.sdep(b, k, 5), 5);
}

TEST(Sdep, PeriodicityHolds) {
  auto p = make_pipeline("p", {src("s", 2), pass("a", 3, 2), snk("k", 1)});
  const auto g = runtime::flatten(p);
  SdepAnalysis an(g);
  const int s = actor_id(g, "s"), k = actor_id(g, "k");
  const auto& sch = an.schedule();
  const std::int64_t rep_k = sch.reps[static_cast<std::size_t>(k)];
  const std::int64_t rep_s = sch.reps[static_cast<std::size_t>(s)];
  for (std::int64_t n = rep_k + 1; n < rep_k * 3; ++n) {
    EXPECT_EQ(an.sdep(s, k, n + rep_k), an.sdep(s, k, n) + rep_s) << n;
  }
}

TEST(Sdep, PeekingShiftsTheWavefront) {
  auto plain = make_pipeline("p", {src("s", 1), pass("a", 1, 1, 0), snk("k", 1)});
  auto peeky = make_pipeline("q", {src("s", 1), pass("a", 1, 1, 2), snk("k", 1)});
  const auto g1 = runtime::flatten(plain);
  const auto g2 = runtime::flatten(peeky);
  SdepAnalysis a1(g1), a2(g2);
  // With peek extra 2, the source must run 2 firings ahead.
  EXPECT_EQ(a1.sdep(actor_id(g1, "s"), actor_id(g1, "k"), 4), 4);
  EXPECT_EQ(a2.sdep(actor_id(g2, "s"), actor_id(g2, "k"), 4), 6);
}

TEST(Sdep, MaxFiringsInvertsSdep) {
  auto p = make_pipeline("p", {src("s", 2), pass("a", 3, 2), snk("k", 1)});
  const auto g = runtime::flatten(p);
  SdepAnalysis an(g);
  const int s = actor_id(g, "s"), k = actor_id(g, "k");
  for (std::int64_t m = 0; m < 30; ++m) {
    const std::int64_t n = an.max_firings(s, k, m);
    EXPECT_LE(an.sdep(s, k, n), m);
    EXPECT_GT(an.sdep(s, k, n + 1), m);
  }
}

TEST(Sdep, SplitJoinPaths) {
  auto sj = make_pipeline(
      "p", {src("s", 2),
            make_splitjoin("sj", roundrobin_split({1, 1}), roundrobin_join({1, 1}),
                           {pass("l", 1, 1), pass("r", 1, 1)}),
            snk("k", 2)});
  const auto g = runtime::flatten(sj);
  SdepAnalysis an(g);
  const int l = actor_id(g, "l"), r = actor_id(g, "r"), k = actor_id(g, "k");
  EXPECT_FALSE(an.is_upstream_of(l, r));  // parallel branches
  EXPECT_TRUE(an.is_upstream_of(l, k));
  EXPECT_EQ(an.sdep(l, k, 1), 1);
  EXPECT_EQ(an.sdep(r, k, 1), 1);
}

TEST(Verify, HealthyFeedbackLoopPasses) {
  auto body = filter("body").rates(2, 2, 2)
                  .work(seq({let("s", pop_() + pop_()), push_(v("s")), push_(v("s"))}))
                  .node();
  auto loop = filter("loop").rates(1, 1, 1).work(seq({push_(pop_() * c(0.5))})).node();
  auto fb = make_pipeline(
      "p", {src("s", 1),
            make_feedback("fb", roundrobin_join({1, 1}), body,
                          roundrobin_split({1, 1}), loop, 1, {0.0}),
            snk("k", 1)});
  const auto checks = check_feedback_loops(runtime::flatten(fb));
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_FALSE(checks[0].deadlock);
  EXPECT_FALSE(checks[0].overflow);
}

TEST(Verify, StarvedFeedbackLoopIsDeadlock) {
  // Loop arm consumes 2 per item produced: the delay can never sustain it.
  auto body = filter("body").rates(2, 2, 2)
                  .work(seq({let("s", pop_() + pop_()), push_(v("s")), push_(v("s"))}))
                  .node();
  auto loop = filter("loop").rates(2, 2, 1)
                  .work(seq({push_(pop_() + pop_())}))
                  .node();
  auto fb = make_pipeline(
      "p", {src("s", 1),
            make_feedback("fb", roundrobin_join({1, 1}), body,
                          roundrobin_split({1, 1}), loop, 1, {0.0}),
            snk("k", 1)});
  const auto g = runtime::flatten(fb);
  const auto checks = check_feedback_loops(g);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_TRUE(checks[0].deadlock || checks[0].overflow);
}

TEST(Verify, BufferBoundsFlagWideMismatches) {
  auto p = make_pipeline("p", {src("s", 100), pass("a", 1, 1), snk("k", 1)});
  const auto flagged = check_buffer_bounds(runtime::flatten(p), 50);
  EXPECT_FALSE(flagged.empty());
  const auto fine = check_buffer_bounds(runtime::flatten(p), 1000);
  EXPECT_TRUE(fine.empty());
}

}  // namespace
}  // namespace sit::sdep

namespace sit::msg {
namespace {

using namespace sit::ir;
using namespace sit::ir::dsl;

// Sender downstream of receiver: gain filter upstream receives setGain from
// a monitor downstream.
struct UpstreamRig {
  NodeP graph;
  UpstreamRig() {
    // Pushes 4 counter values per firing so one steady state holds several
    // receiver firings -- that is what makes the schedule constraints bite.
    auto source = filter("src")
                      .rates(0, 0, 4)
                      .iscalar("t", 0)
                      .work(seq({for_("i", 0, 4,
                                      seq({let("t", v("t") + 1),
                                           push_(to_float(v("t")))}))}))
                      .node();
    auto gain = filter("gain")
                    .rates(1, 1, 1)
                    .scalar("g", ir::Value(1.0))
                    .work(seq({push_(pop_() * v("g"))}))
                    .handler("setGain", {"x"}, seq({let("g", v("x"))}))
                    .node();
    // Monitor sends setGain(2) with latency 2 when it sees item value 5.
    auto monitor = filter("monitor")
                       .rates(1, 1, 1)
                       .work(seq({let("x", pop_()),
                                  if_(v("x") == c(5.0),
                                      ir::send("p", "setGain", {c(2.0).e}, 2, 2)),
                                  push_(v("x"))}))
                       .node();
    graph = make_pipeline("rig", {source, gain, monitor,
                                  filter("snk").rates(1, 1, 0).work(seq({discard(1)})).node()});
  }
};

TEST(Messaging, UpstreamDeliveryLandsOnTheWavefront) {
  UpstreamRig rig;
  MessagingExecutor ex(rig.graph);
  ex.register_receiver("p", "gain");
  ex.run_steady(20);
  const auto& st = ex.stats();
  ASSERT_EQ(st.sent, 1);
  ASSERT_EQ(st.delivered, 1);
  // Sent during monitor firing 5 with latency 2 => affects monitor firing 7;
  // the latest gain firing affecting that is firing 7 (1:1 rates), so the
  // handler runs immediately after gain's firing 7.
  EXPECT_EQ(st.deliveries[0].receiver, "gain");
  EXPECT_EQ(st.deliveries[0].receiver_firing, 7);
  EXPECT_FALSE(st.deliveries[0].before);
}

TEST(Messaging, UpstreamConstraintThrottlesReceiver) {
  UpstreamRig rig;
  MessagingExecutor ex(rig.graph);
  ex.register_receiver("p", "gain");
  ex.run_steady(5);
  // The gain filter may never run more than latency(2) firings ahead of the
  // monitor, so the unconstrained sweep must have been stalled at least once.
  EXPECT_GT(ex.stats().constraint_stalls, 0);
}

TEST(Messaging, DownstreamDeliveryBeforeAffectedFiring) {
  // Sender upstream: a controller sends downstream to a sink-side filter.
  auto source = filter("src")
                    .rates(0, 0, 1)
                    .iscalar("t", 0)
                    .work(seq({let("t", v("t") + 1), push_(to_float(v("t")))}))
                    .node();
  auto ctrl = filter("ctrl")
                  .rates(1, 1, 1)
                  .work(seq({let("x", pop_()),
                             if_(v("x") == c(3.0),
                                 ir::send("q", "setMode", {c(1.0).e}, 4, 4)),
                             push_(v("x"))}))
                  .node();
  auto modal = filter("modal")
                   .rates(1, 1, 1)
                   .scalar("m", ir::Value(0.0))
                   .work(seq({push_(pop_() + v("m") * c(100.0))}))
                   .handler("setMode", {"x"}, seq({let("m", v("x"))}))
                   .node();
  auto g = make_pipeline("rig", {source, ctrl, modal});
  MessagingExecutor ex(g);
  ex.register_receiver("q", "modal");
  const auto out = ex.run_steady(16);
  const auto& st = ex.stats();
  ASSERT_EQ(st.sent, 1);
  ASSERT_EQ(st.delivered, 1);
  // Sent at ctrl firing 3 with latency 4: first modal firing affected by
  // ctrl firing 7 is firing 7; delivery happens before it.
  EXPECT_EQ(st.deliveries[0].receiver_firing, 7);
  EXPECT_TRUE(st.deliveries[0].before);
  // Items 1..6 pass unchanged; from item 7 on, the mode offset applies.
  ASSERT_GE(out.size(), 8u);
  EXPECT_DOUBLE_EQ(out[5], 6.0);
  EXPECT_DOUBLE_EQ(out[6], 107.0);
}

TEST(Messaging, MaxLatencyDirectiveLimitsDecoupling) {
  UpstreamRig rig;
  MessagingExecutor ex(rig.graph);
  // gain may never run more than one firing ahead of the information
  // wavefront the sink has consumed.
  ex.add_latency_constraint("gain", "snk", 0);
  ex.run_steady(10);
  EXPECT_GT(ex.stats().constraint_stalls, 0);
}

TEST(Messaging, FreqHopRadioRetunesItself) {
  const auto radio = sit::apps::make_freq_hop_radio(8);
  MessagingExecutor ex(radio.graph);
  ex.register_receiver(radio.portal, radio.receiver);
  ex.run_steady(160);
  const auto& st = ex.stats();
  EXPECT_GT(st.sent, 0);
  // Every message whose delivery point fell inside the run arrived; at most
  // one can still be in flight at the cut-off.
  EXPECT_GE(st.delivered, st.sent - 1);
  EXPECT_LE(st.delivered, st.sent);
  EXPECT_GE(st.delivered, 1);
  for (const auto& d : st.deliveries) {
    EXPECT_EQ(d.receiver, "rf2if");
    EXPECT_FALSE(d.before);  // receiver is upstream of the sender
  }
}

TEST(Messaging, UnknownReceiverOrParallelPathRejected) {
  UpstreamRig rig;
  MessagingExecutor ex(rig.graph);
  EXPECT_THROW(ex.register_receiver("p", "nope"), std::invalid_argument);
  EXPECT_THROW(ex.add_latency_constraint("snk", "src", 1), std::invalid_argument);
}

}  // namespace
}  // namespace sit::msg
