// Differential tests: the threaded runtime must be observationally identical
// to the sequential executor.  Every built-in app and a population of
// randomized structured graphs run under ThreadedExecutor at 1, 2, and 4
// threads; program output, firing tallies, per-actor OpCounts, cumulative
// channel counters, and final filter state are held bit-equal.  Also covers
// the SPSC ring itself (wraparound, counter carry-over, and a concurrent
// coprime-rate stress) and the fallback rules for graphs the threaded
// runtime refuses.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/common.h"
#include "apps/radio.h"
#include "ir/dsl.h"
#include "parallel/transforms.h"
#include "runtime/spsc.h"
#include "sched/envopts.h"
#include "sched/exec.h"
#include "sched/texec.h"

namespace sit {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::Value;
using runtime::FilterState;
using runtime::OpCounts;
using runtime::SpscRing;

bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  return ba == bb;
}

void expect_same_doubles(const std::vector<double>& a,
                         const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(same_bits(a[i], b[i]))
        << what << " item " << i << ": " << a[i] << " vs " << b[i];
  }
}

void expect_same_value(const Value& a, const Value& b, const std::string& what) {
  ASSERT_EQ(a.is_int(), b.is_int()) << what << " tag mismatch";
  if (a.is_int()) {
    ASSERT_EQ(a.as_int(), b.as_int()) << what;
  } else {
    ASSERT_TRUE(same_bits(a.as_double(), b.as_double()))
        << what << ": " << a.as_double() << " vs " << b.as_double();
  }
}

void expect_same_state(const FilterState& a, const FilterState& b,
                       const std::string& who) {
  ASSERT_EQ(a.scalars.size(), b.scalars.size()) << who;
  for (const auto& [name, va] : a.scalars) {
    auto it = b.scalars.find(name);
    ASSERT_NE(it, b.scalars.end()) << who << " scalar " << name;
    expect_same_value(va, it->second, who + "." + name);
  }
  ASSERT_EQ(a.arrays.size(), b.arrays.size()) << who;
  for (const auto& [name, va] : a.arrays) {
    auto it = b.arrays.find(name);
    ASSERT_NE(it, b.arrays.end()) << who << " array " << name;
    ASSERT_EQ(va.size(), it->second.size()) << who << "." << name;
    for (std::size_t i = 0; i < va.size(); ++i) {
      expect_same_value(va[i], it->second[i],
                        who + "." + name + "[" + std::to_string(i) + "]");
    }
  }
}

void expect_same_counts(const OpCounts& a, const OpCounts& b,
                        const std::string& who) {
  EXPECT_EQ(a.int_ops, b.int_ops) << who << " int_ops";
  EXPECT_EQ(a.flops, b.flops) << who << " flops";
  EXPECT_EQ(a.divs, b.divs) << who << " divs";
  EXPECT_EQ(a.trans, b.trans) << who << " trans";
  EXPECT_EQ(a.mem, b.mem) << who << " mem";
  EXPECT_EQ(a.channel, b.channel) << who << " channel";
}

// Run the same graph under the sequential Executor and a ThreadedExecutor
// (two run_steady calls, so the threaded path is re-entered after the first
// calibration + partition) and hold every observable equal.  `batch` is the
// iteration-batching factor: 0 defers to SIT_BATCH, -1 forces the auto
// heuristic, >= 1 is explicit.
void expect_matches(const std::string& what,
                    const std::function<ir::NodeP()>& make, int threads,
                    const std::function<double(std::int64_t)>& gen = {},
                    int batch = 0) {
  SCOPED_TRACE(what + " @" + std::to_string(threads) + " threads batch=" +
               std::to_string(batch));
  sched::Executor seq(make(), {});
  sched::ExecOptions topt;
  topt.threads = threads;
  topt.batch = batch;
  sched::ThreadedExecutor tex(make(), topt);
  if (gen) {
    seq.set_input_generator(gen);
    tex.set_input_generator(gen);
  }

  expect_same_doubles(seq.run_steady(3), tex.run_steady(3), what + " output#1");
  expect_same_doubles(seq.run_steady(2), tex.run_steady(2), what + " output#2");

  const auto& g = seq.graph();
  ASSERT_EQ(g.actors.size(), tex.graph().actors.size()) << what;
  EXPECT_EQ(seq.firings(), tex.firings()) << what;
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    const int ai = static_cast<int>(a);
    expect_same_counts(seq.actor_ops()[a], tex.actor_ops()[a],
                       what + "/" + g.actors[a].name);
    if (g.actors[a].kind == runtime::FlatActor::Kind::Filter) {
      expect_same_state(seq.filter_state(ai), tex.filter_state(ai),
                        what + "/" + g.actors[a].name);
    }
  }
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const int ei = static_cast<int>(e);
    EXPECT_EQ(seq.channel(ei).total_pushed(), tex.edge_pushed(ei))
        << what << " edge " << e << " pushed";
    EXPECT_EQ(seq.channel(ei).total_popped(), tex.edge_popped(ei))
        << what << " edge " << e << " popped";
  }
}

// ---- whole-application differential -----------------------------------------

TEST(TexecDifferential, AllAppsAllThreadCounts) {
  for (const auto& info : apps::all_apps()) {
    for (int threads : {1, 2, 4}) {
      expect_matches(info.name, info.make, threads);
    }
  }
}

// The coarse-grained data-parallel apps, after the fission transform the
// bench applies, must actually run threaded (not fall back) and still match.
TEST(TexecDifferential, PreparedAppsRunThreaded) {
  for (const std::string name : {"FIR", "FilterBank", "FMRadio"}) {
    SCOPED_TRACE(name);
    const auto make = [&] {
      return parallel::coarsen_for_threads(apps::make_app(name), 4);
    };
    sched::ExecOptions topt;
    topt.threads = 4;
    sched::ThreadedExecutor tex(make(), topt);
    tex.run_steady(3);
    EXPECT_TRUE(tex.report().threaded) << tex.report().fallback_reason;
    EXPECT_GT(tex.report().ring_edges, 0);
    EXPECT_GT(tex.report().threads, 1);
    expect_matches(name + "/prepared", make, 4);
  }
}

// ---- randomized structured graphs -------------------------------------------

// Random pipelines of sources, FIRs (peeking), rate changers, and
// split-joins, ending at the external output so the item stream itself is
// compared.  Fixed seeds keep failures reproducible.
ir::NodeP random_graph(std::uint32_t seed) {
  std::mt19937 g(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(g);
  };
  int uniq = 0;
  auto nm = [&](const char* base) {
    return std::string(base) + "_" + std::to_string(seed) + "_" +
           std::to_string(uniq++);
  };

  // rate_safe stages keep a 1:1 signature so split-join branches stay
  // balanced; pipelines may also change rates.
  std::function<ir::NodeP(bool)> leaf_stage = [&](bool rate_safe) -> ir::NodeP {
    switch (pick(0, rate_safe ? 1 : 3)) {
      case 0:
        return apps::gain(nm("g"), 0.5 + 0.25 * pick(0, 4));
      case 1:
        return apps::lowpass_fir(nm("fir"), pick(3, 12), 0.3);
      case 2:
        return apps::downsample(nm("dec"), pick(2, 3));
      default:
        return apps::upsample(nm("up"), pick(2, 3));
    }
  };

  std::vector<ir::NodeP> stages;
  stages.push_back(apps::rand_source(nm("src"), pick(1, 2)));
  const int n_stages = pick(2, 4);
  for (int s = 0; s < n_stages; ++s) {
    if (pick(0, 3) == 0) {
      // A split-join of small per-branch pipelines.
      const int branches = pick(2, 3);
      std::vector<ir::NodeP> kids;
      for (int b = 0; b < branches; ++b) {
        std::vector<ir::NodeP> inner;
        const int depth = pick(1, 2);
        for (int d = 0; d < depth; ++d) inner.push_back(leaf_stage(true));
        kids.push_back(ir::make_pipeline(nm("branch"), inner));
      }
      ir::Splitter sp;
      ir::Joiner jn;
      jn.weights.assign(static_cast<std::size_t>(branches), 1);
      if (pick(0, 1) == 0) {
        sp.kind = ir::SJKind::Duplicate;
      } else {
        sp.kind = ir::SJKind::RoundRobin;
        sp.weights.assign(static_cast<std::size_t>(branches), 1);
      }
      stages.push_back(ir::make_splitjoin(nm("sj"), sp, jn, kids));
    } else {
      stages.push_back(leaf_stage(false));
    }
  }
  // No sink: the tail pushes to the external output, which the differential
  // harness compares item by item.
  return ir::make_pipeline(nm("rand"), stages);
}

TEST(TexecDifferential, RandomizedGraphs) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    for (int threads : {2, 4}) {
      expect_matches("rand" + std::to_string(seed),
                     [&] { return random_graph(seed); }, threads);
    }
  }
}

// ---- external input ---------------------------------------------------------

TEST(TexecDifferential, ExternalInputViaGenerator) {
  const auto make = [] {
    return ir::make_pipeline(
        "open", {apps::gain("pre", 2.0), apps::lowpass_fir("f", 16, 0.25),
                 apps::downsample("dec", 2)});
  };
  const auto gen = [](std::int64_t i) {
    return std::sin(0.01 * static_cast<double>(i));
  };
  for (int threads : {2, 4}) expect_matches("open-graph", make, threads, gen);
}

TEST(TexecDifferential, ExternalInputViaFeed) {
  const auto make = [] {
    return ir::make_pipeline("fed", {apps::gain("pre", 0.5),
                                     apps::lowpass_fir("f", 8, 0.25)});
  };
  sched::Executor seq(make(), {});
  sched::ExecOptions topt;
  topt.threads = 4;
  sched::ThreadedExecutor tex(make(), topt);
  const auto& s = seq.schedule();
  const std::int64_t need = s.input_for_init + 6 * s.input_per_steady;
  std::vector<double> items;
  items.reserve(static_cast<std::size_t>(need));
  for (std::int64_t i = 0; i < need; ++i) {
    items.push_back(std::cos(0.02 * static_cast<double>(i)));
  }
  seq.feed_input(items);
  tex.feed_input(items);
  expect_same_doubles(seq.run_steady(6), tex.run_steady(6), "fed output");
  EXPECT_EQ(seq.firings(), tex.firings());
}

// ---- selection & fallback rules ---------------------------------------------

TEST(TexecSelection, EnvVariableResolvesThreads) {
  ASSERT_EQ(setenv("SIT_THREADS", "3", 1), 0);
  EXPECT_EQ(sched::resolve_threads(0), 3);
  sched::ThreadedExecutor tex(apps::make_filter_bank(), {});
  unsetenv("SIT_THREADS");
  tex.run_steady(2);
  EXPECT_TRUE(tex.report().threaded) << tex.report().fallback_reason;
  EXPECT_LE(tex.report().threads, 3);
  EXPECT_EQ(sched::resolve_threads(0), 1);  // default without the env var
  EXPECT_EQ(sched::resolve_threads(8), 8);  // explicit option wins
}

TEST(TexecFallback, OneThreadStaysSequential) {
  sched::ExecOptions topt;
  topt.threads = 1;
  sched::ThreadedExecutor tex(apps::make_filter_bank(), topt);
  EXPECT_FALSE(tex.report().threaded);
  EXPECT_EQ(tex.report().threads, 1);
}

TEST(TexecFallback, TeleportGraphFallsBack) {
  sched::ExecOptions topt;
  topt.threads = 4;
  sched::ThreadedExecutor tex(apps::make_freq_hop_radio(16).graph, topt);
  EXPECT_FALSE(tex.report().threaded);
  EXPECT_NE(tex.report().fallback_reason.find("teleport"), std::string::npos)
      << tex.report().fallback_reason;
  // And the fallback still executes correctly.
  expect_matches("freqhop", [] { return apps::make_freq_hop_radio(16).graph; },
                 4);
}

TEST(TexecFallback, MessageSinkFallsBack) {
  sched::ExecOptions topt;
  topt.threads = 4;
  topt.message_sink = [](const runtime::SentMessage&) {};
  sched::ThreadedExecutor tex(apps::make_filter_bank(), topt);
  EXPECT_FALSE(tex.report().threaded);
  EXPECT_NE(tex.report().fallback_reason.find("sink"), std::string::npos);
}

TEST(TexecReport, PartitionCoversEveryActor) {
  sched::ExecOptions topt;
  topt.threads = 4;
  sched::ThreadedExecutor tex(
      parallel::coarsen_for_threads(apps::make_filter_bank(), 4), topt);
  tex.run_steady(2);
  const auto& rep = tex.report();
  ASSERT_TRUE(rep.threaded);
  ASSERT_EQ(rep.owner.size(), tex.graph().actors.size());
  for (int o : rep.owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, rep.threads);
  }
  EXPECT_GT(rep.predicted_speedup, 0.0);
}

// ---- iteration batching -----------------------------------------------------

// The differential harness across batch factors: unbatched (1), the auto
// heuristic (-1), and one explicit multi-iteration chunk whose size is
// coprime to the run_steady(3)/run_steady(2) call pattern so remainder
// chunks are exercised.
TEST(TexecBatch, DifferentialAcrossBatchFactors) {
  for (const std::string name : {"FIR", "FilterBank", "FMRadio"}) {
    const auto make = [&] {
      return parallel::coarsen_for_threads(apps::make_app(name), 4);
    };
    for (int batch : {1, -1, 3}) {
      expect_matches(name + "/batched", make, 4, {}, batch);
    }
  }
  for (std::uint32_t seed = 1; seed <= 4; ++seed) {
    for (int batch : {1, -1, 3}) {
      expect_matches("rand" + std::to_string(seed) + "/batched",
                     [&] { return random_graph(seed); }, 4, {}, batch);
    }
  }
}

TEST(TexecBatch, ReportsResolvedBatchFactor) {
  const auto make = [] {
    return parallel::coarsen_for_threads(apps::make_filter_bank(), 4);
  };
  {
    sched::ExecOptions topt;
    topt.threads = 4;
    topt.batch = 1;
    sched::ThreadedExecutor tex(make(), topt);
    tex.run_steady(4);
    ASSERT_TRUE(tex.report().threaded) << tex.report().fallback_reason;
    EXPECT_EQ(tex.report().batch, 1);
  }
  {
    // An explicit request is honored up to the graph's admissible maximum.
    sched::ExecOptions topt;
    topt.threads = 4;
    topt.batch = 6;
    sched::ThreadedExecutor tex(make(), topt);
    tex.run_steady(4);
    ASSERT_TRUE(tex.report().threaded) << tex.report().fallback_reason;
    EXPECT_GE(tex.report().batch, 1);
    EXPECT_LE(tex.report().batch, 6);
  }
  {
    // Auto resolves to a concrete factor >= 1 at partition time.
    sched::ExecOptions topt;
    topt.threads = 4;
    topt.batch = -1;
    sched::ThreadedExecutor tex(make(), topt);
    tex.run_steady(4);
    ASSERT_TRUE(tex.report().threaded) << tex.report().fallback_reason;
    EXPECT_GE(tex.report().batch, 1);
  }
}

TEST(TexecBatch, EnvResolution) {
  ASSERT_EQ(setenv("SIT_BATCH", "auto", 1), 0);
  EXPECT_EQ(env_batch(), -1);
  EXPECT_EQ(sched::resolve_batch(0), -1);
  ASSERT_EQ(setenv("SIT_BATCH", "7", 1), 0);
  EXPECT_EQ(env_batch(), 7);
  EXPECT_EQ(sched::resolve_batch(0), 7);    // 0 defers to the environment
  EXPECT_EQ(sched::resolve_batch(2), 2);    // explicit option wins
  EXPECT_EQ(sched::resolve_batch(-5), -1);  // any negative requests auto
  ASSERT_EQ(setenv("SIT_BATCH", "0", 1), 0);
  EXPECT_EQ(env_batch(), 1);         // floor at 1
  ASSERT_EQ(unsetenv("SIT_BATCH"), 0);
  EXPECT_EQ(env_batch(), -1);        // default: auto
  EXPECT_EQ(sched::resolve_batch(3), 3);
}

// ---- the SPSC ring itself ---------------------------------------------------

TEST(SpscRing, FifoWraparoundAndCounters) {
  SpscRing r(8);  // rounds up to a power of two >= 8
  ASSERT_GE(r.capacity(), 8u);
  std::int64_t next_push = 0, next_pop = 0;
  // Coprime burst sizes force every alignment of the wrap point.
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(r.can_push(1));
      r.push_item(static_cast<double>(next_push++));
    }
    while (next_pop + 5 <= next_push && r.can_pop(5)) {
      ASSERT_TRUE(same_bits(r.peek_item(4), static_cast<double>(next_pop + 4)));
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(same_bits(r.pop_item(), static_cast<double>(next_pop++)));
      }
    }
  }
  while (r.can_pop(1)) {
    ASSERT_TRUE(same_bits(r.pop_item(), static_cast<double>(next_pop++)));
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_EQ(r.total_pushed(), next_push);
  EXPECT_EQ(r.total_popped(), next_pop);
  EXPECT_LE(r.high_water(), r.capacity());
}

TEST(SpscRing, PreloadCarriesChannelCounters) {
  SpscRing r(16);
  r.preload({1.0, 2.0, 3.0}, 103, 100);  // channel had pushed 103, popped 100
  EXPECT_EQ(r.total_pushed(), 103);
  EXPECT_EQ(r.total_popped(), 100);
  ASSERT_TRUE(r.can_pop(3));
  EXPECT_TRUE(same_bits(r.pop_item(), 1.0));
  r.push_item(4.0);
  EXPECT_EQ(r.total_pushed(), 104);
  EXPECT_EQ(r.total_popped(), 101);
  EXPECT_TRUE(same_bits(r.pop_item(), 2.0));
  EXPECT_TRUE(same_bits(r.pop_item(), 3.0));
  EXPECT_TRUE(same_bits(r.pop_item(), 4.0));
  EXPECT_FALSE(r.can_pop(1));
}

TEST(SpscRing, PopManyAndUnderrunThrow) {
  SpscRing r(8);
  for (int i = 0; i < 6; ++i) r.push_item(static_cast<double>(i));
  r.pop_many(4);
  EXPECT_EQ(r.total_popped(), 4);
  EXPECT_TRUE(same_bits(r.pop_item(), 4.0));
  EXPECT_THROW(r.pop_many(2), std::runtime_error);
  EXPECT_THROW(r.peek_item(1), std::runtime_error);
  EXPECT_TRUE(same_bits(r.peek_item(0), 5.0));
}

// Two real threads hammer one ring with coprime burst sizes through a
// capacity small enough to wrap thousands of times.  The consumer checks the
// exact item sequence -- any lost ordering, torn read, or stale cache would
// break it.  (Run under the TSan CI job, this is also the data-race probe.)
TEST(SpscRing, ConcurrentCoprimeStress) {
  SpscRing r(64);
  constexpr std::int64_t kItems = 120000;
  std::thread producer([&] {
    std::int64_t sent = 0;
    while (sent < kItems) {
      const std::int64_t burst = std::min<std::int64_t>(7, kItems - sent);
      while (!r.can_push(static_cast<std::size_t>(burst))) {
        std::this_thread::yield();
      }
      for (std::int64_t i = 0; i < burst; ++i) {
        r.push_item(static_cast<double>(sent++));
      }
    }
  });
  std::int64_t got = 0;
  bool ok = true;
  while (got < kItems) {
    const std::int64_t burst = std::min<std::int64_t>(11, kItems - got);
    while (!r.can_pop(static_cast<std::size_t>(burst))) {
      std::this_thread::yield();
    }
    ok = ok && same_bits(r.peek_item(static_cast<int>(burst - 1)),
                         static_cast<double>(got + burst - 1));
    for (std::int64_t i = 0; i < burst; ++i) {
      ok = ok && same_bits(r.pop_item(), static_cast<double>(got++));
    }
  }
  producer.join();
  EXPECT_TRUE(ok) << "ring delivered a wrong or reordered item";
  EXPECT_EQ(r.total_pushed(), kItems);
  EXPECT_EQ(r.total_popped(), kItems);
  EXPECT_FALSE(r.can_pop(1));
  EXPECT_LE(r.high_water(), r.capacity());
}

// Deferred mode batches ring publication: pushes and pops stay private to
// their side until an explicit publish, and each publish costs exactly one
// release store -- pinned via the cumulative publish counters.
TEST(SpscRing, DeferredBatchPublicationCounters) {
  SpscRing r(64, /*deferred=*/true);
  ASSERT_TRUE(r.deferred());
  EXPECT_EQ(r.tail_publishes(), 0);
  EXPECT_EQ(r.head_publishes(), 0);

  // A batch of 10 pushes is one release store, made at publish time.
  for (int i = 0; i < 10; ++i) r.push_item(static_cast<double>(i));
  EXPECT_EQ(r.tail_publishes(), 0);
  EXPECT_EQ(r.size(), 0u);  // nothing visible yet
  r.publish_tail();
  EXPECT_EQ(r.tail_publishes(), 1);
  EXPECT_EQ(r.size(), 10u);
  r.publish_tail();  // nothing new: no store
  EXPECT_EQ(r.tail_publishes(), 1);

  // Symmetric on the consumer side.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(same_bits(r.pop_item(), static_cast<double>(i)));
  }
  EXPECT_EQ(r.head_publishes(), 0);
  EXPECT_EQ(r.total_popped(), 0);  // quiescent counters track publishes
  r.publish_head();
  EXPECT_EQ(r.head_publishes(), 1);
  EXPECT_EQ(r.total_popped(), 10);
  r.publish_head();
  EXPECT_EQ(r.head_publishes(), 1);

  // Immediate mode (the default) publishes inside every push and once per
  // pop_many call, as before.
  SpscRing eager(64);
  EXPECT_FALSE(eager.deferred());
  for (int i = 0; i < 5; ++i) eager.push_item(static_cast<double>(i));
  EXPECT_EQ(eager.tail_publishes(), 5);
  eager.pop_many(3);
  EXPECT_EQ(eager.head_publishes(), 1);
  eager.pop_item();
  EXPECT_EQ(eager.head_publishes(), 2);
}

// Two real threads drive a deferred ring with coprime batch sizes: the
// producer publishes once per 7-item batch, the consumer once per 11-item
// batch, through a capacity small enough to wrap thousands of times.  The
// consumer checks the exact item sequence; the publish counters afterwards
// pin one release store per batch.  (Run under the TSan CI job, this is the
// data-race probe for the bulk-publication protocol.)
TEST(SpscRing, ConcurrentDeferredBatchStress) {
  SpscRing r(64, /*deferred=*/true);
  constexpr std::int64_t kItems = 110000;
  std::thread producer([&] {
    std::int64_t sent = 0;
    while (sent < kItems) {
      const std::int64_t burst = std::min<std::int64_t>(7, kItems - sent);
      while (!r.can_push(static_cast<std::size_t>(burst))) {
        std::this_thread::yield();
      }
      for (std::int64_t i = 0; i < burst; ++i) {
        r.push_item(static_cast<double>(sent++));
      }
      r.publish_tail();
    }
  });
  std::int64_t got = 0;
  bool ok = true;
  while (got < kItems) {
    const std::int64_t burst = std::min<std::int64_t>(11, kItems - got);
    while (!r.can_pop(static_cast<std::size_t>(burst))) {
      std::this_thread::yield();
    }
    ok = ok && same_bits(r.peek_item(static_cast<int>(burst - 1)),
                         static_cast<double>(got + burst - 1));
    for (std::int64_t i = 0; i < burst; ++i) {
      ok = ok && same_bits(r.pop_item(), static_cast<double>(got++));
    }
    r.publish_head();
  }
  producer.join();
  EXPECT_TRUE(ok) << "deferred ring delivered a wrong or reordered item";
  EXPECT_EQ(r.total_pushed(), kItems);
  EXPECT_EQ(r.total_popped(), kItems);
  EXPECT_EQ(r.tail_publishes(), (kItems + 6) / 7);
  EXPECT_EQ(r.head_publishes(), (kItems + 10) / 11);
  EXPECT_FALSE(r.can_pop(1));
  EXPECT_LE(r.high_water(), r.capacity());
}

}  // namespace
}  // namespace sit
