// Differential pipeline tests.
//
// The contract of the compilation pipeline is twofold:
//
//   1. At a fixed optimization level, the compiled artifact computes the
//      same stream BIT-EQUAL under every engine (tree interpreter, bytecode
//      VM, fused steady-state trace, 4-thread runtime) -- same outputs, same
//      firings, same operation counts per engine pair that shares a counting
//      discipline, same cumulative channel counters, same filter state.
//   2. Across optimization levels, outputs are numerically equivalent but
//      not necessarily bit-equal: linear combination and frequency
//      translation reassociate floating-point arithmetic, which the paper's
//      transformations (and IEEE754) only preserve up to rounding.  We
//      assert tight relative-error equivalence for the stream prefix.
//
// A seeded permutation test additionally shuffles the commuting middle
// passes (const-fold, linear-extract, linear-combine, frequency) and checks
// that every ordering preserves the O0 semantics: the pipeline's correctness
// must not depend on one blessed pass order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "opt/compile.h"
#include "sched/exec.h"
#include "sched/texec.h"

namespace sit::opt {
namespace {

// Drop the final sink so the program output edge is observable.
ir::NodeP observable(const ir::NodeP& app) {
  if (app->kind != ir::Node::Kind::Pipeline || app->children.size() < 2) {
    return app;
  }
  std::vector<ir::NodeP> kids(app->children.begin(), app->children.end() - 1);
  return ir::make_pipeline(app->name + "_obs", kids);
}

void expect_bit_equal(const std::vector<double>& a,
                      const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-equality: EXPECT_EQ on doubles, not NEAR.
    EXPECT_EQ(a[i], b[i]) << what << " item " << i;
  }
}

template <typename Ex>
std::vector<double> run_items(Ex& ex, int items) {
  std::vector<double> out;
  int guard = 0;
  while (static_cast<int>(out.size()) < items && ++guard < 4000) {
    const auto got = ex.run_steady(1);
    out.insert(out.end(), got.begin(), got.end());
  }
  out.resize(static_cast<std::size_t>(items));
  return out;
}

sched::CompiledProgram compile_level(const std::string& app, OptLevel level) {
  CompileOptions copts;
  copts.level = level;
  return compile(observable(apps::make_app(app)), copts);
}

// ---- 1. engines are interchangeable at every level --------------------------

struct LevelCase {
  const char* app;
  OptLevel level;
};

class EngineDiffP : public ::testing::TestWithParam<LevelCase> {};

TEST_P(EngineDiffP, EnginesBitEqualOnCompiledArtifact) {
  const sched::CompiledProgram prog =
      compile_level(GetParam().app, GetParam().level);

  sched::ExecOptions topt;
  topt.engine = sched::Engine::Tree;
  sched::Executor tree(prog, topt);

  sched::ExecOptions vopt;
  vopt.engine = sched::Engine::Vm;
  sched::Executor vm(prog, vopt);

  sched::ExecOptions fopt;
  fopt.engine = sched::Engine::Fused;
  sched::Executor fused(prog, fopt);

  sched::ExecOptions thopt;
  thopt.threads = 4;
  sched::ThreadedExecutor thr(prog, thopt);

  const auto tout = tree.run_steady(3);
  const auto vout = vm.run_steady(3);
  const auto fout = fused.run_steady(3);
  const auto thout = thr.run_steady(3);
  expect_bit_equal(tout, vout, "tree vs vm");
  expect_bit_equal(tout, fout, "tree vs fused");
  expect_bit_equal(tout, thout, "tree vs 4-thread");

  // Same firings and OpCounts: the sequential engines share the counting
  // discipline exactly (the fused trace replicates the VM's tally points
  // instruction for instruction); the threaded runtime tallies the same
  // firings.
  EXPECT_EQ(tree.firings(), vm.firings());
  EXPECT_EQ(tree.firings(), fused.firings());
  EXPECT_EQ(tree.firings(), thr.firings());
  EXPECT_EQ(tree.total_ops().flops, vm.total_ops().flops);
  EXPECT_DOUBLE_EQ(tree.total_ops().weighted(), vm.total_ops().weighted());
  EXPECT_EQ(tree.total_ops().flops, thr.total_ops().flops);

  // The fused engine's per-actor OpCounts must be bit-identical to the VM's
  // in every field, whether the steady state ran on the whole-program trace
  // or fell back per-actor.
  ASSERT_EQ(fused.actor_ops().size(), vm.actor_ops().size());
  for (std::size_t a = 0; a < vm.actor_ops().size(); ++a) {
    const auto& vo = vm.actor_ops()[a];
    const auto& fo = fused.actor_ops()[a];
    EXPECT_EQ(vo.int_ops, fo.int_ops) << "actor " << a;
    EXPECT_EQ(vo.flops, fo.flops) << "actor " << a;
    EXPECT_EQ(vo.divs, fo.divs) << "actor " << a;
    EXPECT_EQ(vo.trans, fo.trans) << "actor " << a;
    EXPECT_EQ(vo.mem, fo.mem) << "actor " << a;
    EXPECT_EQ(vo.channel, fo.channel) << "actor " << a;
  }

  // Same cumulative channel counters n(t)/p(t) on every edge.  The fused
  // engine lowers internal channels to trace buffers but still advances
  // their cumulative counters by the per-iteration traffic.
  const auto& g = prog.flat;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const int ei = static_cast<int>(e);
    EXPECT_EQ(tree.channel(ei).total_pushed(), vm.channel(ei).total_pushed())
        << "edge " << e;
    EXPECT_EQ(tree.channel(ei).total_popped(), vm.channel(ei).total_popped())
        << "edge " << e;
    EXPECT_EQ(tree.channel(ei).total_pushed(), fused.channel(ei).total_pushed())
        << "edge " << e;
    EXPECT_EQ(tree.channel(ei).total_popped(), fused.channel(ei).total_popped())
        << "edge " << e;
    EXPECT_EQ(tree.channel(ei).total_pushed(), thr.edge_pushed(ei))
        << "edge " << e;
    EXPECT_EQ(tree.channel(ei).total_popped(), thr.edge_popped(ei))
        << "edge " << e;
  }

  // Same filter state after the run: every scalar and array element the VM
  // left behind must match what the fused trace left behind bit-for-bit.
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    const auto& vs = vm.filter_state(static_cast<int>(a));
    const auto& fs = fused.filter_state(static_cast<int>(a));
    ASSERT_EQ(vs.scalars.size(), fs.scalars.size()) << "actor " << a;
    for (const auto& [name, val] : vs.scalars) {
      const auto it = fs.scalars.find(name);
      ASSERT_NE(it, fs.scalars.end()) << "actor " << a << " scalar " << name;
      EXPECT_EQ(val.is_int(), it->second.is_int())
          << "actor " << a << " scalar " << name;
      EXPECT_EQ(val.as_double(), it->second.as_double())
          << "actor " << a << " scalar " << name;
    }
    ASSERT_EQ(vs.arrays.size(), fs.arrays.size()) << "actor " << a;
    for (const auto& [name, arr] : vs.arrays) {
      const auto it = fs.arrays.find(name);
      ASSERT_NE(it, fs.arrays.end()) << "actor " << a << " array " << name;
      ASSERT_EQ(arr.size(), it->second.size())
          << "actor " << a << " array " << name;
      for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_EQ(arr[i].as_double(), it->second[i].as_double())
            << "actor " << a << " array " << name << "[" << i << "]";
      }
    }
  }
}

std::vector<LevelCase> engine_cases() {
  std::vector<LevelCase> cases;
  for (const auto& info : apps::all_apps()) {
    for (OptLevel level : {OptLevel::O0, OptLevel::O1, OptLevel::O2}) {
      cases.push_back({info.name.c_str(), level});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<LevelCase>& info) {
  const int lvl = info.param.level == OptLevel::O0   ? 0
                  : info.param.level == OptLevel::O1 ? 1
                                                     : 2;
  return std::string(info.param.app) + "_O" + std::to_string(lvl);
}

INSTANTIATE_TEST_SUITE_P(AllApps, EngineDiffP,
                         ::testing::ValuesIn(engine_cases()), case_name);

// ---- 2. levels are numerically equivalent -----------------------------------

class LevelDiffP : public ::testing::TestWithParam<const char*> {};

TEST_P(LevelDiffP, OptLevelsComputeTheSameStream) {
  constexpr int kItems = 60;
  constexpr double kTol = 1e-7;  // relative; FP reassociation only
  sched::Executor e0(compile_level(GetParam(), OptLevel::O0));
  const auto base = run_items(e0, kItems);
  for (OptLevel level : {OptLevel::O1, OptLevel::O2}) {
    sched::Executor ex(compile_level(GetParam(), level));
    const auto got = run_items(ex, kItems);
    for (std::size_t i = 0; i < base.size(); ++i) {
      ASSERT_NEAR(base[i], got[i], kTol * std::max(1.0, std::fabs(base[i])))
          << GetParam() << " O" << (level == OptLevel::O1 ? 1 : 2) << " item "
          << i;
    }
  }
}

std::vector<const char*> all_app_names() {
  std::vector<const char*> names;
  for (const auto& info : apps::all_apps()) names.push_back(info.name.c_str());
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, LevelDiffP,
                         ::testing::ValuesIn(all_app_names()));

// ---- 3. commuting passes may run in any order -------------------------------

TEST(PassPermutation, ShuffledMiddlePassesPreserveSemantics) {
  constexpr int kItems = 48;
  constexpr double kTol = 1e-7;
  std::vector<std::string> middle = {"const-fold", "linear-extract",
                                     "linear-combine", "frequency"};
  std::mt19937 rng(20260805u);  // seeded: failures reproduce
  for (const char* app : {"FIR", "RateConvert", "FilterBank"}) {
    sched::Executor base_ex(compile_level(app, OptLevel::O0));
    const auto base = run_items(base_ex, kItems);
    for (int trial = 0; trial < 4; ++trial) {
      std::shuffle(middle.begin(), middle.end(), rng);
      std::string spec = "validate,analysis-gate";
      for (const auto& p : middle) spec += "," + p;
      SCOPED_TRACE(std::string(app) + " spec=" + spec);
      CompileOptions copts;
      copts.passes = spec;
      sched::CompiledProgram prog =
          compile(observable(apps::make_app(app)), copts);
      EXPECT_EQ(prog.pipeline, spec);
      sched::Executor ex(std::move(prog));
      const auto got = run_items(ex, kItems);
      for (std::size_t i = 0; i < base.size(); ++i) {
        ASSERT_NEAR(base[i], got[i], kTol * std::max(1.0, std::fabs(base[i])))
            << "item " << i;
      }
    }
  }
}

}  // namespace
}  // namespace sit::opt
