// Differential tests: the bytecode VM must be observationally identical to
// the tree interpreter.  Every built-in application and a population of
// randomized work functions run under both engines; outputs, filter state,
// operation counts, cumulative channel counters, and sent messages are held
// bit-equal.  Also covers the ring-buffer channel itself and the per-filter
// fallback path for filters outside the compiled subset.

#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "ir/dsl.h"
#include "runtime/channel.h"
#include "runtime/compile.h"
#include "runtime/interp.h"
#include "runtime/vm.h"
#include "sched/exec.h"

namespace sit {
namespace {

using namespace ir::dsl;  // NOLINT
using ir::Value;
using runtime::Channel;
using runtime::FilterState;
using runtime::Interp;
using runtime::OpCounts;
using runtime::SentMessage;

// ---- comparison helpers -----------------------------------------------------

// Bit-level double equality: NaN == NaN, and +0.0 != -0.0.  The two engines
// share the scalar kernels in eval_ops.h, so even NaN payloads must agree.
bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  return ba == bb;
}

void expect_same_doubles(const std::vector<double>& a,
                         const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(same_bits(a[i], b[i]))
        << what << " item " << i << ": " << a[i] << " vs " << b[i];
  }
}

void expect_same_value(const Value& a, const Value& b, const std::string& what) {
  ASSERT_EQ(a.is_int(), b.is_int()) << what << " tag mismatch";
  if (a.is_int()) {
    ASSERT_EQ(a.as_int(), b.as_int()) << what;
  } else {
    ASSERT_TRUE(same_bits(a.as_double(), b.as_double()))
        << what << ": " << a.as_double() << " vs " << b.as_double();
  }
}

void expect_same_state(const FilterState& a, const FilterState& b,
                       const std::string& who) {
  ASSERT_EQ(a.scalars.size(), b.scalars.size()) << who;
  for (const auto& [name, va] : a.scalars) {
    auto it = b.scalars.find(name);
    ASSERT_NE(it, b.scalars.end()) << who << " scalar " << name;
    expect_same_value(va, it->second, who + "." + name);
  }
  ASSERT_EQ(a.arrays.size(), b.arrays.size()) << who;
  for (const auto& [name, va] : a.arrays) {
    auto it = b.arrays.find(name);
    ASSERT_NE(it, b.arrays.end()) << who << " array " << name;
    ASSERT_EQ(va.size(), it->second.size()) << who << "." << name;
    for (std::size_t i = 0; i < va.size(); ++i) {
      expect_same_value(va[i], it->second[i],
                        who + "." + name + "[" + std::to_string(i) + "]");
    }
  }
}

void expect_same_counts(const OpCounts& a, const OpCounts& b,
                        const std::string& who) {
  EXPECT_EQ(a.int_ops, b.int_ops) << who << " int_ops";
  EXPECT_EQ(a.flops, b.flops) << who << " flops";
  EXPECT_EQ(a.divs, b.divs) << who << " divs";
  EXPECT_EQ(a.trans, b.trans) << who << " trans";
  EXPECT_EQ(a.mem, b.mem) << who << " mem";
  EXPECT_EQ(a.channel, b.channel) << who << " channel";
}

// ---- whole-application differential -----------------------------------------

// Run every built-in app under both engines and hold all observables equal:
// program output (bitwise), per-actor firing tallies and OpCounts, the
// cumulative n(t)/p(t) counters of every channel, and the final state of
// every AST filter.
TEST(VmDifferential, AllAppsMatchTreeInterpreter) {
  for (const auto& info : apps::all_apps()) {
    SCOPED_TRACE(info.name);
    sched::ExecOptions topt;
    topt.engine = sched::Engine::Tree;
    sched::Executor tree(info.make(), topt);
    sched::ExecOptions vopt;
    vopt.engine = sched::Engine::Vm;
    sched::Executor vm(info.make(), vopt);

    ASSERT_EQ(tree.engine(), sched::Engine::Tree);
    ASSERT_EQ(vm.engine(), sched::Engine::Vm);

    const auto tout = tree.run_steady(2);
    const auto vout = vm.run_steady(2);
    expect_same_doubles(tout, vout, info.name + " output");

    const auto& g = tree.graph();
    ASSERT_EQ(g.actors.size(), vm.graph().actors.size());
    EXPECT_EQ(tree.firings(), vm.firings()) << info.name;
    for (std::size_t a = 0; a < g.actors.size(); ++a) {
      expect_same_counts(tree.actor_ops()[a], vm.actor_ops()[a],
                         info.name + "/" + g.actors[a].name);
      if (g.actors[a].kind == runtime::FlatActor::Kind::Filter) {
        expect_same_state(tree.filter_state(static_cast<int>(a)),
                          vm.filter_state(static_cast<int>(a)),
                          info.name + "/" + g.actors[a].name);
      }
    }
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      const int ei = static_cast<int>(e);
      EXPECT_EQ(tree.channel(ei).total_pushed(), vm.channel(ei).total_pushed())
          << info.name << " edge " << e;
      EXPECT_EQ(tree.channel(ei).total_popped(), vm.channel(ei).total_popped())
          << info.name << " edge " << e;
    }
  }
}

// The point of the engine: the hot filters of the evaluation apps must
// actually run on bytecode, not silently fall back.
TEST(VmDifferential, EvaluationAppFiltersCompile) {
  for (const std::string name : {"FIR", "Vocoder", "FMRadio", "FilterBank"}) {
    SCOPED_TRACE(name);
    sched::ExecOptions opt;
    opt.engine = sched::Engine::Vm;
    sched::Executor ex(apps::make_app(name), opt);
    int compiled = 0, filters = 0;
    const auto& g = ex.graph();
    for (std::size_t a = 0; a < g.actors.size(); ++a) {
      if (g.actors[a].kind != runtime::FlatActor::Kind::Filter) continue;
      ++filters;
      if (ex.actor_uses_vm(static_cast<int>(a))) ++compiled;
    }
    ASSERT_GT(filters, 0);
    EXPECT_EQ(compiled, filters) << name << ": some filters fell back";
  }
}

// ---- randomized work functions ----------------------------------------------

// Grammar-directed random AST generator over the compiled subset: state
// scalars (one float, one int), a state array, invocation locals, peeks,
// arithmetic and comparisons, conditionals and for loops.  Division and
// shifts are excluded so no input can throw or hit UB; everything else is
// fair game.  Fixed seeds keep failures reproducible.
class AstGen {
 public:
  explicit AstGen(std::uint32_t seed) : g_(seed) {}

  ir::FilterSpec make_spec(int idx) {
    const int peekw = 3, popn = 2, pushn = 2;
    auto b = filter("rand" + std::to_string(idx))
                 .rates(peekw, popn, pushn)
                 .scalar("fs", Value{0.5})
                 .iscalar("ks", 3)
                 .array("arr", 4);
    std::vector<ir::StmtP> body;
    locals_.clear();
    const int stmts = irange(2, 5);
    for (int i = 0; i < stmts; ++i) body.push_back(rand_stmt(2));
    for (int i = 0; i < pushn; ++i) body.push_back(push_(E(rand_expr(3))));
    body.push_back(discard(popn));
    return b.work(std::move(body)).build();
  }

 private:
  int irange(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(g_);
  }
  double dval() {
    return std::uniform_real_distribution<double>(-2.0, 2.0)(g_);
  }

  ir::ExprP rand_expr(int depth) {
    if (depth <= 0 || irange(0, 3) == 0) {
      switch (irange(0, 5)) {
        case 0: return ir::iconst(irange(-3, 7));
        case 1: return ir::fconst(dval());
        case 2: return ir::peek(ir::iconst(irange(0, 2)));
        case 3: return ir::var(irange(0, 1) ? "fs" : "ks");
        case 4: return ir::aref("arr", ir::iconst(irange(0, 3)));
        default:
          if (!locals_.empty()) return ir::var(locals_[static_cast<std::size_t>(
              irange(0, static_cast<int>(locals_.size()) - 1))]);
          return ir::iconst(irange(0, 9));
      }
    }
    switch (irange(0, 9)) {
      case 0: return ir::bin(ir::BinOp::Add, rand_expr(depth - 1), rand_expr(depth - 1));
      case 1: return ir::bin(ir::BinOp::Sub, rand_expr(depth - 1), rand_expr(depth - 1));
      case 2: return ir::bin(ir::BinOp::Mul, rand_expr(depth - 1), rand_expr(depth - 1));
      case 3: return ir::bin(ir::BinOp::Min, rand_expr(depth - 1), rand_expr(depth - 1));
      case 4: return ir::bin(ir::BinOp::Max, rand_expr(depth - 1), rand_expr(depth - 1));
      case 5: return ir::bin(ir::BinOp::Lt, rand_expr(depth - 1), rand_expr(depth - 1));
      case 6: return ir::bin(irange(0, 1) ? ir::BinOp::LAnd : ir::BinOp::LOr,
                             rand_expr(depth - 1), rand_expr(depth - 1));
      case 7: {
        const auto u = std::vector<ir::UnOp>{ir::UnOp::Neg, ir::UnOp::Abs,
                                             ir::UnOp::Sin, ir::UnOp::Cos,
                                             ir::UnOp::Floor, ir::UnOp::ToInt,
                                             ir::UnOp::ToFloat};
        return ir::un(u[static_cast<std::size_t>(irange(0, 6))], rand_expr(depth - 1));
      }
      case 8: return ir::cond(rand_expr(depth - 1), rand_expr(depth - 1),
                              rand_expr(depth - 1));
      default: return ir::bin(ir::BinOp::Add, rand_expr(depth - 1),
                              rand_expr(depth - 1));
    }
  }

  ir::StmtP rand_stmt(int depth) {
    switch (irange(0, depth > 0 ? 5 : 3)) {
      case 0: {
        const std::string name = "t" + std::to_string(locals_.size());
        auto s = ir::assign(name, rand_expr(2));
        locals_.push_back(name);
        return s;
      }
      case 1: return ir::assign(irange(0, 1) ? "fs" : "ks", rand_expr(2));
      case 2:
        return ir::array_assign("arr", ir::iconst(irange(0, 3)), rand_expr(2));
      case 3:
        // Loop over the state array; loop bounds are part of the compiled
        // subset's happy path, the body mutates state each iteration.
        return for_("i", 0, irange(1, 4),
                    ir::array_assign("arr", ir::var("i"),
                                     ir::bin(ir::BinOp::Add,
                                             ir::aref("arr", ir::var("i")),
                                             rand_expr(1))));
      case 4: {
        // If with a then-only branch: anything assigned inside is
        // deliberately NOT read afterwards (locals_ snapshot restored).
        const auto snap = locals_.size();
        auto s = ir::if_then(rand_expr(2), rand_stmt(depth - 1));
        locals_.resize(snap);
        return s;
      }
      default: {
        const auto snap = locals_.size();
        auto s = ir::if_else(rand_expr(2), rand_stmt(depth - 1),
                             rand_stmt(depth - 1));
        locals_.resize(snap);
        return s;
      }
    }
  }

  std::mt19937 g_;
  std::vector<std::string> locals_;
};

TEST(VmDifferential, RandomizedWorkFunctions) {
  int compiled = 0;
  for (std::uint32_t seed = 1; seed <= 40; ++seed) {
    AstGen gen(seed * 7919);
    const ir::FilterSpec spec = gen.make_spec(static_cast<int>(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));

    std::string reason;
    auto prog = runtime::compile_filter(spec, &reason);
    if (!prog) continue;  // conservatively rejected shapes fall back; fine
    ++compiled;

    FilterState tst = Interp::init_state(spec);
    FilterState vst = runtime::Vm::init_state(spec, *prog);
    expect_same_state(tst, vst, spec.name + " init");

    Channel tin, vin, tout, vout;
    std::mt19937 feed(seed);
    std::uniform_real_distribution<double> d(-4.0, 4.0);
    for (int i = 0; i < 64; ++i) {
      const double x = d(feed);
      tin.push_item(x);
      vin.push_item(x);
    }

    OpCounts tc, vc;
    runtime::VmBound bound(prog, vst);
    for (int fire = 0; fire < 20; ++fire) {
      Interp::run_work(spec, tst, tin, tout, &tc);
      bound.run_work(vin, vout, &vc);
    }
    expect_same_counts(tc, vc, spec.name);
    expect_same_state(tst, vst, spec.name + " final");
    std::vector<double> to, vo;
    while (!tout.empty()) to.push_back(tout.pop_item());
    while (!vout.empty()) vo.push_back(vout.pop_item());
    expect_same_doubles(to, vo, spec.name + " output");
    EXPECT_EQ(tin.total_popped(), vin.total_popped());
  }
  // The generator stays inside the compiled subset by construction; if the
  // compiler starts rejecting most of them, the subset regressed.
  EXPECT_GE(compiled, 30);
}

// ---- engine parity corner cases ---------------------------------------------

// Messages: Send arguments, latency bounds, and ordering must match, and the
// VM must skip SentMessage construction without a sink (not observable here,
// but the sink path is).
TEST(VmDifferential, SendMessagesMatch) {
  auto spec = filter("sender")
                  .rates(1, 1, 1)
                  .iscalar("n", 0)
                  .work({let("x", pop_()),
                         ir::send("portal", "setGain", {(v("x") * c(2.0)).e,
                                                        v("n").e}, 1, 3),
                         let("n", v("n") + 1), push_(v("x"))})
                  .build();
  auto prog = runtime::compile_filter(spec);
  ASSERT_NE(prog, nullptr);

  std::vector<SentMessage> tmsg, vmsg;
  runtime::MessageSink tsink = [&](const SentMessage& m) { tmsg.push_back(m); };
  runtime::MessageSink vsink = [&](const SentMessage& m) { vmsg.push_back(m); };

  FilterState tst = Interp::init_state(spec);
  FilterState vst = runtime::Vm::init_state(spec, *prog);
  Channel tin, vin, tout, vout;
  for (int i = 0; i < 5; ++i) {
    tin.push_item(i + 0.25);
    vin.push_item(i + 0.25);
  }
  for (int i = 0; i < 5; ++i) {
    Interp::run_work(spec, tst, tin, tout, nullptr, &tsink);
    runtime::Vm::run_work(prog, vst, vin, vout, nullptr, &vsink);
  }
  ASSERT_EQ(tmsg.size(), vmsg.size());
  for (std::size_t i = 0; i < tmsg.size(); ++i) {
    EXPECT_EQ(tmsg[i].portal, vmsg[i].portal);
    EXPECT_EQ(tmsg[i].method, vmsg[i].method);
    EXPECT_EQ(tmsg[i].lat_min, vmsg[i].lat_min);
    EXPECT_EQ(tmsg[i].lat_max, vmsg[i].lat_max);
    ASSERT_EQ(tmsg[i].args.size(), vmsg[i].args.size());
    for (std::size_t j = 0; j < tmsg[i].args.size(); ++j) {
      expect_same_value(tmsg[i].args[j], vmsg[i].args[j], "msg arg");
    }
  }
}

// A handler delivered between VM firings mutates the same storage the
// bytecode reads: the next firing must see the new state.
TEST(VmDifferential, HandlerStateSharedWithVm) {
  auto spec = filter("gainer")
                  .rates(1, 1, 1)
                  .scalar("gain", Value{1.0})
                  .work({push_(pop_() * v("gain"))})
                  .handler("setGain", {"g"}, let("gain", v("g")))
                  .build();
  auto prog = runtime::compile_filter(spec);
  ASSERT_NE(prog, nullptr);

  FilterState st = runtime::Vm::init_state(spec, *prog);
  runtime::VmBound bound(prog, st);
  Channel in, out;
  in.push_item(2.0);
  in.push_item(2.0);
  bound.run_work(in, out, nullptr);
  EXPECT_EQ(out.pop_item(), 2.0);
  Interp::run_handler(spec, st, "setGain", {Value{10.0}});
  bound.run_work(in, out, nullptr);
  EXPECT_EQ(out.pop_item(), 20.0);
}

// Out-of-subset work functions (here: a read of a possibly-unassigned
// local) must be rejected by the compiler with a reason, and the executor
// must transparently run them on the tree interpreter.
TEST(VmDifferential, FallbackForUncompilableFilter) {
  auto fb = filter("partial")
                .rates(1, 1, 1)
                .work({let("x", pop_()),
                       if_(v("x") > c(0.0), let("y", v("x") * c(2.0))),
                       // `y` is unassigned when x <= 0: the tree throws at
                       // runtime iff that path runs, so the compiler must
                       // refuse rather than guess.
                       push_(sel(v("x") > c(0.0), v("y"), v("x")))});
  std::string reason;
  EXPECT_EQ(runtime::compile_filter(fb.build(), &reason), nullptr);
  EXPECT_FALSE(reason.empty());

  auto make = [&] {
    auto src = filter("src").rates(0, 0, 1).iscalar("n", 0)
                   .work({let("n", v("n") + 1), push_(v("n") - 3)}).node();
    auto snk = filter("snk").rates(1, 1, 0).scalar("sum", Value{0.0})
                   .work({let("sum", v("sum") + pop_())}).node();
    return ir::make_pipeline("p", {src, fb.node(), snk});
  };
  sched::ExecOptions vopt;
  vopt.engine = sched::Engine::Vm;
  sched::Executor vm(make(), vopt);
  const auto& g = vm.graph();
  bool found = false;
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    if (g.actors[a].name.find("partial") == std::string::npos) continue;
    found = true;
    EXPECT_FALSE(vm.actor_uses_vm(static_cast<int>(a)));
  }
  ASSERT_TRUE(found);

  sched::ExecOptions topt;
  topt.engine = sched::Engine::Tree;
  sched::Executor tree(make(), topt);
  tree.run_steady(4);
  vm.run_steady(4);
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    if (g.actors[a].kind != runtime::FlatActor::Kind::Filter) continue;
    expect_same_state(tree.filter_state(static_cast<int>(a)),
                      vm.filter_state(static_cast<int>(a)), g.actors[a].name);
  }
}

// Debug-mode channel checking must fire identically under the VM, with the
// same diagnostic.
TEST(VmDifferential, DebugChannelChecksUnderVm) {
  // peek(5) with a declared window of max(2, 1) = 2.
  auto spec = filter("overpeek")
                  .rates(2, 1, 1)
                  .work({push_(peek_(5)), discard(1)})
                  .build();
  auto prog = runtime::compile_filter(spec);
  ASSERT_NE(prog, nullptr);

  runtime::set_debug_channel_checks(true);
  struct Restore {
    ~Restore() { runtime::set_debug_channel_checks(false); }
  } restore;

  Channel tin, vin, tout, vout;
  for (int i = 0; i < 8; ++i) {
    tin.push_item(i);
    vin.push_item(i);
  }
  FilterState tst = Interp::init_state(spec);
  FilterState vst = runtime::Vm::init_state(spec, *prog);
  std::string terr, verr;
  try {
    Interp::run_work(spec, tst, tin, tout, nullptr);
  } catch (const std::runtime_error& e) {
    terr = e.what();
  }
  try {
    runtime::Vm::run_work(prog, vst, vin, vout, nullptr);
  } catch (const std::runtime_error& e) {
    verr = e.what();
  }
  ASSERT_FALSE(terr.empty());
  EXPECT_EQ(terr, verr);
}

// Init functions compile too: a loop-initialized array must come out
// identical from both init paths.
TEST(VmDifferential, CompiledInitMatchesTree) {
  auto spec = filter("initful")
                  .rates(0, 0, 1)
                  .array("w", 8)
                  .iscalar("n", 0)
                  .init(for_("i", 0, 8,
                             set_at("w", v("i"), sin_(v("i") * c(0.3)) + v("i"))))
                  .work({let("n", v("n") + 1), push_(at("w", v("n") % 8))})
                  .build();
  auto prog = runtime::compile_filter(spec);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(prog->has_init);
  FilterState tst = Interp::init_state(spec);
  FilterState vst = runtime::Vm::init_state(spec, *prog);
  expect_same_state(tst, vst, "initful");
}

// Disassembly is for humans; just pin that it mentions the channel ops so
// the docs' examples stay truthful.
TEST(VmDifferential, DisassembleSmoke) {
  auto spec = filter("fir4")
                  .rates(4, 1, 1)
                  .array_init("h", {Value{0.1}, Value{0.2}, Value{0.3}, Value{0.4}})
                  .work({let("sum", c(0.0)),
                         for_("i", 0, 4,
                              let("sum", v("sum") + peek_(v("i")) * at("h", v("i")))),
                         push_(v("sum")), discard(1)})
                  .build();
  auto prog = runtime::compile_filter(spec);
  ASSERT_NE(prog, nullptr);
  const std::string dis = runtime::disassemble(prog->work);
  EXPECT_NE(dis.find("peek"), std::string::npos);
  EXPECT_NE(dis.find("push"), std::string::npos);
  EXPECT_NE(dis.find("halt"), std::string::npos);
}

// ---- ring-buffer channel ----------------------------------------------------

TEST(RingChannel, FifoAcrossWraparound) {
  Channel ch;
  // Interleave pushes and pops so head_ walks around the ring repeatedly.
  std::int64_t next_push = 0, next_pop = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 3; ++i) ch.push_item(static_cast<double>(next_push++));
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(ch.pop_item(), static_cast<double>(next_pop++));
    }
    // Peeks must see the live window in order.
    for (std::size_t off = 0; off < ch.size(); ++off) {
      ASSERT_EQ(ch.peek_item(static_cast<int>(off)),
                static_cast<double>(next_pop + static_cast<std::int64_t>(off)));
    }
  }
  EXPECT_EQ(ch.total_pushed(), next_push);
  EXPECT_EQ(ch.total_popped(), next_pop);
  EXPECT_EQ(ch.size(), static_cast<std::size_t>(next_push - next_pop));
  // Power-of-two capacity invariant.
  ASSERT_GT(ch.capacity(), 0u);
  EXPECT_EQ(ch.capacity() & (ch.capacity() - 1), 0u);
}

TEST(RingChannel, PushManyWrapsAndCounts) {
  Channel ch;
  // Misalign head first so the bulk write must split into two segments.
  for (int i = 0; i < 20; ++i) ch.push_item(i);
  for (int i = 0; i < 13; ++i) ch.pop_item();
  std::vector<double> bulk;
  for (int i = 0; i < 100; ++i) bulk.push_back(1000.0 + i);
  ch.push_many(bulk);
  EXPECT_EQ(ch.size(), 107u);
  EXPECT_EQ(ch.total_pushed(), 120);
  for (int i = 13; i < 20; ++i) ASSERT_EQ(ch.pop_item(), i);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(ch.pop_item(), 1000.0 + i);
  EXPECT_TRUE(ch.empty());
  EXPECT_THROW(ch.pop_item(), std::runtime_error);
}

TEST(RingChannel, PeekBeyondContentsThrows) {
  Channel ch;
  ch.push_item(1.0);
  EXPECT_THROW(ch.peek_item(1), std::runtime_error);
  EXPECT_THROW(ch.peek_item(-1), std::runtime_error);
  EXPECT_EQ(ch.peek_item(0), 1.0);
}

TEST(RingChannel, HighWaterTracksPeakOccupancy) {
  Channel ch;
  for (int i = 0; i < 10; ++i) ch.push_item(i);
  ch.note_high_water();
  for (int i = 0; i < 9; ++i) ch.pop_item();
  ch.note_high_water();
  EXPECT_EQ(ch.high_water(), 10);
}

TEST(RingChannel, PopManyBulkDiscard) {
  Channel ch;
  for (int i = 0; i < 30; ++i) ch.push_item(static_cast<double>(i));
  ch.pop_many(7);  // O(1) head advance
  EXPECT_EQ(ch.total_popped(), 7);
  EXPECT_EQ(ch.size(), 23u);
  ASSERT_EQ(ch.pop_item(), 7.0);
  ch.pop_many(0);   // no-ops
  ch.pop_many(-3);
  EXPECT_EQ(ch.total_popped(), 8);
  EXPECT_THROW(ch.pop_many(100), std::runtime_error);
  EXPECT_EQ(ch.size(), 22u);  // failed bulk pop consumed nothing
  ch.pop_many(22);
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.total_popped(), 30);
}

// Coprime push/pop rates sweep the wrap point through every alignment, the
// way an up/down-sampler pair drives a channel across many steady states.
// Bulk pops and bursty pushes keep crossing segment boundaries; growth at
// awkward head positions must re-linearize without losing order.
TEST(RingChannel, CoprimeRatesManySteadyStates) {
  Channel ch;
  std::int64_t next_push = 0, next_pop = 0;
  std::size_t peak = 0;
  for (int round = 0; round < 5000; ++round) {
    // Occasional oversized bursts force capacity growth while head_ sits at
    // an awkward offset.
    const int pushes = (round % 997 == 17) ? 611 : 7;
    std::vector<double> burst;
    burst.reserve(pushes);
    for (int i = 0; i < pushes; ++i) {
      burst.push_back(static_cast<double>(next_push++));
    }
    ch.push_many(burst);
    ch.note_high_water();
    peak = std::max(peak, ch.size());
    while (ch.size() >= 5) {
      // Verify the head of the live window, then discard the 5-item stride
      // in bulk (decimation idiom: peek what you need, pop_many the rest).
      ASSERT_EQ(ch.peek_item(0), static_cast<double>(next_pop));
      ASSERT_EQ(ch.peek_item(4), static_cast<double>(next_pop + 4));
      ch.pop_many(5);
      next_pop += 5;
    }
  }
  while (!ch.empty()) {
    ASSERT_EQ(ch.pop_item(), static_cast<double>(next_pop++));
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_EQ(ch.total_pushed(), next_push);
  EXPECT_EQ(ch.total_popped(), next_pop);
  EXPECT_EQ(ch.high_water(), peak);
  EXPECT_EQ(ch.capacity() & (ch.capacity() - 1), 0u);
}

}  // namespace
}  // namespace sit
