// Tests for the linear module: extraction, representation round-trips,
// expansion, pipeline and split-join combination, frequency translation, and
// optimization selection.  The combination rules are verified by *property
// tests*: a collapsed filter must compute exactly the same output stream as
// the subgraph it replaces, on random programs and random inputs.

#include <gtest/gtest.h>

#include <random>

#include "ir/dsl.h"
#include "linear/combine.h"
#include "linear/extract.h"
#include "linear/frequency.h"
#include "linear/linear_rep.h"
#include "linear/optimize.h"
#include "sched/exec.h"

namespace sit::linear {
namespace {

using namespace sit::ir::dsl;
using namespace sit::ir;

// ---- helpers ----------------------------------------------------------------

std::vector<double> run_graph(const NodeP& root, int items_out,
                              unsigned input_seed = 99) {
  sched::Executor ex(ir::clone(root));
  std::mt19937 rng(input_seed);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  std::vector<double> input;
  ex.set_input_generator([&input, &rng, &d](std::int64_t i) {
    while (static_cast<std::int64_t>(input.size()) <= i) input.push_back(d(rng));
    return input[static_cast<std::size_t>(i)];
  });
  std::vector<double> out;
  int guard = 0;
  while (static_cast<int>(out.size()) < items_out && ++guard < 10000) {
    const auto got = ex.run_steady(1);
    out.insert(out.end(), got.begin(), got.end());
  }
  out.resize(static_cast<std::size_t>(items_out));
  return out;
}

void expect_same_stream(const NodeP& a, const NodeP& b, int items,
                        double tol = 1e-9) {
  const auto xa = run_graph(a, items);
  const auto xb = run_graph(b, items);
  ASSERT_EQ(xa.size(), xb.size());
  for (std::size_t i = 0; i < xa.size(); ++i) {
    ASSERT_NEAR(xa[i], xb[i], tol) << "streams diverge at item " << i;
  }
}

LinearRep random_rep(std::mt19937& rng, int max_rate = 3, int max_extra = 3) {
  std::uniform_int_distribution<int> rate(1, max_rate);
  std::uniform_int_distribution<int> extra(0, max_extra);
  std::uniform_real_distribution<double> coeff(-1.5, 1.5);
  std::uniform_int_distribution<int> sparse(0, 3);
  LinearRep r;
  r.pop = rate(rng);
  r.peek = r.pop + extra(rng);
  r.push = rate(rng);
  r.A = Matrix(static_cast<std::size_t>(r.push), static_cast<std::size_t>(r.peek));
  r.b.assign(static_cast<std::size_t>(r.push), 0.0);
  for (int o = 0; o < r.push; ++o) {
    for (int i = 0; i < r.peek; ++i) {
      if (sparse(rng) != 0) {  // 75% dense
        r.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) = coeff(rng);
      }
    }
    if (sparse(rng) == 0) r.b[static_cast<std::size_t>(o)] = coeff(rng);
  }
  return r;
}

// ---- extraction -------------------------------------------------------------

TEST(Extract, FirFilterYieldsCoefficientMatrix) {
  // 4-tap FIR with weights from init: y = sum_i h[i] * peek(i).
  auto f = filter("fir4")
               .rates(4, 1, 1)
               .array("h", 4)
               .init(seq({for_("i", 0, 4,
                               set_at("h", v("i"), to_float(v("i")) + c(1.0)))}))
               .work(seq({let("s", c(0.0)),
                          for_("i", 0, 4,
                               let("s", v("s") + peek_(v("i")) * at("h", v("i")))),
                          push_(v("s")), discard(1)}))
               .build();
  const auto res = extract(f);
  ASSERT_TRUE(res.rep.has_value()) << res.reason;
  const LinearRep& r = *res.rep;
  EXPECT_EQ(r.peek, 4);
  EXPECT_EQ(r.pop, 1);
  EXPECT_EQ(r.push, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r.A.at(0, static_cast<std::size_t>(i)), i + 1.0);
  }
  EXPECT_DOUBLE_EQ(r.b[0], 0.0);
}

TEST(Extract, AffineConstantGoesToB) {
  auto f = filter("aff").rates(1, 1, 1).work(seq({push_(pop_() * c(3.0) + c(2.5))})).build();
  const auto res = extract(f);
  ASSERT_TRUE(res.rep.has_value());
  EXPECT_DOUBLE_EQ(res.rep->A.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(res.rep->b[0], 2.5);
}

TEST(Extract, SubtractionAndNegation) {
  auto f = filter("sub").rates(2, 2, 1).work(seq({push_(-(pop_() - pop_()))})).build();
  const auto res = extract(f);
  ASSERT_TRUE(res.rep.has_value());
  EXPECT_DOUBLE_EQ(res.rep->A.at(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(res.rep->A.at(0, 1), 1.0);
}

TEST(Extract, RejectsProductOfInputs) {
  auto f = filter("sq").rates(1, 1, 1).work(seq({push_(peek_(0) * peek_(0)), discard(1)})).build();
  const auto res = extract(f);
  EXPECT_FALSE(res.rep.has_value());
  EXPECT_NE(res.reason.find("product"), std::string::npos);
}

TEST(Extract, RejectsStateWrites) {
  auto f = filter("acc")
               .rates(1, 1, 1)
               .scalar("s", ir::Value(0.0))
               .work(seq({let("s", v("s") + pop_()), push_(v("s"))}))
               .build();
  const auto res = extract(f);
  EXPECT_FALSE(res.rep.has_value());
  EXPECT_NE(res.reason.find("state"), std::string::npos);
  EXPECT_TRUE(writes_state(f));
}

TEST(Extract, RejectsDataDependentBranch) {
  auto f = filter("clip")
               .rates(1, 1, 1)
               .work(seq({let("x", pop_()),
                          if_(v("x") > c(0.0), push_(v("x")), push_(c(0.0)))}))
               .build();
  EXPECT_FALSE(extract(f).rep.has_value());
}

TEST(Extract, RejectsTranscendentalOfInput) {
  auto f = filter("sinf").rates(1, 1, 1).work(seq({push_(sin_(pop_()))})).build();
  EXPECT_FALSE(extract(f).rep.has_value());
}

TEST(Extract, DivisionByConstantIsLinear) {
  auto f = filter("scale").rates(1, 1, 1).work(seq({push_(pop_() / c(4.0))})).build();
  const auto res = extract(f);
  ASSERT_TRUE(res.rep.has_value());
  EXPECT_DOUBLE_EQ(res.rep->A.at(0, 0), 0.25);
}

TEST(Extract, ConstantConditionalIsFolded) {
  auto f = filter("cc")
               .rates(1, 1, 1)
               .work(seq({if_(E(1) == E(1), push_(pop_() * c(2.0)),
                              push_(pop_() * c(9.0)))}))
               .build();
  const auto res = extract(f);
  ASSERT_TRUE(res.rep.has_value());
  EXPECT_DOUBLE_EQ(res.rep->A.at(0, 0), 2.0);
}

TEST(Extract, IdentityFilter) {
  const auto res = extract(dsl::identity("id")->filter);
  ASSERT_TRUE(res.rep.has_value());
  EXPECT_DOUBLE_EQ(res.rep->A.at(0, 0), 1.0);
}

// ---- representation round trip ----------------------------------------------

TEST(LinearRepTest, ToFilterRoundTripsThroughExtraction) {
  std::mt19937 rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    const LinearRep r = random_rep(rng);
    const auto back = extract(to_filter(r, "rt"));
    ASSERT_TRUE(back.rep.has_value()) << back.reason;
    // trim_tail is not applied by to_filter, so peek can only shrink via
    // extraction if trailing columns were zero; compare entrywise on the
    // common window.
    EXPECT_EQ(back.rep->pop, r.pop);
    EXPECT_EQ(back.rep->push, r.push);
    for (int o = 0; o < r.push; ++o) {
      for (int i = 0; i < r.peek; ++i) {
        const double want = r.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i));
        const double got = i < back.rep->peek
                               ? back.rep->A.at(static_cast<std::size_t>(o),
                                                static_cast<std::size_t>(i))
                               : 0.0;
        EXPECT_DOUBLE_EQ(got, want);
      }
      EXPECT_DOUBLE_EQ(back.rep->b[static_cast<std::size_t>(o)],
                       r.b[static_cast<std::size_t>(o)]);
    }
  }
}

TEST(LinearRepTest, ApplyMatchesFilterExecution) {
  std::mt19937 rng(4);
  const LinearRep r = random_rep(rng);
  auto node = make_filter(to_filter(r, "x"));
  const auto out = run_graph(make_pipeline("p", {node}), r.push * 3);
  // First firing consumes window = first peek inputs of the same generator.
  std::mt19937 rng2(99);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  std::vector<double> input;
  for (int i = 0; i < r.peek + 3 * r.pop; ++i) input.push_back(d(rng2));
  std::vector<double> window(input.begin(), input.begin() + r.peek);
  const auto want = sit::linear::apply(r, window);
  for (int o = 0; o < r.push; ++o) {
    EXPECT_NEAR(out[static_cast<std::size_t>(o)], want[static_cast<std::size_t>(o)], 1e-9);
  }
}

// ---- expansion ---------------------------------------------------------------

TEST(Expand, RatesAndEquivalence) {
  std::mt19937 rng(7);
  const LinearRep r = random_rep(rng);
  const LinearRep e = expand(r, 3);
  EXPECT_EQ(e.pop, 3 * r.pop);
  EXPECT_EQ(e.push, 3 * r.push);
  EXPECT_EQ(e.peek, r.peek + 2 * r.pop);
  expect_same_stream(make_filter(to_filter(r, "orig")),
                     make_filter(to_filter(e, "expanded")), 3 * r.push * 4);
}

TEST(Expand, FactorOneIsIdentity) {
  std::mt19937 rng(8);
  const LinearRep r = random_rep(rng);
  EXPECT_TRUE(expand(r, 1) == r);
  EXPECT_THROW(expand(r, 0), std::invalid_argument);
}

// ---- pipeline combination (property test) ------------------------------------

struct PipeCase {
  unsigned seed;
};

class CombinePipelineP : public ::testing::TestWithParam<unsigned> {};

TEST_P(CombinePipelineP, CollapsedFilterMatchesPipeline) {
  std::mt19937 rng(GetParam());
  const LinearRep a = random_rep(rng);
  const LinearRep b = random_rep(rng);
  const LinearRep c = combine_pipeline(a, b);

  auto orig = make_pipeline("orig", {make_filter(to_filter(a, "A")),
                                     make_filter(to_filter(b, "B"))});
  auto collapsed = make_filter(to_filter(c, "C"));
  expect_same_stream(orig, collapsed, 3 * c.push + 5);
}

INSTANTIATE_TEST_SUITE_P(RandomPipelines, CombinePipelineP,
                         ::testing::Range(100u, 140u));

TEST(CombinePipeline, ThreeStageChain) {
  std::mt19937 rng(77);
  const LinearRep a = random_rep(rng);
  const LinearRep b = random_rep(rng);
  const LinearRep c = random_rep(rng);
  const LinearRep abc = combine_pipeline({a, b, c});
  auto orig = make_pipeline("orig", {make_filter(to_filter(a, "A")),
                                     make_filter(to_filter(b, "B")),
                                     make_filter(to_filter(c, "C"))});
  expect_same_stream(orig, make_filter(to_filter(abc, "ABC")), 3 * abc.push + 2);
}

TEST(CombinePipeline, TwoFirsCollapseToOneFir) {
  // FIR(h1) ; FIR(h2) == FIR(h1 conv h2): rates collapse to peek k1+k2-1.
  auto fir = [](const std::vector<double>& h) {
    LinearRep r;
    r.peek = static_cast<int>(h.size());
    r.pop = 1;
    r.push = 1;
    r.A = Matrix(1, h.size());
    for (std::size_t i = 0; i < h.size(); ++i) r.A.at(0, i) = h[i];
    r.b = {0.0};
    return r;
  };
  const LinearRep c = combine_pipeline(fir({1.0, 2.0}), fir({1.0, -1.0}));
  EXPECT_EQ(c.pop, 1);
  EXPECT_EQ(c.push, 1);
  EXPECT_EQ(c.peek, 3);
  // y[t] = (x[t]+2x[t+1]) composed: B output = A_out[t] - A_out[t+1] with
  // window-forward convention: coefficients {1*1, 2-1? ...} -- verified by
  // stream equality, and the tap count is what the paper's FIR fusion gives.
  expect_same_stream(
      make_pipeline("p", {make_filter(to_filter(fir({1.0, 2.0}), "f1")),
                          make_filter(to_filter(fir({1.0, -1.0}), "f2"))}),
      make_filter(to_filter(c, "c")), 12);
}

TEST(CombinePipeline, DegenerateRatesThrow) {
  LinearRep src;  // push-only
  src.peek = src.pop = 0;
  src.push = 1;
  src.A = Matrix(1, 0);
  src.b = {1.0};
  std::mt19937 rng(3);
  const LinearRep b = random_rep(rng);
  EXPECT_THROW(combine_pipeline(b, src), std::invalid_argument);
}

// ---- splitjoin combination (property test) -----------------------------------

class CombineSplitJoinDupP : public ::testing::TestWithParam<unsigned> {};

TEST_P(CombineSplitJoinDupP, DuplicateSplitterCollapse) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nch(2, 4);
  const int n = nch(rng);
  std::vector<LinearRep> reps;
  std::vector<NodeP> children;
  std::vector<int> jw;
  // Duplicate splitter: all children must pop the same amount for a simple
  // instance; give them a common pop and independent peek/push.
  std::uniform_int_distribution<int> rate(1, 3);
  const int pop = rate(rng);
  for (int i = 0; i < n; ++i) {
    LinearRep r = random_rep(rng);
    r.pop = pop;
    if (r.peek < pop) r.peek = pop;
    // Rebuild matrix for new rates.
    Matrix m(static_cast<std::size_t>(r.push), static_cast<std::size_t>(r.peek));
    std::uniform_real_distribution<double> coeff(-1.0, 1.0);
    for (int o = 0; o < r.push; ++o) {
      for (int k = 0; k < r.peek; ++k) {
        m.at(static_cast<std::size_t>(o), static_cast<std::size_t>(k)) = coeff(rng);
      }
    }
    r.A = std::move(m);
    reps.push_back(r);
    children.push_back(make_filter(to_filter(r, "ch" + std::to_string(i))));
    jw.push_back(r.push);  // joiner takes each child's whole firing per cycle
  }
  const LinearRep c = combine_splitjoin(duplicate_split(), reps, jw);
  auto orig = make_splitjoin("sj", duplicate_split(), roundrobin_join(jw), children);
  expect_same_stream(orig, make_filter(to_filter(c, "C")), 2 * c.push + 3);
}

INSTANTIATE_TEST_SUITE_P(RandomDupSplitJoins, CombineSplitJoinDupP,
                         ::testing::Range(200u, 220u));

class CombineSplitJoinRRP : public ::testing::TestWithParam<unsigned> {};

TEST_P(CombineSplitJoinRRP, RoundRobinSplitterCollapse) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nch(2, 3);
  std::uniform_int_distribution<int> wdist(1, 3);
  const int n = nch(rng);
  std::vector<LinearRep> reps;
  std::vector<NodeP> children;
  std::vector<int> sw, jw;
  for (int i = 0; i < n; ++i) {
    LinearRep r = random_rep(rng, /*max_rate=*/2, /*max_extra=*/2);
    reps.push_back(r);
    children.push_back(make_filter(to_filter(r, "ch" + std::to_string(i))));
    sw.push_back(r.pop * wdist(rng));  // splitter weight = multiple of pop
    jw.push_back(r.push * (sw.back() / r.pop));  // keeps joiner balanced
  }
  const LinearRep c = combine_splitjoin(roundrobin_split(sw), reps, jw);
  auto orig = make_splitjoin("sj", roundrobin_split(sw), roundrobin_join(jw),
                             children);
  expect_same_stream(orig, make_filter(to_filter(c, "C")), 2 * c.push + 3);
}

INSTANTIATE_TEST_SUITE_P(RandomRRSplitJoins, CombineSplitJoinRRP,
                         ::testing::Range(300u, 320u));

TEST(CombineSplitJoin, InconsistentRatesThrow) {
  std::mt19937 rng(31);
  LinearRep a = random_rep(rng);
  a.pop = 1;
  a.push = 1;
  a.peek = 1;
  a.A = Matrix(1, 1);
  a.A.at(0, 0) = 1.0;
  a.b = {0.0};
  LinearRep b = a;
  b.push = 2;
  b.A = Matrix(2, 1);
  b.A.at(0, 0) = 1.0;
  b.A.at(1, 0) = 1.0;
  b.b = {0.0, 0.0};
  // Duplicate split, join weights (1,1): a produces 1/input, b produces 2.
  EXPECT_THROW(combine_splitjoin(duplicate_split(), {a, b}, {1, 1}),
               std::invalid_argument);
}

// ---- frequency translation ----------------------------------------------------

class FrequencyP : public ::testing::TestWithParam<unsigned> {};

TEST_P(FrequencyP, FrequencyFilterMatchesDirect) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> taps(4, 24);
  std::uniform_int_distribution<int> pushes(1, 3);
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);
  LinearRep r;
  r.pop = 1;
  r.peek = taps(rng);
  r.push = pushes(rng);
  r.A = Matrix(static_cast<std::size_t>(r.push), static_cast<std::size_t>(r.peek));
  r.b.assign(static_cast<std::size_t>(r.push), 0.0);
  for (int o = 0; o < r.push; ++o) {
    for (int i = 0; i < r.peek; ++i) {
      r.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) = coeff(rng);
    }
    r.b[static_cast<std::size_t>(o)] = coeff(rng);
  }
  ASSERT_TRUE(frequency_applicable(r));
  auto freq = make_frequency_filter(r, "freq", 64);
  expect_same_stream(make_filter(to_filter(r, "direct")), freq, 150, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomFirs, FrequencyP, ::testing::Range(400u, 415u));

TEST(Frequency, NotApplicableToDecimators) {
  std::mt19937 rng(9);
  LinearRep r = random_rep(rng);
  r.pop = 2;
  r.peek = std::max(r.peek, 2);
  EXPECT_FALSE(frequency_applicable(r));
  EXPECT_THROW(make_frequency_filter(r, "x"), std::invalid_argument);
}

TEST(Frequency, CostFavorsFftForLongFilters) {
  LinearRep longfir;
  longfir.pop = 1;
  longfir.peek = 256;
  longfir.push = 1;
  longfir.A = Matrix(1, 256);
  for (int i = 0; i < 256; ++i) longfir.A.at(0, static_cast<std::size_t>(i)) = 1.0;
  longfir.b = {0.0};
  const std::size_t n = best_fft_size(longfir);
  ASSERT_NE(n, 0u);
  EXPECT_LT(frequency_cost_per_firing(longfir, n),
            longfir.cost_flops_per_firing());

  LinearRep shortfir = longfir;
  shortfir.peek = 3;
  shortfir.A = Matrix(1, 3);
  for (int i = 0; i < 3; ++i) shortfir.A.at(0, static_cast<std::size_t>(i)) = 1.0;
  EXPECT_EQ(best_fft_size(shortfir), 0u);
}

// ---- optimization selection -----------------------------------------------------

NodeP fir_node(const std::string& name, const std::vector<double>& h) {
  std::vector<ir::Value> init;
  init.reserve(h.size());
  for (double x : h) init.emplace_back(x);
  const int n = static_cast<int>(h.size());
  return filter(name)
      .rates(n, 1, 1)
      .array_init("h", init)
      .work(seq({let("s", c(0.0)),
                 for_("i", 0, n, let("s", v("s") + peek_(v("i")) * at("h", v("i")))),
                 push_(v("s")), discard(1)}))
      .node();
}

TEST(Optimize, CollapsesPipelineOfFirs) {
  auto p = make_pipeline("p", {fir_node("f1", {1.0, 0.5, 0.25, 0.1, 0.05}),
                               fir_node("f2", {0.5, -0.5, 0.25, -0.25})});
  OptimizeStats stats;
  OptimizeOptions opts;
  opts.enable_frequency = false;
  auto q = optimize_selection(p, opts, &stats);
  EXPECT_EQ(stats.linear_filters, 2);
  EXPECT_GE(stats.combinations, 1);
  EXPECT_LE(stats.cost_after, stats.cost_before + 1e-9);
  EXPECT_EQ(count_filters(q), 1);
  expect_same_stream(p, q, 40);
}

TEST(Optimize, TranslatesLongFirToFrequency) {
  std::vector<double> h(128);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = 1.0 / (1.0 + static_cast<double>(i));
  auto p = make_pipeline("p", {fir_node("long", h)});
  OptimizeStats stats;
  auto q = optimize_selection(p, {}, &stats);
  EXPECT_EQ(stats.frequency_nodes, 1);
  EXPECT_LT(stats.cost_after, stats.cost_before);
  expect_same_stream(p, q, 200, 1e-7);
}

TEST(Optimize, LeavesNonlinearAlone) {
  auto sq = filter("sq").rates(1, 1, 1).work(seq({push_(peek_(0) * peek_(0)), discard(1)})).node();
  auto p = make_pipeline("p", {sq});
  OptimizeStats stats;
  auto q = optimize_selection(p, {}, &stats);
  EXPECT_EQ(stats.linear_filters, 0);
  EXPECT_EQ(stats.combinations, 0);
  expect_same_stream(p, q, 20);
}

TEST(Optimize, MixedPipelineCollapsesOnlyLinearRun) {
  auto sq = filter("sq").rates(1, 1, 1).work(seq({push_(peek_(0) * peek_(0)), discard(1)})).node();
  auto p = make_pipeline("p", {fir_node("f1", {1.0, 2.0, 1.0, 0.5}),
                               fir_node("f2", {0.25, 0.5, 0.25}), sq,
                               fir_node("f3", {1.0, -1.0, 0.5, -0.5}),
                               fir_node("f4", {0.5, 0.5, 0.1})});
  OptimizeStats stats;
  OptimizeOptions opts;
  opts.enable_frequency = false;
  auto q = optimize_selection(p, opts, &stats);
  EXPECT_EQ(stats.linear_filters, 4);
  // f1+f2 collapse, sq survives, f3+f4 collapse -> 3 filters.
  EXPECT_EQ(count_filters(q), 3);
  expect_same_stream(p, q, 40);
}

TEST(Optimize, ExtractTreeOnSplitJoin) {
  auto sj = make_splitjoin(
      "sub", duplicate_split(), roundrobin_join({1, 1}),
      {fir_node("lo", {0.5, 0.5}), fir_node("hi", {0.5, -0.5})});
  const auto rep = extract_tree(sj);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->pop, 1);
  EXPECT_EQ(rep->push, 2);
  EXPECT_EQ(rep->peek, 2);
}

}  // namespace
}  // namespace sit::linear
