// Tests for the pass-pipeline semantic verifier (analysis/verify.h) and the
// static channel-bound analysis (analysis/bounds_chan.h).
//
//   * Every built-in app verifies clean, and hand-corrupted flat graphs are
//     rejected with the right stable diagnostic code (V-STRUCT, V-SJ,
//     V-ORDER, V-SCHED).
//   * Seeded mutation passes corrupt the IR mid-pipeline (wrong rate,
//     duplicated state); PassOptions::verify_each must pin the *offending
//     pass by name* in the thrown message and leave the coded diagnostic in
//     the context.
//   * Property: the static per-edge bounds dominate the observed high-water
//     occupancy on every app x optimization level x thread count, and match
//     it exactly on the linear chain apps under the in-order discipline.
//   * SIT_VERIFY parsing and VerifyMode resolution.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/bounds_chan.h"
#include "analysis/verify.h"
#include "apps/apps.h"
#include "apps/common.h"
#include "ir/dsl.h"
#include "obs/metrics.h"
#include "opt/compile.h"
#include "opt/pass_manager.h"
#include "runtime/flatgraph.h"
#include "sched/envopts.h"
#include "sched/texec.h"

namespace sit {
namespace {

using namespace sit::ir::dsl;
using analysis::Diagnostic;

bool has_code(const std::vector<Diagnostic>& ds, const std::string& code) {
  for (const auto& d : ds) {
    if (d.code == code && d.is_error()) return true;
  }
  return false;
}

// Drop the final sink so the program output edge is observable (mirrors
// test_pipeline_diff.cc).
ir::NodeP observable(const ir::NodeP& app) {
  if (app->kind != ir::Node::Kind::Pipeline || app->children.size() < 2) {
    return app;
  }
  std::vector<ir::NodeP> kids(app->children.begin(), app->children.end() - 1);
  return ir::make_pipeline(app->name + "_obs", kids);
}

// ---- the verifier accepts every shipped program -----------------------------

TEST(Verify, AllAppsVerifyClean) {
  for (const auto& a : apps::all_apps()) {
    const auto ds = analysis::verify_graph(a.make());
    EXPECT_FALSE(analysis::has_errors(ds))
        << a.name << ":\n" << analysis::render(ds);
  }
}

// ---- hand-corrupted flat graphs ---------------------------------------------

TEST(Verify, CorruptEdgeEndpointIsStructError) {
  runtime::FlatGraph g = runtime::flatten(apps::make_app("FIR"));
  g.edges[0].dst = 99;  // no such actor
  const auto ds = analysis::verify_flat(g);
  EXPECT_TRUE(has_code(ds, "V-STRUCT")) << analysis::render(ds);
}

TEST(Verify, NegativeRateIsStructError) {
  runtime::FlatGraph g = runtime::flatten(apps::make_app("FIR"));
  for (auto& a : g.actors) {
    if (a.is_filter() && !a.in_rate.empty()) {
      a.in_rate[0] = -1;
      break;
    }
  }
  const auto ds = analysis::verify_flat(g);
  EXPECT_TRUE(has_code(ds, "V-STRUCT")) << analysis::render(ds);
}

TEST(Verify, DuplicateSplitterBranchWeightIsSplitjoinError) {
  runtime::FlatGraph g = runtime::flatten(apps::make_app("FilterBank"));
  bool corrupted = false;
  for (auto& a : g.actors) {
    if (a.kind == runtime::FlatActor::Kind::Splitter &&
        a.sj == ir::SJKind::Duplicate) {
      a.out_rate[0] = 2;  // duplicate branches must carry exactly one
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "FilterBank has no duplicate splitter?";
  const auto ds = analysis::verify_flat(g);
  EXPECT_TRUE(has_code(ds, "V-SJ")) << analysis::render(ds);
}

TEST(Verify, CyclicActorOrderIsOrderError) {
  // Two 1->1 filters feeding each other with no initial items: structurally
  // well-formed and rate-consistent, but no forward topological order (and
  // no schedule) exists.
  const ir::NodeP na =
      filter("a").rates(1, 1, 1).work(seq({push_(pop_())})).node();
  const ir::NodeP nb =
      filter("b").rates(1, 1, 1).work(seq({push_(pop_())})).node();
  runtime::FlatGraph g;
  runtime::FlatActor a;
  a.kind = runtime::FlatActor::Kind::Filter;
  a.name = "a";
  a.node = na.get();
  a.in_edges = {1};
  a.out_edges = {0};
  a.in_rate = {1};
  a.out_rate = {1};
  runtime::FlatActor b = a;
  b.name = "b";
  b.node = nb.get();
  b.in_edges = {0};
  b.out_edges = {1};
  g.actors = {a, b};
  runtime::FlatEdge e0;
  e0.src = 0;
  e0.dst = 1;
  runtime::FlatEdge e1;
  e1.src = 1;
  e1.dst = 0;
  g.edges = {e0, e1};
  const auto ds = analysis::verify_flat(g);
  EXPECT_TRUE(has_code(ds, "V-ORDER")) << analysis::render(ds);
}

TEST(Verify, StarvedFeedbackLoopIsSchedError) {
  // Feedback loop with delay 0: rates solve, but the joiner needs a back-edge
  // item before anything was ever produced -- initialization cannot start.
  auto loop = ir::make_feedback(
      "starved", ir::roundrobin_join({1, 1}), ir::dsl::identity("body"),
      ir::roundrobin_split({1, 1}), ir::dsl::identity("echo"), /*delay=*/0,
      /*init_path=*/{});
  auto g = ir::make_pipeline(
      "demo", {apps::rand_source("src"), std::move(loop),
               apps::null_sink("sink", 1)});
  const auto ds = analysis::verify_graph(g);
  EXPECT_TRUE(has_code(ds, "V-SCHED")) << analysis::render(ds);
}

// ---- seeded mid-pipeline mutations ------------------------------------------

// Bumps the push rate of the first filter it finds inside a splitjoin,
// making the balance equations unsolvable.
ir::NodeP bump_push(const ir::NodeP& n, bool in_sj, bool* done) {
  if (n->kind == ir::Node::Kind::Filter) {
    if (in_sj && !*done) {
      ir::FilterSpec spec = n->filter;
      spec.push += 1;
      *done = true;
      return ir::make_filter(std::move(spec));
    }
    return n;
  }
  if (n->kind == ir::Node::Kind::Native) return n;
  const bool inner = in_sj || n->kind == ir::Node::Kind::SplitJoin;
  std::vector<ir::NodeP> kids;
  kids.reserve(n->children.size());
  for (const auto& c : n->children) kids.push_back(bump_push(c, inner, done));
  switch (n->kind) {
    case ir::Node::Kind::Pipeline:
      return ir::make_pipeline(n->name, std::move(kids));
    case ir::Node::Kind::SplitJoin:
      return ir::make_splitjoin(n->name, n->split, n->join, std::move(kids));
    case ir::Node::Kind::FeedbackLoop:
      return ir::make_feedback(n->name, n->join, kids[0], n->split, kids[1],
                               n->delay, n->init_path);
    default:
      return n;
  }
}

class BreakRatesPass final : public opt::Pass {
 public:
  const char* name() const override { return "break-rates"; }
  const char* description() const override { return "seeded rate corruption"; }
  opt::PassResult run(const ir::NodeP& root, opt::PassContext&) override {
    bool done = false;
    ir::NodeP out = bump_push(root, false, &done);
    EXPECT_TRUE(done) << "mutation found no splitjoin filter to corrupt";
    return {std::move(out), true};
  }
};

// Duplicates the root pipeline's middle stage *by reference*: two flat
// actors end up sharing one ir::Node (and therefore one logical state),
// which exactly one partition must own.
class DupStatePass final : public opt::Pass {
 public:
  const char* name() const override { return "dup-state"; }
  const char* description() const override { return "seeded state aliasing"; }
  opt::PassResult run(const ir::NodeP& root, opt::PassContext&) override {
    EXPECT_EQ(root->kind, ir::Node::Kind::Pipeline);
    EXPECT_GE(root->children.size(), 3u);
    std::vector<ir::NodeP> kids = root->children;
    kids.insert(kids.begin() + 1, kids[1]);  // same NodeP twice
    return {ir::make_pipeline(root->name, std::move(kids)), true};
  }
};

void expect_mutation_pinned(const std::string& app, opt::PassManager& pm,
                            const std::string& mutator,
                            const std::string& code) {
  opt::PassContext ctx;
  ctx.options.verify_each = opt::VerifyMode::Each;
  const std::vector<std::string> names = {"validate", "analysis-gate", mutator,
                                          "const-fold"};
  try {
    pm.run(apps::make_app(app), names, ctx);
    FAIL() << "verify_each missed the '" << mutator << "' corruption";
  } catch (const std::runtime_error& e) {
    // The throw must pin the offending pass by name...
    EXPECT_NE(std::string(e.what()).find("after pass '" + mutator + "'"),
              std::string::npos)
        << e.what();
  }
  // ...and the context carries the coded diagnostic.
  EXPECT_TRUE(has_code(ctx.diagnostics, code))
      << analysis::render(ctx.diagnostics);
  for (const auto& d : ctx.diagnostics) {
    if (d.code == code) {
      EXPECT_NE(d.message.find("after pass '" + mutator + "'"),
                std::string::npos);
    }
  }
}

TEST(VerifyEach, PinsRateCorruptionToOffendingPass) {
  opt::PassManager pm;
  pm.register_pass(std::make_unique<BreakRatesPass>());
  expect_mutation_pinned("FilterBank", pm, "break-rates", "V-RATES");
}

TEST(VerifyEach, PinsStateAliasingToOffendingPass) {
  opt::PassManager pm;
  pm.register_pass(std::make_unique<DupStatePass>());
  expect_mutation_pinned("FMRadio", pm, "dup-state", "V-STATE");
}

TEST(VerifyEach, CleanPipelineIsUndisturbed) {
  // With no corruption, verify-each is a no-op on the artifact: the full -O2
  // pipeline compiles every app with zero diagnostics from the verifier.
  for (const auto& a : apps::all_apps()) {
    opt::CompileOptions copts;
    copts.level = opt::OptLevel::O2;
    copts.pass.verify_each = opt::VerifyMode::Each;
    opt::PassContext ctx;
    EXPECT_NO_THROW(opt::compile(a.make(), copts, &ctx)) << a.name;
    EXPECT_FALSE(analysis::has_errors(ctx.diagnostics)) << a.name;
  }
}

// ---- bounds dominate observed occupancy -------------------------------------

bool is_linear_chain(const std::string& name) {
  return name == "FIR" || name == "RateConvert" || name == "DtoA" ||
         name == "Oversampler";
}

TEST(ChannelBounds, DominateObservedHighWaterOnAllApps) {
  for (const auto& a : apps::all_apps()) {
    for (const opt::OptLevel level :
         {opt::OptLevel::O0, opt::OptLevel::O1, opt::OptLevel::O2}) {
      // Batch factors: 1 (unbatched), -1 (auto heuristic), and one explicit
      // multi-iteration chunk.  Batching only matters on the threaded path,
      // so the sequential run exercises batch=1 alone.
      for (const int threads : {1, 4}) {
        for (const int batch : {1, -1, 4}) {
          if (threads == 1 && batch != 1) continue;
          opt::CompileOptions copts;
          copts.level = level;
          copts.exec.threads = threads;
          sched::CompiledProgram prog;
          try {
            prog = opt::compile(observable(a.make()), copts);
          } catch (const std::exception& e) {
            FAIL() << a.name << ": " << e.what();
          }
          sched::ExecOptions eopts;
          eopts.threads = threads;
          eopts.batch = batch;
          sched::ThreadedExecutor ex(std::move(prog), eopts);
          if (ex.graph().input_edge >= 0) {
            ex.set_input_generator([](std::int64_t i) {
              return static_cast<double>((i % 32) - 16) / 16.0;
            });
          }
          ex.run_steady(6);
          const obs::MetricsSnapshot m = ex.metrics_snapshot();
          const std::string what = a.name + " level=" +
                                   std::to_string(static_cast<int>(level)) +
                                   " threads=" + std::to_string(threads) +
                                   " batch=" + std::to_string(batch);
          ASSERT_FALSE(m.edges.empty()) << what;
          for (const auto& e : m.edges) {
            if (e.src < 0 || e.dst < 0) continue;  // unbounded boundary edges
            ASSERT_GE(e.bound_items, 0) << what << " edge " << e.name;
            EXPECT_LE(e.peak_items, e.bound_items)
                << what << " edge " << e.name;
            // In-order single-threaded runs track exact peaks at firing
            // boundaries; on the linear chain apps the bound is tight.
            // The fused engine lowers internal channels to trace buffers, so
            // it never observes intermediate occupancy -- high water is the
            // one metric fusion explicitly does not preserve (runtime/fused.h).
            if (threads == 1 && is_linear_chain(a.name) &&
                ex.engine() != sched::Engine::Fused) {
              EXPECT_EQ(e.peak_items, e.bound_items)
                  << what << " edge " << e.name;
            }
          }
        }
      }
    }
  }
}

TEST(ChannelBounds, ThreadedExecutorExposesBounds) {
  opt::CompileOptions copts;
  copts.level = opt::OptLevel::O0;
  copts.exec.threads = 4;
  sched::CompiledProgram prog = opt::compile(apps::make_app("FMRadio"), copts);
  sched::ExecOptions eopts;
  eopts.threads = 4;
  sched::ThreadedExecutor ex(std::move(prog), eopts);
  ex.run_steady(4);
  const analysis::ChannelBounds& b = ex.bounds();
  ASSERT_TRUE(b.single_appearance);
  ASSERT_EQ(b.post_init.size(), ex.graph().edges.size());
  for (std::size_t e = 0; e < ex.graph().edges.size(); ++e) {
    const auto& ed = ex.graph().edges[e];
    if (ed.src < 0 || ed.dst < 0) {
      EXPECT_EQ(b.post_init[e], -1);
      continue;
    }
    EXPECT_GE(b.post_init[e], 0);
    // The ring bound covers the post-init level plus every in-flight epoch;
    // the channel bound covers at least the resident post-init level.  (The
    // two are incomparable in general: in-order firing peaks can exceed the
    // epoch-granularity ring bound and vice versa.)
    EXPECT_GE(b.pipelined(e, sched::kPipelineWindow),
              b.post_init[e] + b.traffic[e]);
    EXPECT_GE(b.channel_bound(e), b.post_init[e]);
    // The batched generalizations: pipelined(e, W, B) = L0 + (W+1)*B*T,
    // monotone in B; the batched channel bound dominates the unbatched one.
    for (const std::int64_t batch : {1, 3, 8}) {
      EXPECT_EQ(b.pipelined(e, sched::kPipelineWindow, batch),
                b.post_init[e] +
                    (sched::kPipelineWindow + 1) * batch * b.traffic[e]);
      EXPECT_GE(b.channel_bound(e, batch), b.channel_bound(e));
    }
  }
  // An admissible single-appearance program supports at least batch 1.
  EXPECT_GE(b.max_batch, 1);
}

// ---- SIT_VERIFY resolution --------------------------------------------------

TEST(VerifyMode, EnvResolution) {
  const char* saved = std::getenv("SIT_VERIFY");
  const std::string saved_val = saved ? saved : "";

  ::unsetenv("SIT_VERIFY");
  EXPECT_EQ(env_verify(), 0);
  EXPECT_EQ(opt::resolve_verify_mode(opt::VerifyMode::Auto),
            opt::VerifyMode::Off);

  ::setenv("SIT_VERIFY", "each", 1);
  EXPECT_EQ(env_verify(), 2);
  EXPECT_EQ(opt::resolve_verify_mode(opt::VerifyMode::Auto),
            opt::VerifyMode::Each);

  ::setenv("SIT_VERIFY", "final", 1);
  EXPECT_EQ(env_verify(), 1);
  EXPECT_EQ(opt::resolve_verify_mode(opt::VerifyMode::Auto),
            opt::VerifyMode::Final);

  ::setenv("SIT_VERIFY", "on", 1);
  EXPECT_EQ(env_verify(), 1);

  ::setenv("SIT_VERIFY", "nonsense", 1);
  EXPECT_EQ(env_verify(), 0);

  // Explicit modes pass through regardless of the environment.
  ::setenv("SIT_VERIFY", "each", 1);
  EXPECT_EQ(opt::resolve_verify_mode(opt::VerifyMode::Off),
            opt::VerifyMode::Off);

  if (saved) {
    ::setenv("SIT_VERIFY", saved_val.c_str(), 1);
  } else {
    ::unsetenv("SIT_VERIFY");
  }
}

}  // namespace
}  // namespace sit
