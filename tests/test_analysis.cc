// Tests for the static-analysis framework: the interval bounds pass,
// definite initialization, constant folding (and the linear-extraction
// improvement it buys), graph-level rate/liveness checks, the dynamic-peek
// structural diagnostic, and the interpreter's debug-mode channel checks.
//
// Negative-path coverage matters most here: every pass must reject its
// characteristic broken program with an *error* diagnostic, since the
// executors gate on analysis::analyze reporting no errors.

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/analyze.h"
#include "analysis/constprop.h"
#include "analysis/definite_init.h"
#include "analysis/graph_checks.h"
#include "analysis/intervals.h"
#include "apps/common.h"
#include "ir/dsl.h"
#include "ir/validate.h"
#include "linear/extract.h"
#include "runtime/interp.h"

namespace sit::analysis {
namespace {

using namespace sit::ir::dsl;
using ir::NodeP;
using ir::Value;

bool any_diag(const std::vector<Diagnostic>& ds, Severity sev,
              const std::string& substr) {
  for (const auto& d : ds) {
    if (d.severity == sev && (d.message + d.detail).find(substr) !=
                                 std::string::npos) {
      return true;
    }
  }
  return false;
}

NodeP wrap(NodeP mid, int sink_pop) {
  return ir::make_pipeline("t", {apps::rand_source("src"), std::move(mid),
                                 apps::null_sink("sink", sink_pop)});
}

// ---- bounds pass ------------------------------------------------------------

TEST(Bounds, RejectsPeekBeyondWindow) {
  const auto spec = filter("f")
                        .rates(2, 2, 1)
                        .work(seq({push_(peek_(ci(5))), discard(2)}))
                        .build();
  std::vector<Diagnostic> ds;
  check_bounds(spec, ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "beyond the declared window"));
}

TEST(Bounds, RejectsNegativePeekOffset) {
  const auto spec = filter("f")
                        .rates(1, 1, 1)
                        .work(seq({let("i", ci(0) - ci(2)),
                                   push_(peek_(v("i"))), discard(1)}))
                        .build();
  std::vector<Diagnostic> ds;
  check_bounds(spec, ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "negative"));
}

TEST(Bounds, CountsPopsTowardTheWindow) {
  // peek(2) is fine at the start of a firing but not after a pop: the
  // window is max(peek, pop) = 3 and pops+offset reaches 3.
  const auto spec = filter("f")
                        .rates(3, 3, 1)
                        .work(seq({let("x", pop_()), push_(peek_(ci(2)) + v("x")),
                                   discard(2)}))
                        .build();
  std::vector<Diagnostic> ds;
  check_bounds(spec, ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "beyond the declared window"));
}

TEST(Bounds, RejectsStateArrayOverflow) {
  const auto spec = filter("f")
                        .rates(1, 1, 1)
                        .array("w", 4)
                        .work(seq({set_at("w", ci(7), pop_()),
                                   push_(at("w", ci(0)))}))
                        .build();
  std::vector<Diagnostic> ds;
  check_bounds(spec, ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "out of bounds"));
}

// Regression: an outer loop variable indexing through an inner loop must not
// stay widened to +inf -- the narrowing/targeted-widening machinery has to
// recover [0, n) for the matmul access pattern every DCT-style filter uses.
TEST(Bounds, AcceptsNestedLoopMatrixAccess) {
  const int n = 8;
  const auto spec =
      filter("mm")
          .rates(n, n, n)
          .array_init("m", std::vector<Value>(n * n, Value(1.0)))
          .work(seq({for_("r", 0, n,
                          seq({let("s", c(0.0)),
                               for_("cc", 0, n,
                                    let("s", v("s") + peek_(v("cc")) *
                                                 at("m", v("r") * n + v("cc")))),
                               push_(v("s"))})),
                     discard(n)}))
          .build();
  std::vector<Diagnostic> ds;
  check_bounds(spec, ds);
  EXPECT_TRUE(ds.empty()) << render(ds);
}

// Regression: a circular state index `count = (count + 1) % n` must be
// proven to stay in [0, n-1] across firings (the inter-firing fixpoint
// widens it to [0, +inf] first; narrowing brings it back).
TEST(Bounds, AcceptsModularStateIndex) {
  const int n = 8;
  const auto spec = filter("osc")
                        .rates(1, 1, 1)
                        .array("w", n)
                        .iscalar("count", 0)
                        .work(seq({push_(pop_() * at("w", v("count"))),
                                   let("count", (v("count") + 1) % n)}))
                        .build();
  std::vector<Diagnostic> ds;
  check_bounds(spec, ds);
  EXPECT_TRUE(ds.empty()) << render(ds);
}

// ---- definite initialization ------------------------------------------------

TEST(DefiniteInit, RejectsReadOfUnassignedLocal) {
  const auto spec = filter("f")
                        .rates(1, 1, 1)
                        .work(seq({push_(v("acc") + pop_())}))
                        .build();
  std::vector<Diagnostic> ds;
  check_definite_init(spec, ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "never assigned"));
}

TEST(DefiniteInit, WarnsOnBranchOnlyAssignment) {
  const auto spec =
      filter("f")
          .rates(1, 1, 1)
          .work(seq({if_(peek_(ci(0)) > c(0.0), let("x", c(1.0))),
                     push_(v("x") * pop_())}))
          .build();
  std::vector<Diagnostic> ds;
  check_definite_init(spec, ds);
  EXPECT_TRUE(any_diag(ds, Severity::Warning, "may be read"));
  EXPECT_FALSE(has_errors(ds)) << render(ds);
}

TEST(DefiniteInit, LoopVariableSurvivesTheLoop) {
  // After `for (i in 0..n)` the variable still holds a value (the
  // interpreter leaves lo behind even for zero-trip loops): no diagnostic.
  const auto spec = filter("f")
                        .rates(1, 1, 1)
                        .work(seq({for_("i", 0, 4, let("y", v("i"))),
                                   push_(to_float(v("i")) + pop_())}))
                        .build();
  std::vector<Diagnostic> ds;
  check_definite_init(spec, ds);
  EXPECT_FALSE(has_errors(ds)) << render(ds);
}

TEST(DefiniteInit, FlagsDeadAndPhantomState) {
  auto spec = filter("f")
                  .rates(1, 1, 1)
                  .scalar("hoard")  // written but never read
                  .work(seq({let("hoard", pop_()), push_(v("ghost"))}))
                  .build();
  // "ghost" is declared with no initializer at all (a .scalar() declaration
  // carries one): it is read but written nowhere, so it can only be zero.
  ir::VarDecl ghost;
  ghost.name = "ghost";
  spec.state.push_back(ghost);
  std::vector<Diagnostic> ds;
  check_definite_init(spec, ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "never initialized or written"));
  EXPECT_TRUE(any_diag(ds, Severity::Warning, "never read"));
}

// ---- constant folding -------------------------------------------------------

TEST(ConstProp, ReportsDivisionByConstantZero) {
  const auto body = seq({let("n", ci(4) - ci(4)),
                         push_(pop_() / to_float(ci(12) % v("n")))});
  const FoldResult r = fold_body(body, "f/work");
  EXPECT_TRUE(any_diag(r.diagnostics, Severity::Error, "zero"));
}

TEST(ConstProp, FoldsShortCircuitWithoutEvaluatingRhs) {
  // `1 || pop()` must fold to 1 *without* deleting the pop's effect being
  // an issue -- the interpreter short-circuits, so the rhs never runs.
  const auto body = seq({let("on", ci(1) || (pop_() > c(0.0))),
                         push_(sel(v("on"), c(2.0), pop_()))});
  const FoldResult r = fold_body(body, "f/work");
  EXPECT_TRUE(r.diagnostics.empty()) << render(r.diagnostics);
  // The fold collapses both the || and the ?: -- the folded body performs
  // no channel reads at all.
  const auto counts = ir::count_channel_ops(r.body);
  EXPECT_EQ(counts.pops, 0);
}

// Regression for the extraction upgrade: this filter is Top under plain
// abstract interpretation (`||` over an input-dependent comparison) but
// linear once constant folding collapses the statically-decided control
// flow.  ISSUE acceptance: at least one filter is linear only with
// propagation enabled.
TEST(ConstProp, EnablesLinearExtraction) {
  const auto spec =
      filter("gated")
          .rates(1, 1, 1)
          .work(seq({let("on", ci(1) || (peek_(ci(0)) > c(0.0))),
                     push_(sel(v("on"), peek_(ci(0)) * c(2.0), c(0.0))),
                     discard(1)}))
          .build();

  const auto raw = linear::extract(spec, linear::ExtractOptions{false});
  EXPECT_FALSE(raw.rep.has_value());

  const auto folded = linear::extract(spec);
  ASSERT_TRUE(folded.rep.has_value()) << folded.reason;
  EXPECT_DOUBLE_EQ(folded.rep->A.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(folded.rep->b[0], 0.0);
}

// ---- graph checks -----------------------------------------------------------

TEST(GraphChecks, RejectsUnsolvableRates) {
  auto doubler = filter("doubler")
                     .rates(1, 1, 2)
                     .work(seq({let("x", pop_()), push_(v("x")), push_(v("x"))}))
                     .node();
  auto sj = ir::make_splitjoin("mismatch", ir::duplicate_split(),
                               ir::roundrobin_join({1, 1}),
                               {identity("thru"), std::move(doubler)});
  std::vector<Diagnostic> ds;
  check_graph(wrap(std::move(sj), 1), ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "inconsistent rates"));
}

TEST(GraphChecks, RejectsStarvedFeedbackLoop) {
  auto loop = ir::make_feedback("starved", ir::roundrobin_join({1, 1}),
                                identity("body"), ir::roundrobin_split({1, 1}),
                                apps::gain("decay", 0.5), /*delay=*/0,
                                /*init_path=*/{});
  std::vector<Diagnostic> ds;
  check_graph(wrap(std::move(loop), 1), ds);
  EXPECT_TRUE(any_diag(ds, Severity::Error, "deadlock"));
}

TEST(GraphChecks, AcceptsProperlyDelayedFeedbackLoop) {
  auto loop = ir::make_feedback("fine", ir::roundrobin_join({1, 1}),
                                identity("body"), ir::roundrobin_split({1, 1}),
                                apps::gain("decay", 0.5), /*delay=*/1,
                                /*init_path=*/{0.0});
  std::vector<Diagnostic> ds;
  check_graph(wrap(std::move(loop), 1), ds);
  EXPECT_TRUE(ds.empty()) << render(ds);
}

// ---- dynamic peek offsets ---------------------------------------------------

TEST(DynamicPeek, CountsFlagInsteadOfSilentZeroWindow) {
  const auto spec = filter("f")
                        .rates(2, 2, 1)
                        .work(seq({push_(peek_(to_int(pop_()))), discard(1)}))
                        .build();
  const auto cc = ir::count_channel_ops(spec.work);
  EXPECT_TRUE(cc.dynamic_peek);
  EXPECT_EQ(cc.max_peek, 0);

  const auto ds = ir::check(wrap(ir::make_filter(spec), 1));
  EXPECT_TRUE(any_diag(ds, Severity::Error, "non-static offset"));
}

// ---- whole-suite driver -----------------------------------------------------

TEST(Analyze, GatesErrorsButToleratesWarnings) {
  // `hoard` is dead state (warning only): the program must still pass.
  auto warn_only = filter("w")
                       .rates(1, 1, 1)
                       .scalar("hoard")
                       .work(seq({let("hoard", peek_(ci(0))), push_(pop_())}))
                       .node();
  const AnalysisResult warn_res = analysis::analyze(wrap(std::move(warn_only), 1));
  EXPECT_TRUE(warn_res.ok());
  EXPECT_GT(warn_res.diagnostics.size(), 0u);

  auto broken = filter("b")
                    .rates(1, 1, 1)
                    .work(seq({push_(v("nope") + pop_())}))
                    .node();
  EXPECT_FALSE(analysis::analyze(wrap(std::move(broken), 1)).ok());
}

// ---- interpreter debug checks ----------------------------------------------

class VecIn final : public ir::InTape {
 public:
  explicit VecIn(std::vector<double> v) : v_(std::move(v)) {}
  double peek_item(int offset) override {
    return v_[static_cast<std::size_t>(pos_ + offset)];
  }
  double pop_item() override { return v_[static_cast<std::size_t>(pos_++)]; }

 private:
  std::vector<double> v_;
  int pos_{0};
};

class VecOut final : public ir::OutTape {
 public:
  void push_item(double v) override { out.push_back(v); }
  std::vector<double> out;
};

TEST(DebugChannelChecks, AssertsPeekWithinDeclaredWindow) {
  // Declares peek=1 but reads offset 1; the tape itself has plenty of
  // items, so only the debug assertion can catch the lie.
  const auto spec = filter("liar")
                        .rates(1, 1, 1)
                        .work(seq({push_(peek_(ci(1))), discard(1)}))
                        .build();
  auto state = runtime::Interp::init_state(spec);

  ASSERT_FALSE(runtime::debug_channel_checks());
  {
    VecIn in({1.0, 2.0, 3.0});
    VecOut out;
    EXPECT_NO_THROW(runtime::Interp::run_work(spec, state, in, out, nullptr));
  }

  runtime::set_debug_channel_checks(true);
  {
    VecIn in({1.0, 2.0, 3.0});
    VecOut out;
    EXPECT_THROW(runtime::Interp::run_work(spec, state, in, out, nullptr),
                 std::runtime_error);
  }
  runtime::set_debug_channel_checks(false);

  // An honest filter is unaffected by the checks.
  const auto ok = filter("honest")
                      .rates(2, 1, 1)
                      .work(seq({push_(peek_(ci(1)) + peek_(ci(0))), discard(1)}))
                      .build();
  auto ok_state = runtime::Interp::init_state(ok);
  runtime::set_debug_channel_checks(true);
  VecIn in({1.0, 2.0, 3.0});
  VecOut out;
  EXPECT_NO_THROW(runtime::Interp::run_work(ok, ok_state, in, out, nullptr));
  runtime::set_debug_channel_checks(false);
  EXPECT_EQ(out.out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.out[0], 3.0);
}

}  // namespace
}  // namespace sit::analysis
