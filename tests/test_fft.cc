// Tests for the FFT substrate: transform correctness against a naive DFT,
// algebraic identities, convolution, and the streaming overlap-save engine.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fft/fft.h"

namespace sit::fft {
namespace {

std::vector<cplx> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(d(rng), d(rng));
  return x;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(Fft, MatchesNaiveDftAcrossSizes) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    const auto x = random_signal(n, 42 + static_cast<unsigned>(n));
    EXPECT_LT(max_err(fft(x), dft_naive(x)), 1e-9 * static_cast<double>(n))
        << "size " << n;
  }
}

TEST(Fft, InverseRoundTrips) {
  const auto x = random_signal(128, 7);
  EXPECT_LT(max_err(ifft(fft(x)), x), 1e-12);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(32, cplx(0, 0));
  x[0] = cplx(1, 0);
  const auto f = fft(x);
  for (const auto& v : f) EXPECT_LT(std::abs(v - cplx(1, 0)), 1e-12);
}

TEST(Fft, LinearityHolds) {
  const auto x = random_signal(64, 1);
  const auto y = random_signal(64, 2);
  std::vector<cplx> z(64);
  for (std::size_t i = 0; i < 64; ++i) z[i] = 2.0 * x[i] + 3.0 * y[i];
  const auto fz = fft(z);
  const auto fx = fft(x);
  const auto fy = fft(y);
  std::vector<cplx> expect(64);
  for (std::size_t i = 0; i < 64; ++i) expect[i] = 2.0 * fx[i] + 3.0 * fy[i];
  EXPECT_LT(max_err(fz, expect), 1e-10);
}

TEST(Fft, ParsevalEnergyConservation) {
  const auto x = random_signal(256, 3);
  double time_e = 0.0;
  for (const auto& v : x) time_e += std::norm(v);
  const auto f = fft(x);
  double freq_e = 0.0;
  for (const auto& v : f) freq_e += std::norm(v);
  EXPECT_NEAR(freq_e / 256.0, time_e, 1e-9);
}

TEST(Fft, NonPow2Throws) {
  std::vector<cplx> x(12);
  EXPECT_THROW(fft_inplace(x, false), std::invalid_argument);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

std::vector<double> naive_conv(const std::vector<double>& x,
                               const std::vector<double>& h) {
  std::vector<double> y(x.size() + h.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < h.size(); ++j) y[i + j] += x[i] * h[j];
  return y;
}

TEST(Conv, MatchesNaiveConvolution) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> x(37), h(9);
  for (auto& v : x) v = d(rng);
  for (auto& v : h) v = d(rng);
  const auto got = convolve(x, h);
  const auto want = naive_conv(x, h);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-9);
}

TEST(OverlapSaveTest, StreamingMatchesDirectFir) {
  // y[i] = sum_k h[k] x[i-k] with zero history before the stream starts.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> h(16);
  for (auto& v : h) v = d(rng);

  OverlapSave os(h, 64);
  const std::size_t blk = os.block_size();
  ASSERT_EQ(blk, 64u - 16u + 1u);

  std::vector<double> x(blk * 4);
  for (auto& v : x) v = d(rng);

  std::vector<double> got;
  for (std::size_t b = 0; b < 4; ++b) {
    std::vector<double> in(x.begin() + static_cast<long>(b * blk),
                           x.begin() + static_cast<long>((b + 1) * blk));
    const auto out = os.process(in);
    got.insert(got.end(), out.begin(), out.end());
  }

  for (std::size_t i = 0; i < got.size(); ++i) {
    double want = 0.0;
    for (std::size_t k = 0; k < h.size(); ++k) {
      if (i >= k) want += h[k] * x[i - k];
    }
    ASSERT_NEAR(got[i], want, 1e-9) << "at sample " << i;
  }
}

TEST(OverlapSaveTest, PrimedHistoryShiftsAlignment) {
  std::vector<double> h{1.0, 2.0, 3.0};  // y[i] = x[i] + 2x[i-1] + 3x[i-2]
  OverlapSave os(h, 8);
  os.prime_history({10.0, 20.0});  // x[-2] = 10, x[-1] = 20
  std::vector<double> in(os.block_size(), 1.0);
  const auto out = os.process(in);
  // y[0] = 1 + 2*20 + 3*10 = 71; y[1] = 1 + 2*1 + 3*20 = 63; y[2] = 6.
  EXPECT_NEAR(out[0], 71.0, 1e-12);
  EXPECT_NEAR(out[1], 63.0, 1e-12);
  EXPECT_NEAR(out[2], 6.0, 1e-12);
}

TEST(OverlapSaveTest, BadSizesThrow) {
  EXPECT_THROW(OverlapSave({1.0}, 12), std::invalid_argument);
  EXPECT_THROW(OverlapSave(std::vector<double>(65, 1.0), 64), std::invalid_argument);
  OverlapSave os({1.0, 2.0}, 8);
  EXPECT_THROW(os.process(std::vector<double>(3, 0.0)), std::invalid_argument);
  EXPECT_THROW(os.prime_history({1.0, 2.0}), std::invalid_argument);
}

TEST(FftCost, GrowsAsNLogN) {
  EXPECT_DOUBLE_EQ(fft_cost_flops(1), 0.0);
  EXPECT_DOUBLE_EQ(fft_cost_flops(8), 5.0 * 8 * 3);
  EXPECT_DOUBLE_EQ(fft_cost_flops(1024), 5.0 * 1024 * 10);
}

}  // namespace
}  // namespace sit::fft
