// Typed-dataflow tests: the canonical value-tag contract, static inference
// and specialization on the flagship apps, every refusal reason with its
// stable string, and the SIT_TYPED=0 vs =1 bit-equality contract.
//
// The cross-engine bit-equality contract (tree/VM/fused/threaded at every
// optimization level, typed on by default) lives in test_pipeline_diff.cc;
// this file pins the typed plane's *own* artifacts: which tags the lattice
// assigns, which filters specialize, why the rest refuse, and that the
// tagged fallback is bit-identical when inference refuses or SIT_TYPED=0.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/typeflow.h"
#include "apps/apps.h"
#include "ir/dsl.h"
#include "runtime/eval_ops.h"
#include "runtime/typed.h"
#include "sched/exec.h"
#include "sched/texec.h"

namespace sit {
namespace {

using namespace sit::ir;
using namespace sit::ir::dsl;
using runtime::Tag;

// Drop the final sink so the program output edge is observable.
ir::NodeP observable(const ir::NodeP& app) {
  if (app->kind != ir::Node::Kind::Pipeline || app->children.size() < 2) {
    return app;
  }
  std::vector<ir::NodeP> kids(app->children.begin(), app->children.end() - 1);
  return ir::make_pipeline(app->name + "_obs", kids);
}

sched::Executor make_exec(ir::NodeP root, sched::Engine engine,
                          sched::TypedMode typed) {
  sched::ExecOptions opts;
  opts.engine = engine;
  opts.typed = typed;
  return sched::Executor(std::move(root), opts);
}

int actor_id(const runtime::FlatGraph& g, const std::string& name) {
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void expect_bit_equal(const std::vector<double>& a,
                      const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " item " << i;
  }
}

// Run the same program typed-on and typed-off under `engine` and require the
// entire observable surface to be bit-identical.
void expect_typed_off_parity(const ir::NodeP& app, sched::Engine engine,
                             const std::string& what, int steady = 4) {
  auto on = make_exec(ir::clone(app), engine, sched::TypedMode::On);
  auto off = make_exec(ir::clone(app), engine, sched::TypedMode::Off);
  EXPECT_TRUE(on.typed_enabled()) << what;
  EXPECT_FALSE(off.typed_enabled()) << what;
  expect_bit_equal(on.run_steady(steady), off.run_steady(steady), what);
  EXPECT_EQ(on.firings(), off.firings()) << what;
  EXPECT_EQ(on.total_ops().int_ops, off.total_ops().int_ops) << what;
  EXPECT_EQ(on.total_ops().flops, off.total_ops().flops) << what;
  EXPECT_EQ(on.total_ops().divs, off.total_ops().divs) << what;
  EXPECT_EQ(on.total_ops().trans, off.total_ops().trans) << what;
  EXPECT_EQ(on.total_ops().mem, off.total_ops().mem) << what;
  EXPECT_EQ(on.total_ops().channel, off.total_ops().channel) << what;
}

// ---- the canonical tag of every opcode result -------------------------------
//
// The lattice (runtime/typed.h) assigns a comparison/logic result the Int
// tag statically; these pins hold the runtime kernels to that contract for
// every opcode and both operand planes, so inference can never disagree with
// execution.

TEST(ValueTags, BoolConstructionIsCanonicalInt) {
  const ir::Value t(true);
  const ir::Value f(false);
  EXPECT_TRUE(t.is_int());
  EXPECT_TRUE(f.is_int());
  EXPECT_EQ(t.as_int(), 1);
  EXPECT_EQ(f.as_int(), 0);
}

TEST(ValueTags, EveryComparisonOpcodeProducesInt) {
  using ir::BinOp;
  const ir::Value id(3), jd(4);
  const ir::Value xd(3.5), yd(4.5);
  for (BinOp op : {BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq,
                   BinOp::Ne}) {
    const ir::Value ri = runtime::apply_bin(op, id, jd);
    const ir::Value rd = runtime::apply_bin(op, xd, yd);
    const ir::Value rm = runtime::apply_bin(op, id, yd);  // mixed operands
    EXPECT_TRUE(ri.is_int()) << static_cast<int>(op);
    EXPECT_TRUE(rd.is_int()) << static_cast<int>(op);
    EXPECT_TRUE(rm.is_int()) << static_cast<int>(op);
    EXPECT_TRUE(ri.as_int() == 0 || ri.as_int() == 1);
    EXPECT_TRUE(rd.as_int() == 0 || rd.as_int() == 1);
  }
}

TEST(ValueTags, EveryLogicOpcodeProducesInt) {
  using ir::BinOp;
  using ir::UnOp;
  const ir::Value xd(2.5), zd(0.0);
  for (BinOp op : {BinOp::LAnd, BinOp::LOr}) {
    const ir::Value r = runtime::apply_bin(op, xd, zd);
    EXPECT_TRUE(r.is_int()) << static_cast<int>(op);
    EXPECT_TRUE(r.as_int() == 0 || r.as_int() == 1);
  }
  const ir::Value n = runtime::apply_un(UnOp::LNot, xd);
  EXPECT_TRUE(n.is_int());
  EXPECT_EQ(n.as_int(), 0);
  EXPECT_EQ(runtime::apply_un(UnOp::LNot, zd).as_int(), 1);
}

TEST(ValueTags, BitwiseOpcodesProduceIntEvenFromDoubles) {
  using ir::BinOp;
  using ir::UnOp;
  const ir::Value xd(6.9), yd(3.2);  // truncating as_int, like Value does
  for (BinOp op :
       {BinOp::BAnd, BinOp::BOr, BinOp::BXor, BinOp::Shl, BinOp::Shr}) {
    EXPECT_TRUE(runtime::apply_bin(op, xd, yd).is_int())
        << static_cast<int>(op);
  }
  EXPECT_TRUE(runtime::apply_un(UnOp::BNot, xd).is_int());
  EXPECT_TRUE(runtime::apply_un(UnOp::ToInt, xd).is_int());
  EXPECT_FALSE(runtime::apply_un(UnOp::ToFloat, ir::Value(3)).is_int());
}

TEST(ValueTags, TypedKernelsAgreeWithTaggedKernelsOnEveryBoolOpcode) {
  using ir::BinOp;
  using ir::UnOp;
  double dr[3] = {3.5, 4.5, 0.0};
  std::int64_t ir_[3] = {0, 0, 0};
  for (BinOp op : {BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq,
                   BinOp::Ne, BinOp::LAnd, BinOp::LOr}) {
    runtime::typed_bin(op, dr, ir_, 2, 0, 1,
                       runtime::kModeAD | runtime::kModeBD);
    const ir::Value want =
        runtime::apply_bin(op, ir::Value(dr[0]), ir::Value(dr[1]));
    ASSERT_TRUE(want.is_int());
    EXPECT_EQ(ir_[2], want.as_int()) << static_cast<int>(op);
  }
  runtime::typed_un(UnOp::LNot, dr, ir_, 2, 0, runtime::kModeAD);
  EXPECT_EQ(ir_[2], 0);
}

TEST(ValueTags, JoinLattice) {
  EXPECT_EQ(runtime::join_tag(Tag::Int, Tag::Int), Tag::Int);
  EXPECT_EQ(runtime::join_tag(Tag::Double, Tag::Double), Tag::Double);
  EXPECT_EQ(runtime::join_tag(Tag::Int, Tag::Double), Tag::Mixed);
  EXPECT_EQ(runtime::join_tag(Tag::Mixed, Tag::Int), Tag::Mixed);
  EXPECT_EQ(runtime::value_tag(ir::Value(1)), Tag::Int);
  EXPECT_EQ(runtime::value_tag(ir::Value(1.0)), Tag::Double);
  EXPECT_STREQ(runtime::tag_name(Tag::Int), "int");
  EXPECT_STREQ(runtime::tag_name(Tag::Double), "double");
  EXPECT_STREQ(runtime::tag_name(Tag::Mixed), "mixed");
}

// ---- specialization on the flagship apps ------------------------------------

TEST(TypedSpecialize, FirFiltersAllSpecialize) {
  auto ex = make_exec(apps::make_app("FIR"), sched::Engine::Vm,
                      sched::TypedMode::On);
  ASSERT_TRUE(ex.typed_enabled());
  const auto& g = ex.graph();
  int typed = 0;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].kind != runtime::FlatActor::Kind::Filter) continue;
    EXPECT_TRUE(ex.actor_uses_typed(static_cast<int>(i)))
        << g.actors[i].name << ": " << ex.typed_refusal(static_cast<int>(i));
    ++typed;
  }
  EXPECT_EQ(typed, 3);
  const int fir = actor_id(g, "fir");
  ASSERT_GE(fir, 0);
  const runtime::TypedFilter* tp = ex.typed_program(fir);
  ASSERT_NE(tp, nullptr);
  EXPECT_GT(tp->work.typed_regs, 0);
  EXPECT_EQ(tp->work.push_tag, Tag::Double);
}

TEST(TypedSpecialize, FirFusedTraceGoesTyped) {
  auto ex = make_exec(apps::make_app("FIR"), sched::Engine::Fused,
                      sched::TypedMode::On);
  ASSERT_NE(ex.fused_program(), nullptr) << ex.fused_refusal();
  EXPECT_NE(ex.typed_fused_program(), nullptr) << ex.typed_fused_refusal();
}

TEST(TypedSpecialize, TypedOffDisablesBothLayers) {
  auto ex = make_exec(apps::make_app("FIR"), sched::Engine::Fused,
                      sched::TypedMode::Off);
  EXPECT_FALSE(ex.typed_enabled());
  EXPECT_EQ(ex.typed_fused_program(), nullptr);
  EXPECT_EQ(ex.typed_fused_refusal(), "typed-off");
  const auto& g = ex.graph();
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    EXPECT_FALSE(ex.actor_uses_typed(static_cast<int>(i)));
  }
}

TEST(TypedSpecialize, WholeGraphAnalysisMatchesExecutorOnFir) {
  auto ex = make_exec(apps::make_app("FIR"), sched::Engine::Vm,
                      sched::TypedMode::On);
  const analysis::TypeflowResult tf = analysis::typeflow(ex.graph());
  EXPECT_EQ(tf.candidates, 3);
  EXPECT_EQ(tf.typed_actors, 3);
  EXPECT_GT(tf.typed_regs, 0);
  ASSERT_EQ(tf.edge_content.size(), ex.graph().edges.size());
  EXPECT_EQ(tf.typed_channels, static_cast<int>(tf.edge_content.size()));
  EXPECT_EQ(tf.int_channels, 0);
  const std::string table = tf.describe(ex.graph());
  EXPECT_NE(table.find("3/3 filter(s) specialized"), std::string::npos)
      << table;
}

// ---- refusal taxonomy -------------------------------------------------------

NodeP tiny_src(const std::string& name) {
  return filter(name)
      .rates(0, 0, 1)
      .iscalar("seed", 1)
      .work(seq({let("seed", v("seed") + ci(1)),
                 push_(to_float(v("seed")))}))
      .node();
}

// A register that is Int on one path and Double on the other: the merge join
// makes it Mixed, and the read after the merge must refuse.
NodeP mixed_register_filter(const std::string& name) {
  return filter(name)
      .rates(1, 1, 1)
      .work(seq({let("t", ci(0)),
                 let("x", pop_()),
                 if_(v("x") > c(0.5), let("t", v("x"))),
                 push_(to_float(v("t")))}))
      .node();
}

// A state scalar seeded Int whose work stores a Double into it: the state
// class joins to Mixed, and the whole filter must refuse.
NodeP mixed_state_filter(const std::string& name) {
  return filter(name)
      .rates(1, 1, 1)
      .iscalar("acc", 0)
      .work(seq({let("x", pop_()),
                 let("acc", v("acc") + v("x")),
                 push_(v("x"))}))
      .node();
}

TEST(TypedRefusal, MixedRegisterRefusesWithStableReason) {
  auto ex = make_exec(
      make_pipeline("p", {tiny_src("s"), mixed_register_filter("mixr")}),
      sched::Engine::Vm, sched::TypedMode::On);
  const int a = actor_id(ex.graph(), "mixr");
  ASSERT_GE(a, 0);
  EXPECT_FALSE(ex.actor_uses_typed(a));
  EXPECT_EQ(ex.typed_refusal(a), "mixed-register");
  // The source still specializes: refusal is per-actor, never per-graph.
  const int s = actor_id(ex.graph(), "s");
  ASSERT_GE(s, 0);
  EXPECT_TRUE(ex.actor_uses_typed(s)) << ex.typed_refusal(s);
}

TEST(TypedRefusal, MixedStateRefusesNamingTheSlot) {
  auto ex = make_exec(
      make_pipeline("p", {tiny_src("s"), mixed_state_filter("mixs")}),
      sched::Engine::Vm, sched::TypedMode::On);
  const int a = actor_id(ex.graph(), "mixs");
  ASSERT_GE(a, 0);
  EXPECT_FALSE(ex.actor_uses_typed(a));
  EXPECT_EQ(ex.typed_refusal(a), "mixed-state:acc");
}

TEST(TypedRefusal, FusedTraceRefusalQualifiesTheActor) {
  auto ex = make_exec(
      make_pipeline("p", {tiny_src("s"), mixed_register_filter("mixr")}),
      sched::Engine::Fused, sched::TypedMode::On);
  ASSERT_NE(ex.fused_program(), nullptr) << ex.fused_refusal();
  EXPECT_EQ(ex.typed_fused_program(), nullptr);
  EXPECT_EQ(ex.typed_fused_refusal(), "mixed-register:mixr");
}

TEST(TypedRefusal, FusedMixedStateQualifiesActorAndSlot) {
  auto ex = make_exec(
      make_pipeline("p", {tiny_src("s"), mixed_state_filter("mixs")}),
      sched::Engine::Fused, sched::TypedMode::On);
  ASSERT_NE(ex.fused_program(), nullptr) << ex.fused_refusal();
  EXPECT_EQ(ex.typed_fused_program(), nullptr);
  EXPECT_EQ(ex.typed_fused_refusal(), "mixed-state:mixs.acc");
}

TEST(TypedRefusal, HandlersRefuse) {
  auto h = filter("h")
               .rates(1, 1, 1)
               .scalar("g", ir::Value(1.0))
               .handler("boost", {"amt"}, seq({let("g", v("amt"))}))
               .work(seq({push_(pop_() * v("g"))}))
               .node();
  auto ex = make_exec(make_pipeline("p", {tiny_src("s"), h}),
                      sched::Engine::Vm, sched::TypedMode::On);
  const int a = actor_id(ex.graph(), "h");
  ASSERT_GE(a, 0);
  EXPECT_FALSE(ex.actor_uses_typed(a));
  EXPECT_EQ(ex.typed_refusal(a), "has-handlers");
}

TEST(TypedRefusal, RefusedFilterRunsBitEqualOnTaggedFallback) {
  const auto mk = [] {
    return make_pipeline("p", {tiny_src("s"), mixed_register_filter("mixr")});
  };
  expect_typed_off_parity(mk(), sched::Engine::Vm, "mixed-register vm");
  expect_typed_off_parity(mk(), sched::Engine::Fused, "mixed-register fused");

  const auto mks = [] {
    return make_pipeline("p", {tiny_src("s"), mixed_state_filter("mixs")});
  };
  expect_typed_off_parity(mks(), sched::Engine::Vm, "mixed-state vm");
  expect_typed_off_parity(mks(), sched::Engine::Fused, "mixed-state fused");
}

// ---- SIT_TYPED=0 vs =1 across the whole suite -------------------------------

TEST(TypedDiff, AllAppsBitEqualTypedOnVsOffUnderVmAndFused) {
  for (const auto& app : apps::all_apps()) {
    const ir::NodeP obs = observable(app.make());
    expect_typed_off_parity(obs, sched::Engine::Vm, app.name + " vm");
    expect_typed_off_parity(obs, sched::Engine::Fused, app.name + " fused");
  }
}

TEST(TypedDiff, ThreadedRuntimeBitEqualTypedOnVsOff) {
  for (const char* name : {"FIR", "FilterBank", "Vocoder"}) {
    sched::ExecOptions on;
    on.threads = 4;
    on.typed = sched::TypedMode::On;
    sched::ThreadedExecutor ton(observable(apps::make_app(name)), on);

    sched::ExecOptions off;
    off.threads = 4;
    off.typed = sched::TypedMode::Off;
    sched::ThreadedExecutor toff(observable(apps::make_app(name)), off);

    expect_bit_equal(ton.run_steady(6), toff.run_steady(6),
                     std::string(name) + " 4-thread");
    EXPECT_EQ(ton.firings(), toff.firings()) << name;
  }
}

// ---- env knob ---------------------------------------------------------------

TEST(TypedEnv, OnlyZeroAndOffDisable) {
  const char* old = std::getenv("SIT_TYPED");
  const std::string saved = old != nullptr ? old : "";
  setenv("SIT_TYPED", "0", 1);
  EXPECT_FALSE(sched::resolve_typed(sched::TypedMode::Auto));
  setenv("SIT_TYPED", "off", 1);
  EXPECT_FALSE(sched::resolve_typed(sched::TypedMode::Auto));
  setenv("SIT_TYPED", "1", 1);
  EXPECT_TRUE(sched::resolve_typed(sched::TypedMode::Auto));
  setenv("SIT_TYPED", "auto", 1);
  EXPECT_TRUE(sched::resolve_typed(sched::TypedMode::Auto));
  unsetenv("SIT_TYPED");
  EXPECT_TRUE(sched::resolve_typed(sched::TypedMode::Auto));
  EXPECT_FALSE(sched::resolve_typed(sched::TypedMode::Off));
  EXPECT_TRUE(sched::resolve_typed(sched::TypedMode::On));
  if (old != nullptr) setenv("SIT_TYPED", saved.c_str(), 1);
}

// ---- metrics ----------------------------------------------------------------

TEST(TypedMetrics, SnapshotCarriesSpecializationCountersAndEdgeContent) {
  auto ex = make_exec(apps::make_app("FIR"), sched::Engine::Fused,
                      sched::TypedMode::On);
  ex.run_steady(2);
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  EXPECT_EQ(m.typed_actors, 3);
  EXPECT_GT(m.typed_regs, 0);
  EXPECT_EQ(m.typed_channels, static_cast<int>(m.edges.size()));
  for (const auto& a : m.actors) {
    EXPECT_EQ(a.typed_status, "typed") << a.name;
  }
  for (const auto& e : m.edges) {
    EXPECT_EQ(e.content, "double") << e.name;
  }
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"typed_actors\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"typed\": \"typed\""), std::string::npos);
  EXPECT_NE(json.find("\"content\": \"double\""), std::string::npos);
}

TEST(TypedMetrics, OffSnapshotOmitsTypedBlock) {
  auto ex = make_exec(apps::make_app("FIR"), sched::Engine::Vm,
                      sched::TypedMode::Off);
  ex.run_steady(2);
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  EXPECT_EQ(m.typed_actors, -1);
  EXPECT_EQ(m.to_json().find("typed_actors"), std::string::npos);
  for (const auto& a : m.actors) EXPECT_TRUE(a.typed_status.empty());
  for (const auto& e : m.edges) EXPECT_TRUE(e.content.empty());
}

TEST(TypedMetrics, RefusalSurfacesInActorStatus) {
  auto ex = make_exec(
      make_pipeline("p", {tiny_src("s"), mixed_state_filter("mixs")}),
      sched::Engine::Vm, sched::TypedMode::On);
  ex.run_steady(2);
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  bool saw = false;
  for (const auto& a : m.actors) {
    if (a.name == "mixs") {
      saw = true;
      EXPECT_EQ(a.typed_status, "mixed-state:acc");
      EXPECT_EQ(a.typed_regs, 0);
    }
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace sit
