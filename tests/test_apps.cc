// Benchmark-suite sanity: every application validates, schedules, executes
// deterministically, and has the structural characteristics the paper's
// benchmark table describes (statefulness, peeking, linearity).

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "ir/validate.h"
#include "linear/extract.h"
#include "linear/optimize.h"
#include "parallel/transforms.h"
#include "sched/exec.h"

namespace sit::apps {
namespace {

class AppP : public ::testing::TestWithParam<const char*> {};

TEST_P(AppP, ValidatesAndExecutes) {
  const ir::NodeP app = make_app(GetParam());
  EXPECT_TRUE(ir::check(app).empty());
  sched::Executor ex(app);
  const auto& s = ex.schedule();
  // Closed programs: no external input required, no external output produced.
  EXPECT_EQ(s.input_per_steady, 0);
  EXPECT_EQ(s.output_per_steady, 0);
  EXPECT_NO_THROW(ex.run_steady(2));
  EXPECT_GT(ex.total_ops().weighted(), 0.0);
}

TEST_P(AppP, ExecutionIsDeterministic) {
  const std::string name = GetParam();
  sched::Executor a(make_app(name));
  sched::Executor b(make_app(name));
  a.run_steady(2);
  b.run_steady(2);
  EXPECT_DOUBLE_EQ(a.total_ops().weighted(), b.total_ops().weighted());
  EXPECT_EQ(a.total_ops().flops, b.total_ops().flops);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AppP,
    ::testing::Values("BitonicSort", "ChannelVocoder", "DCT", "DES", "FFT",
                      "FilterBank", "FMRadio", "Serpent", "TDE", "MPEG2Decoder",
                      "Vocoder", "Radar", "FIR", "RateConvert", "TargetDetect",
                      "Oversampler", "DtoA"));

TEST(AppRegistry, TwelveParallelBenchmarks) {
  int parallel = 0, linear = 0;
  for (const auto& a : all_apps()) {
    if (a.parallel_suite) ++parallel;
    if (a.linear_suite) ++linear;
  }
  EXPECT_EQ(parallel, 12);
  EXPECT_GE(linear, 8);
  EXPECT_THROW(make_app("nope"), std::out_of_range);
}

TEST(AppCharacter, StatefulnessMatchesPaperTable) {
  // The paper's table: Vocoder, Radar and MPEG2Decoder carry stateful work;
  // the stateless six (BitonicSort, DCT, DES, FFT, Serpent, TDE...) do not
  // (beyond their I/O endpoints).
  auto stateful_interior = [](const char* name) {
    const ir::NodeP app = make_app(name);
    bool any = false;
    ir::visit(app, [&](const ir::NodeP& n) {
      if (!n->is_leaf()) return;
      if (n->name == "src" || n->name.rfind("snk", 0) == 0) return;
      if (parallel::leaf_stateful(*n)) any = true;
    });
    return any;
  };
  EXPECT_TRUE(stateful_interior("Vocoder"));
  EXPECT_TRUE(stateful_interior("Radar"));
  EXPECT_TRUE(stateful_interior("MPEG2Decoder"));
  EXPECT_FALSE(stateful_interior("DCT"));
  EXPECT_FALSE(stateful_interior("DES"));
  EXPECT_FALSE(stateful_interior("FFT"));
  EXPECT_FALSE(stateful_interior("Serpent"));
  EXPECT_FALSE(stateful_interior("BitonicSort"));
  EXPECT_FALSE(stateful_interior("TDE"));
}

TEST(AppCharacter, PeekingAppsPeek) {
  EXPECT_TRUE(parallel::subtree_peeks(make_app("FilterBank")));
  EXPECT_TRUE(parallel::subtree_peeks(make_app("ChannelVocoder")));
  EXPECT_TRUE(parallel::subtree_peeks(make_app("FMRadio")));
  EXPECT_FALSE(parallel::subtree_peeks(make_app("DES")));
  EXPECT_FALSE(parallel::subtree_peeks(make_app("Serpent")));
}

TEST(AppCharacter, LinearSuiteHasLinearInterior) {
  // Count leaf filters the extractor proves linear; the linear-suite apps
  // must be dominated by them.
  for (const char* name : {"FIR", "FilterBank", "DCT", "FFT", "RateConvert",
                           "Oversampler"}) {
    const ir::NodeP app = make_app(name);
    int linear_n = 0, interior = 0;
    ir::visit(app, [&](const ir::NodeP& n) {
      if (n->kind != ir::Node::Kind::Filter) return;
      if (n->filter.is_source() || n->filter.is_sink()) return;
      ++interior;
      if (linear::extract(n->filter).rep) ++linear_n;
    });
    EXPECT_GT(interior, 0) << name;
    EXPECT_GE(linear_n * 10, interior * 9)
        << name << ": " << linear_n << "/" << interior << " linear";
  }
}

TEST(AppCharacter, FirAppIsFullyLinearBetweenEndpoints) {
  const ir::NodeP app = make_app("FIR");
  // Strip source and sink; the middle must extract as one linear rep.
  ASSERT_EQ(app->children.size(), 3u);
  const auto rep = linear::extract_tree(app->children[1]);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->peek, 128);
  EXPECT_EQ(rep->pop, 1);
  EXPECT_EQ(rep->push, 1);
}

TEST(AppCharacter, DctCollapsesToSingleLinearNode) {
  const ir::NodeP app = make_app("DCT");
  // rowDCT ; transpose ; colDCT ; scale -- all linear, pop 256 push 256.
  std::vector<ir::NodeP> middle(app->children.begin() + 1,
                                app->children.end() - 1);
  const auto rep = linear::extract_tree(ir::make_pipeline("m", middle));
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->pop, 256);
  EXPECT_EQ(rep->push, 256);
}

}  // namespace
}  // namespace sit::apps
