// Tests for the parallelization machinery: fusion, fission, coarsening,
// selective fusion, the machine model, and the end-to-end strategies.
// Every transformation is checked for *semantic preservation* (identical
// output stream) in addition to its structural effect.

#include <gtest/gtest.h>

#include <random>

#include "ir/dsl.h"
#include "machine/machine.h"
#include "parallel/strategies.h"
#include "parallel/transforms.h"
#include "sched/exec.h"

namespace sit::parallel {
namespace {

using namespace sit::ir::dsl;
using namespace sit::ir;

std::vector<double> run_graph(const NodeP& root, int items_out) {
  sched::Executor ex(ir::clone(root));
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  std::vector<double> input;
  ex.set_input_generator([&input, &rng, &d](std::int64_t i) {
    while (static_cast<std::int64_t>(input.size()) <= i) input.push_back(d(rng));
    return input[static_cast<std::size_t>(i)];
  });
  std::vector<double> out;
  int guard = 0;
  while (static_cast<int>(out.size()) < items_out && ++guard < 20000) {
    const auto got = ex.run_steady(1);
    out.insert(out.end(), got.begin(), got.end());
  }
  out.resize(static_cast<std::size_t>(items_out));
  return out;
}

void expect_same_stream(const NodeP& a, const NodeP& b, int items,
                        double tol = 1e-9) {
  const auto xa = run_graph(a, items);
  const auto xb = run_graph(b, items);
  for (std::size_t i = 0; i < xa.size(); ++i) {
    ASSERT_NEAR(xa[i], xb[i], tol) << "diverges at " << i;
  }
}

NodeP scaler(const std::string& name, double f) {
  return filter(name).rates(1, 1, 1).work(seq({push_(pop_() * c(f))})).node();
}

NodeP avg3(const std::string& name) {
  return filter(name)
      .rates(3, 1, 1)
      .work(seq({push_((peek_(0) + peek_(1) + peek_(2)) / c(3.0)), discard(1)}))
      .node();
}

NodeP accumulator(const std::string& name) {
  return filter(name)
      .rates(1, 1, 1)
      .scalar("s", ir::Value(0.0))
      .work(seq({let("s", v("s") + pop_()), push_(v("s"))}))
      .node();
}

NodeP up2(const std::string& name) {
  return filter(name).rates(1, 1, 2).work(seq({let("x", pop_()), push_(v("x")), push_(v("x") * c(0.5))})).node();
}

NodeP down2(const std::string& name) {
  return filter(name).rates(2, 2, 1).work(seq({push_(pop_() + pop_())})).node();
}

// ---- statefulness classification ----------------------------------------------

TEST(Classify, StatefulAndPeekingDetection) {
  EXPECT_FALSE(leaf_stateful(*scaler("s", 2.0)));
  EXPECT_TRUE(leaf_stateful(*accumulator("a")));
  EXPECT_FALSE(subtree_peeks(scaler("s", 2.0)));
  EXPECT_TRUE(subtree_peeks(avg3("m")));
  auto pipe = make_pipeline("p", {scaler("x", 1.0), accumulator("acc")});
  EXPECT_TRUE(subtree_stateful(pipe));
}

// ---- fusion -------------------------------------------------------------------

TEST(Fuse, PipelineOfStatelessFilters) {
  auto orig = make_pipeline("p", {scaler("a", 2.0), up2("b"), down2("c")});
  auto fused = fuse_subtree(orig, "fusedP");
  ASSERT_EQ(fused->kind, Node::Kind::Native);
  EXPECT_FALSE(fused->native.stateful);
  EXPECT_EQ(fused->native.pop, 1);
  EXPECT_EQ(fused->native.push, 1);
  expect_same_stream(orig, fused, 30);
}

TEST(Fuse, PeekingPipelineBecomesStatefulButCorrect) {
  auto orig = make_pipeline("p", {scaler("a", 2.0), avg3("m"), scaler("b", 0.5)});
  auto fused = fuse_subtree(orig, "fusedPeek");
  EXPECT_TRUE(fused->native.stateful);
  EXPECT_GT(fused->native.peek, fused->native.pop);
  expect_same_stream(orig, fused, 25);
}

TEST(Fuse, StatefulPipelinePreservesRunningState) {
  auto orig = make_pipeline("p", {scaler("a", 1.0), accumulator("acc")});
  auto fused = fuse_subtree(orig, "fusedAcc");
  EXPECT_TRUE(fused->native.stateful);
  expect_same_stream(orig, fused, 40);
}

TEST(Fuse, SplitJoinFusesToOneActor) {
  auto sj = make_splitjoin("sj", duplicate_split(), roundrobin_join({1, 1}),
                           {scaler("l", 3.0), scaler("r", -1.0)});
  auto fused = fuse_subtree(sj, "fusedSJ");
  EXPECT_EQ(fused->native.pop, 1);
  EXPECT_EQ(fused->native.push, 2);
  expect_same_stream(sj, fused, 30);
}

TEST(Fuse, RateChangingPipeline) {
  auto orig = make_pipeline("p", {up2("u"), scaler("m", 2.0), down2("d")});
  auto fused = fuse_subtree(orig, "fusedRate");
  expect_same_stream(orig, fused, 30);
}

// ---- fission ------------------------------------------------------------------

TEST(Fiss, NonPeekingRoundRobinFission) {
  auto leaf = scaler("w", 1.5);
  auto fissed = fiss(leaf, 4);
  ASSERT_EQ(fissed->kind, Node::Kind::SplitJoin);
  EXPECT_EQ(fissed->children.size(), 4u);
  expect_same_stream(leaf, fissed, 40);
}

TEST(Fiss, RateChangingFission) {
  auto leaf = down2("d");
  auto fissed = fiss(leaf, 3);
  expect_same_stream(leaf, fissed, 30);
}

TEST(Fiss, PeekingFissionUsesDuplication) {
  auto leaf = avg3("m");
  auto fissed = fiss(leaf, 4);
  ASSERT_EQ(fissed->kind, Node::Kind::SplitJoin);
  EXPECT_EQ(fissed->split.kind, SJKind::Duplicate);
  expect_same_stream(leaf, fissed, 48);
}

TEST(Fiss, StatefulRejected) {
  EXPECT_THROW(fiss(accumulator("a"), 2), std::invalid_argument);
}

TEST(Fiss, FusedStatelessSubtreeCanBeFissed) {
  // The paper's coarsen-then-fiss: fuse a stateless pipeline, then fiss the
  // fused filter.
  auto orig = make_pipeline("p", {scaler("a", 2.0), scaler("b", 0.25)});
  auto fused = fuse_subtree(orig, "coarse");
  ASSERT_FALSE(fused->native.stateful);
  auto fissed = fiss(fused, 4);
  expect_same_stream(orig, fissed, 40);
}

// ---- coarsening / selective fusion -----------------------------------------------

TEST(Coarsen, FusesStatelessRunsOnly) {
  auto g = make_pipeline("p", {scaler("a", 2.0), scaler("b", 3.0),
                               accumulator("acc"), scaler("c", 0.5),
                               scaler("d", 4.0)});
  auto cg = coarsen_stateless(g);
  // a+b fuse, acc survives, c+d fuse -> 3 leaves.
  EXPECT_EQ(count_filters(cg), 3);
  expect_same_stream(g, cg, 40);
}

TEST(Coarsen, PeekingFilterBlocksRun) {
  auto g = make_pipeline("p", {scaler("a", 2.0), avg3("m"), scaler("b", 0.5)});
  auto cg = coarsen_stateless(g);
  // The peeking filter cannot join a stateless fused region.
  EXPECT_EQ(count_filters(cg), 3);
  expect_same_stream(g, cg, 25);
}

TEST(Coarsen, StatelessSplitJoinCollapses) {
  auto g = make_pipeline(
      "p", {scaler("pre", 1.0),
            make_splitjoin("sj", duplicate_split(), roundrobin_join({1, 1}),
                           {scaler("l", 2.0), scaler("r", 3.0)}),
            down2("post")});
  auto cg = coarsen_stateless(g);
  EXPECT_EQ(count_filters(cg), 1);  // whole thing is stateless: one actor
  expect_same_stream(g, cg, 30);
}

TEST(SelectiveFusion, ReachesTargetAndPreservesStream) {
  std::vector<NodeP> stages;
  for (int i = 0; i < 8; ++i) {
    stages.push_back(scaler("s" + std::to_string(i), 1.0 + 0.1 * i));
  }
  stages.push_back(accumulator("acc"));
  auto g = make_pipeline("p", stages);
  auto sf = selective_fusion(g, 3);
  EXPECT_LE(count_filters(sf), 3);
  expect_same_stream(g, sf, 40);
}

TEST(DataParallelize, PreservesSemantics) {
  auto g = make_pipeline("p", {scaler("a", 2.0), scaler("b", 3.0),
                               accumulator("acc"), scaler("c", 0.5)});
  auto dp = data_parallelize(g, 4);
  expect_same_stream(g, dp, 60);
}

TEST(FineGrained, PreservesSemantics) {
  auto g = make_pipeline("p", {scaler("a", 2.0), down2("d")});
  auto fg = fine_grained_parallelize(g, 4);
  EXPECT_GT(count_filters(fg), count_filters(g));
  expect_same_stream(g, fg, 40);
}

// ---- machine model ---------------------------------------------------------------

TEST(Machine, RouteIsXYAndHopCountsMatch) {
  machine::MachineConfig cfg;
  EXPECT_EQ(cfg.cores(), 16);
  EXPECT_EQ(cfg.hops(0, 15), 6);  // (0,0) -> (3,3)
  EXPECT_EQ(cfg.route(0, 15).size(), 6u);
  EXPECT_TRUE(cfg.route(5, 5).empty());
}

TEST(Machine, PipelinedModeIsBottleneckBound) {
  machine::MachineConfig cfg;
  std::vector<machine::PlacedActor> actors = {
      {"a", 0, 1000.0, 500.0}, {"b", 1, 400.0, 100.0}, {"c", 2, 200.0, 0.0}};
  std::vector<machine::PlacedEdge> edges = {{0, 1, 10.0, false},
                                            {1, 2, 10.0, false}};
  const auto r = machine::simulate(cfg, actors, edges, machine::ExecMode::Pipelined);
  // Core 0 = 1000 compute + 10 send.
  EXPECT_DOUBLE_EQ(r.cycles_per_steady, 1010.0);
  EXPECT_EQ(r.bottleneck_core, 0);
  EXPECT_GT(r.mflops, 0.0);
}

TEST(Machine, DataFlowModeSerializesDependences) {
  machine::MachineConfig cfg;
  cfg.hop_latency = 0.0;
  cfg.send_cost = cfg.recv_cost = 0.0;
  std::vector<machine::PlacedActor> actors = {
      {"a", 0, 100.0, 0.0}, {"b", 1, 100.0, 0.0}};
  std::vector<machine::PlacedEdge> edges = {{0, 1, 1.0, false}};
  const auto pipe = machine::simulate(cfg, actors, edges, machine::ExecMode::Pipelined);
  const auto df = machine::simulate(cfg, actors, edges, machine::ExecMode::DataFlow);
  EXPECT_DOUBLE_EQ(pipe.cycles_per_steady, 100.0);  // overlapped
  EXPECT_DOUBLE_EQ(df.cycles_per_steady, 200.0);    // serialized chain
}

TEST(Machine, ParallelBranchesOverlapInDataFlow) {
  machine::MachineConfig cfg;
  cfg.hop_latency = 0.0;
  cfg.send_cost = cfg.recv_cost = 0.0;
  // Diamond: src -> {x, y} -> sink, x and y on different cores.
  std::vector<machine::PlacedActor> actors = {{"src", 0, 10.0, 0.0},
                                              {"x", 1, 100.0, 0.0},
                                              {"y", 2, 100.0, 0.0},
                                              {"snk", 3, 10.0, 0.0}};
  std::vector<machine::PlacedEdge> edges = {
      {0, 1, 1, false}, {0, 2, 1, false}, {1, 3, 1, false}, {2, 3, 1, false}};
  const auto r = machine::simulate(cfg, actors, edges, machine::ExecMode::DataFlow);
  EXPECT_DOUBLE_EQ(r.cycles_per_steady, 120.0);
}

TEST(Machine, LinkContentionBoundsPipelinedThroughput) {
  machine::MachineConfig cfg;
  cfg.link_bw = 0.5;  // 2 cycles per item per link
  std::vector<machine::PlacedActor> actors = {{"a", 0, 10.0, 0.0},
                                              {"b", 3, 10.0, 0.0}};
  std::vector<machine::PlacedEdge> edges = {{0, 1, 1000.0, false}};
  const auto r = machine::simulate(cfg, actors, edges, machine::ExecMode::Pipelined);
  EXPECT_GE(r.cycles_per_steady, 2000.0);
}

// ---- strategies -------------------------------------------------------------------

NodeP heavy(const std::string& name, int ops) {
  // A stateless filter doing `ops` multiply-adds per item.
  std::vector<ir::StmtP> body{let("s", peek_(0))};
  for (int i = 0; i < ops; ++i) {
    body.push_back(let("s", v("s") * c(1.0001) + c(0.5)));
  }
  body.push_back(push_(v("s")));
  body.push_back(discard(1));
  return filter(name).rates(1, 1, 1).work(seq(body)).node();
}

NodeP heavy_stateful(const std::string& name, int ops) {
  std::vector<ir::StmtP> body{let("s", v("st") + peek_(0))};
  for (int i = 0; i < ops; ++i) {
    body.push_back(let("s", v("s") * c(0.999) + c(0.5)));
  }
  body.push_back(let("st", v("s") * c(0.001)));
  body.push_back(push_(v("s")));
  body.push_back(discard(1));
  return filter(name).rates(1, 1, 1).scalar("st", ir::Value(0.0)).work(seq(body)).node();
}

TEST(Strategies, DataParallelismScalesStatelessPipeline) {
  auto app = make_pipeline("app", {heavy("h1", 50), heavy("h2", 50)});
  machine::MachineConfig cfg;
  const auto task = run_strategy(app, Strategy::TaskParallel, cfg);
  const auto data = run_strategy(app, Strategy::TaskData, cfg);
  // Task parallelism cannot split a linear pipeline; data parallelism can.
  EXPECT_LT(task.speedup_vs_single, 2.0);
  EXPECT_GT(data.speedup_vs_single, 6.0);
}

TEST(Strategies, SoftwarePipeliningBeatsTaskOnPipelines) {
  auto app = make_pipeline(
      "app", {heavy_stateful("s1", 40), heavy_stateful("s2", 40),
              heavy_stateful("s3", 40), heavy_stateful("s4", 40)});
  machine::MachineConfig cfg;
  const auto task = run_strategy(app, Strategy::TaskParallel, cfg);
  const auto swp = run_strategy(app, Strategy::TaskSwp, cfg);
  // A stateful pipeline has no task or data parallelism at all; software
  // pipelining still overlaps the four stages.
  EXPECT_LT(task.speedup_vs_single, 1.5);
  EXPECT_GT(swp.speedup_vs_single, 2.5);
}

TEST(Strategies, TaskParallelSeesSplitJoinWidth) {
  std::vector<NodeP> branches;
  for (int i = 0; i < 8; ++i) branches.push_back(heavy("b" + std::to_string(i), 60));
  auto app = make_splitjoin("wide", roundrobin_split(std::vector<int>(8, 1)),
                            roundrobin_join(std::vector<int>(8, 1)), branches);
  machine::MachineConfig cfg;
  const auto task = run_strategy(app, Strategy::TaskParallel, cfg);
  EXPECT_GT(task.speedup_vs_single, 4.0);
}

TEST(Strategies, SpaceMultiplexFusesToCoreCount) {
  std::vector<NodeP> stages;
  for (int i = 0; i < 24; ++i) stages.push_back(heavy("f" + std::to_string(i), 10 + i));
  auto app = make_pipeline("deep", stages);
  machine::MachineConfig cfg;
  const auto space = run_strategy(app, Strategy::SpaceMultiplex, cfg);
  EXPECT_LE(count_filters(space.transformed), cfg.cores());
  EXPECT_GT(space.speedup_vs_single, 2.0);
}

TEST(Strategies, CombinedBeatsOrMatchesDataAlone) {
  auto app = make_pipeline("app", {heavy("h1", 30), heavy_stateful("s", 30),
                                   heavy("h2", 30)});
  machine::MachineConfig cfg;
  const auto data = run_strategy(app, Strategy::TaskData, cfg);
  const auto comb = run_strategy(app, Strategy::TaskDataSwp, cfg);
  EXPECT_GE(comb.speedup_vs_single, data.speedup_vs_single * 0.95);
}

TEST(Strategies, TransformedGraphsStillComputeTheSameStream) {
  auto app = make_pipeline("app", {heavy("h1", 8), heavy_stateful("s", 8),
                                   heavy("h2", 8)});
  machine::MachineConfig cfg;
  for (Strategy s : {Strategy::TaskData, Strategy::TaskSwp, Strategy::TaskDataSwp,
                     Strategy::SpaceMultiplex, Strategy::FineGrainedData}) {
    const auto r = run_strategy(app, s, cfg);
    expect_same_stream(app, r.transformed, 30);
  }
}

}  // namespace
}  // namespace sit::parallel
