// Pass-manager unit tests: registry and spec parsing, preset pipelines,
// environment resolution (SIT_OPT / SIT_PASSES and the consolidated
// sit::resolve_exec_options), compile() artifacts, pass hooks, and the
// structured per-candidate rewrite records.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "opt/compile.h"
#include "sched/envopts.h"
#include "sched/exec.h"
#include "sched/texec.h"

namespace sit::opt {
namespace {

// Scoped environment override (restores the previous value on destruction).
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVar() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

ir::NodeP observable(const ir::NodeP& app) {
  if (app->kind != ir::Node::Kind::Pipeline || app->children.size() < 2) {
    return app;
  }
  std::vector<ir::NodeP> kids(app->children.begin(), app->children.end() - 1);
  return ir::make_pipeline(app->name + "_obs", kids);
}

// ---- registry ---------------------------------------------------------------

TEST(PassRegistry, AllBuiltinsRegistered) {
  const PassManager& pm = PassManager::global();
  for (const char* name :
       {"validate", "analysis-gate", "verify", "const-fold", "linear-extract",
        "linear-combine", "frequency", "selective-fuse", "fission",
        "threaded-prep", "coarsen", "fuse-steady", "typeflow"}) {
    Pass* p = pm.find(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_STREQ(p->name(), name);
    EXPECT_NE(std::string(p->description()), "");
  }
  EXPECT_EQ(pm.find("nonsense"), nullptr);
  EXPECT_EQ(pm.pass_names().size(), 13u);
}

TEST(PassRegistry, LaterRegistrationShadows) {
  class Nop final : public Pass {
   public:
    const char* name() const override { return "validate"; }
    const char* description() const override { return "shadow"; }
    PassResult run(const ir::NodeP& root, PassContext&) override {
      return {root, false};
    }
  };
  PassManager pm;
  Pass* builtin = pm.find("validate");
  pm.register_pass(std::make_unique<Nop>());
  Pass* shadowed = pm.find("validate");
  EXPECT_NE(shadowed, builtin);
  EXPECT_STREQ(shadowed->description(), "shadow");
}

// ---- spec parsing -----------------------------------------------------------

TEST(PassSpec, ParsesAndTrims) {
  const auto names = parse_spec(" validate , const-fold ,, frequency ");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "validate");
  EXPECT_EQ(names[1], "const-fold");
  EXPECT_EQ(names[2], "frequency");
  EXPECT_TRUE(parse_spec("").empty());
}

TEST(PassSpec, RejectsUnknownNames) {
  EXPECT_THROW(parse_spec("validate,no-such-pass"), std::invalid_argument);
  try {
    parse_spec("no-such-pass");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-pass"), std::string::npos);
  }
}

// ---- presets ----------------------------------------------------------------

TEST(Presets, LevelsNest) {
  const auto o0 = preset(OptLevel::O0);
  const auto o1 = preset(OptLevel::O1);
  const auto o2 = preset(OptLevel::O2);
  ASSERT_EQ(o0, (std::vector<std::string>{"validate", "analysis-gate"}));
  // Each level extends the previous one.
  ASSERT_GT(o1.size(), o0.size());
  ASSERT_GT(o2.size(), o1.size());
  for (std::size_t i = 0; i < o0.size(); ++i) EXPECT_EQ(o1[i], o0[i]);
  for (std::size_t i = 0; i < o1.size(); ++i) EXPECT_EQ(o2[i], o1[i]);
  EXPECT_EQ(o2.back(), "frequency");
  // Mapping passes never appear in presets (engine interchangeability).
  for (const auto& n : o2) {
    EXPECT_NE(n, "threaded-prep");
    EXPECT_NE(n, "coarsen");
    EXPECT_NE(n, "fission");
    EXPECT_NE(n, "selective-fuse");
  }
}

TEST(Presets, AutoResolvesFromEnv) {
  {
    EnvVar opt("SIT_OPT", "0");
    EXPECT_EQ(resolve_opt_level(OptLevel::Auto), OptLevel::O0);
    EXPECT_EQ(preset(OptLevel::Auto), preset(OptLevel::O0));
    // Explicit levels ignore the environment.
    EXPECT_EQ(resolve_opt_level(OptLevel::O2), OptLevel::O2);
  }
  {
    EnvVar opt("SIT_OPT", "1");
    EXPECT_EQ(resolve_opt_level(OptLevel::Auto), OptLevel::O1);
  }
  {
    EnvVar opt("SIT_OPT", nullptr);
    EXPECT_EQ(resolve_opt_level(OptLevel::Auto), OptLevel::O2);
  }
}

// ---- consolidated env resolution (satellite 1) ------------------------------

TEST(ExecEnv, Defaults) {
  EnvVar e("SIT_ENGINE", nullptr), t("SIT_THREADS", nullptr),
      tr("SIT_TRACE", nullptr), s("SIT_STALL_MS", nullptr),
      o("SIT_OPT", nullptr), p("SIT_PASSES", nullptr);
  const ExecEnv env = resolve_exec_options();
  EXPECT_EQ(env.engine, sched::Engine::Vm);
  EXPECT_EQ(env.threads, 1);
  EXPECT_FALSE(env.trace);
  EXPECT_EQ(env.stall_ms, 120000);
  EXPECT_EQ(env.opt_level, 2);
  EXPECT_TRUE(env.passes.empty());
}

TEST(ExecEnv, ReadsEveryKnob) {
  EnvVar e("SIT_ENGINE", "tree"), t("SIT_THREADS", "3"),
      s("SIT_STALL_MS", "5000"), o("SIT_OPT", "1"),
      p("SIT_PASSES", "validate,const-fold");
  const ExecEnv env = resolve_exec_options();
  EXPECT_EQ(env.engine, sched::Engine::Tree);
  EXPECT_EQ(env.threads, 3);
  EXPECT_EQ(env.stall_ms, 5000);
  EXPECT_EQ(env.opt_level, 1);
  EXPECT_EQ(env.passes, "validate,const-fold");
}

TEST(ExecEnv, ClampsAndSanitizes) {
  {
    EnvVar t("SIT_THREADS", "0"), o("SIT_OPT", "7");
    const ExecEnv env = resolve_exec_options();
    EXPECT_EQ(env.threads, 1);   // threads >= 1
    EXPECT_EQ(env.opt_level, 2); // clamped to [0, 2]
  }
  {
    EnvVar o("SIT_OPT", "-3");
    EXPECT_EQ(resolve_exec_options().opt_level, 0);
  }
}

// ---- compile() --------------------------------------------------------------

TEST(Compile, FirAtO2ReducesModeledCost) {
  CompileOptions copts;
  copts.level = OptLevel::O2;
  PassContext ctx;
  const sched::CompiledProgram prog =
      compile(apps::make_app("FIR"), copts, &ctx);
  ASSERT_TRUE(prog.valid());
  EXPECT_EQ(prog.pipeline,
            "validate,analysis-gate,const-fold,linear-combine,frequency");
  ASSERT_EQ(prog.passes.size(), 5u);
  for (const auto& p : prog.passes) {
    EXPECT_GE(p.wall_ns, 0);
    EXPECT_GT(p.actors_before, 0);
    EXPECT_GT(p.edges_before, 0);
  }
  // The linear passes must pay for themselves on the flagship linear app.
  EXPECT_LT(prog.passes.back().cost_after,
            prog.passes.front().cost_before * 0.5);
  // Stats snapshot == context stats, and the report renders all of it.
  EXPECT_EQ(ctx.stats.size(), prog.passes.size());
  const std::string report = pass_report(prog, &ctx.rewrites);
  EXPECT_NE(report.find("pipeline: "), std::string::npos);
  EXPECT_NE(report.find("frequency"), std::string::npos);
  EXPECT_NE(report.find("% reduction"), std::string::npos);
}

TEST(Compile, ExplicitSpecOverridesLevelAndEnv) {
  EnvVar p("SIT_PASSES", "validate,analysis-gate,frequency");
  {
    CompileOptions copts;  // no explicit spec: SIT_PASSES wins over level
    copts.level = OptLevel::O0;
    const auto prog = compile(apps::make_app("FIR"), copts);
    EXPECT_EQ(prog.pipeline, "validate,analysis-gate,frequency");
  }
  {
    CompileOptions copts;  // explicit spec wins over SIT_PASSES
    copts.passes = "validate,analysis-gate,linear-combine";
    const auto prog = compile(apps::make_app("FIR"), copts);
    EXPECT_EQ(prog.pipeline, "validate,analysis-gate,linear-combine");
  }
}

TEST(Compile, GatesArePrependedWhenMissing) {
  CompileOptions copts;
  copts.passes = "linear-combine";
  const auto prog = compile(apps::make_app("FIR"), copts);
  EXPECT_EQ(prog.pipeline, "validate,analysis-gate,linear-combine");

  copts.ensure_gate = false;
  const auto bare = compile(apps::make_app("FIR"), copts);
  EXPECT_EQ(bare.pipeline, "linear-combine");
}

TEST(Compile, OnPassHookFiresInOrder) {
  CompileOptions copts;
  copts.level = OptLevel::O1;
  std::vector<std::string> seen;
  copts.on_pass = [&seen](const obs::PassSnapshot& s, const ir::NodeP& g) {
    ASSERT_NE(g, nullptr);
    seen.push_back(s.name);
  };
  compile(apps::make_app("FIR"), copts);
  EXPECT_EQ(seen, preset(OptLevel::O1));
}

TEST(Compile, InvalidProgramIsRejectedByTheGate) {
  // A splitjoin whose joiner arity disagrees with the branch count fails
  // structural validation -> the validate pass throws.
  auto bad = ir::make_splitjoin(
      "bad", ir::roundrobin_split({1, 1}), ir::roundrobin_join({1}),
      {apps::make_app("FIR"), apps::make_app("FIR")});
  EXPECT_THROW(compile(bad), std::runtime_error);
}

TEST(Compile, RewriteRecordsAreStructured) {
  CompileOptions copts;
  copts.level = OptLevel::O2;
  PassContext ctx;
  compile(apps::make_app("FIR"), copts, &ctx);
  bool saw_selected = false, saw_refusal = false;
  for (const auto& r : ctx.rewrites) {
    EXPECT_FALSE(r.pass.empty());
    EXPECT_FALSE(r.site.empty());
    if (r.applied) {
      saw_selected = true;
      EXPECT_LT(r.cost_after, r.cost_before) << r.to_string();
    } else if (r.pass == "extract") {
      saw_refusal = true;
      EXPECT_NE(r.note.find("not linear"), std::string::npos);
    }
    EXPECT_FALSE(r.to_string().empty());
  }
  EXPECT_TRUE(saw_selected);
  EXPECT_TRUE(saw_refusal);  // the stateful source refuses extraction
}

// ---- artifact consumption ---------------------------------------------------

std::vector<double> run_executor(sched::Executor& ex, int items) {
  std::vector<double> out;
  int guard = 0;
  while (static_cast<int>(out.size()) < items && ++guard < 4000) {
    const auto got = ex.run_steady(1);
    out.insert(out.end(), got.begin(), got.end());
  }
  out.resize(static_cast<std::size_t>(items));
  return out;
}

TEST(Artifact, ExecutorFromProgramMatchesExecutorFromGraph) {
  const auto app = observable(apps::make_app("RateConvert"));
  CompileOptions copts;
  copts.level = OptLevel::O0;  // gates only: graph passes through untouched
  sched::Executor from_prog(compile(app, copts));
  sched::Executor from_graph(ir::clone(app));
  const auto a = run_executor(from_prog, 48);
  const auto b = run_executor(from_graph, 48);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "item " << i;  // bit-equal
  }
}

TEST(Artifact, ProgramEngineAppliesWhenOptsAreAuto) {
  CompileOptions copts;
  copts.level = OptLevel::O0;
  copts.exec.engine = sched::Engine::Tree;
  sched::Executor ex(compile(apps::make_app("FIR"), copts));
  EXPECT_EQ(ex.engine(), sched::Engine::Tree);

  // An explicit executor option still overrides the artifact default.
  sched::ExecOptions pin;
  pin.engine = sched::Engine::Vm;
  sched::Executor pinned(compile(apps::make_app("FIR"), copts), pin);
  EXPECT_EQ(pinned.engine(), sched::Engine::Vm);
}

TEST(Artifact, MetricsCarryPipelineAndPassStats) {
  CompileOptions copts;
  copts.level = OptLevel::O2;
  sched::Executor ex(compile(apps::make_app("FIR"), copts));
  ex.run_steady(1);
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  EXPECT_EQ(m.pipeline,
            "validate,analysis-gate,const-fold,linear-combine,frequency");
  ASSERT_EQ(m.passes.size(), 5u);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"passes\""), std::string::npos);
  EXPECT_NE(json.find("\"linear-combine\""), std::string::npos);
}

TEST(Artifact, ThreadedExecutorConsumesProgram) {
  CompileOptions copts;
  copts.passes = "validate,analysis-gate,threaded-prep";
  copts.exec.threads = 4;
  sched::ExecOptions opts;
  opts.threads = 4;
  sched::ThreadedExecutor tex(compile(apps::make_app("FMRadio"), copts), opts);
  EXPECT_NO_THROW(tex.run_steady(2));
  const obs::MetricsSnapshot m = tex.metrics_snapshot();
  EXPECT_EQ(m.pipeline, "validate,analysis-gate,threaded-prep");
  EXPECT_EQ(m.passes.size(), 3u);
}

}  // namespace
}  // namespace sit::opt
