// Algebraic properties of the linear-combination rules.  These go beyond
// the direct equivalence tests in test_linear.cc: combination must behave
// like composition of stream functions, so it must be associative, respect
// identities, and commute with expansion.

#include <gtest/gtest.h>

#include <random>

#include "ir/dsl.h"
#include "linear/combine.h"
#include "linear/extract.h"
#include "linear/linear_rep.h"
#include "sched/exec.h"

namespace sit::linear {
namespace {

using namespace sit::ir;

LinearRep random_rep(std::mt19937& rng, int max_rate = 3, int max_extra = 2) {
  std::uniform_int_distribution<int> rate(1, max_rate);
  std::uniform_int_distribution<int> extra(0, max_extra);
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);
  LinearRep r;
  r.pop = rate(rng);
  r.peek = r.pop + extra(rng);
  r.push = rate(rng);
  r.A = Matrix(static_cast<std::size_t>(r.push), static_cast<std::size_t>(r.peek));
  r.b.assign(static_cast<std::size_t>(r.push), 0.0);
  for (int o = 0; o < r.push; ++o) {
    for (int i = 0; i < r.peek; ++i) {
      r.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) = coeff(rng);
    }
  }
  return r;
}

LinearRep identity_rep() {
  LinearRep r;
  r.pop = r.peek = r.push = 1;
  r.A = Matrix(1, 1);
  r.A.at(0, 0) = 1.0;
  r.b = {0.0};
  return r;
}

std::vector<double> run_rep(const LinearRep& r, int items) {
  sched::Executor ex(make_filter(to_filter(r, "f")));
  std::mt19937 rng(777);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> input;
  ex.set_input_generator([&](std::int64_t i) {
    while (static_cast<std::int64_t>(input.size()) <= i) input.push_back(d(rng));
    return input[static_cast<std::size_t>(i)];
  });
  std::vector<double> out;
  while (static_cast<int>(out.size()) < items) {
    const auto got = ex.run_steady(1);
    out.insert(out.end(), got.begin(), got.end());
  }
  out.resize(static_cast<std::size_t>(items));
  return out;
}

void expect_same_function(const LinearRep& a, const LinearRep& b, int items) {
  const auto xa = run_rep(a, items);
  const auto xb = run_rep(b, items);
  for (std::size_t i = 0; i < xa.size(); ++i) {
    ASSERT_NEAR(xa[i], xb[i], 1e-9) << "at " << i;
  }
}

class AssociativityP : public ::testing::TestWithParam<unsigned> {};

TEST_P(AssociativityP, PipelineCombinationIsAssociative) {
  std::mt19937 rng(GetParam());
  const LinearRep a = random_rep(rng);
  const LinearRep b = random_rep(rng);
  const LinearRep c = random_rep(rng);
  const LinearRep left = combine_pipeline(combine_pipeline(a, b), c);
  const LinearRep right = combine_pipeline(a, combine_pipeline(b, c));
  EXPECT_EQ(left.pop % right.pop == 0 || right.pop % left.pop == 0, true);
  expect_same_function(left, right, 3 * std::max(left.push, right.push) + 4);
}

INSTANTIATE_TEST_SUITE_P(Random, AssociativityP, ::testing::Range(500u, 515u));

TEST(CombineAlgebra, IdentityIsNeutral) {
  std::mt19937 rng(42);
  for (int t = 0; t < 10; ++t) {
    const LinearRep r = random_rep(rng);
    expect_same_function(combine_pipeline(identity_rep(), r), r, 3 * r.push + 2);
    expect_same_function(combine_pipeline(r, identity_rep()), r, 3 * r.push + 2);
  }
}

TEST(CombineAlgebra, ExpansionCommutesWithCombination) {
  // expand(combine(a,b), k) computes the same stream as
  // combine(expand-compatible versions): both are just k steady states.
  std::mt19937 rng(9);
  const LinearRep a = random_rep(rng);
  const LinearRep b = random_rep(rng);
  const LinearRep ab = combine_pipeline(a, b);
  expect_same_function(expand(ab, 3), ab, 3 * ab.push * 3 + 2);
}

TEST(CombineAlgebra, ScalarGainsCompose) {
  // gain(x) ; gain(y) == gain(x*y), exactly.
  auto gain_rep = [](double g) {
    LinearRep r = identity_rep();
    r.A.at(0, 0) = g;
    return r;
  };
  const LinearRep c = combine_pipeline(gain_rep(2.5), gain_rep(-4.0));
  EXPECT_EQ(c.peek, 1);
  EXPECT_EQ(c.pop, 1);
  EXPECT_EQ(c.push, 1);
  EXPECT_DOUBLE_EQ(c.A.at(0, 0), -10.0);
}

TEST(CombineAlgebra, AffineConstantsPropagate) {
  // (x -> 2x + 3) ; (y -> -y + 1)  ==  x -> -2x + (-3 + 1) = -2x - 2.
  LinearRep f = identity_rep();
  f.A.at(0, 0) = 2.0;
  f.b = {3.0};
  LinearRep g = identity_rep();
  g.A.at(0, 0) = -1.0;
  g.b = {1.0};
  const LinearRep c = combine_pipeline(f, g);
  EXPECT_DOUBLE_EQ(c.A.at(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(c.b[0], -2.0);
}

TEST(CombineAlgebra, RateProductLaw) {
  // Combined pop/push follow the lcm construction exactly.
  std::mt19937 rng(5);
  for (int t = 0; t < 20; ++t) {
    const LinearRep a = random_rep(rng);
    const LinearRep b = random_rep(rng);
    const LinearRep c = combine_pipeline(a, b);
    const std::int64_t m = std::lcm(a.push, b.pop);
    EXPECT_EQ(c.pop, (m / a.push) * a.pop);
    EXPECT_EQ(c.push, (m / b.pop) * b.push);
    EXPECT_GE(c.peek, c.pop);
  }
}

TEST(CombineAlgebra, SplitJoinOfIdentitiesIsAPermutation) {
  // RR(1,1) split over two identities joined RR(1,1) is the identity on
  // pairs; with join weights swapped it is the pairwise swap.
  const std::vector<LinearRep> ids = {identity_rep(), identity_rep()};
  ir::Splitter rr = ir::roundrobin_split({1, 1});
  const LinearRep same = combine_splitjoin(rr, ids, {1, 1});
  EXPECT_EQ(same.pop, 2);
  EXPECT_EQ(same.push, 2);
  EXPECT_DOUBLE_EQ(same.A.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(same.A.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(same.A.at(0, 1), 0.0);
}

TEST(CombineAlgebra, DuplicateSplitJoinSumsViaDownstreamAdder) {
  // dup -> {gain 2, gain 3} -> rr(1,1) join -> adder(2)  ==  x -> 5x.
  LinearRep g2 = identity_rep();
  g2.A.at(0, 0) = 2.0;
  LinearRep g3 = identity_rep();
  g3.A.at(0, 0) = 3.0;
  const LinearRep sj =
      combine_splitjoin(ir::duplicate_split(), {g2, g3}, {1, 1});
  LinearRep adder;
  adder.pop = adder.peek = 2;
  adder.push = 1;
  adder.A = Matrix(1, 2);
  adder.A.at(0, 0) = 1.0;
  adder.A.at(0, 1) = 1.0;
  adder.b = {0.0};
  const LinearRep total = combine_pipeline(sj, adder);
  EXPECT_EQ(total.pop, 1);
  EXPECT_EQ(total.push, 1);
  EXPECT_DOUBLE_EQ(total.A.at(0, 0), 5.0);
}

TEST(CombineAlgebra, NestedSplitJoins) {
  // A splitjoin whose branches are themselves combined splitjoins.
  std::mt19937 rng(31);
  std::vector<LinearRep> inner1 = {random_rep(rng, 2, 0), random_rep(rng, 2, 0)};
  inner1[1].pop = inner1[0].pop;  // duplicate split needs equal consumption
  inner1[1].peek = inner1[1].pop;
  inner1[1].A = Matrix(static_cast<std::size_t>(inner1[1].push),
                       static_cast<std::size_t>(inner1[1].peek));
  for (int o = 0; o < inner1[1].push; ++o) {
    for (int i = 0; i < inner1[1].peek; ++i) {
      inner1[1].A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) = 0.5;
    }
  }
  const LinearRep b1 = combine_splitjoin(ir::duplicate_split(), inner1,
                                         {inner1[0].push, inner1[1].push});
  const LinearRep b2 = identity_rep();
  // Outer RR splitjoin with weights matched to each branch's pop.
  const LinearRep outer = combine_splitjoin(
      ir::roundrobin_split({b1.pop, b2.pop}), {b1, b2}, {b1.push, b2.push});
  EXPECT_EQ(outer.pop, b1.pop + b2.pop);
  EXPECT_EQ(outer.push, b1.push + b2.push);
}

TEST(CombineAlgebra, TrimKeepsFunction) {
  // A rep whose newest window items are unused must shrink its peek without
  // changing the function.
  LinearRep r;
  r.pop = 1;
  r.peek = 6;
  r.push = 1;
  r.A = Matrix(1, 6);
  r.A.at(0, 0) = 1.0;
  r.A.at(0, 1) = 2.0;  // indices 2..5 unused
  r.b = {0.0};
  const LinearRep c = combine_pipeline(r, identity_rep());
  EXPECT_EQ(c.peek, 2);
  expect_same_function(c, r, 12);
}

}  // namespace
}  // namespace sit::linear
