// Tests for the work-function AST, builder DSL, graph construction, and the
// semantic checker (the appendix rules of the paper).

#include <gtest/gtest.h>

#include "ir/ast.h"
#include "ir/dsl.h"
#include "ir/graph.h"
#include "ir/validate.h"

namespace sit::ir {
namespace {

using namespace sit::ir::dsl;

TEST(Ast, FactoriesProduceExpectedKinds) {
  EXPECT_EQ(iconst(3)->kind, Expr::Kind::IntConst);
  EXPECT_EQ(fconst(2.5)->kind, Expr::Kind::FloatConst);
  EXPECT_EQ(var("x")->kind, Expr::Kind::Var);
  EXPECT_EQ(aref("a", iconst(0))->kind, Expr::Kind::ArrayRef);
  EXPECT_EQ(peek(iconst(1))->kind, Expr::Kind::Peek);
  EXPECT_EQ(pop()->kind, Expr::Kind::Pop);
  EXPECT_EQ(bin(BinOp::Add, iconst(1), iconst(2))->kind, Expr::Kind::Bin);
  EXPECT_EQ(un(UnOp::Sin, fconst(0.0))->kind, Expr::Kind::Un);
}

TEST(Ast, PrintingRoundTripsStructure) {
  const E e = (v("x") + c(1.0)) * peek_(2);
  EXPECT_EQ(to_string(e.e), "((x + 1) * peek(2))");
  const StmtP s = seq({let("y", e), push_(v("y"))});
  const std::string text = to_string(s);
  EXPECT_NE(text.find("y = ((x + 1) * peek(2));"), std::string::npos);
  EXPECT_NE(text.find("push(y);"), std::string::npos);
}

TEST(Ast, DslOperatorsBuildCorrectOps) {
  EXPECT_EQ((v("a") - v("b")).e->bop, BinOp::Sub);
  EXPECT_EQ((v("a") / v("b")).e->bop, BinOp::Div);
  EXPECT_EQ((v("a") % v("b")).e->bop, BinOp::Mod);
  EXPECT_EQ((v("a") < v("b")).e->bop, BinOp::Lt);
  EXPECT_EQ((v("a") ^ v("b")).e->bop, BinOp::BXor);
  EXPECT_EQ((v("a") << 2).e->bop, BinOp::Shl);
  EXPECT_EQ(min_(v("a"), v("b")).e->bop, BinOp::Min);
  EXPECT_EQ(sqrt_(v("a")).e->uop, UnOp::Sqrt);
}

TEST(ChannelCounts, SimplePushPop) {
  // work { push(pop() + peek(2)); pop(1); }
  const StmtP w = seq({push_(pop_() + peek_(2)), discard(1)});
  const ChannelCounts cc = count_channel_ops(w);
  EXPECT_EQ(cc.pops, 2);
  EXPECT_EQ(cc.pushes, 1);
  // peek(2) happens after one pop, so it reaches window index 1 + 2 + 1 = 4.
  EXPECT_EQ(cc.max_peek, 4);
  EXPECT_TRUE(cc.static_counts);
}

TEST(ChannelCounts, LoopsAreUnrolledWithConstantBounds) {
  // for (i = 0; i < 4; i++) push(peek(i));  pop(2);
  const StmtP w = seq({for_("i", 0, 4, push_(peek_(v("i")))), discard(2)});
  const ChannelCounts cc = count_channel_ops(w);
  EXPECT_EQ(cc.pops, 2);
  EXPECT_EQ(cc.pushes, 4);
  EXPECT_EQ(cc.max_peek, 4);
}

TEST(ChannelCounts, BranchesMustAgree) {
  // if (x > 0) push(1) -- unbalanced against the empty else.
  const StmtP bad = seq({if_(v("x") > c(0.0), push_(c(1.0)))});
  EXPECT_FALSE(count_channel_ops(bad).static_counts);

  const StmtP good =
      seq({if_(v("x") > c(0.0), push_(c(1.0)), push_(c(2.0))), discard(1)});
  const ChannelCounts cc = count_channel_ops(good);
  EXPECT_TRUE(cc.static_counts);
  EXPECT_EQ(cc.pushes, 1);
  EXPECT_EQ(cc.pops, 1);
}

NodeP simple_filter(const std::string& name, int peek, int pp, int ps) {
  std::vector<StmtP> body;
  for (int i = 0; i < ps; ++i) body.push_back(push_(peek_(peek - 1)));
  body.push_back(discard(pp));
  return filter(name).rates(peek, pp, ps).work(seq(body)).node();
}

TEST(Validate, AcceptsWellFormedPipeline) {
  auto p = make_pipeline("p", {simple_filter("a", 1, 1, 2), simple_filter("b", 2, 2, 1)});
  EXPECT_TRUE(check(p).empty());
}

TEST(Validate, RejectsRateMismatchInWork) {
  auto f = filter("bad").rates(1, 1, 2).work(seq({push_(pop_())})).node();
  const auto vs = check(f);
  ASSERT_FALSE(vs.empty());
  EXPECT_NE(vs[0].message.find("pushes"), std::string::npos);
}

TEST(Validate, RejectsPeekBeyondDeclaration) {
  auto f = filter("bad").rates(2, 1, 1).work(seq({push_(peek_(5)), discard(1)})).node();
  EXPECT_FALSE(check(f).empty());
}

TEST(Validate, RejectsChannelOpsInInit) {
  auto f = filter("bad").rates(1, 1, 1).init(seq({let("x", pop_())}))
               .work(seq({push_(pop_())}))
               .node();
  EXPECT_FALSE(check(f).empty());
}

TEST(Validate, RejectsDuplicateInstance) {
  auto shared = simple_filter("s", 1, 1, 1);
  auto p = make_pipeline("p", {shared, shared});
  const auto vs = check(p);
  ASSERT_FALSE(vs.empty());
  EXPECT_NE(vs[0].message.find("more than once"), std::string::npos);
}

TEST(Validate, SplitJoinWeightArity) {
  auto sj = make_splitjoin("sj", roundrobin_split({1, 1, 1}), roundrobin_join({1, 1}),
                           {dsl::identity("i1"), dsl::identity("i2")});
  const auto vs = check(sj);
  ASSERT_FALSE(vs.empty());
}

TEST(Validate, FeedbackNeedsInitPathMatchingDelay) {
  auto body = simple_filter("body", 2, 2, 2);
  auto loop = simple_filter("loop", 1, 1, 1);
  auto fb = make_feedback("fb", roundrobin_join({1, 1}), body,
                          roundrobin_split({1, 1}), loop, 2, {0.0});
  EXPECT_FALSE(check(fb).empty());
}

TEST(Graph, CountAndCloneAreDeep) {
  auto p = make_pipeline(
      "p", {simple_filter("a", 1, 1, 1),
            make_splitjoin("sj", duplicate_split(), roundrobin_join({1, 1}),
                           {dsl::identity("x"), dsl::identity("y")})});
  EXPECT_EQ(count_filters(p), 3);
  auto q = clone(p);
  EXPECT_NE(q.get(), p.get());
  EXPECT_NE(q->children[0].get(), p->children[0].get());
  EXPECT_EQ(count_filters(q), 3);
  // Clone of a graph with shared instances fixes the duplication.
  EXPECT_TRUE(check(q).empty());
}

TEST(Graph, DescribeAndDotContainStructure) {
  auto sj = make_splitjoin("eq", duplicate_split(), roundrobin_join({1, 1}),
                           {dsl::identity("lo"), dsl::identity("hi")});
  const std::string d = describe(sj);
  EXPECT_NE(d.find("splitjoin eq"), std::string::npos);
  EXPECT_NE(d.find("duplicate"), std::string::npos);
  const std::string dot = to_dot(sj);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("triangle"), std::string::npos);
}

}  // namespace
}  // namespace sit::ir
