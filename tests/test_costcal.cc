// Tests for the cost-calibration loop (obs/costprofile.h, obs/costmodel.h):
// artifact round-trip through the jsonlite reader, harvesting from metrics
// snapshots, the SIT_COST loading path, semantic neutrality (a calibrated
// model may change *decisions*, never program *outputs*), and the pinned
// decision flips -- a skewed synthetic profile must actually move the LPT
// partition and the coarsen fission gate, or the whole loop is decorative.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "ir/dsl.h"
#include "linear/cost.h"
#include "obs/costmodel.h"
#include "obs/costprofile.h"
#include "opt/compile.h"
#include "parallel/transforms.h"
#include "sched/exec.h"
#include "sched/texec.h"

namespace sit {
namespace {

using namespace sit::ir::dsl;
using obs::CostProfile;
using obs::CostProfileActor;

// Every test in this file must leave the process-wide model static: the rest
// of the suite assumes uncalibrated costs.
class CostCalTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset_cost_model(); }
  void TearDown() override { obs::reset_cost_model(); }
};

CostProfileActor actor_row(const std::string& name, std::int64_t firings,
                           std::int64_t wall_ns, double model_cycles) {
  CostProfileActor a;
  a.name = name;
  a.firings = firings;
  a.wall_ns = wall_ns;
  a.model_cycles_per_fire = model_cycles;
  return a;
}

CostProfile sample_profile() {
  CostProfile p;
  p.git_sha = "abc123def456";
  p.hostname = "testhost";
  p.cpus = 4;
  p.apps = {"FIR", "Vocoder"};
  CostProfileActor a = actor_row("alpha", 64, 640000, 850.5);
  a.ops.int_ops = 100;
  a.ops.flops = 200;
  a.ops.divs = 3;
  a.ops.trans = 1;
  a.ops.mem = 50;
  a.ops.channel = 70;
  p.actors.push_back(a);
  p.actors.push_back(actor_row("beta", 8, 1600, 2.0));
  p.super = {{"mac-loop", 42}, {"sum-loop", 7}};
  return p;
}

// The static model's per-firing cycles by flat actor name, the harvest-side
// join input (streamprof computes the same map).
std::map<std::string, double> model_map(const runtime::FlatGraph& g) {
  std::map<std::string, double> m;
  for (const auto& a : g.actors) {
    if (a.is_filter()) m[a.name] = linear::leaf_ops_per_firing(*a.node);
  }
  return m;
}

// ---- artifact round-trip ----------------------------------------------------

TEST_F(CostCalTest, JsonRoundTripIsBitEqual) {
  const CostProfile p = sample_profile();
  const std::string text = p.to_json();

  CostProfile back;
  std::string err;
  ASSERT_TRUE(CostProfile::parse(text, &back, &err)) << err;

  EXPECT_EQ(back.schema, CostProfile::kSchema);
  EXPECT_EQ(back.git_sha, p.git_sha);
  EXPECT_EQ(back.hostname, p.hostname);
  EXPECT_EQ(back.cpus, p.cpus);
  EXPECT_EQ(back.apps, p.apps);
  ASSERT_EQ(back.actors.size(), p.actors.size());
  for (std::size_t i = 0; i < p.actors.size(); ++i) {
    EXPECT_EQ(back.actors[i].name, p.actors[i].name);
    EXPECT_EQ(back.actors[i].firings, p.actors[i].firings);
    EXPECT_EQ(back.actors[i].wall_ns, p.actors[i].wall_ns);
    EXPECT_EQ(back.actors[i].model_cycles_per_fire,
              p.actors[i].model_cycles_per_fire);
    EXPECT_EQ(back.actors[i].ops.int_ops, p.actors[i].ops.int_ops);
    EXPECT_EQ(back.actors[i].ops.channel, p.actors[i].ops.channel);
  }
  EXPECT_EQ(back.super, p.super);

  // Serialize -> parse -> serialize must reproduce the bytes exactly; this
  // is what lets CI artifacts survive storage and diffing without drift.
  EXPECT_EQ(back.to_json(), text);
}

TEST_F(CostCalTest, ParseRejectsMalformedProfiles) {
  CostProfile p;
  std::string err;
  EXPECT_FALSE(CostProfile::parse("not json at all", &p, &err));
  EXPECT_FALSE(CostProfile::parse("{}", &p, &err));  // no schema
  EXPECT_FALSE(CostProfile::parse(R"({"schema": 99, "actors": []})", &p, &err));
  EXPECT_FALSE(CostProfile::parse(
      R"({"schema": 1, "actors": [{"name": "x", "firings": -5}]})", &p, &err));
  EXPECT_FALSE(CostProfile::parse(
      R"({"schema": 1, "actors": [{"firings": 5}]})", &p, &err));  // unnamed
  // A minimal valid profile parses.
  EXPECT_TRUE(CostProfile::parse(R"({"schema": 1, "actors": []})", &p, &err))
      << err;
}

TEST_F(CostCalTest, MergeAccumulatesByActorName) {
  CostProfile a;
  a.actors.push_back(actor_row("x", 10, 1000, 5.0));
  a.apps = {"A"};
  CostProfile b;
  b.actors.push_back(actor_row("x", 30, 3000, 5.0));
  b.actors.push_back(actor_row("y", 1, 50, 2.0));
  b.apps = {"A", "B"};
  b.super = {{"mac-loop", 3}};

  a.merge(b);
  ASSERT_EQ(a.actors.size(), 2u);
  EXPECT_EQ(a.find("x")->firings, 40);
  EXPECT_EQ(a.find("x")->wall_ns, 4000);
  EXPECT_EQ(a.find("y")->wall_ns, 50);
  EXPECT_EQ(a.apps, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(a.super.size(), 1u);
}

// ---- harvesting -------------------------------------------------------------

TEST_F(CostCalTest, HarvestJoinsMeasuredAndModeledPerActor) {
  sched::ExecOptions opts;
  opts.trace = sched::TraceMode::On;
  sched::Executor ex(apps::make_app("FIR"), opts);
  ex.set_input_generator([](std::int64_t i) {
    return static_cast<double>((i % 64) - 32) / 32.0;
  });
  ex.run_steady(4);
  obs::MetricsSnapshot m = ex.metrics_snapshot();
  m.app = "FIR";

  CostProfile p;
  p.add_run(m, model_map(ex.graph()));
  ASSERT_FALSE(p.actors.empty());
  EXPECT_EQ(p.apps, std::vector<std::string>{"FIR"});
  const CostProfileActor* fir = p.find("fir");
  ASSERT_NE(fir, nullptr);
  EXPECT_GT(fir->firings, 0);
  EXPECT_GT(fir->wall_ns, 0);
  EXPECT_GT(fir->ns_per_fire(), 0.0);
  // The static model covered the actor, so divergence is computable.
  EXPECT_GT(fir->model_cycles_per_fire, 0.0);
  EXPECT_GT(p.cycles_per_ns(), 0.0);
}

// The satellite fix: the sequential engines must produce usable calibration
// cost columns even with per-op counting disabled (timing-only profiling).
TEST_F(CostCalTest, SequentialSnapshotFillsCalibCyclesFromTiming) {
  sched::ExecOptions opts;
  opts.count_ops = false;
  opts.trace = sched::TraceMode::On;
  sched::Executor ex(apps::make_app("FIR"), opts);
  ex.set_input_generator([](std::int64_t i) {
    return static_cast<double>(i % 8);
  });
  ex.run_steady(4);
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  bool any = false;
  for (const auto& a : m.actors) {
    if (a.firings > 0) {
      EXPECT_GT(a.calib_cycles, 0.0)
          << "actor '" << a.name << "' has firings but a zero cost column";
      any = true;
    }
  }
  EXPECT_TRUE(any);
}

// ---- model loading ----------------------------------------------------------

TEST_F(CostCalTest, ModelAnswersMeasuredWeightsWithStaticFallback) {
  CostProfile p = sample_profile();
  obs::set_cost_model(p, "inmem");
  const obs::CostModel& cm = obs::cost_model();
  EXPECT_TRUE(cm.calibrated());
  EXPECT_STREQ(cm.source(), "calibrated");

  double w = 0.0;
  ASSERT_TRUE(cm.measured_cycles_per_fire("alpha", &w));
  // alpha: 10000 ns/fire; bridge = (850.5*64 + 2*8) / (640000 + 1600).
  const double cpns = (850.5 * 64 + 2.0 * 8) / (640000.0 + 1600.0);
  EXPECT_NEAR(w, 10000.0 * cpns, 1e-9);
  double ratio = 0.0;
  ASSERT_TRUE(cm.divergence("alpha", &ratio));
  EXPECT_NEAR(ratio, 10000.0 * cpns / 850.5, 1e-9);
  // Unknown actors report no measurement: callers keep the static estimate.
  EXPECT_FALSE(cm.measured_cycles_per_fire("never-profiled", &w));

  obs::reset_cost_model();
  EXPECT_FALSE(obs::cost_model().calibrated());
  EXPECT_STREQ(obs::cost_model().source(), "static");
}

TEST_F(CostCalTest, SitCostEnvironmentVariableLoadsProfile) {
  const std::string path = "test_costcal_env.json";
  {
    std::ofstream f(path);
    f << sample_profile().to_json();
  }
  ::setenv("SIT_COST", path.c_str(), 1);
  obs::reset_cost_model();  // force the next query to re-consult SIT_COST
  EXPECT_TRUE(obs::cost_model().calibrated());
  EXPECT_EQ(obs::cost_model().profile_path(), path);
  ::unsetenv("SIT_COST");
  obs::reset_cost_model();
  EXPECT_FALSE(obs::cost_model().calibrated());
  std::remove(path.c_str());
}

TEST_F(CostCalTest, SnapshotAnnotationCarriesDivergence) {
  // Harvest FIR, install the profile, re-snapshot: the cost_model section
  // must flip to calibrated and carry per-actor ratios.
  sched::ExecOptions opts;
  opts.trace = sched::TraceMode::On;
  sched::Executor ex(apps::make_app("FIR"), opts);
  ex.set_input_generator([](std::int64_t i) {
    return static_cast<double>(i % 16);
  });
  ex.run_steady(4);
  obs::MetricsSnapshot m0 = ex.metrics_snapshot();
  EXPECT_EQ(m0.cost_source, "static");
  EXPECT_TRUE(m0.cost_divergence.empty());

  CostProfile p;
  p.add_run(m0, model_map(ex.graph()));
  obs::set_cost_model(p, "inmem");
  obs::MetricsSnapshot m1 = ex.metrics_snapshot();
  EXPECT_EQ(m1.cost_source, "calibrated");
  EXPECT_EQ(m1.cost_profile, "inmem");
  EXPECT_FALSE(m1.cost_divergence.empty());
  for (const auto& [name, ratio] : m1.cost_divergence) {
    EXPECT_GT(ratio, 0.0) << name;
  }
  EXPECT_NE(m1.to_json().find("\"cost_model\""), std::string::npos);
}

// ---- semantic neutrality ----------------------------------------------------

// Calibration steers decisions (placement, fusion order, fission gates) but
// every transform stays semantics-preserving, so program outputs must be
// bit-equal between a static-model and a calibrated-model compile of every
// app at -O2.
TEST_F(CostCalTest, CalibratedCompileKeepsOutputsBitEqualAcrossAllApps) {
  const auto run_o2 = [](const std::string& name) {
    opt::CompileOptions copts;
    copts.level = opt::OptLevel::O2;
    sched::Executor ex(opt::compile(apps::make_app(name), copts));
    ex.set_input_generator([](std::int64_t i) {
      return static_cast<double>((i % 32) - 16) / 16.0;
    });
    return ex.run_steady(4);
  };

  for (const auto& app : apps::all_apps()) {
    // Harvest this app's own measurements into a fresh profile.
    obs::reset_cost_model();
    sched::ExecOptions popts;
    popts.trace = sched::TraceMode::On;
    sched::Executor prof(apps::make_app(app.name), popts);
    prof.set_input_generator([](std::int64_t i) {
      return static_cast<double>((i % 32) - 16) / 16.0;
    });
    prof.run_steady(2);
    obs::MetricsSnapshot m = prof.metrics_snapshot();
    m.app = app.name;
    CostProfile p;
    p.add_run(m, model_map(prof.graph()));

    const std::vector<double> want = run_o2(app.name);
    obs::set_cost_model(p, "harvested");
    const std::vector<double> got = run_o2(app.name);
    obs::reset_cost_model();
    ASSERT_EQ(want.size(), got.size()) << app.name;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got[i]) << app.name << " diverges at item " << i;
    }
  }
}

// ---- pinned decision flips --------------------------------------------------

namespace flips {

// Heavy peeking filter: enough arithmetic per firing that the static model
// gives it a dominant share.  Peek > pop keeps coarsen_stateless from fusing
// it away (names must survive into the flat graph for the profile to match).
ir::NodeP heavy(const std::string& name) {
  using namespace sit::ir::dsl;
  auto e = peek_(0) * c(1.1) + peek_(1) * c(0.9);
  for (int i = 0; i < 24; ++i) e = e * c(1.01) + c(0.001);
  return filter(name).rates(2, 1, 1).work(seq({push_(e), discard(1)})).node();
}

// Light peeking filter (one add per firing).
ir::NodeP light(const std::string& name) {
  using namespace sit::ir::dsl;
  return filter(name)
      .rates(2, 1, 1)
      .work(seq({push_(peek_(0) + peek_(1)), discard(1)}))
      .node();
}

// A profile asserting the given per-firing wall-ns for each named actor.
// model_cycles_per_fire = 1 everywhere keeps the cycles/ns bridge simple;
// only the *relative* measured weights drive LPT and the fission gate.
CostProfile skewed(const std::vector<std::pair<std::string, double>>& ns) {
  CostProfile p;
  for (const auto& [name, per_fire] : ns) {
    p.actors.push_back(actor_row(
        name, 1000, static_cast<std::int64_t>(per_fire * 1000.0), 1.0));
  }
  std::sort(p.actors.begin(), p.actors.end(),
            [](const CostProfileActor& a, const CostProfileActor& b) {
              return a.name < b.name;
            });
  return p;
}

// Worker assignment as a partition (set of actor-name groups), invariant
// under worker-id permutation.
std::multiset<std::set<std::string>> partition_of(
    const sched::ThreadedExecutor& tex) {
  std::map<int, std::set<std::string>> by_worker;
  const auto& owner = tex.report().owner;
  for (std::size_t i = 0; i < owner.size(); ++i) {
    by_worker[owner[i]].insert(tex.graph().actors[i].name);
  }
  std::multiset<std::set<std::string>> part;
  for (auto& [w, names] : by_worker) part.insert(std::move(names));
  return part;
}

}  // namespace flips

TEST_F(CostCalTest, SkewedProfileFlipsLptPartition) {
  const auto make_graph = [] {
    return ir::make_pipeline(
        "p", {flips::heavy("A"), flips::light("B"), flips::light("C"),
              flips::light("D")});
  };
  sched::ExecOptions opts;
  opts.threads = 2;

  // Static model: A dominates, so LPT isolates it.
  sched::ThreadedExecutor stat(make_graph(), opts);
  stat.set_input_generator([](std::int64_t i) {
    return static_cast<double>(i % 8);
  });
  stat.run_steady(2);
  ASSERT_TRUE(stat.report().threaded);
  const auto part_static = flips::partition_of(stat);
  EXPECT_EQ(part_static.count(std::set<std::string>{"A"}), 1u);

  // Skewed measurements: B and C are the hot actors now, comparable in
  // weight, so LPT must split them across the two workers.  A and D fall
  // under the feather threshold and glue to their heavy neighbors (A to B,
  // D to C), giving the fully deterministic partition {A,B} | {C,D}.
  const std::vector<std::pair<std::string, double>> kSkew = {
      {"A", 10.0}, {"B", 1000.0}, {"C", 990.0}, {"D", 10.0}};
  obs::set_cost_model(flips::skewed(kSkew), "skew");
  sched::ThreadedExecutor skew(make_graph(), opts);
  skew.set_input_generator([](std::int64_t i) {
    return static_cast<double>(i % 8);
  });
  skew.run_steady(2);
  ASSERT_TRUE(skew.report().threaded);
  const auto part_skewed = flips::partition_of(skew);

  EXPECT_NE(part_static, part_skewed)
      << "a 100x measured skew on B/C left the LPT partition unchanged";
  EXPECT_EQ(part_skewed.count(std::set<std::string>{"A", "B"}), 1u);
  EXPECT_EQ(part_skewed.count(std::set<std::string>{"C", "D"}), 1u);

  // Decisions moved; outputs must not.  Same feed, same item count.
  obs::reset_cost_model();
  sched::Executor ref(make_graph());
  ref.set_input_generator([](std::int64_t i) {
    return static_cast<double>(i % 8);
  });
  const std::vector<double> want = ref.run_steady(4);
  obs::set_cost_model(flips::skewed(kSkew), "skew");
  sched::ThreadedExecutor cal(make_graph(), opts);
  cal.set_input_generator([](std::int64_t i) {
    return static_cast<double>(i % 8);
  });
  const std::vector<double> got = cal.run_steady(4);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "diverges at item " << i;
  }
}

TEST_F(CostCalTest, SkewedProfileFlipsCoarsenFissionGate) {
  const auto make_graph = [] {
    return ir::make_pipeline("p", {flips::heavy("H"), flips::light("L")});
  };

  // Static model: the light filter still carries well over a quarter-worker
  // of modeled work (2 actors, threads=2 -> gate at 12.5%), so both leaves
  // fiss: 2 replicas each = 4 filters.
  const ir::NodeP coarse_static =
      parallel::coarsen_for_threads(make_graph(), 2, 0);
  const int filters_static = ir::count_filters(coarse_static);

  // Measured truth says L is vanishingly cheap: its share falls under the
  // gate and it must ride along unfissed.
  obs::set_cost_model(flips::skewed({{"H", 100000.0}, {"L", 5.0}}), "skew");
  const ir::NodeP coarse_skewed =
      parallel::coarsen_for_threads(make_graph(), 2, 0);
  const int filters_skewed = ir::count_filters(coarse_skewed);

  EXPECT_EQ(filters_static, 4);
  EXPECT_EQ(filters_skewed, 3)
      << "the fission gate ignored the measured weights";
  ASSERT_NE(filters_static, filters_skewed);
}

}  // namespace
}  // namespace sit
