// Exhaustive verification of the closed-form transfer functions against a
// direct routing simulation, including the two paper-errata fixes documented
// in sdep/transfer.h.

#include <gtest/gtest.h>

#include <vector>

#include "sdep/transfer.h"
#include "sdep/sdep.h"

namespace sit::sdep {
namespace {

// Simulate a 2-way RR(1,1) splitter: route x items, return per-output counts.
std::pair<std::int64_t, std::int64_t> route_split(std::int64_t x) {
  std::int64_t o1 = 0, o2 = 0;
  for (std::int64_t i = 0; i < x; ++i) {
    (i % 2 == 0 ? o1 : o2)++;
  }
  return {o1, o2};
}

// Simulate a 2-way RR(1,1) joiner: how many outputs from (x1, x2) inputs.
std::int64_t route_join(std::int64_t x1, std::int64_t x2) {
  std::int64_t out = 0;
  while (true) {
    if (out % 2 == 0) {
      if (x1 == 0) break;
      --x1;
    } else {
      if (x2 == 0) break;
      --x2;
    }
    ++out;
  }
  return out;
}

TEST(Transfer, RrSplitMaxMatchesRouting) {
  for (std::int64_t x = 0; x <= 40; ++x) {
    const auto [o1, o2] = route_split(x);
    EXPECT_EQ(rr_split_max(0, x), o1) << x;
    EXPECT_EQ(rr_split_max(1, x), o2) << x;
  }
}

TEST(Transfer, RrSplitMinIsExactJointDemand) {
  // min(x1, x2) must be the smallest x whose routing covers both demands --
  // this is where the paper's draft formula (MIN) fails and MAX is right.
  for (std::int64_t x1 = 0; x1 <= 12; ++x1) {
    for (std::int64_t x2 = 0; x2 <= 12; ++x2) {
      const std::int64_t need = rr_split_min(x1, x2);
      const auto [a1, a2] = route_split(need);
      EXPECT_GE(a1, x1);
      EXPECT_GE(a2, x2);
      if (need > 0) {
        const auto [b1, b2] = route_split(need - 1);
        EXPECT_TRUE(b1 < x1 || b2 < x2)
            << "not minimal at (" << x1 << "," << x2 << ")";
      }
    }
  }
}

TEST(Transfer, RrJoinMaxMatchesRouting) {
  for (std::int64_t x1 = 0; x1 <= 12; ++x1) {
    for (std::int64_t x2 = 0; x2 <= 12; ++x2) {
      EXPECT_EQ(rr_join_max(x1, x2), route_join(x1, x2))
          << "(" << x1 << "," << x2 << ")";
    }
  }
}

TEST(Transfer, RrJoinMinMatchesPaperFormulas) {
  // The paper's per-input min formulas (ceil/floor) are correct and dual to
  // the splitter's max.
  for (std::int64_t n = 0; n <= 40; ++n) {
    // To emit n outputs, the joiner needs ceil(n/2) from I1, floor(n/2) from I2.
    EXPECT_EQ(rr_join_min(0, n), (n + 1) / 2);
    EXPECT_EQ(rr_join_min(1, n), n / 2);
    EXPECT_EQ(route_join(rr_join_min(0, n), rr_join_min(1, n)), n);
  }
}

TEST(Transfer, DuplicateAndCombineAreDuals) {
  for (std::int64_t x1 = 0; x1 <= 10; ++x1) {
    for (std::int64_t x2 = 0; x2 <= 10; ++x2) {
      EXPECT_EQ(dup_split_min(x1, x2), std::max(x1, x2));
      EXPECT_EQ(combine_join_max(x1, x2), std::min(x1, x2));
    }
    EXPECT_EQ(dup_split_max(x1), x1);
    EXPECT_EQ(combine_join_min(x1), x1);
  }
}

TEST(Transfer, FeedbackJoinerOffsetsByDelay) {
  // With n fabricated initial items, the loop side owes n fewer items and
  // the joiner can run n items further ahead.
  EXPECT_EQ(fb_join_min_loop(6, 2), 1);   // floor(6/2) - 2
  EXPECT_EQ(fb_join_min_loop(2, 5), 0);   // clamped at zero
  EXPECT_EQ(fb_join_max(4, 1, 2), rr_join_max(4, 3));
}

TEST(Transfer, CompositionLawsHold) {
  // Two filters in a pipeline: composed closed forms equal the closed form
  // of manual two-stage propagation.
  const TapeFn maxA = filter_max_fn(3, 1, 2);
  const TapeFn maxB = filter_max_fn(2, 2, 1);
  const TapeFn maxAB = compose_max(maxA, maxB);
  const TapeFn minA = filter_min_fn(3, 1, 2);
  const TapeFn minB = filter_min_fn(2, 2, 1);
  const TapeFn minAB = compose_min(minA, minB);
  for (std::int64_t x = 0; x <= 50; ++x) {
    EXPECT_EQ(maxAB(x), filter_max_transfer(2, 2, 1, filter_max_transfer(3, 1, 2, x)));
    // min is adjoint-ish to max: producing maxAB(x) outputs never demands
    // more than x inputs.
    const std::int64_t y = maxAB(x);
    if (y > 0) EXPECT_LE(minAB(y), x);
  }
}

TEST(Transfer, WeightedSplitterGeneralizesTwoWay) {
  const std::vector<int> w{1, 1};
  for (std::int64_t x = 0; x <= 30; ++x) {
    EXPECT_EQ(wrr_split_max(w, 0, x), rr_split_max(0, x));
    EXPECT_EQ(wrr_split_max(w, 1, x), rr_split_max(1, x));
  }
  // Weighted case against direct routing.
  const std::vector<int> w2{3, 1, 2};
  for (std::int64_t x = 0; x <= 40; ++x) {
    std::vector<std::int64_t> counts(3, 0);
    std::int64_t left = x;
    while (left > 0) {
      for (std::size_t p = 0; p < w2.size() && left > 0; ++p) {
        for (int k = 0; k < w2[p] && left > 0; ++k) {
          ++counts[p];
          --left;
        }
      }
    }
    for (std::size_t p = 0; p < w2.size(); ++p) {
      EXPECT_EQ(wrr_split_max(w2, static_cast<int>(p), x), counts[p])
          << "x=" << x << " p=" << p;
    }
  }
}

TEST(Transfer, WeightedJoinerGeneralizesTwoWay) {
  for (std::int64_t x1 = 0; x1 <= 10; ++x1) {
    for (std::int64_t x2 = 0; x2 <= 10; ++x2) {
      EXPECT_EQ(wrr_join_max({1, 1}, {x1, x2}), rr_join_max(x1, x2));
    }
  }
  // Weighted joiner against direct draining.
  const std::vector<int> w{2, 3};
  for (std::int64_t x1 = 0; x1 <= 12; ++x1) {
    for (std::int64_t x2 = 0; x2 <= 12; ++x2) {
      std::int64_t a = x1, b = x2, out = 0;
      bool stuck = false;
      while (!stuck) {
        if (a >= 2) {
          a -= 2;
          out += 2;
        } else {
          out += a;
          a = 0;
          break;
        }
        if (b >= 3) {
          b -= 3;
          out += 3;
        } else {
          out += b;
          b = 0;
          break;
        }
      }
      EXPECT_EQ(wrr_join_max(w, {x1, x2}), out) << x1 << "," << x2;
    }
  }
}

}  // namespace
}  // namespace sit::sdep
