// Fused-engine tests: superinstruction selection pins, every refusal
// reason, and fallback equivalence.
//
// The bit-equality contract itself (outputs / OpCounts / channel counters /
// filter state across all apps x all optimization levels) lives in
// test_pipeline_diff.cc; this file pins the *static* artifacts -- which
// superinstructions the peephole selects on the flagship apps, how many
// channels are lowered -- and exercises each path that must refuse fusion
// and degrade to the per-actor VM.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/fuse.h"
#include "apps/apps.h"
#include "ir/dsl.h"
#include "runtime/fused.h"
#include "sched/exec.h"
#include "sched/schedule.h"

namespace sit {
namespace {

using namespace sit::ir;
using namespace sit::ir::dsl;

sched::Executor make_fused(ir::NodeP root) {
  sched::ExecOptions opts;
  opts.engine = sched::Engine::Fused;
  return sched::Executor(std::move(root), opts);
}

// Drop the final sink so the program output edge is observable.
ir::NodeP observable(const ir::NodeP& app) {
  if (app->kind != ir::Node::Kind::Pipeline || app->children.size() < 2) {
    return app;
  }
  std::vector<ir::NodeP> kids(app->children.begin(), app->children.end() - 1);
  return ir::make_pipeline(app->name + "_obs", kids);
}

int actor_id(const runtime::FlatGraph& g, const std::string& name) {
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

// ---- superinstruction selection ---------------------------------------------
//
// Exact instance counts on the unoptimized flagship graphs.  These are
// structural pins: a change means the peephole matcher or the trace layout
// changed, which is worth a deliberate review (and an update here).

TEST(FusedSuper, FirSelectsOneMacLoop) {
  auto ex = make_fused(apps::make_app("FIR"));
  const runtime::FusedProgram* fp = ex.fused_program();
  ASSERT_NE(fp, nullptr) << ex.fused_refusal();
  EXPECT_EQ(fp->super_count("mac-loop"), 1);
  EXPECT_EQ(fp->eliminated_channels, 2);
}

TEST(FusedSuper, VocoderSelectsBandAndAgcPatterns) {
  auto ex = make_fused(apps::make_app("Vocoder"));
  const runtime::FusedProgram* fp = ex.fused_program();
  ASSERT_NE(fp, nullptr) << ex.fused_refusal();
  EXPECT_EQ(fp->super_count("mac-loop"), 9);      // 8 bands + output lowpass
  EXPECT_EQ(fp->super_count("sum-loop"), 1);      // vsum
  EXPECT_EQ(fp->super_count("pop-un-push"), 1);   // rectify (abs)
  EXPECT_EQ(fp->super_count("dup-run"), 1);       // vbank duplicate splitter
  EXPECT_EQ(fp->super_count("copy-run"), 8);      // vbank joiner legs
  EXPECT_EQ(fp->eliminated_channels, 23);
}

TEST(FusedSuper, FilterBankSelectsMacSumAndRouting) {
  auto ex = make_fused(apps::make_app("FilterBank"));
  const runtime::FusedProgram* fp = ex.fused_program();
  ASSERT_NE(fp, nullptr) << ex.fused_refusal();
  EXPECT_EQ(fp->super_count("mac-loop"), 128);  // 8 bands x (8 analysis + 8 synthesis)
  EXPECT_EQ(fp->super_count("sum-loop"), 8);    // combine firings
  EXPECT_EQ(fp->super_count("copy-run"), 64);   // joiner legs x reps
  EXPECT_EQ(fp->super_count("dup-run"), 1);
  EXPECT_EQ(fp->super_count("pop-push"), 8);    // upsample pass-through item
  EXPECT_EQ(fp->eliminated_channels, 43);
}

TEST(FusedSuper, FmRadioSelectsGainAsPopBinPush) {
  auto ex = make_fused(apps::make_app("FMRadio"));
  const runtime::FusedProgram* fp = ex.fused_program();
  ASSERT_NE(fp, nullptr) << ex.fused_refusal();
  EXPECT_EQ(fp->super_count("mac-loop"), 11);      // rf_lp + 10 eq bandpass
  EXPECT_EQ(fp->super_count("sum-loop"), 1);       // eqsum
  EXPECT_EQ(fp->super_count("copy-run"), 10);      // equalizer joiner legs
  EXPECT_EQ(fp->super_count("dup-run"), 1);
  EXPECT_EQ(fp->super_count("pop-bin-push"), 10);  // eqgain scalers
}

TEST(FusedSuper, BitonicSortSelectsRoutingOnly) {
  auto ex = make_fused(apps::make_app("BitonicSort"));
  const runtime::FusedProgram* fp = ex.fused_program();
  ASSERT_NE(fp, nullptr) << ex.fused_refusal();
  EXPECT_EQ(fp->super_count("copy-run"), 48);
  EXPECT_EQ(fp->super_count("pop-bin-push"), 24);  // min/max halves of each CE
  EXPECT_EQ(fp->super_count("mac-loop"), 0);
}

TEST(FusedSuper, DesHasNoSuperinstructionPatterns) {
  // Feistel rounds are straight-line integer code: nothing matches.
  auto ex = make_fused(apps::make_app("DES"));
  const runtime::FusedProgram* fp = ex.fused_program();
  ASSERT_NE(fp, nullptr) << ex.fused_refusal();
  EXPECT_TRUE(fp->super.empty());
}

TEST(FusedSuper, SelectionCanBeDisabled) {
  const ir::NodeP root = apps::make_app("FIR");  // FlatActor::node is non-owning
  const runtime::FlatGraph g = runtime::flatten(root);
  const sched::Schedule s = sched::make_schedule(g);
  const analysis::FusePlan plan = analysis::fuse_plan(g, s);
  ASSERT_TRUE(plan.admissible) << plan.refusal;
  runtime::FusedBuildOptions off;
  off.superinstructions = false;
  std::string reason;
  const auto fp = runtime::build_fused(g, s.order, s.reps, plan.carry,
                                       plan.traffic, &reason, off);
  ASSERT_NE(fp, nullptr) << reason;
  EXPECT_TRUE(fp->super.empty());
}

TEST(FusedSuper, DisassemblyAnnotatesSuperinstructions) {
  auto ex = make_fused(apps::make_app("FIR"));
  ASSERT_NE(ex.fused_program(), nullptr);
  const std::string dis = ex.fused_program()->disassemble();
  EXPECT_NE(dis.find("mac-loop"), std::string::npos);
}

// ---- refusal reasons --------------------------------------------------------

NodeP tiny_src(const std::string& name) {
  return filter(name)
      .rates(0, 0, 1)
      .iscalar("seed", 1)
      .work(seq({let("seed", v("seed") + ci(1)),
                 push_(to_float(v("seed")))}))
      .node();
}

NodeP tiny_snk(const std::string& name) {
  return filter(name).rates(1, 1, 0).work(seq({discard(1)})).node();
}

TEST(FusedRefusal, WorkOutsideBytecodeSubsetIsVmFallback) {
  // The for variable shadows a state scalar, which compile_filter refuses;
  // there is no bytecode template to inline, so fusion refuses too (and the
  // actor runs on the tree interpreter as usual).
  auto bad = filter("bad")
                 .rates(1, 1, 1)
                 .scalar("i", ir::Value(0.0))
                 .work(seq({let("x", pop_()),
                            for_("i", 0, 1, let("y", v("x"))),
                            push_(v("x"))}))
                 .node();
  auto ex = make_fused(make_pipeline("p", {tiny_src("s"), bad, tiny_snk("k")}));
  EXPECT_EQ(ex.fused_program(), nullptr);
  EXPECT_EQ(ex.fused_refusal().rfind("vm-fallback:bad (", 0), 0u)
      << ex.fused_refusal();
  ex.run_steady(3);  // still runs, per-actor
  const int src = actor_id(ex.graph(), "s");
  ASSERT_GE(src, 0);
  EXPECT_EQ(ex.firings()[static_cast<std::size_t>(src)],
            3 * ex.schedule().reps[static_cast<std::size_t>(src)] +
                ex.schedule().init_fires[static_cast<std::size_t>(src)]);
}

TEST(FusedRefusal, TeleportSendingFilterRefuses) {
  auto monitor = filter("monitor")
                     .rates(1, 1, 1)
                     .work(seq({let("x", pop_()),
                                if_(v("x") == c(5.0),
                                    ir::send("p", "boost", {c(2.0).e}, 1, 1)),
                                push_(v("x"))}))
                     .node();
  auto ex =
      make_fused(make_pipeline("p", {tiny_src("s"), monitor, tiny_snk("k")}));
  EXPECT_EQ(ex.fused_program(), nullptr);
  EXPECT_EQ(ex.fused_refusal(), "teleport-send:monitor");
}

TEST(FusedRefusal, MessageSinkAttachedRefuses) {
  sched::ExecOptions opts;
  opts.engine = sched::Engine::Fused;
  opts.message_sink = [](const runtime::SentMessage&) {};
  sched::Executor ex(apps::make_app("FIR"), opts);
  EXPECT_EQ(ex.fused_program(), nullptr);
  EXPECT_EQ(ex.fused_refusal(), "message-sink-attached");
}

TEST(FusedRefusal, TracingEnabledRefuses) {
  if (!sched::resolve_trace(sched::TraceMode::On)) {
    GTEST_SKIP() << "observability instrumentation compiled out";
  }
  sched::ExecOptions opts;
  opts.engine = sched::Engine::Fused;
  opts.trace = sched::TraceMode::On;
  sched::Executor ex(apps::make_app("FIR"), opts);
  EXPECT_EQ(ex.fused_program(), nullptr);
  EXPECT_EQ(ex.fused_refusal(), "tracing-enabled");
}

TEST(FusedRefusal, FeedbackLoopIsNotSingleAppearance) {
  // DtoA's noise shaper is a tight feedback loop: the schedule is valid but
  // not single-appearance, so the flat trace's firing order would deadlock.
  auto ex = make_fused(apps::make_app("DtoA"));
  EXPECT_EQ(ex.fused_program(), nullptr);
  EXPECT_EQ(ex.fused_refusal().rfind("not-single-appearance:", 0), 0u)
      << ex.fused_refusal();
  EXPECT_NE(ex.fused_refusal().find("fbjoin"), std::string::npos)
      << ex.fused_refusal();
}

TEST(FusedRefusal, RefusedProgramStillMatchesVmBitExactly) {
  auto fused = make_fused(observable(apps::make_app("DtoA")));
  ASSERT_EQ(fused.fused_program(), nullptr);  // per-actor fallback

  sched::ExecOptions vopt;
  vopt.engine = sched::Engine::Vm;
  sched::Executor vm(observable(apps::make_app("DtoA")), vopt);

  const auto fout = fused.run_steady(4);
  const auto vout = vm.run_steady(4);
  ASSERT_EQ(fout.size(), vout.size());
  for (std::size_t i = 0; i < fout.size(); ++i) {
    EXPECT_EQ(fout[i], vout[i]) << "item " << i;
  }
  EXPECT_EQ(fused.firings(), vm.firings());
  EXPECT_EQ(fused.total_ops().flops, vm.total_ops().flops);
  EXPECT_EQ(fused.total_ops().channel, vm.total_ops().channel);
}

TEST(FusedRefusal, MetricsCarryRefusalDetail) {
  auto ex = make_fused(apps::make_app("DtoA"));
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  EXPECT_EQ(m.engine, "fused");
  EXPECT_EQ(m.fallback, "fused-refused");
  EXPECT_EQ(m.fallback_detail.rfind("not-single-appearance:", 0), 0u);
  EXPECT_EQ(m.fused_channels, -1);  // no active trace to report statics for
}

TEST(FusedMetrics, ActiveTraceReportsChannelAndSuperStatics) {
  auto ex = make_fused(apps::make_app("FIR"));
  ASSERT_NE(ex.fused_program(), nullptr);
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  EXPECT_EQ(m.engine, "fused");
  EXPECT_EQ(m.fallback, "none");
  EXPECT_EQ(m.fused_channels, 2);
  bool saw_mac = false;
  for (const auto& [name, n] : m.fused_super) {
    if (name == "mac-loop") {
      saw_mac = true;
      EXPECT_EQ(n, 1);
    }
  }
  EXPECT_TRUE(saw_mac);
}

// ---- engine selection -------------------------------------------------------

TEST(FusedEngine, EnvSelectsFused) {
  const char* old = std::getenv("SIT_ENGINE");
  const std::string saved = old != nullptr ? old : "";
  setenv("SIT_ENGINE", "fused", 1);
  EXPECT_EQ(sched::resolve_engine(sched::Engine::Auto), sched::Engine::Fused);
  if (old != nullptr) {
    setenv("SIT_ENGINE", saved.c_str(), 1);
  } else {
    unsetenv("SIT_ENGINE");
  }
}

// ---- activation fallback ----------------------------------------------------

TEST(FusedExecution, ManualFireMidIterationFallsBackAndStaysBitEqual) {
  // A manual fire() leaves an internal channel above its steady-state carry,
  // so activate() must refuse and run_steady must take the per-actor path --
  // producing exactly what the VM produces from the same state.
  auto fused = make_fused(observable(apps::make_app("FIR")));
  ASSERT_NE(fused.fused_program(), nullptr);

  sched::ExecOptions vopt;
  vopt.engine = sched::Engine::Vm;
  sched::Executor vm(observable(apps::make_app("FIR")), vopt);

  fused.run_init();
  vm.run_init();
  const int src_f = actor_id(fused.graph(), "src");
  const int src_v = actor_id(vm.graph(), "src");
  ASSERT_GE(src_f, 0);
  ASSERT_TRUE(fused.can_fire(src_f));
  fused.fire(src_f);
  vm.fire(src_v);

  const auto fout = fused.run_steady(3);
  const auto vout = vm.run_steady(3);
  ASSERT_EQ(fout.size(), vout.size());
  for (std::size_t i = 0; i < fout.size(); ++i) {
    EXPECT_EQ(fout[i], vout[i]) << "item " << i;
  }
  EXPECT_EQ(fused.firings(), vm.firings());
  EXPECT_EQ(fused.total_ops().flops, vm.total_ops().flops);
  EXPECT_EQ(fused.total_ops().channel, vm.total_ops().channel);

  // With the graph back at its steady-state carry, later run_steady calls
  // fuse again -- and must seamlessly continue the same stream.
  const auto f2 = fused.run_steady(3);
  const auto v2 = vm.run_steady(3);
  ASSERT_EQ(f2.size(), v2.size());
  for (std::size_t i = 0; i < f2.size(); ++i) {
    EXPECT_EQ(f2[i], v2[i]) << "item " << i;
  }
}

}  // namespace
}  // namespace sit
