// Observability subsystem tests.
//
// The load-bearing property is *zero interference*: enabling tracing must not
// change a single output bit, firing tally, or operation count on any app
// under any engine -- the instrumentation only watches.  On top of that:
// golden structural checks on emitted Chrome traces (valid JSON, per-thread
// monotone timestamps, matched B/E pairs), the validator's rejection of
// malformed traces, the stable fallback-reason names the ThreadedReport
// exposes, the stall-detector configuration plumbing, metrics-snapshot
// conservation laws, and teleport send/deliver events from the messaging
// executor.

#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "ir/dsl.h"
#include "msg/messaging.h"
#include "obs/export.h"
#include "obs/jsonlite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/exec.h"
#include "sched/texec.h"

namespace sit {
namespace {

using namespace ir::dsl;  // NOLINT
using runtime::OpCounts;

// Tests below that need a *live* recorder skip themselves when the
// instrumentation was compiled out (cmake -DSIT_OBS=OFF); the pure-unit
// tests (validator, names, stall resolution, Recorder mechanics) still run.
#define SKIP_WITHOUT_OBS() \
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out"

bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  return ba == bb;
}

void expect_same_doubles(const std::vector<double>& a,
                         const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(same_bits(a[i], b[i]))
        << what << " item " << i << ": " << a[i] << " vs " << b[i];
  }
}

void expect_same_counts(const OpCounts& a, const OpCounts& b,
                        const std::string& who) {
  EXPECT_EQ(a.int_ops, b.int_ops) << who << " int_ops";
  EXPECT_EQ(a.flops, b.flops) << who << " flops";
  EXPECT_EQ(a.divs, b.divs) << who << " divs";
  EXPECT_EQ(a.trans, b.trans) << who << " trans";
  EXPECT_EQ(a.mem, b.mem) << who << " mem";
  EXPECT_EQ(a.channel, b.channel) << who << " channel";
}

// ---- tracing must not perturb execution -------------------------------------

// Sequential executor, both engines: tracing on vs off, everything bit-equal.
TEST(ObsDifferential, TracingIsInvisibleSequential) {
  SKIP_WITHOUT_OBS();
  for (const auto engine : {sched::Engine::Tree, sched::Engine::Vm}) {
    const char* ename = engine == sched::Engine::Vm ? "vm" : "tree";
    for (const auto& info : apps::all_apps()) {
      SCOPED_TRACE(std::string(info.name) + "/" + ename);
      sched::ExecOptions off;
      off.engine = engine;
      off.trace = sched::TraceMode::Off;
      sched::ExecOptions on = off;
      on.trace = sched::TraceMode::On;
      sched::Executor a(info.make(), off);
      sched::Executor b(info.make(), on);
      ASSERT_EQ(a.recorder(), nullptr);
      ASSERT_NE(b.recorder(), nullptr);
      expect_same_doubles(a.run_steady(3), b.run_steady(3), "output#1");
      expect_same_doubles(a.run_steady(2), b.run_steady(2), "output#2");
      EXPECT_EQ(a.firings(), b.firings());
      for (std::size_t i = 0; i < a.graph().actors.size(); ++i) {
        expect_same_counts(a.actor_ops()[i], b.actor_ops()[i],
                           a.graph().actors[i].name);
      }
      EXPECT_GT(b.recorder()->total_events(), 0);
    }
  }
}

// Threaded executor at 4 workers: same invariance.
TEST(ObsDifferential, TracingIsInvisibleThreaded) {
  SKIP_WITHOUT_OBS();
  for (const auto& info : apps::all_apps()) {
    SCOPED_TRACE(info.name);
    sched::ExecOptions off;
    off.threads = 4;
    off.trace = sched::TraceMode::Off;
    sched::ExecOptions on = off;
    on.trace = sched::TraceMode::On;
    sched::ThreadedExecutor a(info.make(), off);
    sched::ThreadedExecutor b(info.make(), on);
    expect_same_doubles(a.run_steady(3), b.run_steady(3), "output#1");
    expect_same_doubles(a.run_steady(2), b.run_steady(2), "output#2");
    EXPECT_EQ(a.firings(), b.firings());
    for (std::size_t i = 0; i < a.graph().actors.size(); ++i) {
      expect_same_counts(a.actor_ops()[i], b.actor_ops()[i],
                         a.graph().actors[i].name);
    }
    for (std::size_t e = 0; e < a.graph().edges.size(); ++e) {
      const int ei = static_cast<int>(e);
      EXPECT_EQ(a.edge_pushed(ei), b.edge_pushed(ei)) << "edge " << e;
      EXPECT_EQ(a.edge_popped(ei), b.edge_popped(ei)) << "edge " << e;
    }
    ASSERT_NE(b.recorder(), nullptr);
    EXPECT_GT(b.recorder()->total_events(), 0);
  }
}

// ---- golden chrome-trace structure ------------------------------------------

std::string traced_app_json(const std::string& name, int threads) {
  sched::ExecOptions opts;
  opts.threads = threads;
  opts.trace = sched::TraceMode::On;
  sched::ThreadedExecutor tex(apps::make_app(name), opts);
  tex.run_steady(4);
  const auto m = tex.metrics_snapshot();
  std::vector<std::string> actors, edges;
  for (const auto& a : tex.graph().actors) actors.push_back(a.name);
  for (const auto& e : m.edges) edges.push_back(e.name);
  return obs::chrome_trace_json(*tex.recorder(), actors, edges, name, m.engine);
}

TEST(ObsChromeTrace, GoldenStructure) {
  SKIP_WITHOUT_OBS();
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const std::string text = traced_app_json("FIR", threads);
    std::string err;
    ASSERT_TRUE(obs::validate_chrome_trace(text, &err)) << err;

    // Independently re-parse and check semantic content: fire events exist,
    // phases appear, and every B has its E (the validator already enforces
    // nesting; here we pin category/name conventions).
    obs::json::Value root;
    ASSERT_TRUE(obs::json::parse(text, &root, &err)) << err;
    const obs::json::Value* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->arr.size(), 0u);
    int fires = 0, phases = 0, channel = 0;
    for (const auto& ev : events->arr) {
      const obs::json::Value* cat = ev.find("cat");
      if (cat == nullptr) continue;
      if (cat->str == "fire") ++fires;
      if (cat->str == "phase") ++phases;
      if (cat->str == "channel") ++channel;
    }
    EXPECT_GT(fires, 0);
    EXPECT_GE(phases, 2);  // at least init + steady
    EXPECT_GT(channel, 0);
  }
}

TEST(ObsChromeTrace, ValidatorRejectsMalformed) {
  std::string err;
  EXPECT_FALSE(obs::validate_chrome_trace("not json", &err));
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &err));
  // Unmatched B.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents":[{"ph":"B","ts":1,"pid":1,"tid":1,"name":"x"}]})",
      &err));
  // E without B.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents":[{"ph":"E","ts":1,"pid":1,"tid":1,"name":"x"}]})",
      &err));
  // Non-monotone timestamps on one thread.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents":[
        {"ph":"i","ts":5,"pid":1,"tid":1,"name":"a"},
        {"ph":"i","ts":3,"pid":1,"tid":1,"name":"b"}]})",
      &err));
  // Mismatched nesting order.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents":[
        {"ph":"B","ts":1,"pid":1,"tid":1,"name":"x"},
        {"ph":"B","ts":2,"pid":1,"tid":1,"name":"y"},
        {"ph":"E","ts":3,"pid":1,"tid":1,"name":"x"},
        {"ph":"E","ts":4,"pid":1,"tid":1,"name":"y"}]})",
      &err));
  // And a minimal valid one passes.
  EXPECT_TRUE(obs::validate_chrome_trace(
      R"({"traceEvents":[
        {"ph":"B","ts":1,"pid":1,"tid":1,"name":"x"},
        {"ph":"E","ts":2,"pid":1,"tid":1,"name":"x"}]})",
      &err))
      << err;
}

// ---- stable fallback-reason names -------------------------------------------

TEST(ObsReport, FallbackNamesAreStable) {
  EXPECT_STREQ(sched::to_string(sched::FallbackReason::None), "none");
  EXPECT_STREQ(sched::to_string(sched::FallbackReason::OneThread), "one-thread");
  EXPECT_STREQ(sched::to_string(sched::FallbackReason::MessageSink),
               "message-sink");
  EXPECT_STREQ(sched::to_string(sched::FallbackReason::TeleportHandlers),
               "teleport-handlers");
  EXPECT_STREQ(sched::to_string(sched::FallbackReason::TeleportSends),
               "teleport-sends");
  EXPECT_STREQ(sched::to_string(sched::FallbackReason::TooFewActors),
               "too-few-actors");
  EXPECT_STREQ(sched::to_string(sched::FallbackReason::InterleavedFirings),
               "interleaved-firings");
}

TEST(ObsReport, FallbackEnumMatchesRefusal) {
  // One thread.
  {
    sched::ExecOptions o;
    o.threads = 1;
    sched::ThreadedExecutor t(apps::make_app("FIR"), o);
    EXPECT_EQ(t.report().fallback, sched::FallbackReason::OneThread);
    EXPECT_NE(t.report().to_string().find("one-thread"), std::string::npos);
  }
  // Teleport handlers.
  {
    auto gain = filter("gain")
                    .rates(1, 1, 1)
                    .scalar("g", ir::Value(1.0))
                    .work(seq({push_(pop_() * v("g"))}))
                    .handler("setGain", {"x"}, seq({let("g", v("x"))}))
                    .node();
    auto src = filter("src").rates(0, 0, 1).work(seq({push_(c(1.0))})).node();
    auto snk = filter("snk").rates(1, 1, 0).work(seq({discard(1)})).node();
    sched::ExecOptions o;
    o.threads = 4;
    sched::ThreadedExecutor t(ir::make_pipeline("p", {src, gain, snk}), o);
    EXPECT_EQ(t.report().fallback, sched::FallbackReason::TeleportHandlers);
    EXPECT_NE(t.report().fallback_reason.find("teleport"), std::string::npos);
  }
  // Threaded run reports None.
  {
    sched::ExecOptions o;
    o.threads = 4;
    sched::ThreadedExecutor t(apps::make_app("FIR"), o);
    t.run_steady(2);
    ASSERT_TRUE(t.report().threaded);
    EXPECT_EQ(t.report().fallback, sched::FallbackReason::None);
    EXPECT_NE(t.report().to_string().find("threaded"), std::string::npos);
  }
}

// ---- stall-detector configuration -------------------------------------------

TEST(ObsStall, ResolveStallMs) {
  unsetenv("SIT_STALL_MS");
  EXPECT_EQ(sched::resolve_stall_ms(0), 120000);   // default
  EXPECT_EQ(sched::resolve_stall_ms(5000), 5000);  // explicit passes through
  EXPECT_EQ(sched::resolve_stall_ms(-1), -1);      // negative = never abort
  setenv("SIT_STALL_MS", "2500", 1);
  EXPECT_EQ(sched::resolve_stall_ms(0), 2500);
  EXPECT_EQ(sched::resolve_stall_ms(7), 7);  // env only fills the default
  setenv("SIT_STALL_MS", "-1", 1);
  EXPECT_EQ(sched::resolve_stall_ms(0), -1);
  unsetenv("SIT_STALL_MS");
}

TEST(ObsStall, ConfiguredRunStillMatches) {
  // A tight stall budget and a tiny spin threshold must not change results
  // on a healthy run (the thresholds only matter when something is wrong).
  sched::ExecOptions o;
  o.threads = 4;
  o.stall_ms = 10000;
  o.spin_before_yield = 4;
  sched::ThreadedExecutor t(apps::make_app("FilterBank"), o);
  sched::Executor s(apps::make_app("FilterBank"), {});
  expect_same_doubles(s.run_steady(3), t.run_steady(3), "FilterBank output");
}

// ---- metrics snapshots ------------------------------------------------------

TEST(ObsMetrics, SnapshotConservation) {
  SKIP_WITHOUT_OBS();
  sched::ExecOptions o;
  o.trace = sched::TraceMode::On;
  sched::Executor ex(apps::make_app("Vocoder"), o);
  ex.run_steady(3);
  const obs::MetricsSnapshot m = ex.metrics_snapshot();
  ASSERT_EQ(m.actors.size(), ex.graph().actors.size());
  std::int64_t total_wall = 0;
  for (std::size_t i = 0; i < m.actors.size(); ++i) {
    EXPECT_EQ(m.actors[i].firings, ex.firings()[i]) << m.actors[i].name;
    EXPECT_GE(m.actors[i].wall_ns, 0) << m.actors[i].name;
    total_wall += m.actors[i].wall_ns;
  }
  EXPECT_GT(total_wall, 0);  // tracing was on: firings were timed
  for (const auto& e : m.edges) {
    EXPECT_GE(e.pushed, e.popped) << e.name;       // FIFO: can't pop the future
    EXPECT_GE(e.peak_items, e.pushed - e.popped);  // peak covers what's live
  }
  EXPECT_GT(m.trace_events, 0);

  // The JSON serialization must parse back.
  obs::json::Value root;
  std::string err;
  ASSERT_TRUE(obs::json::parse(m.to_json(), &root, &err)) << err;
  const obs::json::Value* actors = root.find("actors");
  ASSERT_NE(actors, nullptr);
  EXPECT_EQ(actors->arr.size(), m.actors.size());
}

TEST(ObsMetrics, WorkerUtilizationPopulated) {
  SKIP_WITHOUT_OBS();
  sched::ExecOptions o;
  o.threads = 4;
  o.trace = sched::TraceMode::On;
  sched::ThreadedExecutor tex(apps::make_app("FMRadio"), o);
  tex.run_steady(6);
  const obs::MetricsSnapshot m = tex.metrics_snapshot();
  ASSERT_TRUE(m.threaded);
  ASSERT_GT(m.workers.size(), 1u);
  std::int64_t total_wall = 0;
  for (const auto& w : m.workers) {
    EXPECT_GE(w.wall_ns, w.wait_ns) << "worker " << w.id;
    EXPECT_GT(w.iters, 0) << "worker " << w.id;
    const double u = w.utilization();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    total_wall += w.wall_ns;
  }
  EXPECT_GT(total_wall, 0);
}

// ---- recorder / buffer units ------------------------------------------------

TEST(ObsRecorder, BoundedBufferCountsDrops) {
  obs::Recorder::Config cfg;
  cfg.events_per_thread = 4;
  obs::Recorder rec(cfg);
  obs::ThreadBuffer* tb = rec.thread_buffer(0);
  for (int i = 0; i < 10; ++i) {
    tb->emit(i, obs::EventKind::FireBegin, 0);
  }
  EXPECT_EQ(tb->events().size(), 4u);
  EXPECT_EQ(tb->dropped(), 6);
  EXPECT_EQ(rec.total_events(), 4);
  EXPECT_EQ(rec.total_dropped(), 6);
  // Same tid returns the same buffer; a new tid gets a fresh one.
  EXPECT_EQ(rec.thread_buffer(0), tb);
  EXPECT_NE(rec.thread_buffer(1), tb);
}

TEST(ObsRecorder, FiringStatsHistogram) {
  obs::FiringStats fs;
  fs.record(1);       // bucket bit_width(1)=1
  fs.record(1000);    // ~2^10
  fs.record(1000000); // ~2^20
  EXPECT_EQ(fs.fires, 3);
  EXPECT_EQ(fs.wall_ns, 1001001);
  EXPECT_EQ(fs.max_ns, 1000000);
  std::int64_t total = 0;
  for (const auto b : fs.hist) total += b;
  EXPECT_EQ(total, 3);
}

// ---- teleport messaging events ----------------------------------------------

TEST(ObsMessaging, SendAndDeliverEventsRecorded) {
  SKIP_WITHOUT_OBS();
  const auto make = [] {
    auto source =
        filter("numsrc")
            .rates(0, 0, 1)
            .iscalar("t", 0)
            .work(seq({let("t", v("t") + 1), push_(to_float(v("t")))}))
            .node();
    auto gain = filter("gain")
                    .rates(1, 1, 1)
                    .scalar("g", ir::Value(1.0))
                    .work(seq({push_(pop_() * v("g"))}))
                    .handler("setGain", {"x"}, seq({let("g", v("x"))}))
                    .node();
    auto monitor =
        filter("monitor")
            .rates(1, 1, 1)
            .work(seq({let("x", pop_()),
                       if_(v("x") == c(5.0),
                           ir::send("p", "setGain", {c(2.0).e}, 2, 2)),
                       push_(v("x"))}))
            .node();
    auto snk = filter("snk").rates(1, 1, 0).work(seq({discard(1)})).node();
    return ir::make_pipeline("rig", {source, gain, monitor, snk});
  };

  sched::ExecOptions opts;
  opts.trace = sched::TraceMode::On;
  msg::MessagingExecutor traced(make(), opts);
  traced.register_receiver("p", "gain");
  const auto out_traced = traced.run_steady(20);

  msg::MessagingExecutor plain(make());
  plain.register_receiver("p", "gain");
  expect_same_doubles(plain.run_steady(20), out_traced, "messaging output");

  ASSERT_EQ(traced.stats().sent, 1);
  ASSERT_EQ(traced.stats().delivered, 1);
  const obs::Recorder* rec = traced.executor().recorder();
  ASSERT_NE(rec, nullptr);
  int sends = 0, delivers = 0;
  for (const auto* tb : rec->buffers()) {
    for (const auto& ev : tb->events()) {
      if (ev.kind == obs::EventKind::MessageSend) ++sends;
      if (ev.kind == obs::EventKind::MessageDeliver) ++delivers;
    }
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(delivers, 1);
}

// ---- trace-mode resolution --------------------------------------------------

TEST(ObsTrace, ResolveTraceModes) {
  unsetenv("SIT_TRACE");
  EXPECT_FALSE(sched::resolve_trace(sched::TraceMode::Auto));
  EXPECT_FALSE(sched::resolve_trace(sched::TraceMode::Off));
  EXPECT_EQ(sched::resolve_trace(sched::TraceMode::On), obs::kCompiledIn);
  setenv("SIT_TRACE", "1", 1);
  EXPECT_EQ(sched::resolve_trace(sched::TraceMode::Auto), obs::kCompiledIn);
  EXPECT_FALSE(sched::resolve_trace(sched::TraceMode::Off));
  setenv("SIT_TRACE", "0", 1);
  EXPECT_FALSE(sched::resolve_trace(sched::TraceMode::Auto));
  setenv("SIT_TRACE", "on", 1);
  EXPECT_EQ(sched::resolve_trace(sched::TraceMode::Auto), obs::kCompiledIn);
  unsetenv("SIT_TRACE");
}

}  // namespace
}  // namespace sit
