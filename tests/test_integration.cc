// Whole-compiler integration tests: the full pipeline (author -> validate ->
// optimize -> parallelize -> simulate) on the real benchmark suite, with
// stream-equivalence checks wherever a transformation claims to preserve
// semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/apps.h"
#include "linear/optimize.h"
#include "machine/machine.h"
#include "parallel/strategies.h"
#include "parallel/transforms.h"
#include "sched/exec.h"

namespace sit {
namespace {

// The suite apps are closed (source ... sink).  To observe their stream we
// drop the final sink, exposing the program output edge.
ir::NodeP observable(const ir::NodeP& app) {
  if (app->kind != ir::Node::Kind::Pipeline || app->children.size() < 2) {
    return app;
  }
  std::vector<ir::NodeP> kids(app->children.begin(), app->children.end() - 1);
  return ir::make_pipeline(app->name + "_obs", kids);
}

std::vector<double> run(const ir::NodeP& g, int items) {
  sched::Executor ex(ir::clone(g));
  std::vector<double> out;
  int guard = 0;
  while (static_cast<int>(out.size()) < items && ++guard < 4000) {
    const auto got = ex.run_steady(1);
    out.insert(out.end(), got.begin(), got.end());
  }
  out.resize(static_cast<std::size_t>(items));
  return out;
}

void expect_equiv(const ir::NodeP& a, const ir::NodeP& b, int items,
                  double tol = 1e-7) {
  const auto xa = run(a, items);
  const auto xb = run(b, items);
  for (std::size_t i = 0; i < xa.size(); ++i) {
    ASSERT_NEAR(xa[i], xb[i], tol * std::max(1.0, std::fabs(xa[i])))
        << "at item " << i;
  }
}

class OptimizePreservesP : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizePreservesP, OptimizedAppComputesSameStream) {
  const auto app = observable(apps::make_app(GetParam()));
  linear::OptimizeStats stats;
  const auto opt = linear::optimize_selection(app, {}, &stats);
  EXPECT_LE(stats.cost_after, stats.cost_before * 1.0001) << stats.log();
  expect_equiv(app, opt, 60);
}

INSTANTIATE_TEST_SUITE_P(LinearSuite, OptimizePreservesP,
                         ::testing::Values("FIR", "RateConvert", "TargetDetect",
                                           "Oversampler", "DCT", "FMRadio",
                                           "FilterBank", "Vocoder"));

class DataParallelPreservesP : public ::testing::TestWithParam<const char*> {};

TEST_P(DataParallelPreservesP, TransformedAppComputesSameStream) {
  const auto app = observable(apps::make_app(GetParam()));
  const auto dp = parallel::data_parallelize(app, 4);
  expect_equiv(app, dp, 60);
}

INSTANTIATE_TEST_SUITE_P(ParallelSuite, DataParallelPreservesP,
                         ::testing::Values("DCT", "DES", "FMRadio",
                                           "BitonicSort", "Serpent", "Vocoder",
                                           "MPEG2Decoder"));

class SelectiveFusionPreservesP : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectiveFusionPreservesP, FusedAppComputesSameStream) {
  const auto app = observable(apps::make_app(GetParam()));
  const auto sf = parallel::selective_fusion(app, 6);
  EXPECT_LE(ir::count_filters(sf), std::max(6, 3));
  expect_equiv(app, sf, 60);
}

INSTANTIATE_TEST_SUITE_P(Suite, SelectiveFusionPreservesP,
                         ::testing::Values("DCT", "FMRadio", "Radar", "TDE",
                                           "ChannelVocoder"));

TEST(Integration, OptimizeThenParallelizeIsStillCorrect) {
  // The paper's full compiler: linear optimization first (fewer, denser
  // actors), then coarse-grained data parallelism, then mapping.
  const auto app = observable(apps::make_app("RateConvert"));
  const auto opt = linear::optimize_selection(app, {});
  const auto par = parallel::data_parallelize(opt, 4);
  expect_equiv(app, par, 60);
}

TEST(Integration, OptimizationIsIdempotent) {
  const auto app = observable(apps::make_app("Oversampler"));
  linear::OptimizeStats s1, s2;
  const auto once = linear::optimize_selection(app, {}, &s1);
  const auto twice = linear::optimize_selection(once, {}, &s2);
  EXPECT_NEAR(s2.cost_after, s1.cost_after, 1e-6 * (1.0 + s1.cost_after));
  expect_equiv(once, twice, 40);
}

TEST(Integration, OptimizedGraphMapsAtLeastAsWell) {
  // Collapsing the FilterBank should not hurt (and usually helps) the
  // mapped throughput, since the combined filter is stateless and fissable.
  machine::MachineConfig cfg;
  const auto app = apps::make_app("FilterBank");
  const auto opt = linear::optimize_selection(app, {});
  const auto before =
      parallel::run_strategy(app, parallel::Strategy::TaskDataSwp, cfg);
  const auto after =
      parallel::run_strategy(opt, parallel::Strategy::TaskDataSwp, cfg);
  // Normalized per item, the optimized graph does strictly less work, so the
  // single-core baseline shrinks; the mapped version must still be a win
  // over its own baseline.
  EXPECT_GT(after.speedup_vs_single, 1.5);
  EXPECT_GT(before.speedup_vs_single, 1.5);
}

TEST(Integration, EveryStrategyRunsOnEveryBenchmark) {
  machine::MachineConfig cfg;
  for (const auto& info : apps::all_apps()) {
    if (!info.parallel_suite) continue;
    const auto app = info.make();
    for (auto s : {parallel::Strategy::SingleCore, parallel::Strategy::TaskParallel,
                   parallel::Strategy::TaskData, parallel::Strategy::TaskSwp,
                   parallel::Strategy::TaskDataSwp, parallel::Strategy::SpaceMultiplex}) {
      const auto r = parallel::run_strategy(app, s, cfg);
      EXPECT_GT(r.sim.cycles_per_steady, 0.0)
          << info.name << " / " << parallel::to_string(s);
      EXPECT_GE(r.speedup_vs_single, 0.1)
          << info.name << " / " << parallel::to_string(s);
      EXPECT_LE(r.sim.utilization, 1.0 + 1e-9);
    }
  }
}

TEST(Integration, SpeedupNeverExceedsCoreCount) {
  machine::MachineConfig cfg;
  for (const auto& info : apps::all_apps()) {
    if (!info.parallel_suite) continue;
    const auto r = parallel::run_strategy(info.make(),
                                          parallel::Strategy::TaskDataSwp, cfg);
    EXPECT_LE(r.speedup_vs_single, cfg.cores() + 1e-6) << info.name;
  }
}

}  // namespace
}  // namespace sit
