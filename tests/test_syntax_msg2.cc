// Tests for the StreamIt surface-syntax emitter and additional messaging
// scenarios (multiple receivers, repeated messages, interval latencies).

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "ir/dsl.h"
#include "ir/streamit_syntax.h"
#include "msg/messaging.h"

namespace sit::ir {
namespace {

using namespace sit::ir::dsl;

TEST(StreamItSyntax, FilterRendersAppendixStyle) {
  const FilterSpec f = filter("Gain")
                           .rates(1, 1, 1)
                           .scalar("g", Value(2.0))
                           .work(seq({push_(pop_() * v("g"))}))
                           .handler("setGain", {"x"}, seq({let("g", v("x"))}))
                           .build();
  const std::string code = filter_to_streamit(f);
  EXPECT_NE(code.find("extends Filter"), std::string::npos);
  EXPECT_NE(code.find("Channel input = new FloatChannel()"), std::string::npos);
  EXPECT_NE(code.find("output.push((input.pop() * g));"), std::string::npos);
  EXPECT_NE(code.find("void setGain(float x)"), std::string::npos);
}

TEST(StreamItSyntax, PipelineAndSplitJoinStructure) {
  auto sj = make_splitjoin("Eq", duplicate_split(), roundrobin_join({1, 1}),
                           {dsl::identity("A"), dsl::identity("B")});
  auto p = make_pipeline("Radio", {dsl::identity("Pre"), sj});
  const std::string code = to_streamit(p);
  EXPECT_NE(code.find("extends SplitJoin"), std::string::npos);
  EXPECT_NE(code.find("setSplitter(DUPLICATE);"), std::string::npos);
  EXPECT_NE(code.find("setJoiner(WEIGHTED_ROUND_ROBIN(1, 1));"), std::string::npos);
  EXPECT_NE(code.find("class Main extends Stream"), std::string::npos);
  // Every distinct instance gets a distinct class name.
  EXPECT_NE(code.find("class A "), std::string::npos);
  EXPECT_NE(code.find("class B "), std::string::npos);
}

TEST(StreamItSyntax, FeedbackLoopRendersInitPath) {
  auto body = filter("Body").rates(2, 2, 2)
                  .work(seq({let("s", pop_() + pop_()), push_(v("s")), push_(v("s"))}))
                  .node();
  auto fb = make_feedback("Echo", roundrobin_join({1, 1}), body,
                          roundrobin_split({1, 1}), dsl::identity("Loop"), 2,
                          {0.5, 0.25});
  const std::string code = to_streamit(fb);
  EXPECT_NE(code.find("extends FeedbackLoop"), std::string::npos);
  EXPECT_NE(code.find("setDelay(2);"), std::string::npos);
  EXPECT_NE(code.find("float initPath(int index)"), std::string::npos);
  EXPECT_NE(code.find("0.5f"), std::string::npos);
}

TEST(StreamItSyntax, SendRendersAsPortalInvocation) {
  auto f = filter("Check")
               .rates(1, 1, 1)
               .work(seq({let("x", pop_()),
                          ir::send("hop", "setf", {c(2.0).e}, 4, 6),
                          push_(v("x"))}))
               .build();
  const std::string code = filter_to_streamit(f);
  EXPECT_NE(code.find("hop.setf(2f, new TimeInterval(4, 6));"), std::string::npos);
}

TEST(StreamItSyntax, WholeBenchmarkEmits) {
  // The full FMRadio renders without error and mentions its key pieces.
  const std::string code = to_streamit(sit::apps::make_app("FMRadio"));
  EXPECT_NE(code.find("class equalizer"), std::string::npos);
  EXPECT_GT(code.size(), 2000u);
}

}  // namespace
}  // namespace sit::ir

namespace sit::msg {
namespace {

using namespace sit::ir;
using namespace sit::ir::dsl;

NodeP counter_source(const std::string& name) {
  return filter(name)
      .rates(0, 0, 1)
      .iscalar("t", 0)
      .work(seq({let("t", v("t") + 1), push_(to_float(v("t")))}))
      .node();
}

TEST(MessagingMore, OnePortalManyReceivers) {
  // Two gain filters in sequence, both registered on the same portal.
  auto g1 = filter("g1")
                .rates(1, 1, 1)
                .scalar("g", Value(1.0))
                .work(seq({push_(pop_() * v("g"))}))
                .handler("set", {"x"}, seq({let("g", v("x"))}))
                .node();
  auto g2 = filter("g2")
                .rates(1, 1, 1)
                .scalar("g", Value(1.0))
                .work(seq({push_(pop_() * v("g"))}))
                .handler("set", {"x"}, seq({let("g", v("x"))}))
                .node();
  auto mon = filter("mon")
                 .rates(1, 1, 1)
                 .work(seq({let("x", pop_()),
                            if_(v("x") == c(4.0),
                                ir::send("p", "set", {c(3.0).e}, 1, 1)),
                            push_(v("x"))}))
                 .node();
  auto snk = filter("snk").rates(1, 1, 0).work(seq({discard(1)})).node();
  auto g = make_pipeline("rig", {counter_source("src"), g1, g2, mon, snk});

  MessagingExecutor ex(g);
  ex.register_receiver("p", "g1");
  ex.register_receiver("p", "g2");
  ex.run_steady(20);
  EXPECT_EQ(ex.stats().sent, 1);
  EXPECT_EQ(ex.stats().delivered, 2);  // one message, two receivers
  // Both receivers got it on their own wavefront.
  ASSERT_EQ(ex.stats().deliveries.size(), 2u);
  EXPECT_EQ(ex.stats().deliveries[0].receiver_firing, 5);
  EXPECT_EQ(ex.stats().deliveries[1].receiver_firing, 5);
}

TEST(MessagingMore, RepeatedMessagesAllDeliverInOrder) {
  auto gain = filter("gain")
                  .rates(1, 1, 1)
                  .scalar("g", Value(1.0))
                  .work(seq({push_(pop_() * v("g"))}))
                  .handler("bump", {"x"}, seq({let("g", v("g") + v("x"))}))
                  .node();
  auto mon = filter("mon")
                 .rates(1, 1, 1)
                 .work(seq({let("x", pop_()),
                            if_(to_int(v("x")) % ci(5) == ci(0),
                                ir::send("p", "bump", {c(1.0).e}, 2, 2)),
                            push_(v("x"))}))
                 .node();
  auto snk = filter("snk").rates(1, 1, 0).work(seq({discard(1)})).node();
  auto g = make_pipeline("rig", {counter_source("src"), gain, mon, snk});
  MessagingExecutor ex(g);
  ex.register_receiver("p", "gain");
  ex.run_steady(47);
  const auto& st = ex.stats();
  EXPECT_GE(st.sent, 8);
  EXPECT_GE(st.delivered, st.sent - 1);
  for (std::size_t i = 1; i < st.deliveries.size(); ++i) {
    EXPECT_GT(st.deliveries[i].receiver_firing,
              st.deliveries[i - 1].receiver_firing);
  }
}

TEST(MessagingMore, LatencyIntervalUsesUpperBoundForDelivery) {
  // Same rig as the upstream test but latency interval [1, 3]: delivery must
  // land after firing sent_at + 3 (the max), while the schedule constraint
  // uses the min.
  auto gain = filter("gain")
                  .rates(1, 1, 1)
                  .scalar("g", Value(1.0))
                  .work(seq({push_(pop_() * v("g"))}))
                  .handler("set", {"x"}, seq({let("g", v("x"))}))
                  .node();
  auto mon = filter("mon")
                 .rates(1, 1, 1)
                 .work(seq({let("x", pop_()),
                            if_(v("x") == c(6.0),
                                ir::send("p", "set", {c(0.0).e}, 1, 3)),
                            push_(v("x"))}))
                 .node();
  auto snk = filter("snk").rates(1, 1, 0).work(seq({discard(1)})).node();
  auto g = make_pipeline("rig", {counter_source("src"), gain, mon, snk});
  MessagingExecutor ex(g);
  ex.register_receiver("p", "gain");
  ex.run_steady(20);
  ASSERT_EQ(ex.stats().deliveries.size(), 1u);
  EXPECT_EQ(ex.stats().deliveries[0].receiver_firing, 9);  // 6 + lat_max 3
}

}  // namespace
}  // namespace sit::msg
