// Reproduces Figure "vs-space": the combined technique (Task+Data+SWP)
// normalized to the prior-work space-multiplexed baseline (one filter per
// tile after fusing to 16).  Paper: the combined technique wins overall
// (e.g. beamformer +38%, vocoder +30%); space multiplexing stays competitive
// on long load-balanceable pipelines with little splitting (TDE, Serpent).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using sit::parallel::Strategy;
  sit::machine::MachineConfig cfg;

  std::printf("Figure: Task+Data+SWP normalized to space-multiplexed prior "
              "work (16 cores)\n");
  std::printf("%-14s %12s %14s %12s\n", "Benchmark", "Space", "T+D+SWP",
              "Ratio");
  sit::bench::rule(58);

  std::vector<double> ratio;
  for (const auto& name : sit::bench::parallel_suite_names()) {
    const auto app = sit::apps::make_app(name);
    const auto sp = sit::parallel::run_strategy(app, Strategy::SpaceMultiplex, cfg);
    const auto cb = sit::parallel::run_strategy(app, Strategy::TaskDataSwp, cfg);
    const double r = sp.speedup_vs_single > 0
                         ? cb.speedup_vs_single / sp.speedup_vs_single
                         : 0.0;
    std::printf("%-14s %11.2fx %13.2fx %11.2fx\n", name.c_str(),
                sp.speedup_vs_single, cb.speedup_vs_single, r);
    if (r > 0) ratio.push_back(r);
  }
  sit::bench::rule(58);
  std::printf("%-14s %*s %13s %11.2fx\n", "geomean", 12, "", "",
              sit::bench::geomean(ratio));
  std::printf("\nPaper shape: combined technique ahead on average; space "
              "multiplexing closest on long pipelines (TDE, Serpent).\n");
  return 0;
}
