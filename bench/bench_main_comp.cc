// Reproduces Figure "main_comp": throughput speedup over single-core for
// Task, Task+Data, and Task+Data+SWP on the 16-core machine.
// Paper geomeans: 2.27x (task), 9.9x (task+data), ~14.4x with SWP on top
// (an additional 1.45x).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using sit::parallel::Strategy;
  sit::machine::MachineConfig cfg;  // 4x4 grid

  std::printf("Figure: Task, Task+Data, Task+Data+SWP speedup vs single core "
              "(16 cores)\n");
  std::printf("%-14s %10s %12s %16s\n", "Benchmark", "Task", "Task+Data",
              "Task+Data+SWP");
  sit::bench::rule(60);

  std::vector<double> t, td, tds;
  for (const auto& name : sit::bench::parallel_suite_names()) {
    const auto app = sit::apps::make_app(name);
    const auto rt = sit::parallel::run_strategy(app, Strategy::TaskParallel, cfg);
    const auto rd = sit::parallel::run_strategy(app, Strategy::TaskData, cfg);
    const auto rc = sit::parallel::run_strategy(app, Strategy::TaskDataSwp, cfg);
    std::printf("%-14s %9.2fx %11.2fx %15.2fx\n", name.c_str(),
                rt.speedup_vs_single, rd.speedup_vs_single, rc.speedup_vs_single);
    t.push_back(rt.speedup_vs_single);
    td.push_back(rd.speedup_vs_single);
    tds.push_back(rc.speedup_vs_single);
  }
  sit::bench::rule(60);
  std::printf("%-14s %9.2fx %11.2fx %15.2fx\n", "geomean",
              sit::bench::geomean(t), sit::bench::geomean(td),
              sit::bench::geomean(tds));
  std::printf("\nPaper: 2.27x / 9.9x / ~14.4x (+1.45x from SWP on top of data "
              "parallelism).\n");
  return 0;
}
