// Threaded-runtime scaling: the canonical speedup-vs-threads harness.
//
//   bench_scaling [--smoke] [--threads=1,2,4,8] [--gate=<threshold-file>]
//                 [--out=BENCH_parallel.json]
//
// For each app (FIR, FilterBank, FMRadio) we measure the sequential VM
// Executor on the original graph, then the batched ThreadedExecutor on the
// coarsen-shaped graph (pipeline "validate,analysis-gate,coarsen"; batch
// factor from SIT_BATCH, default auto) for each requested thread count.
// Throughput is normalized to items emitted by the graph's *source* actor
// per second, which is invariant under fusion/fission (the stateful source
// is never replicated), so rows are comparable even though each transformed
// graph has its own steady state.
//
// Writes BENCH_parallel.json (bench_util stamps git SHA / engine / host; the
// host block carries "authoritative": false when the sweep asked for more
// workers than the host has cpus, so trajectory tooling can refuse the
// numbers).
//
// --gate reads a minimum speedup(maxT)/speedup(1) ratio from a checked-in
// threshold file and exits nonzero when any app regresses below it.  The
// gate is skipped (exit 0, with a notice) on hosts with fewer cpus than the
// largest measured thread count: an oversubscribed run measures scheduler
// contention, not the runtime.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "opt/compile.h"
#include "sched/texec.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Items the source actor emits per steady state of this particular graph.
std::int64_t source_items_per_steady(const sit::runtime::FlatGraph& g,
                                     const sit::sched::Schedule& s) {
  if (s.input_per_steady > 0) return s.input_per_steady;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const auto& a = g.actors[i];
    bool has_in = false;
    for (int e : a.in_edges) has_in |= e >= 0;
    if (!has_in) return s.reps[i] * a.push_rate();
  }
  return 0;
}

// Run batches of steady states until `min_ms` of wall time accumulates;
// returns steady states per second.
template <typename Ex>
double steadies_per_sec(Ex& ex, int batch, double min_ms, int max_batches) {
  const auto t0 = Clock::now();
  int batches = 0;
  do {
    ex.run_steady(batch);
    ++batches;
  } while (ms_since(t0) < min_ms && batches < max_batches);
  const double ms = ms_since(t0);
  return ms > 0 ? 1000.0 * batches * batch / ms : 0.0;
}

struct BenchApp {
  const char* name;
  sit::ir::NodeP (*make)();
};

std::vector<int> parse_threads(const char* csv) {
  std::vector<int> out;
  for (const char* p = csv; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v >= 1) out.push_back(static_cast<int>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

// The gate threshold file holds one number: the minimum acceptable
// speedup(maxT)/speedup(1) ratio (comments after '#' ignored).
double read_threshold(const std::string& path) {
  std::ifstream f(path);
  if (!f) return -1.0;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    char* end = nullptr;
    const double v = std::strtod(line.c_str(), &end);
    if (end != line.c_str()) return v;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string gate_file;
  std::string out_path = "BENCH_parallel.json";
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts = parse_threads(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--gate=", 7) == 0) {
      gate_file = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: bench_scaling [--smoke] [--threads=1,2,4] "
                   "[--gate=<file>] [--out=<json>]\n");
      return 2;
    }
  }
  if (thread_counts.empty()) {
    std::fprintf(stderr, "bench_scaling: empty --threads list\n");
    return 2;
  }
  const int max_threads =
      *std::max_element(thread_counts.begin(), thread_counts.end());
  const int warm = smoke ? 2 : 8;
  const int batch = smoke ? 4 : 16;
  // A gated smoke run still needs enough wall time per configuration for the
  // speedup ratio to be stable; ungated smoke is a pure does-it-run probe.
  const double min_ms = smoke ? (gate_file.empty() ? 0.0 : 100.0) : 300.0;
  const int max_batches = smoke ? (gate_file.empty() ? 1 : 100) : 200;

  const std::vector<BenchApp> benches = {
      {"FIR", [] { return sit::apps::make_fir_app(128); }},
      {"FilterBank", [] { return sit::apps::make_filter_bank(); }},
      {"FMRadio", [] { return sit::apps::make_fm_radio(); }},
  };

  std::vector<sit::bench::BenchRecord> records;
  // speedups[app][threads] feeds the regression gate.
  std::map<std::string, std::map<int, double>> speedups;
  // Per-actor/worker attribution for the last threaded configuration,
  // stamped into the JSON so the perf trajectory can see inside the rates.
  sit::obs::MetricsSnapshot metrics;
  bool have_metrics = false;
  std::printf("%-12s %8s %14s %9s %10s %6s %6s\n", "app", "threads", "items/s",
              "speedup", "predicted", "rings", "batch");
  sit::bench::rule(72);

  for (const auto& b : benches) {
    sit::sched::ExecOptions seq_opts;
    seq_opts.count_ops = false;
    seq_opts.engine = sit::sched::Engine::Vm;
    sit::sched::Executor seq(b.make(), seq_opts);
    const std::int64_t seq_items =
        source_items_per_steady(seq.graph(), seq.schedule());
    seq.run_steady(warm);
    const double seq_rate =
        steadies_per_sec(seq, batch, min_ms, max_batches) *
        static_cast<double>(seq_items);
    std::printf("%-12s %8s %14.0f %9s %10s %6s %6s\n", b.name, "seq", seq_rate,
                "1.00", "-", "-", "-");
    records.push_back({std::string(b.name) + "/seq",
                       {{"threads", 1.0}, {"items_per_sec", seq_rate},
                        {"speedup", 1.0}}});

    for (int t : thread_counts) {
      sit::sched::ExecOptions opts;
      opts.count_ops = false;
      opts.engine = sit::sched::Engine::Vm;
      opts.threads = t;
      // Compile through the pipeline's coarsen pass (fuse-then-fiss to ~one
      // well-sized actor per worker) so the artifact records the pipeline
      // and per-pass stats for the JSON's metrics snapshot.
      sit::opt::CompileOptions copts;
      copts.passes = "validate,analysis-gate,coarsen";
      copts.exec.threads = t;
      sit::sched::ThreadedExecutor tex(sit::opt::compile(b.make(), copts),
                                       opts);
      const std::int64_t items =
          source_items_per_steady(tex.graph(), tex.schedule());
      tex.run_steady(warm);  // init + calibration + first threaded steps
      const double rate = steadies_per_sec(tex, batch, min_ms, max_batches) *
                          static_cast<double>(items);
      const auto& rep = tex.report();
      const double speedup = seq_rate > 0 ? rate / seq_rate : 0.0;
      speedups[b.name][t] = speedup;
      // Sequential fallbacks never run the partitioner, so the report's
      // predicted_speedup is an uninitialized-looking 0; a one-thread run
      // trivially predicts 1x.
      const double predicted = rep.threaded ? rep.predicted_speedup : 1.0;
      std::printf("%-12s %8d %14.0f %9.2f %10.2f %6d %6d\n", b.name, t, rate,
                  speedup, predicted, rep.ring_edges, rep.batch);
      records.push_back(
          {std::string(b.name) + "/t" + std::to_string(t),
           {{"threads", static_cast<double>(t)},
            {"items_per_sec", rate},
            {"speedup", speedup},
            {"predicted_speedup", predicted},
            {"threaded", rep.threaded ? 1.0 : 0.0},
            {"batch", static_cast<double>(rep.batch)},
            {"ring_edges", static_cast<double>(rep.ring_edges)}}});
      if (rep.threaded) {
        metrics = tex.metrics_snapshot();
        metrics.app = b.name;
        have_metrics = true;
      }
    }
    sit::bench::rule(72);
  }

  if (!sit::bench::write_bench_json(out_path, "parallel_scaling", records,
                                    have_metrics ? &metrics : nullptr,
                                    max_threads)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());

  if (!gate_file.empty()) {
    const unsigned cpus = std::thread::hardware_concurrency();
    if (cpus > 0 && static_cast<int>(cpus) < max_threads) {
      std::printf("gate: skipped -- %u-cpu host cannot run %d workers "
                  "authoritatively\n", cpus, max_threads);
      return 0;
    }
    const double threshold = read_threshold(gate_file);
    if (threshold <= 0.0) {
      std::fprintf(stderr, "gate: unreadable threshold file %s\n",
                   gate_file.c_str());
      return 2;
    }
    bool ok = true;
    for (const auto& [app, by_threads] : speedups) {
      const auto s1 = by_threads.find(1);
      const auto sN = by_threads.find(max_threads);
      if (s1 == by_threads.end() || sN == by_threads.end() ||
          s1->second <= 0.0) {
        std::fprintf(stderr, "gate: %s missing t=1 or t=%d row\n", app.c_str(),
                     max_threads);
        ok = false;
        continue;
      }
      const double ratio = sN->second / s1->second;
      const bool pass = ratio >= threshold;
      std::printf("gate: %-12s speedup(%d)/speedup(1) = %.2f (>= %.2f) %s\n",
                  app.c_str(), max_threads, ratio, threshold,
                  pass ? "ok" : "FAIL");
      ok = ok && pass;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "gate: threaded scaling regressed below %s\n",
                   gate_file.c_str());
      return 1;
    }
  }
  return 0;
}
