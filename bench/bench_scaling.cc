// Extension study (the paper's future-work direction): how the three
// techniques scale with core count.  The paper evaluates only the 16-tile
// Raw; the simulator lets us sweep the grid from 2x2 to 8x8 and watch where
// each technique saturates -- data parallelism tracks the core count until
// synchronization catches up; software pipelining saturates at the number of
// load-balanceable actors; task parallelism saturates at the graph width.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using sit::parallel::Strategy;
  struct Grid {
    int w, h;
  };
  const Grid grids[] = {{2, 2}, {4, 2}, {4, 4}, {8, 4}, {8, 8}};

  for (const char* name : {"DCT", "FilterBank", "Radar", "Serpent"}) {
    std::printf("%s: speedup vs single core\n", name);
    std::printf("  %-16s", "cores:");
    for (const auto& g : grids) std::printf(" %6d", g.w * g.h);
    std::printf("\n");
    for (Strategy s : {Strategy::TaskParallel, Strategy::TaskData,
                       Strategy::TaskDataSwp}) {
      std::printf("  %-16s", sit::parallel::to_string(s));
      for (const auto& g : grids) {
        sit::machine::MachineConfig cfg;
        cfg.grid_w = g.w;
        cfg.grid_h = g.h;
        const auto app = sit::apps::make_app(name);
        const auto r = sit::parallel::run_strategy(app, s, cfg);
        std::printf(" %5.1fx", r.speedup_vs_single);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Expected shape: task parallelism flat (graph width bound);\n"
              "data parallelism tracks cores until duplication/sync binds;\n"
              "the combined technique scales furthest.\n");
  return 0;
}
