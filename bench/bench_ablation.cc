// Ablations of the design choices DESIGN.md calls out:
//   A. optimization selection: combination-only vs frequency-only vs both;
//   B. fission width: how many ways to fiss on the 16-core machine;
//   C. FFT-size sensitivity of frequency translation;
//   D. the sync-weight tie-breaker in the selection cost model.

#include <cstdio>

#include "bench/bench_util.h"
#include "linear/cost.h"
#include "linear/frequency.h"
#include "linear/matrix.h"
#include "linear/optimize.h"
#include "parallel/strategies.h"
#include "parallel/transforms.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace {

double cost_per_item(const sit::ir::NodeP& app) {
  const auto c = sit::linear::node_cost(app);
  // Closed programs: normalize by per-steady source production.
  const auto g = sit::runtime::flatten(app);
  const auto s = sit::sched::make_schedule(g);
  double src_items = 0.0;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    bool has_in = false;
    for (int e : g.actors[i].in_edges) has_in = has_in || e >= 0;
    if (!has_in) {
      for (std::size_t p = 0; p < g.actors[i].out_rate.size(); ++p) {
        src_items += static_cast<double>(s.reps[i] * g.actors[i].out_rate[p]);
      }
    }
  }
  return src_items > 0 ? (c.ops_per_ss + 0.05 * c.sync_per_ss) / src_items : 0.0;
}

double source_items(const sit::parallel::Placement& p) {
  std::vector<bool> has_in(p.actors.size(), false);
  std::vector<double> produced(p.actors.size(), 0.0);
  for (const auto& e : p.edges) {
    if (e.dst_actor >= 0 && e.src_actor >= 0) has_in[static_cast<std::size_t>(e.dst_actor)] = true;
    if (e.src_actor >= 0) produced[static_cast<std::size_t>(e.src_actor)] += e.items;
  }
  double t = 0.0;
  for (std::size_t i = 0; i < p.actors.size(); ++i) {
    if (!has_in[i]) t += produced[i];
  }
  return t;
}

}  // namespace

int main() {
  using sit::linear::OptimizeOptions;

  // Machine-readable mirror of ablation A (the selection result the paper's
  // headline depends on), stamped -- like every BENCH_*.json -- with the
  // cost model that drove selection, so a calibrated-profile run is never
  // confused with a static-model run in the trajectory.
  std::vector<sit::bench::BenchRecord> records;

  // ---- A: which optimization matters where --------------------------------
  std::printf("Ablation A: optimization selection variants (speedup vs "
              "direct, cost model)\n");
  std::printf("%-14s %12s %12s %10s\n", "Benchmark", "CombineOnly", "FreqOnly",
              "Both");
  sit::bench::rule(54);
  for (const auto& name : sit::bench::linear_suite_names()) {
    const auto app = sit::apps::make_app(name);
    const double direct = cost_per_item(app);
    OptimizeOptions comb;
    comb.enable_frequency = false;
    OptimizeOptions freq;
    freq.enable_combination = false;
    const double c1 = cost_per_item(sit::linear::optimize_selection(app, comb));
    const double c2 = cost_per_item(sit::linear::optimize_selection(app, freq));
    const double c3 = cost_per_item(sit::linear::optimize_selection(app, {}));
    std::printf("%-14s %11.2fx %11.2fx %9.2fx\n", name.c_str(), direct / c1,
                direct / c2, direct / c3);
    records.push_back({name,
                       {{"direct_cost_per_item", direct},
                        {"speedup_combine_only", direct / c1},
                        {"speedup_frequency_only", direct / c2},
                        {"speedup_both", direct / c3}}});
  }

  // ---- B: fission width ------------------------------------------------------
  std::printf("\nAblation B: fission width on the 16-core machine "
              "(Task+Data speedup)\n");
  std::printf("%-14s", "Benchmark");
  const int widths[] = {2, 4, 8, 16, 32};
  for (int w : widths) std::printf(" %7dw", w);
  std::printf("\n");
  sit::bench::rule(58);
  sit::machine::MachineConfig cfg;
  for (const char* name : {"DCT", "FilterBank", "DES"}) {
    const auto app = sit::apps::make_app(name);
    // Single-core baseline per item.
    auto base_p = sit::parallel::build_placement(app);
    sit::machine::MachineConfig one;
    one.grid_w = one.grid_h = 1;
    const auto base =
        sit::machine::simulate(one, base_p.actors, base_p.edges,
                               sit::machine::ExecMode::Pipelined);
    const double base_per_item = base.cycles_per_steady / source_items(base_p);
    std::printf("%-14s", name);
    for (int w : widths) {
      const auto g = sit::parallel::data_parallelize(sit::ir::clone(app), w);
      auto p = sit::parallel::build_placement(g);
      sit::parallel::place_lpt(p, cfg);
      const auto r = sit::machine::simulate(cfg, p.actors, p.edges,
                                            sit::machine::ExecMode::DataFlow);
      const double per_item = r.cycles_per_steady / source_items(p);
      std::printf(" %7.2fx", base_per_item / per_item);
    }
    std::printf("\n");
  }
  std::printf("(16-way matches the core count; wider fission only adds "
              "synchronization.)\n");

  // ---- C: FFT-size sensitivity -------------------------------------------------
  std::printf("\nAblation C: frequency translation cost vs FFT size "
              "(128-tap FIR, flops per output)\n");
  sit::linear::LinearRep fir;
  fir.pop = 1;
  fir.peek = 128;
  fir.push = 1;
  fir.A = sit::linear::Matrix(1, 128);
  for (int i = 0; i < 128; ++i) fir.A.at(0, static_cast<std::size_t>(i)) = 1.0;
  fir.b = {0.0};
  std::printf("  direct: %.0f\n", fir.cost_flops_per_firing());
  for (std::size_t n = 256; n <= 8192; n <<= 1) {
    std::printf("  fft %5zu: %.1f%s\n", n,
                sit::linear::frequency_cost_per_firing(fir, n),
                n == sit::linear::best_fft_size(fir) ? "   <- selected" : "");
  }

  // ---- D: sync-weight tie breaker ------------------------------------------------
  std::printf("\nAblation D: sync weight in the selection cost model "
              "(FMRadio actor count after optimization)\n");
  for (double wgt : {0.0, 0.05, 0.5, 2.0}) {
    OptimizeOptions o;
    o.sync_weight = wgt;
    const auto g = sit::linear::optimize_selection(sit::apps::make_app("FMRadio"), o);
    std::printf("  sync_weight %.2f -> %d leaf actors, cost/item %.1f\n", wgt,
                sit::ir::count_filters(g), cost_per_item(g));
  }

  if (!sit::bench::write_bench_json("BENCH_ablation.json",
                                    "optimization_ablation", records)) {
    std::fprintf(stderr, "bench_ablation: cannot write BENCH_ablation.json\n");
    return 1;
  }
  return 0;
}
