// Fused-engine throughput: how close does the whole-program steady-state
// trace (sched::Engine::Fused) get to a handwritten loop nest, and how far
// past the per-actor bytecode VM does it pull?
//
//   bench_fused [--smoke] [--gate=<threshold-file>] [--out=BENCH_fused.json]
//
// For each app (FIR, Vocoder, FilterBank) we measure five implementations of
// the same computation:
//
//   handwritten  plain C++ loop nests over flat arrays -- same LCG source,
//                same coefficient formulas as apps/common.cc, no framework.
//                This is the performance ceiling.  It is written the way a
//                C programmer would write it (FilterBank skips band outputs
//                the decimator would discard), so the handwritten ratio
//                bounds interpreter overhead from below.
//   tree         sequential Executor, tree-walking interpreter
//   vm           sequential Executor, per-actor bytecode VM
//   fused        sequential Executor, whole-program fused trace with
//                superinstructions, tagged registers (SIT_TYPED=0)
//   typed        the fused trace lowered onto the dual-plane (unboxed
//                double) register file where type inference proves it safe
//                (SIT_TYPED=1, the default)
//
// tree/vm/fused pin typed mode off so their numbers stay comparable with
// history; the typed row is the same trace with only the value plane
// changed, so typed/fused isolates the unboxing win.
//
// Throughput is items emitted by the source actor per second, the same
// normalization as bench_scaling.  Results land in BENCH_fused.json
// (bench_util stamps git SHA / host provenance); the embedded metrics
// snapshot is the typed fused FIR run, so the JSON also records which
// superinstructions were selected, how many channels were lowered, and the
// typed_actors / typed_regs / typed_channels specialization counters.
//
// --gate reads thresholds from a checked-in file (bench/fused_gate.txt):
// the first number is the minimum fused/vm throughput ratio on FIR, an
// optional second number the minimum typed/fused ratio.  Exit is nonzero
// when either regresses.  The gate self-skips (exit 0, with a notice) on
// sanitizer builds -- instrumentation swamps dispatch cost -- and on
// single-cpu hosts where timer noise dominates.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "sched/exec.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SIT_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SIT_BENCH_SANITIZED 1
#endif
#endif
#ifndef SIT_BENCH_SANITIZED
#define SIT_BENCH_SANITIZED 0
#endif

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---- handwritten reference kernels ------------------------------------------
//
// Identical arithmetic to the stream programs: the rand_source LCG and the
// windowed-sinc coefficient formulas from apps/common.cc, transcribed to
// plain C++.

struct Lcg {
  std::int64_t seed{42};
  double next() {
    seed = (seed * 1103515245 + 12345) & ((1LL << 31) - 1);
    return static_cast<double>(seed) / 2147483648.0 - 0.5;
  }
};

std::vector<double> lowpass_taps(int taps, double fc) {
  const double pi = std::numbers::pi;
  const double center = (taps - 1) / 2.0;
  std::vector<double> h(static_cast<std::size_t>(taps));
  for (int i = 0; i < taps; ++i) {
    const double x = (i - center) * 2.0 * pi * fc;
    const double s = x == 0.0 ? 2.0 * fc : 2.0 * fc * std::sin(x) / x;
    h[static_cast<std::size_t>(i)] =
        s * (0.54 - 0.46 * std::cos(2.0 * pi * i / (taps - 1)));
  }
  return h;
}

std::vector<double> bandpass_taps(int taps, double lo, double hi) {
  const double pi = std::numbers::pi;
  const double center = (taps - 1) / 2.0;
  const auto sinc_term = [&](int i, double f) {
    const double x = (i - center) * 2.0 * pi * f;
    return x == 0.0 ? 2.0 * f : 2.0 * f * std::sin(x) / x;
  };
  std::vector<double> h(static_cast<std::size_t>(taps));
  for (int i = 0; i < taps; ++i) {
    h[static_cast<std::size_t>(i)] = sinc_term(i, hi) - sinc_term(i, lo);
  }
  return h;
}

// Peek window: peek(0) is the oldest of the last N samples (N a power of
// two so the modulo folds to a mask).
template <int N>
struct Ring {
  static_assert((N & (N - 1)) == 0, "window sizes are powers of two");
  double buf[N] = {};
  unsigned pos = 0;  // next write slot; once full, also the oldest (mod N)
  void push(double x) {
    buf[pos % N] = x;
    ++pos;
  }
  double dot(const double* h) const {
    double s = 0.0;
    for (int i = 0; i < N; ++i) s += h[i] * buf[(pos + static_cast<unsigned>(i)) % N];
    return s;
  }
};

// FIR: LCG source -> 128-tap lowpass (fc 0.2) -> sink.
double handwritten_fir(std::int64_t items) {
  static const std::vector<double> h = lowpass_taps(128, 0.2);
  Lcg src;
  Ring<128> win;
  double acc = 0.0;
  for (std::int64_t n = 0; n < items; ++n) {
    win.push(src.next());
    acc += win.dot(h.data());
  }
  return acc;
}

// Vocoder: 8 32-tap bandpass bands over a shared window, summed, rectified,
// AGC'd, smoothed, then a 32-tap output lowpass.
double handwritten_vocoder(std::int64_t items) {
  static const std::vector<std::vector<double>> bands = [] {
    std::vector<std::vector<double>> hs;
    for (int b = 0; b < 8; ++b) {
      const double lo = 0.5 * b / 8;
      hs.push_back(bandpass_taps(32, lo, lo + 0.5 / 8));
    }
    return hs;
  }();
  static const std::vector<double> hout = lowpass_taps(32, 0.4);
  Lcg src;
  Ring<32> win;
  Ring<32> owin;
  double env = 0.1;
  double sm = 0.0;
  double acc = 0.0;
  for (std::int64_t n = 0; n < items; ++n) {
    win.push(src.next());
    double sum = 0.0;
    for (const auto& h : bands) sum += win.dot(h.data());
    const double r = std::fabs(sum);
    env = env * 0.95 + r * 0.05;
    const double g = r / (env + 0.01);
    sm = sm * 0.7 + g * 0.3;
    owin.push(sm);
    acc += owin.dot(hout.data());
  }
  return acc;
}

// FilterBank: per block of 8 inputs, each of 8 bands runs a 64-tap analysis
// bandpass, decimates by 8, zero-stuff upsamples by 8, and a 32-tap
// synthesis lowpass; bands are summed.  A C programmer only evaluates the
// analysis filter at the sample the decimator keeps.
double handwritten_filter_bank(std::int64_t blocks) {
  static const std::vector<std::vector<double>> analysis = [] {
    std::vector<std::vector<double>> hs;
    for (int b = 0; b < 8; ++b) {
      const double lo = 0.5 * b / 8;
      hs.push_back(bandpass_taps(64, lo, lo + 0.5 / 8));
    }
    return hs;
  }();
  static const std::vector<double> synthesis = lowpass_taps(32, 0.5 / 8);
  Lcg src;
  Ring<64> win;
  std::array<Ring<32>, 8> syn;
  double acc = 0.0;
  for (std::int64_t blk = 0; blk < blocks; ++blk) {
    double dec[8];
    for (int k = 0; k < 8; ++k) {
      win.push(src.next());
      if (k == 0) {
        for (int b = 0; b < 8; ++b) dec[b] = win.dot(analysis[static_cast<std::size_t>(b)].data());
      }
    }
    for (int j = 0; j < 8; ++j) {
      double out = 0.0;
      for (int b = 0; b < 8; ++b) {
        syn[static_cast<std::size_t>(b)].push(j == 0 ? dec[b] : 0.0);
        out += syn[static_cast<std::size_t>(b)].dot(synthesis.data());
      }
      acc += out;
    }
  }
  return acc;
}

// ---- measurement -------------------------------------------------------------

// Items the source actor emits per steady state (bench_scaling's
// normalization: invariant across engines and graph transformations).
std::int64_t source_items_per_steady(const sit::runtime::FlatGraph& g,
                                     const sit::sched::Schedule& s) {
  if (s.input_per_steady > 0) return s.input_per_steady;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const auto& a = g.actors[i];
    bool has_in = false;
    for (int e : a.in_edges) has_in |= e >= 0;
    if (!has_in) return s.reps[i] * a.push_rate();
  }
  return 0;
}

template <typename Ex>
double steadies_per_sec(Ex& ex, int batch, double min_ms, int max_batches) {
  const auto t0 = Clock::now();
  int batches = 0;
  do {
    ex.run_steady(batch);
    ++batches;
  } while (ms_since(t0) < min_ms && batches < max_batches);
  const double ms = ms_since(t0);
  return ms > 0 ? 1000.0 * batches * batch / ms : 0.0;
}

template <typename Kernel>
double handwritten_rate(Kernel&& kernel, std::int64_t units, std::int64_t items_per_unit,
                        double min_ms, int max_calls) {
  volatile double sink = 0.0;
  const auto t0 = Clock::now();
  int calls = 0;
  do {
    sink = sink + kernel(units);
    ++calls;
  } while (ms_since(t0) < min_ms && calls < max_calls);
  const double ms = ms_since(t0);
  (void)sink;
  return ms > 0 ? 1000.0 * calls * units * items_per_unit / ms : 0.0;
}

// All numbers in the file, in order (comments stripped).  The first is the
// fused/vm floor, an optional second the typed/fused floor.
std::vector<double> read_thresholds(const std::string& path) {
  std::vector<double> out;
  std::ifstream f(path);
  if (!f) return out;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const char* p = line.c_str();
    char* end = nullptr;
    for (double v = std::strtod(p, &end); end != p;
         v = std::strtod(p, &end)) {
      out.push_back(v);
      p = end;
    }
  }
  return out;
}

struct BenchApp {
  const char* name;
  sit::ir::NodeP (*make)();
  double (*handwritten)(std::int64_t);  // checksum over `units` work units
  std::int64_t units;                   // work units per timed call
  std::int64_t items_per_unit;          // source items per work unit
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string gate_file;
  std::string out_path = "BENCH_fused.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--gate=", 7) == 0) {
      gate_file = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: bench_fused [--smoke] [--gate=<file>] [--out=<json>]\n");
      return 2;
    }
  }
  const int warm = smoke ? 2 : 8;
  const int batch = smoke ? 8 : 64;
  // Like bench_scaling: a gated smoke run needs enough wall time per
  // configuration for the ratio to be stable; ungated smoke just probes.
  const double min_ms = smoke ? (gate_file.empty() ? 0.0 : 100.0) : 300.0;
  const int max_batches = smoke ? (gate_file.empty() ? 1 : 200) : 400;

  const std::vector<BenchApp> benches = {
      {"FIR", [] { return sit::apps::make_fir_app(128); }, handwritten_fir,
       8192, 1},
      {"Vocoder", sit::apps::make_vocoder, handwritten_vocoder, 2048, 1},
      {"FilterBank", sit::apps::make_filter_bank, handwritten_filter_bank, 512,
       8},
  };
  const struct {
    const char* name;
    sit::sched::Engine engine;
    sit::sched::TypedMode typed;
  } engines[] = {
      {"tree", sit::sched::Engine::Tree, sit::sched::TypedMode::Off},
      {"vm", sit::sched::Engine::Vm, sit::sched::TypedMode::Off},
      {"fused", sit::sched::Engine::Fused, sit::sched::TypedMode::Off},
      {"typed", sit::sched::Engine::Fused, sit::sched::TypedMode::On},
  };
  constexpr int kEngines = 4;

  std::vector<sit::bench::BenchRecord> records;
  sit::obs::MetricsSnapshot metrics;
  bool have_metrics = false;
  double fir_fused_over_vm = -1.0;
  double fir_typed_over_fused = -1.0;

  std::printf("%-12s %-12s %14s %8s %8s\n", "app", "engine", "items/s",
              "vs-vm", "vs-hand");
  sit::bench::rule(60);
  for (const auto& b : benches) {
    const double hand = handwritten_rate(b.handwritten, b.units,
                                         b.items_per_unit, min_ms, max_batches);
    double rates[kEngines] = {0, 0, 0, 0};
    int typed_regs = 0;
    int typed_channels = 0;
    for (int e = 0; e < kEngines; ++e) {
      sit::sched::ExecOptions opts;
      opts.count_ops = false;
      opts.engine = engines[e].engine;
      opts.typed = engines[e].typed;
      sit::sched::Executor ex(b.make(), opts);
      const std::int64_t items =
          source_items_per_steady(ex.graph(), ex.schedule());
      ex.run_steady(warm);
      rates[e] = steadies_per_sec(ex, batch, min_ms, max_batches) *
                 static_cast<double>(items);
      if (engines[e].typed == sit::sched::TypedMode::On) {
        const sit::obs::MetricsSnapshot snap = ex.metrics_snapshot();
        typed_regs = snap.typed_regs;
        typed_channels = snap.typed_channels;
        if (!have_metrics) {
          // First typed fused run (FIR): carries fused_super /
          // fused_channels plus the typed specialization counters, the
          // provenance for the JSON.
          metrics = snap;
          metrics.app = b.name;
          have_metrics = true;
        }
      }
    }
    const double vm = rates[1];
    std::printf("%-12s %-12s %14.0f %8s %8.2f\n", b.name, "handwritten", hand,
                "-", 1.0);
    records.push_back({std::string(b.name) + "/handwritten",
                       {{"items_per_sec", hand},
                        {"vs_vm", vm > 0 ? hand / vm : 0.0},
                        {"vs_handwritten", 1.0}}});
    for (int e = 0; e < kEngines; ++e) {
      const double vs_vm = vm > 0 ? rates[e] / vm : 0.0;
      const double vs_hand = hand > 0 ? rates[e] / hand : 0.0;
      std::printf("%-12s %-12s %14.0f %8.2f %8.2f\n", b.name, engines[e].name,
                  rates[e], vs_vm, vs_hand);
      sit::bench::BenchRecord rec{std::string(b.name) + "/" + engines[e].name,
                                  {{"items_per_sec", rates[e]},
                                   {"vs_vm", vs_vm},
                                   {"vs_handwritten", vs_hand}}};
      if (engines[e].typed == sit::sched::TypedMode::On) {
        rec.metrics.emplace_back("typed_regs", typed_regs);
        rec.metrics.emplace_back("typed_channels", typed_channels);
      }
      records.push_back(std::move(rec));
      if (std::strcmp(b.name, "FIR") == 0) {
        if (std::strcmp(engines[e].name, "fused") == 0) {
          fir_fused_over_vm = vs_vm;
        } else if (std::strcmp(engines[e].name, "typed") == 0 &&
                   rates[2] > 0) {
          fir_typed_over_fused = rates[e] / rates[2];
        }
      }
    }
    sit::bench::rule(60);
  }

  if (!sit::bench::write_bench_json(out_path, "fused_engine", records,
                                    have_metrics ? &metrics : nullptr,
                                    /*max_threads=*/1)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());

  if (!gate_file.empty()) {
    if (SIT_BENCH_SANITIZED) {
      std::printf("gate: skipped -- sanitizer build measures instrumentation, "
                  "not dispatch\n");
      return 0;
    }
    const unsigned cpus = std::thread::hardware_concurrency();
    if (cpus > 0 && cpus < 2) {
      std::printf("gate: skipped -- single-cpu host, timer noise dominates\n");
      return 0;
    }
    const std::vector<double> thresholds = read_thresholds(gate_file);
    if (thresholds.empty() || thresholds[0] <= 0.0) {
      std::fprintf(stderr, "gate: unreadable threshold file %s\n",
                   gate_file.c_str());
      return 2;
    }
    bool pass = fir_fused_over_vm >= thresholds[0];
    std::printf("gate: FIR fused/vm = %.2f (>= %.2f) %s\n", fir_fused_over_vm,
                thresholds[0], pass ? "ok" : "FAIL");
    if (thresholds.size() > 1 && thresholds[1] > 0.0) {
      const bool tpass = fir_typed_over_fused >= thresholds[1];
      std::printf("gate: FIR typed/fused = %.2f (>= %.2f) %s\n",
                  fir_typed_over_fused, thresholds[1], tpass ? "ok" : "FAIL");
      pass = pass && tpass;
    }
    if (!pass) {
      std::fprintf(stderr, "gate: fused engine regressed below %s\n",
                   gate_file.c_str());
      return 1;
    }
  }
  return 0;
}
