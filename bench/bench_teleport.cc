// Reproduces the teleport-messaging result (paper conclusion: a 49%
// performance improvement for the frequency-hopping radio versus manual
// messaging).
//
// Manual baseline model: without teleport messaging, control information is
// embedded in the data stream -- every item on every channel carries a tag
// word, and every filter checks it each firing.  Teleport messaging removes
// both costs because delivery points are computed statically from sdep.
// We execute the radio under the constrained messaging executor, verify
// message delivery, and compare modeled cycles per steady state.

#include <cstdio>

#include "apps/radio.h"
#include "bench/bench_util.h"
#include "msg/messaging.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"

int main() {
  const int n = 64;
  auto radio = sit::apps::make_freq_hop_radio(n);

  // Execute with teleport messaging to confirm hops are actually delivered.
  sit::msg::MessagingExecutor ex(sit::ir::clone(radio.graph));
  ex.register_receiver(radio.portal, radio.receiver);
  ex.run_steady(128);
  const auto& st = ex.stats();

  // Modeled per-steady-state costs.
  const auto g = sit::runtime::flatten(radio.graph);
  const auto s = sit::sched::make_schedule(g);
  const double base_cycles = ex.executor().total_ops().weighted();

  double items_per_ss = 0.0;
  double firings_per_ss = 0.0;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    if (g.edges[e].src >= 0 && g.edges[e].dst >= 0) {
      items_per_ss += static_cast<double>(s.edge_traffic[e]);
    }
  }
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    firings_per_ss += static_cast<double>(s.reps[a]);
  }
  // Tag word per item: one extra push + pop (2 cycles each in the cost
  // model); tag dispatch check per firing: 2 cycles.
  const double manual_overhead_per_ss = items_per_ss * 4.0 + firings_per_ss * 2.0;
  const double ss_count = 128.0;
  const double manual_cycles = base_cycles + manual_overhead_per_ss * ss_count;

  std::printf("Teleport messaging vs manual (tag-in-stream) messaging, "
              "frequency-hopping radio (N=%d)\n\n", n);
  std::printf("messages sent/delivered under constrained schedule: %lld/%lld\n",
              static_cast<long long>(st.sent), static_cast<long long>(st.delivered));
  std::printf("schedule stalls from delivery constraints:          %lld\n",
              static_cast<long long>(st.constraint_stalls));
  for (std::size_t i = 0; i < st.deliveries.size() && i < 4; ++i) {
    const auto& d = st.deliveries[i];
    std::printf("  delivery %zu: %s.%s at receiver firing %lld (%s)\n", i,
                d.portal.c_str(), d.method.c_str(),
                static_cast<long long>(d.receiver_firing),
                d.before ? "before" : "after");
  }
  sit::bench::rule(64);
  std::printf("teleport cycles (128 steady states): %14.0f\n", base_cycles);
  std::printf("manual   cycles (128 steady states): %14.0f\n", manual_cycles);
  const double improvement = (manual_cycles / base_cycles - 1.0) * 100.0;
  std::printf("teleport improvement:                %13.0f%%\n", improvement);
  std::printf("\nPaper: 49%% improvement for the frequency-hopping radio on a "
              "cluster of workstations.\n");
  return 0;
}
