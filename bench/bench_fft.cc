// Microbenchmarks of the FFT substrate (google-benchmark): the transform
// itself, the overlap-save convolution engine, and the naive DFT baseline
// that motivates frequency translation.

#include <benchmark/benchmark.h>

#include <random>

#include "fft/fft.h"

namespace {

std::vector<sit::fft::cplx> random_signal(std::size_t n) {
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<sit::fft::cplx> x(n);
  for (auto& v : x) v = sit::fft::cplx(d(rng), d(rng));
  return x;
}

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_signal(n);
  for (auto _ : state) {
    auto y = x;
    sit::fft::fft_inplace(y, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(64, 16384);

void BM_NaiveDft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_signal(n);
  for (auto _ : state) {
    auto y = sit::fft::dft_naive(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_NaiveDft)->Range(64, 512);

void BM_OverlapSave(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  std::vector<double> h(taps, 0.01);
  const std::size_t fft_size = sit::fft::next_pow2(taps * 4);
  sit::fft::OverlapSave os(h, fft_size);
  std::vector<double> block(os.block_size(), 1.0);
  for (auto _ : state) {
    auto y = os.process(block);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(os.block_size()));
}
BENCHMARK(BM_OverlapSave)->RangeMultiplier(4)->Range(16, 1024);

void BM_DirectFir(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  std::vector<double> h(taps, 0.01);
  std::vector<double> x(4096, 1.0);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i + taps <= x.size(); ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k < taps; ++k) s += h[k] * x[i + k];
      acc += s;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DirectFir)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

BENCHMARK_MAIN();
