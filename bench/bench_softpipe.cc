// Reproduces Figure "softpipe_graph": Task vs Task+SWP speedup over a single
// core.  Paper: software pipelining alone reaches 7.7x geomean (3.4x over
// the task baseline), winning on stateful, load-balanceable apps (Radar).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using sit::parallel::Strategy;
  sit::machine::MachineConfig cfg;

  std::printf("Figure: Task and Task+SWP speedup vs single core (16 cores)\n");
  std::printf("%-14s %10s %12s\n", "Benchmark", "Task", "Task+SWP");
  sit::bench::rule(42);

  std::vector<double> t, ts;
  for (const auto& name : sit::bench::parallel_suite_names()) {
    const auto app = sit::apps::make_app(name);
    const auto rt = sit::parallel::run_strategy(app, Strategy::TaskParallel, cfg);
    const auto rs = sit::parallel::run_strategy(app, Strategy::TaskSwp, cfg);
    std::printf("%-14s %9.2fx %11.2fx\n", name.c_str(), rt.speedup_vs_single,
                rs.speedup_vs_single);
    t.push_back(rt.speedup_vs_single);
    ts.push_back(rs.speedup_vs_single);
  }
  sit::bench::rule(42);
  std::printf("%-14s %9.2fx %11.2fx\n", "geomean", sit::bench::geomean(t),
              sit::bench::geomean(ts));
  std::printf("\nPaper: task 2.27x, task+SWP 7.7x geomean; SWP should beat "
              "task parallelism on every pipeline-shaped benchmark.\n");
  return 0;
}
