// Reproduces Figure "benchchar": benchmark characteristics.
//
// Paper columns: Filters, Peeking, (graph depth) Shortest/Longest Path,
// Comp/Comm ratio, and Stateful work (%) -- with the benchmarks sorted by
// ascending stateful work, exactly as the paper presents them.

#include <algorithm>
#include <cstdio>
#include <queue>

#include "bench/bench_util.h"
#include "linear/cost.h"
#include "parallel/transforms.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace {

struct Row {
  std::string name;
  int filters{0};
  int peeking{0};
  int stateful{0};
  int shortest{0};
  int longest{0};
  double comp_comm{0};
  double stateful_pct{0};
};

// Source-to-sink path lengths over filter actors.
void path_lengths(const sit::runtime::FlatGraph& g, int& shortest, int& longest) {
  const std::size_t n = g.actors.size();
  std::vector<int> lo(n, 1 << 28), hi(n, -(1 << 28));
  for (int a : g.topo_order()) {
    const auto ai = static_cast<std::size_t>(a);
    bool has_pred = false;
    for (int eid : g.actors[ai].in_edges) {
      if (eid < 0) continue;
      const auto& e = g.edges[static_cast<std::size_t>(eid)];
      if (e.src < 0 || e.back_edge) continue;
      has_pred = true;
      const int me = g.actors[ai].is_filter() ? 1 : 0;
      lo[ai] = std::min(lo[ai], lo[static_cast<std::size_t>(e.src)] + me);
      hi[ai] = std::max(hi[ai], hi[static_cast<std::size_t>(e.src)] + me);
    }
    if (!has_pred) {
      lo[ai] = hi[ai] = g.actors[ai].is_filter() ? 1 : 0;
    }
  }
  shortest = 1 << 28;
  longest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool is_sink = true;
    for (int eid : g.actors[i].out_edges) {
      if (eid >= 0 && g.edges[static_cast<std::size_t>(eid)].dst >= 0 &&
          !g.edges[static_cast<std::size_t>(eid)].back_edge) {
        is_sink = false;
      }
    }
    if (is_sink) {
      shortest = std::min(shortest, lo[i]);
      longest = std::max(longest, hi[i]);
    }
  }
}

}  // namespace

int main() {
  std::printf("Figure: benchmark characteristics (paper Fig. benchchar)\n");
  std::printf("%-14s %8s %8s %9s %9s %9s %11s %10s\n", "Benchmark", "Filters",
              "Peeking", "Stateful", "ShortPath", "LongPath", "Comp/Comm",
              "State W%%");
  sit::bench::rule();

  std::vector<Row> rows;
  for (const auto& name : sit::bench::parallel_suite_names()) {
    const auto app = sit::apps::make_app(name);
    Row r;
    r.name = name;
    const auto g = sit::runtime::flatten(app);
    const auto s = sit::sched::make_schedule(g);

    double total_work = 0.0, stateful_work = 0.0, comm_items = 0.0;
    for (std::size_t i = 0; i < g.actors.size(); ++i) {
      const auto& a = g.actors[i];
      if (!a.is_filter()) continue;
      ++r.filters;  // paper counts file I/O filters in the total too
      const bool peeks = a.peek_extra > 0;
      if (peeks) ++r.peeking;
      // I/O endpoints (the FileReader/FileWriter stand-ins) are not mapped
      // to cores in the paper and are excluded from the stateful-work
      // accounting.
      bool has_in = false, has_out = false;
      for (int e : a.in_edges) has_in = has_in || e >= 0;
      for (int e : a.out_edges) has_out = has_out || e >= 0;
      const bool endpoint = !has_in || !has_out;
      const bool stateful =
          !endpoint && sit::parallel::leaf_stateful(*a.node);
      if (stateful) ++r.stateful;
      const double w = static_cast<double>(s.reps[i]) *
                       sit::linear::leaf_ops_per_firing(*a.node);
      if (!endpoint) total_work += w;
      if (stateful) stateful_work += w;
    }
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      if (g.edges[e].src >= 0 && g.edges[e].dst >= 0) {
        comm_items += static_cast<double>(s.edge_traffic[e]);
      }
    }
    r.comp_comm = comm_items > 0 ? total_work / comm_items : 0.0;
    r.stateful_pct = total_work > 0 ? 100.0 * stateful_work / total_work : 0.0;
    path_lengths(g, r.shortest, r.longest);
    rows.push_back(std::move(r));
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.stateful_pct < b.stateful_pct; });
  for (const auto& r : rows) {
    std::printf("%-14s %8d %8d %9d %9d %9d %11.1f %9.1f%%\n", r.name.c_str(),
                r.filters, r.peeking, r.stateful, r.shortest, r.longest,
                r.comp_comm, r.stateful_pct);
  }
  std::printf(
      "\nPaper shape check: three benchmarks carry stateful work (MPEG2 small,"
      "\nVocoder moderate, Radar dominant); ChannelVocoder/FilterBank peek"
      "\nheavily; comp/comm is high across the suite.\n");
  return 0;
}
