// Reproduces Figure "fine-dup": naive fine-grained data parallelism
// (replicate every stateless filter 16 ways, no coarsening) against the
// coarse-grained algorithm.  Paper example: DCT reaches only 4.0x fine-
// grained vs 14.6x coarse-grained, because fine-grained fission floods the
// communication substrate.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using sit::parallel::Strategy;
  sit::machine::MachineConfig cfg;

  std::printf("Figure: fine-grained vs coarse-grained data parallelism "
              "(speedup vs single core, 16 cores)\n");
  std::printf("%-14s %14s %16s %8s\n", "Benchmark", "Fine-grained",
              "Coarse-grained", "Actors");
  sit::bench::rule(60);

  std::vector<double> fg, cg;
  for (const auto& name : sit::bench::parallel_suite_names()) {
    const auto app = sit::apps::make_app(name);
    const auto rf =
        sit::parallel::run_strategy(app, Strategy::FineGrainedData, cfg);
    const auto rc = sit::parallel::run_strategy(app, Strategy::TaskData, cfg);
    std::printf("%-14s %13.2fx %15.2fx %8d\n", name.c_str(),
                rf.speedup_vs_single, rc.speedup_vs_single, rf.actors);
    fg.push_back(rf.speedup_vs_single);
    cg.push_back(rc.speedup_vs_single);
  }
  sit::bench::rule(60);
  std::printf("%-14s %13.2fx %15.2fx\n", "geomean", sit::bench::geomean(fg),
              sit::bench::geomean(cg));
  std::printf("\nPaper shape: coarse-grained wins wherever fine-grained "
              "fission multiplies synchronization (DCT: 4.0x vs 14.6x).\n");
  return 0;
}
