// Microbenchmarks of the compiler substrate itself (google-benchmark):
// flattening + balance equations, linear extraction, whole-program
// optimization selection, and sdep table construction on real suite apps.

#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "linear/extract.h"
#include "linear/optimize.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"
#include "sdep/sdep.h"

namespace {

void BM_FlattenAndSchedule(benchmark::State& state, const char* app) {
  const auto g = sit::apps::make_app(app);
  for (auto _ : state) {
    auto flat = sit::runtime::flatten(g);
    auto sched = sit::sched::make_schedule(flat);
    benchmark::DoNotOptimize(sched.reps.data());
  }
}
BENCHMARK_CAPTURE(BM_FlattenAndSchedule, fmradio, "FMRadio");
BENCHMARK_CAPTURE(BM_FlattenAndSchedule, bitonic, "BitonicSort");
BENCHMARK_CAPTURE(BM_FlattenAndSchedule, fft, "FFT");

void BM_LinearExtraction(benchmark::State& state) {
  const auto g = sit::apps::make_app("FilterBank");
  std::vector<const sit::ir::FilterSpec*> filters;
  sit::ir::visit(g, [&](const sit::ir::NodeP& n) {
    if (n->kind == sit::ir::Node::Kind::Filter) filters.push_back(&n->filter);
  });
  for (auto _ : state) {
    int linear = 0;
    for (const auto* f : filters) {
      if (sit::linear::extract(*f).rep) ++linear;
    }
    benchmark::DoNotOptimize(linear);
  }
}
BENCHMARK(BM_LinearExtraction);

void BM_OptimizeSelection(benchmark::State& state, const char* app) {
  const auto g = sit::apps::make_app(app);
  sit::linear::OptimizeOptions opts;
  opts.enable_frequency = false;  // keep the loop body deterministic in cost
  for (auto _ : state) {
    auto out = sit::linear::optimize_selection(g, opts);
    benchmark::DoNotOptimize(out.get());
  }
}
BENCHMARK_CAPTURE(BM_OptimizeSelection, rateconvert, "RateConvert");
BENCHMARK_CAPTURE(BM_OptimizeSelection, oversampler, "Oversampler");

void BM_SdepTables(benchmark::State& state) {
  const auto app = sit::apps::make_app("FMRadio");
  const auto g = sit::runtime::flatten(app);
  // Source and sink actor ids.
  int src = -1, snk = -1;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    bool has_in = false, has_out = false;
    for (int e : g.actors[i].in_edges) has_in = has_in || e >= 0;
    for (int e : g.actors[i].out_edges) has_out = has_out || e >= 0;
    if (!has_in) src = static_cast<int>(i);
    if (!has_out) snk = static_cast<int>(i);
  }
  for (auto _ : state) {
    sit::sdep::SdepAnalysis an(g);
    benchmark::DoNotOptimize(an.sdep(src, snk, 100));
  }
}
BENCHMARK(BM_SdepTables);

}  // namespace

BENCHMARK_MAIN();
