// Reproduces the paper's headline linear-optimization result (abstract:
// "performance improvements that average 400% over our benchmark
// applications").  For each linear-suite application we report the modeled
// execution cost per source item for:
//   direct      -- the program as written,
//   combined    -- linear combination only (no frequency translation),
//   auto        -- full optimization selection (combination + frequency).

#include <cstdio>

#include "bench/bench_util.h"
#include "linear/cost.h"
#include "linear/optimize.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace {

// Cycle-weighted cost per source item of a closed program.
double cost_per_item(const sit::ir::NodeP& app) {
  const auto g = sit::runtime::flatten(app);
  const auto s = sit::sched::make_schedule(g);
  double total = 0.0;
  double src_items = 0.0;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const auto& a = g.actors[i];
    if (a.is_filter()) {
      total += static_cast<double>(s.reps[i]) *
               sit::linear::leaf_ops_per_firing(*a.node);
      bool has_in = false;
      for (int e : a.in_edges) has_in = has_in || e >= 0;
      if (!has_in) {
        for (std::size_t p = 0; p < a.out_rate.size(); ++p) {
          src_items += static_cast<double>(s.reps[i] * a.out_rate[p]);
        }
      }
    } else {
      // splitter/joiner synchronization cost
      std::int64_t items = 0;
      for (int r : a.in_rate) items += r;
      for (int r : a.out_rate) items += r;
      total += static_cast<double>(s.reps[i]) * 2.0 * static_cast<double>(items);
    }
  }
  return src_items > 0 ? total / src_items : total;
}

}  // namespace

int main() {
  std::printf("Headline: linear combination + frequency translation "
              "(cost per source item, lower is better)\n");
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "Benchmark", "Direct",
              "Combined", "Auto", "Comb spd", "Auto spd");
  sit::bench::rule(72);

  std::vector<double> speedups;
  for (const auto& name : sit::bench::linear_suite_names()) {
    const auto app = sit::apps::make_app(name);
    const double direct = cost_per_item(app);

    sit::linear::OptimizeOptions comb_only;
    comb_only.enable_frequency = false;
    const auto combined = sit::linear::optimize_selection(app, comb_only);
    const double comb_cost = cost_per_item(combined);

    sit::linear::OptimizeStats stats;
    const auto autosel = sit::linear::optimize_selection(app, {}, &stats);
    const double auto_cost = cost_per_item(autosel);

    const double spd_c = comb_cost > 0 ? direct / comb_cost : 0.0;
    const double spd_a = auto_cost > 0 ? direct / auto_cost : 0.0;
    std::printf("%-14s %10.1f %10.1f %10.1f %9.2fx %9.2fx\n", name.c_str(),
                direct, comb_cost, auto_cost, spd_c, spd_a);
    speedups.push_back(spd_a);
  }
  sit::bench::rule(72);
  const double gm = sit::bench::geomean(speedups);
  std::printf("%-14s %43s average improvement: %.0f%% (geomean %.2fx)\n", "",
              "", (gm - 1.0) * 100.0, gm);
  std::printf("\nPaper: improvements average 400%% across the linear "
              "benchmark suite; FIR-dominated apps gain most (frequency\n"
              "translation), stateful apps (Radar) gain least.\n");
  return 0;
}
