// Threaded-runtime scaling: throughput vs SIT_THREADS for the coarse-grained
// data-parallel apps, against the sequential VM executor as baseline.
//
//   bench_parallel [--smoke]
//
// For each app we measure the sequential Executor on the original graph,
// then ThreadedExecutor on parallel::prepare_threaded(app, T) for
// T in {1, 2, 4, 8}.  Throughput is normalized to items emitted by the
// graph's *source* actor per second, which is invariant under the fission
// transforms (the stateful source is never replicated), so rows are
// comparable even though each transformed graph has its own steady state.
//
// Writes BENCH_parallel.json (bench_util stamps git SHA / engine / threads).
// Results are hardware-dependent: on a single-core host the threaded rows
// show scheduling overhead, not speedup -- the `predicted` column carries
// the machine-model expectation for the chosen placement.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "opt/compile.h"
#include "sched/texec.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Items the source actor emits per steady state of this particular graph.
std::int64_t source_items_per_steady(const sit::runtime::FlatGraph& g,
                                     const sit::sched::Schedule& s) {
  if (s.input_per_steady > 0) return s.input_per_steady;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const auto& a = g.actors[i];
    bool has_in = false;
    for (int e : a.in_edges) has_in |= e >= 0;
    if (!has_in) return s.reps[i] * a.push_rate();
  }
  return 0;
}

// Run batches of steady states until `min_ms` of wall time accumulates;
// returns steady states per second.
template <typename Ex>
double steadies_per_sec(Ex& ex, int batch, double min_ms, int max_batches) {
  const auto t0 = Clock::now();
  int batches = 0;
  do {
    ex.run_steady(batch);
    ++batches;
  } while (ms_since(t0) < min_ms && batches < max_batches);
  const double ms = ms_since(t0);
  return ms > 0 ? 1000.0 * batches * batch / ms : 0.0;
}

struct BenchApp {
  const char* name;
  sit::ir::NodeP (*make)();
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int warm = smoke ? 2 : 8;
  const int batch = smoke ? 4 : 16;
  const double min_ms = smoke ? 0.0 : 300.0;
  const int max_batches = smoke ? 1 : 200;

  const std::vector<BenchApp> benches = {
      {"FIR", [] { return sit::apps::make_fir_app(128); }},
      {"FilterBank", [] { return sit::apps::make_filter_bank(); }},
      {"FMRadio", [] { return sit::apps::make_fm_radio(); }},
  };
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::vector<sit::bench::BenchRecord> records;
  // Per-actor/worker attribution for the last threaded configuration,
  // stamped into the JSON so the perf trajectory can see inside the rates.
  sit::obs::MetricsSnapshot metrics;
  bool have_metrics = false;
  std::printf("%-12s %8s %14s %9s %10s %6s\n", "app", "threads", "items/s",
              "speedup", "predicted", "rings");
  sit::bench::rule(64);

  for (const auto& b : benches) {
    sit::sched::ExecOptions seq_opts;
    seq_opts.count_ops = false;
    seq_opts.engine = sit::sched::Engine::Vm;
    sit::sched::Executor seq(b.make(), seq_opts);
    const std::int64_t seq_items =
        source_items_per_steady(seq.graph(), seq.schedule());
    seq.run_steady(warm);
    const double seq_rate =
        steadies_per_sec(seq, batch, min_ms, max_batches) *
        static_cast<double>(seq_items);
    std::printf("%-12s %8s %14.0f %9s %10s %6s\n", b.name, "seq", seq_rate,
                "1.00", "-", "-");
    records.push_back({std::string(b.name) + "/seq",
                       {{"threads", 1.0}, {"items_per_sec", seq_rate},
                        {"speedup", 1.0}}});

    for (int t : thread_counts) {
      sit::sched::ExecOptions opts;
      opts.count_ops = false;
      opts.engine = sit::sched::Engine::Vm;
      opts.threads = t;
      // Compile through the pipeline's mapping pass (threaded-prep wraps
      // parallel::prepare_threaded) so the artifact records the pipeline and
      // per-pass stats for the JSON's metrics snapshot.
      sit::opt::CompileOptions copts;
      copts.passes = "validate,analysis-gate,threaded-prep";
      copts.exec.threads = t;
      sit::sched::ThreadedExecutor tex(sit::opt::compile(b.make(), copts),
                                       opts);
      const std::int64_t items =
          source_items_per_steady(tex.graph(), tex.schedule());
      tex.run_steady(warm);  // init + calibration + first threaded batch
      const double rate = steadies_per_sec(tex, batch, min_ms, max_batches) *
                          static_cast<double>(items);
      const auto& rep = tex.report();
      const double speedup = seq_rate > 0 ? rate / seq_rate : 0.0;
      std::printf("%-12s %8d %14.0f %9.2f %10.2f %6d\n", b.name, t, rate,
                  speedup, rep.predicted_speedup, rep.ring_edges);
      records.push_back(
          {std::string(b.name) + "/t" + std::to_string(t),
           {{"threads", static_cast<double>(t)},
            {"items_per_sec", rate},
            {"speedup", speedup},
            {"predicted_speedup", rep.predicted_speedup},
            {"threaded", rep.threaded ? 1.0 : 0.0},
            {"ring_edges", static_cast<double>(rep.ring_edges)}}});
      if (rep.threaded) {
        metrics = tex.metrics_snapshot();
        metrics.app = b.name;
        have_metrics = true;
      }
    }
    sit::bench::rule(64);
  }

  if (!sit::bench::write_bench_json("BENCH_parallel.json", "parallel_scaling",
                                    records,
                                    have_metrics ? &metrics : nullptr)) {
    std::fprintf(stderr, "failed to write BENCH_parallel.json\n");
    return 1;
  }
  std::printf("wrote BENCH_parallel.json (%zu records)\n", records.size());
  return 0;
}
