// Execution-engine microbenchmarks: tree-walking interpreter vs the bytecode
// VM (runtime/vm.h) on the hot work functions of the paper's evaluation apps
// and on whole-program steady states.
//
// Two modes:
//   * default: google-benchmark micros (pass the usual --benchmark_* flags),
//     followed by the engine-comparison table and BENCH_interp.json;
//   * --smoke: skip the micros and run a quick, low-rep comparison only --
//     CI uses this to assert both engines stay healthy in Release builds.
//
// The JSON records per configuration: tree_ms, vm_ms (per measured unit) and
// speedup = tree_ms / vm_ms.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ir/dsl.h"
#include "opt/compile.h"
#include "runtime/channel.h"
#include "runtime/compile.h"
#include "runtime/interp.h"
#include "runtime/vm.h"
#include "sched/exec.h"

namespace {

using namespace sit::ir::dsl;  // NOLINT
using sit::ir::FilterSpec;
using sit::runtime::Channel;
using sit::runtime::FilterState;
using sit::runtime::Interp;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pull a leaf filter's spec out of an app graph by name.
FilterSpec find_spec(const sit::ir::NodeP& root, const std::string& name) {
  const sit::ir::FilterSpec* found = nullptr;
  sit::ir::visit(root, [&](const sit::ir::NodeP& n) {
    if (n->kind == sit::ir::Node::Kind::Filter && n->filter.name == name) {
      found = &n->filter;
    }
  });
  if (found == nullptr) throw std::runtime_error("no filter named " + name);
  return *found;
}

// A stateful feedback (IIR) filter: two poles of history, nothing linear to
// exploit -- pure engine overhead.
FilterSpec iir_spec() {
  return filter("iir2")
      .rates(1, 1, 1)
      .scalar("y1", sit::ir::Value(0.0))
      .scalar("y2", sit::ir::Value(0.0))
      .work({let("y", pop_() + v("y1") * c(1.2) - v("y2") * c(0.5)),
             let("y2", v("y1")), let("y1", v("y")), push_(v("y"))})
      .build();
}

// ---- single-filter firing loops ---------------------------------------------

// Time `firings` work invocations against prefilled channels; returns
// best-of-`reps` milliseconds.  `vm` selects the engine.
double time_filter(const FilterSpec& spec, bool vm, int firings, int reps) {
  const int window = std::max(spec.peek, spec.pop);
  auto prog = vm ? sit::runtime::compile_filter(spec) : nullptr;
  if (vm && !prog) throw std::runtime_error(spec.name + ": did not compile");

  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    FilterState st = vm ? sit::runtime::Vm::init_state(spec, *prog)
                        : Interp::init_state(spec);
    Channel in, out;
    std::vector<double> feed(static_cast<std::size_t>(firings * spec.pop + window));
    for (std::size_t i = 0; i < feed.size(); ++i) {
      feed[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
    }
    in.push_many(feed);
    out.reserve_items(static_cast<std::size_t>(firings * spec.push));
    const double t0 = now_ms();
    if (vm) {
      sit::runtime::VmBound bound(prog, st);
      for (int f = 0; f < firings; ++f) bound.run_work(in, out, nullptr);
    } else {
      for (int f = 0; f < firings; ++f) {
        Interp::run_work(spec, st, in, out, nullptr);
      }
    }
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

// ---- whole-app steady states ------------------------------------------------

double time_app(const std::string& app, sit::sched::Engine engine, int steadies,
                int reps, bool count_ops) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    sit::sched::ExecOptions opt;
    opt.engine = engine;
    opt.count_ops = count_ops;
    sit::sched::Executor ex(sit::apps::make_app(app), opt);
    ex.run_init();
    ex.take_output();
    const double t0 = now_ms();
    ex.run_steady(steadies);
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

// ---- the comparison table + JSON --------------------------------------------

struct Config {
  std::string name;
  // Measures one engine in milliseconds (true = VM).
  std::function<double(bool)> run;
};

std::vector<Config> make_configs(bool smoke) {
  const int firings = smoke ? 2'000 : 200'000;
  const int steadies = smoke ? 4 : 400;
  const int reps = smoke ? 2 : 5;
  std::vector<Config> cfg;
  const FilterSpec fir = find_spec(sit::apps::make_app("FIR"), "fir");
  const FilterSpec agc = find_spec(sit::apps::make_app("Vocoder"), "agc");
  const FilterSpec band = find_spec(sit::apps::make_app("Vocoder"), "vband0");
  const FilterSpec iir = iir_spec();
  cfg.push_back({"fir128_work",
                 [=](bool vm) { return time_filter(fir, vm, firings / 50, reps); }});
  cfg.push_back({"vocoder_band_work",
                 [=](bool vm) { return time_filter(band, vm, firings / 20, reps); }});
  cfg.push_back({"vocoder_agc_work",
                 [=](bool vm) { return time_filter(agc, vm, firings, reps); }});
  cfg.push_back({"iir_feedback_work",
                 [=](bool vm) { return time_filter(iir, vm, firings, reps); }});
  cfg.push_back({"FIR_steady", [=](bool vm) {
                   return time_app("FIR", vm ? sit::sched::Engine::Vm
                                             : sit::sched::Engine::Tree,
                                   steadies, reps, false);
                 }});
  cfg.push_back({"Vocoder_steady", [=](bool vm) {
                   return time_app("Vocoder", vm ? sit::sched::Engine::Vm
                                                 : sit::sched::Engine::Tree,
                                   steadies, reps, false);
                 }});
  cfg.push_back({"FIR_steady_counted", [=](bool vm) {
                   return time_app("FIR", vm ? sit::sched::Engine::Vm
                                             : sit::sched::Engine::Tree,
                                   steadies, reps, true);
                 }});
  return cfg;
}

int run_comparison(bool smoke) {
  std::printf("Execution engines: tree interpreter vs bytecode VM%s\n",
              smoke ? " (smoke)" : "");
  sit::bench::rule(72);
  std::printf("%-24s %12s %12s %10s\n", "config", "tree ms", "vm ms", "speedup");
  sit::bench::rule(72);
  std::vector<sit::bench::BenchRecord> records;
  bool sane = true;
  for (const auto& cfg : make_configs(smoke)) {
    const double tree_ms = cfg.run(false);
    const double vm_ms = cfg.run(true);
    const double speedup = vm_ms > 0.0 ? tree_ms / vm_ms : 0.0;
    std::printf("%-24s %12.3f %12.3f %9.2fx\n", cfg.name.c_str(), tree_ms,
                vm_ms, speedup);
    records.push_back({cfg.name,
                       {{"tree_ms", tree_ms},
                        {"vm_ms", vm_ms},
                        {"speedup", speedup}}});
    if (!(tree_ms >= 0.0) || !(vm_ms > 0.0)) sane = false;
  }
  sit::bench::rule(72);
  // One short traced run (outside the timed sections) gives the JSON
  // per-actor wall-ns attribution alongside the end-to-end ratios.  The run
  // goes through the pass pipeline (SIT_OPT / SIT_PASSES select it) so the
  // snapshot also carries the active pipeline spec and per-pass stats.
  sit::opt::CompileOptions copts;
  copts.exec.engine = sit::sched::Engine::Vm;
  sit::sched::ExecOptions mopts;
  mopts.trace = sit::sched::TraceMode::On;
  sit::sched::Executor mex(sit::opt::compile(sit::apps::make_app("FIR"), copts),
                           mopts);
  mex.run_steady(smoke ? 2 : 8);
  sit::obs::MetricsSnapshot metrics = mex.metrics_snapshot();
  metrics.app = "FIR";
  if (!sit::bench::write_bench_json("BENCH_interp.json", "interp", records,
                                    &metrics)) {
    std::fprintf(stderr, "failed to write BENCH_interp.json\n");
    return 1;
  }
  std::printf("wrote BENCH_interp.json\n");
  return sane ? 0 : 1;
}

// ---- google-benchmark micros (full mode only) -------------------------------

void register_micros() {
  static const FilterSpec fir = find_spec(sit::apps::make_app("FIR"), "fir");
  static const FilterSpec agc = find_spec(sit::apps::make_app("Vocoder"), "agc");
  static const FilterSpec iir = iir_spec();
  struct Item {
    const char* name;
    const FilterSpec* spec;
  };
  for (const Item& item : {Item{"fir128", &fir}, Item{"vocoder_agc", &agc},
                           Item{"iir_feedback", &iir}}) {
    for (const bool vm : {false, true}) {
      const std::string bname =
          std::string("BM_work/") + item.name + (vm ? "/vm" : "/tree");
      const FilterSpec* spec = item.spec;
      benchmark::RegisterBenchmark(bname.c_str(), [spec, vm](benchmark::State& s) {
        auto prog = vm ? sit::runtime::compile_filter(*spec) : nullptr;
        FilterState st = vm ? sit::runtime::Vm::init_state(*spec, *prog)
                            : Interp::init_state(*spec);
        std::unique_ptr<sit::runtime::VmBound> bound;
        if (vm) bound = std::make_unique<sit::runtime::VmBound>(prog, st);
        Channel in, out;
        const int window = std::max(spec->peek, spec->pop);
        for (auto _ : s) {
          s.PauseTiming();
          std::vector<double> feed(static_cast<std::size_t>(spec->pop + window));
          for (std::size_t i = 0; i < feed.size(); ++i) feed[i] = 0.5;
          in.push_many(feed);
          while (!out.empty()) out.pop_item();
          s.ResumeTiming();
          if (vm) {
            bound->run_work(in, out, nullptr);
          } else {
            Interp::run_work(*spec, st, in, out, nullptr);
          }
        }
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (smoke) return run_comparison(true);

  benchmark::Initialize(&argc, argv);
  register_micros();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_comparison(false);
}
