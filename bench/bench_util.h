#pragma once
// Shared helpers for the figure-reproduction benchmark binaries.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "machine/machine.h"
#include "parallel/strategies.h"

namespace sit::bench {

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

inline std::vector<std::string> parallel_suite_names() {
  std::vector<std::string> names;
  for (const auto& a : sit::apps::all_apps()) {
    if (a.parallel_suite) names.push_back(a.name);
  }
  return names;
}

inline std::vector<std::string> linear_suite_names() {
  std::vector<std::string> names;
  for (const auto& a : sit::apps::all_apps()) {
    if (a.linear_suite) names.push_back(a.name);
  }
  return names;
}

inline void rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sit::bench
