#pragma once
// Shared helpers for the figure-reproduction benchmark binaries.

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "apps/apps.h"
#include "machine/machine.h"
#include "obs/costmodel.h"
#include "obs/metrics.h"
#include "parallel/strategies.h"
#include "sched/envopts.h"
#include "sched/exec.h"

namespace sit::bench {

// ---- machine-readable results -----------------------------------------------
//
// Each bench binary may drop a BENCH_<name>.json next to its stdout tables so
// CI and the experiment scripts can diff numbers without scraping text.  The
// format is deliberately flat: one record per measured configuration, all
// metric values doubles.

struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Provenance stamped into every BENCH_*.json so the perf trajectory stays
// attributable across PRs: which commit, which work-function engine, and how
// many worker threads the environment selects.
inline std::string bench_git_sha() {
  if (const char* sha = std::getenv("GITHUB_SHA")) return sha;
  std::array<char, 64> buf{};
  std::string sha = "unknown";
  if (FILE* p = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    if (fgets(buf.data(), static_cast<int>(buf.size()), p) != nullptr) {
      std::string s(buf.data());
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) sha = s;
    }
    pclose(p);
  }
  return sha;
}

// Host metadata: results are hardware-dependent, so BENCH_*.json records
// where they were measured.
inline std::string bench_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  std::array<char, 256> buf{};
  if (gethostname(buf.data(), buf.size() - 1) == 0 && buf[0] != '\0') {
    return buf.data();
  }
#endif
  if (const char* h = std::getenv("HOSTNAME")) return h;
  return "unknown";
}

// Monotonic run timestamp (steady-clock ns): orders runs from one boot
// unambiguously even if the wall clock steps.
inline std::int64_t bench_run_mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// `metrics`, when non-null, embeds a full obs::MetricsSnapshot (per-actor /
// per-edge / per-worker tables) under a "metrics" key, giving the perf
// trajectory per-actor attribution instead of just end-to-end rates.
//
// `max_threads`, when > 0, is the largest worker count the binary actually
// measured (scaling sweeps measure several counts in one run, so the
// environment's SIT_THREADS is not the right oversubscription signal).  A
// run whose measured thread count exceeds the host cpu count measures
// scheduler contention, not the runtime: the JSON is stamped
// degraded / non-authoritative so trajectory tooling and the CI gate can
// refuse the numbers, and the operator is warned directly.
inline bool write_bench_json(const std::string& path, const std::string& bench,
                             const std::vector<BenchRecord>& records,
                             const obs::MetricsSnapshot* metrics = nullptr,
                             int max_threads = 0) {
  std::ofstream f(path);
  if (!f) return false;
  // One consolidated environment snapshot (sched/envopts.h) supplies every
  // provenance field, including the active optimization configuration: the
  // SIT_OPT level and, when SIT_PASSES overrides the preset, the explicit
  // pass spec.  Per-pass stats ride in the embedded metrics snapshot when
  // the measured executor consumed a pipeline-compiled program.
  const ExecEnv env = resolve_exec_options();
  const char* engine = env.engine == sched::Engine::Vm      ? "vm"
                       : env.engine == sched::Engine::Fused ? "fused"
                                                            : "tree";
  const int measured = max_threads > 0 ? max_threads : env.threads;
  const unsigned cpus = std::thread::hardware_concurrency();
  const bool degraded = cpus > 0 && measured > static_cast<int>(cpus);
  if (degraded) {
    std::fprintf(stderr,
                 "bench: warning: %d worker threads on a %u-cpu host; "
                 "results stamped \"degraded\" (authoritative: false) in %s\n",
                 measured, cpus, path.c_str());
  }
  // Which cost model drove partitioning/selection during the run: numbers
  // measured under a calibrated profile are not comparable to static-model
  // runs, so the trajectory must record the model (and its profile) too.
  const obs::CostModel& cmodel = obs::cost_model();
  f << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n"
    << "  \"git_sha\": \"" << json_escape(bench_git_sha()) << "\",\n"
    << "  \"engine\": \"" << engine << "\",\n"
    << "  \"threads\": " << env.threads << ",\n"
    << "  \"opt\": {\"level\": " << env.opt_level << ", \"passes\": \""
    << json_escape(env.passes) << "\"},\n"
    << "  \"cost_model\": {\"source\": \"" << cmodel.source()
    << "\", \"profile\": \"" << json_escape(cmodel.profile_path()) << "\"},\n"
    << "  \"host\": {\"hostname\": \"" << json_escape(bench_hostname())
    << "\", \"cpus\": " << cpus << ", \"max_threads_measured\": " << measured
    << ", \"degraded\": " << (degraded ? "true" : "false")
    << ", \"authoritative\": " << (degraded ? "false" : "true") << "},\n"
    << "  \"run_mono_ns\": " << bench_run_mono_ns() << ",\n"
    << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    f << "    {\"name\": \"" << json_escape(records[i].name) << "\"";
    for (const auto& [k, v] : records[i].metrics) {
      f << ", \"" << json_escape(k) << "\": " << v;
    }
    f << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  f << "  ]";
  if (metrics != nullptr) f << ",\n  \"metrics\": " << metrics->to_json();
  f << "\n}\n";
  return static_cast<bool>(f);
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

inline std::vector<std::string> parallel_suite_names() {
  std::vector<std::string> names;
  for (const auto& a : sit::apps::all_apps()) {
    if (a.parallel_suite) names.push_back(a.name);
  }
  return names;
}

inline std::vector<std::string> linear_suite_names() {
  std::vector<std::string> names;
  for (const auto& a : sit::apps::all_apps()) {
    if (a.linear_suite) names.push_back(a.name);
  }
  return names;
}

inline void rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sit::bench
