#pragma once
// Shared helpers for the figure-reproduction benchmark binaries.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/apps.h"
#include "machine/machine.h"
#include "parallel/strategies.h"

namespace sit::bench {

// ---- machine-readable results -----------------------------------------------
//
// Each bench binary may drop a BENCH_<name>.json next to its stdout tables so
// CI and the experiment scripts can diff numbers without scraping text.  The
// format is deliberately flat: one record per measured configuration, all
// metric values doubles.

struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline bool write_bench_json(const std::string& path, const std::string& bench,
                             const std::vector<BenchRecord>& records) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    f << "    {\"name\": \"" << json_escape(records[i].name) << "\"";
    for (const auto& [k, v] : records[i].metrics) {
      f << ", \"" << json_escape(k) << "\": " << v;
    }
    f << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return static_cast<bool>(f);
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

inline std::vector<std::string> parallel_suite_names() {
  std::vector<std::string> names;
  for (const auto& a : sit::apps::all_apps()) {
    if (a.parallel_suite) names.push_back(a.name);
  }
  return names;
}

inline std::vector<std::string> linear_suite_names() {
  std::vector<std::string> names;
  for (const auto& a : sit::apps::all_apps()) {
    if (a.linear_suite) names.push_back(a.name);
  }
  return names;
}

inline void rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sit::bench
