// Reproduces Figure "thruput": compute utilization and MFLOPS for the
// combined technique (Task+Data+SWP) on the 16-core machine.  The modeled
// peak is 16 cores x 450 MHz x 1 flop/cycle = 7200 MFLOPS, matching the
// paper's Raw configuration.  Paper: utilization >= 60% in 7 of 12 cases.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using sit::parallel::Strategy;
  sit::machine::MachineConfig cfg;
  const double peak =
      cfg.cores() * cfg.clock_mhz * cfg.flops_per_cycle;

  std::printf("Figure: utilization and MFLOPS, Task+Data+SWP (peak %.0f "
              "MFLOPS)\n", peak);
  std::printf("%-14s %12s %10s %12s\n", "Benchmark", "Utilization", "MFLOPS",
              "%% of peak");
  sit::bench::rule(54);

  int high_util = 0;
  for (const auto& name : sit::bench::parallel_suite_names()) {
    const auto app = sit::apps::make_app(name);
    const auto r = sit::parallel::run_strategy(app, Strategy::TaskDataSwp, cfg);
    std::printf("%-14s %11.1f%% %10.0f %11.1f%%\n", name.c_str(),
                100.0 * r.sim.utilization, r.sim.mflops,
                100.0 * r.sim.mflops / peak);
    if (r.sim.utilization >= 0.60) ++high_util;
  }
  sit::bench::rule(54);
  std::printf("benchmarks at >= 60%% utilization: %d of 12 (paper: 7 of 12)\n",
              high_util);
  return 0;
}
