// streamlint -- run the full static-analysis suite over stream programs.
//
// v2: programs are linted through the same pass pipeline streamc compiles
// with (-O levels / --passes parity), with the semantic verifier
// (analysis/verify.h) run over the final graph -- or after every pass with
// --verify-each, in which case a failure names the offending pass.  The
// static channel-bound analysis (analysis/bounds_chan.h) runs on every
// program that compiles; --bounds prints the per-edge occupancy table
// (steady traffic, post-init level, in-order and single-appearance peaks,
// and the pipelined bound the threaded runtime sizes its rings to).
//
// With no program arguments every built-in program (the benchmark suite
// plus the example graphs) is linted; names select a subset.  --demo builds
// one of the deliberately-broken programs so the failure modes of each pass
// can be demonstrated (and regression-tested: the exit code is nonzero
// whenever any linted program has an error diagnostic).
//
//   streamlint                    lint everything
//   streamlint DCT FMRadio        lint two benchmarks
//   streamlint -O1 --bounds FIR   compile at -O1, print the bounds table
//   streamlint --json             machine-readable diagnostics on stdout
//   streamlint --list             show available program names
//   streamlint --demo bad-peek    lint a program with an out-of-window peek
//
// Exit status: 0 clean (notes allowed), 1 errors found, 2 usage,
// 3 warnings but no errors.

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/bounds_chan.h"
#include "apps/apps.h"
#include "apps/common.h"
#include "apps/radio.h"
#include "ir/dsl.h"
#include "ir/graph.h"
#include "opt/compile.h"
#include "sched/texec.h"

namespace {

using namespace sit;           // NOLINT
using namespace sit::ir::dsl;  // NOLINT

struct Program {
  std::string name;
  std::function<ir::NodeP()> make;
};

// The example binaries' graphs, reconstructed so the linter covers them.
ir::NodeP make_quickstart_graph() {
  ir::NodeP equalizer = ir::make_splitjoin(
      "equalizer", ir::duplicate_split(), ir::roundrobin_join({1, 1}),
      {apps::bandpass_fir("band_lo", 16, 0.02, 0.12),
       apps::bandpass_fir("band_hi", 16, 0.12, 0.24)});
  return ir::make_pipeline("MiniRadio", {apps::lowpass_fir("lowpass", 16, 0.25),
                                         equalizer, apps::adder("sum", 2)});
}

std::vector<Program> all_programs() {
  std::vector<Program> ps;
  for (const auto& a : apps::all_apps()) {
    ps.push_back({a.name, a.make});
  }
  ps.push_back({"example:quickstart", make_quickstart_graph});
  ps.push_back(
      {"example:freq-hop-radio", [] { return apps::make_freq_hop_radio().graph; }});
  return ps;
}

// ---- deliberately-broken programs (--demo) ----------------------------------

ir::NodeP wrap(ir::NodeP mid, int pop_rate) {
  return ir::make_pipeline("demo", {apps::rand_source("src"), std::move(mid),
                                    apps::null_sink("sink", pop_rate)});
}

// Peeks past the declared window: the interval pass rejects peek(5) against
// a window of max(peek, pop) = 2.
ir::NodeP make_bad_peek() {
  auto f = filter("wideReader")
               .rates(2, 2, 1)
               .work(seq({push_(peek_(ci(0)) + peek_(ci(5))), discard(2)}))
               .node();
  return wrap(std::move(f), 1);
}

// Reads a local that no path assigns: the interpreter would throw
// "undefined variable" on the first firing.
ir::NodeP make_bad_state() {
  auto f = filter("useBeforeDef")
               .rates(1, 1, 1)
               .work(seq({push_(v("acc") + pop_())}))
               .node();
  return wrap(std::move(f), 1);
}

// Duplicate splitter feeding a 1->1 and a 1->2 branch into a rr{1,1}
// joiner: the balance equations have no positive solution.
ir::NodeP make_bad_rates() {
  auto doubler = filter("doubler")
                     .rates(1, 1, 2)
                     .work(seq({let("x", pop_()), push_(v("x")), push_(v("x"))}))
                     .node();
  auto sj = ir::make_splitjoin("mismatch", ir::duplicate_split(),
                               ir::roundrobin_join({1, 1}),
                               {ir::dsl::identity("thru"), std::move(doubler)});
  return wrap(std::move(sj), 1);
}

// Feedback loop with delay 0: the joiner needs an item from the back edge
// before anything has ever been produced, so initialization cannot start.
ir::NodeP make_bad_feedback() {
  auto loop = ir::make_feedback("starved", ir::roundrobin_join({1, 1}),
                                ir::dsl::identity("body"),
                                ir::roundrobin_split({1, 1}),
                                apps::gain("decay", 0.5), /*delay=*/0,
                                /*init_path=*/{});
  return wrap(std::move(loop), 1);
}

// Integer division by a constant zero, found by constant propagation.
ir::NodeP make_bad_divzero() {
  auto f = filter("divZero")
               .rates(1, 1, 1)
               .work(seq({let("n", ci(4) - ci(4)),
                          push_(pop_() / to_float(ci(12) % v("n")))}))
               .node();
  return wrap(std::move(f), 1);
}

// Peek offset computed from channel data: the window cannot be verified
// statically, which the structural validator now reports instead of
// silently assuming a window of zero.
ir::NodeP make_bad_dynamic_peek() {
  auto f = filter("dataPeek")
               .rates(2, 2, 1)
               .work(seq({push_(peek_(to_int(pop_()))), discard(1)}))
               .node();
  return wrap(std::move(f), 1);
}

std::vector<Program> demo_programs() {
  return {
      {"bad-peek", make_bad_peek},
      {"bad-state", make_bad_state},
      {"bad-rates", make_bad_rates},
      {"bad-feedback", make_bad_feedback},
      {"bad-divzero", make_bad_divzero},
      {"bad-dynamic-peek", make_bad_dynamic_peek},
  };
}

// ---- lint -------------------------------------------------------------------

struct Options {
  bool verbose{false};
  bool verify_each{false};
  bool bounds{false};
  bool json{false};
  opt::OptLevel level{opt::OptLevel::Auto};
  std::string passes;
  int threads{0};  // forwarded to the mapping passes when spec'd
};

struct LintResult {
  std::string name;
  std::vector<analysis::Diagnostic> diags;
  std::size_t errors{0};
  std::size_t warnings{0};  // Severity::Warning only; notes are advisory
  bool compiled{false};
  // Populated when the program compiled.
  runtime::FlatGraph flat;
  sched::Schedule sched;
  analysis::ChannelBounds bounds;
};

std::string edge_name(const runtime::FlatGraph& g, std::size_t e) {
  const auto& ed = g.edges[e];
  return (ed.src >= 0 ? g.actors[static_cast<std::size_t>(ed.src)].name
                      : std::string("input")) +
         "->" +
         (ed.dst >= 0 ? g.actors[static_cast<std::size_t>(ed.dst)].name
                      : std::string("output"));
}

LintResult lint(const Program& p, const Options& opts) {
  LintResult r;
  r.name = p.name;

  opt::CompileOptions copts;
  copts.level = opts.level;
  copts.passes = opts.passes;
  copts.exec.threads = opts.threads;
  // Always verify: the final graph by default, every pipeline stage with
  // --verify-each (a failure then names the offending pass).
  copts.pass.verify_each =
      opts.verify_each ? opt::VerifyMode::Each : opt::VerifyMode::Final;

  opt::PassContext ctx;
  sched::CompiledProgram prog;
  try {
    prog = opt::compile(p.make(), copts, &ctx);
    r.compiled = true;
  } catch (const std::exception& e) {
    // The gate/verify passes leave their findings in ctx.diagnostics; only
    // synthesize one when the failure carried no diagnostic (e.g. an
    // unschedulable graph rejected by the scheduler itself).
    if (!analysis::has_errors(ctx.diagnostics)) {
      ctx.diagnostics.push_back(
          analysis::error("compile", p.name, e.what()));
    }
  }
  r.diags = std::move(ctx.diagnostics);

  if (r.compiled) {
    r.flat = std::move(prog.flat);
    r.sched = std::move(prog.schedule);
    r.bounds = analysis::channel_bounds(r.flat, r.sched);
    if (!r.bounds.single_appearance) {
      r.diags.push_back(analysis::note(
          "bounds", r.bounds.blocker,
          "no single-appearance steady schedule (actor needs interleaved "
          "firings); the threaded runtime falls back to sequential"));
    }
  }

  r.errors = analysis::count_errors(r.diags);
  for (const auto& d : r.diags) {
    if (d.severity == analysis::Severity::Warning) ++r.warnings;
  }
  return r;
}

void print_bounds(const LintResult& r) {
  std::printf("  channel bounds (pipelining window=%d):\n",
              sched::kPipelineWindow);
  std::printf("  %-36s %8s %10s %9s %7s %10s\n", "edge", "traffic",
              "post-init", "in-order", "single", "pipelined");
  for (std::size_t e = 0; e < r.flat.edges.size(); ++e) {
    const std::string name = edge_name(r.flat, e);
    if (r.bounds.post_init[e] < 0) {
      std::printf("  %-36.36s %8lld %10s %9s %7s %10s\n", name.c_str(),
                  static_cast<long long>(r.bounds.traffic[e]), "-", "-", "-",
                  "-");
      continue;
    }
    std::printf("  %-36.36s %8lld %10lld %9lld %7lld %10lld\n", name.c_str(),
                static_cast<long long>(r.bounds.traffic[e]),
                static_cast<long long>(r.bounds.post_init[e]),
                static_cast<long long>(r.bounds.in_order[e]),
                static_cast<long long>(r.bounds.steady_single[e]),
                static_cast<long long>(
                    r.bounds.pipelined(e, sched::kPipelineWindow)));
  }
}

// ---- JSON output ------------------------------------------------------------

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<LintResult>& results, const Options& opts) {
  std::printf("{\n  \"programs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LintResult& r = results[i];
    std::printf("    {\"name\": \"%s\", \"errors\": %zu, \"warnings\": %zu,\n",
                escape(r.name).c_str(), r.errors, r.warnings);
    std::printf("     \"diagnostics\": [");
    for (std::size_t d = 0; d < r.diags.size(); ++d) {
      const auto& diag = r.diags[d];
      std::printf(
          "%s\n      {\"severity\": \"%s\", \"pass\": \"%s\", \"code\": "
          "\"%s\", \"where\": \"%s\", \"message\": \"%s\"}",
          d > 0 ? "," : "", analysis::to_string(diag.severity),
          escape(diag.pass).c_str(), escape(diag.code).c_str(),
          escape(diag.where).c_str(), escape(diag.message).c_str());
    }
    std::printf("%s]", r.diags.empty() ? "" : "\n     ");
    if (opts.bounds && r.compiled) {
      std::printf(",\n     \"bounds\": [");
      for (std::size_t e = 0; e < r.flat.edges.size(); ++e) {
        std::printf(
            "%s\n      {\"edge\": \"%s\", \"traffic\": %lld, "
            "\"post_init\": %lld, \"in_order\": %lld, \"steady_single\": "
            "%lld, \"pipelined\": %lld}",
            e > 0 ? "," : "", escape(edge_name(r.flat, e)).c_str(),
            static_cast<long long>(r.bounds.traffic[e]),
            static_cast<long long>(r.bounds.post_init[e]),
            static_cast<long long>(r.bounds.in_order[e]),
            static_cast<long long>(r.bounds.steady_single[e]),
            static_cast<long long>(
                r.bounds.post_init[e] < 0
                    ? -1
                    : r.bounds.pipelined(e, sched::kPipelineWindow)));
      }
      std::printf("%s]", r.flat.edges.empty() ? "" : "\n     ");
    }
    std::printf("}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const auto& r : results) {
    errors += r.errors;
    warnings += r.warnings;
  }
  std::printf("  ],\n  \"errors\": %zu,\n  \"warnings\": %zu\n}\n", errors,
              warnings);
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: streamlint [options] [NAME...]\n"
      "  -O0|-O1|-O2     compile with the preset pipeline (default: SIT_OPT)\n"
      "  --passes=a,b,c  compile with an explicit pass spec\n"
      "  --verify-each   run the semantic verifier after every pass\n"
      "  --bounds        print the static channel-bound table per program\n"
      "  --json          machine-readable diagnostics on stdout\n"
      "  --threads=N     thread count for mapping passes in --passes specs\n"
      "  --verbose       print warning diagnostics for clean programs\n"
      "  --list          list lintable program names and exit\n"
      "  --demo NAME     lint a deliberately-broken demo program\n"
      "exit: 0 clean, 1 errors, 2 usage, 3 warnings only\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> selected;
  std::vector<std::string> demos;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string val;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      val = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    if (arg == "--verbose" || arg == "-v") {
      opts.verbose = true;
    } else if (arg == "--verify-each") {
      opts.verify_each = true;
    } else if (arg == "--bounds") {
      opts.bounds = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "-O0") {
      opts.level = opt::OptLevel::O0;
    } else if (arg == "-O1") {
      opts.level = opt::OptLevel::O1;
    } else if (arg == "-O2") {
      opts.level = opt::OptLevel::O2;
    } else if (arg == "--passes") {
      if (val.empty() && i + 1 < argc) val = argv[++i];
      if (val.empty()) {
        usage(stderr);
        return 2;
      }
      opts.passes = val;
    } else if (arg == "--threads") {
      if (val.empty() && i + 1 < argc) val = argv[++i];
      opts.threads = std::atoi(val.c_str());
    } else if (arg == "--list") {
      for (const auto& p : all_programs()) std::printf("%s\n", p.name.c_str());
      for (const auto& p : demo_programs()) std::printf("%s (demo)\n", p.name.c_str());
      return 0;
    } else if (arg == "--demo") {
      if (val.empty() && i + 1 < argc) val = argv[++i];
      if (val.empty()) {
        usage(stderr);
        return 2;
      }
      demos.push_back(val);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      selected.push_back(arg);
    }
  }

  std::vector<Program> run;
  const std::vector<Program> progs = all_programs();
  const std::vector<Program> dps = demo_programs();
  if (demos.empty() && selected.empty()) {
    run = progs;
  }
  for (const auto& name : selected) {
    bool found = false;
    for (const auto& p : progs) {
      if (p.name == name) {
        run.push_back(p);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown program '%s' (try --list)\n", name.c_str());
      return 2;
    }
  }
  for (const auto& name : demos) {
    bool found = false;
    for (const auto& p : dps) {
      if (p.name == name) {
        run.push_back(p);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown demo '%s' (try --list)\n", name.c_str());
      return 2;
    }
  }

  std::vector<LintResult> results;
  results.reserve(run.size());
  std::size_t errors = 0;
  std::size_t warnings = 0;
  int failures = 0;
  for (const auto& p : run) {
    LintResult r = lint(p, opts);
    errors += r.errors;
    warnings += r.warnings;
    if (r.errors > 0) ++failures;
    if (!opts.json) {
      if (r.errors == 0 && (r.warnings == 0 || !opts.verbose)) {
        std::printf("ok    %s", r.name.c_str());
        if (r.warnings > 0) {
          std::printf("  (%zu warning%s)", r.warnings,
                      r.warnings == 1 ? "" : "s");
        }
        std::printf("\n");
      } else {
        std::printf("%s  %s\n", r.errors > 0 ? "FAIL" : "warn",
                    r.name.c_str());
        std::printf("%s", analysis::render(r.diags).c_str());
      }
      if (opts.bounds && r.compiled) print_bounds(r);
    }
    results.push_back(std::move(r));
  }
  if (opts.json) {
    print_json(results, opts);
  } else if (run.size() > 1) {
    std::printf("%zu program%s linted, %d with errors, %zu warning%s\n",
                run.size(), run.size() == 1 ? "" : "s", failures, warnings,
                warnings == 1 ? "" : "s");
  }
  if (errors > 0) return 1;
  if (warnings > 0) return 3;
  return 0;
}
