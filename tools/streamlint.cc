// streamlint -- run the full static-analysis suite over stream programs.
//
// With no arguments every built-in program (the benchmark suite plus the
// example graphs) is linted; names select a subset.  --demo builds one of
// the deliberately-broken programs so the failure modes of each pass can be
// demonstrated (and regression-tested: the exit code is nonzero whenever
// any linted program has an error diagnostic).
//
//   streamlint                    lint everything
//   streamlint DCT FMRadio        lint two benchmarks
//   streamlint --list             show available program names
//   streamlint --demo bad-peek    lint a program with an out-of-window peek
//
// Exit status: 0 clean (warnings allowed), 1 errors found, 2 usage.

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "apps/apps.h"
#include "apps/common.h"
#include "apps/radio.h"
#include "ir/dsl.h"
#include "ir/graph.h"

namespace {

using namespace sit;           // NOLINT
using namespace sit::ir::dsl;  // NOLINT

struct Program {
  std::string name;
  std::function<ir::NodeP()> make;
};

// The example binaries' graphs, reconstructed so the linter covers them.
ir::NodeP make_quickstart_graph() {
  ir::NodeP equalizer = ir::make_splitjoin(
      "equalizer", ir::duplicate_split(), ir::roundrobin_join({1, 1}),
      {apps::bandpass_fir("band_lo", 16, 0.02, 0.12),
       apps::bandpass_fir("band_hi", 16, 0.12, 0.24)});
  return ir::make_pipeline("MiniRadio", {apps::lowpass_fir("lowpass", 16, 0.25),
                                         equalizer, apps::adder("sum", 2)});
}

std::vector<Program> all_programs() {
  std::vector<Program> ps;
  for (const auto& a : apps::all_apps()) {
    ps.push_back({a.name, a.make});
  }
  ps.push_back({"example:quickstart", make_quickstart_graph});
  ps.push_back(
      {"example:freq-hop-radio", [] { return apps::make_freq_hop_radio().graph; }});
  return ps;
}

// ---- deliberately-broken programs (--demo) ----------------------------------

ir::NodeP wrap(ir::NodeP mid, int pop_rate) {
  return ir::make_pipeline("demo", {apps::rand_source("src"), std::move(mid),
                                    apps::null_sink("sink", pop_rate)});
}

// Peeks past the declared window: the interval pass rejects peek(5) against
// a window of max(peek, pop) = 2.
ir::NodeP make_bad_peek() {
  auto f = filter("wideReader")
               .rates(2, 2, 1)
               .work(seq({push_(peek_(ci(0)) + peek_(ci(5))), discard(2)}))
               .node();
  return wrap(std::move(f), 1);
}

// Reads a local that no path assigns: the interpreter would throw
// "undefined variable" on the first firing.
ir::NodeP make_bad_state() {
  auto f = filter("useBeforeDef")
               .rates(1, 1, 1)
               .work(seq({push_(v("acc") + pop_())}))
               .node();
  return wrap(std::move(f), 1);
}

// Duplicate splitter feeding a 1->1 and a 1->2 branch into a rr{1,1}
// joiner: the balance equations have no positive solution.
ir::NodeP make_bad_rates() {
  auto doubler = filter("doubler")
                     .rates(1, 1, 2)
                     .work(seq({let("x", pop_()), push_(v("x")), push_(v("x"))}))
                     .node();
  auto sj = ir::make_splitjoin("mismatch", ir::duplicate_split(),
                               ir::roundrobin_join({1, 1}),
                               {ir::dsl::identity("thru"), std::move(doubler)});
  return wrap(std::move(sj), 1);
}

// Feedback loop with delay 0: the joiner needs an item from the back edge
// before anything has ever been produced, so initialization cannot start.
ir::NodeP make_bad_feedback() {
  auto loop = ir::make_feedback("starved", ir::roundrobin_join({1, 1}),
                                ir::dsl::identity("body"),
                                ir::roundrobin_split({1, 1}),
                                apps::gain("decay", 0.5), /*delay=*/0,
                                /*init_path=*/{});
  return wrap(std::move(loop), 1);
}

// Integer division by a constant zero, found by constant propagation.
ir::NodeP make_bad_divzero() {
  auto f = filter("divZero")
               .rates(1, 1, 1)
               .work(seq({let("n", ci(4) - ci(4)),
                          push_(pop_() / to_float(ci(12) % v("n")))}))
               .node();
  return wrap(std::move(f), 1);
}

// Peek offset computed from channel data: the window cannot be verified
// statically, which the structural validator now reports instead of
// silently assuming a window of zero.
ir::NodeP make_bad_dynamic_peek() {
  auto f = filter("dataPeek")
               .rates(2, 2, 1)
               .work(seq({push_(peek_(to_int(pop_()))), discard(1)}))
               .node();
  return wrap(std::move(f), 1);
}

std::vector<Program> demo_programs() {
  return {
      {"bad-peek", make_bad_peek},
      {"bad-state", make_bad_state},
      {"bad-rates", make_bad_rates},
      {"bad-feedback", make_bad_feedback},
      {"bad-divzero", make_bad_divzero},
      {"bad-dynamic-peek", make_bad_dynamic_peek},
  };
}

// ---- driver -----------------------------------------------------------------

int lint(const Program& p, bool verbose) {
  analysis::AnalysisResult r;
  try {
    r = analysis::analyze(p.make());
  } catch (const std::exception& e) {
    std::printf("FAIL  %s\n    internal error: %s\n", p.name.c_str(), e.what());
    return 1;
  }
  const std::size_t errors = r.errors();
  const std::size_t warnings = r.diagnostics.size() - errors;
  if (errors == 0 && (warnings == 0 || !verbose)) {
    std::printf("ok    %s", p.name.c_str());
    if (warnings > 0) std::printf("  (%zu warning%s)", warnings, warnings == 1 ? "" : "s");
    std::printf("\n");
    return 0;
  }
  std::printf("%s  %s\n", errors > 0 ? "FAIL" : "warn", p.name.c_str());
  std::printf("%s", r.report().c_str());
  return errors > 0 ? 1 : 0;
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: streamlint [--verbose] [--list] [--demo NAME] [NAME...]\n"
               "  --verbose   print warning diagnostics for clean programs\n"
               "  --list      list lintable program names and exit\n"
               "  --demo      lint a deliberately-broken demo program\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<std::string> selected;
  std::vector<std::string> demos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--list") {
      for (const auto& p : all_programs()) std::printf("%s\n", p.name.c_str());
      for (const auto& p : demo_programs()) std::printf("%s (demo)\n", p.name.c_str());
      return 0;
    } else if (arg == "--demo") {
      if (i + 1 >= argc) {
        usage(stderr);
        return 2;
      }
      demos.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      selected.push_back(arg);
    }
  }

  std::vector<Program> run;
  const std::vector<Program> progs = all_programs();
  const std::vector<Program> dps = demo_programs();
  if (demos.empty() && selected.empty()) {
    run = progs;
  }
  for (const auto& name : selected) {
    bool found = false;
    for (const auto& p : progs) {
      if (p.name == name) {
        run.push_back(p);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown program '%s' (try --list)\n", name.c_str());
      return 2;
    }
  }
  for (const auto& name : demos) {
    bool found = false;
    for (const auto& p : dps) {
      if (p.name == name) {
        run.push_back(p);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown demo '%s' (try --list)\n", name.c_str());
      return 2;
    }
  }

  int failures = 0;
  for (const auto& p : run) failures += lint(p, verbose);
  if (run.size() > 1) {
    std::printf("%zu program%s linted, %d with errors\n", run.size(),
                run.size() == 1 ? "" : "s", failures);
  }
  return failures > 0 ? 1 : 0;
}
