// streamc: the compiler driver.  Compile a built-in app through the pass
// pipeline (src/opt), report what every pass did, and run the result.
//
//   streamc --app=NAME [-O0|-O1|-O2] [--passes=a,b,c] [--report]
//           [--verify-each] [--dump-after=PASS] [--engine=vm|tree|fused]
//           [--threads=N] [--steady=N] [--cost=FILE] [--metrics=FILE]
//           [--quiet]
//   streamc --list
//   streamc --list-passes
//
// -O levels select the preset pipelines (see opt/pass_manager.h); --passes
// overrides them with an explicit comma-separated spec (validate and
// analysis-gate are prepended if missing).  --report prints the per-pass
// table (wall time, actor/edge counts before -> after, modeled cost delta)
// plus every per-candidate optimization decision.  --verify-each runs the
// semantic verifier (analysis/verify.h) after every pass; a failure names
// the offending pass (equivalent to SIT_VERIFY=each).  --cost loads a
// CostProfile (streamprof --calibrate output; equivalent to SIT_COST=FILE)
// so partitioning and selection run on measured actor weights and --report
// gains the measured/divergence columns.  --dump-after prints
// the graph as it stands after the named pass.  The compiled artifact then
// runs through ThreadedExecutor (one thread = embedded sequential executor),
// so the same driver exercises every engine/thread combination.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "analysis/fuse.h"
#include "analysis/typeflow.h"
#include "obs/costmodel.h"
#include "opt/compile.h"
#include "runtime/fused.h"
#include "sched/texec.h"

namespace {

// Build the fused steady-state trace for a (mid-pipeline) graph and render
// it, or explain why it does not fuse.  Used by --dump-after=fuse-steady.
std::string fused_trace_dump(const sit::ir::NodeP& g) {
  try {
    const sit::runtime::FlatGraph flat = sit::runtime::flatten(g);
    const sit::sched::Schedule s = sit::sched::make_schedule(flat);
    const sit::analysis::FusePlan plan = sit::analysis::fuse_plan(flat, s);
    if (!plan.admissible) return "refused: " + plan.refusal + "\n";
    std::string reason;
    const sit::runtime::FusedProgramP prog = sit::runtime::build_fused(
        flat, s.order, s.reps, plan.carry, plan.traffic, &reason);
    if (!prog) return "refused: " + reason + "\n";
    return prog->disassemble();
  } catch (const std::exception& e) {
    return std::string("unavailable: ") + e.what() + "\n";
  }
}

// The --report fusion section: superinstruction statics and the
// eliminated-channel tally, or the stable refusal reason.
std::string fused_report(const sit::sched::CompiledProgram& prog) {
  std::string out = "fuse-steady:\n";
  const sit::analysis::FusePlan plan =
      sit::analysis::fuse_plan(prog.flat, prog.schedule);
  if (!plan.admissible) {
    return out + "  refused: " + plan.refusal + "\n";
  }
  std::string reason;
  const sit::runtime::FusedProgramP fp =
      sit::runtime::build_fused(prog.flat, prog.schedule.order,
                                prog.schedule.reps, plan.carry, plan.traffic,
                                &reason);
  if (!fp) return out + "  refused: " + reason + "\n";
  out += "  admissible: " + std::to_string(fp->eliminated_channels) +
         " channel(s) lowered to trace buffers, " +
         std::to_string(fp->code.size()) + " trace instruction(s)\n";
  if (fp->super.empty()) {
    out += "  superinstructions: none selected\n";
  } else {
    for (const auto& [name, n] : fp->super) {
      out += "  super " + name + ": " + std::to_string(n) + " instance(s)\n";
    }
  }
  return out;
}

// The --report typed-dataflow section: per-actor inferred-type tables,
// specialization status (or the stable refusal reason), and per-edge content
// tags (analysis/typeflow.h).
std::string typeflow_report(const sit::sched::CompiledProgram& prog) {
  try {
    const sit::analysis::TypeflowResult tf = sit::analysis::typeflow(prog.flat);
    return tf.describe(prog.flat);
  } catch (const std::exception& e) {
    return std::string("typeflow: unavailable (") + e.what() + ")\n";
  }
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: streamc --app=NAME [-O0|-O1|-O2] [--passes=a,b,c] [--report]\n"
      "               [--verify-each] [--dump-after=PASS]\n"
      "               [--engine=vm|tree|fused]\n"
      "               [--threads=N] [--batch=N|auto] [--steady=N]\n"
      "               [--cost=FILE] [--metrics=FILE] [--quiet]\n"
      "       streamc --list\n"
      "       streamc --list-passes\n");
}

std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

const sit::apps::AppInfo* find_app(const std::string& name) {
  const std::string want = lower(name);
  for (const auto& a : sit::apps::all_apps()) {
    if (lower(a.name) == want) return &a;
  }
  return nullptr;
}

struct Args {
  std::string app;
  sit::opt::OptLevel level{sit::opt::OptLevel::Auto};
  std::string passes;
  std::string dump_after;
  std::string engine;  // "", "vm", "tree", "fused"
  int threads{0};      // 0 = SIT_THREADS
  int batch{0};        // 0 = SIT_BATCH, -1 = auto, >= 1 explicit
  int steady{16};
  std::string cost_path;
  std::string metrics_path;
  bool report{false};
  bool verify_each{false};
  bool list{false};
  bool list_passes{false};
  bool quiet{false};
};

// Accepts --key=value and --key value (plus the -ON short form).
bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string val;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      val = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    const auto take = [&]() -> bool {
      if (!val.empty()) return true;
      if (i + 1 >= argc) return false;
      val = argv[++i];
      return true;
    };
    if (arg == "--list") {
      a->list = true;
    } else if (arg == "--list-passes") {
      a->list_passes = true;
    } else if (arg == "--report") {
      a->report = true;
    } else if (arg == "--verify-each") {
      a->verify_each = true;
    } else if (arg == "--quiet") {
      a->quiet = true;
    } else if (arg == "-O0") {
      a->level = sit::opt::OptLevel::O0;
    } else if (arg == "-O1") {
      a->level = sit::opt::OptLevel::O1;
    } else if (arg == "-O2") {
      a->level = sit::opt::OptLevel::O2;
    } else if (arg == "--app") {
      if (!take()) return false;
      a->app = val;
    } else if (arg == "--passes") {
      if (!take()) return false;
      a->passes = val;
    } else if (arg == "--dump-after") {
      if (!take()) return false;
      a->dump_after = val;
    } else if (arg == "--engine") {
      if (!take()) return false;
      a->engine = lower(val);
      if (a->engine != "vm" && a->engine != "tree" && a->engine != "fused") {
        return false;
      }
    } else if (arg == "--threads") {
      if (!take()) return false;
      a->threads = std::atoi(val.c_str());
    } else if (arg == "--batch") {
      if (!take()) return false;
      if (lower(val) == "auto") {
        a->batch = -1;
      } else {
        a->batch = std::atoi(val.c_str());
        if (a->batch < 1) return false;
      }
    } else if (arg == "--steady") {
      if (!take()) return false;
      a->steady = std::atoi(val.c_str());
      if (a->steady < 1) return false;
    } else if (arg == "--cost") {
      if (!take()) return false;
      a->cost_path = val;
    } else if (arg == "--metrics") {
      if (!take()) return false;
      a->metrics_path = val;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    usage(stderr);
    return 2;
  }
  if (args.list) {
    for (const auto& a : sit::apps::all_apps()) {
      std::printf("%-16s %s\n", a.name.c_str(), a.description.c_str());
    }
    return 0;
  }
  if (args.list_passes) {
    const sit::opt::PassManager& pm = sit::opt::PassManager::global();
    for (const std::string& n : pm.pass_names()) {
      std::printf("%-16s %s\n", n.c_str(), pm.find(n)->description());
    }
    return 0;
  }
  if (args.app.empty()) {
    usage(stderr);
    return 2;
  }
  const sit::apps::AppInfo* app = find_app(args.app);
  if (app == nullptr) {
    std::fprintf(stderr, "streamc: unknown app '%s' (try --list)\n",
                 args.app.c_str());
    return 2;
  }
  if (!args.dump_after.empty() &&
      sit::opt::PassManager::global().find(args.dump_after) == nullptr) {
    std::fprintf(stderr,
                 "streamc: unknown pass '%s' for --dump-after "
                 "(try --list-passes)\n",
                 args.dump_after.c_str());
    return 2;
  }

  if (!args.cost_path.empty()) {
    std::string err;
    if (!sit::obs::load_cost_model(args.cost_path, &err)) {
      std::fprintf(stderr, "streamc: --cost: %s\n", err.c_str());
      return 1;
    }
  }

  sit::opt::CompileOptions copts;
  copts.level = args.level;
  copts.passes = args.passes;
  if (args.verify_each) copts.pass.verify_each = sit::opt::VerifyMode::Each;
  copts.exec.threads = args.threads;
  copts.exec.batch = args.batch;
  if (args.engine == "vm") copts.exec.engine = sit::sched::Engine::Vm;
  if (args.engine == "tree") copts.exec.engine = sit::sched::Engine::Tree;
  if (args.engine == "fused") copts.exec.engine = sit::sched::Engine::Fused;
  if (!args.dump_after.empty()) {
    copts.on_pass = [&args](const sit::obs::PassSnapshot& snap,
                            const sit::ir::NodeP& g) {
      if (snap.name == args.dump_after) {
        std::printf("--- graph after %s ---\n%s", snap.name.c_str(),
                    sit::ir::describe(g).c_str());
        // The fuse-steady pass's artifact is the trace, not a graph rewrite:
        // dump the flat bytecode with superinstructions annotated.
        if (snap.name == "fuse-steady") {
          std::printf("--- fused steady-state trace ---\n%s",
                      fused_trace_dump(g).c_str());
        }
      }
    };
  }

  sit::opt::PassContext ctx;
  sit::sched::CompiledProgram prog;
  try {
    prog = sit::opt::compile(app->make(), copts, &ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "streamc: %s: compilation failed:\n%s\n",
                 app->name.c_str(), e.what());
    return 1;
  }

  if (args.report) {
    std::printf("%s\n%s%s%s", app->name.c_str(),
                sit::opt::pass_report(prog, &ctx.rewrites).c_str(),
                fused_report(prog).c_str(), typeflow_report(prog).c_str());
  }

  sit::sched::ThreadedExecutor tex(std::move(prog), copts.exec);
  if (tex.graph().input_edge >= 0) {
    tex.set_input_generator([](std::int64_t i) {
      return static_cast<double>((i % 64) - 32) / 32.0;
    });
  }
  tex.run_steady(args.steady);

  sit::obs::MetricsSnapshot m = tex.metrics_snapshot();
  m.app = app->name;
  if (!args.quiet) {
    std::printf("%s: %s\n", app->name.c_str(),
                tex.report().to_string().c_str());
  }
  if (!args.metrics_path.empty()) {
    std::ofstream f(args.metrics_path);
    if (!f) {
      std::fprintf(stderr, "streamc: cannot write '%s'\n",
                   args.metrics_path.c_str());
      return 1;
    }
    f << m.to_json();
  }
  return 0;
}
