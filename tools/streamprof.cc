// streamprof: run a built-in app under any engine and report where the time
// goes.
//
//   streamprof --app=Vocoder [--engine=vm|tree|fused] [--threads=N]
//              [--steady=N] [--trace=FILE] [--metrics=FILE]
//              [--calibrate=FILE] [--quiet]
//   streamprof --calibrate-all=FILE [--steady=N] [--quiet]
//   streamprof --list
//   streamprof --validate FILE
//
// The run mode executes the app through ThreadedExecutor with tracing forced
// on (one thread falls back to the embedded sequential executor, so the same
// invocation profiles every engine/thread combination), prints the
// ThreadedReport line and the hot-actor / worker-utilization profile, and
// optionally writes a Chrome trace-event JSON (--trace, loadable in Perfetto
// or chrome://tracing) and a metrics snapshot (--metrics).  Every emitted
// trace is re-validated structurally before it is written; --validate runs
// the same checker over an existing file, which is what CI uses.
//
// Exception: --engine=fused runs with tracing *off* -- the fused engine
// refuses to build its whole-program trace under per-firing instrumentation
// (there are no per-actor boundaries inside the trace), so a fused profile
// reports the fused statics (superinstruction instances, eliminated
// channels) instead of per-actor timing.
//
// --calibrate writes a CostProfile (obs/costprofile.h): per-actor measured
// ns/firing joined with the static model's cycles/firing, the artifact
// `streamc --cost=FILE` / SIT_COST load back to run partitioning and
// selection on measured weights.  --calibrate-all profiles every built-in
// app and merges the runs into one corpus profile stamped with host
// metadata and the git SHA.  Both re-parse the file they wrote and fail
// loudly if it does not validate.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "apps/apps.h"
#include "linear/cost.h"
#include "obs/costprofile.h"
#include "obs/export.h"
#include "sched/texec.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: streamprof --app=NAME [--engine=vm|tree|fused] [--threads=N]\n"
      "                  [--steady=N] [--trace=FILE] [--metrics=FILE]\n"
      "                  [--calibrate=FILE] [--quiet]\n"
      "       streamprof --calibrate-all=FILE [--steady=N] [--quiet]\n"
      "       streamprof --list\n"
      "       streamprof --validate FILE\n");
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Case-insensitive app lookup so `--app=vocoder` finds "Vocoder".
const sit::apps::AppInfo* find_app(const std::string& name) {
  const std::string want = lower(name);
  for (const auto& a : sit::apps::all_apps()) {
    if (lower(a.name) == want) return &a;
  }
  return nullptr;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

int validate_file(const std::string& path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "streamprof: cannot read '%s'\n", path.c_str());
    return 2;
  }
  std::string err;
  if (!sit::obs::validate_chrome_trace(text, &err)) {
    std::fprintf(stderr, "streamprof: %s: invalid trace: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }
  std::printf("%s: valid chrome trace\n", path.c_str());
  return 0;
}

struct Args {
  std::string app;
  std::string engine;   // "", "vm", "tree", "fused"
  int threads{0};       // 0 = SIT_THREADS
  int steady{32};
  std::string trace_path;
  std::string metrics_path;
  std::string validate_path;
  std::string calibrate_path;      // single-app CostProfile
  std::string calibrate_all_path;  // merged corpus over all apps
  bool list{false};
  bool quiet{false};
};

// Accepts both --key=value and --key value.
bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string val;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      val = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    const auto take = [&]() -> bool {
      if (!val.empty()) return true;
      if (i + 1 >= argc) return false;
      val = argv[++i];
      return true;
    };
    if (arg == "--list") {
      a->list = true;
    } else if (arg == "--quiet") {
      a->quiet = true;
    } else if (arg == "--app") {
      if (!take()) return false;
      a->app = val;
    } else if (arg == "--engine") {
      if (!take()) return false;
      a->engine = lower(val);
      if (a->engine != "vm" && a->engine != "tree" && a->engine != "fused") {
        return false;
      }
    } else if (arg == "--threads") {
      if (!take()) return false;
      a->threads = std::atoi(val.c_str());
    } else if (arg == "--steady") {
      if (!take()) return false;
      a->steady = std::atoi(val.c_str());
      if (a->steady < 1) return false;
    } else if (arg == "--trace") {
      if (!take()) return false;
      a->trace_path = val;
    } else if (arg == "--metrics") {
      if (!take()) return false;
      a->metrics_path = val;
    } else if (arg == "--validate") {
      if (!take()) return false;
      a->validate_path = val;
    } else if (arg == "--calibrate") {
      if (!take()) return false;
      a->calibrate_path = val;
    } else if (arg == "--calibrate-all") {
      if (!take()) return false;
      a->calibrate_all_path = val;
    } else {
      return false;
    }
  }
  return true;
}

// ---- calibration ------------------------------------------------------------

// Provenance for the corpus profile (mirrors bench_util.h, which tools/ does
// not include to keep bench-only helpers out of the drivers).
std::string profile_git_sha() {
  if (const char* sha = std::getenv("GITHUB_SHA")) return sha;
  char buf[64] = {};
  std::string sha = "unknown";
  if (FILE* p = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    if (fgets(buf, sizeof buf, p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) sha = s;
    }
    pclose(p);
  }
  return sha;
}

std::string profile_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  if (const char* h = std::getenv("HOSTNAME")) return h;
  return "unknown";
}

// The static model's cycles-per-firing by flat actor name: the join key that
// lets a loaded profile report measured-vs-modeled divergence per actor.
std::map<std::string, double> static_model_map(const sit::runtime::FlatGraph& g) {
  std::map<std::string, double> m;
  for (const auto& a : g.actors) {
    if (a.is_filter()) m[a.name] = sit::linear::leaf_ops_per_firing(*a.node);
  }
  return m;
}

// Run one app under the profiling configuration.  Tracing is forced on so
// FiringStats capture per-actor wall time -- except under the fused engine,
// whose whole-program trace refuses per-firing instrumentation.
std::unique_ptr<sit::sched::ThreadedExecutor> run_app(
    const sit::apps::AppInfo& app, const Args& args) {
  sit::sched::ExecOptions opts;
  opts.trace = args.engine == "fused" ? sit::sched::TraceMode::Off
                                      : sit::sched::TraceMode::On;
  opts.threads = args.threads;
  if (args.engine == "vm") opts.engine = sit::sched::Engine::Vm;
  if (args.engine == "tree") opts.engine = sit::sched::Engine::Tree;
  if (args.engine == "fused") opts.engine = sit::sched::Engine::Fused;

  auto tex = std::make_unique<sit::sched::ThreadedExecutor>(app.make(), opts);
  if (tex->graph().input_edge >= 0) {
    // Deterministic default feed for apps with an external input port.
    tex->set_input_generator([](std::int64_t i) {
      return static_cast<double>((i % 64) - 32) / 32.0;
    });
  }
  tex->run_steady(args.steady);
  return tex;
}

// Write the profile and re-parse it: a CostProfile that does not survive its
// own round trip must never reach CI artifact storage.
int write_profile(const sit::obs::CostProfile& profile, const std::string& path,
                  bool quiet) {
  const std::string text = profile.to_json();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "streamprof: cannot write '%s'\n", path.c_str());
      return 1;
    }
    f << text;
  }
  sit::obs::CostProfile back;
  std::string err;
  if (!sit::obs::CostProfile::parse(text, &back, &err)) {
    std::fprintf(stderr,
                 "streamprof: emitted profile failed validation: %s\n",
                 err.c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("wrote %s (%zu actors, %zu apps, %.3f cycles/ns)\n",
                path.c_str(), profile.actors.size(), profile.apps.size(),
                profile.cycles_per_ns());
  }
  return 0;
}

// Profile every built-in app and merge the runs into one corpus profile.
int calibrate_all(const Args& args) {
  sit::obs::CostProfile corpus;
  corpus.git_sha = profile_git_sha();
  corpus.hostname = profile_hostname();
  corpus.cpus = static_cast<int>(std::thread::hardware_concurrency());
  for (const auto& app : sit::apps::all_apps()) {
    auto tex = run_app(app, args);
    sit::obs::MetricsSnapshot m = tex->metrics_snapshot();
    m.app = app.name;
    corpus.add_run(m, static_model_map(tex->graph()));
    if (!args.quiet) {
      std::printf("calibrated %-16s (%zu actors so far)\n", app.name.c_str(),
                  corpus.actors.size());
    }
  }
  if (corpus.actors.empty()) {
    std::fprintf(stderr,
                 "streamprof: no timed firings captured (SIT_OBS=OFF build?); "
                 "refusing to write an empty profile\n");
    return 1;
  }
  return write_profile(corpus, args.calibrate_all_path, args.quiet);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    usage(stderr);
    return 2;
  }
  if (args.list) {
    for (const auto& a : sit::apps::all_apps()) {
      std::printf("%-16s %s\n", a.name.c_str(), a.description.c_str());
    }
    return 0;
  }
  if (!args.validate_path.empty()) return validate_file(args.validate_path);
  if (args.engine == "fused" &&
      (!args.calibrate_path.empty() || !args.calibrate_all_path.empty())) {
    std::fprintf(stderr,
                 "streamprof: --calibrate needs per-actor timing, which the "
                 "fused trace has no boundaries for; use --engine=vm or "
                 "--engine=tree\n");
    return 2;
  }
  if (!args.calibrate_all_path.empty()) return calibrate_all(args);
  if (args.app.empty()) {
    usage(stderr);
    return 2;
  }

  const sit::apps::AppInfo* app = find_app(args.app);
  if (app == nullptr) {
    std::fprintf(stderr,
                 "streamprof: unknown app '%s' (try --list)\n",
                 args.app.c_str());
    return 2;
  }

  std::unique_ptr<sit::sched::ThreadedExecutor> texp = run_app(*app, args);
  sit::sched::ThreadedExecutor& tex = *texp;

  sit::obs::MetricsSnapshot m = tex.metrics_snapshot();
  m.app = app->name;

  if (!args.quiet) {
    std::printf("%s: %s\n", app->name.c_str(), tex.report().to_string().c_str());
    std::fputs(sit::obs::profile_report(m).c_str(), stdout);
  }

  if (!args.calibrate_path.empty()) {
    sit::obs::CostProfile profile;
    profile.git_sha = profile_git_sha();
    profile.hostname = profile_hostname();
    profile.cpus = static_cast<int>(std::thread::hardware_concurrency());
    profile.add_run(m, static_model_map(tex.graph()));
    if (profile.actors.empty()) {
      std::fprintf(stderr,
                   "streamprof: no timed firings captured (SIT_OBS=OFF "
                   "build?); refusing to write an empty profile\n");
      return 1;
    }
    const int rc = write_profile(profile, args.calibrate_path, args.quiet);
    if (rc != 0) return rc;
  }

  if (!args.metrics_path.empty()) {
    std::ofstream f(args.metrics_path);
    if (!f) {
      std::fprintf(stderr, "streamprof: cannot write '%s'\n",
                   args.metrics_path.c_str());
      return 1;
    }
    f << m.to_json();
  }

  if (!args.trace_path.empty()) {
    if (args.engine == "fused") {
      std::fprintf(stderr,
                   "streamprof: --trace is unavailable under --engine=fused "
                   "(the fused trace runs without per-firing events)\n");
      return 1;
    }
    const sit::obs::Recorder* rec = tex.recorder();
    if (rec == nullptr) {
      std::fprintf(stderr, "streamprof: tracing compiled out (SIT_OBS=OFF)\n");
      return 1;
    }
    const auto& g = tex.graph();
    std::vector<std::string> actor_names;
    actor_names.reserve(g.actors.size());
    for (const auto& a : g.actors) actor_names.push_back(a.name);
    std::vector<std::string> edge_names;
    edge_names.reserve(g.edges.size());
    for (std::size_t e = 0; e < m.edges.size(); ++e) {
      edge_names.push_back(m.edges[e].name);
    }
    const std::string trace = sit::obs::chrome_trace_json(
        *rec, actor_names, edge_names, app->name, m.engine);
    std::string err;
    if (!sit::obs::validate_chrome_trace(trace, &err)) {
      std::fprintf(stderr, "streamprof: emitted trace failed validation: %s\n",
                   err.c_str());
      return 1;
    }
    std::ofstream f(args.trace_path);
    if (!f) {
      std::fprintf(stderr, "streamprof: cannot write '%s'\n",
                   args.trace_path.c_str());
      return 1;
    }
    f << trace;
    if (!args.quiet) {
      std::printf("wrote %s (%lld events, %lld dropped)\n",
                  args.trace_path.c_str(),
                  static_cast<long long>(m.trace_events),
                  static_cast<long long>(m.trace_dropped));
    }
  }
  return 0;
}
