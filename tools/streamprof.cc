// streamprof: run a built-in app under any engine and report where the time
// goes.
//
//   streamprof --app=Vocoder [--engine=vm|tree] [--threads=N] [--steady=N]
//              [--trace=FILE] [--metrics=FILE] [--quiet]
//   streamprof --list
//   streamprof --validate FILE
//
// The run mode executes the app through ThreadedExecutor with tracing forced
// on (one thread falls back to the embedded sequential executor, so the same
// invocation profiles every engine/thread combination), prints the
// ThreadedReport line and the hot-actor / worker-utilization profile, and
// optionally writes a Chrome trace-event JSON (--trace, loadable in Perfetto
// or chrome://tracing) and a metrics snapshot (--metrics).  Every emitted
// trace is re-validated structurally before it is written; --validate runs
// the same checker over an existing file, which is what CI uses.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "obs/export.h"
#include "sched/texec.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: streamprof --app=NAME [--engine=vm|tree] [--threads=N]\n"
      "                  [--steady=N] [--trace=FILE] [--metrics=FILE] "
      "[--quiet]\n"
      "       streamprof --list\n"
      "       streamprof --validate FILE\n");
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Case-insensitive app lookup so `--app=vocoder` finds "Vocoder".
const sit::apps::AppInfo* find_app(const std::string& name) {
  const std::string want = lower(name);
  for (const auto& a : sit::apps::all_apps()) {
    if (lower(a.name) == want) return &a;
  }
  return nullptr;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

int validate_file(const std::string& path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "streamprof: cannot read '%s'\n", path.c_str());
    return 2;
  }
  std::string err;
  if (!sit::obs::validate_chrome_trace(text, &err)) {
    std::fprintf(stderr, "streamprof: %s: invalid trace: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }
  std::printf("%s: valid chrome trace\n", path.c_str());
  return 0;
}

struct Args {
  std::string app;
  std::string engine;   // "", "vm", "tree"
  int threads{0};       // 0 = SIT_THREADS
  int steady{32};
  std::string trace_path;
  std::string metrics_path;
  std::string validate_path;
  bool list{false};
  bool quiet{false};
};

// Accepts both --key=value and --key value.
bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string val;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      val = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    const auto take = [&]() -> bool {
      if (!val.empty()) return true;
      if (i + 1 >= argc) return false;
      val = argv[++i];
      return true;
    };
    if (arg == "--list") {
      a->list = true;
    } else if (arg == "--quiet") {
      a->quiet = true;
    } else if (arg == "--app") {
      if (!take()) return false;
      a->app = val;
    } else if (arg == "--engine") {
      if (!take()) return false;
      a->engine = lower(val);
      if (a->engine != "vm" && a->engine != "tree") return false;
    } else if (arg == "--threads") {
      if (!take()) return false;
      a->threads = std::atoi(val.c_str());
    } else if (arg == "--steady") {
      if (!take()) return false;
      a->steady = std::atoi(val.c_str());
      if (a->steady < 1) return false;
    } else if (arg == "--trace") {
      if (!take()) return false;
      a->trace_path = val;
    } else if (arg == "--metrics") {
      if (!take()) return false;
      a->metrics_path = val;
    } else if (arg == "--validate") {
      if (!take()) return false;
      a->validate_path = val;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    usage(stderr);
    return 2;
  }
  if (args.list) {
    for (const auto& a : sit::apps::all_apps()) {
      std::printf("%-16s %s\n", a.name.c_str(), a.description.c_str());
    }
    return 0;
  }
  if (!args.validate_path.empty()) return validate_file(args.validate_path);
  if (args.app.empty()) {
    usage(stderr);
    return 2;
  }

  const sit::apps::AppInfo* app = find_app(args.app);
  if (app == nullptr) {
    std::fprintf(stderr,
                 "streamprof: unknown app '%s' (try --list)\n",
                 args.app.c_str());
    return 2;
  }

  sit::sched::ExecOptions opts;
  opts.trace = sit::sched::TraceMode::On;
  opts.threads = args.threads;
  if (args.engine == "vm") opts.engine = sit::sched::Engine::Vm;
  if (args.engine == "tree") opts.engine = sit::sched::Engine::Tree;

  sit::sched::ThreadedExecutor tex(app->make(), opts);
  if (tex.graph().input_edge >= 0) {
    // Deterministic default feed for apps with an external input port.
    tex.set_input_generator([](std::int64_t i) {
      return static_cast<double>((i % 64) - 32) / 32.0;
    });
  }
  tex.run_steady(args.steady);

  sit::obs::MetricsSnapshot m = tex.metrics_snapshot();
  m.app = app->name;

  if (!args.quiet) {
    std::printf("%s: %s\n", app->name.c_str(), tex.report().to_string().c_str());
    std::fputs(sit::obs::profile_report(m).c_str(), stdout);
  }

  if (!args.metrics_path.empty()) {
    std::ofstream f(args.metrics_path);
    if (!f) {
      std::fprintf(stderr, "streamprof: cannot write '%s'\n",
                   args.metrics_path.c_str());
      return 1;
    }
    f << m.to_json();
  }

  if (!args.trace_path.empty()) {
    const sit::obs::Recorder* rec = tex.recorder();
    if (rec == nullptr) {
      std::fprintf(stderr, "streamprof: tracing compiled out (SIT_OBS=OFF)\n");
      return 1;
    }
    const auto& g = tex.graph();
    std::vector<std::string> actor_names;
    actor_names.reserve(g.actors.size());
    for (const auto& a : g.actors) actor_names.push_back(a.name);
    std::vector<std::string> edge_names;
    edge_names.reserve(g.edges.size());
    for (std::size_t e = 0; e < m.edges.size(); ++e) {
      edge_names.push_back(m.edges[e].name);
    }
    const std::string trace = sit::obs::chrome_trace_json(
        *rec, actor_names, edge_names, app->name, m.engine);
    std::string err;
    if (!sit::obs::validate_chrome_trace(trace, &err)) {
      std::fprintf(stderr, "streamprof: emitted trace failed validation: %s\n",
                   err.c_str());
      return 1;
    }
    std::ofstream f(args.trace_path);
    if (!f) {
      std::fprintf(stderr, "streamprof: cannot write '%s'\n",
                   args.trace_path.c_str());
      return 1;
    }
    f << trace;
    if (!args.quiet) {
      std::printf("wrote %s (%lld events, %lld dropped)\n",
                  args.trace_path.c_str(),
                  static_cast<long long>(m.trace_events),
                  static_cast<long long>(m.trace_dropped));
    }
  }
  return 0;
}
