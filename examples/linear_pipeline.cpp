// The paper's linear optimizations, end to end, on a rate-converting FIR
// chain: extraction -> pipeline/split-join combination -> frequency
// translation -> optimization selection, with a numerical equivalence check
// between the original and every optimized variant.

#include <cmath>
#include <cstdio>
#include <random>

#include "apps/common.h"
#include "ir/dsl.h"
#include "linear/combine.h"
#include "linear/cost.h"
#include "linear/extract.h"
#include "linear/frequency.h"
#include "linear/optimize.h"
#include "sched/exec.h"

using namespace sit;
using namespace sit::ir;

namespace {

std::vector<double> run(const NodeP& g, int items) {
  sched::Executor ex(clone(g));
  ex.set_input_generator([](std::int64_t i) {
    return std::sin(0.05 * static_cast<double>(i)) + 0.3 * std::sin(0.31 * static_cast<double>(i));
  });
  std::vector<double> out;
  while (static_cast<int>(out.size()) < items) {
    const auto got = ex.run_steady(1);
    out.insert(out.end(), got.begin(), got.end());
  }
  out.resize(static_cast<std::size_t>(items));
  return out;
}

double max_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace

int main() {
  // A 2x oversampler: expander, 48-tap interpolation filter, 32-tap shaper.
  NodeP chain = make_pipeline("chain", {apps::upsample("up2", 2),
                                        apps::lowpass_fir("interp", 48, 0.2),
                                        apps::lowpass_fir("shape", 32, 0.22)});

  // --- extraction of each stage ---------------------------------------------
  std::vector<linear::LinearRep> reps;
  visit(chain, [&](const NodeP& n) {
    if (n->kind != Node::Kind::Filter) return;
    auto r = linear::extract(n->filter);
    std::printf("%-8s -> %s", n->name.c_str(),
                r.rep ? r.rep->describe().substr(0, 60).c_str() : "not linear");
    std::printf("\n");
    if (r.rep) reps.push_back(*r.rep);
  });

  // --- whole-chain combination ------------------------------------------------
  const linear::LinearRep combined = linear::combine_pipeline(reps);
  std::printf("\ncombined: peek=%d pop=%d push=%d (one matrix instead of %zu "
              "filters)\n", combined.peek, combined.pop, combined.push,
              reps.size());

  NodeP collapsed = make_filter(linear::to_filter(combined, "collapsed"));
  const auto ref = run(chain, 400);
  std::printf("collapsed == original on 400 samples?  max|diff| = %.2e\n",
              max_diff(ref, run(collapsed, 400)));

  // --- frequency translation ---------------------------------------------------
  if (linear::frequency_applicable(combined)) {
    std::size_t nfft = linear::best_fft_size(combined);
    if (nfft == 0) nfft = 256;  // force translation even if not profitable
    NodeP freq = linear::make_frequency_filter(combined, "freq", nfft);
    std::printf("frequency version (FFT size %zu): max|diff| = %.2e\n", nfft,
                max_diff(ref, run(freq, 400)));
  }

  // --- automatic selection -------------------------------------------------------
  linear::OptimizeStats stats;
  NodeP best = linear::optimize_selection(chain, {}, &stats);
  std::printf("\nautomatic selection: %d linear filters, %d collapses, %d "
              "frequency nodes\n", stats.linear_filters, stats.combinations,
              stats.frequency_nodes);
  std::printf("modeled cost per input item: %.1f -> %.1f (%.2fx)\n",
              stats.cost_before, stats.cost_after,
              stats.cost_before / stats.cost_after);
  std::printf("optimized == original?  max|diff| = %.2e\n",
              max_diff(ref, run(best, 400)));
  return 0;
}
