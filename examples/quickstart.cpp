// Quickstart: author a stream program with the builder DSL, validate it,
// inspect its structure and schedule, and execute it.
//
// The program is a miniature software radio front end:
//   source -> low-pass FIR -> 2-band equalizer (split-join) -> sum -> sink

#include <cstdio>

#include "apps/common.h"
#include "ir/dsl.h"
#include "ir/validate.h"
#include "linear/extract.h"
#include "sched/exec.h"

using namespace sit;
using namespace sit::ir;
using namespace sit::ir::dsl;

int main() {
  // 1. Filters.  Work functions are ordinary C-like code over the channels.
  NodeP lp = apps::lowpass_fir("lowpass", 16, 0.25);
  NodeP band_lo = apps::bandpass_fir("band_lo", 16, 0.02, 0.12);
  NodeP band_hi = apps::bandpass_fir("band_hi", 16, 0.12, 0.24);
  NodeP sum = apps::adder("sum", 2);

  // 2. Composition: pipelines and split-joins nest freely.
  NodeP equalizer = make_splitjoin("equalizer", duplicate_split(),
                                   roundrobin_join({1, 1}), {band_lo, band_hi});
  NodeP radio = make_pipeline("MiniRadio", {lp, equalizer, sum});

  // 3. Semantic checking (the StreamIt appendix rules).
  check_or_throw(radio);
  std::printf("--- stream graph ---\n%s\n", describe(radio).c_str());

  // 4. Compile: flatten, solve balance equations, derive the init epoch.
  sched::Executor ex(radio);
  std::printf("--- schedule ---\n%s\n",
              ex.schedule().describe(ex.graph()).c_str());

  // 5. Execute on a synthetic input stream.
  ex.set_input_generator([](std::int64_t i) {
    return i % 8 < 4 ? 1.0 : -1.0;  // square wave
  });
  const auto out = ex.run_steady(8);
  std::printf("--- first outputs ---\n");
  for (std::size_t i = 0; i < out.size() && i < 8; ++i) {
    std::printf("  y[%zu] = %+.5f\n", i, out[i]);
  }

  // 6. The compiler's view: the FIR is provably linear.
  const auto rep = linear::extract(lp->filter);
  std::printf("\n--- linear extraction of 'lowpass' ---\n%s",
              rep.rep ? rep.rep->describe().c_str()
                      : ("not linear: " + rep.reason + "\n").c_str());
  return 0;
}
