// Teleport messaging on the paper's frequency-hopping radio: the detector
// filter teleports `setf` upstream to the RF front end with latency [4, 6]
// information wavefronts, and the constrained scheduler delivers it at the
// exact firing the semantics prescribe.

#include <cstdio>

#include "apps/radio.h"
#include "msg/messaging.h"

int main() {
  const auto radio = sit::apps::make_freq_hop_radio(16);

  sit::msg::MessagingExecutor ex(radio.graph);
  ex.register_receiver(radio.portal, radio.receiver);

  std::printf("running the frequency-hopping radio (N=%d) for 400 steady "
              "states...\n\n", radio.n);
  ex.run_steady(400);

  const auto& st = ex.stats();
  std::printf("messages sent:              %lld\n",
              static_cast<long long>(st.sent));
  std::printf("messages delivered:         %lld\n",
              static_cast<long long>(st.delivered));
  std::printf("constraint-induced stalls:  %lld\n",
              static_cast<long long>(st.constraint_stalls));
  std::printf("\ndelivery timeline (receiver = %s, upstream of the sender, so "
              "each message\nlands immediately AFTER the last firing that "
              "affects the triggering data):\n", radio.receiver.c_str());
  for (std::size_t i = 0; i < st.deliveries.size(); ++i) {
    const auto& d = st.deliveries[i];
    std::printf("  #%zu  %s.%s -> %s, %s firing %lld\n", i, d.portal.c_str(),
                d.method.c_str(), d.receiver.c_str(),
                d.before ? "before" : "after",
                static_cast<long long>(d.receiver_firing));
  }
  std::printf("\nEvery retune lands on a precise information wavefront -- no "
              "manual tagging of\nthe data stream was needed.\n");
  return 0;
}
