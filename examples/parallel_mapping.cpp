// Mapping a real benchmark (FilterBank) onto the simulated 16-core grid with
// every strategy from the paper's evaluation, and inspecting what each
// transformation did to the graph.

#include <cstdio>

#include "apps/apps.h"
#include "parallel/strategies.h"
#include "parallel/transforms.h"

using namespace sit;
using parallel::Strategy;

int main() {
  const auto app = apps::make_app("FilterBank");
  machine::MachineConfig cfg;  // 4x4 grid, 450 MHz single-issue cores

  std::printf("FilterBank on a %dx%d grid (%d cores)\n", cfg.grid_w, cfg.grid_h,
              cfg.cores());
  std::printf("original graph: %d filters\n\n", ir::count_filters(app));

  const Strategy all[] = {Strategy::TaskParallel, Strategy::FineGrainedData,
                          Strategy::TaskData, Strategy::TaskSwp,
                          Strategy::TaskDataSwp, Strategy::SpaceMultiplex};

  std::printf("%-20s %8s %10s %10s %9s\n", "strategy", "actors", "speedup",
              "util", "MFLOPS");
  for (Strategy s : all) {
    const auto r = parallel::run_strategy(app, s, cfg);
    std::printf("%-20s %8d %9.2fx %9.1f%% %9.0f\n", parallel::to_string(s),
                r.actors, r.speedup_vs_single, 100.0 * r.sim.utilization,
                r.sim.mflops);
  }

  // What coarse-grained data parallelism actually built:
  const auto dp = parallel::data_parallelize(ir::clone(app), cfg.cores());
  std::printf("\nafter coarsen + fiss: %d leaf actors\n", ir::count_filters(dp));
  int fused = 0, replicas = 0;
  ir::visit(dp, [&](const ir::NodeP& n) {
    if (n->kind == ir::Node::Kind::Native) {
      if (n->name.find("_coarse") != std::string::npos) ++fused;
      if (n->name.find("_rep") != std::string::npos) ++replicas;
    }
  });
  std::printf("  fused stateless regions: %d\n", fused);
  std::printf("  peeking-fission replicas: %d\n", replicas);

  // Statefulness is what gates fission (the paper's central constraint).
  // Check the graphs *between* the I/O endpoints: FilterBank's processing is
  // stateless (it parallelizes); Radar's channel FIRs keep delay lines.
  auto interior_stateful = [](const char* name) {
    const auto g = apps::make_app(name);
    bool any = false;
    ir::visit(g, [&](const ir::NodeP& n) {
      if (!n->is_leaf() || n->name == "src" || n->name.rfind("snk", 0) == 0) return;
      if (parallel::leaf_stateful(*n)) any = true;
    });
    return any;
  };
  std::printf("\ninterior stateful? FilterBank=%s  Radar=%s\n",
              interior_stateful("FilterBank") ? "yes" : "no",
              interior_stateful("Radar") ? "yes" : "no");
  return 0;
}
