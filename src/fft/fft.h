#pragma once
// FFT substrate.
//
// The paper's frequency translation needs a fast transform; the original
// implementation linked FFTW.  We provide our own: an iterative radix-2
// decimation-in-time FFT with cached twiddle factors and bit-reversal
// tables, plus the overlap-save block convolution that the frequency-domain
// filter executes.  A naive O(N^2) DFT is included for verification.

#include <complex>
#include <cstddef>
#include <vector>

namespace sit::fft {

using cplx = std::complex<double>;

// In-place FFT / inverse FFT.  n must be a power of two.
void fft_inplace(std::vector<cplx>& a, bool inverse);

// Convenience copies.
std::vector<cplx> fft(const std::vector<cplx>& a);
std::vector<cplx> ifft(const std::vector<cplx>& a);

// Naive DFT for verification (O(n^2), any n).
std::vector<cplx> dft_naive(const std::vector<cplx>& a);

// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

// Full linear convolution of two real signals (sizes add - 1), via FFT.
std::vector<double> convolve(const std::vector<double>& x,
                             const std::vector<double>& h);

// Number of real-arithmetic operations one size-n complex FFT costs in our
// machine model (used by the linear cost model to decide when frequency
// translation wins).  ~5 n log2 n for radix-2.
double fft_cost_flops(std::size_t n);

// Streaming overlap-save convolution: y[i] = sum_k h[k] * x[i - k], fed
// block-by-block.  `history` persists between blocks so the first taps see
// zeros (or preloaded history for steady-state alignment).
class OverlapSave {
 public:
  // fft_size must be a power of two > taps; block() consumes and produces
  // exactly fft_size - taps + 1 samples per call.
  OverlapSave(std::vector<double> taps, std::size_t fft_size);

  [[nodiscard]] std::size_t block_size() const { return block_; }
  [[nodiscard]] std::size_t fft_size() const { return n_; }
  [[nodiscard]] std::size_t taps() const { return k_; }

  // Pre-load the K-1 history samples (most recent last).
  void prime_history(const std::vector<double>& past);

  // Process one block of block_size() input samples; returns block_size()
  // outputs where output j corresponds to the convolution aligned so the
  // newest input sample of the window is x[j] (i.e. y[j] uses x[j-k]).
  std::vector<double> process(const std::vector<double>& in);

  // Real-op cost of one block (two FFTs + pointwise multiply).
  [[nodiscard]] double cost_per_block() const;

 private:
  std::size_t n_;      // FFT size
  std::size_t k_;      // taps
  std::size_t block_;  // n - k + 1
  std::vector<cplx> h_freq_;
  std::vector<double> history_;  // k-1 most recent past samples
};

}  // namespace sit::fft
