#include "fft/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

namespace sit::fft {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Twiddle/bit-reversal caches keyed by size.  The frequency filters call the
// FFT with a handful of distinct sizes millions of times; caching the tables
// is the difference between an FFT and a trig benchmark.
struct Tables {
  std::vector<std::size_t> rev;
  std::vector<cplx> w;  // forward twiddles, per stage packed
};

const Tables& tables_for(std::size_t n) {
  static std::unordered_map<std::size_t, Tables> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;

  Tables t;
  t.rev.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    }
    t.rev[i] = r;
  }
  t.w.resize(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(i) /
                       static_cast<double>(n);
    t.w[i] = cplx(std::cos(ang), std::sin(ang));
  }
  return cache.emplace(n, std::move(t)).first->second;
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n <= 1) return;
  if (!is_pow2(n)) throw std::invalid_argument("FFT size must be a power of two");

  const Tables& t = tables_for(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < t.rev[i]) std::swap(a[i], a[t.rev[i]]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    const std::size_t half = len / 2;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < half; ++j) {
        cplx w = t.w[j * stride];
        if (inverse) w = std::conj(w);
        const cplx u = a[base + j];
        const cplx v = a[base + j + half] * w;
        a[base + j] = u + v;
        a[base + j + half] = u - v;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv;
  }
}

std::vector<cplx> fft(const std::vector<cplx>& a) {
  auto b = a;
  fft_inplace(b, false);
  return b;
}

std::vector<cplx> ifft(const std::vector<cplx>& a) {
  auto b = a;
  fft_inplace(b, true);
  return b;
}

std::vector<cplx> dft_naive(const std::vector<cplx>& a) {
  const std::size_t n = a.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += a[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

double fft_cost_flops(std::size_t n) {
  if (n <= 1) return 0.0;
  double log2n = 0.0;
  std::size_t p = n;
  while (p > 1) {
    p >>= 1;
    log2n += 1.0;
  }
  return 5.0 * static_cast<double>(n) * log2n;
}

std::vector<double> convolve(const std::vector<double>& x,
                             const std::vector<double>& h) {
  if (x.empty() || h.empty()) return {};
  const std::size_t out_len = x.size() + h.size() - 1;
  const std::size_t n = next_pow2(out_len);
  std::vector<cplx> fx(n), fh(n);
  for (std::size_t i = 0; i < x.size(); ++i) fx[i] = cplx(x[i], 0.0);
  for (std::size_t i = 0; i < h.size(); ++i) fh[i] = cplx(h[i], 0.0);
  fft_inplace(fx, false);
  fft_inplace(fh, false);
  for (std::size_t i = 0; i < n; ++i) fx[i] *= fh[i];
  fft_inplace(fx, true);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fx[i].real();
  return out;
}

OverlapSave::OverlapSave(std::vector<double> taps, std::size_t fft_size)
    : n_(fft_size), k_(taps.size()) {
  if (!is_pow2(n_)) throw std::invalid_argument("overlap-save FFT size must be pow2");
  if (k_ == 0 || k_ > n_) throw std::invalid_argument("overlap-save needs 0 < taps <= fft size");
  block_ = n_ - k_ + 1;
  std::vector<cplx> h(n_);
  for (std::size_t i = 0; i < k_; ++i) h[i] = cplx(taps[i], 0.0);
  fft_inplace(h, false);
  h_freq_ = std::move(h);
  history_.assign(k_ - 1, 0.0);
}

void OverlapSave::prime_history(const std::vector<double>& past) {
  if (past.size() != k_ - 1) {
    throw std::invalid_argument("history must have taps-1 samples");
  }
  history_ = past;
}

std::vector<double> OverlapSave::process(const std::vector<double>& in) {
  if (in.size() != block_) {
    throw std::invalid_argument("overlap-save block size mismatch");
  }
  std::vector<cplx> buf(n_);
  for (std::size_t i = 0; i < k_ - 1; ++i) buf[i] = cplx(history_[i], 0.0);
  for (std::size_t i = 0; i < block_; ++i) buf[k_ - 1 + i] = cplx(in[i], 0.0);

  fft_inplace(buf, false);
  for (std::size_t i = 0; i < n_; ++i) buf[i] *= h_freq_[i];
  fft_inplace(buf, true);

  std::vector<double> out(block_);
  // Outputs k-1 .. n-1 of the circular convolution are the valid linear ones;
  // output j here is y aligned to input sample j of this block.
  for (std::size_t i = 0; i < block_; ++i) out[i] = buf[k_ - 1 + i].real();

  // Slide history: keep the most recent k-1 samples.
  if (k_ > 1) {
    std::vector<double> next(k_ - 1);
    const std::size_t keep = k_ - 1;
    for (std::size_t i = 0; i < keep; ++i) {
      const std::size_t pos_from_end = keep - i;  // 1..keep
      if (pos_from_end <= block_) {
        next[i] = in[block_ - pos_from_end];
      } else {
        next[i] = history_[history_.size() - (pos_from_end - block_)];
      }
    }
    history_ = std::move(next);
  }
  return out;
}

double OverlapSave::cost_per_block() const {
  // Forward FFT + inverse FFT + N complex multiplies (6 real ops each).
  return 2.0 * fft_cost_flops(n_) + 6.0 * static_cast<double>(n_);
}

}  // namespace sit::fft
