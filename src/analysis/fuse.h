#pragma once
// Steady-state fusion admissibility + trace-buffer sizing.
//
// The fused engine (runtime/fused.h) compiles one whole steady-state
// iteration into a single flat bytecode trace: every actor's firings are
// inlined in single-appearance schedule order and every fully-internal
// channel is lowered to a flat array indexed by statically-known cursors.
// fuse_plan() decides, before any code is generated, whether that trace
// would be *exactly* equivalent to the per-actor execution, and sizes the
// per-edge arrays from the static channel-bound analysis (bounds_chan.h):
//
//   * carry[e]   -- the post-init level L0: items that live across iteration
//                   boundaries (peek windows, feedback delays).  The array
//                   holds carry + traffic items; the carry block is moved to
//                   the front after each iteration.
//   * traffic[e] -- items crossing the edge per steady state; the trace's
//                   write cursor starts at carry and must end at
//                   carry + traffic every iteration (checked at runtime).
//
// Refusal reasons are stable kebab-case strings (they surface through
// streamc --report and obs::MetricsSnapshot.fallback_detail):
//
//   not-single-appearance:<actor>  the steady state does not admit firing
//                                  each actor's full repetition count in
//                                  topological order (e.g. a tight feedback
//                                  loop whose delay cannot cover a whole
//                                  iteration) -- the trace fires actors that
//                                  way, so its firing order would deadlock.
//   vm-fallback:<filter>           the filter's work function is outside the
//                                  bytecode subset (compile_filter refused),
//                                  so there is no template to inline.
//   teleport-send:<filter>         the filter sends teleport messages;
//                                  message emission is firing-interleaved
//                                  and cannot be batched into a flat trace.
//
// The executor adds two *runtime* refusals of its own on top of this static
// plan: message-sink-attached and tracing-enabled (sched/exec.cc) -- both
// are observation channels that want per-firing granularity.

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace sit::analysis {

struct FusePlan {
  bool admissible{false};
  std::string refusal;  // stable kebab-case reason when !admissible

  // Per-edge, -1 on the external boundary edges (which keep ring channels).
  std::vector<std::int64_t> carry;    // post-init level L0
  std::vector<std::int64_t> traffic;  // items per steady state

  int internal_edges{0};  // channels the trace eliminates
};

// Requires a schedule computed from this exact graph (make_schedule output).
// Never throws on an inadmissible program -- the plan carries the refusal.
FusePlan fuse_plan(const runtime::FlatGraph& g, const sched::Schedule& s);

}  // namespace sit::analysis
