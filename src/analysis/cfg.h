#pragma once
// Control-flow graph over the work-function AST, plus the generic worklist
// fixpoint solver that every dataflow pass in this directory runs on.
//
// The AST is structured (no goto/break), so the CFG is built by a single
// recursive lowering: If becomes a diamond, For becomes
//
//     ForInit -> ForTest -+-> ForBody -> (body ...) -> ForInc --+
//                  ^      |                                     |
//                  |      +-> ForExit -> (loop exit)            |
//                  +--------------------------------------------+
//
// The ForBody/ForExit "assume" nodes carry the branch outcome so that
// edge-insensitive passes can refine loop-variable facts (e.g. the interval
// pass clamps `var < hi` on the body side).
//
// with ForTest the loop-head join point (the place widening applies).
// Primitive statements (Assign, ArrayAssign, Push, PopN, Send) become one
// node each.  Every node records a human-readable `where` path like
// "work.for(i).body[2]" used by diagnostics.

#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ast.h"

namespace sit::analysis {

struct CfgNode {
  enum class Kind {
    Entry,
    Exit,
    Stmt,     // primitive statement (stmt points at it)
    Branch,   // If condition (stmt = the If)
    Join,     // If merge point
    ForInit,  // loop variable := lo        (stmt = the For)
    ForTest,  // loop head; var < hi        (stmt = the For)
    ForBody,  // assume var < hi            (body-side edge of ForTest)
    ForExit,  // assume var >= hi           (exit-side edge of ForTest)
    ForInc,   // var += step                (stmt = the For)
  };

  Kind kind{};
  const ir::Stmt* stmt{nullptr};
  std::vector<int> succ;
  std::vector<int> pred;
  std::string where;         // source path for diagnostics
  bool loop_head{false};     // true for ForTest nodes

  // ForTest only: scalar names assigned anywhere in the loop body, plus the
  // loop variable itself.  Joins widen ONLY these at this head -- a variable
  // the loop never writes is invariant around its back edge, so its value at
  // the head follows the enclosing level (which stabilizes on its own) and
  // widening it here would destroy precision an outer clamp already earned.
  std::set<std::string> loop_mods;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry{0};
  int exit{1};

  // First CFG node of each lowered statement (primitive -> its Stmt node,
  // If -> Branch, For -> ForInit), in lowering order.  A statement subtree
  // that is shared (appears twice in the body) contributes one entry per
  // occurrence; consumers that re-walk the AST in lowering order should pop
  // occurrences front to back.
  std::unordered_map<const ir::Stmt*, std::vector<int>> stmt_nodes;

  // Reverse-postorder over forward edges; iteration in this order makes the
  // worklist converge quickly.
  [[nodiscard]] std::vector<int> rpo() const;
};

// Build the CFG of a statement tree.  `root_where` prefixes node paths
// (typically "work", "init", or "handler(name)").
Cfg build_cfg(const ir::StmtP& body, const std::string& root_where);

// ---- generic forward worklist solver ----------------------------------------
//
// State must be copyable.  `transfer(node, state)` mutates `state` in place
// through the node.  `join(into, from, widen_at)` merges `from` into `into`
// and returns true if `into` changed; when `widen_at` is non-null it is the
// loop-head node being revisited and the join must over-approximate
// aggressively enough to guarantee termination (infinite-height domains
// consult widen_at->loop_mods to widen only what the loop actually writes).
//
// Returns the IN state of every node (the fixpoint).  Nodes unreachable from
// entry keep default-constructed states.
//
// After the widened fixpoint converges the solver runs a bounded number of
// decreasing ("narrowing") passes: each reached node's IN is recomputed as
// the plain join of its predecessors' OUT -- no widening, no accumulation --
// and its OUT re-derived by transfer.  Starting from a post-fixpoint every
// recomputed state still over-approximates the concrete semantics, but facts
// a loop-head widening blasted to infinity are pulled back to whatever the
// assume/transfer functions actually justify (e.g. an outer loop variable
// re-clamped inside an inner loop).

template <typename State>
class ForwardSolver {
 public:
  using TransferFn = std::function<void(const CfgNode&, State&)>;
  using JoinFn =
      std::function<bool(State&, const State&, const CfgNode* widen_at)>;

  ForwardSolver(const Cfg& cfg, TransferFn transfer, JoinFn join,
                int widen_after = 3, int narrow_passes = 2)
      : cfg_(cfg),
        transfer_(std::move(transfer)),
        join_(std::move(join)),
        widen_after_(widen_after),
        narrow_passes_(narrow_passes) {}

  // Runs to fixpoint from `entry_state`; afterwards in(i)/out(i) are valid.
  void run(const State& entry_state) {
    const std::size_t n = cfg_.nodes.size();
    in_.assign(n, State{});
    out_.assign(n, State{});
    reached_.assign(n, false);
    visits_.assign(n, 0);

    in_[static_cast<std::size_t>(cfg_.entry)] = entry_state;
    reached_[static_cast<std::size_t>(cfg_.entry)] = true;

    std::vector<int> order = cfg_.rpo();
    std::vector<bool> queued(n, false);
    std::vector<int> work = order;  // seed with all reachable in RPO
    for (int id : work) queued[static_cast<std::size_t>(id)] = true;

    std::size_t cursor = 0;
    while (cursor < work.size()) {
      const int id = work[cursor++];
      queued[static_cast<std::size_t>(id)] = false;
      const auto ui = static_cast<std::size_t>(id);
      const CfgNode& node = cfg_.nodes[ui];

      // IN = join of predecessors' OUT (entry keeps its seeded state).
      if (id != cfg_.entry) {
        State merged{};
        bool any = false;
        for (int p : node.pred) {
          const auto up = static_cast<std::size_t>(p);
          if (!reached_[up]) continue;
          if (!any) {
            merged = out_[up];
            any = true;
          } else {
            join_(merged, out_[up], nullptr);
          }
        }
        if (!any) continue;  // not yet reachable
        const CfgNode* widen_at =
            node.loop_head && visits_[ui] >= widen_after_ ? &node : nullptr;
        if (reached_[ui]) {
          if (!join_(in_[ui], merged, widen_at) && visits_[ui] > 0) {
            continue;  // IN unchanged: OUT already up to date
          }
        } else {
          in_[ui] = merged;
          reached_[ui] = true;
        }
      }
      ++visits_[ui];

      State next = in_[ui];
      transfer_(node, next);
      out_[ui] = std::move(next);
      for (int s : node.succ) {
        if (!queued[static_cast<std::size_t>(s)]) {
          queued[static_cast<std::size_t>(s)] = true;
          work.push_back(s);
        }
      }
    }

    // Narrowing: decreasing passes in RPO.  IN is replaced (not joined) by
    // the fresh merge of predecessor OUTs so widened facts can shrink.
    for (int pass = 0; pass < narrow_passes_; ++pass) {
      for (int id : order) {
        const auto ui = static_cast<std::size_t>(id);
        if (!reached_[ui]) continue;
        if (id != cfg_.entry) {
          const CfgNode& node = cfg_.nodes[ui];
          State merged{};
          bool any = false;
          for (int p : node.pred) {
            const auto up = static_cast<std::size_t>(p);
            if (!reached_[up]) continue;
            if (!any) {
              merged = out_[up];
              any = true;
            } else {
              join_(merged, out_[up], nullptr);
            }
          }
          if (!any) continue;
          in_[ui] = std::move(merged);
        }
        State next = in_[ui];
        transfer_(cfg_.nodes[ui], next);
        out_[ui] = std::move(next);
      }
    }
  }

  [[nodiscard]] const State& in(int id) const {
    return in_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const State& out(int id) const {
    return out_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] bool reached(int id) const {
    return reached_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const State& exit_state() const {
    return out_[static_cast<std::size_t>(cfg_.exit)];
  }
  [[nodiscard]] bool exit_reached() const {
    return reached_[static_cast<std::size_t>(cfg_.exit)];
  }

 private:
  const Cfg& cfg_;
  TransferFn transfer_;
  JoinFn join_;
  int widen_after_;
  int narrow_passes_;
  std::vector<State> in_, out_;
  std::vector<bool> reached_;
  std::vector<int> visits_;
};

}  // namespace sit::analysis
