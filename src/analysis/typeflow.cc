#include "analysis/typeflow.h"

#include <deque>

#include "runtime/compile.h"
#include "runtime/interp.h"

namespace sit::analysis {

using runtime::FlatActor;
using runtime::FlatGraph;
using runtime::Tag;

namespace {

// Content lattice: Int < Double (an edge is Int only while every producer
// certifies integral items).
Tag content_join(Tag a, Tag b) {
  return (a == Tag::Int && b == Tag::Int) ? Tag::Int : Tag::Double;
}

}  // namespace

std::vector<Tag> propagate_edge_tags(const FlatGraph& g,
                                     const std::vector<Tag>& push_tag) {
  // Forward fixpoint, worklist over actors.  Edges start at Int (bottom) and
  // only rise, so feedback loops converge.
  std::vector<Tag> edge(g.edges.size(), Tag::Int);
  std::deque<int> work;
  std::vector<char> queued(g.actors.size(), 0);

  auto raise_edge = [&](int e, Tag t) {
    const auto ue = static_cast<std::size_t>(e);
    const Tag j = content_join(edge[ue], t);
    if (j == edge[ue]) return;
    edge[ue] = j;
    const int dst = g.edges[ue].dst;
    if (dst >= 0 && !queued[static_cast<std::size_t>(dst)]) {
      queued[static_cast<std::size_t>(dst)] = 1;
      work.push_back(dst);
    }
  };

  // Boundary and prelude seeds: external input items and feedback prelude
  // items carry no certificate.
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    if (g.edges[e].src < 0 || !g.edges[e].initial_items.empty()) {
      raise_edge(static_cast<int>(e), Tag::Double);
    }
  }
  // Producer seeds: every actor contributes once up front (sources have no
  // inputs and would otherwise never enter the worklist).
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    if (!queued[a]) {
      queued[a] = 1;
      work.push_back(static_cast<int>(a));
    }
  }

  while (!work.empty()) {
    const int ai = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(ai)] = 0;
    const FlatActor& a = g.actors[static_cast<std::size_t>(ai)];
    switch (a.kind) {
      case FlatActor::Kind::Filter:
      case FlatActor::Kind::Native: {
        const Tag t = push_tag[static_cast<std::size_t>(ai)];
        for (int e : a.out_edges) {
          if (e >= 0) raise_edge(e, t);
        }
        break;
      }
      case FlatActor::Kind::Splitter: {
        Tag t = Tag::Int;
        for (int e : a.in_edges) {
          if (e >= 0) t = content_join(t, edge[static_cast<std::size_t>(e)]);
        }
        for (int e : a.out_edges) {
          if (e >= 0) raise_edge(e, t);
        }
        break;
      }
      case FlatActor::Kind::Joiner: {
        Tag t = Tag::Int;
        for (int e : a.in_edges) {
          if (e >= 0) t = content_join(t, edge[static_cast<std::size_t>(e)]);
        }
        for (int e : a.out_edges) {
          if (e >= 0) raise_edge(e, t);
        }
        break;
      }
    }
  }
  return edge;
}

TypeflowResult typeflow(const FlatGraph& g) {
  TypeflowResult r;
  r.actors.resize(g.actors.size());
  std::vector<Tag> push(g.actors.size(), Tag::Double);

  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const FlatActor& a = g.actors[i];
    ActorTypeflow& t = r.actors[i];
    t.name = a.name;
    if (a.kind != FlatActor::Kind::Filter) continue;
    t.is_filter = true;
    ++r.candidates;

    const ir::FilterSpec& spec = a.node->filter;
    std::string reason;
    auto base = runtime::compile_filter(spec, &reason);
    if (!base) {
      t.refusal = "no-bytecode:" + reason;
      continue;
    }
    // A fresh, private state: inference needs the post-init tags, exactly as
    // the executors specialize after running init.
    runtime::FilterState st = runtime::Interp::declare_state(spec);
    if (base->has_init) {
      runtime::VmBound vb(base, st);
      vb.run_init();
    } else {
      runtime::Interp::run_init(spec, st);
    }
    auto tp = runtime::typed_compile(spec, base, st, &t.refusal);
    if (tp) {
      t.specialized = true;
      t.typed_regs = tp->work.typed_regs;
      t.push_tag = tp->work.push_tag;
      for (std::size_t s = 0; s < base->scalar_slots.size(); ++s) {
        t.scalar_types.emplace_back(base->scalar_slots[s],
                                    runtime::tag_name(tp->work.scalar_class[s]));
      }
      for (std::size_t s = 0; s < base->array_slots.size(); ++s) {
        t.array_types.emplace_back(base->array_slots[s],
                                   runtime::tag_name(tp->work.array_class[s]));
      }
      ++r.typed_actors;
      r.typed_regs += t.typed_regs;
    } else {
      // Refused: state classes are still informative where binding worked --
      // report the bound tags as observed on the initialized state.
      for (const auto& name : base->scalar_slots) {
        auto it = st.scalars.find(name);
        t.scalar_types.emplace_back(
            name, it != st.scalars.end()
                      ? runtime::tag_name(runtime::value_tag(it->second))
                      : "?");
      }
      for (const auto& name : base->array_slots) {
        auto it = st.arrays.find(name);
        Tag at = Tag::Int;
        if (it != st.arrays.end() && !it->second.empty()) {
          at = runtime::value_tag(it->second.front());
          for (const auto& v : it->second) {
            at = runtime::join_tag(at, runtime::value_tag(v));
          }
        }
        t.array_types.emplace_back(name, runtime::tag_name(at));
      }
    }
    push[i] = t.push_tag;
  }

  r.edge_content = propagate_edge_tags(g, push);
  for (const Tag t : r.edge_content) {
    if (t == Tag::Double) {
      ++r.typed_channels;
    } else {
      ++r.int_channels;
    }
  }
  return r;
}

std::string TypeflowResult::describe(const FlatGraph& g) const {
  std::string out;
  out += "typeflow: " + std::to_string(typed_actors) + "/" +
         std::to_string(candidates) + " filter(s) specialized, " +
         std::to_string(typed_regs) + " double register(s), " +
         std::to_string(typed_channels) + " double-content channel(s), " +
         std::to_string(int_channels) + " int-content channel(s)\n";
  for (const ActorTypeflow& a : actors) {
    if (!a.is_filter) continue;
    out += "  " + a.name + ": ";
    if (a.specialized) {
      out += "typed (" + std::to_string(a.typed_regs) + " double reg(s), push " +
             runtime::tag_name(a.push_tag) + ")";
    } else {
      out += "tagged (" + a.refusal + ")";
    }
    if (!a.scalar_types.empty() || !a.array_types.empty()) {
      out += "\n    state:";
      for (const auto& [name, tag] : a.scalar_types) {
        out += " " + name + ":" + tag;
      }
      for (const auto& [name, tag] : a.array_types) {
        out += " " + name + "[]:" + tag;
      }
    }
    out += "\n";
  }
  for (std::size_t e = 0; e < edge_content.size(); ++e) {
    const auto& ed = g.edges[e];
    const std::string src =
        ed.src >= 0 ? g.actors[static_cast<std::size_t>(ed.src)].name : "input";
    const std::string dst =
        ed.dst >= 0 ? g.actors[static_cast<std::size_t>(ed.dst)].name : "output";
    out += "  edge " + std::to_string(e) + " " + src + "->" + dst + ": " +
           runtime::tag_name(edge_content[e]) + "\n";
  }
  return out;
}

}  // namespace sit::analysis
