#pragma once
// Whole-graph typed-dataflow analysis (the graph layer of runtime/typed.h).
//
// Per actor, runs the same static tag inference the executors use to decide
// dual-plane specialization -- compile to bytecode, initialize a fresh state,
// infer register/state tags to fixpoint -- and records the result: the
// inferred class of every state scalar/array, the number of registers proven
// Double, and the stable refusal reason where inference refused.
//
// Per edge, propagates *content tags* through the graph: an edge is `Int`
// when every item it will ever carry is provably integer-valued (pushed from
// the int plane), `Double` otherwise.  Channels physically store double
// either way -- the tag is a certificate, the hook for narrower storage or
// integer kernels in a code generator.  Propagation is a forward fixpoint on
// the 2-point lattice Int < Double: filters contribute their inferred push
// tag, native filters and the external input contribute Double, splitters
// copy, joiners join, feedback prelude items join Double.
//
// Consumers: the `typeflow` report-only pass (opt/passes.cc), streamc
// --report, and the executors' channel-content marking.

#include <string>
#include <utility>
#include <vector>

#include "runtime/flatgraph.h"
#include "runtime/typed.h"

namespace sit::analysis {

// One actor's inferred-type table.
struct ActorTypeflow {
  std::string name;
  bool is_filter{false};    // AST filter (candidates for specialization)
  bool specialized{false};  // inference proved the dual-plane lowering safe
  std::string refusal;      // stable reason when not (empty if specialized or
                            // not a candidate)
  int typed_regs{0};        // registers proven Double everywhere
  runtime::Tag push_tag{runtime::Tag::Double};  // content tag of its pushes
  // Inferred class per state slot, in declaration order: name -> "int" |
  // "double" | "mixed".
  std::vector<std::pair<std::string, std::string>> scalar_types;
  std::vector<std::pair<std::string, std::string>> array_types;
};

struct TypeflowResult {
  std::vector<ActorTypeflow> actors;           // indexed by flat actor id
  std::vector<runtime::Tag> edge_content;      // indexed by edge id
  int typed_actors{0};    // filters whose work specializes
  int candidates{0};      // AST filters surveyed
  int typed_regs{0};      // sum of per-actor typed_regs
  int typed_channels{0};  // edges whose content tag is Double
  int int_channels{0};    // edges provably integer-valued

  // Human-readable per-actor and per-edge tables (streamc --report).
  [[nodiscard]] std::string describe(const runtime::FlatGraph& g) const;
};

// Run the analysis.  Pure: compiles and initializes private per-filter
// states, never touches a live executor's.
TypeflowResult typeflow(const runtime::FlatGraph& g);

// Content-tag propagation alone, for callers that already know each actor's
// push tag (the executors, whose specialization results are authoritative
// for their own channels).  `push_tag[a]` is the content of actor a's
// pushes; splitters/joiners are ignored (computed), and edges from the
// external input or with prelude items are Double.
std::vector<runtime::Tag> propagate_edge_tags(
    const runtime::FlatGraph& g, const std::vector<runtime::Tag>& push_tag);

}  // namespace sit::analysis
