#include "analysis/graph_checks.h"

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/flatgraph.h"
#include "sched/rational.h"

namespace sit::analysis {

using runtime::FlatActor;
using runtime::FlatEdge;
using runtime::FlatGraph;
using sched::Rat;

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t out_rate(const FlatGraph& g, const FlatEdge& e) {
  if (e.src < 0) return 0;
  return g.actors[static_cast<std::size_t>(e.src)]
      .out_rate[static_cast<std::size_t>(e.src_port)];
}

std::int64_t in_rate(const FlatGraph& g, const FlatEdge& e) {
  if (e.dst < 0) return 0;
  return g.actors[static_cast<std::size_t>(e.dst)]
      .in_rate[static_cast<std::size_t>(e.dst_port)];
}

std::int64_t peek_extra(const FlatGraph& g, const FlatEdge& e) {
  if (e.dst < 0) return 0;
  const FlatActor& a = g.actors[static_cast<std::size_t>(e.dst)];
  return a.is_filter() ? a.peek_extra : 0;
}

// Balance-equation propagation (mirrors sched's solve_balance, reporting
// instead of throwing).  Returns the repetition vector, or empty on error.
std::vector<std::int64_t> solve_rates(const FlatGraph& g,
                                      std::vector<Diagnostic>& out) {
  const std::size_t n = g.actors.size();
  std::vector<Rat> r(n, Rat(0));
  std::vector<bool> seen(n, false);

  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    seen[start] = true;
    r[start] = Rat(1);
    std::vector<std::size_t> stack{start};
    while (!stack.empty()) {
      const std::size_t a = stack.back();
      stack.pop_back();
      for (const auto& e : g.edges) {
        if (e.src < 0 || e.dst < 0) continue;
        const auto su = static_cast<std::size_t>(e.src);
        const auto sv = static_cast<std::size_t>(e.dst);
        if (su != a && sv != a) continue;
        const std::int64_t o = out_rate(g, e);
        const std::int64_t i = in_rate(g, e);
        if (o == 0 && i == 0) continue;
        if (o == 0 || i == 0) {
          out.push_back(error(
              "rates", g.actors[su].name + " -> " + g.actors[sv].name,
              "zero-rate endpoint on a channel that carries data",
              "producer rate " + std::to_string(o) + ", consumer rate " +
                  std::to_string(i)));
          return {};
        }
        const std::size_t other = (su == a) ? sv : su;
        const Rat want = (su == a) ? r[a] * Rat(o, i) : r[a] * Rat(i, o);
        if (!seen[other]) {
          seen[other] = true;
          r[other] = want;
          stack.push_back(other);
        } else if (r[other] != want) {
          out.push_back(error(
              "rates", g.actors[other].name,
              "inconsistent rates: no steady-state schedule exists",
              "balance equations require " + g.actors[other].name +
                  " to fire at two different relative rates"));
          return {};
        }
      }
    }
  }

  std::int64_t l = 1;
  for (const auto& x : r) l = std::lcm(l, x.den());
  std::vector<std::int64_t> reps(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    reps[i] = r[i].num() * (l / r[i].den());
    if (reps[i] <= 0) {
      out.push_back(error("rates", g.actors[i].name,
                          "non-positive repetition count",
                          "actor is disconnected from all data flow"));
      return {};
    }
  }
  return reps;
}

// Init-epoch relaxation (mirrors sched's init loop).  Non-convergence means
// a feedback loop's initial items cannot cover the init demand: each trip
// around the cycle asks the producer for more firings, forever.  On success
// returns the per-actor init firing counts (for the steady-state check).
std::vector<std::int64_t> check_init_liveness(const FlatGraph& g,
                                              std::vector<Diagnostic>& out) {
  const std::size_t n = g.actors.size();
  std::vector<std::int64_t> fires(n, 0);
  bool changed = true;
  std::int64_t rounds = 0;
  const std::int64_t cap = static_cast<std::int64_t>(n) * 64 + 1024;
  while (changed) {
    changed = false;
    if (++rounds > cap) {
      // Name the back edges: they are where the missing slack lives.
      std::string edges;
      for (const auto& e : g.edges) {
        if (!e.back_edge) continue;
        if (!edges.empty()) edges += ", ";
        edges += g.actors[static_cast<std::size_t>(e.src)].name + " -> " +
                 g.actors[static_cast<std::size_t>(e.dst)].name + " (" +
                 std::to_string(e.initial_items.size()) + " initial items)";
      }
      out.push_back(error(
          "rates", "<init schedule>",
          "initialization does not converge: feedback delay is too small "
          "for the loop's init demand",
          edges.empty() ? "no back edges found (pathological graph)"
                        : "back edges: " + edges));
      return {};
    }
    for (const auto& e : g.edges) {
      if (e.dst < 0) continue;
      const std::int64_t need =
          fires[static_cast<std::size_t>(e.dst)] * in_rate(g, e) +
          peek_extra(g, e) - static_cast<std::int64_t>(e.initial_items.size());
      if (need <= 0 || e.src < 0) continue;
      const std::int64_t o = out_rate(g, e);
      if (o == 0) {
        out.push_back(error(
            "rates", g.actors[static_cast<std::size_t>(e.src)].name,
            "must provide initialization items but produces none",
            "downstream actor '" +
                g.actors[static_cast<std::size_t>(e.dst)].name +
                "' needs " + std::to_string(need) + " item(s) before its "
                "first firing"));
        return {};
      }
      const std::int64_t want = ceil_div(need, o);
      auto& f = fires[static_cast<std::size_t>(e.src)];
      if (want > f) {
        f = want;
        changed = true;
      }
    }
  }
  return fires;
}

// Steady-epoch admissibility: starting from the post-init channel marking,
// fire actors data-driven until every one has completed its repetition
// count.  If the schedule gets stuck the graph deadlocks at runtime --
// classically, a feedback loop whose `delay` enqueues fewer items than the
// cycle consumes per epoch.  Completing one epoch restores the marking, so
// one epoch of progress proves every epoch runs.
void check_steady_liveness(const FlatGraph& g,
                           const std::vector<std::int64_t>& reps,
                           const std::vector<std::int64_t>& init_fires,
                           std::vector<Diagnostic>& out) {
  const std::size_t n = g.actors.size();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += reps[i];
  if (total > (1 << 20)) return;  // pathological blow-up: skip the simulation

  // Channel marking after the init epoch (back-edge initial items plus the
  // init firings that pre-fill peek windows).
  std::vector<std::int64_t> tok(g.edges.size(), 0);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    const FlatEdge& e = g.edges[i];
    tok[i] = static_cast<std::int64_t>(e.initial_items.size());
    if (e.src >= 0) tok[i] += init_fires[static_cast<std::size_t>(e.src)] * out_rate(g, e);
    if (e.dst >= 0) tok[i] -= init_fires[static_cast<std::size_t>(e.dst)] * in_rate(g, e);
  }

  std::vector<std::int64_t> remaining = reps;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t a = 0; a < n; ++a) {
      while (remaining[a] > 0) {
        bool ready = true;
        for (std::size_t i = 0; i < g.edges.size(); ++i) {
          const FlatEdge& e = g.edges[i];
          if (e.dst != static_cast<int>(a) || e.src < 0) continue;
          if (tok[i] < in_rate(g, e) + peek_extra(g, e)) {
            ready = false;
            break;
          }
        }
        if (!ready) break;
        for (std::size_t i = 0; i < g.edges.size(); ++i) {
          const FlatEdge& e = g.edges[i];
          if (e.dst == static_cast<int>(a)) tok[i] -= in_rate(g, e);
          if (e.src == static_cast<int>(a)) tok[i] += out_rate(g, e);
        }
        --remaining[a];
        progress = true;
      }
    }
  }

  std::string stuck;
  for (std::size_t i = 0; i < n; ++i) {
    if (remaining[i] <= 0) continue;
    if (!stuck.empty()) stuck += ", ";
    stuck += g.actors[i].name;
  }
  if (stuck.empty()) return;
  std::string edges;
  for (const auto& e : g.edges) {
    if (!e.back_edge) continue;
    if (!edges.empty()) edges += ", ";
    edges += g.actors[static_cast<std::size_t>(e.src)].name + " -> " +
             g.actors[static_cast<std::size_t>(e.dst)].name + " (" +
             std::to_string(e.initial_items.size()) + " initial items)";
  }
  out.push_back(error(
      "rates", "<steady schedule>",
      "steady state deadlocks: feedback delay enqueues fewer items than the "
      "loop consumes per epoch",
      "stuck actors: " + stuck +
          (edges.empty() ? "" : "; back edges: " + edges)));
}

}  // namespace

void check_graph(const ir::NodeP& root, std::vector<Diagnostic>& out) {
  FlatGraph g;
  try {
    g = runtime::flatten(root);
  } catch (const std::exception& ex) {
    out.push_back(error("rates", root ? root->name : "<root>",
                        "graph does not flatten", ex.what()));
    return;
  }
  const std::size_t before = out.size();
  const std::vector<std::int64_t> reps = solve_rates(g, out);
  if (out.size() != before) return;  // rates unsolvable: liveness is moot
  const std::vector<std::int64_t> init_fires = check_init_liveness(g, out);
  if (out.size() != before) return;
  check_steady_liveness(g, reps, init_fires, out);
}

}  // namespace sit::analysis
