#include "analysis/diagnostic.h"

#include <sstream>

namespace sit::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

namespace {

Diagnostic make(Severity sev, std::string pass, std::string where,
                std::string message, std::string detail) {
  Diagnostic d;
  d.severity = sev;
  d.pass = std::move(pass);
  d.where = std::move(where);
  d.message = std::move(message);
  d.detail = std::move(detail);
  return d;
}

}  // namespace

Diagnostic error(std::string pass, std::string where, std::string message,
                 std::string detail) {
  return make(Severity::Error, std::move(pass), std::move(where),
              std::move(message), std::move(detail));
}

Diagnostic warning(std::string pass, std::string where, std::string message,
                   std::string detail) {
  return make(Severity::Warning, std::move(pass), std::move(where),
              std::move(message), std::move(detail));
}

Diagnostic note(std::string pass, std::string where, std::string message,
                std::string detail) {
  return make(Severity::Note, std::move(pass), std::move(where),
              std::move(message), std::move(detail));
}

bool has_errors(const std::vector<Diagnostic>& ds) {
  for (const auto& d : ds) {
    if (d.is_error()) return true;
  }
  return false;
}

std::size_t count_errors(const std::vector<Diagnostic>& ds) {
  std::size_t n = 0;
  for (const auto& d : ds) {
    if (d.is_error()) ++n;
  }
  return n;
}

std::string render(const std::vector<Diagnostic>& ds) {
  std::ostringstream os;
  for (const auto& d : ds) {
    os << to_string(d.severity);
    if (!d.pass.empty() || !d.code.empty()) {
      os << '[' << d.pass;
      if (!d.code.empty()) os << '/' << d.code;
      os << ']';
    }
    if (!d.where.empty()) os << " at " << d.where;
    os << ": " << d.message << '\n';
    if (!d.detail.empty()) {
      std::istringstream lines(d.detail);
      std::string line;
      while (std::getline(lines, line)) os << "    | " << line << '\n';
    }
  }
  return os.str();
}

}  // namespace sit::analysis
