#include "analysis/intervals.h"

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "analysis/cfg.h"
#include "analysis/interval.h"

namespace sit::analysis {

using ir::Expr;
using ir::ExprP;
using ir::Stmt;
using ir::StmtP;

namespace {

struct IvState {
  std::map<std::string, Interval> vars;  // integer scalars only
  Interval pops{0, 0};                   // pops so far this invocation
};

bool join_interval(Interval& into, const Interval& from, bool widen) {
  const Interval j = widen ? into.widen(into.join(from)) : into.join(from);
  if (j == into) return false;
  into = j;
  return true;
}

// Variables absent from a map are bottom (never assigned on that path), so
// the join keeps the other side's fact.  At a loop head only the variables
// the loop writes (loop_mods) widen: everything else is invariant around the
// back edge and stabilizes at whatever the enclosing level provides.  `pops`
// always widens -- it is monotone per firing, so widening costs nothing when
// the loop performs no channel ops.
bool join_state(IvState& into, const IvState& from, const CfgNode* widen_at) {
  bool changed = join_interval(into.pops, from.pops, widen_at != nullptr);
  for (const auto& [name, iv] : from.vars) {
    auto it = into.vars.find(name);
    if (it == into.vars.end()) {
      into.vars[name] = iv;
      changed = true;
    } else {
      const bool widen =
          widen_at != nullptr && widen_at->loop_mods.count(name) > 0;
      changed |= join_interval(it->second, iv, widen);
    }
  }
  return changed;
}

Interval eval_iv(const ExprP& e, const IvState& st) {
  if (!e) return Interval::top();
  switch (e->kind) {
    case Expr::Kind::IntConst:
      return Interval::exact(e->ival);
    case Expr::Kind::FloatConst:
      return Interval::top();  // non-integer: not tracked
    case Expr::Kind::Var: {
      auto it = st.vars.find(e->name);
      return it == st.vars.end() ? Interval::top() : it->second;
    }
    case Expr::Kind::Peek:
    case Expr::Kind::Pop:
    case Expr::Kind::ArrayRef:
      return Interval::top();  // channel/array data is unbounded here
    case Expr::Kind::Bin: {
      const Interval a = eval_iv(e->a, st);
      const Interval b = eval_iv(e->b, st);
      using B = ir::BinOp;
      switch (e->bop) {
        case B::Add: return iv_add(a, b);
        case B::Sub: return iv_sub(a, b);
        case B::Mul: return iv_mul(a, b);
        case B::Div:
          return b.is_exact() ? iv_div_pos(a, b.lo) : Interval::top();
        case B::Mod:
          return b.is_exact() ? iv_mod_pos(a, b.lo) : Interval::top();
        case B::Min: return iv_min(a, b);
        case B::Max: return iv_max(a, b);
        case B::BAnd: return iv_band(a, b);
        case B::Shl:
          return b.is_exact() ? iv_shl_const(a, b.lo) : Interval::top();
        case B::Shr:
          return b.is_exact() ? iv_shr_const(a, b.lo) : Interval::top();
        case B::Lt: case B::Le: case B::Gt: case B::Ge:
        case B::Eq: case B::Ne: case B::LAnd: case B::LOr:
          return Interval::range(0, 1);
        default:
          return Interval::top();
      }
    }
    case Expr::Kind::Un: {
      const Interval a = eval_iv(e->a, st);
      using U = ir::UnOp;
      switch (e->uop) {
        case U::Neg: return iv_neg(a);
        case U::ToInt: return a;  // identity on already-integer facts
        case U::LNot: return Interval::range(0, 1);
        case U::Abs:
          if (a.lo >= 0) return a;
          if (a.hi <= 0) return iv_neg(a);
          return Interval::range(0, std::max(detail::sat_neg(a.lo), a.hi));
        default:
          return Interval::top();
      }
    }
    case Expr::Kind::Cond:
      return eval_iv(e->b, st).join(eval_iv(e->c, st));
  }
  return Interval::top();
}

// How many pops evaluating `e` performs: an interval because short-circuit
// operators and ?: may skip operands.
Interval pops_of(const ExprP& e, const IvState& st) {
  if (!e) return Interval::exact(0);
  switch (e->kind) {
    case Expr::Kind::Pop:
      return Interval::exact(1);
    case Expr::Kind::IntConst:
    case Expr::Kind::FloatConst:
    case Expr::Kind::Var:
      return Interval::exact(0);
    case Expr::Kind::Peek:
    case Expr::Kind::ArrayRef:
      return pops_of(e->a, st);
    case Expr::Kind::Un:
      return pops_of(e->a, st);
    case Expr::Kind::Bin: {
      const Interval a = pops_of(e->a, st);
      const Interval b = pops_of(e->b, st);
      if (e->bop == ir::BinOp::LAnd || e->bop == ir::BinOp::LOr) {
        return {a.lo, detail::sat_add(a.hi, b.hi)};  // rhs may be skipped
      }
      return iv_add(a, b);
    }
    case Expr::Kind::Cond: {
      const Interval a = pops_of(e->a, st);
      const Interval bc = pops_of(e->b, st).join(pops_of(e->c, st));
      return iv_add(a, bc);
    }
  }
  return Interval::exact(0);
}

Interval pops_of_stmt(const Stmt* s, const IvState& st) {
  Interval p = Interval::exact(0);
  switch (s->kind) {
    case Stmt::Kind::Assign:
    case Stmt::Kind::Push:
      return pops_of(s->value, st);
    case Stmt::Kind::ArrayAssign:
      return iv_add(pops_of(s->index, st), pops_of(s->value, st));
    case Stmt::Kind::PopN: {
      // pop(n) consumes n items on top of any pops inside `n` itself.
      Interval n = eval_iv(s->index, st);
      if (n.lo < 0) n.lo = 0;  // runtime loop executes max(n, 0) times
      return iv_add(pops_of(s->index, st), n);
    }
    case Stmt::Kind::Send:
      for (const auto& a : s->args) p = iv_add(p, pops_of(a, st));
      return p;
    default:
      return p;
  }
}

// Clamp the loop variable with the branch outcome at ForBody/ForExit nodes.
void apply_assume(const CfgNode& node, IvState& st) {
  const Stmt* f = node.stmt;
  auto it = st.vars.find(f->name);
  if (it == st.vars.end()) return;
  const Interval hi = eval_iv(f->hi, st);
  Interval& v = it->second;
  if (node.kind == CfgNode::Kind::ForBody) {
    if (hi.hi != Interval::kMax && hi.hi - 1 >= v.lo && hi.hi - 1 < v.hi) {
      v.hi = hi.hi - 1;  // inside the body: var < hi
    }
  } else {  // ForExit: var >= hi on the fallthrough path
    if (hi.lo != Interval::kMin && hi.lo > v.lo && hi.lo <= v.hi) {
      v.lo = hi.lo;
    }
  }
}

void transfer(const CfgNode& node, IvState& st) {
  switch (node.kind) {
    case CfgNode::Kind::Stmt: {
      const Interval p = pops_of_stmt(node.stmt, st);
      if (node.stmt->kind == Stmt::Kind::Assign) {
        st.vars[node.stmt->name] = eval_iv(node.stmt->value, st);
      }
      st.pops = iv_add(st.pops, p);
      break;
    }
    case CfgNode::Kind::Branch:
      st.pops = iv_add(st.pops, pops_of(node.stmt->cond, st));
      break;
    case CfgNode::Kind::ForInit:
      st.pops = iv_add(st.pops, pops_of(node.stmt->lo, st));
      st.vars[node.stmt->name] = eval_iv(node.stmt->lo, st);
      break;
    case CfgNode::Kind::ForTest:
      st.pops = iv_add(st.pops, pops_of(node.stmt->hi, st));
      break;
    case CfgNode::Kind::ForBody:
    case CfgNode::Kind::ForExit:
      apply_assume(node, st);
      break;
    case CfgNode::Kind::ForInc: {
      st.pops = iv_add(st.pops, pops_of(node.stmt->step, st));
      auto it = st.vars.find(node.stmt->name);
      if (it != st.vars.end()) {
        it->second = iv_add(it->second, eval_iv(node.stmt->step, st));
      }
      break;
    }
    default:
      break;
  }
}

// ---- site checking -----------------------------------------------------------

class Checker {
 public:
  Checker(const ir::FilterSpec& spec, Cfg cfg, const ForwardSolver<IvState>& sol,
          bool in_work, std::vector<Diagnostic>& out)
      : spec_(spec), cfg_(std::move(cfg)), sol_(sol), in_work_(in_work),
        out_(out) {
    for (const auto& d : spec.state) {
      if (d.is_array) array_size_[d.name] = d.size;
    }
    window_ = std::max(spec.peek, spec.pop);
  }

  void walk(const StmtP& s) {
    if (!s) return;
    switch (s->kind) {
      case Stmt::Kind::Block:
        for (const auto& c : s->stmts) walk(c);
        return;
      case Stmt::Kind::If: {
        const auto [st, at] = state_at(s.get());
        IvState cur = st;
        check_expr(s->cond, cur, at);
        walk(s->body);
        walk(s->elseBody);
        return;
      }
      case Stmt::Kind::For: {
        const auto [st, at] = state_at(s.get());
        IvState cur = st;
        check_expr(s->lo, cur, at);
        check_expr(s->hi, cur, at);
        check_expr(s->step, cur, at);
        walk(s->body);
        return;
      }
      default: {
        const auto [st, at] = state_at(s.get());
        IvState cur = st;
        if (s->kind == Stmt::Kind::ArrayAssign) {
          check_expr(s->index, cur, at);
          check_array(s->name, s->index, cur, at);
          check_expr(s->value, cur, at);
        } else if (s->kind == Stmt::Kind::Send) {
          for (const auto& a : s->args) check_expr(a, cur, at);
        } else {
          check_expr(s->index, cur, at);
          check_expr(s->value, cur, at);
        }
        return;
      }
    }
  }

 private:
  std::pair<IvState, std::string> state_at(const Stmt* s) {
    auto& ids = cfg_.stmt_nodes[s];
    const int id = ids.front();
    if (ids.size() > 1) ids.erase(ids.begin());
    if (!sol_.reached(id)) {
      IvState dead;  // unreachable code: check against top, stays silent
      dead.pops = Interval::range(0, 0);
      return {dead, cfg_.nodes[static_cast<std::size_t>(id)].where};
    }
    return {sol_.in(id), cfg_.nodes[static_cast<std::size_t>(id)].where};
  }

  // Walk `e` in evaluation order, advancing `cur.pops` across pops and
  // checking every peek/array site against the running state.
  void check_expr(const ExprP& e, IvState& cur, const std::string& at) {
    if (!e) return;
    switch (e->kind) {
      case Expr::Kind::IntConst:
      case Expr::Kind::FloatConst:
      case Expr::Kind::Var:
        return;
      case Expr::Kind::Pop:
        cur.pops = iv_add(cur.pops, Interval::exact(1));
        return;
      case Expr::Kind::Peek: {
        check_expr(e->a, cur, at);
        check_peek(e, cur, at);
        return;
      }
      case Expr::Kind::ArrayRef:
        check_expr(e->a, cur, at);
        check_array(e->name, e->a, cur, at);
        return;
      case Expr::Kind::Un:
        check_expr(e->a, cur, at);
        return;
      case Expr::Kind::Bin: {
        check_expr(e->a, cur, at);
        if (e->bop == ir::BinOp::LAnd || e->bop == ir::BinOp::LOr) {
          // rhs evaluates on only some paths; its pops may or may not land.
          IvState rhs = cur;
          check_expr(e->b, rhs, at);
          cur.pops = Interval{cur.pops.lo, rhs.pops.hi};
          return;
        }
        check_expr(e->b, cur, at);
        return;
      }
      case Expr::Kind::Cond: {
        check_expr(e->a, cur, at);
        IvState t = cur;
        IvState f = cur;
        check_expr(e->b, t, at);
        check_expr(e->c, f, at);
        cur.pops = t.pops.join(f.pops);
        return;
      }
    }
  }

  void check_peek(const ExprP& e, const IvState& cur, const std::string& at) {
    if (!in_work_) {
      out_.push_back(error("bounds", spec_.name,
                           "peek outside the work function", "at " + at));
      return;
    }
    const Interval off = eval_iv(e->a, cur);
    if (off.lo < 0) {
      out_.push_back(error(
          "bounds", spec_.name, "peek offset may be negative",
          ir::to_string(e) + "  offset in " + off.str() + "  (at " + at + ")"));
      return;
    }
    // Valid iff pops_so_far + offset < window.
    const Interval reach = iv_add(cur.pops, off);
    if (reach.hi > window_ - 1) {
      out_.push_back(error(
          "bounds", spec_.name,
          "peek may read beyond the declared window of " +
              std::to_string(window_),
          ir::to_string(e) + "  pops+offset in " + reach.str() + ", need <= " +
              std::to_string(window_ - 1) + "  (at " + at + ")"));
    }
  }

  void check_array(const std::string& name, const ExprP& idx,
                   const IvState& cur, const std::string& at) {
    auto it = array_size_.find(name);
    if (it == array_size_.end()) return;  // not a declared state array
    const std::int64_t size = it->second;
    const Interval iv = eval_iv(idx, cur);
    if (iv.lo >= 0 && iv.hi <= size - 1) return;
    out_.push_back(error(
        "bounds", spec_.name,
        "array index may be out of bounds for " + name + "[" +
            std::to_string(size) + "]",
        name + "[" + ir::to_string(idx) + "]  index in " + iv.str() +
            ", need [0, " + std::to_string(size - 1) + "]  (at " + at + ")"));
  }

  const ir::FilterSpec& spec_;
  Cfg cfg_;
  const ForwardSolver<IvState>& sol_;
  bool in_work_;
  std::vector<Diagnostic>& out_;
  std::map<std::string, std::int64_t> array_size_;
  int window_{0};
};

// State-variable facts carried between firings.
using StateEnv = std::map<std::string, Interval>;

StateEnv initial_state_env(const ir::FilterSpec& spec) {
  StateEnv env;
  for (const auto& d : spec.state) {
    if (d.is_array || !d.is_int) continue;
    // The runtime zero-fills integer scalars lacking an initializer.
    std::int64_t v = 0;
    if (!d.init.empty() && d.init[0].is_int()) v = d.init[0].as_int();
    env[d.name] = Interval::exact(v);
  }
  return env;
}

struct BodyRef {
  const StmtP* body;
  std::string where;
  bool is_work;
};

std::vector<BodyRef> bodies_of(const ir::FilterSpec& spec) {
  std::vector<BodyRef> bs;
  if (spec.work) bs.push_back({&spec.work, spec.name + "/work", true});
  for (const auto& [name, h] : spec.handlers) {
    if (h.body) bs.push_back({&h.body, spec.name + "/handler(" + name + ")", false});
  }
  return bs;
}

IvState entry_from(const StateEnv& env) {
  IvState st;
  st.vars = env;
  st.pops = Interval::exact(0);
  return st;
}

}  // namespace

void check_bounds(const ir::FilterSpec& spec, std::vector<Diagnostic>& out) {
  StateEnv env = initial_state_env(spec);

  // Flow declared initializers through the init function.
  if (spec.init) {
    Cfg cfg = build_cfg(spec.init, spec.name + "/init");
    ForwardSolver<IvState> sol(cfg, transfer, join_state);
    sol.run(entry_from(env));
    if (sol.exit_reached()) {
      for (auto& [name, iv] : env) {
        auto it = sol.exit_state().vars.find(name);
        if (it != sol.exit_state().vars.end()) iv = it->second;
      }
    }
  }

  const std::vector<BodyRef> bodies = bodies_of(spec);
  const StateEnv base = env;  // post-init facts: every firing sequence starts here

  // Outer fixpoint: state facts must be invariant across firings (work and
  // handler invocations interleave arbitrarily).
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    for (const BodyRef& b : bodies) {
      Cfg cfg = build_cfg(*b.body, b.where);
      ForwardSolver<IvState> sol(cfg, transfer, join_state);
      sol.run(entry_from(env));
      if (!sol.exit_reached()) continue;
      const bool widen = round >= 3;
      for (auto& [name, iv] : env) {
        auto it = sol.exit_state().vars.find(name);
        if (it != sol.exit_state().vars.end()) {
          changed |= join_interval(iv, it->second, widen);
        }
      }
    }
    if (!changed) break;
  }

  // Narrowing: a widened fact can shrink back to  base ⊔ (what the bodies
  // actually produce from it) -- e.g. count widened to [0,+inf] recovers
  // [0,7] once the body's `(count+1)%8` is re-evaluated.  Accepting only
  // candidates inside the current fact keeps every step a sound invariant.
  for (int round = 0; round < 2; ++round) {
    StateEnv cand = base;
    for (const BodyRef& b : bodies) {
      Cfg cfg = build_cfg(*b.body, b.where);
      ForwardSolver<IvState> sol(cfg, transfer, join_state);
      sol.run(entry_from(env));
      if (!sol.exit_reached()) continue;
      for (auto& [name, iv] : cand) {
        auto it = sol.exit_state().vars.find(name);
        if (it != sol.exit_state().vars.end()) iv = iv.join(it->second);
      }
    }
    bool changed = false;
    for (auto& [name, iv] : env) {
      const Interval c = cand[name];
      if (!(c == iv) && c.within(iv.lo, iv.hi)) {
        iv = c;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Final pass with the invariant entry facts: solve once more per body and
  // check every site.
  if (spec.init) {
    StateEnv decl = initial_state_env(spec);
    Cfg cfg = build_cfg(spec.init, spec.name + "/init");
    ForwardSolver<IvState> sol(cfg, transfer, join_state);
    sol.run(entry_from(decl));
    Checker chk(spec, std::move(cfg), sol, /*in_work=*/false, out);
    chk.walk(spec.init);
  }
  for (const BodyRef& b : bodies) {
    Cfg cfg = build_cfg(*b.body, b.where);
    ForwardSolver<IvState> sol(cfg, transfer, join_state);
    sol.run(entry_from(env));
    Checker chk(spec, std::move(cfg), sol, b.is_work, out);
    chk.walk(*b.body);
  }
}

}  // namespace sit::analysis
