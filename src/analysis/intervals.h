#pragma once
// Peek/array interval analysis (dataflow pass 2).
//
// Proves, per filter, that every channel peek satisfies
//
//     0 <= pops_so_far + offset < window        (window = max(peek, pop))
//
// and that every state-array access is in bounds of its declaration.  The
// pass runs the generic worklist solver with a state of
//   * one saturating int64 Interval per integer scalar (interval.h), and
//   * an Interval counting pops executed so far in the current firing,
// then re-walks each body in evaluation order checking every Peek, ArrayRef
// and ArrayAssign site against the solved facts.
//
// State variables persist across firings, so their entry facts are computed
// by an outer fixpoint: seed from declared initializers (the runtime
// zero-fills the rest), flow through the init function, then repeatedly join
// each body's exit facts back into the entry until stable (widening after a
// few rounds guarantees termination).  This is what proves e.g. a circular
// index updated as `count = (count + 1) % N` stays within `[0, N-1]`.
//
// Anything the domain cannot bound (data-dependent indices, float-valued
// subscripts) conservatively reports "may be out of bounds" -- the pass
// errs on the side of noise, never silence.

#include <vector>

#include "analysis/diagnostic.h"
#include "ir/filter.h"

namespace sit::analysis {

// Check one filter; appends diagnostics (pass name "bounds").
void check_bounds(const ir::FilterSpec& spec, std::vector<Diagnostic>& out);

}  // namespace sit::analysis
