#pragma once
// Static per-edge channel bounds for the software-pipelined runtime.
//
// Given a flat graph and its steady-state schedule, channel_bounds() derives
// the exact maximum occupancy of every internal edge under each execution
// discipline the runtime uses:
//
//   * in_order[e] -- peak occupancy when firings are data-driven in the
//     global topological order (the sequential executors, and the threaded
//     runtime's init + calibration epochs).  Computed by static simulation
//     of the init epoch plus two steady states, mirroring the executors'
//     run_epoch loop firing for firing, so on in-order runs the observed
//     high-water mark matches this bound exactly.
//
//   * steady-state single-appearance peak -- each actor fires its full
//     repetition count at once, in topo order (one worker iteration of the
//     threaded runtime).  Steady states conserve every edge's level, so the
//     level at each iteration boundary is the post-init level L0 and the
//     in-iteration peak has a closed form: L0 + traffic when the producer
//     precedes the consumer in the firing order (it deposits a full
//     iteration before the consumer drains it), L0 when the consumer fires
//     first (the producer only refills what was drained).
//
//   * pipelined(e, window, batch) -- the cross-worker bound.  The runtime
//     groups `batch` steady-state iterations into one pipeline step, and the
//     sliding window lets a producer enter step P only once every worker has
//     completed step P - 1 - window, so producer and consumer progress
//     differ by at most window + 1 completed steps; each step of lead adds
//     batch steady states' traffic on top of L0:
//
//         max occupancy = L0 + (window + 1) * batch * traffic.
//
//     This is exact (reached when the producer runs a full window ahead and
//     completes its step before the consumer pops), and it is what the
//     ThreadedExecutor sizes each SpscRing to.
//
// Deadlock-freedom is the precondition for all of this: the bounds are
// finite iff the balance equations solve and init + steady scheduling
// succeed, which make_schedule / analysis::verify_flat establish.  The
// single_appearance flag reports whether the steady state additionally
// admits the threaded runtime's one-appearance schedule (e.g. a tight
// feedback loop whose delay cannot cover a whole iteration does not); when
// false the runtime falls back to sequential execution and `blocker` names
// the first actor that comes up short.
//
// Batching tightens that admissibility question: a chunk of B iterations
// fires each actor reps * B times at once, so a back edge (consumer before
// producer in topo order) must hold B iterations' worth of delay up front.
// Every per-edge level in the one-appearance simulation is affine in B
// (cnt = c0 + B * c1), so each starvation constraint either holds for all B
// or yields a closed-form ceiling B <= (c0 - peek_extra) / (need1 - c1);
// max_batch is the minimum over those ceilings (kUnboundedBatch when no
// constraint binds, e.g. any DAG).  single_appearance == (max_batch >= 1).
//
// External boundary edges (src or dst == -1) carry no bound: the input edge
// is staged by the feeder (occupancy depends on feed_input batching) and the
// output edge accumulates until the caller drains it.  Their entries are -1.

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace sit::analysis {

// max_batch value meaning "no cycle constrains the batch factor".
inline constexpr std::int64_t kUnboundedBatch = 1'000'000'000;

struct ChannelBounds {
  // Per-edge, -1 on the external boundary edges.
  std::vector<std::int64_t> post_init;  // live items after the init epoch (L0)
  std::vector<std::int64_t> traffic;    // items crossing per steady state
  std::vector<std::int64_t> in_order;   // peak under data-driven in-order runs
  std::vector<std::int64_t> steady_single;  // single-appearance iteration peak

  // Threaded-runtime schedulability (see header comment).
  bool single_appearance{true};
  std::string blocker;  // first starved actor when !single_appearance

  // Largest batch factor B for which the one-appearance schedule, fired in
  // chunks of B iterations, is starvation-free (kUnboundedBatch on DAGs;
  // 0 when even B = 1 fails, i.e. !single_appearance).
  std::int64_t max_batch{kUnboundedBatch};

  // Exact ring bound for a producer allowed to run `window` steps of `batch`
  // iterations ahead.
  [[nodiscard]] std::int64_t pipelined(std::size_t e, int window,
                                       std::int64_t batch = 1) const {
    if (post_init[e] < 0) return -1;
    return post_init[e] + (window + 1) * batch * traffic[e];
  }
  // Single-appearance iteration peak when each chunk runs `batch` iterations:
  // a forward edge accumulates `batch` steady states of traffic before the
  // consumer drains it; a back edge still peaks at L0.
  [[nodiscard]] std::int64_t steady_single_batched(std::size_t e,
                                                   std::int64_t batch) const {
    if (steady_single[e] < 0) return -1;
    if (steady_single[e] <= post_init[e]) return steady_single[e];
    return post_init[e] + batch * traffic[e];
  }
  // Bound for an edge that stays on a plain Channel in the threaded runtime:
  // in-order during init + calibration, batched single-appearance afterwards.
  [[nodiscard]] std::int64_t channel_bound(std::size_t e,
                                           std::int64_t batch = 1) const {
    const std::int64_t ss = steady_single_batched(e, batch);
    return in_order[e] > ss ? in_order[e] : ss;
  }
};

// Requires a schedule computed from this exact graph (make_schedule output).
ChannelBounds channel_bounds(const runtime::FlatGraph& g,
                             const sched::Schedule& s);

}  // namespace sit::analysis
