#pragma once
// Graph-level consistency checks (pass 4).
//
// Three whole-program properties on the flattened actor graph:
//
//  * Steady-state solvability: the SDF balance equations
//    reps[src] * out_rate == reps[dst] * in_rate must admit a positive
//    integer solution.  Solved exactly with sched/rational.h (header-only,
//    so no dependency cycle with the scheduler library, which links this
//    one).
//
//  * Feedback-loop liveness: the initialization epoch must terminate -- the
//    items enqueued on each back edge (the loop's `delay` / initPath) must
//    cover the peeking demand downstream, otherwise the init firing-count
//    relaxation grows without bound around the cycle.  Detected exactly the
//    way sched::make_schedule would fail, but reported as a Diagnostic
//    naming the under-provisioned edge instead of a thrown string.
//
//  * Steady-state liveness: one steady epoch must complete from the
//    post-init channel marking.  A balanced loop can still deadlock when its
//    `delay` enqueues fewer items than the cycle consumes per epoch; the
//    runtime only discovers that mid-execution, so it is simulated here
//    (data-driven firing until every actor reaches its repetition count).
//
// The checks deliberately mirror (not call) the scheduler: sit_sched links
// sit_analysis so its Executor can run the full suite up front, hence this
// code may only use headers from sched/.

#include <vector>

#include "analysis/diagnostic.h"
#include "ir/graph.h"

namespace sit::analysis {

// Flattens `root` and checks rate solvability + feedback liveness.  Appends
// diagnostics (pass name "rates").  Assumes the program already passed the
// structural checks of ir::check -- malformed graphs that fail to flatten
// produce a single generic error.
void check_graph(const ir::NodeP& root, std::vector<Diagnostic>& out);

}  // namespace sit::analysis
