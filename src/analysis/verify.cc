#include "analysis/verify.h"

#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "sched/rational.h"

namespace sit::analysis {

using runtime::FlatActor;
using runtime::FlatEdge;
using runtime::FlatGraph;
using sched::Rat;

namespace {

Diagnostic verr(const char* code, std::string where, std::string message,
                std::string detail = {}) {
  Diagnostic d = error("verify", std::move(where), std::move(message),
                       std::move(detail));
  d.code = code;
  return d;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t out_rate(const FlatGraph& g, const FlatEdge& e) {
  if (e.src < 0) return 0;
  return g.actors[static_cast<std::size_t>(e.src)]
      .out_rate[static_cast<std::size_t>(e.src_port)];
}

std::int64_t in_rate(const FlatGraph& g, const FlatEdge& e) {
  if (e.dst < 0) return 0;
  return g.actors[static_cast<std::size_t>(e.dst)]
      .in_rate[static_cast<std::size_t>(e.dst_port)];
}

std::int64_t peek_extra(const FlatGraph& g, const FlatEdge& e) {
  if (e.dst < 0) return 0;
  const FlatActor& a = g.actors[static_cast<std::size_t>(e.dst)];
  return a.is_filter() ? a.peek_extra : 0;
}

// ---- V-STRUCT: flat-graph well-formedness -----------------------------------

bool check_structure(const FlatGraph& g, std::vector<Diagnostic>& out) {
  const std::size_t before = out.size();
  const int n = static_cast<int>(g.actors.size());
  const int m = static_cast<int>(g.edges.size());

  int input = -1;
  int output = -1;
  for (int ei = 0; ei < m; ++ei) {
    const FlatEdge& e = g.edges[static_cast<std::size_t>(ei)];
    const std::string name = "edge " + std::to_string(ei);
    if (e.src < -1 || e.src >= n || e.dst < -1 || e.dst >= n) {
      out.push_back(verr("V-STRUCT", name, "endpoint actor index out of range",
                         "src " + std::to_string(e.src) + ", dst " +
                             std::to_string(e.dst) + ", " +
                             std::to_string(n) + " actors"));
      continue;
    }
    if (e.src == -1 && e.dst == -1) {
      out.push_back(verr("V-STRUCT", name,
                         "edge has neither a producer nor a consumer"));
      continue;
    }
    if (e.src == -1) {
      if (input >= 0) {
        out.push_back(verr("V-STRUCT", name,
                           "more than one external input edge",
                           "also edge " + std::to_string(input)));
      }
      input = ei;
    } else {
      const FlatActor& a = g.actors[static_cast<std::size_t>(e.src)];
      if (e.src_port < 0 ||
          e.src_port >= static_cast<int>(a.out_edges.size()) ||
          a.out_edges[static_cast<std::size_t>(e.src_port)] != ei) {
        out.push_back(verr(
            "V-STRUCT", name,
            "producer port table disagrees with the edge",
            "actor '" + a.name + "' port " + std::to_string(e.src_port)));
      }
    }
    if (e.dst == -1) {
      if (output >= 0) {
        out.push_back(verr("V-STRUCT", name,
                           "more than one external output edge",
                           "also edge " + std::to_string(output)));
      }
      output = ei;
    } else {
      const FlatActor& a = g.actors[static_cast<std::size_t>(e.dst)];
      if (e.dst_port < 0 || e.dst_port >= static_cast<int>(a.in_edges.size()) ||
          a.in_edges[static_cast<std::size_t>(e.dst_port)] != ei) {
        out.push_back(verr(
            "V-STRUCT", name,
            "consumer port table disagrees with the edge",
            "actor '" + a.name + "' port " + std::to_string(e.dst_port)));
      }
    }
  }
  if (g.input_edge != input) {
    out.push_back(verr("V-STRUCT", "<graph>",
                       "input_edge field does not match the edge list",
                       "field says " + std::to_string(g.input_edge) +
                           ", edges say " + std::to_string(input)));
  }
  if (g.output_edge != output) {
    out.push_back(verr("V-STRUCT", "<graph>",
                       "output_edge field does not match the edge list",
                       "field says " + std::to_string(g.output_edge) +
                           ", edges say " + std::to_string(output)));
  }

  for (int ai = 0; ai < n; ++ai) {
    const FlatActor& a = g.actors[static_cast<std::size_t>(ai)];
    if (a.in_rate.size() != a.in_edges.size() ||
        a.out_rate.size() != a.out_edges.size()) {
      out.push_back(verr("V-STRUCT", a.name,
                         "rate arrays do not match the port counts"));
      continue;
    }
    bool ports_ok = true;
    for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
      const int e = a.in_edges[p];
      if (e < -1 || e >= m ||
          (e >= 0 && (g.edges[static_cast<std::size_t>(e)].dst != ai ||
                      g.edges[static_cast<std::size_t>(e)].dst_port !=
                          static_cast<int>(p)))) {
        out.push_back(verr("V-STRUCT", a.name,
                           "input port " + std::to_string(p) +
                               " does not point back at this actor"));
        ports_ok = false;
      }
      if (a.in_rate[p] < 0) {
        out.push_back(verr("V-STRUCT", a.name, "negative input rate"));
      }
    }
    for (std::size_t p = 0; p < a.out_edges.size(); ++p) {
      const int e = a.out_edges[p];
      if (e < -1 || e >= m ||
          (e >= 0 && (g.edges[static_cast<std::size_t>(e)].src != ai ||
                      g.edges[static_cast<std::size_t>(e)].src_port !=
                          static_cast<int>(p)))) {
        out.push_back(verr("V-STRUCT", a.name,
                           "output port " + std::to_string(p) +
                               " does not point back at this actor"));
        ports_ok = false;
      }
      if (a.out_rate[p] < 0) {
        out.push_back(verr("V-STRUCT", a.name, "negative output rate"));
      }
    }
    if (!ports_ok) continue;
    switch (a.kind) {
      case FlatActor::Kind::Filter:
      case FlatActor::Kind::Native:
        if (a.in_edges.size() > 1 || a.out_edges.size() > 1) {
          out.push_back(verr("V-STRUCT", a.name,
                             "filter with more than one input or output"));
        }
        if (a.node == nullptr) {
          out.push_back(verr("V-STRUCT", a.name,
                             "filter actor lost its defining graph node"));
        }
        if (a.peek_extra < 0) {
          out.push_back(verr("V-STRUCT", a.name, "negative peek window"));
        }
        break;
      case FlatActor::Kind::Splitter:
        if (a.in_edges.size() != 1) {
          out.push_back(
              verr("V-STRUCT", a.name, "splitter must have exactly one input"));
        }
        break;
      case FlatActor::Kind::Joiner:
        if (a.out_edges.size() != 1) {
          out.push_back(
              verr("V-STRUCT", a.name, "joiner must have exactly one output"));
        }
        break;
    }
  }
  return out.size() == before;
}

// ---- V-SJ: splitjoin weight sums --------------------------------------------

void check_splitjoins(const FlatGraph& g, std::vector<Diagnostic>& out) {
  for (const FlatActor& a : g.actors) {
    if (a.kind == FlatActor::Kind::Splitter) {
      if (a.sj == ir::SJKind::Duplicate) {
        bool ok = a.in_rate[0] == 1;
        for (int r : a.out_rate) ok = ok && r == 1;
        if (!ok) {
          out.push_back(verr("V-SJ", a.name,
                             "duplicate splitter must be 1 -> 1 per branch"));
        }
      } else {
        const int sum = std::accumulate(a.out_rate.begin(), a.out_rate.end(), 0);
        if (a.in_rate[0] != sum) {
          out.push_back(verr(
              "V-SJ", a.name,
              "splitter consumption does not equal the sum of branch weights",
              "consumes " + std::to_string(a.in_rate[0]) +
                  ", branch weights sum to " + std::to_string(sum)));
        }
      }
    } else if (a.kind == FlatActor::Kind::Joiner) {
      const int sum = std::accumulate(a.in_rate.begin(), a.in_rate.end(), 0);
      if (a.out_rate[0] != sum) {
        out.push_back(verr(
            "V-SJ", a.name,
            "joiner production does not equal the sum of branch weights",
            "produces " + std::to_string(a.out_rate[0]) +
                ", branch weights sum to " + std::to_string(sum)));
      }
    }
  }
}

// ---- V-RATES: balance equations ---------------------------------------------

// Propagates relative firing rates over the rationals (the same algorithm as
// sched's solve_balance); reports instead of throwing.  Empty on error.
std::vector<std::int64_t> check_rates(const FlatGraph& g,
                                      std::vector<Diagnostic>& out) {
  const std::size_t n = g.actors.size();
  std::vector<Rat> r(n, Rat(0));
  std::vector<bool> seen(n, false);
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    seen[start] = true;
    r[start] = Rat(1);
    std::vector<std::size_t> stack{start};
    while (!stack.empty()) {
      const std::size_t a = stack.back();
      stack.pop_back();
      for (const FlatEdge& e : g.edges) {
        if (e.src < 0 || e.dst < 0) continue;
        const auto su = static_cast<std::size_t>(e.src);
        const auto sv = static_cast<std::size_t>(e.dst);
        if (su != a && sv != a) continue;
        const std::int64_t o = out_rate(g, e);
        const std::int64_t i = in_rate(g, e);
        if (o == 0 && i == 0) continue;
        if (o == 0 || i == 0) {
          out.push_back(verr("V-RATES",
                             g.actors[su].name + " -> " + g.actors[sv].name,
                             "zero-rate endpoint on a channel carrying data",
                             "producer rate " + std::to_string(o) +
                                 ", consumer rate " + std::to_string(i)));
          return {};
        }
        const std::size_t other = (su == a) ? sv : su;
        const Rat want = (su == a) ? r[a] * Rat(o, i) : r[a] * Rat(i, o);
        if (!seen[other]) {
          seen[other] = true;
          r[other] = want;
          stack.push_back(other);
        } else if (r[other] != want) {
          out.push_back(verr(
              "V-RATES", g.actors[other].name,
              "inconsistent rates: the balance equations have no solution",
              "actor '" + g.actors[other].name +
                  "' would have to fire at two different relative rates"));
          return {};
        }
      }
    }
  }
  std::int64_t l = 1;
  for (const Rat& x : r) l = std::lcm(l, x.den());
  std::vector<std::int64_t> reps(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    reps[i] = r[i].num() * (l / r[i].den());
    if (reps[i] <= 0) {
      out.push_back(verr("V-RATES", g.actors[i].name,
                         "non-positive steady-state multiplicity",
                         "actor is disconnected from all data flow"));
      return {};
    }
  }
  return reps;
}

// ---- V-ORDER: dag-ness of the partition order -------------------------------

bool check_order(const FlatGraph& g, std::vector<Diagnostic>& out) {
  const std::size_t n = g.actors.size();
  std::vector<int> indeg(n, 0);
  for (const FlatEdge& e : g.edges) {
    if (e.src >= 0 && e.dst >= 0 && !e.back_edge) {
      ++indeg[static_cast<std::size_t>(e.dst)];
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t a = 0; a < n; ++a) {
    if (indeg[a] == 0) ready.push_back(a);
  }
  std::size_t done = 0;
  while (!ready.empty()) {
    const std::size_t a = ready.back();
    ready.pop_back();
    ++done;
    for (const FlatEdge& e : g.edges) {
      if (e.src != static_cast<int>(a) || e.dst < 0 || e.back_edge) continue;
      if (--indeg[static_cast<std::size_t>(e.dst)] == 0) {
        ready.push_back(static_cast<std::size_t>(e.dst));
      }
    }
  }
  if (done == n) return true;
  std::string cycle;
  for (std::size_t a = 0; a < n; ++a) {
    if (indeg[a] == 0) continue;
    if (!cycle.empty()) cycle += ", ";
    cycle += g.actors[a].name;
  }
  out.push_back(verr("V-ORDER", "<graph>",
                     "forward edges form a cycle: no topological partition "
                     "order exists",
                     "cycle members: " + cycle));
  return false;
}

// ---- V-STATE: state ownership -----------------------------------------------

void check_state_ownership(const FlatGraph& g, std::vector<Diagnostic>& out) {
  std::map<const ir::Node*, std::size_t> owner;
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    const FlatActor& fa = g.actors[a];
    if (!fa.is_filter() || fa.node == nullptr) continue;
    const auto [it, inserted] = owner.emplace(fa.node, a);
    if (!inserted) {
      out.push_back(verr(
          "V-STATE", fa.name,
          "filter state referenced by two actors (rewrite failed to clone)",
          "also owned by actor '" + g.actors[it->second].name + "'"));
    }
  }
}

// ---- V-SCHED: deadlock freedom ----------------------------------------------

// Init-epoch relaxation: each round propagates init demand upstream; if it
// never converges, a feedback loop's delay cannot cover its own init demand
// and every channel bound would be infinite.
std::vector<std::int64_t> check_init(const FlatGraph& g,
                                     const std::vector<std::int64_t>& reps,
                                     std::vector<Diagnostic>& out) {
  (void)reps;
  const std::size_t n = g.actors.size();
  std::vector<std::int64_t> fires(n, 0);
  bool changed = true;
  std::int64_t rounds = 0;
  const std::int64_t cap = static_cast<std::int64_t>(n) * 64 + 1024;
  while (changed) {
    changed = false;
    if (++rounds > cap) {
      out.push_back(verr("V-SCHED", "<init schedule>",
                         "initialization does not converge: feedback delay "
                         "is too small for the loop's init demand"));
      return {};
    }
    for (const FlatEdge& e : g.edges) {
      if (e.dst < 0) continue;
      const std::int64_t need =
          fires[static_cast<std::size_t>(e.dst)] * in_rate(g, e) +
          peek_extra(g, e) - static_cast<std::int64_t>(e.initial_items.size());
      if (need <= 0 || e.src < 0) continue;
      const std::int64_t o = out_rate(g, e);
      if (o == 0) {
        out.push_back(verr(
            "V-SCHED", g.actors[static_cast<std::size_t>(e.src)].name,
            "must provide initialization items but produces none",
            "downstream actor '" +
                g.actors[static_cast<std::size_t>(e.dst)].name + "' needs " +
                std::to_string(need) + " item(s) before its first firing"));
        return {};
      }
      const std::int64_t want = ceil_div(need, o);
      auto& f = fires[static_cast<std::size_t>(e.src)];
      if (want > f) {
        f = want;
        changed = true;
      }
    }
  }
  return fires;
}

// Steady-epoch admissibility from the post-init marking: if no data-driven
// order completes one steady state, the runtime deadlocks (and no finite
// buffer bound exists).  One completed epoch restores the marking, so one
// epoch of progress proves every epoch runs.
void check_steady(const FlatGraph& g, const std::vector<std::int64_t>& reps,
                  const std::vector<std::int64_t>& init_fires,
                  std::vector<Diagnostic>& out) {
  const std::size_t n = g.actors.size();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += reps[i];
  if (total > (1 << 20)) return;  // pathological blow-up: skip the simulation

  std::vector<std::int64_t> tok(g.edges.size(), 0);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    const FlatEdge& e = g.edges[i];
    tok[i] = static_cast<std::int64_t>(e.initial_items.size());
    if (e.src >= 0) {
      tok[i] += init_fires[static_cast<std::size_t>(e.src)] * out_rate(g, e);
    }
    if (e.dst >= 0) {
      tok[i] -= init_fires[static_cast<std::size_t>(e.dst)] * in_rate(g, e);
    }
  }

  std::vector<std::int64_t> remaining = reps;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t a = 0; a < n; ++a) {
      while (remaining[a] > 0) {
        bool ok = true;
        for (std::size_t i = 0; i < g.edges.size(); ++i) {
          const FlatEdge& e = g.edges[i];
          if (e.dst != static_cast<int>(a) || e.src < 0) continue;
          if (tok[i] < in_rate(g, e) + peek_extra(g, e)) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
        for (std::size_t i = 0; i < g.edges.size(); ++i) {
          const FlatEdge& e = g.edges[i];
          if (e.dst == static_cast<int>(a)) tok[i] -= in_rate(g, e);
          if (e.src == static_cast<int>(a)) tok[i] += out_rate(g, e);
        }
        --remaining[a];
        progress = true;
      }
    }
  }

  std::string stuck;
  for (std::size_t i = 0; i < n; ++i) {
    if (remaining[i] <= 0) continue;
    if (!stuck.empty()) stuck += ", ";
    stuck += g.actors[i].name;
  }
  if (!stuck.empty()) {
    out.push_back(verr("V-SCHED", "<steady schedule>",
                       "steady state deadlocks: no schedule exists from the "
                       "post-init channel marking",
                       "stuck actors: " + stuck));
  }
}

}  // namespace

std::vector<Diagnostic> verify_flat(const FlatGraph& g) {
  std::vector<Diagnostic> out;
  if (!check_structure(g, out)) return out;  // indices unsafe beyond here
  check_splitjoins(g, out);
  check_state_ownership(g, out);
  const bool dag = check_order(g, out);
  const std::vector<std::int64_t> reps = check_rates(g, out);
  if (dag && !reps.empty()) {
    const std::vector<std::int64_t> init = check_init(g, reps, out);
    if (!init.empty() || g.actors.empty()) {
      check_steady(g, reps, init, out);
    }
  }
  return out;
}

std::vector<Diagnostic> verify_graph(const ir::NodeP& root) {
  runtime::FlatGraph g;
  try {
    g = runtime::flatten(root);
  } catch (const std::exception& ex) {
    std::vector<Diagnostic> out;
    out.push_back(verr("V-STRUCT", root ? root->name : "<root>",
                       "graph does not flatten", ex.what()));
    return out;
  }
  return verify_flat(g);
}

}  // namespace sit::analysis
