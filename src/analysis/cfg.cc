#include "analysis/cfg.h"

#include <algorithm>

namespace sit::analysis {

namespace {

// Scalar names assigned anywhere under `s` (including loop variables).
void collect_assigned(const ir::StmtP& s, std::set<std::string>& names) {
  if (!s) return;
  using K = ir::Stmt::Kind;
  switch (s->kind) {
    case K::Block:
      for (const auto& c : s->stmts) collect_assigned(c, names);
      break;
    case K::Assign:
      names.insert(s->name);
      break;
    case K::For:
      names.insert(s->name);
      collect_assigned(s->body, names);
      break;
    case K::If:
      collect_assigned(s->body, names);
      collect_assigned(s->elseBody, names);
      break;
    default:  // ArrayAssign, Push, PopN, Send touch no tracked scalar
      break;
  }
}

class Builder {
 public:
  Cfg build(const ir::StmtP& body, const std::string& root) {
    cfg_.entry = add(CfgNode::Kind::Entry, nullptr, root);
    cfg_.exit = add(CfgNode::Kind::Exit, nullptr, root + ".exit");
    const int tail = lower(body, cfg_.entry, root);
    edge(tail, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  int add(CfgNode::Kind k, const ir::Stmt* s, std::string where) {
    CfgNode n;
    n.kind = k;
    n.stmt = s;
    n.where = std::move(where);
    n.loop_head = (k == CfgNode::Kind::ForTest);
    cfg_.nodes.push_back(std::move(n));
    const int id = static_cast<int>(cfg_.nodes.size()) - 1;
    if (s != nullptr && (k == CfgNode::Kind::Stmt || k == CfgNode::Kind::Branch ||
                         k == CfgNode::Kind::ForInit)) {
      cfg_.stmt_nodes[s].push_back(id);
    }
    return id;
  }

  void edge(int a, int b) {
    cfg_.nodes[static_cast<std::size_t>(a)].succ.push_back(b);
    cfg_.nodes[static_cast<std::size_t>(b)].pred.push_back(a);
  }

  // Lower `s`, chaining from node `cur`; returns the tail node.
  int lower(const ir::StmtP& s, int cur, const std::string& where) {
    if (!s) return cur;
    using K = ir::Stmt::Kind;
    switch (s->kind) {
      case K::Block: {
        int tail = cur;
        for (std::size_t i = 0; i < s->stmts.size(); ++i) {
          tail = lower(s->stmts[i], tail,
                       where + "[" + std::to_string(i) + "]");
        }
        return tail;
      }
      case K::If: {
        const int b = add(CfgNode::Kind::Branch, s.get(), where + ".if");
        edge(cur, b);
        const int j = add(CfgNode::Kind::Join, s.get(), where + ".endif");
        const int then_tail = lower(s->body, b, where + ".then");
        edge(then_tail, j);
        if (s->elseBody) {
          const int else_tail = lower(s->elseBody, b, where + ".else");
          edge(else_tail, j);
        } else {
          edge(b, j);
        }
        return j;
      }
      case K::For: {
        const std::string w = where + ".for(" + s->name + ")";
        const int init = add(CfgNode::Kind::ForInit, s.get(), w);
        edge(cur, init);
        const int test = add(CfgNode::Kind::ForTest, s.get(), w + ".head");
        auto& mods = cfg_.nodes[static_cast<std::size_t>(test)].loop_mods;
        mods.insert(s->name);
        collect_assigned(s->body, mods);
        edge(init, test);
        const int enter = add(CfgNode::Kind::ForBody, s.get(), w + ".body");
        edge(test, enter);
        const int body_tail = lower(s->body, enter, w + ".body");
        const int inc = add(CfgNode::Kind::ForInc, s.get(), w + ".inc");
        edge(body_tail, inc);
        edge(inc, test);
        const int leave = add(CfgNode::Kind::ForExit, s.get(), w + ".exit");
        edge(test, leave);
        return leave;  // fallthrough path (loop condition false)
      }
      default:  // Assign, ArrayAssign, Push, PopN, Send
        {
          const int n = add(CfgNode::Kind::Stmt, s.get(), where);
          edge(cur, n);
          return n;
        }
    }
  }

  Cfg cfg_;
};

}  // namespace

std::vector<int> Cfg::rpo() const {
  std::vector<int> order;
  std::vector<char> state(nodes.size(), 0);  // 0=unseen 1=open 2=done
  // Iterative DFS with explicit postorder.
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(entry, 0);
  state[static_cast<std::size_t>(entry)] = 1;
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    const auto& n = nodes[static_cast<std::size_t>(id)];
    if (next < n.succ.size()) {
      const int s = n.succ[next++];
      if (state[static_cast<std::size_t>(s)] == 0) {
        state[static_cast<std::size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[static_cast<std::size_t>(id)] = 2;
      order.push_back(id);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Cfg build_cfg(const ir::StmtP& body, const std::string& root_where) {
  return Builder().build(body, root_where);
}

}  // namespace sit::analysis
