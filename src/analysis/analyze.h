#pragma once
// Entry point for the whole static-analysis suite.
//
// analyze() runs, in order:
//   1. the structural validator (ir/validate: rates, arity, zero-weight
//      rule, handler purity, instance uniqueness);
//   2. per-filter dataflow passes: constant folding (div/mod-by-zero),
//      peek/array interval bounds, definite initialization & dead state;
//   3. graph-level consistency: balance-equation solvability and
//      feedback-loop init liveness (skipped when step 1 found errors --
//      a malformed graph rarely flattens meaningfully).
//
// Every finding is a Diagnostic; errors mean the program would misbehave or
// crash under the interpreter, warnings are advisory (dead state, maybe-
// uninitialized locals).  check_or_throw() is the executor-facing gate: it
// throws on errors and stays silent on warnings.

#include <vector>

#include "analysis/diagnostic.h"
#include "ir/graph.h"

namespace sit::analysis {

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool ok() const { return !has_errors(diagnostics); }
  [[nodiscard]] std::size_t errors() const { return count_errors(diagnostics); }
  [[nodiscard]] std::string report() const { return render(diagnostics); }
};

AnalysisResult analyze(const ir::NodeP& root);

// Throws std::runtime_error listing every error diagnostic; warnings pass.
//
// Deprecated shim for whole-program compilation: the `validate` and
// `analysis-gate` passes (opt/pass_manager.h) wrap ir::check and analyze()
// with the same throw-on-error contract while also collecting the warnings
// into the PassContext; opt::compile() runs them by default.
[[deprecated(
    "gate through opt::compile() (validate + analysis-gate passes), or call "
    "analyze() and inspect the result")]]
void check_or_throw(const ir::NodeP& root);

}  // namespace sit::analysis
