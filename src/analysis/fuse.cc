#include "analysis/fuse.h"

#include <exception>

#include "analysis/bounds_chan.h"
#include "runtime/compile.h"

namespace sit::analysis {

FusePlan fuse_plan(const runtime::FlatGraph& g, const sched::Schedule& s) {
  FusePlan plan;

  // Every AST filter must compile to bytecode (the trace inlines the
  // compiled template) and must not send teleport messages.  Native filters
  // are fine: the trace invokes their work function through tape adapters.
  for (const auto& a : g.actors) {
    if (a.kind != runtime::FlatActor::Kind::Filter) continue;
    std::string why;
    const auto prog = runtime::compile_filter(a.node->filter, &why);
    if (!prog) {
      plan.refusal = "vm-fallback:" + a.name + " (" + why + ")";
      return plan;
    }
    if (!prog->work.sends.empty() || !prog->init.sends.empty()) {
      plan.refusal = "teleport-send:" + a.name;
      return plan;
    }
  }

  ChannelBounds bounds;
  try {
    bounds = channel_bounds(g, s);
  } catch (const std::exception& e) {
    plan.refusal = std::string("bounds-unavailable (") + e.what() + ")";
    return plan;
  }
  if (!bounds.single_appearance) {
    plan.refusal = "not-single-appearance:" + bounds.blocker;
    return plan;
  }

  plan.carry = bounds.post_init;
  plan.traffic = bounds.traffic;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const auto& ed = g.edges[e];
    if (ed.src >= 0 && ed.dst >= 0) ++plan.internal_edges;
  }
  plan.admissible = true;
  return plan;
}

}  // namespace sit::analysis
