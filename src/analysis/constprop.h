#pragma once
// Constant folding & propagation (dataflow pass 1).
//
// A forward worklist analysis over the work-function CFG computes, for every
// program point, which invocation-local variables hold compile-time-known
// ir::Values (the same `Exact` domain the linear extractor interprets --
// analysis/const_eval.h is the single implementation of that arithmetic).
// The computed environments then drive an AST rewrite:
//
//   * expressions whose operands are exact fold to literals;
//   * short-circuit identities fold (`true || e` -> true, `false && e` ->
//     false; sound because the interpreter short-circuits, so `e` -- pops and
//     all -- never evaluates);
//   * If statements and ?: expressions with a constant condition collapse to
//     the taken arm (the dropped arm never executes, so its channel ops
//     vanish with it);
//   * For loops with a constant empty range are deleted.
//
// The fold is what lets the linear extractor see through branch-shaped but
// statically-decided control flow: extraction runs on the folded body by
// default and detects strictly more filters as linear (see linear/extract).
//
// Constant division/modulo by zero is reported as a diagnostic: the fold
// leaves the expression in place and the program will fault at runtime.

#include <vector>

#include "analysis/diagnostic.h"
#include "ir/filter.h"

namespace sit::analysis {

struct FoldResult {
  ir::StmtP body;                      // folded statement tree
  std::vector<Diagnostic> diagnostics; // constant div/mod-by-zero findings
};

// Fold a statement tree (a work/init/handler body).  `where` prefixes
// diagnostic locations, e.g. the filter name.
FoldResult fold_body(const ir::StmtP& body, const std::string& where);

// Convenience: fold a filter's work function.
ir::StmtP fold_work(const ir::FilterSpec& spec);

}  // namespace sit::analysis
