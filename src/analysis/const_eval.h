#pragma once
// Exact (compile-time) arithmetic over ir::Value.
//
// This is the `Exact` leg of the abstract lattice shared by the constant
// folding/propagation pass and the linear extractor: both interpret the same
// operators over the same Value domain, so a coefficient the folder computes
// is bit-identical to what the extractor would have computed inline.  The
// semantics mirror the runtime interpreter (Java-like: int op int stays int,
// any float operand promotes).
//
// Operations that are undefined at compile time (division by a constant
// zero) return nullopt; callers decide whether that is a diagnostic (the
// folder) or a rejection (the extractor).

#include <optional>

#include "ir/ast.h"
#include "ir/value.h"

namespace sit::analysis {

[[nodiscard]] std::optional<ir::Value> exact_bin(ir::BinOp op,
                                                 const ir::Value& a,
                                                 const ir::Value& b);

[[nodiscard]] std::optional<ir::Value> exact_un(ir::UnOp op,
                                                const ir::Value& a);

}  // namespace sit::analysis
