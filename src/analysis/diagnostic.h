#pragma once
// Unified diagnostics for every static analysis in the compiler.
//
// All passes -- the structural validator (ir/validate), the dataflow passes
// of this directory, and the graph-level consistency checks -- report through
// this one type so drivers (streamlint, check_or_throw, tests) can treat
// results uniformly: errors reject the program, warnings are advisory.
//
// This header is dependency-free on purpose: sit_ir constructs Diagnostics
// without linking against the analysis library.

#include <string>
#include <vector>

namespace sit::analysis {

enum class Severity { Error, Warning, Note };

const char* to_string(Severity s);

struct Diagnostic {
  // `where` first: keeps brace-initialization compatible with the historical
  // ir::Violation{where, message} call sites this type absorbed.
  std::string where;    // node path, e.g. "FMRadio/equalizer/eqband3"
  std::string message;  // one-line human-readable description
  Severity severity{Severity::Error};
  std::string pass;     // producing pass: "structure", "intervals", ...
  std::string detail;   // optional pretty-printed AST of the offending node
  // Stable machine-readable code ("V-RATES", "V-ORDER", ...).  Tests and
  // tooling pin on this, never on the message text.  Empty for analyses that
  // predate codes.
  std::string code;

  [[nodiscard]] bool is_error() const { return severity == Severity::Error; }
};

// Convenience constructors.
Diagnostic error(std::string pass, std::string where, std::string message,
                 std::string detail = {});
Diagnostic warning(std::string pass, std::string where, std::string message,
                   std::string detail = {});
Diagnostic note(std::string pass, std::string where, std::string message,
                std::string detail = {});

[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& ds);
[[nodiscard]] std::size_t count_errors(const std::vector<Diagnostic>& ds);

// Multi-line human-readable report ("error[intervals] at FIR/fir: ...").
[[nodiscard]] std::string render(const std::vector<Diagnostic>& ds);

}  // namespace sit::analysis
