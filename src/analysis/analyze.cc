#include "analysis/analyze.h"

#include <stdexcept>

#include "analysis/constprop.h"
#include "analysis/definite_init.h"
#include "analysis/graph_checks.h"
#include "analysis/intervals.h"
#include "ir/validate.h"

namespace sit::analysis {

namespace {

void run_filter_passes(const ir::FilterSpec& f, std::vector<Diagnostic>& ds) {
  // Constant folding: only its diagnostics (div/mod by a constant zero)
  // matter here; the folded bodies are consumed by the linear extractor.
  const auto fold_into = [&ds](const ir::StmtP& body, const std::string& where) {
    if (!body) return;
    FoldResult fr = fold_body(body, where);
    ds.insert(ds.end(), fr.diagnostics.begin(), fr.diagnostics.end());
  };
  fold_into(f.init, f.name + "/init");
  fold_into(f.work, f.name + "/work");
  for (const auto& [name, h] : f.handlers) {
    fold_into(h.body, f.name + "/handler(" + name + ")");
  }

  check_bounds(f, ds);
  check_definite_init(f, ds);
}

}  // namespace

AnalysisResult analyze(const ir::NodeP& root) {
  AnalysisResult r;
  r.diagnostics = ir::check(root);
  const bool structural_ok = !has_errors(r.diagnostics);

  ir::visit(root, [&](const ir::NodeP& n) {
    if (n && n->kind == ir::Node::Kind::Filter) {
      run_filter_passes(n->filter, r.diagnostics);
    }
  });

  if (structural_ok) {
    check_graph(root, r.diagnostics);
  }
  return r;
}

void check_or_throw(const ir::NodeP& root) {
  const AnalysisResult r = analyze(root);
  if (r.ok()) return;
  std::vector<Diagnostic> errs;
  for (const auto& d : r.diagnostics) {
    if (d.is_error()) errs.push_back(d);
  }
  throw std::runtime_error("stream program failed static analysis:\n" +
                           render(errs));
}

}  // namespace sit::analysis
