#pragma once
// Definite initialization & dead-state detection (dataflow pass 3).
//
// Two related checks on a filter's variables:
//
//  * Invocation-local variables: a forward may/must assigned-set analysis
//    (may = union over paths, must = intersection).  Reading a local that no
//    path assigns is an error (the interpreter throws "undefined variable"
//    at runtime); reading one that only some paths assign is a warning.
//    Loop variables count as definitely assigned from their ForInit onwards
//    -- after a zero-trip loop the variable still holds `lo`, matching the
//    interpreter.  Handler parameters are assigned at entry.
//
//  * Filter state: the runtime zero-fills state, so reads are always
//    *defined*; the semantic check is whole-filter.  State that is read
//    somewhere but written nowhere (no declared initializer, no init-function
//    store, no work/handler store) can only ever be zero -- reported as an
//    error.  State that is written but never read is dead weight -- reported
//    as a warning.

#include <vector>

#include "analysis/diagnostic.h"
#include "ir/filter.h"

namespace sit::analysis {

// Check one filter; appends diagnostics (pass name "init").
void check_definite_init(const ir::FilterSpec& spec,
                         std::vector<Diagnostic>& out);

}  // namespace sit::analysis
