#pragma once
// Saturating int64 interval arithmetic for the peek/array bounds pass.
//
// An Interval approximates the set of values an integer expression can take.
// Endpoints saturate at +/-INT64_MAX/MIN, which double as the +/-infinity
// sentinels; arithmetic that could overflow clamps to the sentinel instead,
// which only ever widens the interval and so stays sound.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

namespace sit::analysis {

struct Interval {
  static constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  std::int64_t lo{kMin};
  std::int64_t hi{kMax};

  static Interval top() { return {kMin, kMax}; }
  static Interval exact(std::int64_t v) { return {v, v}; }
  static Interval range(std::int64_t lo, std::int64_t hi) { return {lo, hi}; }
  static Interval at_least(std::int64_t lo) { return {lo, kMax}; }

  [[nodiscard]] bool is_top() const { return lo == kMin && hi == kMax; }
  [[nodiscard]] bool is_exact() const { return lo == hi; }

  [[nodiscard]] bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  [[nodiscard]] bool within(std::int64_t l, std::int64_t h) const {
    return lo >= l && hi <= h;
  }

  [[nodiscard]] std::string str() const {
    const std::string l = lo == kMin ? "-inf" : std::to_string(lo);
    const std::string h = hi == kMax ? "+inf" : std::to_string(hi);
    return "[" + l + ", " + h + "]";
  }

  [[nodiscard]] Interval join(const Interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  // Widen `this` toward `o`: any endpoint that moved jumps to infinity.
  [[nodiscard]] Interval widen(const Interval& o) const {
    return {o.lo < lo ? kMin : lo, o.hi > hi ? kMax : hi};
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }
};

namespace detail {

inline std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) {
    return (a > 0) ? Interval::kMax : Interval::kMin;
  }
  return r;
}

inline std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) {
    return ((a > 0) == (b > 0)) ? Interval::kMax : Interval::kMin;
  }
  return r;
}

inline std::int64_t sat_neg(std::int64_t a) {
  return a == Interval::kMin ? Interval::kMax : -a;
}

}  // namespace detail

// a + b; an infinite endpoint stays infinite.
inline Interval iv_add(const Interval& a, const Interval& b) {
  const std::int64_t lo = (a.lo == Interval::kMin || b.lo == Interval::kMin)
                              ? Interval::kMin
                              : detail::sat_add(a.lo, b.lo);
  const std::int64_t hi = (a.hi == Interval::kMax || b.hi == Interval::kMax)
                              ? Interval::kMax
                              : detail::sat_add(a.hi, b.hi);
  return {lo, hi};
}

inline Interval iv_neg(const Interval& a) {
  return {detail::sat_neg(a.hi), detail::sat_neg(a.lo)};
}

inline Interval iv_sub(const Interval& a, const Interval& b) {
  return iv_add(a, iv_neg(b));
}

inline Interval iv_mul(const Interval& a, const Interval& b) {
  if (a.is_top() || b.is_top()) return Interval::top();
  const std::int64_t c[4] = {
      detail::sat_mul(a.lo, b.lo), detail::sat_mul(a.lo, b.hi),
      detail::sat_mul(a.hi, b.lo), detail::sat_mul(a.hi, b.hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

// Truncating division by a *positive constant* d: monotone, so endpoints map
// to endpoints.  Any other divisor shape returns top.
inline Interval iv_div_pos(const Interval& a, std::int64_t d) {
  if (d <= 0) return Interval::top();
  const std::int64_t lo = a.lo == Interval::kMin ? Interval::kMin : a.lo / d;
  const std::int64_t hi = a.hi == Interval::kMax ? Interval::kMax : a.hi / d;
  return {lo, hi};
}

// a % d for constant d > 0.  For a >= 0 the result is [0, d-1] (tighter if `a`
// is already within one period); for possibly-negative `a`, C truncation
// gives (-(d-1)) .. (d-1).
inline Interval iv_mod_pos(const Interval& a, std::int64_t d) {
  if (d <= 0) return Interval::top();
  if (a.lo >= 0) {
    if (a.hi < d) return a;  // already reduced
    return {0, d - 1};
  }
  return {-(d - 1), d - 1};
}

// a & b: if either operand is provably non-negative, the result is bounded by
// [0, min(hi of the non-negative sides)] -- the classic bitmask rule, which is
// what proves `x & 15` in-bounds for a 16-entry sbox.
inline Interval iv_band(const Interval& a, const Interval& b) {
  const bool an = a.lo >= 0;
  const bool bn = b.lo >= 0;
  if (!an && !bn) return Interval::top();
  std::int64_t hi = Interval::kMax;
  if (an) hi = std::min(hi, a.hi);
  if (bn) hi = std::min(hi, b.hi);
  return {0, hi};
}

// a << s for constant s in [0, 62]: monotone on non-negative values.
inline Interval iv_shl_const(const Interval& a, std::int64_t s) {
  if (s < 0 || s > 62 || a.lo < 0) return Interval::top();
  const std::int64_t lo = detail::sat_mul(a.lo, std::int64_t{1} << s);
  const std::int64_t hi =
      a.hi == Interval::kMax ? Interval::kMax
                             : detail::sat_mul(a.hi, std::int64_t{1} << s);
  return {lo, hi};
}

// a >> s for constant s in [0, 63]: monotone on non-negative values.
inline Interval iv_shr_const(const Interval& a, std::int64_t s) {
  if (s < 0 || s > 63 || a.lo < 0) return Interval::top();
  const std::int64_t hi =
      a.hi == Interval::kMax ? Interval::kMax : (a.hi >> s);
  return {a.lo >> s, hi};
}

inline Interval iv_min(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

inline Interval iv_max(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

}  // namespace sit::analysis
