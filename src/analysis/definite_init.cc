#include "analysis/definite_init.h"

#include <set>
#include <string>
#include <utility>

#include "analysis/cfg.h"

namespace sit::analysis {

using ir::Expr;
using ir::ExprP;
using ir::Stmt;
using ir::StmtP;

namespace {

struct AssignSets {
  std::set<std::string> may;   // assigned on some path
  std::set<std::string> must;  // assigned on every path
};

bool join_sets(AssignSets& into, const AssignSets& from, const CfgNode* /*widen_at*/) {
  bool changed = false;
  for (const auto& n : from.may) changed |= into.may.insert(n).second;
  for (auto it = into.must.begin(); it != into.must.end();) {
    if (from.must.count(*it) == 0) {
      it = into.must.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

void transfer(const CfgNode& node, AssignSets& st) {
  switch (node.kind) {
    case CfgNode::Kind::Stmt:
      if (node.stmt->kind == Stmt::Kind::Assign) {
        st.may.insert(node.stmt->name);
        st.must.insert(node.stmt->name);
      }
      break;
    case CfgNode::Kind::ForInit:
      st.may.insert(node.stmt->name);
      st.must.insert(node.stmt->name);
      break;
    default:
      break;
  }
}

// Whole-filter usage tally for the state checks.
struct StateUsage {
  std::set<std::string> reads;
  std::set<std::string> writes;
};

class BodyChecker {
 public:
  BodyChecker(const ir::FilterSpec& spec, Cfg cfg,
              const ForwardSolver<AssignSets>& sol, StateUsage& usage,
              std::set<std::string> entry_assigned,
              std::vector<Diagnostic>& out)
      : cfg_(std::move(cfg)), sol_(sol), usage_(usage),
        entry_assigned_(std::move(entry_assigned)), out_(out) {
    for (const auto& d : spec.state) {
      (d.is_array ? state_arrays_ : state_scalars_).insert(d.name);
    }
  }

  void walk(const StmtP& s) {
    if (!s) return;
    switch (s->kind) {
      case Stmt::Kind::Block:
        for (const auto& c : s->stmts) walk(c);
        return;
      case Stmt::Kind::If: {
        const auto [st, at] = state_at(s.get());
        check_reads(s->cond, st, at);
        walk(s->body);
        walk(s->elseBody);
        return;
      }
      case Stmt::Kind::For: {
        const auto [st, at] = state_at(s.get());
        check_reads(s->lo, st, at);
        check_reads(s->hi, st, at);
        check_reads(s->step, st, at);
        walk(s->body);
        return;
      }
      default: {
        const auto [st, at] = state_at(s.get());
        check_reads(s->index, st, at);
        check_reads(s->value, st, at);
        for (const auto& a : s->args) check_reads(a, st, at);
        if (s->kind == Stmt::Kind::Assign &&
            state_scalars_.count(s->name) != 0) {
          usage_.writes.insert(s->name);
        }
        if (s->kind == Stmt::Kind::ArrayAssign) {
          if (state_arrays_.count(s->name) != 0) {
            usage_.writes.insert(s->name);
          } else {
            out_.push_back(error("init", at,
                                 "store to undeclared array '" + s->name + "'"));
          }
        }
        return;
      }
    }
  }

 private:
  std::pair<AssignSets, std::string> state_at(const Stmt* s) {
    auto& ids = cfg_.stmt_nodes[s];
    const int id = ids.front();
    if (ids.size() > 1) ids.erase(ids.begin());
    return {sol_.in(id), cfg_.nodes[static_cast<std::size_t>(id)].where};
  }

  void check_reads(const ExprP& e, const AssignSets& st, const std::string& at) {
    if (!e) return;
    switch (e->kind) {
      case Expr::Kind::Var: {
        const std::string& n = e->name;
        if (state_scalars_.count(n) != 0) {
          usage_.reads.insert(n);
          return;
        }
        if (entry_assigned_.count(n) != 0) return;  // handler parameter
        if (st.must.count(n) != 0) return;
        if (st.may.count(n) != 0) {
          out_.push_back(warning(
              "init", at,
              "variable '" + n + "' may be read before assignment",
              "assigned on some paths to this point, but not all"));
        } else {
          out_.push_back(error(
              "init", at, "variable '" + n + "' is read but never assigned",
              "the interpreter throws \"undefined variable\" here"));
        }
        return;
      }
      case Expr::Kind::ArrayRef:
        if (state_arrays_.count(e->name) != 0) {
          usage_.reads.insert(e->name);
        } else {
          out_.push_back(error(
              "init", at, "read of undeclared array '" + e->name + "'"));
        }
        check_reads(e->a, st, at);
        return;
      default:
        check_reads(e->a, st, at);
        check_reads(e->b, st, at);
        check_reads(e->c, st, at);
        return;
    }
  }

  Cfg cfg_;
  const ForwardSolver<AssignSets>& sol_;
  StateUsage& usage_;
  std::set<std::string> entry_assigned_;
  std::set<std::string> state_scalars_, state_arrays_;
  std::vector<Diagnostic>& out_;
};

void check_body(const ir::FilterSpec& spec, const StmtP& body,
                const std::string& where, std::set<std::string> entry_assigned,
                StateUsage& usage, std::vector<Diagnostic>& out) {
  if (!body) return;
  Cfg cfg = build_cfg(body, where);
  ForwardSolver<AssignSets> sol(cfg, transfer, join_sets);
  AssignSets entry;
  entry.may = entry_assigned;
  entry.must = entry_assigned;
  sol.run(entry);
  BodyChecker chk(spec, std::move(cfg), sol, usage, std::move(entry_assigned),
                  out);
  chk.walk(body);
}

}  // namespace

void check_definite_init(const ir::FilterSpec& spec,
                         std::vector<Diagnostic>& out) {
  StateUsage usage;
  for (const auto& d : spec.state) {
    if (!d.init.empty()) usage.writes.insert(d.name);
  }

  check_body(spec, spec.init, spec.name + "/init", {}, usage, out);
  check_body(spec, spec.work, spec.name + "/work", {}, usage, out);
  for (const auto& [name, h] : spec.handlers) {
    std::set<std::string> params(h.params.begin(), h.params.end());
    check_body(spec, h.body, spec.name + "/handler(" + name + ")",
               std::move(params), usage, out);
  }

  for (const auto& d : spec.state) {
    const bool read = usage.reads.count(d.name) != 0;
    const bool written = usage.writes.count(d.name) != 0;
    if (read && !written) {
      out.push_back(error(
          "init", spec.name,
          "state '" + d.name + "' is read but never initialized or written",
          "it can only ever hold the zero-fill value"));
    } else if (!read && written) {
      out.push_back(warning("init", spec.name,
                            "state '" + d.name + "' is never read",
                            "dead state: stores have no observable effect"));
    } else if (!read && !written) {
      out.push_back(warning("init", spec.name,
                            "state '" + d.name + "' is never used"));
    }
  }
}

}  // namespace sit::analysis
