#include "analysis/constprop.h"

#include <map>

#include "analysis/cfg.h"
#include "analysis/const_eval.h"

namespace sit::analysis {

using ir::BinOp;
using ir::Expr;
using ir::ExprP;
using ir::Stmt;
using ir::StmtP;
using ir::UnOp;
using ir::Value;

namespace {

// Per-variable lattice cell: absent from the map = unassigned (bottom),
// {nac=false, v} = known exact value, {nac=true} = not-a-constant (top).
struct Cell {
  bool nac{false};
  Value v;
};

using Env = std::map<std::string, Cell>;

bool value_eq(const Value& a, const Value& b) {
  if (a.is_int() != b.is_int()) return false;
  return a.is_int() ? a.as_int() == b.as_int() : a.as_double() == b.as_double();
}

// Join `from` into `into`; returns true if `into` changed.  A variable
// assigned on one path but not the other joins to NAC: folding its use would
// bake in a value the other path never produced.
bool join_env(Env& into, const Env& from, const CfgNode* /*widen_at*/) {
  bool changed = false;
  for (auto& [name, cell] : into) {
    if (cell.nac) continue;
    auto it = from.find(name);
    if (it == from.end() || it->second.nac || !value_eq(cell.v, it->second.v)) {
      cell.nac = true;
      changed = true;
    }
  }
  for (const auto& [name, cell] : from) {
    auto it = into.find(name);
    if (it == into.end()) {
      into[name] = Cell{true, Value{}};
      changed = true;
    }
    (void)cell;
  }
  return changed;
}

std::optional<Value> eval_const(const ExprP& e, const Env& env) {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case Expr::Kind::IntConst:
      return Value(e->ival);
    case Expr::Kind::FloatConst:
      return Value(e->fval);
    case Expr::Kind::Var: {
      auto it = env.find(e->name);
      if (it == env.end() || it->second.nac) return std::nullopt;
      return it->second.v;
    }
    case Expr::Kind::Bin: {
      const auto a = eval_const(e->a, env);
      // Short-circuit identities; sound because the interpreter never
      // evaluates the dead operand.
      if (a) {
        if (e->bop == BinOp::LOr && a->truthy()) return Value(true);
        if (e->bop == BinOp::LAnd && !a->truthy()) return Value(false);
      }
      const auto b = eval_const(e->b, env);
      if (!a || !b) return std::nullopt;
      return exact_bin(e->bop, *a, *b);
    }
    case Expr::Kind::Un: {
      const auto a = eval_const(e->a, env);
      if (!a) return std::nullopt;
      return exact_un(e->uop, *a);
    }
    case Expr::Kind::Cond: {
      const auto c = eval_const(e->a, env);
      if (!c) return std::nullopt;
      return eval_const(c->truthy() ? e->b : e->c, env);
    }
    default:  // Peek, Pop, ArrayRef: never compile-time constants
      return std::nullopt;
  }
}

void transfer(const CfgNode& node, Env& env) {
  switch (node.kind) {
    case CfgNode::Kind::Stmt:
      if (node.stmt->kind == Stmt::Kind::Assign) {
        const auto v = eval_const(node.stmt->value, env);
        env[node.stmt->name] = v ? Cell{false, *v} : Cell{true, Value{}};
      }
      break;
    case CfgNode::Kind::ForInit:
    case CfgNode::Kind::ForInc:
      // The loop variable takes many values across iterations; the per-node
      // environments inside the body must not fold it.  (The linear
      // extractor unrolls constant-bound loops itself, so nothing is lost.)
      env[node.stmt->name] = Cell{true, Value{}};
      break;
    default:
      break;
  }
}

ExprP literal(const Value& v) {
  return v.is_int() ? ir::iconst(v.as_int()) : ir::fconst(v.as_double());
}

bool is_literal(const ExprP& e) {
  return e && (e->kind == Expr::Kind::IntConst || e->kind == Expr::Kind::FloatConst);
}

// Rewrites the AST using the solved per-node environments.
class Folder {
 public:
  Folder(Cfg cfg, const ForwardSolver<Env>& solver, std::string where)
      : cfg_(std::move(cfg)), solver_(solver), where_(std::move(where)) {}

  StmtP fold_stmt(const StmtP& s) {
    if (!s) return nullptr;
    switch (s->kind) {
      case Stmt::Kind::Block: {
        std::vector<StmtP> out;
        out.reserve(s->stmts.size());
        for (const auto& c : s->stmts) {
          StmtP f = fold_stmt(c);
          if (f) out.push_back(std::move(f));
        }
        return ir::block(std::move(out));
      }
      case Stmt::Kind::If: {
        const int id = take_node(s.get());
        const Env& env = solver_.in(id);
        const std::string& at = cfg_.nodes[static_cast<std::size_t>(id)].where;
        ExprP cond = fold_expr(s->cond, env, at);
        // The recursive folds below must run even for a constant condition:
        // they consume this statement's inner CFG occurrences in order.
        StmtP body = fold_stmt(s->body);
        StmtP els = fold_stmt(s->elseBody);
        if (is_literal(cond)) {
          const bool taken = cond->kind == Expr::Kind::IntConst
                                 ? cond->ival != 0
                                 : cond->fval != 0.0;
          StmtP pick = taken ? body : els;
          return pick ? pick : ir::block({});
        }
        return els ? ir::if_else(cond, body ? body : ir::block({}), els)
                   : ir::if_then(cond, body ? body : ir::block({}));
      }
      case Stmt::Kind::For: {
        const int id = take_node(s.get());
        const Env& env = solver_.in(id);
        const std::string& at = cfg_.nodes[static_cast<std::size_t>(id)].where;
        ExprP lo = fold_expr(s->lo, env, at);
        ExprP hi = fold_expr(s->hi, env, at);
        ExprP step = fold_expr(s->step, env, at);
        StmtP body = fold_stmt(s->body);
        if (lo && hi && lo->kind == Expr::Kind::IntConst &&
            hi->kind == Expr::Kind::IntConst && lo->ival >= hi->ival) {
          return nullptr;  // provably zero-trip: delete the loop
        }
        return ir::for_loop_step(s->name, lo, hi, step,
                                 body ? body : ir::block({}));
      }
      default: {
        const int id = take_node(s.get());
        const Env& env = solver_.in(id);
        const std::string& at = cfg_.nodes[static_cast<std::size_t>(id)].where;
        Stmt copy = *s;
        copy.index = fold_expr(s->index, env, at);
        copy.value = fold_expr(s->value, env, at);
        for (auto& a : copy.args) a = fold_expr(a, env, at);
        return std::make_shared<const Stmt>(std::move(copy));
      }
    }
  }

  std::vector<Diagnostic> diagnostics;

 private:
  int take_node(const Stmt* s) {
    auto& ids = cfg_.stmt_nodes[s];
    const int id = ids.front();
    if (ids.size() > 1) ids.erase(ids.begin());
    return id;
  }

  ExprP fold_expr(const ExprP& e, const Env& env, const std::string& at) {
    if (!e) return nullptr;
    switch (e->kind) {
      case Expr::Kind::IntConst:
      case Expr::Kind::FloatConst:
      case Expr::Kind::Pop:
        return e;
      case Expr::Kind::Var: {
        auto it = env.find(e->name);
        if (it != env.end() && !it->second.nac) return literal(it->second.v);
        return e;
      }
      case Expr::Kind::ArrayRef:
        return ir::aref(e->name, fold_expr(e->a, env, at));
      case Expr::Kind::Peek:
        return ir::peek(fold_expr(e->a, env, at));
      case Expr::Kind::Bin: {
        ExprP a = fold_expr(e->a, env, at);
        if (is_literal(a)) {
          const Value av = a->kind == Expr::Kind::IntConst ? Value(a->ival)
                                                           : Value(a->fval);
          // Short-circuit folds kill the never-evaluated right operand.
          if (e->bop == BinOp::LOr && av.truthy()) return ir::iconst(1);
          if (e->bop == BinOp::LAnd && !av.truthy()) return ir::iconst(0);
        }
        ExprP b = fold_expr(e->b, env, at);
        if (is_literal(a) && is_literal(b)) {
          const Value av = a->kind == Expr::Kind::IntConst ? Value(a->ival)
                                                           : Value(a->fval);
          const Value bv = b->kind == Expr::Kind::IntConst ? Value(b->ival)
                                                           : Value(b->fval);
          if (auto r = exact_bin(e->bop, av, bv)) return literal(*r);
          if (e->bop == BinOp::Div || e->bop == BinOp::Mod) {
            diagnostics.push_back(error(
                "constprop", where_,
                std::string(e->bop == BinOp::Div ? "division" : "modulo") +
                    " by constant zero",
                ir::to_string(e) + "  (at " + at + ")"));
          }
        }
        return ir::bin(e->bop, a, b);
      }
      case Expr::Kind::Un: {
        ExprP a = fold_expr(e->a, env, at);
        if (is_literal(a)) {
          const Value av = a->kind == Expr::Kind::IntConst ? Value(a->ival)
                                                           : Value(a->fval);
          if (auto r = exact_un(e->uop, av)) return literal(*r);
        }
        return ir::un(e->uop, a);
      }
      case Expr::Kind::Cond: {
        ExprP c = fold_expr(e->a, env, at);
        if (is_literal(c)) {
          const bool taken =
              c->kind == Expr::Kind::IntConst ? c->ival != 0 : c->fval != 0.0;
          // Lazy arms: the dropped one never evaluates at runtime.
          return fold_expr(taken ? e->b : e->c, env, at);
        }
        return ir::cond(c, fold_expr(e->b, env, at), fold_expr(e->c, env, at));
      }
    }
    return e;
  }

  Cfg cfg_;
  const ForwardSolver<Env>& solver_;
  std::string where_;
};

}  // namespace

FoldResult fold_body(const StmtP& body, const std::string& where) {
  FoldResult r;
  if (!body) {
    return r;
  }
  Cfg cfg = build_cfg(body, where);
  ForwardSolver<Env> solver(cfg, transfer, join_env);
  solver.run(Env{});
  Folder folder(std::move(cfg), solver, where);
  r.body = folder.fold_stmt(body);
  r.diagnostics = std::move(folder.diagnostics);
  return r;
}

ir::StmtP fold_work(const ir::FilterSpec& spec) {
  return fold_body(spec.work, spec.name + "/work").body;
}

}  // namespace sit::analysis
