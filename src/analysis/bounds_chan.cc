#include "analysis/bounds_chan.h"

#include <algorithm>

namespace sit::analysis {

using runtime::FlatActor;
using runtime::FlatEdge;
using runtime::FlatGraph;
using sched::Schedule;

namespace {

std::int64_t rate_into(const FlatActor& a, int edge) {
  for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
    if (a.in_edges[p] == edge) return a.in_rate[p];
  }
  return 0;
}

std::int64_t rate_outof(const FlatActor& a, int edge) {
  for (std::size_t p = 0; p < a.out_edges.size(); ++p) {
    if (a.out_edges[p] == edge) return a.out_rate[p];
  }
  return 0;
}

// Data-driven in-order simulation of one epoch (the executors' run_epoch,
// firing for firing): each sweep walks the topo order and fires every actor
// as often as its remaining quota and input levels allow.  Levels and peaks
// update per firing, so the recorded peak is the same quantity the channels'
// note_high_water() samples at firing boundaries.
void simulate_epoch(const FlatGraph& g, const Schedule& s,
                    const std::vector<std::int64_t>& quota_in,
                    std::vector<std::int64_t>& level,
                    std::vector<std::int64_t>& peak) {
  std::vector<std::int64_t> quota = quota_in;
  const auto can_fire = [&](int actor) {
    const FlatActor& a = g.actors[static_cast<std::size_t>(actor)];
    for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
      const int e = a.in_edges[p];
      if (e < 0) continue;
      std::int64_t want = a.in_rate[p];
      if (a.is_filter()) want += a.peek_extra;
      if (level[static_cast<std::size_t>(e)] < want) return false;
    }
    return true;
  };
  const auto fire = [&](int actor) {
    const FlatActor& a = g.actors[static_cast<std::size_t>(actor)];
    for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
      const int e = a.in_edges[p];
      if (e >= 0) level[static_cast<std::size_t>(e)] -= a.in_rate[p];
    }
    for (std::size_t p = 0; p < a.out_edges.size(); ++p) {
      const int e = a.out_edges[p];
      if (e < 0) continue;
      const auto ei = static_cast<std::size_t>(e);
      level[ei] += a.out_rate[p];
      peak[ei] = std::max(peak[ei], level[ei]);
    }
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (int actor : s.order) {
      const auto ai = static_cast<std::size_t>(actor);
      while (quota[ai] > 0 && can_fire(actor)) {
        fire(actor);
        --quota[ai];
        progress = true;
      }
    }
  }
}

}  // namespace

ChannelBounds channel_bounds(const FlatGraph& g, const Schedule& s) {
  ChannelBounds b;
  const std::size_t m = g.edges.size();
  b.post_init.assign(m, -1);
  b.traffic.assign(m, -1);
  b.in_order.assign(m, -1);
  b.steady_single.assign(m, -1);

  // Topo position of each actor in the firing order.
  std::vector<std::size_t> pos(g.actors.size(), 0);
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    pos[static_cast<std::size_t>(s.order[i])] = i;
  }

  // L0: closed form from the init firing counts.
  for (std::size_t e = 0; e < m; ++e) {
    const FlatEdge& ed = g.edges[e];
    if (ed.src < 0 || ed.dst < 0) continue;  // boundary: no bound
    std::int64_t l0 = static_cast<std::int64_t>(ed.initial_items.size());
    l0 += s.init_fires[static_cast<std::size_t>(ed.src)] *
          rate_outof(g.actors[static_cast<std::size_t>(ed.src)],
                     static_cast<int>(e));
    l0 -= s.init_fires[static_cast<std::size_t>(ed.dst)] *
          rate_into(g.actors[static_cast<std::size_t>(ed.dst)],
                    static_cast<int>(e));
    b.post_init[e] = l0;
    b.traffic[e] = s.edge_traffic[e];
    b.steady_single[e] =
        l0 + (pos[static_cast<std::size_t>(ed.src)] <
                      pos[static_cast<std::size_t>(ed.dst)]
                  ? s.edge_traffic[e]
                  : 0);
  }

  // In-order peak: init epoch plus two steady states (levels return to L0
  // after every steady state, so two prove the peak is periodic).
  {
    std::vector<std::int64_t> level(m, 0);
    std::vector<std::int64_t> peak(m, 0);
    for (std::size_t e = 0; e < m; ++e) {
      level[e] = static_cast<std::int64_t>(g.edges[e].initial_items.size());
      peak[e] = level[e];
    }
    if (g.input_edge >= 0) {
      level[static_cast<std::size_t>(g.input_edge)] += s.input_for_init;
    }
    simulate_epoch(g, s, s.init_fires, level, peak);
    for (int epoch = 0; epoch < 2; ++epoch) {
      if (g.input_edge >= 0) {
        level[static_cast<std::size_t>(g.input_edge)] += s.input_per_steady;
      }
      simulate_epoch(g, s, s.reps, level, peak);
    }
    for (std::size_t e = 0; e < m; ++e) {
      if (b.post_init[e] >= 0) b.in_order[e] = peak[e];
    }
  }

  // Single-appearance admissibility, generalized over the batch factor B:
  // a chunk of B steady iterations fires each actor reps * B times at once,
  // in topo order, starting from L0.  Every edge level is affine in B
  // (cnt = c0 + B * c1: c0 collects the init-epoch contributions, c1 the
  // per-iteration steady ones), and each consumer's starvation constraint
  //
  //     c0 + B * c1 >= B * reps * in_rate + peek_extra
  //
  // either holds for every B >= 1 (when reps * in_rate <= c1, e.g. any
  // forward edge already refilled by its producer) or caps B at
  // floor((c0 - peek_extra) / (reps * in_rate - c1)).  max_batch is the
  // minimum cap; B = 1 infeasible reproduces the classic single-appearance
  // failure and names the first starved actor.
  {
    std::vector<std::int64_t> c0(m, 0);
    std::vector<std::int64_t> c1(m, 0);
    for (std::size_t e = 0; e < m; ++e) {
      const FlatEdge& ed = g.edges[e];
      std::int64_t c = static_cast<std::int64_t>(ed.initial_items.size());
      if (ed.src >= 0) {
        c += s.init_fires[static_cast<std::size_t>(ed.src)] *
             rate_outof(g.actors[static_cast<std::size_t>(ed.src)],
                        static_cast<int>(e));
      } else {
        c += s.input_for_init;
      }
      if (ed.dst >= 0) {
        c -= s.init_fires[static_cast<std::size_t>(ed.dst)] *
             rate_into(g.actors[static_cast<std::size_t>(ed.dst)],
                       static_cast<int>(e));
      }
      c0[e] = c;
    }
    if (g.input_edge >= 0) {
      c1[static_cast<std::size_t>(g.input_edge)] += s.input_per_steady;
    }
    for (int actor : s.order) {
      const auto ai = static_cast<std::size_t>(actor);
      const FlatActor& a = g.actors[ai];
      for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
        const int e = a.in_edges[p];
        if (e < 0) continue;
        const auto ei = static_cast<std::size_t>(e);
        const std::int64_t need1 = s.reps[ai] * a.in_rate[p];
        std::int64_t extra = 0;
        if (a.is_filter()) extra = a.peek_extra;
        const std::int64_t coeff = need1 - c1[ei];
        if (coeff <= 0) {
          // Supply per batch outpaces demand, so larger batches only help --
          // but B = 1 (and remainder chunks) must still clear peek_extra.
          if (c0[ei] + c1[ei] < need1 + extra && b.single_appearance) {
            b.single_appearance = false;
            b.blocker = a.name;
          }
          continue;
        }
        // Largest B with c0 + B*c1 >= B*need1 + extra (floor division; the
        // numerator can be negative, in which case no batch is feasible).
        const std::int64_t num = c0[ei] - extra;
        const std::int64_t cap = num < 0 ? 0 : num / coeff;
        if (cap < b.max_batch) b.max_batch = cap;
        if (cap < 1 && b.single_appearance) {
          b.single_appearance = false;
          b.blocker = a.name;
        }
      }
      if (!b.single_appearance) {
        b.max_batch = 0;
        return b;
      }
      for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
        const int e = a.in_edges[p];
        if (e >= 0) c1[static_cast<std::size_t>(e)] -= s.reps[ai] * a.in_rate[p];
      }
      for (std::size_t p = 0; p < a.out_edges.size(); ++p) {
        const int e = a.out_edges[p];
        if (e >= 0) c1[static_cast<std::size_t>(e)] += s.reps[ai] * a.out_rate[p];
      }
    }
  }
  return b;
}

}  // namespace sit::analysis
