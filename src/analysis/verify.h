#pragma once
// Pass-pipeline semantic verifier.
//
// Every pass of the compilation pipeline (opt/pass_manager.h) is supposed to
// preserve the stream-graph invariants scheduling and execution depend on.
// Before this verifier, a miscompile only surfaced as a differential-test
// failure with no indication of *which* pass broke *what*.  verify_flat /
// verify_graph check those invariants directly, so the pass manager can run
// them after every pass (PassOptions::verify_each, env SIT_VERIFY) and name
// the offending pass the moment an invariant breaks.
//
// Checks, each with a stable diagnostic code (Diagnostic::code):
//
//   V-STRUCT  structural well-formedness of the flat graph: edge/actor
//             cross-references and port tables agree, rate arrays match the
//             port counts, rates are non-negative, filters have at most one
//             input and one output, at most one external input/output edge
//             and the FlatGraph fields point at them.
//   V-SJ      splitjoin weight sums: a round-robin splitter consumes exactly
//             the sum of its branch weights per firing (joiner dually), and
//             a duplicate splitter is 1 -> 1 per branch.
//   V-RATES   push/pop/peek rate consistency: the balance equations have a
//             solution and the minimal steady-state multiplicities are
//             positive integers.
//   V-ORDER   dag-ness of the actor partition order: the forward edges
//             (ignoring declared back edges) admit a topological order
//             covering every actor.
//   V-STATE   state ownership: no filter state (ir::Node) is referenced by
//             two flat actors -- every legitimate rewrite clones, so an
//             aliased node means two partitions would share mutable state.
//   V-SCHED   deadlock freedom: the initialization epoch converges and the
//             steady state admits a schedule (so every static channel bound
//             is finite).
//
// verify_flat takes an already-flattened graph (mutation tests corrupt flat
// graphs directly); verify_graph flattens a hierarchical program first and
// reports a flattening failure as V-STRUCT.

#include <vector>

#include "analysis/diagnostic.h"
#include "ir/graph.h"
#include "runtime/flatgraph.h"

namespace sit::analysis {

// All diagnostics carry pass = "verify" and one of the codes above.
std::vector<Diagnostic> verify_flat(const runtime::FlatGraph& g);
std::vector<Diagnostic> verify_graph(const ir::NodeP& root);

}  // namespace sit::analysis
