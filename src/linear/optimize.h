#pragma once
// Optimization selection: decide, over the stream hierarchy, where to apply
// linear combination and frequency translation (the paper's selection
// algorithm).  Pipelines are searched with an interval dynamic program
// (every contiguous run of linear stages is a collapse candidate);
// split-joins with all-linear branches are collapse candidates as a whole;
// every linear candidate is additionally considered in the frequency domain.
// A candidate is chosen iff it lowers the modeled cost per input item.

#include <optional>
#include <string>

#include "ir/graph.h"
#include "linear/linear_rep.h"

namespace sit::linear {

struct OptimizeOptions {
  bool enable_combination{true};
  bool enable_frequency{true};
  // Weight of splitter/joiner item movement relative to a flop.  Small and
  // nonzero: it breaks ties in favor of fewer actors, mirroring the paper's
  // observation that collapsing also removes synchronization.
  double sync_weight{0.05};
  // Skip combination candidates whose matrix would exceed this entry count
  // (guards against lcm blow-up on wildly mismatched rates).
  std::size_t max_matrix_entries{1u << 22};
};

struct OptimizeStats {
  int total_filters{0};
  int linear_filters{0};
  int combinations{0};       // collapse rewrites applied
  int frequency_nodes{0};    // frequency translations applied
  double cost_before{0.0};   // modeled flops per input item
  double cost_after{0.0};
  std::string log;
};

// Returns the rewritten graph (a fresh tree; the input is not mutated).
ir::NodeP optimize(const ir::NodeP& root, const OptimizeOptions& opts = {},
                   OptimizeStats* stats = nullptr);

// Extraction over a whole subtree: the linear rep of the subtree's stream
// function if every leaf is linear and the structure is combinable.
std::optional<LinearRep> extract_tree(const ir::NodeP& node,
                                      const OptimizeOptions& opts = {});

}  // namespace sit::linear
