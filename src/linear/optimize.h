#pragma once
// Optimization selection: decide, over the stream hierarchy, where to apply
// linear combination and frequency translation (the paper's selection
// algorithm).  Pipelines are searched with an interval dynamic program
// (every contiguous run of linear stages is a collapse candidate);
// split-joins with all-linear branches are collapse candidates as a whole;
// every linear candidate is additionally considered in the frequency domain.
// A candidate is chosen iff it lowers the modeled cost per input item.

#include <optional>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "linear/linear_rep.h"

namespace sit::linear {

struct OptimizeOptions {
  bool enable_combination{true};
  bool enable_frequency{true};
  // Weight of splitter/joiner item movement relative to a flop.  Small and
  // nonzero: it breaks ties in favor of fewer actors, mirroring the paper's
  // observation that collapsing also removes synchronization.
  double sync_weight{0.05};
  // Skip combination candidates whose matrix would exceed this entry count
  // (guards against lcm blow-up on wildly mismatched rates).
  std::size_t max_matrix_entries{1u << 22};
};

// One optimization-selection decision, in the order the optimizer considered
// it: a candidate rewrite of a site (filter, pipeline interval, or
// split-join) that was either selected for its subtree (`applied`, with the
// modeled costs that justified it) or refused (`note` says why -- not
// linear, not combinable, not cheaper).  Candidates selected at one level of
// the interval DP can still lose to a larger enclosing candidate; the
// OptimizeStats counters report what survived in the final tree.
struct RewriteRecord {
  std::string pass;   // "combine" | "frequency" | "extract"
  std::string site;   // node or interval name, e.g. "pipe[0..3]"
  double cost_before{0.0};  // modeled cost/item of the structural form
  double cost_after{0.0};   // modeled cost/item of the candidate
  bool applied{false};
  std::string note;   // refusal reason when !applied

  [[nodiscard]] std::string to_string() const;  // one line
};

struct OptimizeStats {
  int total_filters{0};
  int linear_filters{0};
  int combinations{0};       // collapse rewrites applied
  int frequency_nodes{0};    // frequency translations applied
  double cost_before{0.0};   // modeled flops per input item
  double cost_after{0.0};
  // Structured per-candidate decisions (selections and refusals), replacing
  // the historical append-only log string; log() renders them for humans.
  std::vector<RewriteRecord> records;

  [[nodiscard]] std::string log() const;  // records, one per line
};

// Run the selection algorithm and return the rewritten graph (a fresh tree;
// the input is not mutated).  This is the implementation behind the
// `linear-combine` and `frequency` passes of the pass pipeline
// (opt/pass_manager.h); prefer opt::compile() for whole-program compilation
// (per-pass stats, verification, artifact) and call this directly only for
// a bare graph-to-graph rewrite.
ir::NodeP optimize_selection(const ir::NodeP& root,
                             const OptimizeOptions& opts = {},
                             OptimizeStats* stats = nullptr);

// Deprecated alias of optimize_selection (the historical entry-point name).
[[deprecated(
    "use opt::compile() with the linear-combine / frequency passes, or "
    "linear::optimize_selection for a bare graph-to-graph rewrite")]]
ir::NodeP optimize(const ir::NodeP& root, const OptimizeOptions& opts = {},
                   OptimizeStats* stats = nullptr);

// Extraction over a whole subtree: the linear rep of the subtree's stream
// function if every leaf is linear and the structure is combinable.
std::optional<LinearRep> extract_tree(const ir::NodeP& node,
                                      const OptimizeOptions& opts = {});

}  // namespace sit::linear
