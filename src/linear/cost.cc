#include "linear/cost.h"

#include <map>
#include <mutex>

#include "obs/costmodel.h"
#include "runtime/channel.h"
#include "runtime/interp.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace sit::linear {

namespace {

// Count AST nodes as a last-resort work proxy.
double ast_size(const ir::ExprP& e);

double ast_size(const ir::StmtP& s) {
  if (!s) return 0;
  double n = 1;
  for (const auto& c : s->stmts) n += ast_size(c);
  n += ast_size(s->index) + ast_size(s->value) + ast_size(s->cond) +
       ast_size(s->lo) + ast_size(s->hi);
  n += ast_size(s->body) + ast_size(s->elseBody);
  for (const auto& a : s->args) n += ast_size(a);
  return n;
}

double ast_size(const ir::ExprP& e) {
  if (!e) return 0;
  return 1 + ast_size(e->a) + ast_size(e->b) + ast_size(e->c);
}

}  // namespace

runtime::OpCounts estimate_work(const ir::FilterSpec& spec) {
  // Memoize on the work AST.  The cache must hold a shared_ptr to the AST:
  // keying on a raw pointer alone would let a freed AST's address be reused
  // by a fresh allocation and serve a stale estimate.
  struct Entry {
    ir::StmtP pin;
    runtime::OpCounts counts;
  };
  static std::map<const ir::Stmt*, Entry> cache;
  static std::mutex mu;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(spec.work.get());
    if (it != cache.end()) return it->second.counts;
  }

  runtime::OpCounts counts;
  try {
    runtime::FilterState st = runtime::Interp::init_state(spec);
    runtime::Channel in, out;
    for (int i = 0; i < spec.peek + 1; ++i) in.push_item(1.0);
    runtime::Interp::run_work(spec, st, in, out, &counts);
  } catch (const std::exception&) {
    counts = runtime::OpCounts{};
    counts.flops = static_cast<std::int64_t>(ast_size(spec.work));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    cache[spec.work.get()] = Entry{spec.work, counts};
  }
  return counts;
}

double leaf_flops_per_firing(const ir::Node& leaf) {
  if (leaf.kind == ir::Node::Kind::Filter) {
    return estimate_work(leaf.filter).total_flops();
  }
  if (leaf.kind == ir::Node::Kind::Native) {
    return leaf.native.cost_flops;
  }
  return 0.0;
}

double leaf_ops_per_firing(const ir::Node& leaf) {
  if (leaf.kind == ir::Node::Kind::Filter) {
    return estimate_work(leaf.filter).weighted();
  }
  if (leaf.kind == ir::Node::Kind::Native) {
    return leaf.native.cost_ops;
  }
  return 0.0;
}

double calibrated_ops_per_firing(const ir::Node& leaf,
                                 const std::string& actor_name) {
  double measured = 0.0;
  if (obs::cost_model().measured_cycles_per_fire(actor_name, &measured)) {
    return measured;
  }
  return leaf_ops_per_firing(leaf);
}

NodeCost node_cost(const ir::NodeP& node) {
  const runtime::FlatGraph g = runtime::flatten(node);
  const sched::Schedule s = sched::make_schedule(g);
  const obs::CostModel& cm = obs::cost_model();
  NodeCost c;
  c.in_per_ss = s.input_per_steady;
  c.out_per_ss = s.output_per_steady;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const auto& a = g.actors[i];
    const double reps = static_cast<double>(s.reps[i]);
    if (a.is_filter()) {
      const double stat = leaf_ops_per_firing(*a.node);
      c.flops_per_ss += reps * leaf_flops_per_firing(*a.node);
      c.ops_per_ss += reps * stat;
      double measured = 0.0;
      if (cm.measured_cycles_per_fire(a.name, &measured)) {
        c.meas_ops_per_ss += reps * measured;
        ++c.measured_actors;
      } else {
        c.meas_ops_per_ss += reps * stat;
      }
    } else {
      // A splitter/joiner firing moves its total weight in items.
      std::int64_t items = 0;
      for (int r : a.in_rate) items += r;
      for (int r : a.out_rate) items += r;
      c.sync_per_ss += reps * static_cast<double>(items);
    }
  }
  return c;
}

}  // namespace sit::linear
