#include "linear/extract.h"

#include <map>
#include <set>
#include <unordered_map>

#include "analysis/const_eval.h"
#include "analysis/constprop.h"
#include "runtime/interp.h"

namespace sit::linear {

using ir::BinOp;
using ir::Expr;
using ir::ExprP;
using ir::Stmt;
using ir::StmtP;
using ir::UnOp;
using ir::Value;

namespace {

struct AbsVal {
  enum class K { Exact, Affine, Top };
  K k{K::Top};
  Value exact;                   // K::Exact
  std::map<int, double> coeff;   // K::Affine: window index -> coefficient
  double cnst{0.0};              // K::Affine constant term

  static AbsVal top() { return AbsVal{}; }
  static AbsVal of(Value v) {
    AbsVal a;
    a.k = K::Exact;
    a.exact = v;
    return a;
  }
  static AbsVal unit(int idx) {
    AbsVal a;
    a.k = K::Affine;
    a.coeff[idx] = 1.0;
    return a;
  }

  [[nodiscard]] bool is_exact() const { return k == K::Exact; }
  [[nodiscard]] bool is_top() const { return k == K::Top; }

  // View as affine (exact constants are affine with empty coefficients).
  [[nodiscard]] AbsVal as_affine() const {
    if (k == K::Affine) return *this;
    AbsVal a;
    a.k = K::Affine;
    a.cnst = exact.as_double();
    return a;
  }
};

// Thrown to abort extraction with a reason.
struct NotLinear {
  std::string reason;
};

class Extractor {
 public:
  Extractor(const ir::FilterSpec& spec, StmtP work)
      : spec_(spec), work_(std::move(work)) {
    // Concrete initial state gives the coefficient constants.
    state_ = runtime::Interp::init_state(spec);
    for (const auto& d : spec.state) state_names_.insert(d.name);
  }

  LinearRep run() {
    exec(work_);
    if (pops_ != spec_.pop) {
      throw NotLinear{"work pops " + std::to_string(pops_) + " != declared " +
                      std::to_string(spec_.pop)};
    }
    if (static_cast<int>(rows_.size()) != spec_.push) {
      throw NotLinear{"work pushes " + std::to_string(rows_.size()) +
                      " != declared " + std::to_string(spec_.push)};
    }
    LinearRep rep;
    rep.peek = spec_.peek;
    rep.pop = spec_.pop;
    rep.push = spec_.push;
    rep.A = Matrix(static_cast<std::size_t>(spec_.push),
                   static_cast<std::size_t>(spec_.peek));
    rep.b.assign(static_cast<std::size_t>(spec_.push), 0.0);
    for (std::size_t o = 0; o < rows_.size(); ++o) {
      const AbsVal& row = rows_[o];
      for (const auto& [idx, c] : row.coeff) {
        if (idx < 0 || idx >= spec_.peek) {
          throw NotLinear{"push references window index " + std::to_string(idx) +
                          " outside [0, peek)"};
        }
        rep.A.at(o, static_cast<std::size_t>(idx)) = c;
      }
      rep.b[o] = row.cnst;
    }
    return rep;
  }

 private:
  AbsVal eval(const ExprP& e) {
    switch (e->kind) {
      case Expr::Kind::IntConst:
        return AbsVal::of(Value(e->ival));
      case Expr::Kind::FloatConst:
        return AbsVal::of(Value(e->fval));
      case Expr::Kind::Var: {
        auto lit = locals_.find(e->name);
        if (lit != locals_.end()) return lit->second;
        auto sit_ = state_.scalars.find(e->name);
        if (sit_ != state_.scalars.end()) return AbsVal::of(sit_->second);
        throw NotLinear{"undefined variable '" + e->name + "'"};
      }
      case Expr::Kind::ArrayRef: {
        const AbsVal idx = eval(e->a);
        if (!idx.is_exact()) throw NotLinear{"non-constant array index"};
        auto it = state_.arrays.find(e->name);
        if (it == state_.arrays.end()) throw NotLinear{"undefined array"};
        const auto i = idx.exact.as_int();
        if (i < 0 || static_cast<std::size_t>(i) >= it->second.size()) {
          throw NotLinear{"array index out of bounds"};
        }
        return AbsVal::of(it->second[static_cast<std::size_t>(i)]);
      }
      case Expr::Kind::Peek: {
        const AbsVal off = eval(e->a);
        if (!off.is_exact()) throw NotLinear{"non-constant peek offset"};
        return AbsVal::unit(pops_ + static_cast<int>(off.exact.as_int()));
      }
      case Expr::Kind::Pop: {
        const AbsVal v = AbsVal::unit(pops_);
        ++pops_;
        return v;
      }
      case Expr::Kind::Bin:
        return eval_bin(e);
      case Expr::Kind::Un:
        return eval_un(e);
      case Expr::Kind::Cond: {
        const AbsVal c = eval(e->a);
        if (!c.is_exact()) throw NotLinear{"data-dependent conditional expression"};
        return c.exact.truthy() ? eval(e->b) : eval(e->c);
      }
    }
    throw NotLinear{"unhandled expression"};
  }

  AbsVal eval_bin(const ExprP& e) {
    const AbsVal a = eval(e->a);
    const AbsVal b = eval(e->b);
    if (a.is_top() || b.is_top()) throw NotLinear{"non-affine operand"};

    if (a.is_exact() && b.is_exact()) {
      return AbsVal::of(exact_bin(e->bop, a.exact, b.exact));
    }

    switch (e->bop) {
      case BinOp::Add:
        return affine_add(a.as_affine(), b.as_affine(), 1.0);
      case BinOp::Sub:
        return affine_add(a.as_affine(), b.as_affine(), -1.0);
      case BinOp::Mul: {
        if (a.is_exact()) return affine_scale(b.as_affine(), a.exact.as_double());
        if (b.is_exact()) return affine_scale(a.as_affine(), b.exact.as_double());
        throw NotLinear{"product of two input-dependent values"};
      }
      case BinOp::Div: {
        if (b.is_exact()) {
          const double d = b.exact.as_double();
          if (d == 0.0) throw NotLinear{"division by zero coefficient"};
          return affine_scale(a.as_affine(), 1.0 / d);
        }
        throw NotLinear{"division by input-dependent value"};
      }
      default:
        throw NotLinear{std::string("non-linear operator '") +
                        ir::to_string(e->bop) + "' on input-dependent value"};
    }
  }

  AbsVal eval_un(const ExprP& e) {
    const AbsVal a = eval(e->a);
    if (a.is_top()) throw NotLinear{"non-affine operand"};
    if (a.is_exact()) return AbsVal::of(exact_un(e->uop, a.exact));
    switch (e->uop) {
      case UnOp::Neg:
        return affine_scale(a, -1.0);
      case UnOp::ToFloat:
        return a;
      default:
        throw NotLinear{std::string("non-linear function '") +
                        ir::to_string(e->uop) + "' of input-dependent value"};
    }
  }

  void exec(const StmtP& s) {
    if (!s) return;
    switch (s->kind) {
      case Stmt::Kind::Block:
        for (const auto& c : s->stmts) exec(c);
        break;
      case Stmt::Kind::Assign: {
        if (state_names_.count(s->name)) {
          throw NotLinear{"work writes state variable '" + s->name + "'"};
        }
        locals_[s->name] = eval(s->value);
        break;
      }
      case Stmt::Kind::ArrayAssign:
        throw NotLinear{"work writes array state '" + s->name + "'"};
      case Stmt::Kind::Push: {
        const AbsVal v = eval(s->value);
        if (v.is_top()) throw NotLinear{"push of non-affine value"};
        rows_.push_back(v.as_affine());
        break;
      }
      case Stmt::Kind::PopN: {
        const AbsVal n = eval(s->index);
        if (!n.is_exact()) throw NotLinear{"non-constant pop count"};
        pops_ += static_cast<int>(n.exact.as_int());
        break;
      }
      case Stmt::Kind::For: {
        const AbsVal lo = eval(s->lo);
        const AbsVal hi = eval(s->hi);
        const AbsVal st = eval(s->step);
        if (!lo.is_exact() || !hi.is_exact() || !st.is_exact()) {
          throw NotLinear{"non-constant loop bounds"};
        }
        const auto step = st.exact.as_int();
        if (step <= 0) throw NotLinear{"non-positive loop step"};
        for (std::int64_t i = lo.exact.as_int(); i < hi.exact.as_int(); i += step) {
          locals_[s->name] = AbsVal::of(Value(i));
          exec(s->body);
        }
        break;
      }
      case Stmt::Kind::If: {
        const AbsVal c = eval(s->cond);
        if (!c.is_exact()) throw NotLinear{"data-dependent branch"};
        exec(c.exact.truthy() ? s->body : s->elseBody);
        break;
      }
      case Stmt::Kind::Send:
        // Messages do not affect the data transformation of this firing.
        break;
    }
  }

  static AbsVal affine_add(AbsVal a, const AbsVal& b, double sign) {
    for (const auto& [idx, c] : b.coeff) {
      a.coeff[idx] += sign * c;
      if (a.coeff[idx] == 0.0) a.coeff.erase(idx);
    }
    a.cnst += sign * b.cnst;
    return a;
  }

  static AbsVal affine_scale(AbsVal a, double f) {
    if (f == 0.0) return AbsVal::of(Value(0.0));
    for (auto& [idx, c] : a.coeff) c *= f;
    a.cnst *= f;
    return a;
  }

  // Exact arithmetic is the shared analysis implementation; nullopt means
  // the value is undefined (division/modulo by zero, out-of-range shift).
  static Value exact_bin(BinOp op, const Value& a, const Value& b) {
    if (auto r = analysis::exact_bin(op, a, b)) return *r;
    throw NotLinear{std::string("constant '") + ir::to_string(op) +
                    "' has no defined value"};
  }

  static Value exact_un(UnOp op, const Value& a) {
    if (auto r = analysis::exact_un(op, a)) return *r;
    throw NotLinear{std::string("constant '") + ir::to_string(op) +
                    "' has no defined value"};
  }

  const ir::FilterSpec& spec_;
  StmtP work_;
  runtime::FilterState state_;
  std::set<std::string> state_names_;
  std::unordered_map<std::string, AbsVal> locals_;
  std::vector<AbsVal> rows_;
  int pops_{0};
};

bool stmt_writes_state(const StmtP& s, const std::set<std::string>& names) {
  if (!s) return false;
  switch (s->kind) {
    case Stmt::Kind::Assign:
      return names.count(s->name) > 0;
    case Stmt::Kind::ArrayAssign:
      return names.count(s->name) > 0;
    case Stmt::Kind::Block:
      for (const auto& c : s->stmts) {
        if (stmt_writes_state(c, names)) return true;
      }
      return false;
    case Stmt::Kind::For:
      return stmt_writes_state(s->body, names);
    case Stmt::Kind::If:
      return stmt_writes_state(s->body, names) ||
             stmt_writes_state(s->elseBody, names);
    default:
      return false;
  }
}

}  // namespace

ExtractResult extract(const ir::FilterSpec& spec, const ExtractOptions& opts) {
  ExtractResult r;
  if (!spec.work) {
    r.reason = "no work function";
    return r;
  }
  if (spec.push == 0) {
    // A sink is trivially affine but combining into it would let the
    // optimizer delete its producers as dead code; the paper's compiler
    // never collapses into I/O endpoints either.
    r.reason = "sink filters are not linear-combination candidates";
    return r;
  }
  StmtP work = spec.work;
  if (opts.fold_constants) {
    work = analysis::fold_body(spec.work, spec.name + "/work").body;
  }
  try {
    Extractor ex(spec, std::move(work));
    r.rep = ex.run();
  } catch (const NotLinear& nl) {
    r.reason = nl.reason;
  } catch (const std::exception& e) {
    r.reason = e.what();
  }
  return r;
}

ExtractResult extract(const ir::FilterSpec& spec) {
  return extract(spec, ExtractOptions{});
}

bool writes_state(const ir::FilterSpec& spec) {
  std::set<std::string> names;
  for (const auto& d : spec.state) names.insert(d.name);
  if (names.empty()) return false;
  return stmt_writes_state(spec.work, names);
}

}  // namespace sit::linear
