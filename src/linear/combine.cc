#include "linear/combine.h"

#include <numeric>
#include <stdexcept>

#include "sched/rational.h"

namespace sit::linear {

using sched::Rat;

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// Drop trailing window positions no output references (keeps peek >= pop and
// keeps position 0 anchored, which the firing alignment requires).
void trim_tail(LinearRep& rep) {
  int last_used = -1;
  for (int o = 0; o < rep.push; ++o) {
    for (int i = rep.peek - 1; i > last_used; --i) {
      if (rep.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) != 0.0) {
        last_used = i;
        break;
      }
    }
  }
  const int new_peek = std::max(rep.pop, last_used + 1);
  if (new_peek == rep.peek) return;
  Matrix trimmed(static_cast<std::size_t>(rep.push), static_cast<std::size_t>(new_peek));
  for (int o = 0; o < rep.push; ++o) {
    for (int i = 0; i < new_peek; ++i) {
      trimmed.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) =
          rep.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i));
    }
  }
  rep.A = std::move(trimmed);
  rep.peek = new_peek;
}

}  // namespace

LinearRep expand(const LinearRep& rep, int k) {
  if (k < 1) throw std::invalid_argument("expand factor must be >= 1");
  if (k == 1) return rep;
  LinearRep e;
  e.peek = rep.peek + (k - 1) * rep.pop;
  e.pop = k * rep.pop;
  e.push = k * rep.push;
  e.A = Matrix(static_cast<std::size_t>(e.push), static_cast<std::size_t>(e.peek));
  e.b.assign(static_cast<std::size_t>(e.push), 0.0);
  for (int f = 0; f < k; ++f) {
    for (int s = 0; s < rep.push; ++s) {
      const int o = f * rep.push + s;
      for (int i = 0; i < rep.peek; ++i) {
        e.A.at(static_cast<std::size_t>(o),
               static_cast<std::size_t>(f * rep.pop + i)) =
            rep.A.at(static_cast<std::size_t>(s), static_cast<std::size_t>(i));
      }
      e.b[static_cast<std::size_t>(o)] = rep.b[static_cast<std::size_t>(s)];
    }
  }
  return e;
}

LinearRep combine_pipeline(const LinearRep& a, const LinearRep& b) {
  if (a.push <= 0 || b.pop <= 0) {
    throw std::invalid_argument("pipeline combination needs push_A > 0 and pop_B > 0");
  }
  const std::int64_t m = std::lcm(a.push, b.pop);
  const std::int64_t ka = m / a.push;
  const std::int64_t kb = m / b.pop;
  const std::int64_t extra = b.peek - b.pop;  // >= 0 by construction
  const std::int64_t nf = ka + (extra > 0 ? ceil_div(extra, a.push) : 0);

  LinearRep c;
  c.pop = static_cast<int>(ka) * a.pop;
  c.peek = a.peek + static_cast<int>(nf - 1) * a.pop;
  c.push = static_cast<int>(kb) * b.push;
  c.A = Matrix(static_cast<std::size_t>(c.push), static_cast<std::size_t>(c.peek));
  c.b.assign(static_cast<std::size_t>(c.push), 0.0);

  // A-output w (w-th item A pushes while processing the combined window):
  // produced by A's in-window firing jw = w / push_A at slot sw = w % push_A,
  // reading window positions jw*pop_A + i.
  for (std::int64_t f = 0; f < kb; ++f) {
    for (int s = 0; s < b.push; ++s) {
      const std::int64_t o = f * b.push + s;
      double& bc = c.b[static_cast<std::size_t>(o)];
      bc = b.b[static_cast<std::size_t>(s)];
      for (int i = 0; i < b.peek; ++i) {
        const double bw = b.A.at(static_cast<std::size_t>(s), static_cast<std::size_t>(i));
        if (bw == 0.0) continue;
        const std::int64_t w = f * b.pop + i;
        const std::int64_t jw = w / a.push;
        const int sw = static_cast<int>(w % a.push);
        bc += bw * a.b[static_cast<std::size_t>(sw)];
        for (int ii = 0; ii < a.peek; ++ii) {
          const double aw =
              a.A.at(static_cast<std::size_t>(sw), static_cast<std::size_t>(ii));
          if (aw == 0.0) continue;
          c.A.at(static_cast<std::size_t>(o),
                 static_cast<std::size_t>(jw * a.pop + ii)) += bw * aw;
        }
      }
    }
  }
  trim_tail(c);
  return c;
}

LinearRep combine_pipeline(const std::vector<LinearRep>& chain) {
  if (chain.empty()) throw std::invalid_argument("empty chain");
  LinearRep acc = chain[0];
  for (std::size_t i = 1; i < chain.size(); ++i) {
    acc = combine_pipeline(acc, chain[i]);
  }
  return acc;
}

LinearRep combine_splitjoin(const ir::Splitter& split,
                            const std::vector<LinearRep>& children,
                            const std::vector<int>& join_weights) {
  const std::size_t n = children.size();
  if (n == 0 || join_weights.size() != n) {
    throw std::invalid_argument("splitjoin combination arity mismatch");
  }
  const bool dup = split.kind == ir::SJKind::Duplicate;
  if (!dup && split.weights.size() != n) {
    throw std::invalid_argument("splitter weight arity mismatch");
  }
  std::int64_t SW = 0;
  std::vector<std::int64_t> pre(n, 0);
  if (!dup) {
    for (std::size_t i = 0; i < n; ++i) {
      pre[i] = SW;
      SW += split.weights[i];
    }
  }
  std::int64_t JW = 0;
  for (int w : join_weights) JW += w;

  // Balance: child firings r_i, split cycles c_s (=1 symbolically), joiner
  // cycles c_j.  All children must produce a consistent c_j.
  std::vector<Rat> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (children[i].pop <= 0 || children[i].push <= 0 || join_weights[i] <= 0 ||
        (!dup && split.weights[i] <= 0)) {
      throw std::invalid_argument(
          "splitjoin combination requires positive rates and weights");
    }
    r[i] = dup ? Rat(1, children[i].pop)
               : Rat(split.weights[i], children[i].pop);
  }
  Rat cj = r[0] * Rat(children[0].push, join_weights[0]);
  for (std::size_t i = 1; i < n; ++i) {
    const Rat want = r[i] * Rat(children[i].push, join_weights[i]);
    if (want != cj) {
      throw std::invalid_argument(
          "splitjoin branches have inconsistent output rates");
    }
  }

  // Scale everything to the least integer solution.
  std::int64_t L = cj.den();
  for (const auto& x : r) L = std::lcm(L, x.den());
  std::vector<std::int64_t> ri(n);
  std::int64_t g = cj.num() * (L / cj.den());
  const std::int64_t cs_scaled = L;  // c_s (or D for duplicate) was Rat(1)
  g = std::gcd(g, cs_scaled);
  for (std::size_t i = 0; i < n; ++i) {
    ri[i] = r[i].num() * (L / r[i].den());
    g = std::gcd(g, ri[i]);
  }
  std::int64_t cjs = cj.num() * (L / cj.den());
  std::int64_t css = cs_scaled;
  if (g > 1) {
    for (auto& x : ri) x /= g;
    cjs /= g;
    css /= g;
  }

  // Map a child's own input index to the split-join's input window index.
  auto map_idx = [&](std::size_t i, std::int64_t u) -> std::int64_t {
    if (dup) return u;
    const std::int64_t w = split.weights[i];
    return (u / w) * SW + pre[i] + (u % w);
  };

  LinearRep c;
  c.pop = static_cast<int>(dup ? css : css * SW);
  std::int64_t peek = c.pop;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t last =
        map_idx(i, (ri[i] - 1) * children[i].pop + children[i].peek - 1);
    peek = std::max(peek, last + 1);
  }
  c.peek = static_cast<int>(peek);
  c.push = static_cast<int>(cjs * JW);
  c.A = Matrix(static_cast<std::size_t>(c.push), static_cast<std::size_t>(c.peek));
  c.b.assign(static_cast<std::size_t>(c.push), 0.0);

  // Emit joiner output order: cycle by cycle, child by child, weight items.
  std::int64_t out = 0;
  for (std::int64_t cyc = 0; cyc < cjs; ++cyc) {
    for (std::size_t i = 0; i < n; ++i) {
      for (int t = 0; t < join_weights[i]; ++t) {
        const std::int64_t w = cyc * join_weights[i] + t;  // child output index
        const std::int64_t f = w / children[i].push;
        const int s = static_cast<int>(w % children[i].push);
        c.b[static_cast<std::size_t>(out)] = children[i].b[static_cast<std::size_t>(s)];
        for (int u = 0; u < children[i].peek; ++u) {
          const double coeff =
              children[i].A.at(static_cast<std::size_t>(s), static_cast<std::size_t>(u));
          if (coeff == 0.0) continue;
          const std::int64_t col = map_idx(i, f * children[i].pop + u);
          c.A.at(static_cast<std::size_t>(out), static_cast<std::size_t>(col)) += coeff;
        }
        ++out;
      }
    }
  }
  trim_tail(c);
  return c;
}

}  // namespace sit::linear
