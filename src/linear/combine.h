#pragma once
// Linear combination: collapsing neighboring linear nodes into one linear
// representation (the paper's pipeline and split-join combination rules).
//
// All rules are *firing-aligned* and exact as stream functions, including at
// stream start.  The key construction for pipelines (A then B):
//
//   m   = lcm(push_A, pop_B); A fires ka = m/push_A, B fires kb = m/pop_B
//   per combined firing.  If B peeks beyond what it pops (extra =
//   peek_B - pop_B > 0), additional *redundant* firings of A are folded in
//   to produce the outputs B peeks ahead at -- the combined filter peeks
//   further into its own input instead.  This recomputation is precisely
//   the trade-off the paper's optimization-selection cost model weighs.

#include <optional>
#include <vector>

#include "ir/graph.h"
#include "linear/linear_rep.h"

namespace sit::linear {

// Representation of k back-to-back firings as one firing.
//   peek' = peek + (k-1)*pop, pop' = k*pop, push' = k*push.
LinearRep expand(const LinearRep& rep, int k);

// Pipeline combination of A followed by B.  Throws std::invalid_argument on
// degenerate rates (pop_B == 0 or push_A == 0).
LinearRep combine_pipeline(const LinearRep& a, const LinearRep& b);

// Fold a whole chain left-to-right.
LinearRep combine_pipeline(const std::vector<LinearRep>& chain);

// Split-join combination.  `split` is Duplicate or RoundRobin with weights;
// `join_weights` are the round-robin joiner weights.  Throws
// std::invalid_argument when the branch rates cannot balance.
LinearRep combine_splitjoin(const ir::Splitter& split,
                            const std::vector<LinearRep>& children,
                            const std::vector<int>& join_weights);

}  // namespace sit::linear
