#include "linear/optimize.h"

#include <sstream>
#include <stdexcept>

#include "linear/combine.h"
#include "linear/cost.h"
#include "linear/extract.h"
#include "linear/frequency.h"

namespace sit::linear {

using ir::Node;
using ir::NodeP;

namespace {

struct Best {
  NodeP node;                    // chosen rewrite of this subtree
  std::optional<LinearRep> rep;  // subtree's linear rep, if it has one
  double cpi{0.0};               // modeled cost per input item of `node`
  bool changed{false};           // differs from the original subtree
  bool is_freq{false};
};

class Optimizer {
 public:
  Optimizer(const OptimizeOptions& opts, OptimizeStats* stats)
      : opts_(opts), stats_(stats) {}

  Best run(const NodeP& n) {
    switch (n->kind) {
      case Node::Kind::Filter:
        return leaf_filter(n);
      case Node::Kind::Native:
        return leaf_native(n);
      case Node::Kind::Pipeline:
        return pipeline(n);
      case Node::Kind::SplitJoin:
        return splitjoin(n);
      case Node::Kind::FeedbackLoop:
        return feedback(n);
    }
    throw std::logic_error("unreachable");
  }

 private:
  void refuse(const std::string& pass, const std::string& site,
              const std::string& why) {
    if (stats_) stats_->records.push_back({pass, site, 0.0, 0.0, false, why});
  }

  void select(const std::string& pass, const std::string& site, double before,
              double after) {
    if (stats_) stats_->records.push_back({pass, site, before, after, true, {}});
  }

  double cpi_of(const NodeP& node) const {
    return node_cost(node).per_item(opts_.sync_weight);
  }

  [[nodiscard]] bool rep_too_big(const LinearRep& r) const {
    return static_cast<std::size_t>(r.peek) * static_cast<std::size_t>(r.push) >
           opts_.max_matrix_entries;
  }

  // Consider replacing a (sub)tree that has linear rep `rep` by a direct
  // collapsed filter or a frequency version; returns the better of the two
  // if it beats `structural_cpi`.
  std::optional<Best> linear_candidates(const LinearRep& rep,
                                        const std::string& name,
                                        double structural_cpi) {
    const double entry_cpi = structural_cpi;
    std::optional<Best> best;
    if (opts_.enable_combination && !rep_too_big(rep)) {
      NodeP direct = ir::make_filter(to_filter(rep, name + "_lin"));
      const double c = cpi_of(direct);
      if (c < structural_cpi) {
        select("combine", name, entry_cpi, c);
        best = Best{direct, rep, c, true, false};
        structural_cpi = c;
      }
    }
    if (opts_.enable_frequency && frequency_applicable(rep)) {
      const std::size_t n = best_fft_size(rep);
      if (n != 0) {
        NodeP freq = make_frequency_filter(rep, name + "_freq", n);
        const double c = cpi_of(freq);
        if (c < structural_cpi) {
          select("frequency", name, entry_cpi, c);
          best = Best{freq, rep, c, true, true};
        }
      }
    }
    return best;
  }

  Best leaf_filter(const NodeP& n) {
    if (stats_) ++stats_->total_filters;
    Best b;
    b.node = n;
    b.cpi = cpi_of(n);
    const ExtractResult ex = extract(n->filter);
    if (ex.rep) {
      if (stats_) ++stats_->linear_filters;
      b.rep = ex.rep;
      // A lone linear filter is only rewritten if the frequency (or direct
      // matrix) form is cheaper than its own code.
      if (auto cand = linear_candidates(*ex.rep, n->name, b.cpi)) {
        cand->rep = ex.rep;
        return *cand;
      }
    } else {
      refuse("extract", n->name, "not linear: " + ex.reason);
    }
    return b;
  }

  Best leaf_native(const NodeP& n) {
    if (stats_) ++stats_->total_filters;
    Best b;
    b.node = n;
    b.cpi = cpi_of(n);
    return b;
  }

  Best pipeline(const NodeP& n) {
    const std::size_t k = n->children.size();
    std::vector<Best> kids;
    kids.reserve(k);
    for (const auto& c : n->children) kids.push_back(run(c));

    // Interval DP.  best[i][j] = cheapest realization of children i..j.
    std::vector<std::vector<Best>> best(k, std::vector<Best>(k));
    std::vector<std::vector<std::optional<LinearRep>>> rep(
        k, std::vector<std::optional<LinearRep>>(k));

    for (std::size_t i = 0; i < k; ++i) {
      best[i][i] = kids[i];
      rep[i][i] = kids[i].rep;
    }
    for (std::size_t len = 2; len <= k; ++len) {
      for (std::size_t i = 0; i + len - 1 < k; ++i) {
        const std::size_t j = i + len - 1;
        // Structural: best split point.
        Best b;
        double best_cpi = 1e300;
        for (std::size_t s = i; s < j; ++s) {
          std::vector<NodeP> parts;
          collect(best[i][s].node, parts);
          collect(best[s + 1][j].node, parts);
          NodeP cand = ir::make_pipeline(n->name, parts);
          const double c = cpi_of(cand);
          if (c < best_cpi) {
            best_cpi = c;
            b.node = cand;
            b.cpi = c;
            b.changed = best[i][s].changed || best[s + 1][j].changed;
          }
        }
        // Interval linear rep (if the whole interval is linear).
        if (rep[i][j - 1] && rep[j][j]) {
          try {
            LinearRep r = combine_pipeline(*rep[i][j - 1], *rep[j][j]);
            if (!rep_too_big(r)) rep[i][j] = std::move(r);
          } catch (const std::exception&) {
            // Degenerate rates: interval not combinable.
          }
        }
        b.rep = rep[i][j];
        if (rep[i][j]) {
          if (auto cand = linear_candidates(*rep[i][j], interval_name(n, i, j),
                                            b.cpi)) {
            cand->rep = rep[i][j];
            b = *cand;
          }
        }
        best[i][j] = b;
      }
    }
    Best result = best[0][k - 1];
    // Preserve the pipeline wrapper name when the structure survived.
    if (result.node->kind != Node::Kind::Pipeline && k > 1 && !result.changed) {
      result.node = ir::make_pipeline(n->name, {result.node});
    }
    return result;
  }

  // Flatten nested pipelines produced by DP splits (cosmetic; semantics
  // unchanged).
  static void collect(const NodeP& node, std::vector<NodeP>& out) {
    if (node->kind == Node::Kind::Pipeline) {
      for (const auto& c : node->children) out.push_back(c);
    } else {
      out.push_back(node);
    }
  }

  static std::string interval_name(const NodeP& n, std::size_t i, std::size_t j) {
    std::ostringstream os;
    os << n->name << "[" << i << ".." << j << "]";
    return os.str();
  }

  Best splitjoin(const NodeP& n) {
    std::vector<Best> kids;
    kids.reserve(n->children.size());
    bool all_linear = true;
    bool changed = false;
    std::vector<NodeP> child_nodes;
    std::vector<LinearRep> child_reps;
    for (const auto& c : n->children) {
      Best b = run(c);
      changed = changed || b.changed;
      if (b.rep) {
        child_reps.push_back(*b.rep);
      } else {
        all_linear = false;
      }
      child_nodes.push_back(b.node);
      kids.push_back(std::move(b));
    }
    Best result;
    result.node = ir::make_splitjoin(n->name, n->split, n->join, child_nodes);
    result.cpi = cpi_of(result.node);
    result.changed = changed;

    if (all_linear && n->split.kind != ir::SJKind::Null &&
        n->join.kind == ir::SJKind::RoundRobin) {
      try {
        LinearRep r = combine_splitjoin(n->split, child_reps, n->join.weights);
        if (!rep_too_big(r)) {
          result.rep = r;
          if (auto cand = linear_candidates(r, n->name, result.cpi)) {
            cand->rep = r;
            return *cand;
          }
        }
      } catch (const std::exception& e) {
        refuse("combine", n->name,
               std::string("splitjoin not combinable: ") + e.what());
      }
    }
    return result;
  }

  Best feedback(const NodeP& n) {
    Best body = run(n->children[0]);
    Best loop = run(n->children[1]);
    Best result;
    result.node = ir::make_feedback(n->name, n->join, body.node, n->split,
                                    loop.node, n->delay,
                                    n->init_path);
    result.cpi = cpi_of(result.node);
    result.changed = body.changed || loop.changed;
    return result;
  }

  const OptimizeOptions& opts_;
  OptimizeStats* stats_;
};

}  // namespace

std::string RewriteRecord::to_string() const {
  std::ostringstream os;
  os << pass << " [" << site << "] ";
  if (applied) {
    os << "cost/item " << cost_before << " -> " << cost_after << " (selected)";
  } else {
    os << note;
  }
  return os.str();
}

std::string OptimizeStats::log() const {
  std::string out;
  for (const RewriteRecord& r : records) {
    out += "  " + r.to_string() + "\n";
  }
  return out;
}

NodeP optimize_selection(const NodeP& root, const OptimizeOptions& opts,
                         OptimizeStats* stats) {
  NodeP fresh = ir::clone(root);
  Optimizer opt(opts, stats);
  if (stats) stats->cost_before = node_cost(fresh).per_item(opts.sync_weight);
  Best b = opt.run(fresh);
  if (stats) {
    stats->cost_after = node_cost(b.node).per_item(opts.sync_weight);
    // Count the rewrites that actually survived selection by inspecting the
    // result tree: collapsed nodes carry the "_lin" suffix, frequency nodes
    // the "_freq" suffix.
    ir::visit(b.node, [&](const NodeP& node) {
      if (node->kind == Node::Kind::Filter &&
          node->name.size() > 4 &&
          node->name.rfind("_lin") == node->name.size() - 4) {
        ++stats->combinations;
      }
      if (node->kind == Node::Kind::Native &&
          node->name.size() > 5 &&
          node->name.rfind("_freq") == node->name.size() - 5) {
        ++stats->frequency_nodes;
      }
    });
  }
  return ir::clone(b.node);
}

NodeP optimize(const NodeP& root, const OptimizeOptions& opts,
               OptimizeStats* stats) {
  return optimize_selection(root, opts, stats);
}

std::optional<LinearRep> extract_tree(const NodeP& node,
                                      const OptimizeOptions& opts) {
  switch (node->kind) {
    case Node::Kind::Filter: {
      auto r = extract(node->filter);
      return r.rep;
    }
    case Node::Kind::Native:
      return std::nullopt;
    case Node::Kind::Pipeline: {
      std::vector<LinearRep> chain;
      for (const auto& c : node->children) {
        auto r = extract_tree(c, opts);
        if (!r) return std::nullopt;
        chain.push_back(std::move(*r));
      }
      try {
        return combine_pipeline(chain);
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
    case Node::Kind::SplitJoin: {
      if (node->join.kind != ir::SJKind::RoundRobin ||
          node->split.kind == ir::SJKind::Null) {
        return std::nullopt;
      }
      std::vector<LinearRep> reps;
      for (const auto& c : node->children) {
        auto r = extract_tree(c, opts);
        if (!r) return std::nullopt;
        reps.push_back(std::move(*r));
      }
      try {
        return combine_splitjoin(node->split, reps, node->join.weights);
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
    case Node::Kind::FeedbackLoop:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace sit::linear
