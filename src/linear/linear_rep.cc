#include "linear/linear_rep.h"

#include <sstream>
#include <stdexcept>

#include "ir/ast.h"

namespace sit::linear {

std::vector<double> apply(const LinearRep& rep, const std::vector<double>& window) {
  if (static_cast<int>(window.size()) != rep.peek) {
    throw std::invalid_argument("window size != peek");
  }
  std::vector<double> out(static_cast<std::size_t>(rep.push));
  for (int o = 0; o < rep.push; ++o) {
    double acc = rep.b[static_cast<std::size_t>(o)];
    for (int i = 0; i < rep.peek; ++i) {
      acc += rep.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) *
             window[static_cast<std::size_t>(i)];
    }
    out[static_cast<std::size_t>(o)] = acc;
  }
  return out;
}

ir::FilterSpec to_filter(const LinearRep& rep, const std::string& name) {
  using namespace ir;
  std::vector<StmtP> body;
  for (int o = 0; o < rep.push; ++o) {
    ExprP acc;
    const double cst = rep.b[static_cast<std::size_t>(o)];
    if (cst != 0.0) acc = fconst(cst);
    for (int i = 0; i < rep.peek; ++i) {
      const double c = rep.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i));
      if (c == 0.0) continue;
      ExprP term = bin(BinOp::Mul, fconst(c), peek(iconst(i)));
      acc = acc ? bin(BinOp::Add, acc, term) : term;
    }
    if (!acc) acc = fconst(0.0);
    body.push_back(push(acc));
  }
  if (rep.pop > 0) body.push_back(pop_n(iconst(rep.pop)));

  FilterSpec f;
  f.name = name;
  f.peek = rep.peek;
  f.pop = rep.pop;
  f.push = rep.push;
  f.work = block(std::move(body));
  return f;
}

bool operator==(const LinearRep& a, const LinearRep& b) {
  return a.peek == b.peek && a.pop == b.pop && a.push == b.push && a.A == b.A &&
         a.b == b.b;
}

std::string LinearRep::describe() const {
  std::ostringstream os;
  os << "linear(peek=" << peek << " pop=" << pop << " push=" << push << ")\n";
  for (int o = 0; o < push; ++o) {
    os << "  y" << o << " =";
    bool any = false;
    for (int i = 0; i < peek; ++i) {
      const double c = A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i));
      if (c == 0.0) continue;
      os << (any ? " + " : " ") << c << "*w" << i;
      any = true;
    }
    if (b[static_cast<std::size_t>(o)] != 0.0 || !any) {
      os << (any ? " + " : " ") << b[static_cast<std::size_t>(o)];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sit::linear
