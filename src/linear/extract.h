#pragma once
// Linear extraction analysis (paper section: "linear extraction analysis
// that automatically detects linear filters based on the C-like code in
// their work function").
//
// The work AST is abstractly interpreted over a lattice of
//   Exact    -- a compile-time-known constant (ints for control/indexing,
//               doubles for coefficients),
//   Affine   -- an affine form  sum_i c_i * W[i] + k  over the peek window,
//   Top      -- not expressible.
//
// State variables start from the concrete values the init function computes
// (we simply run init with the interpreter).  A work function that *writes*
// any state variable is rejected: its firings are not independent, so no
// single matrix describes it -- this is also exactly the paper's notion of a
// stateful filter, which the parallelization sections reuse.

#include <optional>
#include <string>

#include "ir/filter.h"
#include "linear/linear_rep.h"

namespace sit::linear {

struct ExtractResult {
  std::optional<LinearRep> rep;  // engaged iff the filter is linear
  std::string reason;            // why extraction failed (diagnostic)
};

struct ExtractOptions {
  // Run the analysis constant-folding pass over the work function first.
  // Folding collapses statically-decided control flow (constant ?: arms,
  // short-circuit `true || e` / `false && e`) that the abstract interpreter
  // would otherwise reject as data-dependent, so strictly more filters are
  // detected linear.  The abstract Exact domain and the folder share one
  // arithmetic implementation (analysis/const_eval.h).
  bool fold_constants{true};
};

ExtractResult extract(const ir::FilterSpec& spec, const ExtractOptions& opts);
ExtractResult extract(const ir::FilterSpec& spec);  // default options

// True if the work function assigns any declared state variable (scalar or
// array element).  Independent of linearity: a filter can be nonlinear yet
// stateless (e.g. a squarer).
bool writes_state(const ir::FilterSpec& spec);

}  // namespace sit::linear
