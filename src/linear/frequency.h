#pragma once
// Frequency translation: executing a convolution-style linear node with FFTs
// (the paper's "automatic translation of linear nodes into the frequency
// domain, yielding algorithmic savings for convolutional filters").
//
// Applicable to linear reps with pop == 1 (a sliding-window filter; push may
// exceed 1 -- each output slot is its own FIR).  The translated node is a
// *native* filter that processes B = fftSize - peek + 1 original firings per
// invocation using overlap-save: it peeks B + peek - 1 items, pops B, and
// pushes B * push items in the original interleaved order.  Because the
// overlap history is re-primed from the peek window each firing, the filter
// stays stateless -- it can still be fissed by the parallelizers.

#include <cstddef>
#include <string>

#include "ir/graph.h"
#include "linear/linear_rep.h"

namespace sit::linear {

// Does frequency translation apply at all?
bool frequency_applicable(const LinearRep& rep);

// Cost (flops) of one *original firing's worth* of output via overlap-save
// with the given FFT size, vs. rep.cost_flops_per_firing() for direct.
double frequency_cost_per_firing(const LinearRep& rep, std::size_t fft_size);

// FFT size minimizing cost-per-output for this rep (0 if not applicable or
// never cheaper than direct).
std::size_t best_fft_size(const LinearRep& rep);

// Build the native frequency-domain filter node.  fft_size must satisfy
// fft_size >= 2 and fft_size > peek; pass 0 to use best_fft_size().
ir::NodeP make_frequency_filter(const LinearRep& rep, const std::string& name,
                                std::size_t fft_size = 0);

}  // namespace sit::linear
