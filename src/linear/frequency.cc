#include "linear/frequency.h"

#include <memory>
#include <stdexcept>

#include "fft/fft.h"

namespace sit::linear {

namespace {

// Per-instance state: one overlap-save engine per output slot.  The engines
// are re-primed from the peek window on every firing, so no information
// crosses firings -- the filter is semantically stateless.
class FreqState final : public ir::NativeState {
 public:
  FreqState(const LinearRep& rep, std::size_t fft_size) {
    engines_.reserve(static_cast<std::size_t>(rep.push));
    const int k = rep.peek;
    for (int o = 0; o < rep.push; ++o) {
      // Taps: h[t] = A[o][k-1-t] so that overlap-save's causal convolution
      //   sum_t h[t] x[j-t]  ==  sum_i A[o][i] W[j-k+1+i].
      std::vector<double> taps(static_cast<std::size_t>(k));
      for (int t = 0; t < k; ++t) {
        taps[static_cast<std::size_t>(t)] =
            rep.A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(k - 1 - t));
      }
      engines_.emplace_back(std::move(taps), fft_size);
    }
  }

  std::unique_ptr<ir::NativeState> clone() const override {
    return std::make_unique<FreqState>(*this);
  }

  std::vector<fft::OverlapSave> engines_;
};

}  // namespace

bool frequency_applicable(const LinearRep& rep) {
  return rep.pop == 1 && rep.peek >= 2 && rep.push >= 1;
}

double frequency_cost_per_firing(const LinearRep& rep, std::size_t fft_size) {
  const std::size_t block = fft_size - static_cast<std::size_t>(rep.peek) + 1;
  // Each output slot runs one overlap-save block per `block` firings; the
  // history re-prime and the constant add are per firing.
  double per_block = 0.0;
  for (int o = 0; o < rep.push; ++o) {
    per_block += 2.0 * fft::fft_cost_flops(fft_size) + 6.0 * static_cast<double>(fft_size);
  }
  const double adds_per_firing = static_cast<double>(rep.push);  // + b[o]
  return per_block / static_cast<double>(block) + adds_per_firing;
}

std::size_t best_fft_size(const LinearRep& rep) {
  if (!frequency_applicable(rep)) return 0;
  const double direct = rep.cost_flops_per_firing();
  double best_cost = direct;
  std::size_t best = 0;
  const std::size_t base = fft::next_pow2(static_cast<std::size_t>(rep.peek) + 1);
  for (std::size_t n = base; n <= base * 32; n <<= 1) {
    const double c = frequency_cost_per_firing(rep, n);
    if (c < best_cost) {
      best_cost = c;
      best = n;
    }
  }
  return best;
}

ir::NodeP make_frequency_filter(const LinearRep& rep, const std::string& name,
                                std::size_t fft_size) {
  if (!frequency_applicable(rep)) {
    throw std::invalid_argument("frequency translation requires pop == 1");
  }
  if (fft_size == 0) fft_size = best_fft_size(rep);
  if (fft_size == 0) {
    // Caller forced translation; pick a workable size anyway.
    fft_size = fft::next_pow2(static_cast<std::size_t>(rep.peek) * 4);
  }
  if (fft_size <= static_cast<std::size_t>(rep.peek)) {
    throw std::invalid_argument("fft size must exceed the filter window");
  }
  const int k = rep.peek;
  const int block = static_cast<int>(fft_size) - k + 1;
  const int push = rep.push;
  const std::vector<double> b = rep.b;

  ir::NativeFilter nf;
  nf.name = name;
  nf.peek = block + k - 1;
  nf.pop = block;
  nf.push = block * push;
  nf.stateful = false;
  nf.cost_flops = frequency_cost_per_firing(rep, fft_size) * block;
  nf.cost_ops = nf.cost_flops + 2.0 * static_cast<double>(nf.pop + nf.push);
  nf.make_state = [rep, fft_size]() -> std::unique_ptr<ir::NativeState> {
    return std::make_unique<FreqState>(rep, fft_size);
  };
  nf.work = [k, block, push, b](ir::NativeState* state, ir::InTape& in,
                                ir::OutTape& out) {
    auto* fs = dynamic_cast<FreqState*>(state);
    if (fs == nullptr) throw std::logic_error("frequency filter state mismatch");

    // Window = [x_0 .. x_{block+k-2}]; firing j (j < block) uses x_j..x_{j+k-1}.
    std::vector<double> history(static_cast<std::size_t>(k - 1));
    for (int i = 0; i < k - 1; ++i) history[static_cast<std::size_t>(i)] = in.peek_item(i);
    std::vector<double> blk(static_cast<std::size_t>(block));
    for (int i = 0; i < block; ++i) {
      blk[static_cast<std::size_t>(i)] = in.peek_item(k - 1 + i);
    }

    std::vector<std::vector<double>> y(static_cast<std::size_t>(push));
    for (int o = 0; o < push; ++o) {
      auto& eng = fs->engines_[static_cast<std::size_t>(o)];
      if (k > 1) eng.prime_history(history);
      y[static_cast<std::size_t>(o)] = eng.process(blk);
    }
    for (int j = 0; j < block; ++j) {
      for (int o = 0; o < push; ++o) {
        out.push_item(y[static_cast<std::size_t>(o)][static_cast<std::size_t>(j)] +
                      b[static_cast<std::size_t>(o)]);
      }
    }
    for (int i = 0; i < block; ++i) in.pop_item();
  };
  return ir::make_native(std::move(nf));
}

}  // namespace sit::linear
