#pragma once
// The linear representation of a filter (the paper's central object).
//
// A filter is *linear* when every output it pushes is an affine combination
// of the items in its peek window:
//
//     y_o = sum_i A[o][i] * W[i]  +  b[o]
//
// where W is the window of `peek` input items, W[0] = peek(0) (the oldest
// not-yet-popped item) and W[peek-1] the newest, and outputs y_0..y_{push-1}
// are pushed in order during one firing.  This fixes the paper's matrix up
// to layout; we store A as push x peek, row o = coefficients of output o.
//
// The window convention matters for composition: at firing t the window
// covers the filter's own input items [t*pop, t*pop + peek).

#include <string>
#include <vector>

#include "ir/filter.h"
#include "linear/matrix.h"

namespace sit::linear {

struct LinearRep {
  int peek{0}, pop{0}, push{0};
  Matrix A;                // push x peek
  std::vector<double> b;   // push

  // Direct-implementation cost of one firing: one multiply per nonzero
  // coefficient, one add per term beyond the first (plus the constant).
  [[nodiscard]] double cost_muls_per_firing() const {
    return static_cast<double>(A.nonzeros());
  }
  [[nodiscard]] double cost_flops_per_firing() const {
    double adds = 0.0;
    for (int o = 0; o < push; ++o) {
      double terms = 0.0;
      for (int i = 0; i < peek; ++i) {
        if (A.at(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) != 0.0) {
          terms += 1.0;
        }
      }
      if (b[static_cast<std::size_t>(o)] != 0.0) terms += 1.0;
      adds += terms > 0.0 ? terms - 1.0 : 0.0;
    }
    return cost_muls_per_firing() + adds;
  }

  [[nodiscard]] std::string describe() const;
};

// Evaluate one firing on an explicit window (|window| == peek).
std::vector<double> apply(const LinearRep& rep, const std::vector<double>& window);

// Lower a linear representation back to an ordinary AST filter whose work
// function computes A*W + b directly.  The result is analyzable by every
// other pass (extraction recovers `rep` exactly), which is how collapsed
// nodes re-enter the stream graph.
ir::FilterSpec to_filter(const LinearRep& rep, const std::string& name);

// Exact structural equality (used in tests).
bool operator==(const LinearRep& a, const LinearRep& b);

}  // namespace sit::linear
