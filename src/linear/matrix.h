#pragma once
// Minimal dense matrix used by the linear representations.  Row-major,
// double precision; only the operations the linear algebra of the paper
// needs (no BLAS-scale ambitions -- matrices here are peek x push sized).

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace sit::linear {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::size_t nonzeros() const {
    std::size_t n = 0;
    for (double v : data_) {
      if (v != 0.0) ++n;
    }
    return n;
  }

  [[nodiscard]] bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("matrix index");
  }

  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

}  // namespace sit::linear
