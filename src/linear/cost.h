#pragma once
// Static work estimation and the cost model driving optimization selection.
//
// The paper's selection algorithm compares the floating-point cost of
// executing a subgraph (a) as-is, (b) collapsed into one linear node, and
// (c) in the frequency domain.  Costs here are flops per steady state of the
// node under evaluation, computed by instrumenting one firing of each filter
// with the interpreter and scaling by the steady-state repetition vector.

#include <string>

#include "ir/graph.h"
#include "runtime/opcounts.h"

namespace sit::linear {

// Abstract operation counts of one work invocation, measured by running the
// filter once on synthetic input (all ones).  Falls back to an AST-size
// heuristic if execution faults (e.g. division by the synthetic data).
runtime::OpCounts estimate_work(const ir::FilterSpec& spec);

// Per-firing flop estimate for any leaf node (AST filter or native).
double leaf_flops_per_firing(const ir::Node& leaf);

// Per-firing total-op estimate (flops + int + mem + channel, cycle-weighted).
double leaf_ops_per_firing(const ir::Node& leaf);

struct NodeCost {
  double flops_per_ss{0};       // floating-point work per steady state
  double ops_per_ss{0};         // cycle-weighted work per steady state
  double sync_per_ss{0};        // items moved through splitters/joiners
  std::int64_t in_per_ss{0};    // external input consumed per steady state
  std::int64_t out_per_ss{0};   // external output produced per steady state

  // Calibrated view (obs/costmodel.h): like ops_per_ss but with each
  // filter's per-firing weight taken from the active measured profile where
  // it covers the actor's name, static estimate elsewhere.  Equal to
  // ops_per_ss (and measured_actors == 0) when no calibrated model is
  // loaded, so consumers can use it unconditionally.
  double meas_ops_per_ss{0};
  int measured_actors{0};       // filters the profile actually covered

  // Cost per input item (or per output item for pure sources), the
  // normalization the selection DP compares with.  Uses the cycle-weighted
  // operation count so decisions line up with the modeled execution cost
  // (the paper's compiler minimizes FLOPs; ours additionally sees the
  // channel-traffic cost of each alternative).
  [[nodiscard]] double per_item(double sync_weight) const {
    return normalize(ops_per_ss + sync_weight * sync_per_ss);
  }

  // Same normalization over the calibrated work sum.
  [[nodiscard]] double meas_per_item(double sync_weight) const {
    return normalize(meas_ops_per_ss + sync_weight * sync_per_ss);
  }

 private:
  [[nodiscard]] double normalize(double c) const {
    if (in_per_ss > 0) return c / static_cast<double>(in_per_ss);
    if (out_per_ss > 0) return c / static_cast<double>(out_per_ss);
    return c;
  }
};

// Schedule the subtree in isolation and total its cost.  The static fields
// never depend on runtime state; the meas_* fields consult the process-wide
// calibrated model (obs/costmodel.h) keyed by flat-actor name, falling back
// to the static estimate per actor, so a partially-covering profile still
// yields a full-graph cost.
NodeCost node_cost(const ir::NodeP& node);

// The per-firing weight the calibrated model assigns `leaf` under its flat
// name `actor_name`: the measured weight when the active profile covers the
// name, `leaf_ops_per_firing` otherwise.  The single fallback rule every
// calibrated consumer (LPT, coarsen gate, selection) shares.
double calibrated_ops_per_firing(const ir::Node& leaf,
                                 const std::string& actor_name);

}  // namespace sit::linear
