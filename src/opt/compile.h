#pragma once
// compile(): graph in, sched::CompiledProgram out.
//
// This is the pipeline's front door.  It resolves which passes run (an
// explicit spec beats SIT_PASSES beats the -O preset), runs them through the
// global PassManager, then flattens and schedules the result once.  The
// returned artifact carries the final graph, flat graph, steady-state
// schedule, the engine/thread request, and the per-pass stats -- executors
// (sched::Executor, sched::ThreadedExecutor, msg::MessagingExecutor) consume
// it as-is instead of re-deriving any of it.

#include <string>
#include <vector>

#include "opt/pass_manager.h"
#include "sched/exec.h"
#include "sched/program.h"

namespace sit::opt {

struct CompileOptions {
  // Preset selection; Auto consults SIT_OPT (default -O2).
  OptLevel level{OptLevel::Auto};
  // Explicit comma-separated pass spec; when nonempty it overrides `level`
  // (and SIT_PASSES overrides `level` when this is empty).
  std::string passes;
  // Engine/thread request recorded into the artifact.  The executors still
  // merge their own ExecOptions and the environment on top, so the artifact
  // is a default, not a pin.  exec.threads also feeds the mapping passes
  // (fission, threaded-prep) when pass.threads is unset.
  sched::ExecOptions exec;
  // Knobs forwarded to the passes.
  PassOptions pass;
  // Forwarded to PassContext::on_pass: fires after every pass with its
  // snapshot and output graph (streamc --dump-after).
  std::function<void(const obs::PassSnapshot&, const ir::NodeP&)> on_pass;
  // Prepend validate + analysis-gate when the resolved spec lacks them.  Off
  // only for tests that exercise gate-free pipelines.
  bool ensure_gate{true};
};

// Run the pipeline and lower the result.  Throws on invalid programs (the
// gate passes), unknown pass names, and unschedulable graphs.  When
// `ctx_out` is given it receives the full pass context (diagnostics,
// per-candidate rewrite records, stats) for reporting.
sched::CompiledProgram compile(const ir::NodeP& root,
                               const CompileOptions& opts = {},
                               PassContext* ctx_out = nullptr);

// The pass spec compile() would run for `opts` (after env/preset/gate
// resolution), joined with commas -- what the artifact's `pipeline` field
// will say.
std::string resolve_pipeline_spec(const CompileOptions& opts);

// Human-readable per-pass report: one table row per pass (wall time, actors
// and edges before -> after, modeled cost delta, changed flag).  When
// `rewrites` is given, the per-candidate optimization decisions are appended
// (streamc --report).
std::string pass_report(const sched::CompiledProgram& prog,
                        const std::vector<linear::RewriteRecord>* rewrites =
                            nullptr);

}  // namespace sit::opt
