#include "opt/pass_manager.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "analysis/verify.h"
#include "linear/cost.h"
#include "obs/costmodel.h"
#include "runtime/flatgraph.h"
#include "sched/envopts.h"

namespace sit::opt {

namespace {

// Graph shape at a pass boundary.  Flattening a malformed graph throws (the
// validate pass has not run yet, or the program is simply broken -- the gate
// will say so); shape fields stay at their "unknown" defaults in that case.
struct Shape {
  int actors{-1};
  int edges{-1};
  double cost{0.0};
  // Measured (calibrated-model) cost per input item; 0 when no profile is
  // loaded, so reports can distinguish "static run" from "no divergence".
  double mcost{0.0};
};

Shape measure(const ir::NodeP& g, const PassContext& ctx) {
  Shape s;
  try {
    const runtime::FlatGraph flat = runtime::flatten(g);
    s.actors = static_cast<int>(flat.actors.size());
    s.edges = static_cast<int>(flat.edges.size());
    const linear::NodeCost nc = linear::node_cost(g);
    const double raw =
        nc.ops_per_ss + ctx.options.linear.sync_weight * nc.sync_per_ss;
    const double mraw =
        nc.meas_ops_per_ss + ctx.options.linear.sync_weight * nc.sync_per_ss;
    // Normalize by items *entering* the graph per steady state (external
    // input plus pure-source emissions).  NodeCost::per_item falls back to
    // the raw per-steady cost on closed source-to-sink graphs, which is not
    // comparable across passes that change the steady-state scale (frequency
    // translation batches by the FFT size); this denominator is invariant
    // under semantics-preserving rewrites.
    const sched::Schedule sc = sched::make_schedule(flat);
    double items = static_cast<double>(sc.input_per_steady);
    for (std::size_t a = 0; a < flat.actors.size(); ++a) {
      if (flat.actors[a].is_filter() && flat.actors[a].in_edges.empty()) {
        items += static_cast<double>(sc.reps[a]) *
                 static_cast<double>(flat.actors[a].push_rate());
      }
    }
    if (items <= 0) items = static_cast<double>(sc.output_per_steady);
    s.cost = items > 0 ? raw / items : raw;
    if (obs::cost_model().calibrated()) {
      s.mcost = items > 0 ? mraw / items : mraw;
    }
  } catch (const std::exception&) {
  }
  return s;
}

// Re-check the graph invariants after `pass_name` ran.  Every finding is
// stamped with the offending pass so downstream consumers (ctx.diagnostics,
// the thrown message) can pin the pipeline stage that broke the graph.
void verify_after(const std::string& pass_name, const ir::NodeP& g,
                  PassContext& ctx) {
  std::vector<analysis::Diagnostic> ds = analysis::verify_graph(g);
  if (ds.empty()) return;
  for (analysis::Diagnostic& d : ds) {
    d.message = "after pass '" + pass_name + "': " + d.message;
  }
  ctx.diagnostics.insert(ctx.diagnostics.end(), ds.begin(), ds.end());
  if (analysis::has_errors(ds)) {
    throw std::runtime_error("verify: graph invariants violated after pass '" +
                             pass_name + "'\n" + analysis::render(ds));
  }
}

}  // namespace

OptLevel resolve_opt_level(OptLevel level) {
  if (level != OptLevel::Auto) return level;
  switch (sit::env_opt_level()) {
    case 0: return OptLevel::O0;
    case 1: return OptLevel::O1;
    default: return OptLevel::O2;
  }
}

std::vector<std::string> preset(OptLevel level) {
  switch (resolve_opt_level(level)) {
    case OptLevel::O0:
      return {"validate", "analysis-gate"};
    case OptLevel::O1:
      return {"validate", "analysis-gate", "const-fold", "linear-combine"};
    case OptLevel::Auto:
    case OptLevel::O2:
      break;
  }
  return {"validate", "analysis-gate", "const-fold", "linear-combine",
          "frequency"};
}

VerifyMode resolve_verify_mode(VerifyMode mode) {
  if (mode != VerifyMode::Auto) return mode;
  switch (sit::env_verify()) {
    case 2: return VerifyMode::Each;
    case 1: return VerifyMode::Final;
    default: return VerifyMode::Off;
  }
}

std::vector<std::string> parse_spec(const std::string& spec) {
  std::vector<std::string> names;
  std::string cur;
  std::istringstream in(spec);
  while (std::getline(in, cur, ',')) {
    const auto b = cur.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const auto e = cur.find_last_not_of(" \t");
    names.push_back(cur.substr(b, e - b + 1));
  }
  const PassManager& pm = PassManager::global();
  for (const std::string& n : names) {
    if (pm.find(n) == nullptr) {
      throw std::invalid_argument("unknown pass '" + n +
                                  "' in pass spec \"" + spec + "\"");
    }
  }
  return names;
}

PassManager::PassManager() { detail::register_builtins(*this); }

void PassManager::register_pass(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

Pass* PassManager::find(const std::string& name) const {
  // Scan back to front so later registrations shadow built-ins.
  for (auto it = passes_.rbegin(); it != passes_.rend(); ++it) {
    if (name == (*it)->name()) return it->get();
  }
  return nullptr;
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.emplace_back(p->name());
  return out;
}

ir::NodeP PassManager::run(const ir::NodeP& root,
                           const std::vector<std::string>& names,
                           PassContext& ctx) const {
  using clock = std::chrono::steady_clock;
  const VerifyMode vmode = resolve_verify_mode(ctx.options.verify_each);
  ir::NodeP g = root;
  Shape before = measure(g, ctx);
  for (const std::string& name : names) {
    Pass* pass = find(name);
    if (pass == nullptr) {
      throw std::invalid_argument("unknown pass '" + name + "'");
    }
    const auto t0 = clock::now();
    PassResult res = pass->run(g, ctx);
    const auto t1 = clock::now();
    if (res.graph == nullptr) res.graph = g;  // gate passes leave it null

    obs::PassSnapshot snap;
    snap.name = name;
    snap.wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    snap.actors_before = before.actors;
    snap.edges_before = before.edges;
    snap.cost_before = before.cost;
    snap.mcost_before = before.mcost;
    const Shape after = res.changed ? measure(res.graph, ctx) : before;
    snap.actors_after = after.actors;
    snap.edges_after = after.edges;
    snap.cost_after = after.cost;
    snap.mcost_after = after.mcost;
    snap.changed = res.changed;
    ctx.stats.push_back(snap);
    if (ctx.on_pass) ctx.on_pass(ctx.stats.back(), res.graph);

    g = std::move(res.graph);
    before = after;
    if (vmode == VerifyMode::Each ||
        (vmode == VerifyMode::Final && &name == &names.back())) {
      verify_after(name, g, ctx);
    }
  }
  return g;
}

const PassManager& PassManager::global() {
  static const PassManager pm;
  return pm;
}

}  // namespace sit::opt
