#include "opt/compile.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "runtime/flatgraph.h"
#include "sched/envopts.h"
#include "sched/schedule.h"

namespace sit::opt {

namespace {

std::vector<std::string> resolve_spec(const CompileOptions& opts) {
  std::vector<std::string> spec;
  if (!opts.passes.empty()) {
    spec = parse_spec(opts.passes);
  } else if (const std::string env = sit::env_passes(); !env.empty()) {
    spec = parse_spec(env);
  } else {
    spec = preset(opts.level);
  }
  if (opts.ensure_gate) {
    const auto has = [&spec](const char* n) {
      return std::find(spec.begin(), spec.end(), n) != spec.end();
    };
    if (!has("analysis-gate")) spec.insert(spec.begin(), "analysis-gate");
    if (!has("validate")) spec.insert(spec.begin(), "validate");
  }
  return spec;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ',';
    out += p;
  }
  return out;
}

void put_count(std::ostream& os, int before, int after) {
  if (before < 0 && after < 0) {
    os << std::setw(12) << "?";
    return;
  }
  std::ostringstream cell;
  cell << before << " -> " << after;
  os << std::setw(12) << cell.str();
}

}  // namespace

std::string resolve_pipeline_spec(const CompileOptions& opts) {
  return join(resolve_spec(opts));
}

sched::CompiledProgram compile(const ir::NodeP& root,
                               const CompileOptions& opts,
                               PassContext* ctx_out) {
  const std::vector<std::string> spec = resolve_spec(opts);

  PassContext ctx;
  ctx.options = opts.pass;
  ctx.on_pass = opts.on_pass;
  if (ctx.options.threads <= 1) {
    // Size the mapping passes to the executor's thread request (0 = env).
    ctx.options.threads = opts.exec.threads != 0
                              ? std::max(1, opts.exec.threads)
                              : sched::resolve_threads(0);
  }

  sched::CompiledProgram prog;
  prog.source = root;
  prog.graph = PassManager::global().run(root, spec, ctx);
  prog.flat = runtime::flatten(prog.graph);
  prog.schedule = sched::make_schedule(prog.flat);
  prog.engine = opts.exec.engine;
  prog.threads = opts.exec.threads;
  prog.pipeline = join(spec);
  prog.passes = ctx.stats;
  if (ctx_out != nullptr) *ctx_out = std::move(ctx);
  return prog;
}

std::string pass_report(const sched::CompiledProgram& prog,
                        const std::vector<linear::RewriteRecord>* rewrites) {
  // The measured column and the divergence ratio only mean something when a
  // calibrated profile was loaded (any nonzero mcost implies it was).
  bool calibrated = false;
  for (const obs::PassSnapshot& p : prog.passes) {
    calibrated = calibrated || p.mcost_before > 0 || p.mcost_after > 0;
  }

  std::ostringstream os;
  os << "pipeline: " << (prog.pipeline.empty() ? "(none)" : prog.pipeline)
     << "\n";
  os << "cost model: " << (calibrated ? "calibrated" : "static") << "\n";
  os << std::left << std::setw(16) << "pass" << std::right << std::setw(10)
     << "time(ms)" << std::setw(12) << "actors" << std::setw(12) << "edges"
     << std::setw(22) << "modeled/item";
  if (calibrated) {
    os << std::setw(22) << "measured/item" << std::setw(9) << "diverge";
  }
  os << std::setw(9) << "changed" << "\n";
  for (const obs::PassSnapshot& p : prog.passes) {
    os << std::left << std::setw(16) << p.name << std::right;
    os << std::setw(10) << std::fixed << std::setprecision(3)
       << static_cast<double>(p.wall_ns) / 1e6;
    put_count(os, p.actors_before, p.actors_after);
    put_count(os, p.edges_before, p.edges_after);
    std::ostringstream cost;
    cost << std::fixed << std::setprecision(1) << p.cost_before << " -> "
         << p.cost_after;
    os << std::setw(22) << cost.str();
    if (calibrated) {
      std::ostringstream mcost;
      mcost << std::fixed << std::setprecision(1) << p.mcost_before << " -> "
            << p.mcost_after;
      os << std::setw(22) << mcost.str();
      // Divergence of the post-pass graph: measured / modeled cost per item.
      std::ostringstream div;
      if (p.cost_after > 0 && p.mcost_after > 0) {
        div << std::fixed << std::setprecision(2)
            << p.mcost_after / p.cost_after << "x";
      } else {
        div << "?";
      }
      os << std::setw(9) << div.str();
    }
    os << std::setw(9) << (p.changed ? "yes" : "-") << "\n";
  }
  if (!prog.passes.empty()) {
    const double c0 = prog.passes.front().cost_before;
    const double c1 = prog.passes.back().cost_after;
    os << std::fixed << std::setprecision(1) << "modeled cost/item: " << c0
       << " -> " << c1;
    if (c0 > 0) {
      os << std::setprecision(1) << "  (" << (100.0 * (c0 - c1) / c0)
         << "% reduction)";
    }
    os << "\n";
    if (calibrated) {
      const double m0 = prog.passes.front().mcost_before;
      const double m1 = prog.passes.back().mcost_after;
      os << std::setprecision(1) << "measured cost/item: " << m0 << " -> "
         << m1;
      if (c1 > 0 && m1 > 0) {
        os << std::setprecision(2) << "  (divergence " << (m1 / c1) << "x)";
      }
      os << "\n";
    }
  }
  if (rewrites != nullptr && !rewrites->empty()) {
    os << "optimization decisions:\n";
    for (const linear::RewriteRecord& r : *rewrites) {
      os << "  " << r.to_string() << "\n";
    }
  }
  return os.str();
}

}  // namespace sit::opt
