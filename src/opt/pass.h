#pragma once
// The pass interface of the compilation pipeline.
//
// The paper's compiler is a pipeline: linear extraction, combination,
// frequency translation, and optimization selection run as ordered phases
// over the stream hierarchy before scheduling and mapping.  This layer makes
// that pipeline first-class: each phase is a named Pass over the
// hierarchical graph, run by the PassManager (pass_manager.h) under a shared
// PassContext that accumulates diagnostics, per-candidate rewrite records,
// and per-pass stats (wall time + graph delta), and compile() (compile.h)
// turns the result into the sched::CompiledProgram artifact the executors
// consume.
//
// Passes are pure graph-to-graph functions: they never mutate the input tree
// (rewrites return a fresh tree, sharing immutable ASTs) and carry no state
// between runs, so a PassManager is reusable and thread-compatible.

#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "ir/graph.h"
#include "linear/optimize.h"
#include "obs/metrics.h"

namespace sit::opt {

// When PassManager::run re-checks the stream-graph invariants with the
// semantic verifier (analysis/verify.h).  Each runs it after every pass and
// names the offending pass when an invariant breaks; Final verifies only the
// pipeline's output; Auto defers to the SIT_VERIFY environment variable
// ("each"/"2", "final"/"1"/"on", default off).
enum class VerifyMode { Auto, Off, Final, Each };

// Knobs shared by the built-in passes.
struct PassOptions {
  // Parallelism target for the mapping passes (fission, threaded-prep).
  int threads{1};
  // selective-fuse target leaf count; 0 derives max(2, 4 * threads).
  int target_actors{0};
  // Shared linear-optimization knobs (sync weight, matrix-size guard).
  linear::OptimizeOptions linear;
  // Run the verifier after every pass (streamc --verify-each, SIT_VERIFY).
  VerifyMode verify_each{VerifyMode::Auto};
};

class PassContext {
 public:
  PassOptions options;

  // Findings of the gate passes (validate, analysis-gate).  Errors abort the
  // pipeline by throwing; warnings accumulate here.
  std::vector<analysis::Diagnostic> diagnostics;

  // Per-candidate optimization decisions from the linear passes
  // (linear::OptimizeStats::records), surfaced by `streamc --report`.
  std::vector<linear::RewriteRecord> rewrites;

  // One entry per pass run, in order (filled by PassManager::run).
  std::vector<obs::PassSnapshot> stats;

  // Observability hook: called after every pass with its stats and the graph
  // it produced (streamc --dump-after, pass tracing).
  std::function<void(const obs::PassSnapshot&, const ir::NodeP&)> on_pass;
};

struct PassResult {
  ir::NodeP graph;      // rewritten graph (== input when nothing changed)
  bool changed{false};  // the pass rewrote the graph
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  // One-line description for `streamc --list-passes`.
  [[nodiscard]] virtual const char* description() const = 0;
  // Run over `root`.  Must not mutate the input tree; throws (with rendered
  // diagnostics) when the pass gates compilation and the program fails it.
  virtual PassResult run(const ir::NodeP& root, PassContext& ctx) = 0;
};

}  // namespace sit::opt
