// The built-in passes.  Each is a thin, named wrapper around an existing
// subsystem entry point (ir::check, analysis::analyze, analysis::fold_work,
// linear::extract / linear::optimize_selection, parallel::selective_fusion /
// data_parallelize / coarsen_for_threads) so the pipeline composes the same
// transformations callers previously invoked by hand.

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "analysis/analyze.h"
#include "analysis/constprop.h"
#include "analysis/fuse.h"
#include "analysis/typeflow.h"
#include "analysis/verify.h"
#include "ir/ast.h"
#include "ir/validate.h"
#include "linear/extract.h"
#include "opt/pass_manager.h"
#include "parallel/transforms.h"
#include "runtime/fused.h"
#include "sched/schedule.h"

namespace sit::opt {
namespace {

using ir::Node;
using ir::NodeP;

// ---- gates ------------------------------------------------------------------

class ValidatePass final : public Pass {
 public:
  const char* name() const override { return "validate"; }
  const char* description() const override {
    return "structural validation (rates, arity, zero-weight rule)";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    std::vector<analysis::Diagnostic> ds = ir::check(root);
    ctx.diagnostics.insert(ctx.diagnostics.end(), ds.begin(), ds.end());
    if (analysis::has_errors(ds)) {
      throw std::runtime_error("validate: invalid stream program\n" +
                               analysis::render(ds));
    }
    return {root, false};
  }
};

class AnalysisGatePass final : public Pass {
 public:
  const char* name() const override { return "analysis-gate"; }
  const char* description() const override {
    return "dataflow + graph-consistency analyses; errors reject the program";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    analysis::AnalysisResult r = analysis::analyze(root);
    ctx.diagnostics.insert(ctx.diagnostics.end(), r.diagnostics.begin(),
                           r.diagnostics.end());
    if (!r.ok()) {
      throw std::runtime_error("analysis-gate: program rejected\n" +
                               r.report());
    }
    return {root, false};
  }
};

// The semantic verifier as a first-class pass, so --passes specs can place
// invariant checks at chosen pipeline points.  The PassManager additionally
// runs the same verifier after *every* pass under PassOptions::verify_each.
class VerifyPass final : public Pass {
 public:
  const char* name() const override { return "verify"; }
  const char* description() const override {
    return "semantic verifier: structure, rates, splitjoins, order, state, "
           "schedulability";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    std::vector<analysis::Diagnostic> ds = analysis::verify_graph(root);
    ctx.diagnostics.insert(ctx.diagnostics.end(), ds.begin(), ds.end());
    if (analysis::has_errors(ds)) {
      throw std::runtime_error("verify: graph invariants violated\n" +
                               analysis::render(ds));
    }
    return {root, false};
  }
};

// ---- per-filter rewrites ----------------------------------------------------

// fold_body always rebuilds the statement tree, so pointer identity cannot
// tell whether anything folded; compare printed forms instead.
NodeP fold_tree(const NodeP& n, bool& changed) {
  switch (n->kind) {
    case Node::Kind::Filter: {
      ir::StmtP folded = analysis::fold_work(n->filter);
      if (ir::to_string(folded) == ir::to_string(n->filter.work)) return n;
      ir::FilterSpec spec = n->filter;
      spec.work = std::move(folded);
      changed = true;
      return ir::make_filter(std::move(spec));
    }
    case Node::Kind::Native:
      return n;
    case Node::Kind::Pipeline:
    case Node::Kind::SplitJoin:
    case Node::Kind::FeedbackLoop:
      break;
  }
  bool kids_changed = false;
  std::vector<NodeP> kids;
  kids.reserve(n->children.size());
  for (const NodeP& c : n->children) kids.push_back(fold_tree(c, kids_changed));
  if (!kids_changed) return n;
  changed = true;
  switch (n->kind) {
    case Node::Kind::Pipeline:
      return ir::make_pipeline(n->name, std::move(kids));
    case Node::Kind::SplitJoin:
      return ir::make_splitjoin(n->name, n->split, n->join, std::move(kids));
    case Node::Kind::FeedbackLoop:
      return ir::make_feedback(n->name, n->join, kids[0], n->split, kids[1],
                               n->delay, n->init_path);
    default:
      return n;  // unreachable
  }
}

class ConstFoldPass final : public Pass {
 public:
  const char* name() const override { return "const-fold"; }
  const char* description() const override {
    return "constant folding of every filter's work function";
  }
  PassResult run(const NodeP& root, PassContext&) override {
    bool changed = false;
    NodeP out = fold_tree(root, changed);
    return {std::move(out), changed};
  }
};

// ---- linear pipeline --------------------------------------------------------

class LinearExtractPass final : public Pass {
 public:
  const char* name() const override { return "linear-extract"; }
  const char* description() const override {
    return "per-filter linearity analysis (reporting only; no rewrite)";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    ir::visit(root, [&ctx](const NodeP& n) {
      if (n->kind != Node::Kind::Filter) return;
      const linear::ExtractResult ex = linear::extract(n->filter);
      linear::RewriteRecord rec;
      rec.pass = "extract";
      rec.site = n->name;
      rec.applied = ex.rep.has_value();
      if (!ex.rep) rec.note = "not linear: " + ex.reason;
      ctx.rewrites.push_back(std::move(rec));
    });
    return {root, false};
  }
};

// linear::optimize_selection runs extraction, combination, and frequency
// translation as one selection problem; the two pipeline passes expose its
// sub-modes so pass order (and --passes specs) can separate "collapse linear
// structures" from "move them to the frequency domain".
PassResult run_linear(const NodeP& root, PassContext& ctx, bool combination,
                      bool frequency) {
  linear::OptimizeOptions o = ctx.options.linear;
  o.enable_combination = combination;
  o.enable_frequency = frequency;
  linear::OptimizeStats stats;
  NodeP out = linear::optimize_selection(root, o, &stats);
  ctx.rewrites.insert(ctx.rewrites.end(), stats.records.begin(),
                      stats.records.end());
  const bool changed =
      (combination && stats.combinations > 0) ||
      (frequency && stats.frequency_nodes > 0);
  // optimize() clones even when it rewrites nothing; keep the input tree in
  // that case so unchanged passes are identity on the artifact.
  return {changed ? std::move(out) : root, changed};
}

class LinearCombinePass final : public Pass {
 public:
  const char* name() const override { return "linear-combine"; }
  const char* description() const override {
    return "collapse linear pipelines/splitjoins into matrix filters";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    return run_linear(root, ctx, /*combination=*/true, /*frequency=*/false);
  }
};

class FrequencyPass final : public Pass {
 public:
  const char* name() const override { return "frequency"; }
  const char* description() const override {
    return "frequency translation of profitable linear subgraphs (FFT)";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    return run_linear(root, ctx, /*combination=*/false, /*frequency=*/true);
  }
};

// ---- mapping ----------------------------------------------------------------

class SelectiveFusePass final : public Pass {
 public:
  const char* name() const override { return "selective-fuse"; }
  const char* description() const override {
    return "greedy fusion down to the target actor count";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    const int target = ctx.options.target_actors > 0
                           ? ctx.options.target_actors
                           : std::max(2, 4 * std::max(1, ctx.options.threads));
    if (ir::count_filters(root) <= target) return {root, false};
    NodeP out = parallel::selective_fusion(root, target);
    const bool changed = ir::count_filters(out) != ir::count_filters(root);
    return {changed ? std::move(out) : root, changed};
  }
};

class FissionPass final : public Pass {
 public:
  const char* name() const override { return "fission"; }
  const char* description() const override {
    return "coarse-grained data parallelism for the configured thread count";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    if (ctx.options.threads <= 1) return {root, false};
    NodeP out = parallel::data_parallelize(root, ctx.options.threads);
    const bool changed = ir::count_filters(out) != ir::count_filters(root);
    return {changed ? std::move(out) : root, changed};
  }
};

class ThreadedPrepPass final : public Pass {
 public:
  const char* name() const override { return "threaded-prep"; }
  const char* description() const override {
    return "shape the graph for the threaded runtime (fuse + fiss)";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    if (ctx.options.threads <= 1) return {root, false};
    // The historical prepare_threaded recipe: selective fusion only when an
    // explicit actor budget asks for it, then fiss with a permissive share
    // gate.  The `coarsen` pass below is the batched runtime's stricter
    // successor.
    NodeP g = root;
    if (ctx.options.target_actors > 0 &&
        ir::count_filters(g) > ctx.options.target_actors) {
      g = parallel::selective_fusion(g, ctx.options.target_actors);
    }
    NodeP out = parallel::data_parallelize(g, ctx.options.threads);
    const bool changed = ir::count_filters(out) != ir::count_filters(root);
    return {changed ? std::move(out) : root, changed};
  }
};

// The coarse-grained shaping stage for the batched threaded runtime:
// fuse-then-fiss down to ~one well-sized actor per worker.  Differs from
// threaded-prep in two ways that matter at scale: the actor budget defaults
// on (4 * threads) instead of requiring an explicit target, and the fission
// cost gate is a quarter worker (0.25 / threads) instead of 1%, so tiny
// actors never own a partition slice or buy a ring crossing.
class CoarsenPass final : public Pass {
 public:
  const char* name() const override { return "coarsen"; }
  const char* description() const override {
    return "fuse-then-fiss to ~one well-sized actor per worker (cost-gated)";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    if (ctx.options.threads <= 1) return {root, false};
    NodeP out = parallel::coarsen_for_threads(root, ctx.options.threads,
                                              ctx.options.target_actors);
    const bool changed = ir::count_filters(out) != ir::count_filters(root);
    return {changed ? std::move(out) : root, changed};
  }
};

// ---- steady-state fusion ----------------------------------------------------

// Report-only: decides whether the whole steady state fuses into one flat
// bytecode trace (analysis/fuse.h + runtime/build_fused) and records the
// outcome -- the refusal reason, or the superinstruction selection and the
// eliminated-channel tally -- for streamc --report.  The rewrite itself
// happens at executor construction (Engine::Fused), not on the graph: the
// trace is an execution artifact, so the graph passes stay
// engine-independent.
class FuseSteadyPass final : public Pass {
 public:
  const char* name() const override { return "fuse-steady"; }
  const char* description() const override {
    return "whole-program steady-state fusion admissibility + "
           "superinstruction selection (reporting only; no rewrite)";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    linear::RewriteRecord rec;
    rec.pass = "fuse-steady";
    rec.site = "steady-state";
    try {
      const runtime::FlatGraph g = runtime::flatten(root);
      const sched::Schedule s = sched::make_schedule(g);
      const analysis::FusePlan plan = analysis::fuse_plan(g, s);
      if (!plan.admissible) {
        rec.note = plan.refusal;
        ctx.rewrites.push_back(std::move(rec));
        return {root, false};
      }
      std::string reason;
      const runtime::FusedProgramP prog =
          runtime::build_fused(g, s.order, s.reps, plan.carry, plan.traffic,
                               &reason);
      if (!prog) {
        rec.note = reason;
        ctx.rewrites.push_back(std::move(rec));
        return {root, false};
      }
      rec.applied = true;
      rec.note = std::to_string(prog->eliminated_channels) +
                 " channel(s) lowered, " + std::to_string(prog->code.size()) +
                 " trace instruction(s)";
      ctx.rewrites.push_back(std::move(rec));
      for (const auto& [sname, count] : prog->super) {
        linear::RewriteRecord sr;
        sr.pass = "fuse-steady";
        sr.site = "super:" + sname;
        sr.applied = true;
        sr.note = std::to_string(count) + " instance(s)";
        ctx.rewrites.push_back(std::move(sr));
      }
    } catch (const std::exception& e) {
      rec.note = std::string("fusion analysis failed (") + e.what() + ")";
      ctx.rewrites.push_back(std::move(rec));
    }
    return {root, false};
  }
};

// ---- typed dataflow ---------------------------------------------------------

// Report-only: runs the whole-graph typed-dataflow analysis
// (analysis/typeflow.h) and records, per filter, whether the dual-plane
// (unboxed double) specialization is provable -- and the stable refusal
// reason when it is not -- plus the channel content-tag tally.  As with
// fuse-steady, the rewrite itself happens at executor construction
// (SIT_TYPED): the typed register file is an execution artifact, so the
// graph passes stay engine-independent.
class TypeflowPass final : public Pass {
 public:
  const char* name() const override { return "typeflow"; }
  const char* description() const override {
    return "static tag inference: per-actor register/state classes + channel "
           "content tags (reporting only; no rewrite)";
  }
  PassResult run(const NodeP& root, PassContext& ctx) override {
    linear::RewriteRecord rec;
    rec.pass = "typeflow";
    rec.site = "graph";
    try {
      const runtime::FlatGraph g = runtime::flatten(root);
      const analysis::TypeflowResult tf = analysis::typeflow(g);
      rec.applied = tf.typed_actors > 0;
      rec.note = std::to_string(tf.typed_actors) + "/" +
                 std::to_string(tf.candidates) + " filter(s) specialized, " +
                 std::to_string(tf.typed_regs) + " double register(s), " +
                 std::to_string(tf.typed_channels) + " double channel(s), " +
                 std::to_string(tf.int_channels) + " int channel(s)";
      ctx.rewrites.push_back(std::move(rec));
      for (const auto& a : tf.actors) {
        if (!a.is_filter) continue;
        linear::RewriteRecord ar;
        ar.pass = "typeflow";
        ar.site = "actor:" + a.name;
        ar.applied = a.specialized;
        ar.note = a.specialized
                      ? std::to_string(a.typed_regs) + " double reg(s), push " +
                            runtime::tag_name(a.push_tag)
                      : a.refusal;
        ctx.rewrites.push_back(std::move(ar));
      }
    } catch (const std::exception& e) {
      rec.note = std::string("typeflow analysis failed (") + e.what() + ")";
      ctx.rewrites.push_back(std::move(rec));
    }
    return {root, false};
  }
};

}  // namespace

namespace detail {

void register_builtins(PassManager& pm) {
  pm.register_pass(std::make_unique<ValidatePass>());
  pm.register_pass(std::make_unique<AnalysisGatePass>());
  pm.register_pass(std::make_unique<VerifyPass>());
  pm.register_pass(std::make_unique<ConstFoldPass>());
  pm.register_pass(std::make_unique<LinearExtractPass>());
  pm.register_pass(std::make_unique<LinearCombinePass>());
  pm.register_pass(std::make_unique<FrequencyPass>());
  pm.register_pass(std::make_unique<SelectiveFusePass>());
  pm.register_pass(std::make_unique<FissionPass>());
  pm.register_pass(std::make_unique<ThreadedPrepPass>());
  pm.register_pass(std::make_unique<CoarsenPass>());
  pm.register_pass(std::make_unique<FuseSteadyPass>());
  pm.register_pass(std::make_unique<TypeflowPass>());
}

}  // namespace detail
}  // namespace sit::opt
