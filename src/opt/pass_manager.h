#pragma once
// Named-pass registry and pipeline runner.
//
// The PassManager owns the built-in passes (validate, analysis-gate,
// verify, const-fold, linear-extract, linear-combine, frequency,
// selective-fuse, fission, threaded-prep, coarsen, fuse-steady) and runs an
// ordered list of them over a graph,
// recording per-pass wall time and graph delta (leaf-actor count, flat edge
// count, modeled cost per item) into the PassContext as obs::PassSnapshots.
// Preset pipelines mirror classic -O levels:
//
//   -O0  validate, analysis-gate                        (gates only)
//   -O1  -O0 + const-fold, linear-combine               (cheap, local wins)
//   -O2  -O1 + frequency                                (whole-graph linear
//                                                        optimization)
//
// The mapping passes (selective-fuse, fission, threaded-prep, coarsen) are
// not in any preset: they change the graph shape for a specific thread count, and the
// presets must produce the same program at every level modulo linear
// rewrites so engines stay interchangeable.  Callers opt in via an explicit
// --passes spec (parse_spec).

#include <memory>
#include <string>
#include <vector>

#include "opt/pass.h"

namespace sit::opt {

enum class OptLevel { Auto, O0, O1, O2 };

// Auto resolves against SIT_OPT (default 2); explicit levels pass through.
OptLevel resolve_opt_level(OptLevel level);

// Auto resolves against SIT_VERIFY (default Off); explicit modes pass
// through.
VerifyMode resolve_verify_mode(VerifyMode mode);

// The preset pipeline for a level (Auto is resolved first).
std::vector<std::string> preset(OptLevel level);

// Parse a comma-separated pass spec ("validate,const-fold,frequency").
// Whitespace around names is trimmed; empty elements are dropped.  Throws
// std::invalid_argument naming the offending pass when a name is unknown.
std::vector<std::string> parse_spec(const std::string& spec);

class PassManager {
 public:
  PassManager();  // registers the built-in passes

  // Later registrations shadow earlier ones of the same name, so embedders
  // can override a built-in.
  void register_pass(std::unique_ptr<Pass> pass);

  [[nodiscard]] Pass* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> pass_names() const;

  // Run the named passes in order over `root`; returns the final graph.  One
  // obs::PassSnapshot per pass is appended to ctx.stats (wall time, leaf
  // actors / flat edges / modeled cost before and after, changed flag), and
  // ctx.on_pass (if set) fires after each pass with its snapshot and output
  // graph.  Unknown names throw std::invalid_argument; pass failures (gate
  // errors) propagate as the pass's own exception.
  ir::NodeP run(const ir::NodeP& root, const std::vector<std::string>& names,
                PassContext& ctx) const;

  // The process-wide instance used by compile(); building one PassManager is
  // cheap but the registry is stateless, so sharing is the common case.
  static const PassManager& global();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

namespace detail {
// Defined in passes.cc; called by the PassManager constructor.
void register_builtins(PassManager& pm);
}  // namespace detail

}  // namespace sit::opt
