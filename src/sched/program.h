#pragma once
// The compiled-program artifact.
//
// A CompiledProgram is what the opt/ pass pipeline produces and what every
// executor consumes: the final (post-pass) stream graph, its flattened actor
// form, the SDF schedule, and the engine/thread choice the pipeline resolved
// -- plus the per-pass stats that document how the graph got this shape.
// Executors built from a CompiledProgram do not re-validate, re-flatten, or
// re-schedule; the artifact is the single source of truth, which is also the
// seam future work (compiled-program caching, autotuning, multi-backend)
// plugs into.
//
// Invariant: `flat` holds raw `const ir::Node*` pointers into the tree owned
// by `graph`, so `graph` must outlive `flat` -- anything holding a
// CompiledProgram (or a copy; copies share the graph) satisfies this
// automatically.

#include <string>
#include <vector>

#include "ir/graph.h"
#include "obs/metrics.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace sit::sched {

// Which work-function engine drives AST filters.  Vm compiles each filter's
// work/init to bytecode once and falls back to the tree interpreter
// *per filter* for anything outside the bytecode subset; Tree forces the
// tree interpreter everywhere.  Fused additionally compiles one whole
// steady-state iteration into a single flat bytecode trace with
// superinstructions (runtime/fused.h) and runs it when the program is
// admissible (analysis/fuse.h), falling back to per-actor VM execution --
// whole-program, not per-filter -- when it is not.  Auto resolves from the
// SIT_ENGINE environment variable ("tree", "vm", or "fused"), defaulting to
// Vm -- which lets CI run the whole test suite under any engine without code
// changes.
enum class Engine { Auto, Tree, Vm, Fused };

struct CompiledProgram {
  ir::NodeP source;  // pre-pipeline graph (provenance; may be null)
  ir::NodeP graph;   // final graph; owns the nodes `flat` points into
  runtime::FlatGraph flat;
  Schedule schedule;

  // Resolved execution choice.  Engine::Auto / threads 0 mean "decide at
  // executor construction from the environment" (the pre-pipeline default).
  Engine engine{Engine::Auto};
  int threads{0};

  // The pass spec that was actually run ("validate,analysis-gate,...";
  // empty for a bare lower()) and its per-pass stats, stamped into every
  // obs::MetricsSnapshot taken from an executor of this program.
  std::string pipeline;
  std::vector<obs::PassSnapshot> passes;

  [[nodiscard]] bool valid() const { return graph != nullptr; }
};

// Validate, flatten, and schedule a graph without running any optimization
// passes: the minimal CompiledProgram (what the executors' graph-taking
// constructors have always done internally).  Throws on analysis errors.
CompiledProgram lower(ir::NodeP root);

}  // namespace sit::sched
