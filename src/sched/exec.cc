#include "sched/exec.h"

#include <stdexcept>
#include <utility>

#include "analysis/analyze.h"
#include "analysis/bounds_chan.h"
#include "analysis/fuse.h"
#include "analysis/typeflow.h"
#include "runtime/compile.h"
#include "sched/envopts.h"

namespace sit::sched {

using runtime::Channel;
using runtime::FlatActor;
using runtime::Interp;

namespace {

// Tape stubs for boundary filters (pure sources/sinks have no edge).
class NullIn final : public ir::InTape {
 public:
  double peek_item(int) override {
    throw std::runtime_error("source filter attempted to peek");
  }
  double pop_item() override {
    throw std::runtime_error("source filter attempted to pop");
  }
};

class NullOut final : public ir::OutTape {
 public:
  void push_item(double) override {
    throw std::runtime_error("sink filter attempted to push");
  }
};

NullIn g_null_in;
NullOut g_null_out;

}  // namespace

// The env parsing lives in sched/envopts.cc (sit::resolve_exec_options);
// these merge a caller-requested value with the environment default.
Engine resolve_engine(Engine e) {
  return e != Engine::Auto ? e : env_engine();
}

int resolve_threads(int requested) {
  if (requested == 0) requested = env_threads();
  return requested < 1 ? 1 : requested;
}

bool resolve_trace(TraceMode mode) {
  if (!obs::kCompiledIn) return false;
  if (mode != TraceMode::Auto) return mode == TraceMode::On;
  return env_trace();
}

bool resolve_typed(TypedMode mode) {
  if (mode != TypedMode::Auto) return mode == TypedMode::On;
  return env_typed();
}

int resolve_stall_ms(int requested) {
  return requested != 0 ? requested : env_stall_ms();
}

int resolve_batch(int requested) {
  if (requested == 0) requested = env_batch();
  if (requested < 0) return -1;  // auto, resolved at partition time
  return requested < 1 ? 1 : requested;
}

CompiledProgram lower(ir::NodeP root) {
  // Full static-analysis gate: structural validation plus the dataflow and
  // graph-level passes.  Errors throw; warnings are tolerated.
  const analysis::AnalysisResult ar = analysis::analyze(root);
  if (!ar.ok()) {
    throw std::runtime_error("stream program rejected\n" + ar.report());
  }
  CompiledProgram p;
  p.source = root;
  p.graph = std::move(root);
  p.flat = runtime::flatten(p.graph);
  p.schedule = make_schedule(p.flat);
  return p;
}

Executor::Executor(ir::NodeP root, ExecOptions opts)
    : Executor(lower(std::move(root)), std::move(opts)) {}

Executor::Executor(CompiledProgram prog, ExecOptions opts)
    : root_(prog.graph),
      opts_(std::move(opts)),
      g_(std::move(prog.flat)),
      sched_(std::move(prog.schedule)),
      pipeline_(std::move(prog.pipeline)),
      passes_(std::move(prog.passes)) {
  chans_.reserve(g_.edges.size());
  for (const auto& e : g_.edges) {
    auto ch = std::make_unique<Channel>();
    ch->push_many(e.initial_items);
    chans_.push_back(std::move(ch));
  }

  engine_ = resolve_engine(opts_.engine != Engine::Auto ? opts_.engine
                                                        : prog.engine);
  if (resolve_trace(opts_.trace)) {
    rec_ = std::make_unique<obs::Recorder>();
    rec_->attach_actors(g_.actors.size());
    tb_ = rec_->thread_buffer(0);
  }

  typed_on_ = resolve_typed(opts_.typed);
  const std::size_t n = g_.actors.size();
  fstate_.resize(n);
  nstate_.resize(n);
  vmf_.resize(n);
  tbf_.resize(n);
  typed_refusal_.resize(n);
  ops_.resize(n);
  fired_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const FlatActor& a = g_.actors[i];
    if (a.kind == FlatActor::Kind::Filter) {
      const ir::FilterSpec& spec = a.node->filter;
      if (engine_ == Engine::Vm || engine_ == Engine::Fused) {
        // One-time lowering to bytecode; per-filter fallback to the tree
        // interpreter for anything outside the compiled subset.
        if (auto prog = runtime::compile_filter(spec)) {
          fstate_[i] = Interp::declare_state(spec);
          vmf_[i] = std::make_unique<runtime::VmBound>(prog, fstate_[i]);
          if (prog->has_init) {
            vmf_[i]->run_init();
          } else {
            Interp::run_init(spec, fstate_[i]);
          }
          // Typed specialization on top of the bytecode: inference runs
          // against the post-init state tags; a refusal records its stable
          // reason and the actor stays on the tagged VM.
          if (typed_on_) {
            if (auto tp = runtime::typed_compile(spec, prog, fstate_[i],
                                                 &typed_refusal_[i])) {
              tbf_[i] = std::make_unique<runtime::TypedBound>(std::move(tp),
                                                              fstate_[i]);
              typed_refusal_[i].clear();
            }
          }
          continue;
        }
      }
      fstate_[i] = Interp::init_state(spec);
    } else if (a.kind == FlatActor::Kind::Native) {
      if (a.node->native.make_state) nstate_[i] = a.node->native.make_state();
    }
  }

  // Engine::Fused: compile the whole-iteration trace, or record why not.
  // Refusal is whole-program: steady states then run per-actor on the VM
  // bindings built above (the Vm path and the Fused fallback are identical).
  if (engine_ == Engine::Fused) {
    if (opts_.message_sink) {
      // Teleport delivery wants per-firing granularity (and the static plan
      // only proves the *absence* of sends per filter, not per sink).
      fused_refusal_ = "message-sink-attached";
    } else if (tb_ != nullptr) {
      fused_refusal_ = "tracing-enabled";
    } else {
      const analysis::FusePlan plan = analysis::fuse_plan(g_, sched_);
      if (!plan.admissible) {
        fused_refusal_ = plan.refusal;
      } else {
        fprog_ = runtime::build_fused(g_, sched_.order, sched_.reps, plan.carry,
                                      plan.traffic, &fused_refusal_);
        if (fprog_) {
          fexec_ = std::make_unique<runtime::FusedExec>(fprog_, fstate_, chans_,
                                                        nstate_);
          fused_refusal_.clear();
          // Typed twin of the whole trace: run_steady prefers it when its
          // activation succeeds; the tagged trace stays as fallback.
          if (typed_on_) {
            tfprog_ = runtime::build_typed_fused(fprog_, fstate_,
                                                 &typed_fused_refusal_);
            if (tfprog_) {
              tfexec_ = std::make_unique<runtime::TypedFusedExec>(
                  tfprog_, fstate_, chans_, nstate_);
              typed_fused_refusal_.clear();
            }
          } else {
            typed_fused_refusal_ = "typed-off";
          }
        }
      }
    }
  }
}

void Executor::feed_input(const std::vector<double>& items) {
  if (g_.input_edge < 0) {
    throw std::runtime_error("program has no external input");
  }
  chans_[static_cast<std::size_t>(g_.input_edge)]->push_many(items);
  input_fed_ += static_cast<std::int64_t>(items.size());
}

void Executor::set_input_generator(std::function<double(std::int64_t)> gen) {
  input_gen_ = std::move(gen);
}

void Executor::ensure_input_for(std::int64_t items_needed) {
  if (g_.input_edge < 0 || !input_gen_) return;
  while (input_fed_ < items_needed) {
    chans_[static_cast<std::size_t>(g_.input_edge)]->push_item(input_gen_(input_fed_));
    ++input_fed_;
  }
}

bool Executor::can_fire(int actor) const {
  const FlatActor& a = g_.actors[static_cast<std::size_t>(actor)];
  for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
    const int eid = a.in_edges[p];
    if (eid < 0) continue;
    std::int64_t want = a.in_rate[p];
    if (a.is_filter()) want += a.peek_extra;
    if (static_cast<std::int64_t>(chans_[static_cast<std::size_t>(eid)]->size()) <
        want) {
      return false;
    }
  }
  return true;
}

void Executor::fire(int actor) {
  const auto ai = static_cast<std::size_t>(actor);
  const FlatActor& a = g_.actors[ai];
  runtime::OpCounts* counts = opts_.count_ops ? &ops_[ai] : nullptr;

  // Tracing: one branch when disabled; two clock reads plus a handful of
  // buffer appends per firing when enabled.  VM-backed filters report their
  // channel batches from inside the dispatch loop (measured); everything
  // else reports the static SDF rates below.
  obs::ThreadBuffer* const tb = tb_;
  std::int64_t t0 = 0;
  bool vm_traced = false;
  if (tb != nullptr) {
    t0 = rec_->now_ns();
    tb->emit(t0, obs::EventKind::FireBegin, actor);
  }

  switch (a.kind) {
    case FlatActor::Kind::Filter: {
      ir::InTape* in = &g_null_in;
      ir::OutTape* out = &g_null_out;
      if (!a.in_edges.empty() && a.in_edges[0] >= 0) {
        in = chans_[static_cast<std::size_t>(a.in_edges[0])].get();
      }
      if (!a.out_edges.empty() && a.out_edges[0] >= 0) {
        out = chans_[static_cast<std::size_t>(a.out_edges[0])].get();
      }
      const runtime::MessageSink* sink =
          opts_.message_sink ? &opts_.message_sink : nullptr;
      if (tbf_[ai]) {
        // Typed filters have no Send statements (typed_compile refuses
        // them), so the sink is irrelevant on this path.
        if (tb != nullptr) {
          obs::FiringTrace tr{tb, rec_.get(),
                              a.in_edges.empty() ? -1 : a.in_edges[0],
                              a.out_edges.empty() ? -1 : a.out_edges[0]};
          tbf_[ai]->run_work(*in, *out, counts, &tr);
          vm_traced = true;
        } else {
          tbf_[ai]->run_work(*in, *out, counts);
        }
      } else if (vmf_[ai]) {
        if (tb != nullptr) {
          obs::FiringTrace tr{tb, rec_.get(),
                              a.in_edges.empty() ? -1 : a.in_edges[0],
                              a.out_edges.empty() ? -1 : a.out_edges[0]};
          vmf_[ai]->run_work(*in, *out, counts, sink, &tr);
          vm_traced = true;
        } else {
          vmf_[ai]->run_work(*in, *out, counts, sink);
        }
      } else {
        Interp::run_work(a.node->filter, fstate_[ai], *in, *out, counts, sink);
      }
      break;
    }
    case FlatActor::Kind::Native: {
      ir::InTape* in = &g_null_in;
      ir::OutTape* out = &g_null_out;
      if (!a.in_edges.empty() && a.in_edges[0] >= 0) {
        in = chans_[static_cast<std::size_t>(a.in_edges[0])].get();
      }
      if (!a.out_edges.empty() && a.out_edges[0] >= 0) {
        out = chans_[static_cast<std::size_t>(a.out_edges[0])].get();
      }
      a.node->native.work(nstate_[ai].get(), *in, *out);
      if (counts) {
        // Native filters declare their per-firing cost statically.
        counts->flops += static_cast<std::int64_t>(a.node->native.cost_flops);
        counts->int_ops += static_cast<std::int64_t>(
            a.node->native.cost_ops - a.node->native.cost_flops);
        counts->channel += a.pop_rate() + a.push_rate();
      }
      break;
    }
    case FlatActor::Kind::Splitter: {
      Channel& in = *chans_[static_cast<std::size_t>(a.in_edges[0])];
      if (a.sj == ir::SJKind::Duplicate) {
        const double v = in.pop_item();
        for (int eid : a.out_edges) {
          if (eid >= 0) chans_[static_cast<std::size_t>(eid)]->push_item(v);
        }
        if (counts) counts->channel += 1 + static_cast<std::int64_t>(a.out_edges.size());
      } else {
        for (std::size_t p = 0; p < a.out_rate.size(); ++p) {
          for (int k = 0; k < a.out_rate[p]; ++k) {
            const double v = in.pop_item();
            const int eid = p < a.out_edges.size() ? a.out_edges[p] : -1;
            if (eid >= 0) chans_[static_cast<std::size_t>(eid)]->push_item(v);
            if (counts) counts->channel += 2;
          }
        }
      }
      break;
    }
    case FlatActor::Kind::Joiner: {
      Channel& out = *chans_[static_cast<std::size_t>(a.out_edges[0])];
      for (std::size_t p = 0; p < a.in_rate.size(); ++p) {
        for (int k = 0; k < a.in_rate[p]; ++k) {
          const int eid = p < a.in_edges.size() ? a.in_edges[p] : -1;
          if (eid < 0) continue;
          out.push_item(chans_[static_cast<std::size_t>(eid)]->pop_item());
          if (counts) counts->channel += 2;
        }
      }
      break;
    }
  }
  ++fired_[ai];
  for (const auto& ch : chans_) ch->note_high_water();

  if (tb != nullptr) {
    const std::int64_t t1 = rec_->now_ns();
    if (!vm_traced) {
      for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
        if (a.in_edges[p] >= 0 && a.in_rate[p] > 0) {
          tb->emit(t1, obs::EventKind::PopBatch, a.in_edges[p], a.in_rate[p]);
        }
      }
      for (std::size_t p = 0; p < a.out_edges.size(); ++p) {
        if (a.out_edges[p] >= 0 && a.out_rate[p] > 0) {
          tb->emit(t1, obs::EventKind::PushBatch, a.out_edges[p], a.out_rate[p]);
        }
      }
    }
    tb->emit(t1, obs::EventKind::FireEnd, actor);
    rec_->actor_stats(actor).record(t1 - t0);
  }
}

void Executor::run_handler(int actor, const std::string& method,
                           const std::vector<ir::Value>& args) {
  const auto ai = static_cast<std::size_t>(actor);
  const FlatActor& a = g_.actors[ai];
  if (a.kind != FlatActor::Kind::Filter) {
    throw std::invalid_argument("handler target '" + a.name +
                                "' is not an AST filter");
  }
  Interp::run_handler(a.node->filter, fstate_[ai], method, args);
}

void Executor::run_epoch(const std::vector<std::int64_t>& quota_in) {
  std::vector<std::int64_t> quota = quota_in;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int actor : sched_.order) {
      const auto ai = static_cast<std::size_t>(actor);
      while (quota[ai] > 0 && can_fire(actor)) {
        fire(actor);
        --quota[ai];
        progress = true;
      }
    }
  }
  for (std::size_t i = 0; i < quota.size(); ++i) {
    if (quota[i] > 0) {
      throw std::runtime_error("runtime deadlock: actor '" + g_.actors[i].name +
                               "' starved with " + std::to_string(quota[i]) +
                               " firings remaining");
    }
  }
}

void Executor::run_init() {
  if (init_done_) return;
  if (tb_ != nullptr) {
    tb_->emit(rec_->now_ns(), obs::EventKind::Phase,
              static_cast<std::int32_t>(obs::PhaseId::Init));
  }
  ensure_input_for(sched_.input_for_init);
  run_epoch(sched_.init_fires);
  init_done_ = true;
}

std::vector<double> Executor::run_steady(int n) {
  run_init();
  if (tb_ != nullptr && !steady_marked_ && n > 0) {
    tb_->emit(rec_->now_ns(), obs::EventKind::Phase,
              static_cast<std::int32_t>(obs::PhaseId::Steady));
    steady_marked_ = true;
  }
  // Typed fused fast path: the dual-plane trace, when its activation
  // succeeds (graph at an iteration boundary AND every state tag still
  // matches its inferred class).  Falls through to the tagged trace, then to
  // per-actor execution.
  if (tfexec_ && n > 0 && tfexec_->activate()) {
    runtime::OpCounts* counts = opts_.count_ops ? ops_.data() : nullptr;
    for (int i = 0; i < n; ++i) {
      ++steady_run_;
      ensure_input_for(sched_.input_for_init +
                       steady_run_ * sched_.input_per_steady);
      tfexec_->run_iteration(counts);
    }
    tfexec_->deactivate();
    for (std::size_t a = 0; a < fired_.size(); ++a) {
      fired_[a] += n * sched_.reps[a];
    }
    return take_output();
  }
  // Fused fast path: one flat trace per steady state.  activate() lowers the
  // internal channels to trace buffers for the whole batch of iterations; it
  // refuses when manual fire() calls left the graph mid-iteration, in which
  // case this batch runs per-actor (the graph re-synchronizes at the next
  // iteration boundary, so a later call may fuse again).
  if (fexec_ && n > 0 && fexec_->activate()) {
    runtime::OpCounts* counts = opts_.count_ops ? ops_.data() : nullptr;
    for (int i = 0; i < n; ++i) {
      ++steady_run_;
      ensure_input_for(sched_.input_for_init +
                       steady_run_ * sched_.input_per_steady);
      fexec_->run_iteration(counts);
    }
    fexec_->deactivate();
    for (std::size_t a = 0; a < fired_.size(); ++a) {
      fired_[a] += n * sched_.reps[a];
    }
    return take_output();
  }
  for (int i = 0; i < n; ++i) {
    ++steady_run_;
    ensure_input_for(sched_.input_for_init +
                     steady_run_ * sched_.input_per_steady);
    run_epoch(sched_.reps);
  }
  return take_output();
}

std::vector<double> Executor::take_output() {
  std::vector<double> out;
  if (g_.output_edge < 0) return out;
  Channel& ch = *chans_[static_cast<std::size_t>(g_.output_edge)];
  out.reserve(ch.size());
  while (!ch.empty()) out.push_back(ch.pop_item());
  return out;
}

runtime::OpCounts Executor::total_ops() const {
  runtime::OpCounts t;
  for (const auto& o : ops_) t += o;
  return t;
}

obs::MetricsSnapshot Executor::metrics_snapshot() const {
  obs::MetricsSnapshot m;
  m.engine = engine_ == Engine::Vm     ? "vm"
             : engine_ == Engine::Fused ? "fused"
                                        : "tree";
  m.threads = 1;
  m.threaded = false;
  m.fallback = "none";
  if (engine_ == Engine::Fused && !fexec_) {
    m.fallback = "fused-refused";
    m.fallback_detail = fused_refusal_;
  }
  if (fprog_) {
    m.fused_channels = fprog_->eliminated_channels;
    m.fused_super.assign(fprog_->super.begin(), fprog_->super.end());
  }
  if (typed_on_) {
    m.typed_actors = 0;
    m.typed_regs = 0;
    for (const auto& tb : tbf_) {
      if (tb) {
        ++m.typed_actors;
        m.typed_regs += tb->program().work.typed_regs;
      }
    }
  }
  m.pipeline = pipeline_;
  m.passes = passes_;

  m.actors.reserve(g_.actors.size());
  for (std::size_t i = 0; i < g_.actors.size(); ++i) {
    obs::ActorSnapshot a;
    a.name = g_.actors[i].name;
    a.firings = fired_[i];
    a.ops = ops_[i];
    a.calib_cycles = ops_[i].weighted();
    a.worker = 0;
    if (rec_ && i < rec_->all_actor_stats().size()) {
      const obs::FiringStats& fs = rec_->all_actor_stats()[i];
      a.wall_ns = fs.wall_ns;
      a.max_ns = fs.max_ns;
      a.hist.assign(fs.hist.begin(), fs.hist.end());
      // With op counting off this executor has no calibration epoch (only
      // the threaded runtime runs one), which used to leave calib_cycles at
      // zero and made sequential profiles useless for calibration.  Measured
      // wall time is the better cost anyway: surface it (ns-as-cycles) so
      // the partitioners' cost column and streamprof --calibrate both work
      // under the sequential engines.
      if (a.calib_cycles <= 0 && fs.wall_ns > 0) {
        a.calib_cycles = static_cast<double>(fs.wall_ns);
      }
    }
    if (tbf_[i]) {
      a.typed_status = "typed";
      a.typed_regs = tbf_[i]->program().work.typed_regs;
    } else if (typed_on_ && !typed_refusal_[i].empty()) {
      a.typed_status = typed_refusal_[i];
    }
    m.actors.push_back(std::move(a));
  }

  // Static occupancy bounds for the in-order (data-driven) discipline this
  // executor runs; cheap enough to recompute on each (quiescent) snapshot.
  analysis::ChannelBounds bounds;
  try {
    bounds = analysis::channel_bounds(g_, sched_);
  } catch (const std::exception&) {
  }
  m.edges.reserve(g_.edges.size());
  for (std::size_t e = 0; e < g_.edges.size(); ++e) {
    const auto& ed = g_.edges[e];
    obs::EdgeSnapshot s;
    s.src = ed.src;
    s.dst = ed.dst;
    s.name = (ed.src >= 0 ? g_.actors[static_cast<std::size_t>(ed.src)].name
                          : std::string("input")) +
             "->" +
             (ed.dst >= 0 ? g_.actors[static_cast<std::size_t>(ed.dst)].name
                          : std::string("output"));
    s.pushed = chans_[e]->total_pushed();
    s.popped = chans_[e]->total_popped();
    s.peak_items = static_cast<std::int64_t>(chans_[e]->high_water());
    if (e < bounds.in_order.size()) s.bound_items = bounds.in_order[e];
    m.edges.push_back(std::move(s));
  }

  // Channel content tags from the executor's own specialization results:
  // typed actors contribute their inferred push tag, everything else Double.
  if (typed_on_) {
    std::vector<runtime::Tag> push(g_.actors.size(), runtime::Tag::Double);
    for (std::size_t i = 0; i < g_.actors.size(); ++i) {
      if (tbf_[i]) push[i] = tbf_[i]->program().work.push_tag;
    }
    const auto content = analysis::propagate_edge_tags(g_, push);
    m.typed_channels = 0;
    for (std::size_t e = 0; e < content.size(); ++e) {
      m.edges[e].content =
          content[e] == runtime::Tag::Double ? "double" : "int";
      if (content[e] == runtime::Tag::Double) ++m.typed_channels;
    }
  }

  if (rec_) {
    m.trace_events = rec_->total_events();
    m.trace_dropped = rec_->total_dropped();
  }
  obs::annotate_cost_model(&m);
  return m;
}

}  // namespace sit::sched
