#pragma once
// Threaded runtime: execute a partitioned stream graph on real cores.
//
// The sequential Executor realizes the paper's operational semantics one
// firing at a time, and machine::simulate only *models* parallel speedup.
// ThreadedExecutor closes that gap: it places the flattened graph's actors
// onto N OS threads and runs a software-pipelined steady state per worker.
//
// Execution model:
//   * Initialization and the first steady state run sequentially; the first
//     steady state doubles as a calibration run that measures each actor's
//     cycle weight (runtime::OpCounts::weighted -- the same cost table the
//     machine model uses).
//   * Actors are then partitioned by longest-processing-time greedy
//     balancing over the measured weights, with an affinity pass that glues
//     featherweight actors (splitters, sinks, gains) to their heaviest
//     neighbor so trivial actors do not buy a ring crossing.
//   * Steady iterations are grouped into *batches* of B iterations (the
//     batch factor: ExecOptions::batch / SIT_BATCH, auto-sized by default
//     from per-edge traffic, measured cost, and the static max_batch).  One
//     pipeline step runs a whole batch: every worker executes its slice in
//     the *global* topological order, firing each actor reps * B times
//     consecutively.  With this single-appearance discipline, a firing's
//     inputs are produced either earlier in the same step (forward edges) or
//     by the previous step (back edges), so per-edge quota waits alone order
//     the computation -- no global barrier between steady states.  Batching
//     is what amortizes the cross-thread machinery: each ring handoff
//     publishes once per B*T items, and the window counters advance once per
//     B iterations.
//   * Cross-thread edges are migrated to lock-free SPSC rings in deferred
//     (bulk-publication) mode (runtime/spsc.h); intra-thread edges keep the
//     unsynchronized Channel.  A sliding step window (kPipelineWindow) caps
//     how far any worker runs ahead, which bounds ring occupancy so each
//     ring is sized once to the exact static bound
//     analysis::channel_bounds computes: post-init level +
//     (window + 1) * B * steady-state traffic.  Debug/observability builds
//     re-check every edge's observed high water against its static bound
//     after the workers join.
//   * Deadlock freedom: induction over (step, topo position).  The earliest
//     unfinished firing's data waits point only at strictly smaller
//     (step, topo) pairs (back edges carry the previous step's items, and
//     analysis::ChannelBounds::max_batch caps B so every back edge's delay
//     covers a whole batch) and its space waits at consumers of strictly
//     smaller pairs, so some actor can always proceed.
//
// Determinism: every actor's state, tally, and every channel's FIFO content
// have exactly one owner thread, so outputs, final filter state, and the
// cumulative push/pop counters are bit-equal to the sequential executor
// (tests/test_texec.cc holds this differentially).
//
// Out of scope -- these fall back to an embedded sequential Executor (see
// ThreadedReport::fallback_reason): thread counts <= 1, teleport messaging
// (handlers, Send statements, or an attached message_sink: delivery points
// are defined against the sequential schedule), and graphs whose steady
// state admits no single-appearance topological schedule (checked statically
// from the post-init channel counts; e.g. tight feedback loops whose delay
// cannot cover a whole iteration).

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/bounds_chan.h"
#include "ir/graph.h"
#include "runtime/channel.h"
#include "runtime/flatgraph.h"
#include "runtime/interp.h"
#include "runtime/spsc.h"
#include "runtime/typed.h"
#include "runtime/vm.h"
#include "sched/exec.h"
#include "sched/schedule.h"

namespace sit::sched {

// Max pipeline steps (batches of `batch` steady iterations) any worker may
// run ahead of the slowest worker.  Bounds every ring's occupancy at exactly
// analysis::ChannelBounds::pipelined(e, kPipelineWindow, batch), which is
// how the executor sizes each ring; small values lose pipelining slack,
// large values cost memory.  Public so tools and tests can reproduce the
// ring bound.
inline constexpr int kPipelineWindow = 4;

// Why a ThreadedExecutor fell back to the embedded sequential Executor.
// The enum and its to_string names are a stable interface -- streamprof
// prints them and tests pin them; ThreadedReport::fallback_reason carries
// the human-readable detail (which filter, etc.).
enum class FallbackReason {
  None,                // running threaded
  OneThread,           // one worker requested (or SIT_THREADS unset)
  MessageSink,         // teleport message sink attached
  TeleportHandlers,    // some filter declares message handlers
  TeleportSends,       // some filter sends teleport messages
  TooFewActors,        // graph has fewer than two actors
  InterleavedFirings,  // no single-appearance steady schedule exists
};

// Stable kebab-case name: "none", "one-thread", "message-sink",
// "teleport-handlers", "teleport-sends", "too-few-actors",
// "interleaved-firings".
const char* to_string(FallbackReason r);

// How a ThreadedExecutor decided to run; owner/ring/speedup fields are
// populated once the partition is frozen (after the first steady state).
struct ThreadedReport {
  bool threaded{false};
  int threads{1};               // workers actually used
  FallbackReason fallback{FallbackReason::None};
  std::string fallback_reason;  // human-readable detail; empty when threaded
  std::vector<int> owner;       // actor index -> worker id
  int ring_edges{0};            // edges migrated to SPSC rings
  int batch{1};                 // steady iterations per pipeline step
  double predicted_speedup{0};  // machine-model estimate for this placement

  // One-line summary: "threaded threads=4 ring-edges=3 batch=8 speedup=2.71"
  // or "sequential fallback=teleport-handlers (filter 'F' has teleport
  // handlers)".
  [[nodiscard]] std::string to_string() const;
};

class ThreadedExecutor {
 public:
  // Graph-taking form (equivalent to ThreadedExecutor(lower(root), opts)).
  explicit ThreadedExecutor(ir::NodeP root, ExecOptions opts = {});

  // Artifact-taking form: consume a pipeline-compiled program -- no
  // re-analysis/flatten/schedule.  opts.engine / opts.threads of Auto / 0
  // fall back to the program's resolved choice before consulting the
  // environment; the embedded sequential fallback reuses the same artifact.
  explicit ThreadedExecutor(CompiledProgram prog, ExecOptions opts = {});
  ~ThreadedExecutor();

  [[nodiscard]] const runtime::FlatGraph& graph() const;
  [[nodiscard]] const Schedule& schedule() const;

  // External input -- same contract as Executor.  Only callable between
  // run_* calls (no worker is running then).
  void feed_input(const std::vector<double>& items);
  void set_input_generator(std::function<double(std::int64_t)> gen);

  void run_init();
  // Run `n` steady states (init + calibration happen on first demand);
  // returns the items pushed to the program output.
  std::vector<double> run_steady(int n);
  std::vector<double> take_output();

  [[nodiscard]] Engine engine() const;
  [[nodiscard]] const std::vector<std::int64_t>& firings() const;
  [[nodiscard]] const std::vector<runtime::OpCounts>& actor_ops() const;
  [[nodiscard]] runtime::OpCounts total_ops() const;
  runtime::FilterState& filter_state(int actor);
  // Cumulative per-edge counters -- n(t)/p(t), regardless of whether the
  // edge lives on a Channel or was migrated to a ring.
  [[nodiscard]] std::int64_t edge_pushed(int edge) const;
  [[nodiscard]] std::int64_t edge_popped(int edge) const;

  [[nodiscard]] const ThreadedReport& report() const { return report_; }

  // The static per-edge occupancy bounds the executor sized its storage
  // from (analysis::channel_bounds over the compiled schedule).  Rings are
  // sized to bounds().pipelined(e, kPipelineWindow, report().batch);
  // intra-worker channels never exceed
  // bounds().channel_bound(e, report().batch).  Empty-graph defaults when
  // the executor fell back to the sequential path (use the embedded
  // executor's metrics instead).
  [[nodiscard]] const analysis::ChannelBounds& bounds() const {
    return bounds_;
  }

  // --- observability --------------------------------------------------------
  // Null unless tracing is enabled; delegates to the embedded sequential
  // executor's recorder when fallen back.
  [[nodiscard]] obs::Recorder* recorder() noexcept {
    return seq_ ? seq_->recorder() : rec_.get();
  }
  // Quiescent snapshot (only call between run_* calls).  Reuses the
  // calibration costs as per-actor cycle weights and attributes each actor
  // to its owning worker.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

 private:
  FallbackReason refusal_reason(std::string* detail) const;
  void build_storage();
  ir::InTape* in_tape(int edge);
  ir::OutTape* out_tape(int edge);
  bool can_fire(int actor) const;
  void fire_actor(int actor, runtime::OpCounts* counts, obs::ThreadBuffer* tb);
  void run_epoch(const std::vector<std::int64_t>& quota);
  void ensure_input_for(std::int64_t items_needed);
  void partition_and_migrate();
  // Resolve the batch factor for this placement: explicit requests clamp to
  // the static max_batch; auto sizes from cross-edge traffic, measured cost,
  // and a ring-memory cap.
  int resolve_partition_batch(const std::vector<double>& cost) const;
  void run_threaded(int iters);
  void worker(int w, std::int64_t first, std::int64_t last) noexcept;
  void wait_ready(int actor, std::int64_t chunk, obs::ThreadBuffer* tb,
                  std::int64_t* wait_ns);
  void stage_input(std::int64_t last_iter, std::int64_t chunk);
  std::int64_t min_completed() const;
  void check_bounds() const;  // throws if occupancy exceeded a static bound

  ir::NodeP root_;
  ExecOptions opts_;
  ThreadedReport report_;
  std::unique_ptr<Executor> seq_;  // fallback path; null when threaded

  runtime::FlatGraph g_;
  Schedule sched_;
  analysis::ChannelBounds bounds_;
  Engine engine_{Engine::Vm};
  Engine prog_engine_{Engine::Auto};  // the CompiledProgram's resolved choice
  std::string pipeline_;
  std::vector<obs::PassSnapshot> passes_;
  std::vector<std::unique_ptr<runtime::Channel>> chans_;
  std::vector<std::unique_ptr<runtime::SpscRing>> rings_;
  std::vector<runtime::FilterState> fstate_;
  std::vector<std::unique_ptr<runtime::VmBound>> vmf_;
  // Typed (dual-plane) bindings, preferred over vmf_ where inference proved
  // the work function monomorphic; same per-actor fallback as Executor.
  std::vector<std::unique_ptr<runtime::TypedBound>> tbf_;
  std::vector<std::string> typed_refusal_;
  bool typed_on_{false};
  std::vector<std::unique_ptr<ir::NativeState>> nstate_;
  std::vector<runtime::OpCounts> ops_;
  std::vector<runtime::OpCounts> calib_;  // weights when count_ops is off
  std::vector<std::int64_t> fired_;
  std::function<double(std::int64_t)> input_gen_;
  std::int64_t input_fed_{0};
  std::int64_t steady_run_{0};
  bool init_done_{false};
  bool steady_marked_{false};

  // Stall detector (resolved from ExecOptions / SIT_STALL_MS at
  // construction; < 0 = never abort).
  int stall_ms_{120000};
  int spin_yield_{128};

  // Tracing (null when disabled; tb0_ is the main thread's buffer, shared by
  // the sequential epochs and worker 0, which run on the same thread).
  std::unique_ptr<obs::Recorder> rec_;
  obs::ThreadBuffer* tb0_{nullptr};

  // Frozen after the calibration steady state.
  bool partitioned_{false};
  int threads_{1};
  int batch_{1};                 // steady iterations per pipeline step
  std::int64_t steps_run_{0};    // pipeline steps completed across run_* calls
  std::vector<int> owner_;                // actor -> worker
  std::vector<std::vector<int>> plan_;    // worker -> actors, global topo order
  int input_owner_{-1};

  struct alignas(64) PaddedCounter {
    std::atomic<std::int64_t> v{0};
  };
  std::vector<std::unique_ptr<PaddedCounter>> completed_;
  std::atomic<bool> abort_{false};
  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace sit::sched
