#include "sched/texec.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "analysis/analyze.h"
#include "analysis/typeflow.h"
#include "machine/machine.h"
#include "obs/costmodel.h"
#include "obs/trace.h"
#include "runtime/compile.h"

namespace sit::sched {

using runtime::Channel;
using runtime::FlatActor;
using runtime::Interp;
using runtime::OpCounts;
using runtime::SpscRing;

namespace {

// Local alias for the public window constant (texec.h).
constexpr int kWindow = kPipelineWindow;

// Auto-batch tuning (resolve_partition_batch).  The heuristic picks the
// smallest batch that (a) moves at least kBatchTargetItems items per ring
// publish on the thinnest cross-worker edge and (b) gives each worker at
// least kBatchTargetCycles weighted cycles of work per pipeline step, then
// caps it so total ring storage stays under kBatchMemCapDoubles and the
// factor under kMaxAutoBatch.
constexpr std::int64_t kBatchTargetItems = 256;
constexpr double kBatchTargetCycles = 100000.0;
constexpr std::int64_t kMaxAutoBatch = 1024;
constexpr std::int64_t kBatchMemCapDoubles = 1 << 21;  // 16 MiB of ring slots

#ifndef NDEBUG
constexpr bool kDebugBuild = true;
#else
constexpr bool kDebugBuild = false;
#endif

// Tape stubs for boundary filters (pure sources/sinks have no edge).
class NullIn final : public ir::InTape {
 public:
  double peek_item(int) override {
    throw std::runtime_error("source filter attempted to peek");
  }
  double pop_item() override {
    throw std::runtime_error("source filter attempted to pop");
  }
};

class NullOut final : public ir::OutTape {
 public:
  void push_item(double) override {
    throw std::runtime_error("sink filter attempted to push");
  }
};

NullIn g_null_in;
NullOut g_null_out;

// Thrown inside a worker when another worker already failed; swallowed after
// the join (only the first error is reported).
struct Aborted {};

// Spin with backoff until `ready()`.  Cooperative: yields after
// `spin_before_yield` busy iterations so oversubscribed hosts (more workers
// than cores) keep making progress, and bails out if another worker aborted
// or nothing happened for `stall_ms` milliseconds (a bug's infinite hang
// becomes a test failure instead); stall_ms < 0 disables the abort.
template <typename Pred>
void spin_until(const std::atomic<bool>& abort, Pred&& ready, const char* what,
                int spin_before_yield, int stall_ms) {
  int spins = 0;
  std::chrono::steady_clock::time_point started{};
  while (!ready()) {
    if (abort.load(std::memory_order_acquire)) throw Aborted{};
    if (++spins < spin_before_yield) continue;
    std::this_thread::yield();
    if (stall_ms >= 0 && (spins & 2047) == 0) {
      const auto now = std::chrono::steady_clock::now();
      if (started == std::chrono::steady_clock::time_point{}) {
        started = now;
      } else if (now - started > std::chrono::milliseconds(stall_ms)) {
        throw std::runtime_error(std::string("threaded runtime stalled: ") +
                                 what);
      }
    }
  }
}

// spin_until plus stall-interval tracing: a WaitBegin/WaitEnd pair brackets
// the spin (emitted only when the predicate is not already satisfied, so an
// uncontended wait stays event-free), and the waited nanoseconds accumulate
// into *wait_ns for the worker's utilization accounting.
template <typename Pred>
void traced_spin(const std::atomic<bool>& abort, Pred&& ready, const char* what,
                 int spin_before_yield, int stall_ms, obs::ThreadBuffer* tb,
                 obs::Recorder* rec, std::int64_t* wait_ns, std::int32_t id,
                 obs::WaitKind wk) {
  if (ready()) return;
  if (tb == nullptr) {
    spin_until(abort, ready, what, spin_before_yield, stall_ms);
    return;
  }
  const std::int64_t t0 = rec->now_ns();
  tb->emit(t0, obs::EventKind::WaitBegin, id, static_cast<std::int64_t>(wk));
  try {
    spin_until(abort, ready, what, spin_before_yield, stall_ms);
  } catch (...) {
    const std::int64_t ta = rec->now_ns();
    tb->emit(ta, obs::EventKind::WaitEnd, id, static_cast<std::int64_t>(wk));
    *wait_ns += ta - t0;
    throw;
  }
  const std::int64_t t1 = rec->now_ns();
  tb->emit(t1, obs::EventKind::WaitEnd, id, static_cast<std::int64_t>(wk));
  *wait_ns += t1 - t0;
}

bool stmt_sends(const ir::StmtP& s) {
  if (!s) return false;
  if (s->kind == ir::Stmt::Kind::Send) return true;
  for (const auto& c : s->stmts) {
    if (stmt_sends(c)) return true;
  }
  return stmt_sends(s->body) || stmt_sends(s->elseBody);
}

std::int64_t rate_into(const FlatActor& a, int edge) {
  for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
    if (a.in_edges[p] == edge) return a.in_rate[p];
  }
  return 0;
}

}  // namespace

const char* to_string(FallbackReason r) {
  switch (r) {
    case FallbackReason::None: return "none";
    case FallbackReason::OneThread: return "one-thread";
    case FallbackReason::MessageSink: return "message-sink";
    case FallbackReason::TeleportHandlers: return "teleport-handlers";
    case FallbackReason::TeleportSends: return "teleport-sends";
    case FallbackReason::TooFewActors: return "too-few-actors";
    case FallbackReason::InterleavedFirings: return "interleaved-firings";
  }
  return "?";
}

std::string ThreadedReport::to_string() const {
  if (!threaded) {
    std::string s = std::string("sequential fallback=") +
                    sched::to_string(fallback);
    if (!fallback_reason.empty()) s += " (" + fallback_reason + ")";
    return s;
  }
  char speed[32];
  std::snprintf(speed, sizeof(speed), "%.2f", predicted_speedup);
  return "threaded threads=" + std::to_string(threads) +
         " ring-edges=" + std::to_string(ring_edges) +
         " batch=" + std::to_string(batch) + " speedup=" + speed;
}

ThreadedExecutor::ThreadedExecutor(ir::NodeP root, ExecOptions opts)
    : ThreadedExecutor(lower(std::move(root)), std::move(opts)) {}

ThreadedExecutor::ThreadedExecutor(CompiledProgram prog, ExecOptions opts)
    : root_(prog.graph),
      opts_(std::move(opts)),
      prog_engine_(prog.engine),
      pipeline_(prog.pipeline),
      passes_(prog.passes) {
  const int requested =
      resolve_threads(opts_.threads != 0 ? opts_.threads : prog.threads);
  FallbackReason fb = FallbackReason::None;
  std::string detail;
  if (requested <= 1) {
    fb = FallbackReason::OneThread;
    detail = "one thread requested";
  } else if (opts_.message_sink) {
    fb = FallbackReason::MessageSink;
    detail = "teleport message sink attached";
  } else {
    // The artifact is already analyzed/flattened/scheduled; compute the
    // static channel bounds and run the threaded-eligibility checks.
    g_ = prog.flat;
    sched_ = prog.schedule;
    bounds_ = analysis::channel_bounds(g_, sched_);
    fb = refusal_reason(&detail);
  }
  if (fb != FallbackReason::None) {
    report_.threaded = false;
    report_.threads = 1;
    report_.fallback = fb;
    report_.fallback_reason = detail;
    seq_ = std::make_unique<Executor>(std::move(prog), opts_);
    return;
  }
  threads_ = std::min<int>(requested, static_cast<int>(g_.actors.size()));
  report_.threaded = true;
  report_.threads = threads_;
  stall_ms_ = resolve_stall_ms(opts_.stall_ms);
  spin_yield_ = std::max(1, opts_.spin_before_yield);
  build_storage();
  if (resolve_trace(opts_.trace)) {
    rec_ = std::make_unique<obs::Recorder>();
    rec_->attach_actors(g_.actors.size());
    rec_->attach_workers(static_cast<std::size_t>(threads_));
    tb0_ = rec_->thread_buffer(0);
  }
}

ThreadedExecutor::~ThreadedExecutor() = default;

FallbackReason ThreadedExecutor::refusal_reason(std::string* detail) const {
  for (const auto& a : g_.actors) {
    if (a.kind != FlatActor::Kind::Filter) continue;
    const ir::FilterSpec& spec = a.node->filter;
    if (!spec.handlers.empty()) {
      *detail = "filter '" + spec.name + "' has teleport handlers";
      return FallbackReason::TeleportHandlers;
    }
    if (stmt_sends(spec.work) || stmt_sends(spec.init)) {
      *detail = "filter '" + spec.name + "' sends teleport messages";
      return FallbackReason::TeleportSends;
    }
  }
  if (g_.actors.size() < 2) {
    *detail = "graph has fewer than two actors";
    return FallbackReason::TooFewActors;
  }

  // Single-appearance schedulability: delegated to the static channel-bound
  // analysis, which simulates one steady state in the global topological
  // order with each actor firing its full repetition count at once, starting
  // from the post-init channel populations.  If any actor comes up short,
  // the graph needs interleaved firings (e.g. a tight feedback loop) and
  // stays sequential.
  if (!bounds_.single_appearance) {
    *detail = "actor '" + bounds_.blocker +
              "' needs interleaved firings in the steady state";
    return FallbackReason::InterleavedFirings;
  }
  return FallbackReason::None;
}

void ThreadedExecutor::build_storage() {
  chans_.reserve(g_.edges.size());
  for (const auto& e : g_.edges) {
    auto ch = std::make_unique<Channel>();
    ch->push_many(e.initial_items);
    chans_.push_back(std::move(ch));
  }
  rings_.resize(g_.edges.size());

  engine_ = resolve_engine(opts_.engine != Engine::Auto ? opts_.engine
                                                        : prog_engine_);
  typed_on_ = resolve_typed(opts_.typed);
  const std::size_t n = g_.actors.size();
  fstate_.resize(n);
  nstate_.resize(n);
  vmf_.resize(n);
  tbf_.resize(n);
  typed_refusal_.resize(n);
  ops_.resize(n);
  calib_.resize(n);
  fired_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const FlatActor& a = g_.actors[i];
    if (a.kind == FlatActor::Kind::Filter) {
      const ir::FilterSpec& spec = a.node->filter;
      // The worker loop fires per-actor; Engine::Fused degrades to the VM
      // bindings here (the fused trace is inherently single-threaded -- the
      // threads <= 1 path delegates to a plain Executor, which does fuse).
      if (engine_ == Engine::Vm || engine_ == Engine::Fused) {
        if (auto prog = runtime::compile_filter(spec)) {
          fstate_[i] = Interp::declare_state(spec);
          vmf_[i] = std::make_unique<runtime::VmBound>(prog, fstate_[i]);
          if (prog->has_init) {
            vmf_[i]->run_init();
          } else {
            Interp::run_init(spec, fstate_[i]);
          }
          if (typed_on_) {
            if (auto tp = runtime::typed_compile(spec, prog, fstate_[i],
                                                 &typed_refusal_[i])) {
              tbf_[i] = std::make_unique<runtime::TypedBound>(std::move(tp),
                                                              fstate_[i]);
              typed_refusal_[i].clear();
            }
          }
          continue;
        }
      }
      fstate_[i] = Interp::init_state(spec);
    } else if (a.kind == FlatActor::Kind::Native) {
      if (a.node->native.make_state) nstate_[i] = a.node->native.make_state();
    }
  }
}

// ---- delegating accessors ---------------------------------------------------

const runtime::FlatGraph& ThreadedExecutor::graph() const {
  return seq_ ? seq_->graph() : g_;
}
const Schedule& ThreadedExecutor::schedule() const {
  return seq_ ? seq_->schedule() : sched_;
}
Engine ThreadedExecutor::engine() const {
  return seq_ ? seq_->engine() : engine_;
}
const std::vector<std::int64_t>& ThreadedExecutor::firings() const {
  return seq_ ? seq_->firings() : fired_;
}
const std::vector<OpCounts>& ThreadedExecutor::actor_ops() const {
  return seq_ ? seq_->actor_ops() : ops_;
}
OpCounts ThreadedExecutor::total_ops() const {
  if (seq_) return seq_->total_ops();
  OpCounts t;
  for (const auto& o : ops_) t += o;
  return t;
}
runtime::FilterState& ThreadedExecutor::filter_state(int actor) {
  return seq_ ? seq_->filter_state(actor)
              : fstate_[static_cast<std::size_t>(actor)];
}
std::int64_t ThreadedExecutor::edge_pushed(int edge) const {
  if (seq_) return seq_->channel(edge).total_pushed();
  const auto e = static_cast<std::size_t>(edge);
  return rings_[e] ? rings_[e]->total_pushed() : chans_[e]->total_pushed();
}
std::int64_t ThreadedExecutor::edge_popped(int edge) const {
  if (seq_) return seq_->channel(edge).total_popped();
  const auto e = static_cast<std::size_t>(edge);
  return rings_[e] ? rings_[e]->total_popped() : chans_[e]->total_popped();
}

// ---- external input ---------------------------------------------------------

void ThreadedExecutor::feed_input(const std::vector<double>& items) {
  if (seq_) {
    seq_->feed_input(items);
    return;
  }
  if (g_.input_edge < 0) {
    throw std::runtime_error("program has no external input");
  }
  chans_[static_cast<std::size_t>(g_.input_edge)]->push_many(items);
  input_fed_ += static_cast<std::int64_t>(items.size());
}

void ThreadedExecutor::set_input_generator(
    std::function<double(std::int64_t)> gen) {
  if (seq_) {
    seq_->set_input_generator(std::move(gen));
    return;
  }
  input_gen_ = std::move(gen);
}

void ThreadedExecutor::ensure_input_for(std::int64_t items_needed) {
  if (g_.input_edge < 0 || !input_gen_) return;
  auto& ch = *chans_[static_cast<std::size_t>(g_.input_edge)];
  while (input_fed_ < items_needed) {
    ch.push_item(input_gen_(input_fed_));
    ++input_fed_;
  }
}

// ---- sequential epochs (init + calibration) ---------------------------------

ir::InTape* ThreadedExecutor::in_tape(int edge) {
  if (edge < 0) return &g_null_in;
  const auto e = static_cast<std::size_t>(edge);
  if (rings_[e]) return rings_[e].get();
  return chans_[e].get();
}

ir::OutTape* ThreadedExecutor::out_tape(int edge) {
  if (edge < 0) return &g_null_out;
  const auto e = static_cast<std::size_t>(edge);
  if (rings_[e]) return rings_[e].get();
  return chans_[e].get();
}

bool ThreadedExecutor::can_fire(int actor) const {
  const FlatActor& a = g_.actors[static_cast<std::size_t>(actor)];
  for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
    const int eid = a.in_edges[p];
    if (eid < 0) continue;
    std::int64_t want = a.in_rate[p];
    if (a.is_filter()) want += a.peek_extra;
    if (static_cast<std::int64_t>(chans_[static_cast<std::size_t>(eid)]->size()) <
        want) {
      return false;
    }
  }
  return true;
}

void ThreadedExecutor::fire_actor(int actor, OpCounts* counts,
                                  obs::ThreadBuffer* tb) {
  const auto ai = static_cast<std::size_t>(actor);
  const FlatActor& a = g_.actors[ai];

  // Same tracing discipline as Executor::fire: one null test when disabled;
  // VM-backed filters report measured channel batches from the dispatch
  // loop, everything else reports the static SDF rates below.
  std::int64_t t0 = 0;
  bool vm_traced = false;
  if (tb != nullptr) {
    t0 = rec_->now_ns();
    tb->emit(t0, obs::EventKind::FireBegin, actor);
  }

  switch (a.kind) {
    case FlatActor::Kind::Filter: {
      ir::InTape* in =
          in_tape(a.in_edges.empty() ? -1 : a.in_edges[0]);
      ir::OutTape* out =
          out_tape(a.out_edges.empty() ? -1 : a.out_edges[0]);
      if (tbf_[ai]) {
        if (tb != nullptr) {
          obs::FiringTrace tr{tb, rec_.get(),
                              a.in_edges.empty() ? -1 : a.in_edges[0],
                              a.out_edges.empty() ? -1 : a.out_edges[0]};
          tbf_[ai]->run_work(*in, *out, counts, &tr);
          vm_traced = true;
        } else {
          tbf_[ai]->run_work(*in, *out, counts);
        }
      } else if (vmf_[ai]) {
        if (tb != nullptr) {
          obs::FiringTrace tr{tb, rec_.get(),
                              a.in_edges.empty() ? -1 : a.in_edges[0],
                              a.out_edges.empty() ? -1 : a.out_edges[0]};
          vmf_[ai]->run_work(*in, *out, counts, nullptr, &tr);
          vm_traced = true;
        } else {
          vmf_[ai]->run_work(*in, *out, counts, nullptr);
        }
      } else {
        Interp::run_work(a.node->filter, fstate_[ai], *in, *out, counts,
                         nullptr);
      }
      break;
    }
    case FlatActor::Kind::Native: {
      ir::InTape* in =
          in_tape(a.in_edges.empty() ? -1 : a.in_edges[0]);
      ir::OutTape* out =
          out_tape(a.out_edges.empty() ? -1 : a.out_edges[0]);
      a.node->native.work(nstate_[ai].get(), *in, *out);
      if (counts) {
        counts->flops += static_cast<std::int64_t>(a.node->native.cost_flops);
        counts->int_ops += static_cast<std::int64_t>(
            a.node->native.cost_ops - a.node->native.cost_flops);
        counts->channel += a.pop_rate() + a.push_rate();
      }
      break;
    }
    case FlatActor::Kind::Splitter: {
      ir::InTape& in = *in_tape(a.in_edges[0]);
      if (a.sj == ir::SJKind::Duplicate) {
        const double v = in.pop_item();
        for (int eid : a.out_edges) {
          if (eid >= 0) out_tape(eid)->push_item(v);
        }
        if (counts) {
          counts->channel += 1 + static_cast<std::int64_t>(a.out_edges.size());
        }
      } else {
        for (std::size_t p = 0; p < a.out_rate.size(); ++p) {
          for (int k = 0; k < a.out_rate[p]; ++k) {
            const double v = in.pop_item();
            const int eid = p < a.out_edges.size() ? a.out_edges[p] : -1;
            if (eid >= 0) out_tape(eid)->push_item(v);
            if (counts) counts->channel += 2;
          }
        }
      }
      break;
    }
    case FlatActor::Kind::Joiner: {
      ir::OutTape& out = *out_tape(a.out_edges[0]);
      for (std::size_t p = 0; p < a.in_rate.size(); ++p) {
        for (int k = 0; k < a.in_rate[p]; ++k) {
          const int eid = p < a.in_edges.size() ? a.in_edges[p] : -1;
          if (eid < 0) continue;
          out.push_item(in_tape(eid)->pop_item());
          if (counts) counts->channel += 2;
        }
      }
      break;
    }
  }
  ++fired_[ai];
  // High-water bookkeeping on the fired actor's plain channels (rings track
  // their own; an actor's plain channels are owned by its worker).
  for (int eid : a.in_edges) {
    if (eid >= 0 && !rings_[static_cast<std::size_t>(eid)]) {
      chans_[static_cast<std::size_t>(eid)]->note_high_water();
    }
  }
  for (int eid : a.out_edges) {
    if (eid >= 0 && !rings_[static_cast<std::size_t>(eid)]) {
      chans_[static_cast<std::size_t>(eid)]->note_high_water();
    }
  }

  if (tb != nullptr) {
    const std::int64_t t1 = rec_->now_ns();
    if (!vm_traced) {
      for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
        if (a.in_edges[p] >= 0 && a.in_rate[p] > 0) {
          tb->emit(t1, obs::EventKind::PopBatch, a.in_edges[p], a.in_rate[p]);
        }
      }
      for (std::size_t p = 0; p < a.out_edges.size(); ++p) {
        if (a.out_edges[p] >= 0 && a.out_rate[p] > 0) {
          tb->emit(t1, obs::EventKind::PushBatch, a.out_edges[p],
                   a.out_rate[p]);
        }
      }
    }
    tb->emit(t1, obs::EventKind::FireEnd, actor);
    rec_->actor_stats(actor).record(t1 - t0);
  }
}

void ThreadedExecutor::run_epoch(const std::vector<std::int64_t>& quota_in) {
  std::vector<std::int64_t> quota = quota_in;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int actor : sched_.order) {
      const auto ai = static_cast<std::size_t>(actor);
      OpCounts* counts = opts_.count_ops ? &ops_[ai] : &calib_[ai];
      while (quota[ai] > 0 && can_fire(actor)) {
        fire_actor(actor, counts, tb0_);
        --quota[ai];
        progress = true;
      }
    }
  }
  for (std::size_t i = 0; i < quota.size(); ++i) {
    if (quota[i] > 0) {
      throw std::runtime_error("runtime deadlock: actor '" + g_.actors[i].name +
                               "' starved with " + std::to_string(quota[i]) +
                               " firings remaining");
    }
  }
}

void ThreadedExecutor::run_init() {
  if (seq_) {
    seq_->run_init();
    return;
  }
  if (init_done_) return;
  if (tb0_ != nullptr) {
    tb0_->emit(rec_->now_ns(), obs::EventKind::Phase,
               static_cast<std::int32_t>(obs::PhaseId::Init));
  }
  ensure_input_for(sched_.input_for_init);
  run_epoch(sched_.init_fires);
  init_done_ = true;
}

// ---- partitioning -----------------------------------------------------------

void ThreadedExecutor::partition_and_migrate() {
  const std::size_t n = g_.actors.size();
  std::vector<double> cost(n, 0.0);
  // Per-epoch actor cost for LPT: a calibrated model's measured weight
  // (cycles per firing, scaled by this epoch's firing count) takes
  // precedence over the in-process calibration epoch -- a corpus profile
  // averages many more firings than the single epoch measured here.  Actors
  // the profile does not cover keep the calibration-epoch cost.
  const obs::CostModel& cmodel = obs::cost_model();
  for (std::size_t i = 0; i < n; ++i) {
    double measured = 0.0;
    if (cmodel.calibrated() &&
        cmodel.measured_cycles_per_fire(g_.actors[i].name, &measured)) {
      cost[i] = measured * static_cast<double>(sched_.reps[i]);
    } else {
      cost[i] = (opts_.count_ops ? ops_[i] : calib_[i]).weighted();
    }
  }

  // Longest-processing-time greedy: heaviest actor to the least loaded
  // worker.  Classic 4/3-approximate makespan balancing.
  std::vector<std::size_t> by_cost(n);
  std::iota(by_cost.begin(), by_cost.end(), std::size_t{0});
  std::sort(by_cost.begin(), by_cost.end(), [&](std::size_t x, std::size_t y) {
    return cost[x] > cost[y];
  });
  std::vector<double> load(static_cast<std::size_t>(threads_), 0.0);
  owner_.assign(n, 0);
  for (std::size_t i : by_cost) {
    const auto b = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    owner_[i] = static_cast<int>(b);
    load[b] += cost[i];
  }

  // Affinity pass: an actor that costs a rounding error of the balance
  // target buys nothing by sitting on its "own" worker but costs a ring
  // crossing per neighbor.  Glue such actors to their heaviest neighbor.
  const double total = std::accumulate(cost.begin(), cost.end(), 0.0);
  const double feather = 0.01 * total / static_cast<double>(threads_);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cost[i] > feather) continue;
      int best = -1;
      double best_cost = -1.0;
      for (const auto& e : g_.edges) {
        int nb = -1;
        if (e.src == static_cast<int>(i)) nb = e.dst;
        if (e.dst == static_cast<int>(i)) nb = e.src;
        if (nb >= 0 && cost[static_cast<std::size_t>(nb)] > best_cost) {
          best_cost = cost[static_cast<std::size_t>(nb)];
          best = nb;
        }
      }
      if (best >= 0) owner_[i] = owner_[static_cast<std::size_t>(best)];
    }
  }

  // Compact worker ids (LPT bins or the affinity pass may empty some) and
  // freeze each worker's firing plan in global topological order.
  std::vector<int> remap(static_cast<std::size_t>(threads_), -1);
  int used = 0;
  for (int actor : sched_.order) {
    int& slot = remap[static_cast<std::size_t>(owner_[static_cast<std::size_t>(actor)])];
    if (slot < 0) slot = used++;
  }
  threads_ = used;
  plan_.assign(static_cast<std::size_t>(threads_), {});
  for (std::size_t i = 0; i < n; ++i) {
    owner_[i] = remap[static_cast<std::size_t>(owner_[i])];
  }
  for (int actor : sched_.order) {
    plan_[static_cast<std::size_t>(owner_[static_cast<std::size_t>(actor)])]
        .push_back(actor);
  }
  input_owner_ = g_.input_edge >= 0
                     ? owner_[static_cast<std::size_t>(
                           g_.edges[static_cast<std::size_t>(g_.input_edge)].dst)]
                     : -1;

  // Freeze the batch factor for this placement (explicit request or auto
  // heuristic, both clamped to the static max_batch) before sizing storage.
  batch_ = resolve_partition_batch(cost);

  // Migrate cross-thread edges from Channel to SPSC rings in deferred
  // (bulk-publication) mode, sized to the exact static occupancy bound:
  // post-init level plus (window + 1) steps of batch * traffic -- the
  // producer of step s may run while the slowest consumer has completed
  // only step s - 1 - kWindow, so at most window + 1 steps of production
  // sit live on top of the steady level.  The sized ring never rejects a
  // push (check_bounds re-verifies this against observed high water).
  int ring_edges = 0;
  for (std::size_t e = 0; e < g_.edges.size(); ++e) {
    const auto& ed = g_.edges[e];
    if (ed.src < 0 || ed.dst < 0) continue;
    if (owner_[static_cast<std::size_t>(ed.src)] ==
        owner_[static_cast<std::size_t>(ed.dst)]) {
      continue;
    }
    Channel& ch = *chans_[e];
    const std::int64_t pushed = ch.total_pushed();
    const std::int64_t popped = ch.total_popped();
    std::vector<double> live;
    live.reserve(ch.size());
    while (!ch.empty()) live.push_back(ch.pop_item());
    const std::size_t cap =
        static_cast<std::size_t>(bounds_.pipelined(e, kWindow, batch_));
    auto ring = std::make_unique<SpscRing>(cap, /*deferred=*/true);
    ring->preload(live, pushed, popped);
    rings_[e] = std::move(ring);
    chans_[e].reset();
    ++ring_edges;
  }

  // Per-worker progress counters for the sliding window, counting completed
  // pipeline steps (batches), not raw iterations.
  steps_run_ = 0;
  completed_.clear();
  for (int w = 0; w < threads_; ++w) {
    auto c = std::make_unique<PaddedCounter>();
    c->v.store(0, std::memory_order_relaxed);
    completed_.push_back(std::move(c));
  }

  report_.threads = threads_;
  report_.owner = owner_;
  report_.ring_edges = ring_edges;
  report_.batch = batch_;

  // Machine-model sanity estimate for this placement: a T x 1 grid versus
  // everything on one core, software-pipelined.
  std::vector<machine::PlacedActor> pa;
  pa.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    machine::PlacedActor p;
    p.name = g_.actors[i].name;
    p.core = owner_[i];
    p.compute_cycles = cost[i];
    p.flops = static_cast<double>((opts_.count_ops ? ops_[i] : calib_[i]).flops);
    pa.push_back(std::move(p));
  }
  std::vector<machine::PlacedEdge> pe;
  for (std::size_t e = 0; e < g_.edges.size(); ++e) {
    const auto& ed = g_.edges[e];
    machine::PlacedEdge p;
    p.src_actor = ed.src;
    p.dst_actor = ed.dst;
    p.items = static_cast<double>(sched_.edge_traffic[e]);
    p.back_edge = ed.back_edge;
    pe.push_back(p);
  }
  machine::MachineConfig par_cfg;
  par_cfg.grid_w = threads_;
  par_cfg.grid_h = 1;
  const auto par = machine::simulate(par_cfg, pa, pe, machine::ExecMode::Pipelined);
  std::vector<machine::PlacedActor> pa_one = pa;
  for (auto& p : pa_one) p.core = 0;
  machine::MachineConfig one_cfg;
  one_cfg.grid_w = 1;
  one_cfg.grid_h = 1;
  const auto seq = machine::simulate(one_cfg, pa_one, pe, machine::ExecMode::Pipelined);
  report_.predicted_speedup =
      par.cycles_per_steady > 0 ? seq.cycles_per_steady / par.cycles_per_steady
                                : 0.0;

  partitioned_ = true;
}

int ThreadedExecutor::resolve_partition_batch(
    const std::vector<double>& cost) const {
  std::int64_t b = resolve_batch(opts_.batch);
  if (b < 0) {
    // Auto: amortize each ring publish and each window advance.  Both
    // targets look at this placement's cross-worker edges; a placement with
    // none (single effective worker slices never happen here, but affinity
    // can glue everything contiguous) needs no batching.
    std::int64_t min_traffic = 0;
    std::int64_t sum_traffic = 0;
    for (std::size_t e = 0; e < g_.edges.size(); ++e) {
      const auto& ed = g_.edges[e];
      if (ed.src < 0 || ed.dst < 0) continue;
      if (owner_[static_cast<std::size_t>(ed.src)] ==
          owner_[static_cast<std::size_t>(ed.dst)]) {
        continue;
      }
      const std::int64_t t = std::max<std::int64_t>(1, sched_.edge_traffic[e]);
      min_traffic = min_traffic == 0 ? t : std::min(min_traffic, t);
      sum_traffic += t;
    }
    if (min_traffic == 0) {
      b = 1;
    } else {
      const double total =
          std::accumulate(cost.begin(), cost.end(), 0.0);
      const double per_worker =
          std::max(1.0, total / static_cast<double>(threads_));
      const std::int64_t b_items =
          (kBatchTargetItems + min_traffic - 1) / min_traffic;
      const auto b_cycles =
          static_cast<std::int64_t>(std::ceil(kBatchTargetCycles / per_worker));
      b = std::max<std::int64_t>({1, b_items, b_cycles});
      // Ring storage grows linearly in the batch: cap the total at
      // kBatchMemCapDoubles across all rings.
      const std::int64_t per_b = (kWindow + 1) * sum_traffic;
      if (per_b > 0) b = std::min(b, std::max<std::int64_t>(1, kBatchMemCapDoubles / per_b));
      b = std::min(b, kMaxAutoBatch);
    }
  }
  // A back edge whose delay cannot cover B iterations caps the batch (the
  // eligibility check already guaranteed max_batch >= 1).
  b = std::min(b, bounds_.max_batch);
  return static_cast<int>(std::max<std::int64_t>(1, b));
}

// ---- the threaded steady state ----------------------------------------------

std::int64_t ThreadedExecutor::min_completed() const {
  std::int64_t m = completed_[0]->v.load(std::memory_order_acquire);
  for (std::size_t w = 1; w < completed_.size(); ++w) {
    m = std::min(m, completed_[w]->v.load(std::memory_order_acquire));
  }
  return m;
}

void ThreadedExecutor::wait_ready(int actor, std::int64_t chunk,
                                  obs::ThreadBuffer* tb,
                                  std::int64_t* wait_ns) {
  const auto ai = static_cast<std::size_t>(actor);
  const FlatActor& a = g_.actors[ai];
  for (std::size_t p = 0; p < a.in_edges.size(); ++p) {
    const int eid = a.in_edges[p];
    if (eid < 0 || !rings_[static_cast<std::size_t>(eid)]) continue;
    SpscRing& r = *rings_[static_cast<std::size_t>(eid)];
    std::int64_t need = sched_.reps[ai] * chunk * a.in_rate[p];
    if (a.is_filter()) need += a.peek_extra;
    const auto un = static_cast<std::size_t>(need);
    traced_spin(abort_, [&] { return r.can_pop(un); }, "waiting for input data",
                spin_yield_, stall_ms_, tb, rec_.get(), wait_ns, actor,
                obs::WaitKind::Input);
  }
  for (std::size_t p = 0; p < a.out_edges.size(); ++p) {
    const int eid = a.out_edges[p];
    if (eid < 0 || !rings_[static_cast<std::size_t>(eid)]) continue;
    SpscRing& r = *rings_[static_cast<std::size_t>(eid)];
    const auto room =
        static_cast<std::size_t>(sched_.reps[ai] * chunk * a.out_rate[p]);
    traced_spin(abort_, [&] { return r.can_push(room); },
                "waiting for output space", spin_yield_, stall_ms_, tb,
                rec_.get(), wait_ns, actor, obs::WaitKind::Space);
  }
}

void ThreadedExecutor::stage_input(std::int64_t last_iter, std::int64_t chunk) {
  const std::int64_t need_total =
      sched_.input_for_init + last_iter * sched_.input_per_steady;
  ensure_input_for(need_total);
  // Whether fed explicitly or generated, this whole step's quota must be
  // present now -- the consumer pops from a plain Channel nobody refills
  // mid-step.
  const auto ie = static_cast<std::size_t>(g_.input_edge);
  const FlatActor& d = g_.actors[static_cast<std::size_t>(g_.edges[ie].dst)];
  std::int64_t need = sched_.reps[static_cast<std::size_t>(g_.edges[ie].dst)] *
                      chunk * rate_into(d, g_.input_edge);
  if (d.is_filter()) need += d.peek_extra;
  if (static_cast<std::int64_t>(chans_[ie]->size()) < need) {
    throw std::runtime_error(
        "runtime deadlock: external input starved (feed_input more items or "
        "set an input generator)");
  }
}

void ThreadedExecutor::worker(int w, std::int64_t first,
                              std::int64_t last) noexcept {
  // Each worker owns one thread buffer and one WorkerStats slot (worker 0
  // runs on the main thread and shares tb0_ with the sequential epochs,
  // which never run concurrently with workers).
  obs::ThreadBuffer* tb = nullptr;
  std::int64_t t_start = 0;
  std::int64_t wait_ns = 0;
  std::int64_t iters_done = 0;
  if (rec_) {
    tb = w == 0 ? tb0_ : rec_->thread_buffer(w);
    t_start = rec_->now_ns();
  }
  try {
    // Walk the run's iterations in steps of `batch_` (the final step may be
    // a remainder chunk); every worker derives the same step boundaries from
    // (first, last, batch_), and the window counters count steps.
    std::int64_t step = steps_run_;
    for (std::int64_t lo = first; lo <= last; lo += batch_) {
      const std::int64_t hi = std::min<std::int64_t>(last, lo + batch_ - 1);
      const std::int64_t chunk = hi - lo + 1;
      ++step;
      // Sliding window: run at most kWindow steps ahead of the slowest
      // worker, which bounds every ring's occupancy.
      traced_spin(abort_,
                  [&] { return min_completed() >= step - 1 - kWindow; },
                  "iteration window", spin_yield_, stall_ms_, tb, rec_.get(),
                  &wait_ns, -1, obs::WaitKind::Window);
      if (w == input_owner_) stage_input(hi, chunk);
      for (int actor : plan_[static_cast<std::size_t>(w)]) {
        wait_ready(actor, chunk, tb, &wait_ns);
        const auto ai = static_cast<std::size_t>(actor);
        const FlatActor& a = g_.actors[ai];
        OpCounts* counts = opts_.count_ops ? &ops_[ai] : nullptr;
        for (std::int64_t k = 0; k < sched_.reps[ai] * chunk; ++k) {
          fire_actor(actor, counts, tb);
        }
        // Bulk publication: one release store per ring per step makes the
        // whole batch of firings visible / returns the whole batch of slots.
        for (const int eid : a.out_edges) {
          if (eid >= 0 && rings_[static_cast<std::size_t>(eid)]) {
            rings_[static_cast<std::size_t>(eid)]->publish_tail();
          }
        }
        for (const int eid : a.in_edges) {
          if (eid >= 0 && rings_[static_cast<std::size_t>(eid)]) {
            rings_[static_cast<std::size_t>(eid)]->publish_head();
          }
        }
      }
      completed_[static_cast<std::size_t>(w)]->v.store(
          step, std::memory_order_release);
      iters_done += chunk;
    }
  } catch (const Aborted&) {
    // Another worker failed first; unwind quietly.
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lk(err_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    abort_.store(true, std::memory_order_release);
  }
  if (rec_) {
    obs::WorkerStats& ws = rec_->worker_stats(w);
    ws.wall_ns += rec_->now_ns() - t_start;
    ws.wait_ns += wait_ns;
    ws.iters += iters_done;
  }
}

void ThreadedExecutor::run_threaded(int iters) {
  const std::int64_t first = steady_run_ + 1;
  const std::int64_t last = steady_run_ + iters;
  abort_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    pool.emplace_back([this, w, first, last] { worker(w, first, last); });
  }
  worker(0, first, last);
  for (auto& t : pool) t.join();
  steady_run_ = last;
  steps_run_ += (static_cast<std::int64_t>(iters) + batch_ - 1) / batch_;
  if (first_error_) std::rethrow_exception(first_error_);
}

std::vector<double> ThreadedExecutor::run_steady(int n) {
  if (seq_) return seq_->run_steady(n);
  run_init();
  int remaining = n;
  if (!partitioned_ && remaining > 0) {
    // Calibration: one sequential steady state to measure per-actor work,
    // then freeze the partition and migrate cross-thread edges.
    if (tb0_ != nullptr) {
      tb0_->emit(rec_->now_ns(), obs::EventKind::Phase,
                 static_cast<std::int32_t>(obs::PhaseId::Calibration));
    }
    ++steady_run_;
    ensure_input_for(sched_.input_for_init +
                     steady_run_ * sched_.input_per_steady);
    run_epoch(sched_.reps);
    --remaining;
    partition_and_migrate();
  }
  if (remaining > 0) {
    if (tb0_ != nullptr && !steady_marked_) {
      tb0_->emit(rec_->now_ns(), obs::EventKind::Phase,
                 static_cast<std::int32_t>(obs::PhaseId::Steady));
      steady_marked_ = true;
    }
    run_threaded(remaining);
    // With the workers joined, every high-water counter is quiescent;
    // debug and observability builds re-verify the static bounds held.
    if (kDebugBuild || obs::kCompiledIn) check_bounds();
  }
  return take_output();
}

void ThreadedExecutor::check_bounds() const {
  for (std::size_t e = 0; e < g_.edges.size(); ++e) {
    if (e >= bounds_.post_init.size() || bounds_.post_init[e] < 0) continue;
    const bool ring = rings_[e] != nullptr;
    const std::int64_t limit = ring
                                   ? bounds_.pipelined(e, kWindow, batch_)
                                   : bounds_.channel_bound(e, batch_);
    const std::int64_t seen = static_cast<std::int64_t>(
        ring ? rings_[e]->high_water() : chans_[e]->high_water());
    if (seen > limit) {
      const auto& ed = g_.edges[e];
      const std::string name =
          g_.actors[static_cast<std::size_t>(ed.src)].name + "->" +
          g_.actors[static_cast<std::size_t>(ed.dst)].name;
      throw std::logic_error(
          "channel-bound violation on edge '" + name + "' (" +
          (ring ? "ring" : "channel") + "): observed peak " +
          std::to_string(seen) + " items exceeds static bound " +
          std::to_string(limit));
    }
  }
}

std::vector<double> ThreadedExecutor::take_output() {
  if (seq_) return seq_->take_output();
  std::vector<double> out;
  if (g_.output_edge < 0) return out;
  // The output edge's consumer is external, so it is never migrated to a
  // ring; the producing worker has joined by the time we drain it.
  Channel& ch = *chans_[static_cast<std::size_t>(g_.output_edge)];
  out.reserve(ch.size());
  while (!ch.empty()) out.push_back(ch.pop_item());
  return out;
}

obs::MetricsSnapshot ThreadedExecutor::metrics_snapshot() const {
  if (seq_) {
    obs::MetricsSnapshot m = seq_->metrics_snapshot();
    m.fallback = sched::to_string(report_.fallback);
    m.fallback_detail = report_.fallback_reason;
    return m;
  }

  obs::MetricsSnapshot m;
  // Fused degrades to per-actor VM under the threaded runtime; report what
  // actually drives the workers.
  m.engine = engine_ == Engine::Tree ? "tree" : "vm";
  m.threads = threads_;
  m.batch = batch_;
  m.threaded = true;
  m.fallback = "none";
  m.predicted_speedup = report_.predicted_speedup;
  m.pipeline = pipeline_;
  m.passes = passes_;
  if (typed_on_) {
    m.typed_actors = 0;
    m.typed_regs = 0;
    for (const auto& tb : tbf_) {
      if (tb) {
        ++m.typed_actors;
        m.typed_regs += tb->program().work.typed_regs;
      }
    }
  }

  m.actors.reserve(g_.actors.size());
  for (std::size_t i = 0; i < g_.actors.size(); ++i) {
    obs::ActorSnapshot a;
    a.name = g_.actors[i].name;
    a.firings = fired_[i];
    a.ops = ops_[i];
    // The partitioners' cost: calibration cycles whether or not per-firing
    // counting stayed on afterwards.
    a.calib_cycles = (opts_.count_ops ? ops_[i] : calib_[i]).weighted();
    a.worker = partitioned_ ? owner_[i] : 0;
    if (rec_ && i < rec_->all_actor_stats().size()) {
      const obs::FiringStats& fs = rec_->all_actor_stats()[i];
      a.wall_ns = fs.wall_ns;
      a.max_ns = fs.max_ns;
      a.hist.assign(fs.hist.begin(), fs.hist.end());
    }
    if (tbf_[i]) {
      a.typed_status = "typed";
      a.typed_regs = tbf_[i]->program().work.typed_regs;
    } else if (typed_on_ && !typed_refusal_[i].empty()) {
      a.typed_status = typed_refusal_[i];
    }
    m.actors.push_back(std::move(a));
  }

  m.edges.reserve(g_.edges.size());
  for (std::size_t e = 0; e < g_.edges.size(); ++e) {
    const auto& ed = g_.edges[e];
    obs::EdgeSnapshot s;
    s.src = ed.src;
    s.dst = ed.dst;
    s.name = (ed.src >= 0 ? g_.actors[static_cast<std::size_t>(ed.src)].name
                          : std::string("input")) +
             "->" +
             (ed.dst >= 0 ? g_.actors[static_cast<std::size_t>(ed.dst)].name
                          : std::string("output"));
    s.ring = rings_[e] != nullptr;
    s.pushed = edge_pushed(static_cast<int>(e));
    s.popped = edge_popped(static_cast<int>(e));
    s.peak_items = static_cast<std::int64_t>(
        s.ring ? rings_[e]->high_water() : chans_[e]->high_water());
    if (e < bounds_.post_init.size() && bounds_.post_init[e] >= 0) {
      s.bound_items = s.ring ? bounds_.pipelined(e, kWindow, batch_)
                             : bounds_.channel_bound(e, batch_);
    }
    m.edges.push_back(std::move(s));
  }

  if (typed_on_) {
    std::vector<runtime::Tag> push(g_.actors.size(), runtime::Tag::Double);
    for (std::size_t i = 0; i < g_.actors.size(); ++i) {
      if (tbf_[i]) push[i] = tbf_[i]->program().work.push_tag;
    }
    const auto content = analysis::propagate_edge_tags(g_, push);
    m.typed_channels = 0;
    for (std::size_t e = 0; e < content.size(); ++e) {
      m.edges[e].content =
          content[e] == runtime::Tag::Double ? "double" : "int";
      if (content[e] == runtime::Tag::Double) ++m.typed_channels;
    }
  }

  for (int w = 0; w < threads_; ++w) {
    obs::WorkerSnapshot ws;
    ws.id = w;
    ws.actors = partitioned_
                    ? static_cast<int>(plan_[static_cast<std::size_t>(w)].size())
                    : 0;
    if (rec_ &&
        static_cast<std::size_t>(w) < rec_->all_worker_stats().size()) {
      const obs::WorkerStats& st = rec_->all_worker_stats()[static_cast<std::size_t>(w)];
      ws.wall_ns = st.wall_ns;
      ws.wait_ns = st.wait_ns;
      ws.iters = st.iters;
    }
    m.workers.push_back(ws);
  }

  if (rec_) {
    m.trace_events = rec_->total_events();
    m.trace_dropped = rec_->total_dropped();
  }
  obs::annotate_cost_model(&m);
  return m;
}

}  // namespace sit::sched
