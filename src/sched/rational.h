#pragma once
// Exact rational arithmetic for SDF balance equations.
//
// Repetition vectors must be exact: rounding a balance solution produces
// schedules that slowly leak or starve items.  int64 with normalization is
// ample for the paper's graphs; overflow throws rather than corrupting.

#include <cstdint>
#include <numeric>
#include <stdexcept>

namespace sit::sched {

class Rat {
 public:
  Rat() = default;
  Rat(std::int64_t n) : n_(n), d_(1) {}  // NOLINT(google-explicit-constructor)
  Rat(std::int64_t n, std::int64_t d) : n_(n), d_(d) {
    if (d_ == 0) throw std::invalid_argument("rational with zero denominator");
    normalize();
  }

  [[nodiscard]] std::int64_t num() const { return n_; }
  [[nodiscard]] std::int64_t den() const { return d_; }

  [[nodiscard]] Rat operator*(const Rat& o) const {
    return Rat(checked_mul(n_, o.n_), checked_mul(d_, o.d_));
  }
  [[nodiscard]] Rat operator/(const Rat& o) const {
    if (o.n_ == 0) throw std::domain_error("rational division by zero");
    return Rat(checked_mul(n_, o.d_), checked_mul(d_, o.n_));
  }
  [[nodiscard]] Rat operator+(const Rat& o) const {
    return Rat(checked_add(checked_mul(n_, o.d_), checked_mul(o.n_, d_)),
               checked_mul(d_, o.d_));
  }
  [[nodiscard]] Rat operator-(const Rat& o) const {
    return *this + Rat(-o.n_, o.d_);
  }
  [[nodiscard]] bool operator==(const Rat& o) const {
    return n_ == o.n_ && d_ == o.d_;
  }
  [[nodiscard]] bool operator!=(const Rat& o) const { return !(*this == o); }

  [[nodiscard]] bool is_integer() const { return d_ == 1; }

 private:
  void normalize() {
    if (d_ < 0) {
      n_ = -n_;
      d_ = -d_;
    }
    const std::int64_t g = std::gcd(n_ < 0 ? -n_ : n_, d_);
    if (g > 1) {
      n_ /= g;
      d_ /= g;
    }
    if (n_ == 0) d_ = 1;
  }

  static std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
    std::int64_t r{};
    if (__builtin_mul_overflow(a, b, &r)) {
      throw std::overflow_error("rational overflow in multiply");
    }
    return r;
  }
  static std::int64_t checked_add(std::int64_t a, std::int64_t b) {
    std::int64_t r{};
    if (__builtin_add_overflow(a, b, &r)) {
      throw std::overflow_error("rational overflow in add");
    }
    return r;
  }

  std::int64_t n_{0};
  std::int64_t d_{1};
};

}  // namespace sit::sched
