#include "sched/schedule.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "sched/rational.h"

namespace sit::sched {

using runtime::FlatActor;
using runtime::FlatEdge;
using runtime::FlatGraph;

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t x_times(const Rat& x, std::int64_t l) {
  return x.num() * (l / x.den());
}

// Solve the balance equations reps[src]*out == reps[dst]*in exactly.
std::vector<std::int64_t> solve_balance(const FlatGraph& g) {
  const std::size_t n = g.actors.size();
  std::vector<Rat> r(n, Rat(0));
  std::vector<bool> seen(n, false);

  // Adjacency over internal edges (undirected for propagation).
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    seen[start] = true;
    r[start] = Rat(1);
    std::vector<std::size_t> stack{start};
    while (!stack.empty()) {
      const std::size_t a = stack.back();
      stack.pop_back();
      auto relax = [&](const FlatEdge& e) {
        if (e.src < 0 || e.dst < 0) return;
        const auto su = static_cast<std::size_t>(e.src);
        const auto sv = static_cast<std::size_t>(e.dst);
        const std::int64_t out =
            g.actors[su].out_rate[static_cast<std::size_t>(e.src_port)];
        const std::int64_t in =
            g.actors[sv].in_rate[static_cast<std::size_t>(e.dst_port)];
        if (out == 0 && in == 0) return;
        if (out == 0 || in == 0) {
          throw std::runtime_error("rate mismatch: zero-rate producer feeding "
                                   "consuming actor (" + g.actors[su].name +
                                   " -> " + g.actors[sv].name + ")");
        }
        if (su == a || sv == a) {
          const std::size_t other = (su == a) ? sv : su;
          Rat want = (su == a) ? r[a] * Rat(out, in) : r[a] * Rat(in, out);
          if (!seen[other]) {
            seen[other] = true;
            r[other] = want;
            stack.push_back(other);
          } else if (r[other] != want) {
            throw std::runtime_error(
                "inconsistent rates around actor '" + g.actors[other].name +
                "': no steady-state schedule exists");
          }
        }
      };
      for (const auto& e : g.edges) relax(e);
    }
  }

  // Scale to the least positive integer vector.
  std::int64_t l = 1;
  for (const auto& x : r) l = std::lcm(l, x.den());
  std::vector<std::int64_t> reps(n, 0);
  std::int64_t gall = 0;
  for (std::size_t i = 0; i < n; ++i) {
    reps[i] = x_times(r[i], l);
    gall = std::gcd(gall, reps[i]);
  }
  if (gall > 1) {
    for (auto& x : reps) x /= gall;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (reps[i] <= 0) {
      throw std::runtime_error("actor '" + g.actors[i].name +
                               "' has non-positive repetition count");
    }
  }
  return reps;
}

}  // namespace

Schedule make_schedule(const FlatGraph& g) {
  Schedule s;
  const std::size_t n = g.actors.size();
  s.order = g.topo_order();
  s.reps = solve_balance(g);

  // Peek-extra requirement of an edge's consumer (filters have one in-port).
  auto peek_extra = [&](const FlatEdge& e) -> std::int64_t {
    if (e.dst < 0) return 0;
    const FlatActor& a = g.actors[static_cast<std::size_t>(e.dst)];
    return a.is_filter() ? a.peek_extra : 0;
  };
  auto in_rate = [&](const FlatEdge& e) -> std::int64_t {
    if (e.dst < 0) return 0;
    return g.actors[static_cast<std::size_t>(e.dst)]
        .in_rate[static_cast<std::size_t>(e.dst_port)];
  };
  auto out_rate = [&](const FlatEdge& e) -> std::int64_t {
    if (e.src < 0) return 0;
    return g.actors[static_cast<std::size_t>(e.src)]
        .out_rate[static_cast<std::size_t>(e.src_port)];
  };

  // --- init epoch: worklist relaxation of firing requirements -------------
  s.init_fires.assign(n, 0);
  bool changed = true;
  std::int64_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > static_cast<std::int64_t>(n) * 64 + 1024) {
      throw std::runtime_error(
          "initialization schedule does not converge (feedback deadlock?)");
    }
    for (const auto& e : g.edges) {
      if (e.dst < 0) continue;
      const std::int64_t need =
          s.init_fires[static_cast<std::size_t>(e.dst)] * in_rate(e) +
          peek_extra(e) - static_cast<std::int64_t>(e.initial_items.size());
      if (need <= 0 || e.src < 0) continue;
      const std::int64_t orate = out_rate(e);
      if (orate == 0) {
        throw std::runtime_error("actor '" + g.actors[static_cast<std::size_t>(e.src)].name +
                                 "' must provide init items but produces none");
      }
      const std::int64_t want = ceil_div(need, orate);
      auto& f = s.init_fires[static_cast<std::size_t>(e.src)];
      if (want > f) {
        f = want;
        changed = true;
      }
    }
  }

  // --- edge traffic and boundary rates ------------------------------------
  s.edge_traffic.assign(g.edges.size(), 0);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    if (e.src >= 0) {
      s.edge_traffic[i] =
          s.reps[static_cast<std::size_t>(e.src)] * out_rate(e);
    } else if (e.dst >= 0) {
      s.edge_traffic[i] = s.reps[static_cast<std::size_t>(e.dst)] * in_rate(e);
    }
  }
  if (g.input_edge >= 0) {
    const auto& e = g.edges[static_cast<std::size_t>(g.input_edge)];
    s.input_per_steady = s.reps[static_cast<std::size_t>(e.dst)] * in_rate(e);
    s.input_for_init =
        s.init_fires[static_cast<std::size_t>(e.dst)] * in_rate(e) + peek_extra(e);
  }
  if (g.output_edge >= 0) {
    const auto& e = g.edges[static_cast<std::size_t>(g.output_edge)];
    s.output_per_steady = s.reps[static_cast<std::size_t>(e.src)] * out_rate(e);
  }

  // --- static sweep simulation: feasibility + buffer bounds ----------------
  // Mirrors the executor's data-driven sweep: fire actors in topological
  // order whenever their inputs allow, until every quota is exhausted.
  std::vector<std::int64_t> level(g.edges.size(), 0);
  std::vector<std::int64_t> high(g.edges.size(), 0);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    level[i] = static_cast<std::int64_t>(g.edges[i].initial_items.size());
    high[i] = level[i];
  }
  // External input is modeled as always available.
  auto run_epoch = [&](const std::vector<std::int64_t>& quota_in,
                       const char* epoch) {
    std::vector<std::int64_t> quota = quota_in;
    bool progress = true;
    while (progress) {
      progress = false;
      for (int a : s.order) {
        const auto ai = static_cast<std::size_t>(a);
        while (quota[ai] > 0) {
          bool can = true;
          const FlatActor& act = g.actors[ai];
          for (std::size_t p = 0; p < act.in_edges.size(); ++p) {
            const int eid = act.in_edges[p];
            if (eid < 0) continue;
            const auto& e = g.edges[static_cast<std::size_t>(eid)];
            if (e.src < 0) continue;  // external input: unbounded
            std::int64_t want = act.in_rate[p];
            if (act.is_filter()) want += act.peek_extra;
            if (level[static_cast<std::size_t>(eid)] < want) {
              can = false;
              break;
            }
          }
          if (!can) break;
          for (std::size_t p = 0; p < act.in_edges.size(); ++p) {
            const int eid = act.in_edges[p];
            if (eid < 0) continue;
            if (g.edges[static_cast<std::size_t>(eid)].src < 0) continue;
            level[static_cast<std::size_t>(eid)] -= act.in_rate[p];
          }
          for (std::size_t p = 0; p < act.out_edges.size(); ++p) {
            const int eid = act.out_edges[p];
            if (eid < 0) continue;
            if (g.edges[static_cast<std::size_t>(eid)].dst < 0) continue;
            auto& lv = level[static_cast<std::size_t>(eid)];
            lv += act.out_rate[p];
            high[static_cast<std::size_t>(eid)] =
                std::max(high[static_cast<std::size_t>(eid)], lv);
          }
          --quota[ai];
          progress = true;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (quota[i] > 0) {
        throw std::runtime_error(std::string("deadlock during ") + epoch +
                                 " epoch at actor '" + g.actors[i].name + "'");
      }
    }
  };
  run_epoch(s.init_fires, "init");
  run_epoch(s.reps, "steady-1");
  run_epoch(s.reps, "steady-2");
  s.buffer_bound = high;

  return s;
}

std::string Schedule::describe(const FlatGraph& g) const {
  std::ostringstream os;
  os << "steady-state repetitions:\n";
  for (std::size_t i = 0; i < reps.size(); ++i) {
    os << "  " << g.actors[i].name << ": " << reps[i];
    if (init_fires[i] > 0) os << " (+" << init_fires[i] << " init)";
    os << "\n";
  }
  os << "input/steady=" << input_per_steady
     << " output/steady=" << output_per_steady << "\n";
  return os.str();
}

}  // namespace sit::sched
