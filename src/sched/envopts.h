#pragma once
// One-stop environment-variable resolution.
//
// Every SIT_* knob the runtime honors is read here and nowhere else:
//
//   SIT_ENGINE    "vm" | "tree" | "fused"  work-function engine (default vm;
//                                        fused = whole-program steady-state
//                                        trace, per-actor VM when refused)
//   SIT_THREADS   integer >= 1           ThreadedExecutor workers (default 1)
//   SIT_BATCH     integer >= 1 | "auto"  steady iterations per pipeline step
//                                        (default auto: sized from per-edge
//                                        traffic + measured cost, clamped to
//                                        the static max_batch)
//   SIT_TYPED     0 | 1 | "auto"         typed (unboxed dual-plane) value
//                                        specialization: 0 = always tagged,
//                                        1/auto = specialize registers,
//                                        trace buffers, and channels where
//                                        the typeflow analysis proves it
//                                        safe (default auto; 1 and auto are
//                                        identical today -- both fall back
//                                        per actor/trace when refused)
//   SIT_TRACE     "1" | "on" | "true"    event tracing + timing (default off)
//   SIT_STALL_MS  integer ms             threaded stall-abort (default 120000)
//   SIT_OPT       0 | 1 | 2              default optimization level (default 2)
//   SIT_PASSES    "a,b,c"                explicit pass spec (overrides SIT_OPT)
//   SIT_VERIFY    "final" | "each"       run the semantic verifier after the
//                                        pipeline / after every pass
//                                        (default off)
//
// One deliberate exception: SIT_COST (a cost-profile path for the
// calibrated cost model) is resolved lazily by obs::cost_model()
// (obs/costmodel.h) -- sched depends on obs, not the other way around, and
// the model must also serve consumers that never touch the runtime
// (linear selection, the coarsen pass).
//
// resolve_exec_options() snapshots all of them at once; the field-level
// env_*() helpers back the sched::resolve_* merge functions (which combine a
// caller-requested value with the environment default) so both views share
// one parser.  Executors and tools go through these -- never raw getenv.

#include <string>

#include "sched/program.h"

namespace sit {

// The environment's execution configuration, fully resolved to concrete
// values (engine is never Auto, threads >= 1).
struct ExecEnv {
  sched::Engine engine{sched::Engine::Vm};
  int threads{1};
  int batch{-1};  // -1 = auto, otherwise >= 1
  bool typed{true};
  bool trace{false};
  int stall_ms{120000};
  int opt_level{2};    // clamped to [0, 2]
  std::string passes;  // empty = use the preset for opt_level
  int verify{0};       // 0 off, 1 final, 2 each
};

// Snapshot every SIT_* variable.  `trace` is additionally false when the
// observability instrumentation was compiled out (cmake -DSIT_OBS=OFF).
ExecEnv resolve_exec_options();

// Field-level reads (the parsers behind resolve_exec_options and the
// sched::resolve_* helpers).
sched::Engine env_engine();
int env_threads();    // >= 1
int env_batch();      // -1 = auto (default / "auto"), otherwise >= 1
bool env_typed();     // false only for SIT_TYPED=0/"off" (default on/auto)
bool env_trace();     // raw SIT_TRACE; does not consult obs::kCompiledIn
int env_stall_ms();   // 0 / unset -> 120000; negative = never abort
int env_opt_level();  // clamped to [0, 2]
std::string env_passes();
// 0 off, 1 final ("final"/"1"/"on"), 2 each ("each"/"2").  Plain int so the
// sched layer stays independent of opt::VerifyMode, which mirrors it.
int env_verify();

}  // namespace sit
