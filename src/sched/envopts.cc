#include "sched/envopts.h"

#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace sit {

sched::Engine env_engine() {
  const char* env = std::getenv("SIT_ENGINE");
  if (env != nullptr && std::strcmp(env, "tree") == 0) {
    return sched::Engine::Tree;
  }
  if (env != nullptr && std::strcmp(env, "fused") == 0) {
    return sched::Engine::Fused;
  }
  return sched::Engine::Vm;
}

int env_threads() {
  int t = 1;
  if (const char* env = std::getenv("SIT_THREADS")) t = std::atoi(env);
  return t < 1 ? 1 : t;
}

int env_batch() {
  const char* env = std::getenv("SIT_BATCH");
  if (env == nullptr || std::strcmp(env, "auto") == 0) return -1;
  const int b = std::atoi(env);
  return b < 1 ? 1 : b;
}

bool env_typed() {
  // "1" and "auto" mean the same thing today: specialize wherever the
  // typeflow analysis proves it safe, tagged fallback elsewhere.  Only an
  // explicit 0/"off" disables the typed paths entirely.
  const char* env = std::getenv("SIT_TYPED");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

bool env_trace() {
  const char* env = std::getenv("SIT_TRACE");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

int env_stall_ms() {
  const char* env = std::getenv("SIT_STALL_MS");
  int ms = env != nullptr ? std::atoi(env) : 120000;
  if (ms == 0) ms = 120000;
  return ms;
}

int env_opt_level() {
  const char* env = std::getenv("SIT_OPT");
  if (env == nullptr) return 2;
  const int lvl = std::atoi(env);
  if (lvl < 0) return 0;
  if (lvl > 2) return 2;
  return lvl;
}

std::string env_passes() {
  const char* env = std::getenv("SIT_PASSES");
  return env != nullptr ? env : "";
}

int env_verify() {
  const char* env = std::getenv("SIT_VERIFY");
  if (env == nullptr) return 0;
  if (std::strcmp(env, "each") == 0 || std::strcmp(env, "2") == 0) return 2;
  if (std::strcmp(env, "final") == 0 || std::strcmp(env, "1") == 0 ||
      std::strcmp(env, "on") == 0) {
    return 1;
  }
  return 0;
}

ExecEnv resolve_exec_options() {
  ExecEnv e;
  e.engine = env_engine();
  e.threads = env_threads();
  e.batch = env_batch();
  e.typed = env_typed();
  e.trace = obs::kCompiledIn && env_trace();
  e.stall_ms = env_stall_ms();
  e.opt_level = env_opt_level();
  e.passes = env_passes();
  e.verify = env_verify();
  return e;
}

}  // namespace sit
