#pragma once
// Graph executor.
//
// Drives a flattened stream program through its initialization epoch and any
// number of steady states, firing actors data-driven in topological sweeps
// (which realizes exactly the operational semantics of the paper: an actor
// may fire whenever >= peek items are buffered on its input).  The executor
// also:
//   * tallies per-actor operation counts (the work estimates used by the
//     partitioners and the machine model),
//   * exposes single-actor firing so the messaging module can drive a
//     *constrained* schedule,
//   * records cumulative push/pop counters per channel (n(t), p(t)).

#include <functional>
#include <memory>
#include <vector>

#include "ir/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/channel.h"
#include "runtime/flatgraph.h"
#include "runtime/fused.h"
#include "runtime/interp.h"
#include "runtime/typed.h"
#include "runtime/vm.h"
#include "sched/program.h"
#include "sched/schedule.h"

namespace sit::sched {

// Engine lives in sched/program.h (the CompiledProgram artifact records the
// pipeline's choice); re-exported here for the executors' users.

// Resolve Auto against SIT_ENGINE (other values pass through).
Engine resolve_engine(Engine e);

// Resolve a requested worker-thread count: 0 means "consult SIT_THREADS",
// which itself defaults to 1 (sequential).  Values < 1 clamp to 1.  Only the
// ThreadedExecutor (sched/texec.h) acts on counts > 1; the plain Executor
// ignores the field.
int resolve_threads(int requested);

// Event tracing + timing metrics (src/obs).  Auto consults the SIT_TRACE
// environment variable ("1"/"on"/"true" enable) and defaults to Off; the
// explicit values let tests and tools pin the behavior regardless of the
// environment.
enum class TraceMode { Auto, Off, On };

// Resolve Auto against SIT_TRACE; always false when the instrumentation was
// compiled out (cmake -DSIT_OBS=OFF).
bool resolve_trace(TraceMode mode);

// Typed (unboxed dual-plane) value specialization: Off keeps every actor on
// the tagged engines; On and Auto both specialize wherever the typeflow
// analysis (runtime/typed.h) proves it safe, with tagged fallback per
// actor/trace where it refuses.  Auto consults SIT_TYPED (default on).
enum class TypedMode { Auto, Off, On };

// Resolve Auto against SIT_TYPED (other values pass through).
bool resolve_typed(TypedMode mode);

// Resolve the threaded runtime's stall-abort threshold in milliseconds:
// 0 = consult SIT_STALL_MS, which itself defaults to 120000 (two minutes);
// negative = never abort (spin forever).
int resolve_stall_ms(int requested);

// Resolve a requested steady-iteration batch factor: 0 = consult SIT_BATCH
// (whose default is auto), -1 = auto, values >= 1 pass through.  Returns -1
// (auto) or a count >= 1.  Auto is resolved per program inside the
// ThreadedExecutor at partition time, where per-edge traffic, measured actor
// cost, and the static max_batch are known.
int resolve_batch(int requested);

struct ExecOptions {
  bool count_ops{true};
  Engine engine{Engine::Auto};
  // Worker threads for ThreadedExecutor: 0 = resolve from SIT_THREADS.
  int threads{0};
  // Steady iterations per pipeline step (ThreadedExecutor only): 0 = resolve
  // from SIT_BATCH, -1 = auto heuristic, >= 1 = explicit (clamped to the
  // static max_batch of the program).
  int batch{0};
  // Event tracing + per-firing timing (obs::Recorder).
  TraceMode trace{TraceMode::Auto};
  // Typed value-plane specialization (SIT_TYPED when Auto).
  TypedMode typed{TypedMode::Auto};
  // Threaded runtime stall detector: abort after this many ms without
  // progress in a spin wait (0 = SIT_STALL_MS / default, < 0 = never), and
  // busy-spin this many times before starting to yield.
  int stall_ms{0};
  int spin_before_yield{128};
  // Receives teleport messages emitted by Send statements; delivery policy is
  // the msg module's job (the plain executor only forwards).
  runtime::MessageSink message_sink;
};

class Executor {
 public:
  // Graph-taking form: validates, flattens, and schedules internally
  // (equivalent to Executor(lower(root), opts)).
  explicit Executor(ir::NodeP root, ExecOptions opts = {});

  // Artifact-taking form: consume a pipeline-compiled program as-is -- no
  // re-analysis, re-flattening, or re-scheduling.  The program's resolved
  // engine applies when opts.engine is Auto (and likewise threads), so the
  // same artifact can still be pinned to a specific engine per executor.
  explicit Executor(CompiledProgram prog, ExecOptions opts = {});

  [[nodiscard]] const runtime::FlatGraph& graph() const { return g_; }
  [[nodiscard]] const Schedule& schedule() const { return sched_; }

  // External input: either an explicit item feed or a generator the executor
  // pulls from on demand (index = item position in the input stream).
  void feed_input(const std::vector<double>& items);
  void set_input_generator(std::function<double(std::int64_t)> gen);

  // Initialization epoch: runs every filter's init function happened already
  // (at construction); this executes the init firings that buffer peek
  // windows and primes feedback loops.  Idempotent.
  void run_init();

  // Run `n` steady states (running init first if needed); returns the items
  // pushed to the program output during those steady states.
  std::vector<double> run_steady(int n);

  // --- fine-grained control (sdep / messaging) -----------------------------
  [[nodiscard]] bool can_fire(int actor) const;
  void fire(int actor);

  // Invoke a teleport-message handler on an AST filter actor.  Handlers run
  // through the tree interpreter; both engines share the actor's
  // FilterState storage, so a handler delivered between VM firings is
  // visible to the next firing.
  void run_handler(int actor, const std::string& method,
                   const std::vector<ir::Value>& args);

  // The engine actually driving this graph (Auto already resolved), and
  // whether a given AST filter actor runs on compiled bytecode.
  [[nodiscard]] Engine engine() const { return engine_; }
  [[nodiscard]] bool actor_uses_vm(int actor) const {
    return vmf_[static_cast<std::size_t>(actor)] != nullptr;
  }

  // Typed specialization introspection.  typed_enabled() reports the
  // resolved SIT_TYPED decision; actor_uses_typed() whether a given actor's
  // work runs on the dual-plane register file; typed_refusal() the stable
  // reason it does not ("" when it does, or when the actor was never a
  // candidate -- non-filter, tree fallback, or typed mode off).
  [[nodiscard]] bool typed_enabled() const { return typed_on_; }
  [[nodiscard]] bool actor_uses_typed(int actor) const {
    return tbf_[static_cast<std::size_t>(actor)] != nullptr;
  }
  [[nodiscard]] const std::string& typed_refusal(int actor) const {
    return typed_refusal_[static_cast<std::size_t>(actor)];
  }
  // The specialized work program for one actor (null when tagged), and the
  // whole-trace typed fused program (Engine::Fused; null when the trace
  // stayed tagged, with typed_fused_refusal() carrying the stable reason).
  [[nodiscard]] const runtime::TypedFilter* typed_program(int actor) const {
    const auto& p = tbf_[static_cast<std::size_t>(actor)];
    return p ? &p->program() : nullptr;
  }
  [[nodiscard]] const runtime::TypedFusedProgram* typed_fused_program() const {
    return tfprog_ ? tfprog_.get() : nullptr;
  }
  [[nodiscard]] const std::string& typed_fused_refusal() const {
    return typed_fused_refusal_;
  }

  // Fused engine introspection (Engine::Fused only).  fused_program() is the
  // whole-iteration trace run_steady executes, or null when fusion was
  // refused -- in which case fused_refusal() carries the stable reason
  // (analysis/fuse.h) and steady states run per-actor on the VM instead.
  [[nodiscard]] const runtime::FusedProgram* fused_program() const {
    return fprog_ ? fprog_.get() : nullptr;
  }
  [[nodiscard]] const std::string& fused_refusal() const {
    return fused_refusal_;
  }

  [[nodiscard]] const std::vector<std::int64_t>& firings() const { return fired_; }
  [[nodiscard]] runtime::Channel& channel(int edge_id) {
    return *chans_[static_cast<std::size_t>(edge_id)];
  }
  runtime::FilterState& filter_state(int actor) {
    return fstate_[static_cast<std::size_t>(actor)];
  }

  // Drain whatever is on the external output edge.
  std::vector<double> take_output();

  // --- accounting -----------------------------------------------------------
  [[nodiscard]] const std::vector<runtime::OpCounts>& actor_ops() const {
    return ops_;
  }
  [[nodiscard]] runtime::OpCounts total_ops() const;

  // --- observability --------------------------------------------------------
  // Null unless tracing is enabled (ExecOptions::trace / SIT_TRACE).
  [[nodiscard]] obs::Recorder* recorder() noexcept { return rec_.get(); }
  [[nodiscard]] const obs::Recorder* recorder() const noexcept {
    return rec_.get();
  }
  // The single-threaded executor's own event log (null when not tracing);
  // MessagingExecutor appends teleport delivery events here.
  [[nodiscard]] obs::ThreadBuffer* trace_buffer() noexcept { return tb_; }
  // Quiescent metrics snapshot (actor/edge/timing tables; obs/metrics.h).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

 private:
  void ensure_input_for(std::int64_t items_needed);
  void run_epoch(const std::vector<std::int64_t>& quota);

  ir::NodeP root_;
  ExecOptions opts_;
  runtime::FlatGraph g_;
  Schedule sched_;
  Engine engine_{Engine::Vm};
  std::vector<std::unique_ptr<runtime::Channel>> chans_;
  std::vector<runtime::FilterState> fstate_;
  // Per-actor compiled work functions bound to fstate_ storage; null where
  // the actor is not an AST filter or its work fell back to the tree
  // interpreter.  fstate_ entries must therefore never be reseated.
  std::vector<std::unique_ptr<runtime::VmBound>> vmf_;
  std::vector<std::unique_ptr<ir::NativeState>> nstate_;
  // Typed specialization (SIT_TYPED): per-actor dual-plane bindings, taking
  // precedence over vmf_ when present, plus the per-actor refusal reasons.
  bool typed_on_{false};
  std::vector<std::unique_ptr<runtime::TypedBound>> tbf_;
  std::vector<std::string> typed_refusal_;
  // Fused steady-state trace (Engine::Fused; null when fusion was refused).
  runtime::FusedProgramP fprog_;
  std::unique_ptr<runtime::FusedExec> fexec_;
  std::string fused_refusal_;
  // Typed twin of the fused trace (preferred by run_steady when its
  // activation succeeds; the tagged trace stays as fallback).
  runtime::TypedFusedProgramP tfprog_;
  std::unique_ptr<runtime::TypedFusedExec> tfexec_;
  std::string typed_fused_refusal_;
  std::vector<runtime::OpCounts> ops_;
  std::vector<std::int64_t> fired_;
  std::function<double(std::int64_t)> input_gen_;
  std::int64_t input_fed_{0};
  std::int64_t steady_run_{0};
  bool init_done_{false};
  bool steady_marked_{false};
  // Tracing (null when disabled; tb_ is this executor's thread-0 buffer).
  std::unique_ptr<obs::Recorder> rec_;
  obs::ThreadBuffer* tb_{nullptr};
  // Compilation provenance (from the CompiledProgram; empty when built from
  // a raw graph), surfaced through metrics_snapshot().
  std::string pipeline_;
  std::vector<obs::PassSnapshot> passes_;
};

}  // namespace sit::sched
