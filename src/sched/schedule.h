#pragma once
// SDF scheduling.
//
// From the flat graph we compute:
//   * the minimal steady-state repetition vector (balance equations, solved
//     exactly over the rationals and scaled to the least integer solution);
//   * an initialization firing count per actor that leaves every peeking
//     filter's input with its extra peek window buffered, so that thereafter
//     every steady state can execute with each actor firing exactly its
//     repetition count;
//   * per-edge steady-state traffic and buffer bounds.

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/flatgraph.h"

namespace sit::sched {

struct Schedule {
  // reps[a]: firings of actor a per steady state (minimal integer solution).
  std::vector<std::int64_t> reps;
  // init_fires[a]: firings during the initialization epoch.
  std::vector<std::int64_t> init_fires;
  // Topological actor order used for in-order execution.
  std::vector<int> order;
  // Items crossing each edge per steady state.
  std::vector<std::int64_t> edge_traffic;
  // Upper bound on live items per edge when executing in `order`
  // (init epoch + one steady state), from static simulation of counts.
  std::vector<std::int64_t> buffer_bound;

  // Items consumed from the external input / pushed to the external output
  // per steady state (0 if the graph is closed).
  std::int64_t input_per_steady{0};
  std::int64_t output_per_steady{0};
  // External input items needed to complete the init epoch.
  std::int64_t input_for_init{0};

  [[nodiscard]] std::string describe(const runtime::FlatGraph& g) const;
};

// Computes the schedule; throws std::runtime_error on inconsistent rates
// (no valid steady state) or on init-epoch deadlock.
Schedule make_schedule(const runtime::FlatGraph& g);

}  // namespace sit::sched
