#include "parallel/strategies.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "linear/cost.h"
#include "parallel/transforms.h"
#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace sit::parallel {

using machine::ExecMode;
using machine::MachineConfig;

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::SingleCore: return "single-core";
    case Strategy::TaskParallel: return "task";
    case Strategy::FineGrainedData: return "fine-grained-data";
    case Strategy::TaskData: return "task+data";
    case Strategy::TaskSwp: return "task+swp";
    case Strategy::TaskDataSwp: return "task+data+swp";
    case Strategy::SpaceMultiplex: return "space-multiplex";
  }
  return "?";
}

Placement build_placement(const ir::NodeP& root) {
  const runtime::FlatGraph g = runtime::flatten(root);
  const sched::Schedule s = sched::make_schedule(g);
  Placement p;
  p.actors.reserve(g.actors.size());
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const auto& a = g.actors[i];
    machine::PlacedActor pa;
    pa.name = a.name;
    pa.core = 0;
    const double reps = static_cast<double>(s.reps[i]);
    // I/O endpoints model the paper's file readers/writers: data is streamed
    // from DRAM and the endpoint is not mapped to a compute core, so it only
    // costs DMA issue overhead.
    bool has_in = false, has_out = false;
    for (int e : a.in_edges) has_in = has_in || e >= 0;
    for (int e : a.out_edges) has_out = has_out || e >= 0;
    const bool endpoint = a.is_filter() && (!has_in || !has_out);
    if (endpoint) {
      double items = 0;
      for (int r : a.in_rate) items += r;
      for (int r : a.out_rate) items += r;
      pa.compute_cycles = reps * items * 0.5;
      pa.flops = 0.0;
    } else if (a.is_filter()) {
      pa.compute_cycles = reps * linear::leaf_ops_per_firing(*a.node);
      pa.flops = reps * linear::leaf_flops_per_firing(*a.node);
    } else {
      std::int64_t items = 0;
      for (int r : a.in_rate) items += r;
      for (int r : a.out_rate) items += r;
      pa.compute_cycles = reps * static_cast<double>(items);
      pa.flops = 0.0;
    }
    p.actors.push_back(std::move(pa));
  }
  p.edges.reserve(g.edges.size());
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    machine::PlacedEdge pe;
    pe.src_actor = g.edges[e].src;
    pe.dst_actor = g.edges[e].dst;
    pe.items = static_cast<double>(s.edge_traffic[e]);
    pe.back_edge = g.edges[e].back_edge;
    p.edges.push_back(pe);
  }
  return p;
}

void place_lpt(Placement& p, const MachineConfig& cfg) {
  std::vector<std::size_t> order(p.actors.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p.actors[a].compute_cycles > p.actors[b].compute_cycles;
  });
  std::vector<double> load(static_cast<std::size_t>(cfg.cores()), 0.0);
  for (std::size_t i : order) {
    const auto best = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    p.actors[i].core = static_cast<int>(best);
    load[best] += p.actors[i].compute_cycles;
  }
}

void place_one_per_core(Placement& p, const MachineConfig& cfg) {
  if (static_cast<int>(p.actors.size()) > cfg.cores()) {
    throw std::invalid_argument("space multiplexing needs actors <= cores");
  }
  // Snake order keeps pipeline neighbors one hop apart on the mesh.
  std::vector<int> snake;
  for (int y = 0; y < cfg.grid_h; ++y) {
    for (int x = 0; x < cfg.grid_w; ++x) {
      const int col = (y % 2 == 0) ? x : cfg.grid_w - 1 - x;
      snake.push_back(y * cfg.grid_w + col);
    }
  }
  for (std::size_t i = 0; i < p.actors.size(); ++i) {
    p.actors[i].core = snake[i % snake.size()];
  }
}

namespace {

// Items leaving pure sources per steady state: the scale-free throughput
// denominator.  The paper's figures are throughput speedups.
double source_items_per_steady(const Placement& p) {
  // Sources have no incoming placed edges but do have outgoing ones.
  std::vector<bool> has_in(p.actors.size(), false);
  std::vector<double> produced(p.actors.size(), 0.0);
  for (const auto& e : p.edges) {
    if (e.dst_actor >= 0 && e.src_actor >= 0) {
      has_in[static_cast<std::size_t>(e.dst_actor)] = true;
    }
    if (e.src_actor >= 0) {
      produced[static_cast<std::size_t>(e.src_actor)] += e.items;
    }
  }
  double total = 0.0;
  for (std::size_t i = 0; i < p.actors.size(); ++i) {
    if (!has_in[i]) total += produced[i];
  }
  return total;
}

double single_core_cycles(const ir::NodeP& app) {
  Placement p = build_placement(app);
  MachineConfig one;
  one.grid_w = 1;
  one.grid_h = 1;
  const auto r = machine::simulate(one, p.actors, p.edges, ExecMode::Pipelined);
  return r.cycles_per_steady;
}

}  // namespace

StrategyResult run_strategy(const ir::NodeP& app, Strategy s,
                            const MachineConfig& cfg) {
  StrategyResult result;
  result.strategy = s;

  ir::NodeP g = ir::clone(app);
  ExecMode mode = ExecMode::DataFlow;
  bool one_per_core = false;

  switch (s) {
    case Strategy::SingleCore:
      mode = ExecMode::Pipelined;
      break;
    case Strategy::TaskParallel:
      mode = ExecMode::DataFlow;
      break;
    case Strategy::FineGrainedData:
      g = fine_grained_parallelize(g, cfg.cores());
      mode = ExecMode::DataFlow;
      break;
    case Strategy::TaskData:
      g = data_parallelize(g, cfg.cores());
      mode = ExecMode::DataFlow;
      break;
    case Strategy::TaskSwp:
      g = selective_fusion(g, 2 * cfg.cores());
      mode = ExecMode::Pipelined;
      break;
    case Strategy::TaskDataSwp:
      g = data_parallelize(g, cfg.cores());
      mode = ExecMode::Pipelined;
      break;
    case Strategy::SpaceMultiplex:
      g = selective_fusion(g, cfg.cores());
      mode = ExecMode::Pipelined;
      one_per_core = true;
      break;
  }

  Placement p = build_placement(g);
  if (s == Strategy::SingleCore) {
    for (auto& a : p.actors) a.core = 0;
  } else if (one_per_core) {
    // The space partitioner counts only filters against the tile budget;
    // splitters/joiners ride along on the nearest filter's tile in the real
    // system.  Here we place all actors on the snake, which requires the
    // actor count to fit; fall back to LPT if splitters push us over.
    if (static_cast<int>(p.actors.size()) <= cfg.cores()) {
      place_one_per_core(p, cfg);
    } else {
      place_lpt(p, cfg);
    }
  } else {
    place_lpt(p, cfg);
  }

  result.sim = machine::simulate(cfg, p.actors, p.edges, mode);
  result.actors = static_cast<int>(p.actors.size());
  result.transformed = g;

  // Transformations change the steady-state scale (fission multiplies the
  // repetition vector), so speedup must compare *throughput*: cycles per
  // item processed, with items measured at the sources.
  const double base = single_core_cycles(app);
  const Placement base_p = build_placement(app);
  const double base_items = source_items_per_steady(base_p);
  const double new_items = source_items_per_steady(p);
  const double base_per_item = base_items > 0 ? base / base_items : base;
  const double new_per_item =
      new_items > 0 ? result.sim.cycles_per_steady / new_items
                    : result.sim.cycles_per_steady;
  result.speedup_vs_single = new_per_item > 0 ? base_per_item / new_per_item : 0.0;
  return result;
}

std::vector<StrategyResult> run_strategies(const ir::NodeP& app,
                                           const std::vector<Strategy>& list,
                                           const MachineConfig& cfg) {
  std::vector<StrategyResult> out;
  out.reserve(list.size());
  for (Strategy s : list) out.push_back(run_strategy(app, s, cfg));
  return out;
}

}  // namespace sit::parallel
