#pragma once
// Mapping strategies (the paper's evaluation matrix):
//
//   SingleCore      -- everything on one core; the normalization baseline.
//   TaskParallel    -- no transformation; fork/join execution where only
//                      split-join siblings overlap (the paper's baseline).
//   FineGrainedData -- naive per-filter 16-way fission (cautionary figure).
//   TaskData        -- coarse-grained data parallelism (coarsen + fiss).
//   TaskSwp         -- selective fusion + software-pipelined execution.
//   TaskDataSwp     -- data parallelism, then software pipelining (combined).
//   SpaceMultiplex  -- prior-work baseline: fuse to <= #cores filters, one
//                      filter per tile, pipeline-parallel execution.

#include <string>
#include <vector>

#include "ir/graph.h"
#include "machine/machine.h"

namespace sit::parallel {

enum class Strategy {
  SingleCore,
  TaskParallel,
  FineGrainedData,
  TaskData,
  TaskSwp,
  TaskDataSwp,
  SpaceMultiplex,
};

const char* to_string(Strategy s);

struct StrategyResult {
  Strategy strategy{};
  machine::SimResult sim;
  double speedup_vs_single{1.0};
  int actors{0};           // actors after transformation
  ir::NodeP transformed;   // graph that was mapped
};

// A placed program ready for machine simulation.
struct Placement {
  std::vector<machine::PlacedActor> actors;
  std::vector<machine::PlacedEdge> edges;
};

// Build placement inputs from a graph: per-actor steady-state compute from
// the interpreter-based estimates, per-edge steady-state traffic from the
// schedule.  Cores are all 0; the strategy assigns them afterwards.
Placement build_placement(const ir::NodeP& root);

// Load-balance actors onto cores (longest-processing-time greedy).
void place_lpt(Placement& p, const machine::MachineConfig& cfg);

// One actor per core along a grid snake, in topological order (the space-
// multiplexed layout).  Requires actors <= cores.
void place_one_per_core(Placement& p, const machine::MachineConfig& cfg);

// Run one strategy end to end.  `single_core_cycles` of the untransformed
// app is computed internally for the speedup figure.
//
// Deprecated shim for whole-program compilation: the transformations the
// strategies compose (selective_fusion, data_parallelize) are also exposed
// as the `selective-fuse` / `fission` passes of the pass pipeline
// (opt/pass_manager.h); new real-execution paths should opt::compile() with
// an explicit pass spec.  This entry point remains the machine-model
// evaluation driver (simulated cycles, not real execution).
StrategyResult run_strategy(const ir::NodeP& app, Strategy s,
                            const machine::MachineConfig& cfg);

// Convenience: run a list of strategies.
std::vector<StrategyResult> run_strategies(const ir::NodeP& app,
                                           const std::vector<Strategy>& list,
                                           const machine::MachineConfig& cfg);

}  // namespace sit::parallel
