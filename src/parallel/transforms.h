#pragma once
// Graph transformations used by the parallelization strategies:
//
//   * fuse_subtree  -- collapse any subtree into a single native filter that
//     executes the subtree's steady state internally (StreamIt filter
//     fusion).  Fusing peeking children introduces internal buffering, so
//     the result is stateful exactly when the paper says it is ("once a
//     peeking filter is fused, it cannot be fissed").
//   * fiss          -- data-parallelize a stateless leaf K ways.  Non-peeking
//     filters fiss into a round-robin split-join; peeking filters fiss with a
//     duplicate splitter and per-replica decimation (the duplication is the
//     synchronization overhead the paper's coarse-grained algorithm weighs).
//   * coarsen_stateless -- fuse maximal regions of stateless, non-peeking
//     actors (the "coarsen granularity" step of coarse-grained data
//     parallelism).
//   * selective_fusion  -- greedily fuse the cheapest adjacent work until the
//     actor count reaches a target (the software-pipelining preparation).

#include <string>

#include "ir/graph.h"

namespace sit::parallel {

// Is this leaf (or subtree) free of mutable state, and does it avoid
// peeking?  Both matter: state forbids fission outright; fusing peeking
// filters manufactures state.
bool leaf_stateful(const ir::Node& leaf);
bool subtree_stateful(const ir::NodeP& node);   // any stateful leaf / feedback
bool subtree_peeks(const ir::NodeP& node);      // any peeking leaf

// Collapse a subtree into one native filter.  The native filter's rates are
// the subtree's per-steady-state external rates; its first firing also
// absorbs the subtree's initialization epoch.
ir::NodeP fuse_subtree(const ir::NodeP& node, const std::string& name);

// Data-parallelize a stateless leaf K ways.  Throws if the leaf is stateful.
ir::NodeP fiss(const ir::NodeP& leaf, int k);

// Fuse maximal stateless non-peeking regions bottom-up.  Returns a new tree.
ir::NodeP coarsen_stateless(const ir::NodeP& root);

// Greedy fusion until at most `target_actors` leaves remain (or no legal
// move is left).  Returns a new tree.
ir::NodeP selective_fusion(const ir::NodeP& root, int target_actors);

// The full coarse-grained data-parallelism transform: coarsen, then fiss
// every stateless leaf whose work share exceeds `min_work_share` by
// min(cores, reps-limit) ways.
ir::NodeP data_parallelize(const ir::NodeP& root, int cores,
                           double min_work_share = 0.01);

// Naive fine-grained data parallelism (the paper's cautionary baseline):
// fiss every stateless filter `cores` ways with no coarsening.
ir::NodeP fine_grained_parallelize(const ir::NodeP& root, int cores);

// Shape a graph into ~one well-sized actor per worker for the batched
// threaded runtime (the `coarsen` pass core): selective-fuse fine-grained
// graphs down to an actor budget (max_actors, defaulting to 4 * threads),
// coarsen maximal stateless regions, then fiss only leaves whose modeled
// work share clears a quarter of a worker (0.25 / threads) -- tiny actors
// never own a partition slice, so fissing them would only buy splitter /
// joiner traffic and ring crossings.  Returns a new tree; identity-shaped
// clone when threads <= 1.
ir::NodeP coarsen_for_threads(const ir::NodeP& root, int threads,
                              int max_actors = 0);

// Shape a graph for the threaded runtime (sched::ThreadedExecutor): expose
// enough data parallelism for `threads` workers via data_parallelize.  If
// `max_actors` > 0, first apply selective_fusion down to that many leaves so
// fine-grained graphs do not drown the workers in per-actor overhead.  The
// executor itself never transforms the graph -- callers opt in with this.
//
// Deprecated shim for whole-program compilation: the `threaded-prep` pass
// (opt/pass_manager.h) wraps this; opt::compile() with a pass spec
// containing it produces a CompiledProgram the ThreadedExecutor consumes
// directly, with per-pass stats recorded.
[[deprecated(
    "use opt::compile() with a pass spec containing threaded-prep; call this "
    "only for a bare graph-to-graph rewrite")]]
ir::NodeP prepare_threaded(const ir::NodeP& root, int threads,
                           int max_actors = 0);

}  // namespace sit::parallel
