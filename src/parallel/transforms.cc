#include "parallel/transforms.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>

#include "linear/cost.h"
#include "linear/extract.h"
#include "runtime/compile.h"
#include "runtime/interp.h"
#include "runtime/vm.h"
#include "sched/exec.h"

namespace sit::parallel {

using ir::Node;
using ir::NodeP;

bool leaf_stateful(const Node& leaf) {
  if (leaf.kind == Node::Kind::Filter) {
    return linear::writes_state(leaf.filter);
  }
  if (leaf.kind == Node::Kind::Native) {
    return leaf.native.stateful;
  }
  return false;
}

bool subtree_stateful(const NodeP& node) {
  bool s = false;
  ir::visit(node, [&](const NodeP& n) {
    if (n->is_leaf() && leaf_stateful(*n)) s = true;
    if (n->kind == Node::Kind::FeedbackLoop) s = true;  // loop state
  });
  return s;
}

bool subtree_peeks(const NodeP& node) {
  bool p = false;
  ir::visit(node, [&](const NodeP& n) {
    if (n->kind == Node::Kind::Filter && n->filter.does_peek()) p = true;
    if (n->kind == Node::Kind::Native && n->native.does_peek()) p = true;
  });
  return p;
}

// ---- fusion -------------------------------------------------------------------

namespace {

// Per-instance state of a fused filter: a private executor over a clone of
// the fused subtree.  The first firing also absorbs the subtree's
// initialization epoch (which needs `init_in` extra input items, declared as
// the fused filter's extra peek window).
class FusedState final : public ir::NativeState {
 public:
  explicit FusedState(NodeP inner) : inner_(std::move(inner)) { reset(); }

  FusedState(const FusedState& o) : inner_(o.inner_) { reset(); }

  std::unique_ptr<ir::NativeState> clone() const override {
    return std::make_unique<FusedState>(*this);
  }

  void reset() {
    ex_ = std::make_unique<sched::Executor>(ir::clone(inner_));
    started_ = false;
  }

  NodeP inner_;
  std::unique_ptr<sched::Executor> ex_;
  bool started_{false};
};

}  // namespace

NodeP fuse_subtree(const NodeP& node, const std::string& name) {
  // Schedule the subtree in isolation to learn its external rates.
  const runtime::FlatGraph g = runtime::flatten(node);
  const sched::Schedule s = sched::make_schedule(g);
  const int P = static_cast<int>(s.input_per_steady);
  const int I = static_cast<int>(s.input_for_init);
  const int Q = static_cast<int>(s.output_per_steady);

  double ops = 0.0, flops = 0.0;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    const auto& a = g.actors[i];
    const double reps = static_cast<double>(s.reps[i]);
    if (a.is_filter()) {
      ops += reps * linear::leaf_ops_per_firing(*a.node);
      flops += reps * linear::leaf_flops_per_firing(*a.node);
    } else {
      std::int64_t items = 0;
      for (int r : a.in_rate) items += r;
      for (int r : a.out_rate) items += r;
      ops += reps * static_cast<double>(items);
    }
  }

  const NodeP inner = ir::clone(node);
  ir::NativeFilter nf;
  nf.name = name;
  nf.pop = P;
  nf.peek = P + I;
  nf.push = Q;
  nf.cost_ops = ops;
  nf.cost_flops = flops;
  nf.stateful = subtree_stateful(node) || subtree_peeks(node) || I > 0;
  nf.make_state = [inner]() -> std::unique_ptr<ir::NativeState> {
    return std::make_unique<FusedState>(inner);
  };
  nf.work = [P, I, Q](ir::NativeState* state, ir::InTape& in, ir::OutTape& out) {
    auto* fs = dynamic_cast<FusedState*>(state);
    if (fs == nullptr) throw std::logic_error("fused filter state mismatch");
    std::vector<double> feed;
    if (!fs->started_) {
      feed.reserve(static_cast<std::size_t>(I + P));
      for (int i = 0; i < I + P; ++i) feed.push_back(in.peek_item(i));
      fs->started_ = true;
    } else {
      feed.reserve(static_cast<std::size_t>(P));
      for (int i = 0; i < P; ++i) feed.push_back(in.peek_item(I + i));
    }
    if (P + I > 0 && !feed.empty()) fs->ex_->feed_input(feed);
    const std::vector<double> produced = fs->ex_->run_steady(1);
    if (static_cast<int>(produced.size()) != Q) {
      throw std::runtime_error("fused filter produced unexpected item count");
    }
    for (double v : produced) out.push_item(v);
    in.pop_many(P);
  };
  return ir::make_native(std::move(nf));
}

// ---- fission ------------------------------------------------------------------

namespace {

int leaf_pop(const Node& leaf) {
  return leaf.kind == Node::Kind::Filter ? leaf.filter.pop : leaf.native.pop;
}
int leaf_peek(const Node& leaf) {
  return leaf.kind == Node::Kind::Filter ? leaf.filter.peek : leaf.native.peek;
}
int leaf_push(const Node& leaf) {
  return leaf.kind == Node::Kind::Filter ? leaf.filter.push : leaf.native.push;
}

// Replica state for peeking fission: the underlying filter's own state.
class ReplicaState final : public ir::NativeState {
 public:
  runtime::FilterState fst;
  std::unique_ptr<ir::NativeState> nst;
  // Lazily created per replica instance: the shared compiled program bound
  // to *this* fst.  Never cloned -- a clone's binding must resolve against
  // the clone's own state storage.
  std::unique_ptr<runtime::VmBound> vmb;

  std::unique_ptr<ir::NativeState> clone() const override {
    auto c = std::make_unique<ReplicaState>();
    c->fst = fst;
    if (nst) c->nst = nst->clone();
    return c;
  }
};

// Input adapter presenting a window of the duplicated stream shifted by
// `offset`: the replica computes the original filter's firing at that
// offset, consuming nothing until the wrapper pops the full stride.
class OffsetIn final : public ir::InTape {
 public:
  OffsetIn(ir::InTape& in, int offset) : in_(in), offset_(offset) {}
  double peek_item(int i) override { return in_.peek_item(offset_ + pops_ + i); }
  double pop_item() override { return in_.peek_item(offset_ + pops_++); }

 private:
  ir::InTape& in_;
  int offset_;
  int pops_{0};
};

NodeP make_replica(const NodeP& leaf, int k, int idx) {
  const int pop = leaf_pop(*leaf);
  const int peek = leaf_peek(*leaf);
  const int push = leaf_push(*leaf);
  const NodeP proto = ir::clone(leaf);

  ir::NativeFilter nf;
  nf.name = leaf->name + "_rep" + std::to_string(idx);
  nf.pop = k * pop;
  nf.peek = k * pop + (peek - pop);
  nf.push = push;
  nf.stateful = false;
  nf.cost_ops = linear::leaf_ops_per_firing(*leaf) +
                2.0 * static_cast<double>(k * pop);  // discarding the stride
  nf.cost_flops = linear::leaf_flops_per_firing(*leaf);
  nf.make_state = [proto]() -> std::unique_ptr<ir::NativeState> {
    auto st = std::make_unique<ReplicaState>();
    if (proto->kind == Node::Kind::Filter) {
      st->fst = runtime::Interp::init_state(proto->filter);
    } else if (proto->native.make_state) {
      st->nst = proto->native.make_state();
    }
    return st;
  };
  const int offset = idx * pop;
  const int stride = k * pop;
  // Lower the prototype's work function to bytecode once per replica kind;
  // every firing of every replica instance then skips the tree walk.
  runtime::CompiledFilterP compiled;
  if (proto->kind == Node::Kind::Filter &&
      sched::resolve_engine(sched::Engine::Auto) == sched::Engine::Vm) {
    compiled = runtime::compile_filter(proto->filter);
  }
  nf.work = [proto, compiled, offset, stride](ir::NativeState* state,
                                              ir::InTape& in, ir::OutTape& out) {
    auto* rs = dynamic_cast<ReplicaState*>(state);
    if (rs == nullptr) throw std::logic_error("replica state mismatch");
    OffsetIn shifted(in, offset);
    if (proto->kind == Node::Kind::Filter) {
      if (compiled) {
        if (!rs->vmb) {
          rs->vmb = std::make_unique<runtime::VmBound>(compiled, rs->fst);
        }
        rs->vmb->run_work(shifted, out, nullptr);
      } else {
        runtime::Interp::run_work(proto->filter, rs->fst, shifted, out, nullptr);
      }
    } else {
      proto->native.work(rs->nst.get(), shifted, out);
    }
    in.pop_many(stride);
  };
  return ir::make_native(std::move(nf));
}

}  // namespace

NodeP fiss(const NodeP& leaf, int k) {
  if (!leaf->is_leaf()) throw std::invalid_argument("fiss expects a leaf");
  if (leaf_stateful(*leaf)) {
    throw std::invalid_argument("cannot fiss stateful filter '" + leaf->name + "'");
  }
  if (k < 2) return ir::clone(leaf);
  const int pop = leaf_pop(*leaf);
  const int peek = leaf_peek(*leaf);
  const int push = leaf_push(*leaf);
  if (pop == 0 || push == 0) {
    throw std::invalid_argument("cannot fiss boundary filter '" + leaf->name + "'");
  }

  std::vector<NodeP> replicas;
  replicas.reserve(static_cast<std::size_t>(k));
  if (peek == pop) {
    // Clean round-robin fission.
    for (int i = 0; i < k; ++i) {
      NodeP c = ir::clone(leaf);
      c->name = leaf->name + "_fiss" + std::to_string(i);
      if (c->kind == Node::Kind::Filter) c->filter.name = c->name;
      if (c->kind == Node::Kind::Native) c->native.name = c->name;
      replicas.push_back(std::move(c));
    }
    return ir::make_splitjoin(
        leaf->name + "_fissed",
        ir::roundrobin_split(std::vector<int>(static_cast<std::size_t>(k), pop)),
        ir::roundrobin_join(std::vector<int>(static_cast<std::size_t>(k), push)),
        std::move(replicas));
  }

  // Peeking fission: duplicate the stream, decimate per replica.
  for (int i = 0; i < k; ++i) replicas.push_back(make_replica(leaf, k, i));
  return ir::make_splitjoin(
      leaf->name + "_fissed", ir::duplicate_split(),
      ir::roundrobin_join(std::vector<int>(static_cast<std::size_t>(k), push)),
      std::move(replicas));
}

// ---- coarsening ----------------------------------------------------------------

namespace {

// True if the subtree contains an I/O endpoint (a pure source or sink).
// Coarsening must not absorb endpoints: a fused region containing the sink
// has push == 0 and could never be fissed (and the paper's compiler leaves
// file filters out of fused regions altogether).
bool contains_endpoint(const NodeP& n) {
  bool found = false;
  ir::visit(n, [&](const NodeP& c) {
    if (c->kind == Node::Kind::Filter &&
        (c->filter.is_source() || c->filter.is_sink())) {
      found = true;
    }
    if (c->kind == Node::Kind::Native &&
        (c->native.pop == 0 || c->native.push == 0)) {
      found = true;
    }
  });
  return found;
}

bool fusable_stateless(const NodeP& n) {
  return !subtree_stateful(n) && !subtree_peeks(n) && !contains_endpoint(n);
}

void collect_pipeline_children(const NodeP& n, std::vector<NodeP>& out) {
  if (n->kind == Node::Kind::Pipeline) {
    for (const auto& c : n->children) collect_pipeline_children(c, out);
  } else {
    out.push_back(n);
  }
}

int fuse_counter = 0;

}  // namespace

NodeP coarsen_stateless(const NodeP& root) {
  switch (root->kind) {
    case Node::Kind::Filter:
    case Node::Kind::Native:
      return root;
    case Node::Kind::SplitJoin: {
      if (fusable_stateless(root) && root->split.kind != ir::SJKind::Null &&
          root->join.kind != ir::SJKind::Null) {
        return fuse_subtree(root, root->name + "_coarse" + std::to_string(fuse_counter++));
      }
      std::vector<NodeP> kids;
      for (const auto& c : root->children) kids.push_back(coarsen_stateless(c));
      return ir::make_splitjoin(root->name, root->split, root->join, kids);
    }
    case Node::Kind::FeedbackLoop:
      return ir::make_feedback(root->name, root->join,
                               coarsen_stateless(root->children[0]), root->split,
                               coarsen_stateless(root->children[1]), root->delay,
                               root->init_path);
    case Node::Kind::Pipeline: {
      std::vector<NodeP> kids;
      for (const auto& c : root->children) {
        std::vector<NodeP> flat;
        collect_pipeline_children(coarsen_stateless(c), flat);
        for (auto& f : flat) kids.push_back(std::move(f));
      }
      // Fuse maximal stateless non-peeking runs.
      std::vector<NodeP> out;
      std::size_t i = 0;
      while (i < kids.size()) {
        if (!fusable_stateless(kids[i])) {
          out.push_back(kids[i]);
          ++i;
          continue;
        }
        std::size_t j = i;
        while (j + 1 < kids.size() && fusable_stateless(kids[j + 1])) ++j;
        if (j > i) {
          std::vector<NodeP> run(kids.begin() + static_cast<long>(i),
                                 kids.begin() + static_cast<long>(j + 1));
          out.push_back(fuse_subtree(
              ir::make_pipeline(root->name + "_run", run),
              root->name + "_coarse" + std::to_string(fuse_counter++)));
        } else {
          out.push_back(kids[i]);
        }
        i = j + 1;
      }
      if (out.size() == 1) return out[0];
      return ir::make_pipeline(root->name, out);
    }
  }
  throw std::logic_error("unreachable");
}

// ---- selective fusion ------------------------------------------------------------

namespace {

// Work (cycles) of each leaf per *global* steady state of `root`.  Weights
// come from the calibrated cost model when one is loaded (matched by flat
// actor name, static estimate as fallback), so the fusion ordering and the
// fission gate below both follow measured costs once a profile is active.
std::map<const Node*, double> global_leaf_work(const NodeP& root) {
  const runtime::FlatGraph g = runtime::flatten(root);
  const sched::Schedule s = sched::make_schedule(g);
  std::map<const Node*, double> w;
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].is_filter()) {
      w[g.actors[i].node] =
          static_cast<double>(s.reps[i]) *
          linear::calibrated_ops_per_firing(*g.actors[i].node,
                                            g.actors[i].name);
    }
  }
  return w;
}

double subtree_work(const NodeP& n, const std::map<const Node*, double>& w) {
  double t = 0.0;
  ir::visit(n, [&](const NodeP& c) {
    if (c->is_leaf()) {
      auto it = w.find(c.get());
      if (it != w.end()) t += it->second;
    }
  });
  return t;
}

// One greedy fusion step: fuse the cheapest adjacent pipeline pair or the
// cheapest whole splitjoin.  Returns false when no legal move exists.
bool fuse_cheapest(NodeP& root) {
  const auto work = global_leaf_work(root);

  struct Move {
    enum class Kind { None, PipelinePair, WholeSplitJoin, BranchPair };
    Kind kind{Kind::None};
    Node* node{nullptr};
    std::size_t index{0};  // pair start (pipeline children or SJ branches)
    double cost{std::numeric_limits<double>::max()};
  };
  Move best;

  std::function<void(NodeP&)> scan = [&](NodeP& n) {
    if (n->kind == Node::Kind::Pipeline) {
      for (std::size_t i = 0; i + 1 < n->children.size(); ++i) {
        const double c =
            subtree_work(n->children[i], work) + subtree_work(n->children[i + 1], work);
        if (c < best.cost) {
          best = Move{Move::Kind::PipelinePair, n.get(), i, c};
        }
      }
    }
    if (n->kind == Node::Kind::SplitJoin && n->split.kind != ir::SJKind::Null &&
        n->join.kind != ir::SJKind::Null) {
      if (ir::count_filters(n) > 1) {
        const double c = subtree_work(n, work);
        if (c < best.cost) {
          best = Move{Move::Kind::WholeSplitJoin, n.get(), 0, c};
        }
      }
      // Merging two adjacent branches (the space partitioner's main move:
      // it groups branches rather than collapsing the whole construct).
      if (n->children.size() > 2) {
        for (std::size_t i = 0; i + 1 < n->children.size(); ++i) {
          const double c = subtree_work(n->children[i], work) +
                           subtree_work(n->children[i + 1], work);
          if (c < best.cost) {
            best = Move{Move::Kind::BranchPair, n.get(), i, c};
          }
        }
      }
    }
    for (auto& c : n->children) scan(c);
  };
  scan(root);

  if (best.kind == Move::Kind::None) return false;

  std::function<bool(NodeP&)> apply = [&](NodeP& n) -> bool {
    if (n.get() == best.node) {
      auto& ch = n->children;
      switch (best.kind) {
        case Move::Kind::WholeSplitJoin:
          n = fuse_subtree(n, n->name + "_sf" + std::to_string(fuse_counter++));
          break;
        case Move::Kind::PipelinePair: {
          NodeP pair = ir::make_pipeline(n->name + "_pair",
                                         {ch[best.index], ch[best.index + 1]});
          NodeP fused =
              fuse_subtree(pair, n->name + "_sf" + std::to_string(fuse_counter++));
          ch[best.index] = fused;
          ch.erase(ch.begin() + static_cast<long>(best.index) + 1);
          if (ch.size() == 1 && n->children[0]->is_leaf()) n = ch[0];
          break;
        }
        case Move::Kind::BranchPair: {
          // Group branches i and i+1 into a two-branch sub-splitjoin, fuse
          // it, and merge the weights in the parent.
          const std::size_t i = best.index;
          ir::Splitter sub_split = n->split;
          ir::Joiner sub_join = n->join;
          if (n->split.kind == ir::SJKind::RoundRobin) {
            sub_split.weights = {n->split.weights[i], n->split.weights[i + 1]};
          }
          sub_join.weights = {n->join.weights[i], n->join.weights[i + 1]};
          NodeP pair = ir::make_splitjoin(n->name + "_grp", sub_split, sub_join,
                                          {ch[i], ch[i + 1]});
          NodeP fused =
              fuse_subtree(pair, n->name + "_sf" + std::to_string(fuse_counter++));
          ch[i] = fused;
          ch.erase(ch.begin() + static_cast<long>(i) + 1);
          if (n->split.kind == ir::SJKind::RoundRobin) {
            n->split.weights[i] += n->split.weights[i + 1];
            n->split.weights.erase(n->split.weights.begin() + static_cast<long>(i) + 1);
          }
          n->join.weights[i] += n->join.weights[i + 1];
          n->join.weights.erase(n->join.weights.begin() + static_cast<long>(i) + 1);
          break;
        }
        case Move::Kind::None:
          break;
      }
      return true;
    }
    for (auto& c : n->children) {
      if (apply(c)) return true;
    }
    return false;
  };
  apply(root);
  return true;
}

}  // namespace

NodeP selective_fusion(const NodeP& root, int target_actors) {
  NodeP g = ir::clone(root);
  while (ir::count_filters(g) > target_actors) {
    if (!fuse_cheapest(g)) break;
  }
  return g;
}

// ---- data parallelism -------------------------------------------------------------

namespace {

NodeP fiss_leaves(const NodeP& n, int cores, double min_share, double total_work,
                  const std::map<const Node*, double>& work, bool coarse) {
  if (n->is_leaf()) {
    if (leaf_stateful(*n)) return n;
    if (leaf_pop(*n) == 0 || leaf_push(*n) == 0) return n;
    const auto it = work.find(n.get());
    const double share = (it != work.end() && total_work > 0)
                             ? it->second / total_work
                             : 0.0;
    if (coarse && share < min_share) return n;  // not worth the sync
    return fiss(n, cores);
  }
  if (n->kind == Node::Kind::Pipeline) {
    std::vector<NodeP> kids;
    for (const auto& c : n->children) {
      kids.push_back(fiss_leaves(c, cores, min_share, total_work, work, coarse));
    }
    return ir::make_pipeline(n->name, kids);
  }
  if (n->kind == Node::Kind::SplitJoin) {
    std::vector<NodeP> kids;
    for (const auto& c : n->children) {
      kids.push_back(fiss_leaves(c, cores, min_share, total_work, work, coarse));
    }
    return ir::make_splitjoin(n->name, n->split, n->join, kids);
  }
  // Feedback loops keep their structure (their body may still fiss inside).
  return ir::make_feedback(
      n->name, n->join,
      fiss_leaves(n->children[0], cores, min_share, total_work, work, coarse),
      n->split,
      fiss_leaves(n->children[1], cores, min_share, total_work, work, coarse),
      n->delay, n->init_path);
}

}  // namespace

NodeP data_parallelize(const NodeP& root, int cores, double min_work_share) {
  NodeP coarse = coarsen_stateless(ir::clone(root));
  const auto work = global_leaf_work(coarse);
  double total = 0.0;
  for (const auto& [node, w] : work) total += w;
  return fiss_leaves(coarse, cores, min_work_share, total, work, true);
}

NodeP fine_grained_parallelize(const NodeP& root, int cores) {
  NodeP g = ir::clone(root);
  const auto work = global_leaf_work(g);
  double total = 0.0;
  for (const auto& [node, w] : work) total += w;
  return fiss_leaves(g, cores, 0.0, total, work, false);
}

NodeP coarsen_for_threads(const NodeP& root, int threads, int max_actors) {
  if (threads <= 1) return ir::clone(root);
  NodeP g = ir::clone(root);
  // Actor budget first: a fine-grained graph (hundreds of leaves) would hand
  // the partitioner hundreds of ring crossings; a few actors per worker
  // keeps LPT flexible while the affinity pass still glues feathers.
  const int budget = max_actors > 0 ? max_actors : 4 * threads;
  if (ir::count_filters(g) > budget) g = selective_fusion(g, budget);
  // Coarsen-then-fiss with the cost gate at a quarter worker of modeled
  // work: anything lighter rides along with a neighbor instead of owning a
  // fission replica.
  return data_parallelize(g, threads, 0.25 / static_cast<double>(threads));
}

NodeP prepare_threaded(const NodeP& root, int threads, int max_actors) {
  if (threads <= 1) return ir::clone(root);
  NodeP g = ir::clone(root);
  if (max_actors > 0 && ir::count_filters(g) > max_actors) {
    g = selective_fusion(g, max_actors);
  }
  return data_parallelize(g, threads);
}

}  // namespace sit::parallel
