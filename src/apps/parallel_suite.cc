// The 12 benchmarks of the paper's parallelization evaluation.  Topology,
// rates, statefulness and peeking mirror the descriptions in the paper (and
// the published StreamIt versions); arithmetic detail is faithful where it
// affects work distribution.

#include <cmath>
#include <numbers>

#include "apps/apps.h"
#include "apps/common.h"

namespace sit::apps {

using namespace sit::ir;
using namespace sit::ir::dsl;

// ---- BitonicSort (N = 8) -------------------------------------------------------

namespace {

NodeP compare_exchange(const std::string& name, bool ascending) {
  // pop 2, push (min, max) or (max, min): stateless, nonlinear.
  if (ascending) {
    return filter(name)
        .rates(2, 2, 2)
        .work(seq({let("a", pop_()), let("b", pop_()),
                   push_(min_(v("a"), v("b"))), push_(max_(v("a"), v("b")))}))
        .node();
  }
  return filter(name)
      .rates(2, 2, 2)
      .work(seq({let("a", pop_()), let("b", pop_()), push_(max_(v("a"), v("b"))),
                 push_(min_(v("a"), v("b")))}))
      .node();
}

// One sorting-network column: pairs (i, i|j) for all i with (i & j) == 0,
// ascending iff (i & k) == 0.  Realized as permute -> 4 parallel CE filters
// -> inverse permute, which is exactly how the StreamIt version shuffles.
NodeP bitonic_column(const std::string& name, int n, int k, int j) {
  std::vector<int> fwd;  // window index read for output position p
  std::vector<bool> dirs;
  for (int i = 0; i < n; ++i) {
    if ((i & j) == 0 && (i | j) < n) {
      fwd.push_back(i);
      fwd.push_back(i | j);
      dirs.push_back((i & k) == 0);
    }
  }
  // Inverse: where did element x go in the paired layout?
  std::vector<int> inv(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) inv[static_cast<std::size_t>(fwd[static_cast<std::size_t>(p)])] = p;

  std::vector<NodeP> ces;
  std::vector<int> weights;
  for (std::size_t t = 0; t < dirs.size(); ++t) {
    ces.push_back(compare_exchange(name + "_ce" + std::to_string(t), dirs[t]));
    weights.push_back(2);
  }
  return make_pipeline(
      name, {permute(name + "_shuffle", fwd),
             make_splitjoin(name + "_ces", roundrobin_split(weights),
                            roundrobin_join(weights), ces),
             permute(name + "_unshuffle", inv)});
}

}  // namespace

NodeP make_bitonic_sort() {
  const int n = 8;
  std::vector<NodeP> stages{rand_source("src")};
  int col = 0;
  for (int k = 2; k <= n; k <<= 1) {
    for (int j = k / 2; j >= 1; j >>= 1) {
      stages.push_back(bitonic_column("col" + std::to_string(col++), n, k, j));
    }
  }
  stages.push_back(null_sink("snk"));
  return make_pipeline("BitonicSort", stages);
}

// ---- ChannelVocoder -------------------------------------------------------------

NodeP make_channel_vocoder() {
  // A pitch detector plus 16 envelope followers over band-pass filters; all
  // branches peek heavily (the paper flags ChannelVocoder's many peeking
  // filters and high comp/comm ratio).
  auto rectifier = [](const std::string& nm) {
    return filter(nm).rates(1, 1, 1).work(seq({push_(abs_(pop_()))})).node();
  };
  std::vector<NodeP> branches;
  std::vector<int> jw;
  branches.push_back(make_pipeline(
      "pitch", {lowpass_fir("pitch_lp", 64, 0.05), rectifier("pitch_rect"),
                lowpass_fir("pitch_env", 32, 0.02)}));
  jw.push_back(1);
  for (int b = 0; b < 16; ++b) {
    const double lo = 0.02 + 0.028 * b;
    branches.push_back(make_pipeline(
        "band" + std::to_string(b),
        {bandpass_fir("bp" + std::to_string(b), 64, lo, lo + 0.028),
         rectifier("rect" + std::to_string(b)),
         lowpass_fir("env" + std::to_string(b), 16, 0.05)}));
    jw.push_back(1);
  }
  return make_pipeline("ChannelVocoder",
                       {rand_source("src"),
                        make_splitjoin("analysis", duplicate_split(),
                                       roundrobin_join(jw), branches),
                        null_sink("snk", 17)});
}

// ---- DCT (16x16) -----------------------------------------------------------------

namespace {

std::vector<double> dct_matrix(int n) {
  std::vector<double> m(static_cast<std::size_t>(n * n));
  const double pi = std::numbers::pi;
  for (int r = 0; r < n; ++r) {
    const double s = r == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);
    for (int c = 0; c < n; ++c) {
      m[static_cast<std::size_t>(r * n + c)] =
          s * std::cos((2 * c + 1) * r * pi / (2.0 * n));
    }
  }
  return m;
}

std::vector<int> transpose_perm(int n) {
  std::vector<int> p(static_cast<std::size_t>(n * n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      p[static_cast<std::size_t>(r * n + c)] = c * n + r;
    }
  }
  return p;
}

}  // namespace

NodeP make_dct() {
  // Separable 16x16 reference DCT: row transform, transpose, column
  // transform.  Fully linear; the row/column transforms dominate the work
  // (the paper notes DCT's bottleneck filter does >6x the work of others).
  const int n = 16;
  return make_pipeline(
      "DCT", {rand_source("src"), matmul("rowDCT", n, dct_matrix(n)),
              permute("transpose", transpose_perm(n)),
              matmul("colDCT", n, dct_matrix(n)), gain("scale", 0.25),
              null_sink("snk")});
}

// ---- DES --------------------------------------------------------------------------

namespace {

E mask32(E x) { return x & ci(0xFFFFFFFFLL); }

NodeP des_round(const std::string& name, std::int64_t key) {
  // Feistel round on (L, R) pairs: L' = R, R' = L ^ f(R, key).  The round
  // function uses rotation, an S-box lookup (data-dependent array index:
  // stateless but decidedly nonlinear), and key mixing.
  std::vector<ir::Value> sbox;
  for (int i = 0; i < 16; ++i) {
    sbox.emplace_back(static_cast<std::int64_t>((7 * i + 3) % 16));
  }
  return filter(name)
      .rates(2, 2, 2)
      .array_init("sbox", sbox)
      .work(seq({let("L", to_int(pop_())), let("R", to_int(pop_())),
                 let("rot", mask32((v("R") << 1) | (v("R") >> 31))),
                 let("mix", v("rot") ^ ci(key)),
                 let("s", at("sbox", v("mix") & ci(15))),
                 let("f", mask32(v("mix") + (to_int(v("s")) << 4))),
                 push_(to_float(v("R"))), push_(to_float(v("L") ^ v("f")))}))
      .node();
}

NodeP pair_swap(const std::string& name) {
  return permute(name, {1, 0});
}

NodeP int_source(const std::string& name) {
  // Pushes pseudo-random 32-bit words (two per firing: an L/R pair).
  std::vector<StmtP> body;
  for (int i = 0; i < 2; ++i) {
    body.push_back(let("seed", (v("seed") * ci(1103515245) + ci(12345)) &
                                   ci((1LL << 31) - 1)));
    body.push_back(push_(to_float(v("seed"))));
  }
  return filter(name).rates(0, 0, 2).iscalar("seed", 7).work(seq(body)).node();
}

}  // namespace

NodeP make_des() {
  std::vector<NodeP> stages{int_source("src"), pair_swap("IP")};
  std::int64_t key = 0x12345;
  for (int r = 0; r < 16; ++r) {
    stages.push_back(des_round("round" + std::to_string(r), key));
    key = (key * 31 + 17) & 0xFFFFFFFF;
  }
  stages.push_back(pair_swap("FP"));
  stages.push_back(null_sink("snk", 2));
  return make_pipeline("DES", stages);
}

// ---- FFT (N = 64, the paper's reorder + butterfly construction) --------------------

namespace {

NodeP weight_stage(const std::string& name, int ni, int w) {
  // Multiply a block of ni items by per-position twiddle weights (linear).
  std::vector<ir::Value> ws;
  for (int i = 0; i < ni; ++i) {
    ws.emplace_back(std::cos(2.0 * std::numbers::pi * i / w));
  }
  std::vector<StmtP> body;
  for (int i = 0; i < ni; ++i) {
    body.push_back(push_(peek_(i) * at("w", i)));
  }
  body.push_back(discard(ni));
  return filter(name).rates(ni, ni, ni).array_init("w", ws).work(seq(body)).node();
}

NodeP butterfly(const std::string& name, int ni, int w) {
  // First splitjoin: weights on one arm, identity on the other.
  auto sj1 = make_splitjoin(
      name + "_w", roundrobin_split({ni, ni}), roundrobin_join({1, 1}),
      {weight_stage(name + "_tw", ni, w), dsl::identity(name + "_id")});
  // Second: duplicate into (a - b) and (a + b) arms.
  auto sub = filter(name + "_sub").rates(2, 2, 1).work(seq({let("a", pop_()), push_(v("a") - pop_())})).node();
  auto add = filter(name + "_add").rates(2, 2, 1).work(seq({let("a", pop_()), push_(v("a") + pop_())})).node();
  auto sj2 = make_splitjoin(name + "_bf", duplicate_split(),
                            roundrobin_join({ni, ni}), {sub, add});
  return make_pipeline(name, {sj1, sj2});
}

NodeP fft_reorder(int n) {
  // The paper's two-level reordering splitjoin.
  std::vector<NodeP> inner;
  for (int i = 0; i < 2; ++i) {
    inner.push_back(make_splitjoin(
        "reorder" + std::to_string(i), roundrobin_split({1, 1}),
        roundrobin_join({n / 4, n / 4}),
        {dsl::identity("rid" + std::to_string(2 * i)),
         dsl::identity("rid" + std::to_string(2 * i + 1))}));
  }
  return make_splitjoin("bitrev", roundrobin_split({n / 2, n / 2}),
                        roundrobin_join({1, 1}), inner);
}

}  // namespace

NodeP make_fft() {
  const int n = 64;
  std::vector<NodeP> stages{rand_source("src"), fft_reorder(n)};
  for (int i = 2; i < n; i *= 2) {
    stages.push_back(butterfly("bfly" + std::to_string(i), i, n));
  }
  stages.push_back(null_sink("snk"));
  return make_pipeline("FFT", stages);
}

// ---- FilterBank ---------------------------------------------------------------------

NodeP make_filter_bank() {
  // Eight-band analysis/synthesis: band-pass, decimate, interpolate,
  // reconstruct, then sum the bands.  Entirely linear; heavy peeking.
  const int bands = 8;
  std::vector<NodeP> branches;
  std::vector<int> jw;
  for (int b = 0; b < bands; ++b) {
    const double lo = 0.5 * b / bands;
    branches.push_back(make_pipeline(
        "band" + std::to_string(b),
        {bandpass_fir("analysis" + std::to_string(b), 64, lo, lo + 0.5 / bands),
         downsample("dec" + std::to_string(b), bands),
         upsample("interp" + std::to_string(b), bands),
         lowpass_fir("synthesis" + std::to_string(b), 32, 0.5 / bands)}));
    jw.push_back(1);
  }
  return make_pipeline(
      "FilterBank",
      {rand_source("src"),
       make_splitjoin("bank", duplicate_split(), roundrobin_join(jw), branches),
       adder("combine", bands), null_sink("snk")});
}

// ---- FMRadio ---------------------------------------------------------------------

NodeP make_fm_radio() {
  // Low-pass front end, FM demodulator (nonlinear), 10-band equalizer of
  // band-pass pairs, and a combiner -- the paper's running example.
  auto demod = filter("demod")
                   .rates(2, 1, 1)
                   .work(seq({push_(peek_(0) * peek_(1) * c(2.5)), discard(1)}))
                   .node();
  const int bands = 10;
  std::vector<NodeP> eq;
  std::vector<int> jw;
  for (int b = 0; b < bands; ++b) {
    const double lo = 0.01 + 0.045 * b;
    eq.push_back(make_pipeline(
        "eqband" + std::to_string(b),
        {bandpass_fir("eqbp" + std::to_string(b), 64, lo, lo + 0.045),
         gain("eqgain" + std::to_string(b), 1.0 + 0.1 * b)}));
    jw.push_back(1);
  }
  return make_pipeline(
      "FMRadio",
      {rand_source("src"), lowpass_fir("rf_lp", 64, 0.3), demod,
       make_splitjoin("equalizer", duplicate_split(), roundrobin_join(jw), eq),
       adder("eqsum", bands), null_sink("snk")});
}

// ---- Serpent ---------------------------------------------------------------------

namespace {

NodeP serpent_round(const std::string& name, std::int64_t key) {
  // Operates on 4-word blocks: key mix, S-box substitution (nonlinear),
  // linear mixing by rotations and xors.
  std::vector<ir::Value> sbox;
  for (int i = 0; i < 16; ++i) {
    sbox.emplace_back(static_cast<std::int64_t>((11 * i + 5) % 16));
  }
  std::vector<StmtP> body;
  for (int i = 0; i < 4; ++i) {
    body.push_back(let("x" + std::to_string(i),
                       to_int(pop_()) ^ ci((key >> (i * 8)) & 0xFF)));
  }
  for (int i = 0; i < 4; ++i) {
    const std::string x = "x" + std::to_string(i);
    body.push_back(let(x, (to_int(at("sbox", v(x) & ci(15))) << 4) |
                              ((v(x) >> 4) & ci(0x0FFFFFFF))));
  }
  // Linear mix.
  body.push_back(let("x0", mask32(v("x0") ^ (v("x1") << 3) ^ v("x2"))));
  body.push_back(let("x2", mask32(v("x2") ^ (v("x3") << 7) ^ v("x1"))));
  for (int i = 0; i < 4; ++i) {
    body.push_back(push_(to_float(v("x" + std::to_string(i)))));
  }
  return filter(name).rates(4, 4, 4).array_init("sbox", sbox).work(seq(body)).node();
}

NodeP serpent_source(const std::string& name) {
  std::vector<StmtP> body;
  for (int i = 0; i < 4; ++i) {
    body.push_back(let("seed", (v("seed") * ci(1103515245) + ci(12345)) &
                                   ci((1LL << 31) - 1)));
    body.push_back(push_(to_float(v("seed"))));
  }
  return filter(name).rates(0, 0, 4).iscalar("seed", 3).work(seq(body)).node();
}

}  // namespace

NodeP make_serpent() {
  std::vector<NodeP> stages{serpent_source("src"), permute("IP", {2, 0, 3, 1})};
  std::int64_t key = 0x9E3779B9;
  for (int r = 0; r < 16; ++r) {
    stages.push_back(serpent_round("round" + std::to_string(r), key));
    stages.push_back(permute("mix" + std::to_string(r), {1, 2, 3, 0}));
    key = (key * 1103515245 + 12345) & 0x7FFFFFFF;
  }
  stages.push_back(null_sink("snk", 4));
  return make_pipeline("Serpent", stages);
}

// ---- TDE (time-delay equalization) ---------------------------------------------------

NodeP make_tde() {
  // Transform, per-bin equalization, inverse transform: a long, almost
  // entirely linear pipeline with little task parallelism (the shape the
  // paper says favors the space-multiplexed baseline).
  const int n = 32;
  std::vector<NodeP> stages{rand_source("src"), fft_reorder(n)};
  for (int i = 2; i < n; i *= 2) {
    stages.push_back(butterfly("fwd" + std::to_string(i), i, n));
  }
  // Per-bin equalizer weights (linear pointwise scale).
  std::vector<ir::Value> eq;
  for (int i = 0; i < n; ++i) eq.emplace_back(1.0 / (1.0 + 0.05 * i));
  std::vector<StmtP> eqbody;
  for (int i = 0; i < n; ++i) eqbody.push_back(push_(peek_(i) * at("w", i)));
  eqbody.push_back(discard(n));
  stages.push_back(filter("equalize").rates(n, n, n).array_init("w", eq).work(seq(eqbody)).node());
  for (int i = 2; i < n; i *= 2) {
    stages.push_back(butterfly("inv" + std::to_string(i), i, n));
  }
  stages.push_back(null_sink("snk"));
  return make_pipeline("TDE", stages);
}

// ---- MPEG2Decoder (subset) -------------------------------------------------------------

NodeP make_mpeg2_subset() {
  // Motion-vector decoding (small, stateful prediction) alongside block
  // decoding (dequantize + 8x8 IDCT + saturate); roughly one third of a full
  // decoder, as in the paper.
  const int n = 8;
  auto mv_decode = filter("mv_pred")
                       .rates(2, 2, 2)
                       .scalar("predx", ir::Value(0.0))
                       .scalar("predy", ir::Value(0.0))
                       .work(seq({let("predx", v("predx") * c(0.5) + pop_()),
                                  let("predy", v("predy") * c(0.5) + pop_()),
                                  push_(v("predx")), push_(v("predy"))}))
                       .node();
  auto saturate = filter("saturate")
                      .rates(1, 1, 1)
                      .work(seq({push_(min_(max_(pop_(), c(-255.0)), c(255.0)))}))
                      .node();
  auto block_branch = make_pipeline(
      "block_decode",
      {gain("dequant", 0.7), matmul("idct_row", n, dct_matrix(n)),
       permute("idct_t", transpose_perm(n)), matmul("idct_col", n, dct_matrix(n)),
       saturate});
  auto recombine = filter("recon")
                       .rates(33, 33, 32)
                       .work(seq({let("mv", peek_(0)),
                                  for_("i", 1, 33, push_(peek_(v("i")) + v("mv") * c(0.01))),
                                  discard(33)}))
                       .node();
  return make_pipeline(
      "MPEG2Decoder",
      {rand_source("src"),
       make_splitjoin("demux", roundrobin_split({2, 64}),
                      roundrobin_join({2, 64}), {mv_decode, block_branch}),
       recombine, null_sink("snk", 32)});
}

// ---- Vocoder ------------------------------------------------------------------------

NodeP make_vocoder() {
  // Phase-vocoder-style: 8 linear analysis bands, rectification, then a
  // stateful AGC/smoother chain (the ~17% stateful work the paper reports).
  const int bands = 8;
  std::vector<NodeP> branches;
  std::vector<int> jw;
  for (int b = 0; b < bands; ++b) {
    const double lo = 0.5 * b / bands;
    branches.push_back(
        bandpass_fir("vband" + std::to_string(b), 32, lo, lo + 0.5 / bands));
    jw.push_back(1);
  }
  auto rectify = filter("rectify").rates(1, 1, 1).work(seq({push_(abs_(pop_()))})).node();
  auto agc = filter("agc")
                 .rates(1, 1, 1)
                 .scalar("env", ir::Value(0.1))
                 .work(seq({let("x", pop_()),
                            let("env", v("env") * c(0.95) + v("x") * c(0.05)),
                            push_(v("x") / (v("env") + c(0.01)))}))
                 .node();
  auto smooth = filter("smooth")
                    .rates(1, 1, 1)
                    .scalar("s", ir::Value(0.0))
                    .work(seq({let("s", v("s") * c(0.7) + pop_() * c(0.3)),
                               push_(v("s"))}))
                    .node();
  return make_pipeline(
      "Vocoder",
      {rand_source("src"),
       make_splitjoin("vbank", duplicate_split(), roundrobin_join(jw), branches),
       adder("vsum", bands), rectify, agc, smooth,
       lowpass_fir("vout", 32, 0.4), null_sink("snk")});
}

// ---- Radar (beamformer) ----------------------------------------------------------------

namespace {

NodeP stateful_decimating_fir(const std::string& name, int taps, int dec) {
  // The PCA radar app's FIRs keep an explicit delay line, which makes them
  // stateful -- precisely why the paper says data parallelism is paralyzed
  // on Radar.  pop `dec`, push 1.
  std::vector<StmtP> shift{
      // Slide the delay line by `dec` and insert the new samples.
      for_("i", 0, taps - dec,
           seq({set_at("dl", v("i"), at("dl", v("i") + dec))})),
      for_("i", 0, dec,
           seq({set_at("dl", taps - dec + v("i"), peek_(v("i")))})),
      let("s", c(0.0)),
      for_("i", 0, taps,
           let("s", v("s") + at("dl", v("i")) * at("h", v("i")))),
      push_(v("s")),
      discard(dec)};
  const double pi = std::numbers::pi;
  StmtP init = for_("i", 0, taps,
                    seq({set_at("h", v("i"),
                                sin_(to_float(v("i")) * c(0.3)) /
                                    (to_float(v("i")) + c(1.0)) * c(2.0 / pi))}));
  return filter(name)
      .rates(dec, dec, 1)
      .array("dl", taps)
      .array("h", taps)
      .init(init)
      .work(seq(shift))
      .node();
}

}  // namespace

NodeP make_radar() {
  const int channels = 12;
  const int beams = 4;
  std::vector<NodeP> chans;
  std::vector<int> sw, jw;
  for (int c0 = 0; c0 < channels; ++c0) {
    chans.push_back(make_pipeline(
        "chan" + std::to_string(c0),
        {stateful_decimating_fir("cfir" + std::to_string(c0), 32, 2),
         stateful_decimating_fir("cfir2_" + std::to_string(c0), 16, 1)}));
    sw.push_back(2);
    jw.push_back(1);
  }
  auto front = make_splitjoin("channels", roundrobin_split(sw),
                              roundrobin_join(jw), chans);
  // Beamforming: each beam takes a weighted sum of the 12 channel samples.
  std::vector<NodeP> beamers;
  std::vector<int> bw;
  for (int b = 0; b < beams; ++b) {
    std::vector<double> w(channels);
    for (int c0 = 0; c0 < channels; ++c0) {
      w[static_cast<std::size_t>(c0)] = std::cos(0.3 * (b + 1) * c0);
    }
    std::vector<ir::Value> wi;
    for (double x : w) wi.emplace_back(x);
    std::vector<StmtP> body{let("s", c(0.0))};
    body.push_back(for_("i", 0, channels,
                        let("s", v("s") + peek_(v("i")) * at("w", v("i")))));
    body.push_back(push_(v("s") * v("s")));  // power detect (nonlinear)
    body.push_back(discard(channels));
    beamers.push_back(filter("beam" + std::to_string(b))
                          .rates(channels, channels, 1)
                          .array_init("w", wi)
                          .work(seq(body))
                          .node());
    bw.push_back(1);
  }
  auto beamform = make_splitjoin("beams", duplicate_split(), roundrobin_join(bw),
                                 beamers);
  return make_pipeline("Radar", {rand_source("src"), front, beamform,
                                 null_sink("snk", beams)});
}

}  // namespace sit::apps
