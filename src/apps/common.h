#pragma once
// Shared building blocks for the benchmark suite: sources, sinks, FIR
// filters, resamplers, adders, permutations.  All are expressed in the work
// AST so every compiler analysis can see them (a FIR built here is exactly
// what the linear extractor is supposed to detect).

#include <string>
#include <vector>

#include "ir/dsl.h"
#include "ir/graph.h"

namespace sit::apps {

// Deterministic pseudo-random source (stateful, like a FileReader feeding
// the chip).  Pushes `push` items per firing in [-0.5, 0.5].
ir::NodeP rand_source(const std::string& name, int push = 1);

// Discards `pop` items per firing (the FileWriter stand-in).
ir::NodeP null_sink(const std::string& name, int pop = 1);

// N-tap FIR with coefficients computed in init as a windowed sinc low-pass
// with the given normalized cutoff (0..0.5).  peek=N, pop=1, push=1; linear.
ir::NodeP lowpass_fir(const std::string& name, int taps, double cutoff);

// Band-pass FIR via modulated sinc.  Linear.
ir::NodeP bandpass_fir(const std::string& name, int taps, double lo, double hi);

// FIR with explicit coefficients.
ir::NodeP fir(const std::string& name, const std::vector<double>& taps);

// Multiply by a constant (linear).
ir::NodeP gain(const std::string& name, double g);

// Sum n consecutive items into one (linear; the equalizer combiner).
ir::NodeP adder(const std::string& name, int n);

// Keep 1 of every m items (decimator; linear).
ir::NodeP downsample(const std::string& name, int m);

// Insert l-1 zeros after every item (expander; linear).
ir::NodeP upsample(const std::string& name, int l);

// Fixed permutation: pushes window[perm[j]] for j = 0..N-1, pops N (linear).
ir::NodeP permute(const std::string& name, const std::vector<int>& perm);

// N x N dense constant matrix multiply: pop N, push N (linear, heavy).
ir::NodeP matmul(const std::string& name, int n,
                 const std::vector<double>& row_major);

// Magnitude of interleaved (re, im) pairs: pop 2, push 1 (nonlinear).
ir::NodeP magnitude(const std::string& name);

// Hard one-bit quantizer (nonlinear, stateless).
ir::NodeP quantizer(const std::string& name);

}  // namespace sit::apps
