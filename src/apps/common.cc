#include "apps/common.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sit::apps {

using namespace sit::ir;
using namespace sit::ir::dsl;

NodeP rand_source(const std::string& name, int push) {
  // Linear congruential generator in integer state; output scaled to
  // [-0.5, 0.5].  Stateful by construction, as real input filters are.
  std::vector<StmtP> body;
  for (int i = 0; i < push; ++i) {
    body.push_back(let("seed", (v("seed") * ci(1103515245) + ci(12345)) &
                                   ci((1LL << 31) - 1)));
    body.push_back(push_(to_float(v("seed")) / c(2147483648.0) - c(0.5)));
  }
  return filter(name).rates(0, 0, push).iscalar("seed", 42).work(seq(body)).node();
}

NodeP null_sink(const std::string& name, int pop) {
  return filter(name).rates(pop, pop, 0).work(seq({discard(pop)})).node();
}

namespace {

// y = sum_i h[i] * peek(i); pop 1 after.
StmtP fir_work(int taps) {
  return seq({let("sum", c(0.0)),
              for_("i", 0, taps,
                   let("sum", v("sum") + peek_(v("i")) * at("h", v("i")))),
              push_(v("sum")), discard(1)});
}

}  // namespace

NodeP lowpass_fir(const std::string& name, int taps, double cutoff) {
  // h[i] = 2*fc*sinc(2*fc*(i - c)) * hamming(i); computed in init so the
  // linear extractor sees constants.
  const double pi = std::numbers::pi;
  const E fc = c(cutoff);
  const E center = c((taps - 1) / 2.0);
  const E x = (to_float(v("i")) - center) * c(2.0 * pi) * fc;
  StmtP init = for_(
      "i", 0, taps,
      seq({set_at("h", v("i"),
                  sel(to_float(v("i")) == center, c(2.0) * fc,
                      c(2.0) * fc * sin_(x) / x) *
                      (c(0.54) - c(0.46) * cos_(c(2.0 * pi) * to_float(v("i")) /
                                                c(double(taps - 1)))))}));
  return filter(name)
      .rates(taps, 1, 1)
      .array("h", taps)
      .init(init)
      .work(fir_work(taps))
      .node();
}

NodeP bandpass_fir(const std::string& name, int taps, double lo, double hi) {
  const double pi = std::numbers::pi;
  const E center = c((taps - 1) / 2.0);
  const E t = to_float(v("i")) - center;
  auto sinc_term = [&](double f) {
    // Guard on x == 0 rather than i == center: a zero band edge (f == 0)
    // makes x vanish at every tap, where the limit is 2f as well.
    const E x = t * c(2.0 * pi * f);
    const E x2 = t * c(2.0 * pi * f);
    return sel(x == c(0.0), c(2.0 * f), c(2.0 * f) * sin_(x2) / x2);
  };
  StmtP init = for_("i", 0, taps,
                    seq({set_at("h", v("i"), sinc_term(hi) - sinc_term(lo))}));
  return filter(name)
      .rates(taps, 1, 1)
      .array("h", taps)
      .init(init)
      .work(fir_work(taps))
      .node();
}

NodeP fir(const std::string& name, const std::vector<double>& taps) {
  std::vector<Value> init;
  init.reserve(taps.size());
  for (double t : taps) init.emplace_back(t);
  const int n = static_cast<int>(taps.size());
  return filter(name)
      .rates(n, 1, 1)
      .array_init("h", init)
      .work(fir_work(n))
      .node();
}

NodeP gain(const std::string& name, double g) {
  return filter(name).rates(1, 1, 1).work(seq({push_(pop_() * c(g))})).node();
}

NodeP adder(const std::string& name, int n) {
  return filter(name)
      .rates(n, n, 1)
      .work(seq({let("s", c(0.0)), for_("i", 0, n, let("s", v("s") + peek_(v("i")))),
                 push_(v("s")), discard(n)}))
      .node();
}

NodeP downsample(const std::string& name, int m) {
  return filter(name).rates(m, m, 1).work(seq({push_(peek_(0)), discard(m)})).node();
}

NodeP upsample(const std::string& name, int l) {
  std::vector<StmtP> body{push_(pop_())};
  for (int i = 1; i < l; ++i) body.push_back(push_(c(0.0)));
  return filter(name).rates(1, 1, l).work(seq(body)).node();
}

NodeP permute(const std::string& name, const std::vector<int>& perm) {
  const int n = static_cast<int>(perm.size());
  std::vector<StmtP> body;
  for (int j = 0; j < n; ++j) {
    if (perm[static_cast<std::size_t>(j)] < 0 ||
        perm[static_cast<std::size_t>(j)] >= n) {
      throw std::invalid_argument("bad permutation");
    }
    body.push_back(push_(peek_(perm[static_cast<std::size_t>(j)])));
  }
  body.push_back(discard(n));
  return filter(name).rates(n, n, n).work(seq(body)).node();
}

NodeP matmul(const std::string& name, int n, const std::vector<double>& row_major) {
  if (static_cast<int>(row_major.size()) != n * n) {
    throw std::invalid_argument("matmul needs n*n coefficients");
  }
  std::vector<Value> init;
  init.reserve(row_major.size());
  for (double x : row_major) init.emplace_back(x);
  // push row r = sum_c M[r*n+c] * peek(c)
  return filter(name)
      .rates(n, n, n)
      .array_init("m", init)
      .work(seq({for_("r", 0, n,
                      seq({let("s", c(0.0)),
                           for_("cc", 0, n,
                                let("s", v("s") + peek_(v("cc")) *
                                                      at("m", v("r") * n + v("cc")))),
                           push_(v("s"))})),
                 discard(n)}))
      .node();
}

NodeP magnitude(const std::string& name) {
  return filter(name)
      .rates(2, 2, 1)
      .work(seq({let("re", pop_()), let("im", pop_()),
                 push_(sqrt_(v("re") * v("re") + v("im") * v("im")))}))
      .node();
}

NodeP quantizer(const std::string& name) {
  return filter(name)
      .rates(1, 1, 1)
      .work(seq({let("x", pop_()),
                 if_(v("x") >= c(0.0), push_(c(1.0)), push_(c(-1.0)))}))
      .node();
}

}  // namespace sit::apps
