#pragma once
// The benchmark suite.
//
// The parallel suite re-authors the 12 StreamIt applications of the paper's
// evaluation (Figure "benchchar"): BitonicSort, ChannelVocoder, DCT, DES,
// FFT, FilterBank, FMRadio, Serpent, TDE, MPEG2Decoder (subset), Vocoder,
// Radar.  The linear suite covers the applications the linear-optimization
// results are reported on: FIR, RateConvert, TargetDetect, FMRadio,
// FilterBank, Oversampler, DtoA (plus DCT).  Graph topology, rates, state,
// and peeking behaviour follow the paper's descriptions; see DESIGN.md for
// the substitutions.

#include <functional>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace sit::apps {

struct AppInfo {
  std::string name;
  std::string description;
  std::function<ir::NodeP()> make;
  bool parallel_suite{false};  // one of the 12 evaluation benchmarks
  bool linear_suite{false};    // target of the linear optimizations
};

const std::vector<AppInfo>& all_apps();

// Throws std::out_of_range for unknown names.
ir::NodeP make_app(const std::string& name);

// ---- individual constructors (also usable directly) -------------------------

ir::NodeP make_fir_app(int taps = 128);
ir::NodeP make_rate_convert();
ir::NodeP make_target_detect();
ir::NodeP make_oversampler();
ir::NodeP make_dtoa();

ir::NodeP make_bitonic_sort();      // N = 8 keys
ir::NodeP make_channel_vocoder();   // pitch detector + 16 envelope bands
ir::NodeP make_dct();               // 16x16 IEEE-style reference DCT
ir::NodeP make_des();               // 16 Feistel rounds on (L, R) pairs
ir::NodeP make_fft();               // N = 64, the paper's reorder+butterfly
ir::NodeP make_filter_bank();       // 8-band analysis/synthesis
ir::NodeP make_fm_radio();          // LPF + demod + 10-band equalizer
ir::NodeP make_serpent();           // 16 rounds, sbox + linear mix
ir::NodeP make_tde();               // FFT -> equalize -> IFFT pipeline
ir::NodeP make_mpeg2_subset();      // motion-vector + block decoding
ir::NodeP make_vocoder();           // band analysis + stateful AGC
ir::NodeP make_radar();             // 12 stateful channels, 4 beams

}  // namespace sit::apps
