#include "apps/apps.h"

#include <stdexcept>

namespace sit::apps {

const std::vector<AppInfo>& all_apps() {
  static const std::vector<AppInfo> apps = {
      // The 12 parallelization benchmarks (Figure "benchchar" order).
      {"BitonicSort", "8-key bitonic sorting network", make_bitonic_sort, true, false},
      {"ChannelVocoder", "pitch detector + 16 envelope bands", make_channel_vocoder, true, false},
      {"DCT", "16x16 separable reference DCT", make_dct, true, true},
      {"DES", "16 Feistel rounds", make_des, true, false},
      {"FFT", "64-point reorder + butterflies", make_fft, true, true},
      {"FilterBank", "8-band analysis/synthesis", make_filter_bank, true, true},
      {"FMRadio", "demodulator + 10-band equalizer", make_fm_radio, true, true},
      {"Serpent", "16 substitution/permutation rounds", make_serpent, true, false},
      {"TDE", "FFT -> equalize -> IFFT pipeline", make_tde, true, false},
      {"MPEG2Decoder", "motion vectors + block decode subset", make_mpeg2_subset, true, false},
      {"Vocoder", "band analysis + stateful AGC", make_vocoder, true, false},
      {"Radar", "12 stateful channels, 4 beams", make_radar, true, true},
      // Linear-suite-only applications.
      {"FIR", "single 128-tap low-pass", [] { return make_fir_app(128); }, false, true},
      {"RateConvert", "2/3 rate conversion", make_rate_convert, false, true},
      {"TargetDetect", "4 matched filters + detectors", make_target_detect, false, true},
      {"Oversampler", "16x oversampling (4 stages)", make_oversampler, false, true},
      {"DtoA", "oversampler + noise-shaped 1-bit quantizer", make_dtoa, false, true},
  };
  return apps;
}

ir::NodeP make_app(const std::string& name) {
  for (const auto& a : all_apps()) {
    if (a.name == name) return a.make();
  }
  throw std::out_of_range("unknown app '" + name + "'");
}

}  // namespace sit::apps
