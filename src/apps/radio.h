#pragma once
// The paper's running example: a frequency-hopping trunked radio receiver.
//
//   AtoD -> RFtoIF -> FFT(N) -> CheckFreqHop -> Sink
//
// RFtoIF multiplies the RF stream by a local-oscillator table and exposes a
// `setf` message handler; CheckFreqHop watches FFT bins and, when energy
// appears in a hop bin, teleports setf upstream with latency [4, 6] so the
// retuning lands on the precise information wavefront.  Wire it up with
// msg::MessagingExecutor::register_receiver("freqHop", "rf2if").

#include "ir/graph.h"

namespace sit::apps {

struct FreqHopRadio {
  ir::NodeP graph;
  int n{0};                       // FFT size
  std::string portal{"freqHop"};  // portal name used by CheckFreqHop
  std::string receiver{"rf2if"};  // filter with the setf handler
};

FreqHopRadio make_freq_hop_radio(int n = 16);

}  // namespace sit::apps
