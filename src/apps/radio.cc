#include "apps/radio.h"

#include <numbers>

#include "apps/common.h"

namespace sit::apps {

using namespace sit::ir;
using namespace sit::ir::dsl;

FreqHopRadio make_freq_hop_radio(int n) {
  const double pi = std::numbers::pi;

  // A/D front end: a tone whose frequency steps occasionally, so hops occur.
  auto atod = filter("atod")
                  .rates(0, 0, 1)
                  .scalar("phase", ir::Value(0.0))
                  .iscalar("t", 0)
                  .scalar("f0", ir::Value(0.15))
                  .work(seq({let("t", v("t") + 1),
                             if_(v("t") % ci(64 * n) == ci(0),
                                 let("f0", sel(v("f0") > c(0.3), c(0.15),
                                               v("f0") + c(0.1)))),
                             let("phase", v("phase") + v("f0") * c(2.0 * pi)),
                             push_(sin_(v("phase")))}))
                  .node();

  // RFtoIF: multiply by the local-oscillator table; `setf` retunes it.
  auto rf2if =
      filter("rf2if")
          .rates(1, 1, 1)
          .array("w", n)
          .iscalar("count", 0)
          .scalar("freq", ir::Value(1.0))
          .init(seq({for_("i", 0, n,
                          set_at("w", v("i"),
                                 sin_(to_float(v("i")) * c(pi) / double(n))))}))
          .work(seq({push_(pop_() * at("w", v("count"))),
                     let("count", (v("count") + 1) % n)}))
          .handler("setf", {"f"},
                   seq({let("freq", v("f")), let("count", 0),
                        for_("i", 0, n,
                             set_at("w", v("i"),
                                    sin_(to_float(v("i")) * c(pi) * v("f") /
                                         double(n))))}))
          .node();

  // Energy detector per block of n bins ("FFT" stand-in: the real FFT app is
  // plugged in by the bench; a magnitude window keeps this example small).
  auto spectrum = filter("spectrum")
                      .rates(n, n, n)
                      .work(seq({for_("i", 0, n,
                                      push_(peek_(v("i")) * peek_(v("i")))),
                                 discard(n)}))
                      .node();

  // CheckFreqHop: pass data through; when the hop bin lights up, teleport a
  // retune upstream with latency in [4, 6] wavefronts.
  auto check =
      filter("checkhop")
          .rates(n, n, n)
          .scalar("armed", ir::Value(1.0))
          .work(seq({let("e", c(0.0)),
                     for_("i", n / 2, n, let("e", v("e") + peek_(v("i")))),
                     if_(v("e") > c(double(n) * 0.10) && v("armed") > c(0.5),
                         seq({ir::send("freqHop", "setf",
                                       {(c(1.0) + v("e") / double(n)).e}, 4, 6),
                              let("armed", c(0.0))}),
                         let("armed", min_(v("armed") + c(0.01), c(1.0)))),
                     for_("i", 0, n, push_(peek_(v("i")))), discard(n)}))
          .node();

  FreqHopRadio radio;
  radio.n = n;
  radio.graph = make_pipeline(
      "FreqHopRadio", {atod, rf2if, spectrum, check, null_sink("snk", n)});
  return radio;
}

}  // namespace sit::apps
