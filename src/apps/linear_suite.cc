// The linear-optimization benchmark programs (FIR, RateConvert,
// TargetDetect, Oversampler, DtoA).  These are the applications the paper's
// abstract reports the ~400% average improvement on (together with FMRadio,
// FilterBank, DCT and Radar from the shared suite).

#include <cmath>

#include "apps/apps.h"
#include "apps/common.h"

namespace sit::apps {

using namespace sit::ir;
using namespace sit::ir::dsl;

NodeP make_fir_app(int taps) {
  return make_pipeline("FIR", {rand_source("src"), lowpass_fir("fir", taps, 0.2),
                               null_sink("snk")});
}

NodeP make_rate_convert() {
  // Classic 2/3 sample-rate conversion: expand, anti-alias, decimate.
  return make_pipeline("RateConvert",
                       {rand_source("src"), upsample("up2", 2),
                        lowpass_fir("antialias", 64, 0.15), downsample("down3", 3),
                        gain("norm", 2.0), null_sink("snk")});
}

NodeP make_target_detect() {
  // Four matched filters listen for four pulse shapes; a detector thresholds
  // each correlator output.  The matched filters are linear; the detectors
  // are not.
  auto detector = [](const std::string& name) {
    return filter(name)
        .rates(1, 1, 1)
        .work(seq({let("x", pop_()),
                   if_(v("x") > c(0.4), push_(v("x")), push_(c(0.0)))}))
        .node();
  };
  std::vector<NodeP> branches;
  for (int b = 0; b < 4; ++b) {
    std::vector<double> h(32);
    for (int i = 0; i < 32; ++i) {
      h[static_cast<std::size_t>(i)] =
          std::sin((b + 1) * 0.19 * i) * std::exp(-0.05 * i);
    }
    branches.push_back(make_pipeline(
        "match" + std::to_string(b),
        {fir("mf" + std::to_string(b), h), detector("det" + std::to_string(b))}));
  }
  return make_pipeline(
      "TargetDetect",
      {rand_source("src"),
       make_splitjoin("correlators", duplicate_split(),
                      roundrobin_join({1, 1, 1, 1}), branches),
       null_sink("snk", 4)});
}

namespace {

NodeP oversampler_core(const std::string& prefix) {
  // 16x oversampling as four 2x stages, each expander + half-band low-pass.
  std::vector<NodeP> stages;
  for (int s = 0; s < 4; ++s) {
    stages.push_back(upsample(prefix + "_up" + std::to_string(s), 2));
    stages.push_back(
        lowpass_fir(prefix + "_lp" + std::to_string(s), 32, 0.22));
  }
  return make_pipeline(prefix, stages);
}

}  // namespace

NodeP make_oversampler() {
  return make_pipeline("Oversampler", {rand_source("src"),
                                       oversampler_core("ovs"),
                                       null_sink("snk", 16)});
}

NodeP make_dtoa() {
  // 1-bit D/A front end: oversample, noise-shape with an error feedback
  // loop, quantize, reconstruct.  The feedback loop carries the quantization
  // error (delay 1).
  auto sub = filter("shape")
                 .rates(2, 2, 2)
                 .work(seq({let("x", pop_()), let("e", pop_()),
                            let("y", v("x") - v("e") * c(0.5)), push_(v("y")),
                            push_(v("y"))}))
                 .build();
  auto err = filter("err")
                 .rates(1, 1, 1)
                 .work(seq({let("y", pop_()),
                            if_(v("y") >= c(0.0), push_(v("y") - c(1.0)),
                                push_(v("y") + c(1.0)))}))
                 .node();
  auto loop = make_feedback("noiseshaper", roundrobin_join({1, 1}),
                            make_filter(sub), roundrobin_split({1, 1}), err,
                            /*delay=*/1, {0.0});
  return make_pipeline("DtoA",
                       {rand_source("src"), oversampler_core("ovs"), loop,
                        quantizer("quant"), lowpass_fir("recon", 16, 0.25),
                        null_sink("snk")});
}

}  // namespace sit::apps
