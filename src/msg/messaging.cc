#include "msg/messaging.h"

#include <stdexcept>

#include "runtime/interp.h"

namespace sit::msg {

using runtime::FlatActor;

namespace {

// Collect (portal, min latency) for every Send statement in a work AST.
void collect_sends(const ir::StmtP& s,
                   std::vector<std::pair<std::string, int>>& out) {
  if (!s) return;
  if (s->kind == ir::Stmt::Kind::Send) {
    out.emplace_back(s->name, s->latMin);
  }
  for (const auto& c : s->stmts) collect_sends(c, out);
  collect_sends(s->body, out);
  collect_sends(s->elseBody, out);
}

}  // namespace

MessagingExecutor::MessagingExecutor(ir::NodeP root, sched::Engine engine)
    : MessagingExecutor(std::move(root), [&] {
        sched::ExecOptions o;
        o.engine = engine;
        return o;
      }()) {}

MessagingExecutor::MessagingExecutor(ir::NodeP root, sched::ExecOptions opts)
    : MessagingExecutor(sched::lower(std::move(root)), std::move(opts)) {}

MessagingExecutor::MessagingExecutor(sched::CompiledProgram prog,
                                     sched::ExecOptions opts) {
  opts.message_sink = [this](const runtime::SentMessage& m) {
    if (current_actor_ < 0) return;
    on_send(current_actor_, m);
  };
  ex_ = std::make_unique<sched::Executor>(std::move(prog), std::move(opts));
  sdep_ = std::make_unique<sdep::SdepAnalysis>(ex_->graph());
}

int MessagingExecutor::actor_by_name(const std::string& name) const {
  const auto& g = ex_->graph();
  for (std::size_t i = 0; i < g.actors.size(); ++i) {
    if (g.actors[i].name == name) return static_cast<int>(i);
  }
  throw std::invalid_argument("no actor named '" + name + "'");
}

void MessagingExecutor::register_receiver(const std::string& portal,
                                          const std::string& receiver) {
  const int r = actor_by_name(receiver);
  const auto& g = ex_->graph();
  if (g.actors[static_cast<std::size_t>(r)].kind != FlatActor::Kind::Filter) {
    throw std::invalid_argument("receiver must be an AST filter");
  }
  portals_[portal].push_back(r);

  // Every filter whose work function sends to this portal constrains the
  // receiver's schedule.
  for (std::size_t a = 0; a < g.actors.size(); ++a) {
    if (g.actors[a].kind != FlatActor::Kind::Filter) continue;
    std::vector<std::pair<std::string, int>> sends;
    collect_sends(g.actors[a].node->filter.work, sends);
    for (const auto& [pname, lat_min] : sends) {
      if (pname != portal) continue;
      Pair p;
      p.sender = static_cast<int>(a);
      p.receiver = r;
      p.min_latency = lat_min;
      p.portal = portal;
      if (sdep_->is_upstream_of(p.sender, r)) {
        p.receiver_downstream = true;
      } else if (sdep_->is_upstream_of(r, p.sender)) {
        p.receiver_downstream = false;
      } else {
        throw std::invalid_argument(
            "teleport messaging between parallel actors is out of scope "
            "(paper section 3): " + g.actors[a].name + " -> " + receiver);
      }
      pairs_.push_back(p);
    }
  }
}

void MessagingExecutor::add_latency_constraint(const std::string& upstream,
                                               const std::string& downstream,
                                               int latency) {
  // MAX_LATENCY(a, b, n) == a message from b to upstream a with latency n.
  Pair p;
  p.sender = actor_by_name(downstream);
  p.receiver = actor_by_name(upstream);
  p.receiver_downstream = false;
  p.min_latency = latency;
  if (!sdep_->is_upstream_of(p.receiver, p.sender)) {
    throw std::invalid_argument("MAX_LATENCY requires a downstream path");
  }
  pairs_.push_back(p);
}

bool MessagingExecutor::constraints_allow(int actor) const {
  const auto& fired = ex_->firings();
  const std::int64_t next = fired[static_cast<std::size_t>(actor)] + 1;
  for (const auto& p : pairs_) {
    if (p.receiver != actor) continue;
    const std::int64_t m = fired[static_cast<std::size_t>(p.sender)] + 1;
    if (p.receiver_downstream) {
      // Paper eq. (mc2): the receiver may not produce data beyond what the
      // sender's next possible message could affect.
      const std::int64_t k =
          sdep_->max_firings(p.sender, p.receiver, m + p.min_latency - 1) + 1;
      if (next >= k) return false;
    } else {
      // Paper eq. (mc1): an upstream receiver may not run past the last
      // firing that affects the sender's next possible message.
      const std::int64_t k = sdep_->sdep(p.receiver, p.sender, m + p.min_latency);
      if (next > k) return false;
    }
  }
  return true;
}

void MessagingExecutor::on_send(int sender, const runtime::SentMessage& m) {
  ++stats_.sent;
  const std::int64_t n = ex_->firings()[static_cast<std::size_t>(sender)] + 1;
  if (obs::ThreadBuffer* tb = ex_->trace_buffer()) {
    tb->emit(ex_->recorder()->now_ns(), obs::EventKind::MessageSend, sender, n);
  }
  auto it = portals_.find(m.portal);
  if (it == portals_.end()) return;  // unregistered portal: dropped
  for (int r : it->second) {
    Pending pm;
    pm.receiver = r;
    pm.portal = m.portal;
    pm.method = m.method;
    pm.args = m.args;
    const int lam = m.lat_max;
    if (sdep_->is_upstream_of(sender, r)) {
      pm.before = true;
      pm.firing = sdep_->max_firings(sender, r, n + lam - 1) + 1;
    } else {
      pm.before = false;
      pm.firing = sdep_->sdep(r, sender, n + lam);
    }
    pending_.push_back(std::move(pm));
  }
}

void MessagingExecutor::deliver_due_before(int actor) {
  const auto& g = ex_->graph();
  const std::int64_t next =
      ex_->firings()[static_cast<std::size_t>(actor)] + 1;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->receiver == actor && it->before && it->firing <= next) {
      ex_->run_handler(actor, it->method, it->args);
      ++stats_.delivered;
      if (obs::ThreadBuffer* tb = ex_->trace_buffer()) {
        tb->emit(ex_->recorder()->now_ns(), obs::EventKind::MessageDeliver,
                 actor, it->firing);
      }
      stats_.deliveries.push_back(
          {it->portal, it->method, g.actors[static_cast<std::size_t>(actor)].name,
           it->firing, true});
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void MessagingExecutor::deliver_due_after(int actor) {
  const auto& g = ex_->graph();
  const std::int64_t done = ex_->firings()[static_cast<std::size_t>(actor)];
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->receiver == actor && !it->before && it->firing <= done) {
      ex_->run_handler(actor, it->method, it->args);
      ++stats_.delivered;
      if (obs::ThreadBuffer* tb = ex_->trace_buffer()) {
        tb->emit(ex_->recorder()->now_ns(), obs::EventKind::MessageDeliver,
                 actor, it->firing);
      }
      stats_.deliveries.push_back(
          {it->portal, it->method, g.actors[static_cast<std::size_t>(actor)].name,
           it->firing, false});
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<double> MessagingExecutor::run_steady(int n) {
  ex_->run_init();
  const auto& sched = ex_->schedule();
  std::vector<double> out;
  for (int ss = 0; ss < n; ++ss) {
    std::vector<std::int64_t> quota = sched.reps;
    bool progress = true;
    while (progress) {
      progress = false;
      for (int a : sched.order) {
        const auto ai = static_cast<std::size_t>(a);
        while (quota[ai] > 0 && ex_->can_fire(a)) {
          if (!constraints_allow(a)) {
            ++stats_.constraint_stalls;
            break;
          }
          deliver_due_before(a);
          current_actor_ = a;
          ex_->fire(a);
          current_actor_ = -1;
          deliver_due_after(a);
          --quota[ai];
          progress = true;
        }
      }
    }
    for (std::size_t i = 0; i < quota.size(); ++i) {
      if (quota[i] > 0) {
        throw std::runtime_error(
            "messaging constraints are unsatisfiable: actor '" +
            ex_->graph().actors[i].name + "' cannot complete the steady state");
      }
    }
    const auto got = ex_->take_output();
    out.insert(out.end(), got.begin(), got.end());
  }
  return out;
}

}  // namespace sit::msg
