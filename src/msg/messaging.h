#pragma once
// Teleport messaging.
//
// Filters send control messages through portals with a latency expressed in
// information wavefronts.  The paper's delivery guarantees:
//   * receiver downstream of sender: the message arrives immediately before
//     the first receiver firing that sees data affected by the sender's
//     firing n + latency;
//   * receiver upstream: immediately after the last receiver firing whose
//     output affects the sender's firing n + latency.
// Both are realized exactly with the sdep relation, and the executor
// *constrains* the schedule (paper eqs. mc1/mc2) so no receiver ever runs
// past a delivery point it might still owe a message to.
//
// MAX_LATENCY(a, b, n) is, per the paper, equivalent to a (never-sent)
// message from b to upstream a with latency n; add_latency_constraint
// implements exactly that.

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "sched/exec.h"
#include "sdep/sdep.h"

namespace sit::msg {

struct DeliveredMessage {
  std::string portal;
  std::string method;
  std::string receiver;
  std::int64_t receiver_firing{0};  // delivered before/after this firing
  bool before{true};
};

struct MessagingStats {
  std::int64_t sent{0};
  std::int64_t delivered{0};
  std::int64_t constraint_stalls{0};  // firings deferred by mc1/mc2
  std::vector<DeliveredMessage> deliveries;
};

class MessagingExecutor {
 public:
  // `engine` picks the work-function engine for the underlying executor
  // (Auto = SIT_ENGINE env var, defaulting to the bytecode VM).  Handlers
  // always run through the tree interpreter on the shared filter state.
  explicit MessagingExecutor(ir::NodeP root,
                             sched::Engine engine = sched::Engine::Auto);

  // Full-options form: engine, tracing, op counting.  The message_sink field
  // is overwritten -- teleport delivery is this class's whole job.
  MessagingExecutor(ir::NodeP root, sched::ExecOptions opts);

  // Artifact-taking form: consume a pipeline-compiled program (see
  // sched/program.h) instead of re-deriving graph + schedule from the root.
  MessagingExecutor(sched::CompiledProgram prog, sched::ExecOptions opts = {});

  // Register `receiver_filter` (leaf filter name) on a portal.
  void register_receiver(const std::string& portal,
                         const std::string& receiver_filter);

  // MAX_LATENCY(upstream, downstream, n).
  void add_latency_constraint(const std::string& upstream,
                              const std::string& downstream, int latency);

  // Run n steady states under the messaging constraints; returns program
  // output items.
  std::vector<double> run_steady(int n);

  [[nodiscard]] const MessagingStats& stats() const { return stats_; }
  [[nodiscard]] sched::Executor& executor() { return *ex_; }

 private:
  struct Pending {
    int receiver{0};
    std::int64_t firing{0};  // deliver before (downstream) / after (upstream)
    bool before{true};
    std::string portal, method;
    std::vector<ir::Value> args;
  };

  // A sender/receiver pair whose future messages constrain the schedule.
  struct Pair {
    int sender{0};
    int receiver{0};
    bool receiver_downstream{true};
    int min_latency{0};
    std::string portal;  // empty for pure latency constraints
  };

  int actor_by_name(const std::string& name) const;
  bool constraints_allow(int actor) const;
  void deliver_due_before(int actor);
  void deliver_due_after(int actor);
  void on_send(int sender, const runtime::SentMessage& m);

  std::unique_ptr<sched::Executor> ex_;
  std::unique_ptr<sdep::SdepAnalysis> sdep_;
  std::map<std::string, std::vector<int>> portals_;
  std::vector<Pair> pairs_;
  std::deque<Pending> pending_;
  MessagingStats stats_;
  int current_actor_{-1};
};

}  // namespace sit::msg
