#pragma once
// Semantic checking of stream programs.
//
// Implements the StreamIt restrictions from the paper's appendix that are
// checkable on the IR:
//   * work functions peek/pop/push a constant number of items matching the
//     declared rates (checked structurally: channel ops may not appear under
//     non-constant control flow in ways that change counts);
//   * weighted round-robin splitter/joiner arity matches the branch count;
//   * zero-weight rule: a branch whose first filter pops zero items must have
//     splitter weight 0, and dually for the joiner;
//   * a feedback loop's splitter and joiner must be binary and non-null;
//   * message handlers do not touch channels;
//   * a node instance appears at most once in the graph.
//
// check() returns the list of violations (empty = valid program).

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "ir/graph.h"

namespace sit::ir {

// Structural findings are ordinary analysis diagnostics (pass "structure").
// The historical Violation{where, message} shape is preserved: those are the
// first two fields of Diagnostic.  diagnostic.h is header-only from ir's
// perspective -- sit_ir does not link the analysis library.
using Violation = analysis::Diagnostic;

std::vector<Violation> check(const NodeP& root);

// Throwing convenience used by the executors.
void check_or_throw(const NodeP& root);

// Count the channel operations performed by one execution of `work` assuming
// all loop bounds are compile-time constants.  Returns {pops, pushes, maxPeek}
// where maxPeek is the highest statically-visible peek offset + 1 (0 if the
// offsets are not static).  Used both by check() and by analyses.
struct ChannelCounts {
  int pops{0};
  int pushes{0};
  int max_peek{0};
  bool static_counts{true};
  // True when some peek offset was not statically evaluable.  max_peek is 0
  // in that case -- consumers must check this flag rather than trust the
  // window (a dynamic peek can reach arbitrarily far).
  bool dynamic_peek{false};
};

ChannelCounts count_channel_ops(const StmtP& work);

}  // namespace sit::ir
