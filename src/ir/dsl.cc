#include "ir/dsl.h"

namespace sit::ir::dsl {

NodeP identity(const std::string& name) {
  return filter(name).rates(1, 1, 1).work(seq({push_(pop_())})).node();
}

}  // namespace sit::ir::dsl
