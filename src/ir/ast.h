#pragma once
// The C-like work-function AST ("the IR").
//
// A StreamIt filter's behaviour is given by imperative code over its input
// and output channels.  Every compiler analysis in this repository -- the
// interpreter, the static work estimator, and in particular the *linear
// extraction analysis* of the paper -- consumes this AST.  It deliberately
// mirrors the subset of Java that StreamIt 1.0 admits: scalar and array
// variables, arithmetic, bounded loops, conditionals, and the channel
// intrinsics peek/pop/push, plus teleport-message sends through portals.
//
// Nodes are immutable and shared via shared_ptr<const T>; programs are
// constructed once (by the builder eDSL in dsl.h) and then only read.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/value.h"

namespace sit::ir {

enum class BinOp {
  Add, Sub, Mul, Div, Mod, Min, Max, Pow,
  Lt, Le, Gt, Ge, Eq, Ne, LAnd, LOr,
  BAnd, BOr, BXor, Shl, Shr,
};

enum class UnOp {
  Neg, LNot, BNot,
  Sin, Cos, Tan, Exp, Log, Sqrt, Abs, Floor, Ceil, Round,
  ToInt, ToFloat,
};

const char* to_string(BinOp op);
const char* to_string(UnOp op);

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

// A single tagged node type keeps the AST compact and makes exhaustive
// switch-based visitors (interpreter, extractor, printer) straightforward.
struct Expr {
  enum class Kind {
    IntConst,   // ival
    FloatConst, // fval
    Var,        // name
    ArrayRef,   // name[a]
    Peek,       // peek(a)          -- a must evaluate to an int >= 0
    Pop,        // pop()            -- reads and consumes one input item
    Bin,        // a <bop> b
    Un,         // <uop> a
    Cond,       // a ? b : c
  };

  Kind kind{};
  std::int64_t ival{};
  double fval{};
  std::string name;
  ExprP a, b, c;
  BinOp bop{};
  UnOp uop{};
};

// ---- expression factories -------------------------------------------------

ExprP iconst(std::int64_t v);
ExprP fconst(double v);
ExprP var(std::string name);
ExprP aref(std::string name, ExprP index);
ExprP peek(ExprP index);
ExprP pop();
ExprP bin(BinOp op, ExprP a, ExprP b);
ExprP un(UnOp op, ExprP a);
ExprP cond(ExprP c, ExprP t, ExprP f);

struct Stmt;
using StmtP = std::shared_ptr<const Stmt>;

struct Stmt {
  enum class Kind {
    Block,       // stmts
    Assign,      // name = value
    ArrayAssign, // name[index] = value
    Push,        // push(value)
    PopN,        // pop value(s) and discard; count in index expr
    For,         // for (name = lo; name < hi; name += step) body
    If,          // if (cond) body else elseBody
    Send,        // portal.method(args) with latency [latMin, latMax]
  };

  Kind kind{};
  std::vector<StmtP> stmts;
  std::string name;            // Assign/ArrayAssign target, For var, Send portal
  ExprP index;                 // ArrayAssign index; PopN count
  ExprP value;                 // Assign/ArrayAssign rhs, Push value
  ExprP cond;                  // If condition
  ExprP lo, hi, step;          // For bounds (hi exclusive)
  StmtP body, elseBody;
  std::string method;          // Send method name
  std::vector<ExprP> args;     // Send arguments
  int latMin{0}, latMax{0};    // Send latency interval (information wavefronts)
};

// ---- statement factories ---------------------------------------------------

StmtP block(std::vector<StmtP> stmts);
StmtP assign(std::string name, ExprP value);
StmtP array_assign(std::string name, ExprP index, ExprP value);
StmtP push(ExprP value);
StmtP pop_n(ExprP count);
StmtP for_loop(std::string v, ExprP lo, ExprP hi, StmtP body);
StmtP for_loop_step(std::string v, ExprP lo, ExprP hi, ExprP step, StmtP body);
StmtP if_then(ExprP cond, StmtP body);
StmtP if_else(ExprP cond, StmtP body, StmtP elseBody);
StmtP send(std::string portal, std::string method, std::vector<ExprP> args,
           int latMin, int latMax);

// ---- pretty printing -------------------------------------------------------

std::string to_string(const ExprP& e);
std::string to_string(const StmtP& s, int indent = 0);

}  // namespace sit::ir
