#include "ir/graph.h"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace sit::ir {

namespace {
NodeP make_node(Node::Kind k, std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = k;
  n->name = std::move(name);
  return n;
}
}  // namespace

NodeP make_filter(FilterSpec spec) {
  auto n = make_node(Node::Kind::Filter, spec.name);
  n->filter = std::move(spec);
  return n;
}

NodeP make_native(NativeFilter nf) {
  auto n = make_node(Node::Kind::Native, nf.name);
  n->native = std::move(nf);
  return n;
}

NodeP make_pipeline(std::string name, std::vector<NodeP> children) {
  if (children.empty()) throw std::invalid_argument("pipeline with no children");
  auto n = make_node(Node::Kind::Pipeline, std::move(name));
  n->children = std::move(children);
  return n;
}

NodeP make_splitjoin(std::string name, Splitter split, Joiner join,
                     std::vector<NodeP> children) {
  if (children.empty()) throw std::invalid_argument("splitjoin with no children");
  auto n = make_node(Node::Kind::SplitJoin, std::move(name));
  n->split = std::move(split);
  n->join = std::move(join);
  n->children = std::move(children);
  return n;
}

NodeP make_feedback(std::string name, Joiner join, NodeP body, Splitter split,
                    NodeP loop, int delay, std::vector<double> init_path) {
  if (!body || !loop) throw std::invalid_argument("feedback loop needs body and loop");
  auto n = make_node(Node::Kind::FeedbackLoop, std::move(name));
  n->join = std::move(join);
  n->split = std::move(split);
  n->children = {std::move(body), std::move(loop)};
  n->delay = delay;
  n->init_path = std::move(init_path);
  return n;
}

Splitter duplicate_split() {
  Splitter s;
  s.kind = SJKind::Duplicate;
  return s;
}

Splitter roundrobin_split(std::vector<int> weights) {
  Splitter s;
  s.kind = SJKind::RoundRobin;
  s.weights = std::move(weights);
  return s;
}

Joiner roundrobin_join(std::vector<int> weights) {
  Joiner j;
  j.kind = SJKind::RoundRobin;
  j.weights = std::move(weights);
  return j;
}

void visit(const NodeP& root, const std::function<void(const NodeP&)>& fn) {
  if (!root) return;
  fn(root);
  for (const auto& c : root->children) visit(c, fn);
}

int count_filters(const NodeP& root) {
  int n = 0;
  visit(root, [&](const NodeP& node) {
    if (node->is_leaf()) ++n;
  });
  return n;
}

NodeP clone(const NodeP& root) {
  if (!root) return nullptr;
  auto n = std::make_shared<Node>(*root);
  for (auto& c : n->children) c = clone(c);
  return n;
}

namespace {

void describe_rec(const NodeP& n, int depth, std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (n->kind) {
    case Node::Kind::Filter:
      os << pad << "filter " << n->name << " (peek=" << n->filter.peek
         << " pop=" << n->filter.pop << " push=" << n->filter.push << ")\n";
      break;
    case Node::Kind::Native:
      os << pad << "native " << n->name << " (peek=" << n->native.peek
         << " pop=" << n->native.pop << " push=" << n->native.push << ")\n";
      break;
    case Node::Kind::Pipeline:
      os << pad << "pipeline " << n->name << " {\n";
      for (const auto& c : n->children) describe_rec(c, depth + 1, os);
      os << pad << "}\n";
      break;
    case Node::Kind::SplitJoin: {
      os << pad << "splitjoin " << n->name << " split=";
      if (n->split.kind == SJKind::Duplicate) {
        os << "duplicate";
      } else {
        os << "roundrobin(";
        for (std::size_t i = 0; i < n->split.weights.size(); ++i)
          os << (i ? "," : "") << n->split.weights[i];
        os << ")";
      }
      os << " join=roundrobin(";
      for (std::size_t i = 0; i < n->join.weights.size(); ++i)
        os << (i ? "," : "") << n->join.weights[i];
      os << ") {\n";
      for (const auto& c : n->children) describe_rec(c, depth + 1, os);
      os << pad << "}\n";
      break;
    }
    case Node::Kind::FeedbackLoop:
      os << pad << "feedbackloop " << n->name << " delay=" << n->delay << " {\n";
      os << pad << "  body:\n";
      describe_rec(n->children[0], depth + 2, os);
      os << pad << "  loop:\n";
      describe_rec(n->children[1], depth + 2, os);
      os << pad << "}\n";
      break;
  }
}

void dot_rec(const NodeP& n, int& id, std::ostringstream& os,
             int& in_node, int& out_node) {
  switch (n->kind) {
    case Node::Kind::Filter:
    case Node::Kind::Native: {
      const int me = id++;
      os << "  n" << me << " [label=\"" << n->name << "\"];\n";
      in_node = out_node = me;
      break;
    }
    case Node::Kind::Pipeline: {
      int prev_out = -1;
      int first_in = -1;
      for (const auto& c : n->children) {
        int ci = -1, co = -1;
        dot_rec(c, id, os, ci, co);
        if (first_in < 0) first_in = ci;
        if (prev_out >= 0) os << "  n" << prev_out << " -> n" << ci << ";\n";
        prev_out = co;
      }
      in_node = first_in;
      out_node = prev_out;
      break;
    }
    case Node::Kind::SplitJoin: {
      const int sp = id++;
      const int jn = id++;
      os << "  n" << sp << " [shape=triangle,label=\"split\"];\n";
      os << "  n" << jn << " [shape=invtriangle,label=\"join\"];\n";
      for (const auto& c : n->children) {
        int ci = -1, co = -1;
        dot_rec(c, id, os, ci, co);
        os << "  n" << sp << " -> n" << ci << ";\n";
        os << "  n" << co << " -> n" << jn << ";\n";
      }
      in_node = sp;
      out_node = jn;
      break;
    }
    case Node::Kind::FeedbackLoop: {
      const int jn = id++;
      const int sp = id++;
      os << "  n" << jn << " [shape=invtriangle,label=\"fb-join\"];\n";
      os << "  n" << sp << " [shape=triangle,label=\"fb-split\"];\n";
      int bi = -1, bo = -1, li = -1, lo = -1;
      dot_rec(n->children[0], id, os, bi, bo);
      dot_rec(n->children[1], id, os, li, lo);
      os << "  n" << jn << " -> n" << bi << ";\n";
      os << "  n" << bo << " -> n" << sp << ";\n";
      os << "  n" << sp << " -> n" << li << " [style=dashed];\n";
      os << "  n" << lo << " -> n" << jn << " [style=dashed];\n";
      in_node = jn;
      out_node = sp;
      break;
    }
  }
}

}  // namespace

std::string describe(const NodeP& root) {
  std::ostringstream os;
  describe_rec(root, 0, os);
  return os.str();
}

std::string to_dot(const NodeP& root) {
  std::ostringstream os;
  os << "digraph stream {\n  rankdir=TB;\n  node [shape=box];\n";
  int id = 0, in = -1, out = -1;
  dot_rec(root, id, os, in, out);
  os << "}\n";
  return os.str();
}

}  // namespace sit::ir
