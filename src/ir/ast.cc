#include "ir/ast.h"

#include <sstream>

namespace sit::ir {

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    case BinOp::Pow: return "pow";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
    case BinOp::BAnd: return "&";
    case BinOp::BOr: return "|";
    case BinOp::BXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
  }
  return "?";
}

const char* to_string(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::LNot: return "!";
    case UnOp::BNot: return "~";
    case UnOp::Sin: return "sin";
    case UnOp::Cos: return "cos";
    case UnOp::Tan: return "tan";
    case UnOp::Exp: return "exp";
    case UnOp::Log: return "log";
    case UnOp::Sqrt: return "sqrt";
    case UnOp::Abs: return "abs";
    case UnOp::Floor: return "floor";
    case UnOp::Ceil: return "ceil";
    case UnOp::Round: return "round";
    case UnOp::ToInt: return "(int)";
    case UnOp::ToFloat: return "(float)";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> make_expr(Expr::Kind k) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  return e;
}
std::shared_ptr<Stmt> make_stmt(Stmt::Kind k) {
  auto s = std::make_shared<Stmt>();
  s->kind = k;
  return s;
}
}  // namespace

ExprP iconst(std::int64_t v) {
  auto e = make_expr(Expr::Kind::IntConst);
  e->ival = v;
  return e;
}

ExprP fconst(double v) {
  auto e = make_expr(Expr::Kind::FloatConst);
  e->fval = v;
  return e;
}

ExprP var(std::string name) {
  auto e = make_expr(Expr::Kind::Var);
  e->name = std::move(name);
  return e;
}

ExprP aref(std::string name, ExprP index) {
  auto e = make_expr(Expr::Kind::ArrayRef);
  e->name = std::move(name);
  e->a = std::move(index);
  return e;
}

ExprP peek(ExprP index) {
  auto e = make_expr(Expr::Kind::Peek);
  e->a = std::move(index);
  return e;
}

ExprP pop() { return make_expr(Expr::Kind::Pop); }

ExprP bin(BinOp op, ExprP a, ExprP b) {
  auto e = make_expr(Expr::Kind::Bin);
  e->bop = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprP un(UnOp op, ExprP a) {
  auto e = make_expr(Expr::Kind::Un);
  e->uop = op;
  e->a = std::move(a);
  return e;
}

ExprP cond(ExprP c, ExprP t, ExprP f) {
  auto e = make_expr(Expr::Kind::Cond);
  e->a = std::move(c);
  e->b = std::move(t);
  e->c = std::move(f);
  return e;
}

StmtP block(std::vector<StmtP> stmts) {
  auto s = make_stmt(Stmt::Kind::Block);
  s->stmts = std::move(stmts);
  return s;
}

StmtP assign(std::string name, ExprP value) {
  auto s = make_stmt(Stmt::Kind::Assign);
  s->name = std::move(name);
  s->value = std::move(value);
  return s;
}

StmtP array_assign(std::string name, ExprP index, ExprP value) {
  auto s = make_stmt(Stmt::Kind::ArrayAssign);
  s->name = std::move(name);
  s->index = std::move(index);
  s->value = std::move(value);
  return s;
}

StmtP push(ExprP value) {
  auto s = make_stmt(Stmt::Kind::Push);
  s->value = std::move(value);
  return s;
}

StmtP pop_n(ExprP count) {
  auto s = make_stmt(Stmt::Kind::PopN);
  s->index = std::move(count);
  return s;
}

StmtP for_loop(std::string v, ExprP lo, ExprP hi, StmtP body) {
  return for_loop_step(std::move(v), std::move(lo), std::move(hi), iconst(1),
                       std::move(body));
}

StmtP for_loop_step(std::string v, ExprP lo, ExprP hi, ExprP step, StmtP body) {
  auto s = make_stmt(Stmt::Kind::For);
  s->name = std::move(v);
  s->lo = std::move(lo);
  s->hi = std::move(hi);
  s->step = std::move(step);
  s->body = std::move(body);
  return s;
}

StmtP if_then(ExprP cond, StmtP body) {
  auto s = make_stmt(Stmt::Kind::If);
  s->cond = std::move(cond);
  s->body = std::move(body);
  return s;
}

StmtP if_else(ExprP cond, StmtP body, StmtP elseBody) {
  auto s = make_stmt(Stmt::Kind::If);
  s->cond = std::move(cond);
  s->body = std::move(body);
  s->elseBody = std::move(elseBody);
  return s;
}

StmtP send(std::string portal, std::string method, std::vector<ExprP> args,
           int latMin, int latMax) {
  auto s = make_stmt(Stmt::Kind::Send);
  s->name = std::move(portal);
  s->method = std::move(method);
  s->args = std::move(args);
  s->latMin = latMin;
  s->latMax = latMax;
  return s;
}

std::string to_string(const ExprP& e) {
  if (!e) return "<null>";
  std::ostringstream os;
  switch (e->kind) {
    case Expr::Kind::IntConst:
      os << e->ival;
      break;
    case Expr::Kind::FloatConst:
      os << e->fval;
      break;
    case Expr::Kind::Var:
      os << e->name;
      break;
    case Expr::Kind::ArrayRef:
      os << e->name << "[" << to_string(e->a) << "]";
      break;
    case Expr::Kind::Peek:
      os << "peek(" << to_string(e->a) << ")";
      break;
    case Expr::Kind::Pop:
      os << "pop()";
      break;
    case Expr::Kind::Bin:
      os << "(" << to_string(e->a) << " " << to_string(e->bop) << " "
         << to_string(e->b) << ")";
      break;
    case Expr::Kind::Un:
      os << to_string(e->uop) << "(" << to_string(e->a) << ")";
      break;
    case Expr::Kind::Cond:
      os << "(" << to_string(e->a) << " ? " << to_string(e->b) << " : "
         << to_string(e->c) << ")";
      break;
  }
  return os.str();
}

std::string to_string(const StmtP& s, int indent) {
  if (!s) return "";
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (s->kind) {
    case Stmt::Kind::Block:
      for (const auto& c : s->stmts) os << to_string(c, indent);
      break;
    case Stmt::Kind::Assign:
      os << pad << s->name << " = " << to_string(s->value) << ";\n";
      break;
    case Stmt::Kind::ArrayAssign:
      os << pad << s->name << "[" << to_string(s->index)
         << "] = " << to_string(s->value) << ";\n";
      break;
    case Stmt::Kind::Push:
      os << pad << "push(" << to_string(s->value) << ");\n";
      break;
    case Stmt::Kind::PopN:
      os << pad << "pop(" << to_string(s->index) << ");\n";
      break;
    case Stmt::Kind::For:
      os << pad << "for (" << s->name << " = " << to_string(s->lo) << "; "
         << s->name << " < " << to_string(s->hi) << "; " << s->name
         << " += " << to_string(s->step) << ") {\n"
         << to_string(s->body, indent + 1) << pad << "}\n";
      break;
    case Stmt::Kind::If:
      os << pad << "if (" << to_string(s->cond) << ") {\n"
         << to_string(s->body, indent + 1) << pad << "}";
      if (s->elseBody) {
        os << " else {\n" << to_string(s->elseBody, indent + 1) << pad << "}";
      }
      os << "\n";
      break;
    case Stmt::Kind::Send: {
      os << pad << s->name << "." << s->method << "(";
      for (std::size_t i = 0; i < s->args.size(); ++i) {
        if (i) os << ", ";
        os << to_string(s->args[i]);
      }
      os << ") @ [" << s->latMin << ", " << s->latMax << "];\n";
      break;
    }
  }
  return os.str();
}

}  // namespace sit::ir
