#pragma once
// The hierarchical stream graph.
//
// StreamIt composes single-input single-output blocks recursively:
//   Pipeline      -- children in sequence
//   SplitJoin     -- splitter, parallel children, joiner
//   FeedbackLoop  -- joiner, body, splitter, loop (back edge), with `delay`
//                    initial items on the back edge supplied by initPath
// Leaves are filters (AST or native).  The structured hierarchy -- rather
// than an arbitrary graph -- is what makes the paper's analyses (linear
// combination over pipelines/splitjoins, partitioning, wavefront transfer
// functions) compositional.

#include <memory>
#include <string>
#include <vector>

#include "ir/filter.h"

namespace sit::ir {

enum class SJKind {
  Duplicate,   // splitter only: copy each item to every branch
  RoundRobin,  // weighted round robin (weights per branch)
  Null,        // processes no items (legal only where the paper allows)
};

struct Splitter {
  SJKind kind{SJKind::RoundRobin};
  std::vector<int> weights;  // used when kind == RoundRobin

  [[nodiscard]] int total_weight() const {
    int t = 0;
    for (int w : weights) t += w;
    return t;
  }
};

struct Joiner {
  SJKind kind{SJKind::RoundRobin};  // Duplicate is not a legal joiner
  std::vector<int> weights;

  [[nodiscard]] int total_weight() const {
    int t = 0;
    for (int w : weights) t += w;
    return t;
  }
};

struct Node;
using NodeP = std::shared_ptr<Node>;

struct Node {
  enum class Kind { Filter, Native, Pipeline, SplitJoin, FeedbackLoop };

  Kind kind{};
  std::string name;

  FilterSpec filter;    // Kind::Filter
  NativeFilter native;  // Kind::Native

  // Pipeline: children in order.  SplitJoin: parallel branches.
  // FeedbackLoop: children[0] = body, children[1] = loop.
  std::vector<NodeP> children;

  Splitter split;  // SplitJoin, FeedbackLoop
  Joiner join;     // SplitJoin, FeedbackLoop

  // FeedbackLoop only: number of items initially on the back edge, and their
  // values (initPath(0..delay-1) pre-evaluated).
  int delay{0};
  std::vector<double> init_path;

  [[nodiscard]] bool is_leaf() const {
    return kind == Kind::Filter || kind == Kind::Native;
  }
};

// ---- constructors -----------------------------------------------------------

NodeP make_filter(FilterSpec spec);
NodeP make_native(NativeFilter nf);
NodeP make_pipeline(std::string name, std::vector<NodeP> children);
NodeP make_splitjoin(std::string name, Splitter split, Joiner join,
                     std::vector<NodeP> children);
NodeP make_feedback(std::string name, Joiner join, NodeP body, Splitter split,
                    NodeP loop, int delay, std::vector<double> init_path);

Splitter duplicate_split();
Splitter roundrobin_split(std::vector<int> weights);
Joiner roundrobin_join(std::vector<int> weights);

// ---- traversal / queries ----------------------------------------------------

// Visit every node (pre-order).  The visitor may not mutate the graph shape.
void visit(const NodeP& root, const std::function<void(const NodeP&)>& fn);

// Number of leaf filters in the subtree.
int count_filters(const NodeP& root);

// Deep copy (fresh Node objects; shared immutable ASTs are reused).
NodeP clone(const NodeP& root);

// Aggregate I/O rates of an arbitrary subtree per one of its executions is
// computed by the scheduler (sched/rates.h); the graph itself stores none.

// ---- printing ---------------------------------------------------------------

std::string describe(const NodeP& root);              // indented text form
std::string to_dot(const NodeP& root);                // GraphViz

}  // namespace sit::ir
