#pragma once
// Runtime value for the work-function interpreter and filter state.
//
// StreamIt 1.0 channels carry a single numeric type; we model both the
// integer benchmarks (DES, Serpent, BitonicSort) and the floating-point DSP
// benchmarks with a small tagged value.  Channel items themselves are stored
// as double (see runtime/channel.h); Value appears in interpreter
// environments where exact integer semantics (Mod, Shl, BXor, ...) matter.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>

namespace sit::ir {

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t i) : v_(i) {}  // NOLINT(google-explicit-constructor)
  Value(int i) : v_(std::int64_t{i}) {}  // NOLINT
  Value(double d) : v_(d) {}  // NOLINT
  // Canonical tag for boolean results: every comparison (Lt/Le/Gt/Ge/Eq/Ne),
  // logic op (LAnd/LOr/LNot) and truthiness test produces an *Int* 0/1.
  // The typeflow lattice (runtime/typed.h) relies on this: a register written
  // by a comparison is statically Int, never Double.  Explicit so a bool can
  // not silently widen through an implicit conversion chain.
  explicit Value(bool b) : v_(std::int64_t{b ? 1 : 0}) {}

  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }

  [[nodiscard]] std::int64_t as_int() const {
    if (is_int()) return std::get<std::int64_t>(v_);
    return static_cast<std::int64_t>(std::get<double>(v_));
  }

  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    return std::get<double>(v_);
  }

  [[nodiscard]] bool truthy() const {
    return is_int() ? as_int() != 0 : as_double() != 0.0;
  }

  [[nodiscard]] std::string str() const {
    return is_int() ? std::to_string(as_int()) : std::to_string(as_double());
  }

 private:
  std::variant<std::int64_t, double> v_;
};

}  // namespace sit::ir
