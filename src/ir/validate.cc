#include "ir/validate.h"

#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace sit::ir {

namespace {

using Env = std::unordered_map<std::string, std::int64_t>;

// Best-effort constant evaluation over integer expressions (loop bounds and
// peek offsets).  Loop induction variables are bound in `env`.
std::optional<std::int64_t> const_eval(const ExprP& e, const Env& env) {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case Expr::Kind::IntConst:
      return e->ival;
    case Expr::Kind::FloatConst:
      return static_cast<std::int64_t>(e->fval);
    case Expr::Kind::Var: {
      auto it = env.find(e->name);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::Bin: {
      auto a = const_eval(e->a, env);
      auto b = const_eval(e->b, env);
      if (!a || !b) return std::nullopt;
      switch (e->bop) {
        case BinOp::Add: return *a + *b;
        case BinOp::Sub: return *a - *b;
        case BinOp::Mul: return *a * *b;
        case BinOp::Div: return *b == 0 ? std::nullopt : std::optional(*a / *b);
        case BinOp::Mod: return *b == 0 ? std::nullopt : std::optional(*a % *b);
        case BinOp::Min: return std::min(*a, *b);
        case BinOp::Max: return std::max(*a, *b);
        case BinOp::Shl: return *a << *b;
        case BinOp::Shr: return *a >> *b;
        case BinOp::Lt: return std::int64_t{*a < *b};
        case BinOp::Le: return std::int64_t{*a <= *b};
        case BinOp::Gt: return std::int64_t{*a > *b};
        case BinOp::Ge: return std::int64_t{*a >= *b};
        case BinOp::Eq: return std::int64_t{*a == *b};
        case BinOp::Ne: return std::int64_t{*a != *b};
        default: return std::nullopt;
      }
    }
    case Expr::Kind::Un: {
      auto a = const_eval(e->a, env);
      if (!a) return std::nullopt;
      switch (e->uop) {
        case UnOp::Neg: return -*a;
        case UnOp::ToInt: return *a;
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

// Stateful walker tracking pops/pushes performed so far in one work
// invocation, plus the farthest input-window index touched.
class ChannelCounter {
 public:
  void stmt(const StmtP& s) {
    if (!s) return;
    switch (s->kind) {
      case Stmt::Kind::Block:
        for (const auto& c : s->stmts) stmt(c);
        break;
      case Stmt::Kind::Assign:
      case Stmt::Kind::ArrayAssign:
        expr(s->index);
        expr(s->value);
        break;
      case Stmt::Kind::Push:
        expr(s->value);
        ++pushes_;
        break;
      case Stmt::Kind::PopN: {
        auto n = const_eval(s->index, env_);
        if (!n) {
          static_ = false;
          return;
        }
        pops_ += static_cast<int>(*n);
        window_ = std::max(window_, pops_);
        break;
      }
      case Stmt::Kind::For: {
        auto lo = const_eval(s->lo, env_);
        auto hi = const_eval(s->hi, env_);
        auto st = const_eval(s->step, env_);
        if (!lo || !hi || !st || *st <= 0) {
          static_ = false;
          return;
        }
        for (std::int64_t i = *lo; i < *hi; i += *st) {
          env_[s->name] = i;
          stmt(s->body);
          if (!static_) break;
        }
        env_.erase(s->name);
        break;
      }
      case Stmt::Kind::If: {
        expr(s->cond);
        auto cv = const_eval(s->cond, env_);
        if (cv) {
          stmt(*cv ? s->body : s->elseBody);
          break;
        }
        // Data-dependent branch: both sides must agree on channel effects.
        ChannelCounter then_c = *this;
        then_c.stmt(s->body);
        ChannelCounter else_c = *this;
        else_c.stmt(s->elseBody);
        if (then_c.pops_ != else_c.pops_ || then_c.pushes_ != else_c.pushes_ ||
            !then_c.static_ || !else_c.static_) {
          static_ = false;
          return;
        }
        pops_ = then_c.pops_;
        pushes_ = then_c.pushes_;
        window_ = std::max(then_c.window_, else_c.window_);
        break;
      }
      case Stmt::Kind::Send:
        for (const auto& a : s->args) expr(a);
        break;
    }
  }

  void expr(const ExprP& e) {
    if (!e) return;
    switch (e->kind) {
      case Expr::Kind::Peek: {
        expr(e->a);
        auto off = const_eval(e->a, env_);
        if (off) {
          window_ = std::max(window_, pops_ + static_cast<int>(*off) + 1);
        } else {
          dynamic_peek_ = true;
        }
        break;
      }
      case Expr::Kind::Pop:
        ++pops_;
        window_ = std::max(window_, pops_);
        break;
      default:
        expr(e->a);
        expr(e->b);
        expr(e->c);
        break;
    }
  }

  [[nodiscard]] ChannelCounts result() const {
    ChannelCounts r;
    r.pops = pops_;
    r.pushes = pushes_;
    r.max_peek = dynamic_peek_ ? 0 : window_;
    r.static_counts = static_;
    r.dynamic_peek = dynamic_peek_;
    return r;
  }

 private:
  Env env_;
  int pops_{0};
  int pushes_{0};
  int window_{0};
  bool static_{true};
  bool dynamic_peek_{false};
};

bool touches_channels(const StmtP& s);

bool expr_touches_channels(const ExprP& e) {
  if (!e) return false;
  if (e->kind == Expr::Kind::Peek || e->kind == Expr::Kind::Pop) return true;
  return expr_touches_channels(e->a) || expr_touches_channels(e->b) ||
         expr_touches_channels(e->c);
}

bool touches_channels(const StmtP& s) {
  if (!s) return false;
  switch (s->kind) {
    case Stmt::Kind::Push:
    case Stmt::Kind::PopN:
      return true;
    case Stmt::Kind::Block:
      for (const auto& c : s->stmts)
        if (touches_channels(c)) return true;
      return false;
    default:
      if (expr_touches_channels(s->index) || expr_touches_channels(s->value) ||
          expr_touches_channels(s->cond) || expr_touches_channels(s->lo) ||
          expr_touches_channels(s->hi))
        return true;
      for (const auto& a : s->args)
        if (expr_touches_channels(a)) return true;
      return touches_channels(s->body) || touches_channels(s->elseBody);
  }
}

class Checker {
 public:
  void run(const NodeP& n) {
    if (!n) {
      add("<root>", "null node");
      return;
    }
    if (!seen_.insert(n.get()).second) {
      add(n->name, "stream instance appears more than once in the graph");
      return;
    }
    switch (n->kind) {
      case Node::Kind::Filter:
        check_filter(n);
        break;
      case Node::Kind::Native:
        check_native(n);
        break;
      case Node::Kind::Pipeline:
        if (n->children.empty()) add(n->name, "empty pipeline");
        for (const auto& c : n->children) run(c);
        break;
      case Node::Kind::SplitJoin:
        check_splitjoin(n);
        break;
      case Node::Kind::FeedbackLoop:
        check_feedback(n);
        break;
    }
  }

  std::vector<Violation> violations;

 private:
  void add(const std::string& where, std::string msg) {
    Violation v;
    v.where = where;
    v.message = std::move(msg);
    v.severity = analysis::Severity::Error;
    v.pass = "structure";
    violations.push_back(std::move(v));
  }

  void check_filter(const NodeP& n) {
    const FilterSpec& f = n->filter;
    if (f.pop < 0 || f.push < 0 || f.peek < 0) add(n->name, "negative rate");
    if (f.peek < f.pop) add(n->name, "declared peek < declared pop");
    if (!f.work) {
      add(n->name, "filter without work function");
      return;
    }
    const ChannelCounts cc = count_channel_ops(f.work);
    if (!cc.static_counts) {
      add(n->name, "work function has non-static channel-operation counts");
      return;
    }
    if (cc.pops != f.pop) {
      add(n->name, "work pops " + std::to_string(cc.pops) + " but declares pop=" +
                       std::to_string(f.pop));
    }
    if (cc.pushes != f.push) {
      add(n->name, "work pushes " + std::to_string(cc.pushes) +
                       " but declares push=" + std::to_string(f.push));
    }
    if (cc.dynamic_peek) {
      // max_peek is 0 here; without this check a dynamic offset would slip
      // past the window comparison below unnoticed.
      add(n->name,
          "work peeks at a non-static offset; the peek window cannot be "
          "verified against declared peek=" + std::to_string(f.peek));
    }
    if (cc.max_peek > f.peek) {
      add(n->name, "work peeks to index " + std::to_string(cc.max_peek - 1) +
                       " but declares peek=" + std::to_string(f.peek));
    }
    if (f.init && touches_channels(f.init)) {
      add(n->name, "init function may not touch channels");
    }
    for (const auto& [method, h] : f.handlers) {
      if (touches_channels(h.body)) {
        add(n->name, "message handler '" + method + "' may not touch channels");
      }
    }
  }

  void check_native(const NodeP& n) {
    const NativeFilter& f = n->native;
    if (f.pop < 0 || f.push < 0 || f.peek < f.pop) add(n->name, "bad native rates");
    if (!f.work) add(n->name, "native filter without work functor");
  }

  void check_splitjoin(const NodeP& n) {
    const std::size_t k = n->children.size();
    if (k == 0) {
      add(n->name, "empty splitjoin");
      return;
    }
    if (n->split.kind == SJKind::RoundRobin && n->split.weights.size() != k) {
      add(n->name, "splitter weight count != branch count");
    }
    if (n->join.kind == SJKind::Duplicate) {
      add(n->name, "duplicate joiner is not legal");
    }
    if (n->join.kind == SJKind::RoundRobin && n->join.weights.size() != k) {
      add(n->name, "joiner weight count != branch count");
    }
    for (const auto& c : n->children) run(c);
  }

  void check_feedback(const NodeP& n) {
    if (n->children.size() != 2) {
      add(n->name, "feedback loop must have body and loop children");
      return;
    }
    if (n->split.kind == SJKind::Null || n->join.kind == SJKind::Null) {
      add(n->name, "feedback splitter/joiner must be non-null");
    }
    if (n->split.kind == SJKind::RoundRobin && n->split.weights.size() != 2) {
      add(n->name, "feedback splitter must be binary");
    }
    if (n->join.kind == SJKind::RoundRobin && n->join.weights.size() != 2) {
      add(n->name, "feedback joiner must be binary");
    }
    if (n->delay < 0) add(n->name, "negative delay");
    if (static_cast<int>(n->init_path.size()) != n->delay) {
      add(n->name, "initPath length must equal delay");
    }
    run(n->children[0]);
    run(n->children[1]);
  }

  std::set<const Node*> seen_;
};

}  // namespace

ChannelCounts count_channel_ops(const StmtP& work) {
  ChannelCounter counter;
  counter.stmt(work);
  return counter.result();
}

std::vector<Violation> check(const NodeP& root) {
  Checker c;
  c.run(root);
  return c.violations;
}

void check_or_throw(const NodeP& root) {
  const auto vs = check(root);
  if (vs.empty()) return;
  std::ostringstream os;
  os << "stream program is not well-formed:";
  for (const auto& v : vs) os << "\n  [" << v.where << "] " << v.message;
  throw std::runtime_error(os.str());
}

}  // namespace sit::ir
