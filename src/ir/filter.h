#pragma once
// Filter specifications.
//
// A filter is the StreamIt unit of computation: single input channel, single
// output channel, static peek/pop/push rates, private state, and a `work`
// function (ast.h).  Two flavours exist:
//
//  * AST filters -- behaviour given by the work AST; analyzable by every
//    compiler pass (linear extraction, work estimation, fusion...).
//  * Native filters -- behaviour given by a C++ functor with declared rates
//    and a declared per-firing cost.  These are *produced by the compiler*
//    (frequency-translated filters run an FFT; fused filters run an inner
//    schedule) and by the I/O endpoints; they execute and map like any other
//    filter but are opaque to source-level analyses.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/ast.h"
#include "ir/value.h"

namespace sit::ir {

// State variable declaration.  Arrays are fixed size; `init` optionally gives
// initial contents (scalars: one element).  Most state is filled by the
// filter's init function instead.
struct VarDecl {
  std::string name;
  bool is_array{false};
  std::int64_t size{1};
  bool is_int{false};
  std::vector<Value> init;
};

// Message handler: teleport messages invoke these between work invocations.
struct Handler {
  std::vector<std::string> params;
  StmtP body;
};

struct FilterSpec {
  std::string name;
  int peek{0}, pop{0}, push{0};
  std::vector<VarDecl> state;
  StmtP init;  // runs once at graph start; may not touch channels
  StmtP work;
  std::map<std::string, Handler> handlers;

  [[nodiscard]] bool is_source() const { return pop == 0 && peek == 0; }
  [[nodiscard]] bool is_sink() const { return push == 0; }
  [[nodiscard]] bool does_peek() const { return peek > pop; }
};

// ---- native filters ---------------------------------------------------------

// Minimal channel views used by native work functions so that ir/ does not
// depend on the runtime library.  The runtime adapts its channels to these.
class InTape {
 public:
  virtual ~InTape() = default;
  virtual double peek_item(int offset) = 0;  // offset 0 = next item to pop
  virtual double pop_item() = 0;
  // Bulk discard of the next `n` items; concrete tapes override with an O(1)
  // index advance (decimation loops and splitter strides hit this hard).
  virtual void pop_many(int n) {
    for (int i = 0; i < n; ++i) pop_item();
  }
};

class OutTape {
 public:
  virtual ~OutTape() = default;
  virtual void push_item(double v) = 0;
};

// Per-instance state for a native filter.  clone() supports fission: each
// replica starts from an identical copy of the initial state.
class NativeState {
 public:
  virtual ~NativeState() = default;
  virtual std::unique_ptr<NativeState> clone() const = 0;
};

struct NativeFilter {
  std::string name;
  int peek{0}, pop{0}, push{0};
  std::function<std::unique_ptr<NativeState>()> make_state;
  // One firing: consume exactly `pop` items (peeking at most `peek`), produce
  // exactly `push` items.
  std::function<void(NativeState*, InTape&, OutTape&)> work;
  // Static cost estimate (abstract machine operations per firing), split into
  // floating-point and total ops so MFLOPS accounting stays honest.
  double cost_ops{0};
  double cost_flops{0};
  bool stateful{false};

  [[nodiscard]] bool does_peek() const { return peek > pop; }
};

}  // namespace sit::ir
