#pragma once
// Builder eDSL for work functions and filter specs.
//
// The paper's benchmarks are written in StreamIt's Java syntax; here the same
// programs are authored in C++ against this small expression-wrapper DSL,
// which produces the exact AST of ast.h.  Example (a 5-tap FIR):
//
//   FilterSpec f = filter("FIR").rates(5, 1, 1)
//       .array("h", 5)
//       .init(for_("i", 0, 5, set_at("h", v("i"), ...)))
//       .work(seq({let("sum", c(0.0)),
//                  for_("i", 0, 5,
//                       let("sum", v("sum") + peek_(v("i")) * at("h", v("i")))),
//                  discard(1), push_(v("sum"))}));

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "ir/ast.h"
#include "ir/filter.h"
#include "ir/graph.h"

namespace sit::ir::dsl {

// ---- expression wrapper ------------------------------------------------------

struct E {
  ExprP e;
  E(ExprP p) : e(std::move(p)) {}                 // NOLINT
  E(int i) : e(iconst(i)) {}                      // NOLINT
  E(std::int64_t i) : e(iconst(i)) {}             // NOLINT
  E(double d) : e(fconst(d)) {}                   // NOLINT
  operator ExprP() const { return e; }            // NOLINT
};

inline E c(double d) { return E(fconst(d)); }
inline E ci(std::int64_t i) { return E(iconst(i)); }
inline E v(std::string name) { return E(var(std::move(name))); }
inline E at(std::string name, E idx) { return E(aref(std::move(name), idx.e)); }
inline E peek_(E idx) { return E(peek(idx.e)); }
inline E pop_() { return E(pop()); }

inline E operator+(E a, E b) { return E(bin(BinOp::Add, a.e, b.e)); }
inline E operator-(E a, E b) { return E(bin(BinOp::Sub, a.e, b.e)); }
inline E operator*(E a, E b) { return E(bin(BinOp::Mul, a.e, b.e)); }
inline E operator/(E a, E b) { return E(bin(BinOp::Div, a.e, b.e)); }
inline E operator%(E a, E b) { return E(bin(BinOp::Mod, a.e, b.e)); }
inline E operator-(E a) { return E(un(UnOp::Neg, a.e)); }
inline E operator<(E a, E b) { return E(bin(BinOp::Lt, a.e, b.e)); }
inline E operator<=(E a, E b) { return E(bin(BinOp::Le, a.e, b.e)); }
inline E operator>(E a, E b) { return E(bin(BinOp::Gt, a.e, b.e)); }
inline E operator>=(E a, E b) { return E(bin(BinOp::Ge, a.e, b.e)); }
inline E operator==(E a, E b) { return E(bin(BinOp::Eq, a.e, b.e)); }
inline E operator!=(E a, E b) { return E(bin(BinOp::Ne, a.e, b.e)); }
inline E operator&&(E a, E b) { return E(bin(BinOp::LAnd, a.e, b.e)); }
inline E operator||(E a, E b) { return E(bin(BinOp::LOr, a.e, b.e)); }
inline E operator&(E a, E b) { return E(bin(BinOp::BAnd, a.e, b.e)); }
inline E operator|(E a, E b) { return E(bin(BinOp::BOr, a.e, b.e)); }
inline E operator^(E a, E b) { return E(bin(BinOp::BXor, a.e, b.e)); }
inline E operator<<(E a, E b) { return E(bin(BinOp::Shl, a.e, b.e)); }
inline E operator>>(E a, E b) { return E(bin(BinOp::Shr, a.e, b.e)); }

inline E min_(E a, E b) { return E(bin(BinOp::Min, a.e, b.e)); }
inline E max_(E a, E b) { return E(bin(BinOp::Max, a.e, b.e)); }
inline E pow_(E a, E b) { return E(bin(BinOp::Pow, a.e, b.e)); }
inline E sin_(E a) { return E(un(UnOp::Sin, a.e)); }
inline E cos_(E a) { return E(un(UnOp::Cos, a.e)); }
inline E tan_(E a) { return E(un(UnOp::Tan, a.e)); }
inline E exp_(E a) { return E(un(UnOp::Exp, a.e)); }
inline E log_(E a) { return E(un(UnOp::Log, a.e)); }
inline E sqrt_(E a) { return E(un(UnOp::Sqrt, a.e)); }
inline E abs_(E a) { return E(un(UnOp::Abs, a.e)); }
inline E floor_(E a) { return E(un(UnOp::Floor, a.e)); }
inline E to_int(E a) { return E(un(UnOp::ToInt, a.e)); }
inline E to_float(E a) { return E(un(UnOp::ToFloat, a.e)); }
inline E sel(E cnd, E t, E f) { return E(cond(cnd.e, t.e, f.e)); }

// ---- statement helpers -------------------------------------------------------

inline StmtP seq(std::vector<StmtP> stmts) { return block(std::move(stmts)); }
inline StmtP let(std::string name, E val) { return assign(std::move(name), val.e); }
inline StmtP set_at(std::string name, E idx, E val) {
  return array_assign(std::move(name), idx.e, val.e);
}
inline StmtP push_(E val) { return push(val.e); }
inline StmtP discard(int n) { return pop_n(iconst(n)); }
inline StmtP for_(std::string vname, E lo, E hi, StmtP body) {
  return for_loop(std::move(vname), lo.e, hi.e, std::move(body));
}
inline StmtP for_(std::string vname, E lo, E hi, std::vector<StmtP> body) {
  return for_loop(std::move(vname), lo.e, hi.e, block(std::move(body)));
}
inline StmtP if_(E cnd, StmtP body) { return if_then(cnd.e, std::move(body)); }
inline StmtP if_(E cnd, StmtP body, StmtP els) {
  return if_else(cnd.e, std::move(body), std::move(els));
}

// ---- filter spec builder -------------------------------------------------------

class FilterBuilder {
 public:
  explicit FilterBuilder(std::string name) { spec_.name = std::move(name); }

  FilterBuilder& rates(int peek, int pop, int push) {
    spec_.peek = peek;
    spec_.pop = pop;
    spec_.push = push;
    return *this;
  }

  FilterBuilder& scalar(std::string name, Value initial = Value{0.0}) {
    VarDecl d;
    d.name = std::move(name);
    d.init = {initial};
    spec_.state.push_back(std::move(d));
    return *this;
  }

  FilterBuilder& iscalar(std::string name, std::int64_t initial = 0) {
    VarDecl d;
    d.name = std::move(name);
    d.is_int = true;
    d.init = {Value{initial}};
    spec_.state.push_back(std::move(d));
    return *this;
  }

  FilterBuilder& array(std::string name, std::int64_t size) {
    VarDecl d;
    d.name = std::move(name);
    d.is_array = true;
    d.size = size;
    spec_.state.push_back(std::move(d));
    return *this;
  }

  FilterBuilder& array_init(std::string name, std::vector<Value> values) {
    VarDecl d;
    d.name = std::move(name);
    d.is_array = true;
    d.size = static_cast<std::int64_t>(values.size());
    d.init = std::move(values);
    spec_.state.push_back(std::move(d));
    return *this;
  }

  FilterBuilder& init(StmtP s) {
    spec_.init = std::move(s);
    return *this;
  }
  FilterBuilder& init(std::vector<StmtP> s) {
    spec_.init = block(std::move(s));
    return *this;
  }

  FilterBuilder& work(StmtP s) {
    spec_.work = std::move(s);
    return *this;
  }
  FilterBuilder& work(std::vector<StmtP> s) {
    spec_.work = block(std::move(s));
    return *this;
  }

  FilterBuilder& handler(std::string method, std::vector<std::string> params,
                         StmtP body) {
    spec_.handlers[std::move(method)] = Handler{std::move(params), std::move(body)};
    return *this;
  }

  [[nodiscard]] FilterSpec build() const { return spec_; }
  [[nodiscard]] NodeP node() const { return make_filter(spec_); }

 private:
  FilterSpec spec_;
};

inline FilterBuilder filter(std::string name) { return FilterBuilder(std::move(name)); }

// An identity filter: pushes exactly what it pops.  Appears throughout the
// paper's examples (FFT reordering, CheckFreqHop, ...).
NodeP identity(const std::string& name = "Identity");

}  // namespace sit::ir::dsl
