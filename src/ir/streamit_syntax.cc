#include "ir/streamit_syntax.h"

#include <map>
#include <sstream>

namespace sit::ir {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || (std::isdigit(static_cast<unsigned char>(out[0])) != 0)) {
    out = "S" + out;
  }
  return out;
}

void emit_expr(const ExprP& e, std::ostringstream& os) {
  switch (e->kind) {
    case Expr::Kind::IntConst:
      os << e->ival;
      break;
    case Expr::Kind::FloatConst:
      os << e->fval << "f";
      break;
    case Expr::Kind::Var:
      os << e->name;
      break;
    case Expr::Kind::ArrayRef:
      os << e->name << "[";
      emit_expr(e->a, os);
      os << "]";
      break;
    case Expr::Kind::Peek:
      os << "input.peek(";
      emit_expr(e->a, os);
      os << ")";
      break;
    case Expr::Kind::Pop:
      os << "input.pop()";
      break;
    case Expr::Kind::Bin:
      switch (e->bop) {
        case BinOp::Min:
        case BinOp::Max:
        case BinOp::Pow:
          os << (e->bop == BinOp::Min ? "min(" : e->bop == BinOp::Max ? "max(" : "pow(");
          emit_expr(e->a, os);
          os << ", ";
          emit_expr(e->b, os);
          os << ")";
          break;
        default:
          os << "(";
          emit_expr(e->a, os);
          os << " " << to_string(e->bop) << " ";
          emit_expr(e->b, os);
          os << ")";
      }
      break;
    case Expr::Kind::Un:
      os << to_string(e->uop) << "(";
      emit_expr(e->a, os);
      os << ")";
      break;
    case Expr::Kind::Cond:
      os << "(";
      emit_expr(e->a, os);
      os << " ? ";
      emit_expr(e->b, os);
      os << " : ";
      emit_expr(e->c, os);
      os << ")";
      break;
  }
}

std::string expr(const ExprP& e) {
  std::ostringstream os;
  emit_expr(e, os);
  return os.str();
}

void emit_stmt(const StmtP& s, int depth, std::ostringstream& os) {
  if (!s) return;
  const std::string pad(static_cast<std::size_t>(depth) * 3, ' ');
  switch (s->kind) {
    case Stmt::Kind::Block:
      for (const auto& c : s->stmts) emit_stmt(c, depth, os);
      break;
    case Stmt::Kind::Assign:
      os << pad << s->name << " = " << expr(s->value) << ";\n";
      break;
    case Stmt::Kind::ArrayAssign:
      os << pad << s->name << "[" << expr(s->index) << "] = " << expr(s->value)
         << ";\n";
      break;
    case Stmt::Kind::Push:
      os << pad << "output.push(" << expr(s->value) << ");\n";
      break;
    case Stmt::Kind::PopN:
      os << pad << "for (int _p = 0; _p < " << expr(s->index)
         << "; _p++) input.pop();\n";
      break;
    case Stmt::Kind::For:
      os << pad << "for (int " << s->name << " = " << expr(s->lo) << "; "
         << s->name << " < " << expr(s->hi) << "; " << s->name
         << " += " << expr(s->step) << ") {\n";
      emit_stmt(s->body, depth + 1, os);
      os << pad << "}\n";
      break;
    case Stmt::Kind::If:
      os << pad << "if (" << expr(s->cond) << ") {\n";
      emit_stmt(s->body, depth + 1, os);
      if (s->elseBody) {
        os << pad << "} else {\n";
        emit_stmt(s->elseBody, depth + 1, os);
      }
      os << pad << "}\n";
      break;
    case Stmt::Kind::Send: {
      os << pad << s->name << "." << s->method << "(";
      for (std::size_t i = 0; i < s->args.size(); ++i) {
        os << (i ? ", " : "") << expr(s->args[i]);
      }
      os << ", new TimeInterval(" << s->latMin << ", " << s->latMax << "));\n";
      break;
    }
  }
}

void emit_split(const Splitter& sp, std::ostringstream& os) {
  if (sp.kind == SJKind::Duplicate) {
    os << "      setSplitter(DUPLICATE);\n";
  } else if (sp.kind == SJKind::Null) {
    os << "      setSplitter(NULL);\n";
  } else {
    os << "      setSplitter(WEIGHTED_ROUND_ROBIN(";
    for (std::size_t i = 0; i < sp.weights.size(); ++i) {
      os << (i ? ", " : "") << sp.weights[i];
    }
    os << "));\n";
  }
}

void emit_join(const Joiner& jn, std::ostringstream& os) {
  if (jn.kind == SJKind::Null) {
    os << "      setJoiner(NULL);\n";
    return;
  }
  os << "      setJoiner(WEIGHTED_ROUND_ROBIN(";
  for (std::size_t i = 0; i < jn.weights.size(); ++i) {
    os << (i ? ", " : "") << jn.weights[i];
  }
  os << "));\n";
}

class Emitter {
 public:
  std::string run(const NodeP& root) {
    const std::string top = emit(root);
    std::ostringstream os;
    for (const auto& cls : order_) os << classes_.at(cls) << "\n";
    os << "class Main extends Stream {\n   void init() {\n      add(new "
       << top << "());\n   }\n}\n";
    return os.str();
  }

 private:
  std::string unique(const std::string& base) {
    std::string name = sanitize(base);
    int n = 1;
    while (classes_.count(name) != 0) name = sanitize(base) + std::to_string(n++);
    return name;
  }

  std::string emit(const NodeP& node) {
    std::ostringstream os;
    switch (node->kind) {
      case Node::Kind::Filter: {
        const std::string cls = unique(node->filter.name);
        classes_[cls] = "";  // reserve
        classes_[cls] = filter_to_streamit_named(node->filter, cls);
        order_.push_back(cls);
        return cls;
      }
      case Node::Kind::Native: {
        const std::string cls = unique(node->native.name);
        std::ostringstream c;
        c << "// native (compiler-generated) filter: peek=" << node->native.peek
          << " pop=" << node->native.pop << " push=" << node->native.push
          << "\nclass " << cls << " extends Filter { /* opaque */ }\n";
        classes_[cls] = c.str();
        order_.push_back(cls);
        return cls;
      }
      case Node::Kind::Pipeline: {
        std::vector<std::string> kids;
        kids.reserve(node->children.size());
        for (const auto& ch : node->children) kids.push_back(emit(ch));
        const std::string cls = unique(node->name);
        os << "class " << cls << " extends Stream {\n   void init() {\n";
        for (const auto& k : kids) os << "      add(new " << k << "());\n";
        os << "   }\n}\n";
        classes_[cls] = os.str();
        order_.push_back(cls);
        return cls;
      }
      case Node::Kind::SplitJoin: {
        std::vector<std::string> kids;
        for (const auto& ch : node->children) kids.push_back(emit(ch));
        const std::string cls = unique(node->name);
        os << "class " << cls << " extends SplitJoin {\n   void init() {\n";
        emit_split(node->split, os);
        for (const auto& k : kids) os << "      add(new " << k << "());\n";
        emit_join(node->join, os);
        os << "   }\n}\n";
        classes_[cls] = os.str();
        order_.push_back(cls);
        return cls;
      }
      case Node::Kind::FeedbackLoop: {
        const std::string body = emit(node->children[0]);
        const std::string loop = emit(node->children[1]);
        const std::string cls = unique(node->name);
        os << "class " << cls << " extends FeedbackLoop {\n   void init() {\n";
        emit_join(node->join, os);
        os << "      setBody(new " << body << "());\n";
        emit_split(node->split, os);
        os << "      setLoop(new " << loop << "());\n";
        os << "      setDelay(" << node->delay << ");\n";
        os << "   }\n";
        os << "   float initPath(int index) {\n      float[] v = {";
        for (std::size_t i = 0; i < node->init_path.size(); ++i) {
          os << (i ? ", " : "") << node->init_path[i] << "f";
        }
        os << "};\n      return v[index];\n   }\n}\n";
        classes_[cls] = os.str();
        order_.push_back(cls);
        return cls;
      }
    }
    return "?";
  }

  static std::string filter_to_streamit_named(const FilterSpec& f,
                                              const std::string& cls) {
    std::ostringstream os;
    os << "class " << cls << " extends Filter {\n";
    os << "   Channel input = new FloatChannel();   // peek " << f.peek
       << ", pop " << f.pop << "\n";
    os << "   Channel output = new FloatChannel();  // push " << f.push << "\n";
    for (const auto& d : f.state) {
      if (d.is_array) {
        os << "   " << (d.is_int ? "int" : "float") << " " << d.name << "[] = new "
           << (d.is_int ? "int" : "float") << "[" << d.size << "];\n";
      } else {
        os << "   " << (d.is_int ? "int" : "float") << " " << d.name << ";\n";
      }
    }
    os << "   void init() {\n";
    for (const auto& d : f.state) {
      if (!d.is_array && !d.init.empty()) {
        os << "      " << d.name << " = " << d.init[0].str() << ";\n";
      }
    }
    if (f.init) emit_stmt(f.init, 2, os);
    os << "   }\n";
    os << "   void work() {\n";
    emit_stmt(f.work, 2, os);
    os << "   }\n";
    for (const auto& [method, h] : f.handlers) {
      os << "   void " << method << "(";
      for (std::size_t i = 0; i < h.params.size(); ++i) {
        os << (i ? ", " : "") << "float " << h.params[i];
      }
      os << ") {\n";
      emit_stmt(h.body, 2, os);
      os << "   }\n";
    }
    os << "}\n";
    return os.str();
  }

  std::map<std::string, std::string> classes_;
  std::vector<std::string> order_;
};

}  // namespace

std::string filter_to_streamit(const FilterSpec& spec) {
  Emitter e;
  return to_streamit(make_filter(spec));
}

std::string to_streamit(const NodeP& root) {
  Emitter e;
  return e.run(root);
}

}  // namespace sit::ir
