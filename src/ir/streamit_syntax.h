#pragma once
// StreamIt surface-syntax emitter.
//
// Renders a stream graph in the Java-like syntax of the paper's appendix
// (classes extending Filter / Stream / SplitJoin / FeedbackLoop, with
// input.pop()/peek() and output.push() in work functions).  Useful for
// inspecting compiler output in the paper's own notation and for
// documentation; this is an emitter only -- programs are authored via the
// builder DSL.

#include <string>

#include "ir/graph.h"

namespace sit::ir {

// Whole-program rendering (one class per distinct node, plus a top-level
// class wiring them together).
std::string to_streamit(const NodeP& root);

// Just one filter's class.
std::string filter_to_streamit(const FilterSpec& spec);

}  // namespace sit::ir
