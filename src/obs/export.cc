#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/jsonlite.h"

namespace sit::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string label(const std::vector<std::string>& names, std::int32_t id,
                  const char* fallback) {
  if (id >= 0 && static_cast<std::size_t>(id) < names.size()) {
    return names[static_cast<std::size_t>(id)];
  }
  return std::string(fallback) + std::to_string(id);
}

struct TaggedEvent {
  TraceEvent ev;
  int tid;
};

void append_event(std::ostringstream& o, bool& first, const TaggedEvent& te,
                  const std::vector<std::string>& actor_names,
                  const std::vector<std::string>& edge_names) {
  const TraceEvent& e = te.ev;
  const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
  char ts[48];
  std::snprintf(ts, sizeof ts, "%.3f", ts_us);

  std::string name;
  std::string cat;
  char ph = 'i';
  std::string args;
  switch (e.kind) {
    case EventKind::FireBegin:
    case EventKind::FireEnd:
      name = label(actor_names, e.id, "actor");
      cat = "fire";
      ph = e.kind == EventKind::FireBegin ? 'B' : 'E';
      break;
    case EventKind::WaitBegin:
    case EventKind::WaitEnd:
      name = std::string("wait:") + to_string(static_cast<WaitKind>(e.arg));
      cat = "stall";
      ph = e.kind == EventKind::WaitBegin ? 'B' : 'E';
      args = "{\"actor\": \"" + escape(label(actor_names, e.id, "actor")) + "\"}";
      break;
    case EventKind::PushBatch:
    case EventKind::PopBatch:
      name = e.kind == EventKind::PushBatch ? "push" : "pop";
      cat = "channel";
      args = "{\"edge\": \"" + escape(label(edge_names, e.id, "edge")) +
             "\", \"items\": " + std::to_string(e.arg) + "}";
      break;
    case EventKind::MessageSend:
    case EventKind::MessageDeliver:
      name = e.kind == EventKind::MessageSend ? "msg-send" : "msg-deliver";
      cat = "teleport";
      args = "{\"actor\": \"" + escape(label(actor_names, e.id, "actor")) +
             "\", \"firing\": " + std::to_string(e.arg) + "}";
      break;
    case EventKind::Phase:
      name = std::string("phase:") + to_string(static_cast<PhaseId>(e.id));
      cat = "phase";
      break;
  }

  if (!first) o << ",\n";
  first = false;
  o << "    {\"name\": \"" << escape(name) << "\", \"cat\": \"" << cat
    << "\", \"ph\": \"" << ph << "\", \"ts\": " << ts
    << ", \"pid\": 0, \"tid\": " << te.tid;
  if (ph == 'i') o << ", \"s\": \"t\"";
  if (!args.empty()) o << ", \"args\": " << args;
  o << "}";
}

}  // namespace

std::string chrome_trace_json(const Recorder& rec,
                              const std::vector<std::string>& actor_names,
                              const std::vector<std::string>& edge_names,
                              const std::string& app,
                              const std::string& engine) {
  // Concatenate per-thread logs (each already time-ordered), then stable-sort
  // by timestamp: equal-timestamp events of one thread keep their emission
  // order, so B never migrates past its E.
  std::vector<TaggedEvent> evs;
  for (const ThreadBuffer* b : rec.buffers()) {
    for (const TraceEvent& e : b->events()) {
      evs.push_back(TaggedEvent{e, b->tid()});
    }
  }
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TaggedEvent& x, const TaggedEvent& y) {
                     return x.ev.ts_ns < y.ev.ts_ns;
                   });

  std::ostringstream o;
  o << "{\n  \"traceEvents\": [\n";
  bool first = true;
  for (const TaggedEvent& te : evs) {
    append_event(o, first, te, actor_names, edge_names);
  }
  o << "\n  ],\n";
  o << "  \"displayTimeUnit\": \"ms\",\n";
  o << "  \"otherData\": {\"app\": \"" << escape(app) << "\", \"engine\": \""
    << escape(engine) << "\", \"dropped_events\": " << rec.total_dropped()
    << "}\n}\n";
  return o.str();
}

bool validate_chrome_trace(const std::string& text, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };

  json::Value root;
  std::string perr;
  if (!json::parse(text, &root, &perr)) return fail("invalid JSON: " + perr);
  if (!root.is_object()) return fail("top level is not an object");
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }

  // Per-(pid,tid): a stack of open B names and the last timestamp seen.
  struct Track {
    std::vector<std::string> open;
    double last_ts{-1e300};
  };
  std::map<std::pair<double, double>, Track> tracks;

  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const json::Value& e = events->arr[i];
    const std::string at = "event " + std::to_string(i);
    if (!e.is_object()) return fail(at + " is not an object");
    const json::Value* ph = e.find("ph");
    const json::Value* ts = e.find("ts");
    const json::Value* pid = e.find("pid");
    const json::Value* tid = e.find("tid");
    const json::Value* name = e.find("name");
    if (ph == nullptr || !ph->is_string() || ph->str.size() != 1) {
      return fail(at + ": missing ph");
    }
    if (ts == nullptr || !ts->is_number()) return fail(at + ": missing ts");
    if (pid == nullptr || !pid->is_number()) return fail(at + ": missing pid");
    if (tid == nullptr || !tid->is_number()) return fail(at + ": missing tid");
    if (name == nullptr || !name->is_string() || name->str.empty()) {
      return fail(at + ": missing name");
    }

    Track& tr = tracks[{pid->number, tid->number}];
    if (ts->number < tr.last_ts) {
      return fail(at + ": timestamps not monotone on tid " +
                  std::to_string(tid->number));
    }
    tr.last_ts = ts->number;

    switch (ph->str[0]) {
      case 'B':
        tr.open.push_back(name->str);
        break;
      case 'E':
        if (tr.open.empty()) {
          return fail(at + ": E without matching B on tid " +
                      std::to_string(tid->number));
        }
        if (tr.open.back() != name->str) {
          return fail(at + ": E name '" + name->str + "' does not match open B '" +
                      tr.open.back() + "'");
        }
        tr.open.pop_back();
        break;
      case 'i':
      case 'I':
      case 'X':
      case 'C':
      case 'M':
        break;
      default:
        return fail(at + ": unknown phase '" + ph->str + "'");
    }
  }

  for (const auto& [key, tr] : tracks) {
    if (!tr.open.empty()) {
      return fail("unclosed B event '" + tr.open.back() + "' on tid " +
                  std::to_string(key.second));
    }
  }
  return true;
}

std::string profile_report(const MetricsSnapshot& m) {
  std::ostringstream o;
  char line[256];

  o << "== streamprof: " << m.app << " (engine=" << m.engine
    << ", threads=" << m.threads << ") ==\n";
  if (m.threaded) {
    std::snprintf(line, sizeof line,
                  "threaded: yes (%d workers, predicted speedup %.2fx)\n",
                  m.threads, m.predicted_speedup);
    o << line;
  } else {
    o << "threaded: no (" << m.fallback;
    if (!m.fallback_detail.empty()) o << ": " << m.fallback_detail;
    o << ")\n";
  }

  std::int64_t total_wall = 0;
  double total_calib = 0;
  for (const ActorSnapshot& a : m.actors) {
    total_wall += a.wall_ns;
    total_calib += a.calib_cycles;
  }

  // Hot actors, by measured wall time when we have it, else by the
  // calibration cost table the partitioners use.
  std::vector<const ActorSnapshot*> order;
  order.reserve(m.actors.size());
  for (const ActorSnapshot& a : m.actors) order.push_back(&a);
  std::stable_sort(order.begin(), order.end(),
                   [total_wall](const ActorSnapshot* x, const ActorSnapshot* y) {
                     if (total_wall > 0) return x->wall_ns > y->wall_ns;
                     return x->calib_cycles > y->calib_cycles;
                   });

  o << "\nhot actors";
  o << (total_wall > 0 ? " (by measured wall time):\n"
                       : " (no timing captured; by calibration cycles):\n");
  std::snprintf(line, sizeof line, "%-28s %6s %10s %8s %9s %11s %13s %6s\n",
                "actor", "wrk", "firings", "wall%", "wall-ms", "ns/firing",
                "calib-cycles", "cal%");
  o << line;
  int shown = 0;
  for (const ActorSnapshot* a : order) {
    if (++shown > 24) {
      o << "  ... " << (order.size() - 24) << " more\n";
      break;
    }
    const double wall_pct =
        total_wall > 0 ? 100.0 * static_cast<double>(a->wall_ns) /
                             static_cast<double>(total_wall)
                       : 0.0;
    const double cal_pct = total_calib > 0 ? 100.0 * a->calib_cycles / total_calib
                                           : 0.0;
    const double per_fire =
        a->firings > 0 ? static_cast<double>(a->wall_ns) /
                             static_cast<double>(a->firings)
                       : 0.0;
    std::snprintf(line, sizeof line,
                  "%-28.28s %6d %10" PRId64 " %7.1f%% %9.3f %11.0f %13.0f %5.1f%%\n",
                  a->name.c_str(), a->worker, a->firings, wall_pct,
                  static_cast<double>(a->wall_ns) / 1e6, per_fire,
                  a->calib_cycles, cal_pct);
    o << line;
  }

  if (!m.workers.empty()) {
    o << "\nworker utilization (steady state):\n";
    std::snprintf(line, sizeof line, "%6s %7s %9s %9s %9s %6s\n", "worker",
                  "actors", "wall-ms", "busy-ms", "wait-ms", "util");
    o << line;
    for (const WorkerSnapshot& w : m.workers) {
      std::snprintf(line, sizeof line,
                    "%6d %7d %9.3f %9.3f %9.3f %5.1f%%\n", w.id, w.actors,
                    static_cast<double>(w.wall_ns) / 1e6,
                    static_cast<double>(w.wall_ns - w.wait_ns) / 1e6,
                    static_cast<double>(w.wait_ns) / 1e6,
                    100.0 * w.utilization());
      o << line;
    }
  }

  // Busiest queues: peak live items per edge.
  std::vector<const EdgeSnapshot*> eorder;
  for (const EdgeSnapshot& e : m.edges) eorder.push_back(&e);
  std::stable_sort(eorder.begin(), eorder.end(),
                   [](const EdgeSnapshot* x, const EdgeSnapshot* y) {
                     return x->peak_items > y->peak_items;
                   });
  o << "\nbusiest channels:\n";
  std::snprintf(line, sizeof line, "%-40s %12s %12s %10s %5s\n", "edge",
                "pushed", "popped", "peak", "ring");
  o << line;
  shown = 0;
  for (const EdgeSnapshot* e : eorder) {
    if (++shown > 12) {
      o << "  ... " << (eorder.size() - 12) << " more\n";
      break;
    }
    std::snprintf(line, sizeof line, "%-40.40s %12" PRId64 " %12" PRId64
                  " %10" PRId64 " %5s\n",
                  e->name.c_str(), e->pushed, e->popped, e->peak_items,
                  e->ring ? "yes" : "no");
    o << line;
  }

  if (m.trace_events > 0 || m.trace_dropped > 0) {
    o << "\ntrace: " << m.trace_events << " events";
    if (m.trace_dropped > 0) o << " (" << m.trace_dropped << " dropped)";
    o << "\n";
  }
  return o.str();
}

}  // namespace sit::obs
