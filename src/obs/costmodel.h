#pragma once
// The calibrated cost model: measured actor weights with static fallback.
//
// Loading a CostProfile (obs/costprofile.h) turns the compiler's cost
// queries from purely static estimates into measured ones.  The model maps
// flat-actor names to a weight in *modeled cycles per firing*: measured
// ns/firing scaled by the profile's corpus-wide cycles_per_ns bridge, so a
// measured weight and a static `linear::leaf_ops_per_firing` estimate are
// directly comparable -- which is what lets every consumer (LPT partitioner,
// coarsen fission gate, selective fusion, pass-cost reporting) fall back to
// the static number for any actor the profile never saw (renamed, fused,
// fissed, or simply new).
//
// This lives in obs -- the leaf library every layer links -- because the
// consumers span sched, parallel, linear, and opt, and linear already links
// sched (the reverse edge would be circular).
//
// Process-wide state: one active model, empty (source "static") by default.
// The first query consults SIT_COST=FILE once; streamc --cost and tests
// install or clear models explicitly.  Not thread-safe against concurrent
// loads (loads happen at tool startup / test setup, before workers exist);
// concurrent reads are fine.

#include <string>

#include "obs/costprofile.h"

namespace sit::obs {

class CostModel {
 public:
  CostModel() = default;

  // Install a profile.  `path` is provenance only (surfaced in reports and
  // bench JSON); the profile itself carries the data.
  void install(CostProfile profile, std::string path);
  void clear();

  [[nodiscard]] bool calibrated() const { return calibrated_; }
  [[nodiscard]] const char* source() const {
    return calibrated_ ? "calibrated" : "static";
  }
  [[nodiscard]] const std::string& profile_path() const { return path_; }
  [[nodiscard]] const CostProfile& profile() const { return profile_; }
  [[nodiscard]] double cycles_per_ns() const { return cycles_per_ns_; }

  // Measured weight of one firing of `actor`, in modeled cycles.  False when
  // the model is static or the profile has no timed firings for that name --
  // the caller keeps its static estimate.
  bool measured_cycles_per_fire(const std::string& actor, double* cycles) const;

  // Measured / modeled ratio for `actor` (1.0 = model was exact; > 1 = the
  // actor runs slower than modeled).  False when either side is unknown.
  bool divergence(const std::string& actor, double* ratio) const;

 private:
  CostProfile profile_;
  std::string path_;
  double cycles_per_ns_{1.0};
  bool calibrated_{false};
};

// The process-wide active model.  First access resolves SIT_COST=FILE (a
// load failure is reported once on stderr and the model stays static --
// tools that must hard-fail load explicitly via load_cost_model).
const CostModel& cost_model();

// Install the profile at `path` as the active model.  Returns false (with
// *err set) on read/parse/validation failure; the active model is unchanged.
bool load_cost_model(const std::string& path, std::string* err);

// Install an in-memory profile (tests, harvest-then-apply flows).
void set_cost_model(CostProfile profile, const std::string& path);

// Back to static costs (tests).  The next cost_model() call re-consults
// SIT_COST, so tests that set the variable must also clear it.
void reset_cost_model();

}  // namespace sit::obs
