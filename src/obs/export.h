#pragma once
// Trace and profile exporters.
//
// Two consumers, two formats:
//   * chrome_trace_json -- the Chrome trace-event JSON array format, loadable
//     in Perfetto / chrome://tracing: firings become matched B/E duration
//     events on per-thread tracks, spin waits become B/E events in a "stall"
//     category, channel batches / teleport messages / phase markers become
//     instant events.  Timestamps are microseconds relative to the
//     recorder's epoch; events are stably sorted by timestamp so every
//     per-thread subsequence stays monotone with B preceding its E.
//   * profile_report -- a human-readable hot-actor table (wall time, firing
//     counts, calibration cycles, histogram tail) plus per-worker
//     steady-state utilization, for terminal consumption by streamprof.
//
// validate_chrome_trace is the structural checker CI runs over emitted
// traces: full JSON parse (obs/jsonlite.h), required keys per event,
// per-thread timestamp monotonicity, and matched, properly nested B/E pairs.

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sit::obs {

// Serialize a recorder's events.  `actor_names` / `edge_names` label events
// by id (out-of-range ids fall back to "actor<N>" / "edge<N>").  `app` and
// `engine` are stamped into the trace's otherData block.
std::string chrome_trace_json(const Recorder& rec,
                              const std::vector<std::string>& actor_names,
                              const std::vector<std::string>& edge_names,
                              const std::string& app, const std::string& engine);

// Structural validation of a Chrome trace-event file; on failure returns
// false and describes the first violation in `*error`.
bool validate_chrome_trace(const std::string& text, std::string* error);

// Human-readable hot-actor profile of a metrics snapshot.
std::string profile_report(const MetricsSnapshot& m);

}  // namespace sit::obs
