#pragma once
// Metrics registry snapshots.
//
// The live counters behind these snapshots are scattered where they are
// cheapest to maintain -- firing tallies and OpCounts in the executors,
// cumulative push/pop counters and high-water marks in the channels/rings,
// wall-ns firing stats and worker busy/wait accounting in the obs::Recorder.
// A MetricsSnapshot pulls them together quiescently (no worker running) into
// one value type that serializes to JSON, so streamprof, the bench binaries,
// and tests all share a single schema.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "runtime/opcounts.h"

namespace sit::obs {

struct ActorSnapshot {
  std::string name;
  std::int64_t firings{0};
  runtime::OpCounts ops;       // abstract-op tallies (zero when count_ops off)
  double calib_cycles{0};      // weighted() cycles -- the partitioners' cost
  int worker{-1};              // owning worker in the threaded runtime
  // Timing (zeros unless tracing was enabled).
  std::int64_t wall_ns{0};
  std::int64_t max_ns{0};
  std::vector<std::int64_t> hist;  // log2 ns-per-firing buckets
  // Typed (dual-plane) specialization status: "typed" when the actor's work
  // runs on the unboxed register file, the stable refusal reason when
  // inference refused, empty when the actor was never a candidate
  // (non-filter, tree fallback, or SIT_TYPED=0).
  std::string typed_status;
  int typed_regs{0};  // registers proven Double everywhere (0 when tagged)
};

struct EdgeSnapshot {
  std::string name;  // "src->dst" using actor names; "input"/"output" at the boundary
  int src{-1};
  int dst{-1};
  std::int64_t pushed{0};       // cumulative n(t)
  std::int64_t popped{0};       // cumulative p(t)
  std::int64_t peak_items{0};   // high-water occupancy
  std::int64_t bound_items{-1}; // static occupancy bound (analysis::
                                // channel_bounds); -1 = unbounded boundary
                                // edge or bound unavailable
  bool ring{false};             // migrated to an SPSC ring
  // Static content tag of the items this edge carries ("int" = provably
  // integer-valued, "double" = not provably integral, empty = typeflow did
  // not run).  Channels physically store double either way; the tag is the
  // typed-dataflow certificate.
  std::string content;
};

// One compilation-pipeline pass as run by the opt::PassManager: wall time
// plus the graph delta it caused (flat actor/edge counts and the modeled
// cost per input item before and after).  Counts are -1 when the graph was
// not flattenable at that boundary (e.g. before `validate` rejected it).
struct PassSnapshot {
  std::string name;
  std::int64_t wall_ns{0};
  int actors_before{-1};
  int actors_after{-1};
  int edges_before{-1};
  int edges_after{-1};
  double cost_before{0};  // modeled cost per input item (linear/cost.h)
  double cost_after{0};
  // Measured cost per input item under the active calibrated model
  // (obs/costmodel.h): per-actor measured weights where the profile has
  // them, static fallback elsewhere.  0 when no calibrated model is active.
  double mcost_before{0};
  double mcost_after{0};
  bool changed{false};
};

struct WorkerSnapshot {
  int id{0};
  int actors{0};
  std::int64_t wall_ns{0};
  std::int64_t wait_ns{0};
  std::int64_t iters{0};
  // Steady-state utilization: 1 - wait/wall (0 when the worker never ran).
  [[nodiscard]] double utilization() const {
    return wall_ns > 0
               ? 1.0 - static_cast<double>(wait_ns) / static_cast<double>(wall_ns)
               : 0.0;
  }
};

struct MetricsSnapshot {
  std::string app;     // filled by the caller (streamprof / bench)
  std::string engine;  // "vm" or "tree"
  int threads{1};
  int batch{1};  // steady iterations per pipeline step (threaded runtime)
  bool threaded{false};
  std::string fallback;         // stable ThreadedReport reason name
  std::string fallback_detail;  // human-readable detail, may be empty
  double predicted_speedup{0};

  // Fused-engine statics (engine == "fused" with an active trace only):
  // superinstruction instance counts by stable name (runtime/fused.h) and
  // the number of internal channels lowered to trace buffers.
  std::vector<std::pair<std::string, std::int64_t>> fused_super;
  int fused_channels{-1};  // -1 = not running a fused trace

  // Typed-dataflow specialization counters (-1 = typed mode off or not
  // surveyed): actors running on the dual-plane register file, their total
  // Double-proven registers, and edges whose content tag is statically
  // known Double.
  int typed_actors{-1};
  int typed_regs{-1};
  int typed_channels{-1};

  // Compilation provenance: the pass pipeline that produced the executed
  // graph (comma-joined spec; empty when the executor was built from a raw
  // graph without the pass manager) and its per-pass stats.
  std::string pipeline;
  std::vector<PassSnapshot> passes;

  // Cost-model provenance and modeled-vs-measured divergence (filled by
  // annotate_cost_model below): which model drove partitioning/selection
  // ("static" or "calibrated"), where its profile came from, and the
  // measured/modeled ratio per actor the profile covers.
  std::string cost_source{"static"};
  std::string cost_profile;  // profile path; empty when static
  std::vector<std::pair<std::string, double>> cost_divergence;

  std::vector<ActorSnapshot> actors;
  std::vector<EdgeSnapshot> edges;
  std::vector<WorkerSnapshot> workers;

  std::int64_t trace_events{0};
  std::int64_t trace_dropped{0};

  [[nodiscard]] std::string to_json() const;
};

// Stamp the active cost model (obs/costmodel.h) into a snapshot: source,
// profile path, and per-actor divergence ratios for the snapshot's actors.
// A no-op beyond defaults when the model is static.  The executors call this
// at the end of metrics_snapshot() so every emitted snapshot records which
// model was live.
void annotate_cost_model(MetricsSnapshot* m);

}  // namespace sit::obs
