#include "obs/jsonlite.h"

#include <cctype>
#include <cstdlib>

namespace sit::obs::json {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : t_(text), err_(err) {}

  bool run(Value* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != t_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (err_ != nullptr) {
      *err_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < t_.size() &&
           (t_[pos_] == ' ' || t_[pos_] == '\t' || t_[pos_] == '\n' ||
            t_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < t_.size() ? t_[pos_] : '\0'; }

  bool literal(std::string_view word) {
    if (t_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(Value* out) {
    if (++depth_ > 64) return fail("nesting too deep");
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(out); break;
      case '[': ok = array(out); break;
      case '"':
        out->kind = Value::Kind::String;
        ok = string(&out->str);
        break;
      case 't':
        out->kind = Value::Kind::Bool;
        out->boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out->kind = Value::Kind::Bool;
        out->boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out->kind = Value::Kind::Null;
        ok = literal("null");
        break;
      default: ok = number(out); break;
    }
    --depth_;
    return ok;
  }

  bool number(Value* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected number");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out->kind = Value::Kind::Number;
    out->number = std::strtod(std::string(t_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return true;
  }

  bool string(std::string* out) {
    if (peek() != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < t_.size()) {
      const char c = t_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= t_.size()) return fail("dangling escape");
        const char e = t_[pos_];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= t_.size()) return fail("truncated \\u escape");
            for (int k = 1; k <= 4; ++k) {
              if (!std::isxdigit(static_cast<unsigned char>(t_[pos_ + k]))) {
                return fail("bad \\u escape");
              }
            }
            pos_ += 4;
            out->push_back('?');  // decoded placeholder; emitters are ASCII
            break;
          }
          default: return fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool array(Value* out) {
    out->kind = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      out->arr.emplace_back();
      skip_ws();
      if (!value(&out->arr.back())) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(Value* out) {
    out->kind = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      out->obj.emplace_back(std::move(key), Value{});
      if (!value(&out->obj.back().second)) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view t_;
  std::string* err_;
  std::size_t pos_{0};
  int depth_{0};
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* err) {
  *out = Value{};
  return Parser(text, err).run(out);
}

}  // namespace sit::obs::json
