#include "obs/trace.h"

namespace sit::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::FireBegin: return "fire-begin";
    case EventKind::FireEnd: return "fire-end";
    case EventKind::WaitBegin: return "wait-begin";
    case EventKind::WaitEnd: return "wait-end";
    case EventKind::PushBatch: return "push-batch";
    case EventKind::PopBatch: return "pop-batch";
    case EventKind::MessageSend: return "message-send";
    case EventKind::MessageDeliver: return "message-deliver";
    case EventKind::Phase: return "phase";
  }
  return "?";
}

const char* to_string(WaitKind k) {
  switch (k) {
    case WaitKind::Input: return "input";
    case WaitKind::Space: return "space";
    case WaitKind::Window: return "window";
  }
  return "?";
}

const char* to_string(PhaseId p) {
  switch (p) {
    case PhaseId::Init: return "init";
    case PhaseId::Calibration: return "calibration";
    case PhaseId::Steady: return "steady";
  }
  return "?";
}

}  // namespace sit::obs
