#include "obs/metrics.h"

#include <sstream>

#include "obs/costmodel.h"

namespace sit::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream o;
  o << "{\n";
  o << "  \"app\": \"" << escape(app) << "\",\n";
  o << "  \"engine\": \"" << escape(engine) << "\",\n";
  o << "  \"threads\": " << threads << ",\n";
  o << "  \"batch\": " << batch << ",\n";
  o << "  \"threaded\": " << (threaded ? "true" : "false") << ",\n";
  o << "  \"fallback\": \"" << escape(fallback) << "\",\n";
  o << "  \"fallback_detail\": \"" << escape(fallback_detail) << "\",\n";
  o << "  \"predicted_speedup\": " << predicted_speedup << ",\n";
  if (fused_channels >= 0) {
    o << "  \"fused_channels\": " << fused_channels << ",\n";
    o << "  \"fused_super\": {";
    for (std::size_t i = 0; i < fused_super.size(); ++i) {
      o << "\"" << escape(fused_super[i].first)
        << "\": " << fused_super[i].second
        << (i + 1 < fused_super.size() ? ", " : "");
    }
    o << "},\n";
  }
  if (typed_actors >= 0) {
    o << "  \"typed_actors\": " << typed_actors << ",\n";
    o << "  \"typed_regs\": " << typed_regs << ",\n";
    o << "  \"typed_channels\": " << typed_channels << ",\n";
  }
  o << "  \"trace_events\": " << trace_events << ",\n";
  o << "  \"trace_dropped\": " << trace_dropped << ",\n";

  o << "  \"cost_model\": {\"source\": \"" << escape(cost_source)
    << "\", \"profile\": \"" << escape(cost_profile) << "\", \"divergence\": {";
  for (std::size_t i = 0; i < cost_divergence.size(); ++i) {
    o << "\"" << escape(cost_divergence[i].first)
      << "\": " << cost_divergence[i].second
      << (i + 1 < cost_divergence.size() ? ", " : "");
  }
  o << "}},\n";

  o << "  \"pipeline\": \"" << escape(pipeline) << "\",\n";
  o << "  \"passes\": [\n";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const PassSnapshot& p = passes[i];
    o << "    {\"name\": \"" << escape(p.name) << "\", \"wall_ns\": " << p.wall_ns
      << ", \"actors_before\": " << p.actors_before
      << ", \"actors_after\": " << p.actors_after
      << ", \"edges_before\": " << p.edges_before
      << ", \"edges_after\": " << p.edges_after
      << ", \"cost_before\": " << p.cost_before
      << ", \"cost_after\": " << p.cost_after
      << ", \"mcost_before\": " << p.mcost_before
      << ", \"mcost_after\": " << p.mcost_after
      << ", \"changed\": " << (p.changed ? "true" : "false") << "}"
      << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  o << "  ],\n";

  o << "  \"actors\": [\n";
  for (std::size_t i = 0; i < actors.size(); ++i) {
    const ActorSnapshot& a = actors[i];
    o << "    {\"name\": \"" << escape(a.name) << "\", \"firings\": " << a.firings
      << ", \"worker\": " << a.worker << ", \"calib_cycles\": " << a.calib_cycles
      << ", \"wall_ns\": " << a.wall_ns << ", \"max_ns\": " << a.max_ns
      << ", \"ops\": {\"int_ops\": " << a.ops.int_ops
      << ", \"flops\": " << a.ops.flops << ", \"divs\": " << a.ops.divs
      << ", \"trans\": " << a.ops.trans << ", \"mem\": " << a.ops.mem
      << ", \"channel\": " << a.ops.channel << "}";
    if (!a.typed_status.empty()) {
      o << ", \"typed\": \"" << escape(a.typed_status)
        << "\", \"typed_regs\": " << a.typed_regs;
    }
    if (!a.hist.empty()) {
      o << ", \"hist_ns_log2\": [";
      for (std::size_t b = 0; b < a.hist.size(); ++b) {
        o << a.hist[b] << (b + 1 < a.hist.size() ? ", " : "");
      }
      o << "]";
    }
    o << "}" << (i + 1 < actors.size() ? "," : "") << "\n";
  }
  o << "  ],\n";

  o << "  \"edges\": [\n";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const EdgeSnapshot& e = edges[i];
    o << "    {\"name\": \"" << escape(e.name) << "\", \"src\": " << e.src
      << ", \"dst\": " << e.dst << ", \"pushed\": " << e.pushed
      << ", \"popped\": " << e.popped << ", \"peak_items\": " << e.peak_items
      << ", \"bound_items\": " << e.bound_items
      << ", \"ring\": " << (e.ring ? "true" : "false");
    if (!e.content.empty()) o << ", \"content\": \"" << escape(e.content) << "\"";
    o << "}" << (i + 1 < edges.size() ? "," : "") << "\n";
  }
  o << "  ],\n";

  o << "  \"workers\": [\n";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerSnapshot& w = workers[i];
    o << "    {\"id\": " << w.id << ", \"actors\": " << w.actors
      << ", \"wall_ns\": " << w.wall_ns << ", \"wait_ns\": " << w.wait_ns
      << ", \"iters\": " << w.iters << ", \"utilization\": " << w.utilization()
      << "}" << (i + 1 < workers.size() ? "," : "") << "\n";
  }
  o << "  ]\n";
  o << "}\n";
  return o.str();
}

void annotate_cost_model(MetricsSnapshot* m) {
  const CostModel& cm = cost_model();
  m->cost_source = cm.source();
  m->cost_profile = cm.profile_path();
  m->cost_divergence.clear();
  if (!cm.calibrated()) return;
  for (const ActorSnapshot& a : m->actors) {
    double ratio = 0.0;
    if (cm.divergence(a.name, &ratio)) {
      m->cost_divergence.emplace_back(a.name, ratio);
    }
  }
}

}  // namespace sit::obs
