#pragma once
// Minimal JSON reader.
//
// Just enough of RFC 8259 to validate and walk the files this repo itself
// emits (Chrome trace-event JSON, metrics snapshots, BENCH_*.json): all
// value kinds, nested arrays/objects, string escapes (\uXXXX accepted and
// decoded as a single placeholder character -- the emitters never produce
// non-ASCII).  No external dependency; errors carry a byte offset.

#include <string>
#include <string_view>
#include <vector>

namespace sit::obs::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind{Kind::Null};
  bool boolean{false};
  double number{0};
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
};

// Parse `text` into `*out`.  On failure returns false and, when `err` is
// non-null, describes the problem and its byte offset.
bool parse(std::string_view text, Value* out, std::string* err);

}  // namespace sit::obs::json
