#include "obs/costmodel.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sit::obs {

void CostModel::install(CostProfile profile, std::string path) {
  profile_ = std::move(profile);
  path_ = std::move(path);
  cycles_per_ns_ = profile_.cycles_per_ns();
  calibrated_ = true;
}

void CostModel::clear() {
  profile_ = CostProfile{};
  path_.clear();
  cycles_per_ns_ = 1.0;
  calibrated_ = false;
}

bool CostModel::measured_cycles_per_fire(const std::string& actor,
                                         double* cycles) const {
  if (!calibrated_) return false;
  const CostProfileActor* a = profile_.find(actor);
  if (a == nullptr || a->firings <= 0 || a->wall_ns <= 0) return false;
  *cycles = a->ns_per_fire() * cycles_per_ns_;
  return true;
}

bool CostModel::divergence(const std::string& actor, double* ratio) const {
  double measured = 0.0;
  if (!measured_cycles_per_fire(actor, &measured)) return false;
  const CostProfileActor* a = profile_.find(actor);
  if (a->model_cycles_per_fire <= 0) return false;
  *ratio = measured / a->model_cycles_per_fire;
  return true;
}

namespace {

CostModel& mutable_model() {
  static CostModel model;
  return model;
}

// One-shot SIT_COST resolution state: 0 = not yet consulted, 1 = consulted.
bool& env_resolved() {
  static bool resolved = false;
  return resolved;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

const CostModel& cost_model() {
  if (!env_resolved()) {
    env_resolved() = true;
    if (const char* path = std::getenv("SIT_COST");
        path != nullptr && path[0] != '\0') {
      std::string err;
      if (!load_cost_model(path, &err)) {
        std::fprintf(stderr,
                     "sit: SIT_COST=%s ignored: %s (costs stay static)\n",
                     path, err.c_str());
      }
    }
  }
  return mutable_model();
}

bool load_cost_model(const std::string& path, std::string* err) {
  std::string text;
  if (!read_file(path, &text)) {
    if (err != nullptr) *err = "cannot read '" + path + "'";
    return false;
  }
  CostProfile profile;
  std::string perr;
  if (!CostProfile::parse(text, &profile, &perr)) {
    if (err != nullptr) *err = path + ": " + perr;
    return false;
  }
  env_resolved() = true;
  mutable_model().install(std::move(profile), path);
  return true;
}

void set_cost_model(CostProfile profile, const std::string& path) {
  env_resolved() = true;
  mutable_model().install(std::move(profile), path);
}

void reset_cost_model() {
  env_resolved() = false;
  mutable_model().clear();
}

}  // namespace sit::obs
