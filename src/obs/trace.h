#pragma once
// Low-overhead event tracing for the stream runtimes.
//
// Every engine (sequential Executor, ThreadedExecutor workers, the bytecode
// VM dispatch loop, MessagingExecutor) records timestamped events into
// per-thread buffers owned by exactly one writer thread, so the hot path is
// an inline bounds check plus a vector append -- no locks, no atomics.  The
// registry mutex is touched only when a thread first claims its buffer.
//
// Cost discipline:
//   * tracing OFF (the default): instrumentation points reduce to a single
//     null-pointer test per firing -- the executors keep a ThreadBuffer*
//     that stays null unless ExecOptions::trace / SIT_TRACE enabled it;
//   * tracing ON: two steady_clock reads plus a few appends per firing;
//   * compiled OUT (-DSIT_OBS_DISABLED, cmake -DSIT_OBS=OFF): kCompiledIn
//     below folds every gate to constant false and the optimizer deletes
//     the instrumentation entirely.
//
// Buffers are bounded (Config::events_per_thread); once full, further events
// are counted as dropped rather than reallocating without bound -- a trace
// that long has already captured the steady-state shape.
//
// Alongside raw events the Recorder owns the timing side of the metrics
// registry: per-actor firing statistics (wall-ns histogram) and per-worker
// busy/wait accounting.  Both follow the same single-writer discipline: an
// actor is fired by exactly one thread, a worker slot is owned by its
// worker.  Snapshots (obs/metrics.h) are taken quiescently.

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sit::obs {

#ifdef SIT_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

enum class EventKind : std::uint8_t {
  FireBegin,       // id = actor
  FireEnd,         // id = actor
  WaitBegin,       // id = actor, arg = WaitKind (threaded runtime spin waits)
  WaitEnd,         // id = actor, arg = WaitKind
  PushBatch,       // id = edge, arg = items pushed by one firing
  PopBatch,        // id = edge, arg = items popped by one firing
  MessageSend,     // id = sending actor, arg = its firing number
  MessageDeliver,  // id = receiving actor, arg = delivery firing number
  Phase,           // id = PhaseId
};
const char* to_string(EventKind k);

// Why a threaded-runtime worker spun (TraceEvent::arg of Wait* events).
enum class WaitKind : std::int64_t { Input = 0, Space = 1, Window = 2 };
const char* to_string(WaitKind k);

enum class PhaseId : std::int32_t { Init = 0, Calibration = 1, Steady = 2 };
const char* to_string(PhaseId p);

struct TraceEvent {
  std::int64_t ts_ns{0};  // monotonic, relative to the Recorder's epoch
  EventKind kind{EventKind::Phase};
  std::int32_t id{-1};
  std::int64_t arg{0};
};

// One thread's append-only event log.  Constructed by Recorder; emitted to
// only by the owning thread.
class ThreadBuffer {
 public:
  ThreadBuffer(int tid, std::size_t cap) : tid_(tid), cap_(cap) {
    events_.reserve(std::min<std::size_t>(cap, 4096));
  }

  void emit(std::int64_t ts_ns, EventKind kind, std::int32_t id,
            std::int64_t arg = 0) {
    if (events_.size() < cap_) {
      events_.push_back(TraceEvent{ts_ns, kind, id, arg});
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] int tid() const noexcept { return tid_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }

 private:
  int tid_;
  std::size_t cap_;
  std::vector<TraceEvent> events_;
  std::int64_t dropped_{0};
};

// Per-actor firing-time statistics: total/max wall-ns plus a log2-bucketed
// histogram of ns-per-firing (bucket i counts firings in [2^i, 2^{i+1}) ns).
struct FiringStats {
  static constexpr int kBuckets = 24;  // up to ~16 ms per firing

  std::int64_t fires{0};
  std::int64_t wall_ns{0};
  std::int64_t max_ns{0};
  std::array<std::int64_t, kBuckets> hist{};

  void record(std::int64_t ns) {
    ++fires;
    wall_ns += ns;
    max_ns = std::max(max_ns, ns);
    const auto u = static_cast<std::uint64_t>(ns < 0 ? 0 : ns);
    const int b = std::min(kBuckets - 1, static_cast<int>(std::bit_width(u)));
    ++hist[static_cast<std::size_t>(b)];
  }
};

// Per-worker steady-state accounting for the threaded runtime.
struct WorkerStats {
  std::int64_t wall_ns{0};  // time inside the worker loop
  std::int64_t wait_ns{0};  // of which: spent spinning on rings / the window
  std::int64_t iters{0};    // steady-state iterations completed
};

class Recorder {
 public:
  struct Config {
    std::size_t events_per_thread{std::size_t{1} << 18};
  };

  Recorder() : Recorder(Config{}) {}
  explicit Recorder(Config cfg)
      : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {}

  // Nanoseconds since this recorder was created (monotonic clock).
  [[nodiscard]] std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Claim (or find) the buffer for logical thread `tid`.  The returned
  // pointer is stable for the recorder's lifetime; the registry lock is
  // taken only here.
  ThreadBuffer* thread_buffer(int tid) {
    const std::lock_guard<std::mutex> lk(mu_);
    for (const auto& b : buffers_) {
      if (b->tid() == tid) return b.get();
    }
    buffers_.push_back(
        std::make_unique<ThreadBuffer>(tid, cfg_.events_per_thread));
    return buffers_.back().get();
  }

  // Size the single-writer stat tables (idempotent growth).
  void attach_actors(std::size_t n) {
    if (actor_stats_.size() < n) actor_stats_.resize(n);
  }
  void attach_workers(std::size_t n) {
    if (worker_stats_.size() < n) worker_stats_.resize(n);
  }

  FiringStats& actor_stats(int actor) {
    return actor_stats_[static_cast<std::size_t>(actor)];
  }
  WorkerStats& worker_stats(int worker) {
    return worker_stats_[static_cast<std::size_t>(worker)];
  }
  [[nodiscard]] const std::vector<FiringStats>& all_actor_stats() const {
    return actor_stats_;
  }
  [[nodiscard]] const std::vector<WorkerStats>& all_worker_stats() const {
    return worker_stats_;
  }

  // Quiescent readers (no writer thread running).
  [[nodiscard]] std::vector<const ThreadBuffer*> buffers() const {
    const std::lock_guard<std::mutex> lk(mu_);
    std::vector<const ThreadBuffer*> out;
    out.reserve(buffers_.size());
    for (const auto& b : buffers_) out.push_back(b.get());
    return out;
  }
  [[nodiscard]] std::int64_t total_events() const {
    std::int64_t n = 0;
    for (const auto* b : buffers()) n += static_cast<std::int64_t>(b->events().size());
    return n;
  }
  [[nodiscard]] std::int64_t total_dropped() const {
    std::int64_t n = 0;
    for (const auto* b : buffers()) n += b->dropped();
    return n;
  }

 private:
  Config cfg_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<FiringStats> actor_stats_;
  std::vector<WorkerStats> worker_stats_;
};

// Per-firing dispatch-loop attribution handed to the bytecode VM: when
// non-null (and tb non-null), the VM emits PopBatch/PushBatch events with
// the *measured* channel traffic of the firing it just executed.
struct FiringTrace {
  ThreadBuffer* tb{nullptr};
  Recorder* rec{nullptr};
  std::int32_t in_edge{-1};
  std::int32_t out_edge{-1};
};

}  // namespace sit::obs
